examples/pcnet_protection.ml: Attacks Bytes Devices Format List Printf Sedspec Vmm Workload
