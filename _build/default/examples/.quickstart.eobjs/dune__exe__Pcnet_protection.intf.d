examples/pcnet_protection.mli:
