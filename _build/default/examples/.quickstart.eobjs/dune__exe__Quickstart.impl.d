examples/quickstart.ml: Bytes Char Devices Format Int64 List Printf Sedspec Vmm Workload
