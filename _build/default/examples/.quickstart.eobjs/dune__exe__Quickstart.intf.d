examples/quickstart.mli:
