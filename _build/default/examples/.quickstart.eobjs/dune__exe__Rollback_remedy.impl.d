examples/rollback_remedy.ml: Devices Devir Format Int64 Interp List Printf Sedspec Vmm Workload
