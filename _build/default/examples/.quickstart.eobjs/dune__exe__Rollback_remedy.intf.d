examples/rollback_remedy.mli:
