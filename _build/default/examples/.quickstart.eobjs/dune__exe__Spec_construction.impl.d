examples/spec_construction.ml: Devir Format Iptrace List Sedspec String Workload
