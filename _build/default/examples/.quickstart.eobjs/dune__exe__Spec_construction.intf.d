examples/spec_construction.mli:
