examples/storage_soak.ml: Format List Metrics Printf Workload
