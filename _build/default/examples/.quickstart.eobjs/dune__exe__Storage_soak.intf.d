examples/storage_soak.mli:
