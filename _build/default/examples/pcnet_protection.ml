(* Network scenario: a protected PCNet adapter carrying live traffic while
   an attacker tries all three of its CVEs.

     dune exec examples/pcnet_protection.exe

   Runs in enhancement mode first (warnings, availability preserved), then
   protection mode (the VM halts at the first anomaly), mirroring the
   paper's two working modes. *)

let attack_names = [ "CVE-2015-7504"; "CVE-2015-7512"; "CVE-2016-7909" ]

let traffic machine =
  let d = Workload.Pcnet_driver.create machine in
  ignore (Workload.Pcnet_driver.reset d);
  ignore (Workload.Pcnet_driver.init d ~mode:0 ());
  ignore (Workload.Pcnet_driver.start d);
  for i = 1 to 40 do
    ignore (Workload.Pcnet_driver.transmit d [ Bytes.make (64 + (i * 17 mod 1400)) 'd' ]);
    ignore (Workload.Pcnet_driver.receive d (Bytes.make (64 + (i * 31 mod 1400)) 'u'));
    ignore (Workload.Pcnet_driver.rx_frame d);
    Workload.Pcnet_driver.ack_interrupts d
  done

let run_mode mode_name mode =
  Format.printf "@.=== %s mode ===@." mode_name;
  let w = Workload.Samples.find "pcnet" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let machine = W.make_machine (Devices.Qemu_version.v 2 4 0) in
  let built = Sedspec.Pipeline.build machine ~device:"pcnet" (W.trainer ~cases:16) in
  let checker =
    Sedspec.Pipeline.protect
      ~config:{ Sedspec.Checker.default_config with Sedspec.Checker.mode }
      machine ~device:"pcnet" built
  in
  traffic machine;
  Printf.printf "benign traffic: %d anomalies\n"
    (List.length (Sedspec.Checker.drain_anomalies checker));
  List.iter
    (fun name ->
      (* 7909 needs the 2.6.0 model; skip it on 2.4.0 where the ring clamp
         differs — run it against its own machine below. *)
      let attack = Attacks.Attack.find name in
      let m2 = W.make_machine attack.qemu_version in
      let b2 =
        if attack.qemu_version = Devices.Qemu_version.v 2 4 0 then built
        else Sedspec.Pipeline.build m2 ~device:"pcnet" (W.trainer ~cases:16)
      in
      let c2 =
        Sedspec.Pipeline.protect
          ~config:{ Sedspec.Checker.default_config with Sedspec.Checker.mode }
          m2 ~device:"pcnet" b2
      in
      attack.setup m2;
      ignore (Sedspec.Checker.drain_anomalies c2);
      (try attack.run m2 with Exit -> ());
      let anoms = Sedspec.Checker.drain_anomalies c2 in
      Printf.printf "%-16s -> %d anomalies%s%s\n" name (List.length anoms)
        (if Vmm.Machine.halted m2 then " (VM halted)" else "")
        (match anoms with
        | a :: _ ->
          ": " ^ Sedspec.Checker.strategy_to_string a.Sedspec.Checker.strategy
        | [] -> "");
      if mode = Sedspec.Checker.Enhancement then
        List.iter (fun wmsg -> Printf.printf "    warning: %s\n" wmsg)
          (Vmm.Machine.warnings m2))
    attack_names

let () =
  run_mode "Enhancement" Sedspec.Checker.Enhancement;
  run_mode "Protection" Sedspec.Checker.Protection
