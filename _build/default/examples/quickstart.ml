(* Quickstart: protect an emulated device with SEDSpec in five steps.

     dune exec examples/quickstart.exe

   1. Build a machine with the (vulnerable) floppy controller attached.
   2. Train an execution specification from benign driver traffic.
   3. Attach the ES-Checker in front of the device.
   4. Watch benign traffic pass untouched.
   5. Watch the Venom exploit (CVE-2015-3456) get stopped before the
      out-of-bounds write happens. *)

let benign_traffic machine case =
  let d = Workload.Fdc_driver.create machine in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  for i = 0 to 3 do
    let track = ((case * 7) + (i * 5)) mod 80 in
    ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:(i mod 2) ~track);
    ignore (Workload.Fdc_driver.sense_interrupt d);
    ignore
      (Workload.Fdc_driver.read_sector d ~drive:0 ~head:(i mod 2) ~track
         ~sect:(1 + i));
    ignore
      (Workload.Fdc_driver.write_sector d ~drive:0 ~head:(i mod 2) ~track
         ~sect:(2 + i)
         (Bytes.make 512 (Char.chr (case land 0xFF))))
  done

let () =
  (* 1. A machine with QEMU 2.3.0's floppy controller — Venom included. *)
  let machine = Vmm.Machine.create () in
  let fdc = Devices.Fdc.device ~version:(Devices.Qemu_version.v 2 3 0) in
  Vmm.Machine.attach machine (fdc.make_binding ());
  print_endline "[1] machine up, vulnerable FDC attached";

  (* 2. Train the execution specification from benign samples. *)
  let built =
    Sedspec.Pipeline.build machine ~device:"fdc"
      { Sedspec.Pipeline.cases = 16; run_case = benign_traffic }
  in
  Format.printf "[2] specification trained:@.    %a@." Sedspec.Pipeline.pp_built
    built;

  (* 3. Runtime protection. *)
  let checker = Sedspec.Pipeline.protect machine ~device:"fdc" built in
  print_endline "[3] ES-Checker attached (protection mode, all strategies)";

  (* 4. Benign traffic flows through. *)
  for case = 0 to 7 do
    benign_traffic machine case
  done;
  Printf.printf "[4] benign traffic: %d anomalies on %d interactions\n"
    (List.length (Sedspec.Checker.drain_anomalies checker))
    (Sedspec.Checker.stats checker).Sedspec.Checker.interactions;

  (* 5. The Venom exploit stream. *)
  let data_port = Int64.add Devices.Fdc.io_base 5L in
  ignore (Workload.Io.outb machine data_port 0x8E);
  (try
     for _ = 1 to 600 do
       match Workload.Io.outb machine data_port 0x01 with
       | Workload.Io.R_ok _ -> ()
       | _ -> raise Exit
     done
   with Exit -> ());
  print_endline "[5] venom stream sent";
  (match Vmm.Machine.halt_reason machine with
  | Some reason -> Printf.printf "    VM halted: %s\n" reason
  | None -> print_endline "    !!! exploit was not stopped");
  List.iter
    (fun a -> Format.printf "    anomaly: %a@." Sedspec.Checker.pp_anomaly a)
    (Sedspec.Checker.drain_anomalies checker)
