(* Rollback remediation (paper §VIII "Anomaly Defence", future work):
   instead of leaving the VM halted after an anomaly, restore a checkpoint
   taken before the exploitation and keep serving.

     dune exec examples/rollback_remedy.exe *)

let () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let machine = W.make_machine (Devices.Qemu_version.v 2 3 0) in
  let built = Sedspec.Pipeline.build machine ~device:"fdc" (W.trainer ~cases:16) in
  let checker = Sedspec.Pipeline.protect machine ~device:"fdc" built in
  let supervisor = Sedspec.Remedy.create machine ~device:"fdc" checker in

  let d = Workload.Fdc_driver.create machine in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:42);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  ignore (Sedspec.Remedy.tick supervisor);
  let arena = Interp.arena (Vmm.Machine.interp_of machine "fdc") in
  Printf.printf "[1] device serving, head on track %Ld; checkpoint taken\n"
    (Devir.Arena.get arena "track");

  (* The Venom stream hits the parameter check... *)
  let port = Int64.add Devices.Fdc.io_base 5L in
  ignore (Workload.Io.outb machine port 0x8E);
  (try
     for _ = 1 to 600 do
       match Workload.Io.outb machine port 0x01 with
       | Workload.Io.R_ok _ -> ()
       | _ -> raise Exit
     done
   with Exit -> ());
  Printf.printf "[2] venom stream: VM halted = %b\n" (Vmm.Machine.halted machine);

  (* ...and the supervisor rolls the machine back instead of keeping it
     down. *)
  let events = Sedspec.Remedy.tick supervisor in
  List.iter
    (fun e -> Format.printf "    %a@." Sedspec.Remedy.pp_event e)
    events;
  Printf.printf "[3] after remedy: halted = %b, rollbacks = %d, track = %Ld\n"
    (Vmm.Machine.halted machine)
    (Sedspec.Remedy.rollbacks supervisor)
    (Devir.Arena.get arena "track");

  (* Service continues. *)
  (match Workload.Fdc_driver.read_sector d ~drive:0 ~head:0 ~track:42 ~sect:3 with
  | Some _ -> print_endline "[4] reads work again — availability preserved"
  | None -> print_endline "[4] !!! device did not recover")
