(* Phase-by-phase walkthrough of how SEDSpec builds an execution
   specification (paper Fig. 1), shown on the SCSI controller:

     dune exec examples/spec_construction.exe

   Phase 1 — data collection: PT-style tracing, ITC-CFG, device state
   parameter selection (Rules 1 and 2), observation points.
   Phase 2 — ES-CFG construction: Algorithm 1, control flow reduction,
   data dependency recovery.
   The printed artifacts are the same ones the paper describes. *)

let () =
  let w = Workload.Samples.find "scsi" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let machine = W.make_machine W.paper_version in
  let trainer = W.trainer ~cases:16 in

  (* Phase 1: trace benign traffic through the simulated Intel PT. *)
  let p1 = Sedspec.Pipeline.collect machine ~device:"scsi" trainer in
  Format.printf "=== Phase 1: data collection ===@.";
  Format.printf "ITC-CFG: %d blocks, %d edges (from %d bytes of PT packets)@."
    (Iptrace.Itc_cfg.block_count p1.itc)
    (Iptrace.Itc_cfg.edge_count p1.itc)
    p1.trace_bytes;
  let one_sided =
    List.filter Iptrace.Itc_cfg.one_sided (Iptrace.Itc_cfg.conditional_nodes p1.itc)
  in
  Format.printf "conditionals observed one-sided during training: %d@."
    (List.length one_sided);
  Format.printf "@.device state parameter selection (Rules 1 & 2):@.%a@."
    Sedspec.Selection.pp p1.selection;
  Format.printf "buffers tracked by content (relevance analysis): %s@."
    (String.concat ", " p1.selection.Sedspec.Selection.tracked_buffers);
  Format.printf "observation points instrumented: %d@.@."
    (List.length p1.observation_points);

  (* Phase 2: construct, reduce, recover dependencies. *)
  let built = Sedspec.Pipeline.construct machine ~device:"scsi" p1 trainer in
  Format.printf "=== Phase 2: specification construction ===@.";
  Format.printf "%a@." Sedspec.Es_cfg.pp_stats built.spec;
  Format.printf "%a@." Sedspec.Datadep.pp_report built.datadep;
  Format.printf "commands in the access table:@.";
  List.iter
    (fun ((bref, v) : Sedspec.Es_cfg.cmd_key) ->
      Format.printf "  %a = 0x%Lx@." Devir.Program.pp_bref bref v)
    (List.sort compare (Sedspec.Es_cfg.commands built.spec));

  (* Phase 3: one protected interaction, to close the loop. *)
  let checker = Sedspec.Pipeline.protect machine ~device:"scsi" built in
  let d = Workload.Scsi_driver.create machine in
  ignore (Workload.Scsi_driver.reset d);
  ignore (Workload.Scsi_driver.inquiry d ~dma:true);
  Format.printf "@.=== Phase 3: runtime protection ===@.";
  Format.printf "INQUIRY under protection: %d anomalies, %d nodes walked@."
    (List.length (Sedspec.Checker.drain_anomalies checker))
    (Sedspec.Checker.stats checker).Sedspec.Checker.nodes_walked
