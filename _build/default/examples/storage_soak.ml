(* Storage soak: the paper's §VII-B1 experiment in miniature.

     dune exec examples/storage_soak.exe

   Runs the three interaction modes (sequential / random / random+delay)
   against every protected storage device for a few simulated hours,
   reporting false positives and throughput impact. *)

let () =
  Metrics.Spec_cache.training_cases := 16;
  print_endline "device     soak result";
  print_endline "---------- -----------";
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let r =
        Metrics.Fpr.soak ~seed:2026L ~cases_per_hour:15 ~checkpoint_hours:[ 1; 2; 3 ]
          (module W)
      in
      Format.printf "%-10s %a@." W.device_name Metrics.Fpr.pp_result r)
    Workload.Samples.all;
  print_endline "";
  print_endline "protected sector-read overhead (FDC, 4 KiB records):";
  let pts =
    Metrics.Perf.storage_sweep ~total_bytes:16384 ~device:"fdc" ~write:false ()
  in
  List.iter
    (fun (p : Metrics.Perf.storage_point) ->
      Printf.printf "  block %-7d normalized throughput %.3f\n" p.block_bytes
        p.norm_throughput)
    pts
