lib/attacks/attack.ml: Bytes Devices Devir Format Int64 Interp List Sedspec String Vmm Workload
