lib/attacks/attack.mli: Devices Format Interp Sedspec Vmm
