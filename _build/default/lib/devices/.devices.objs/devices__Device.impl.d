lib/devices/device.ml: Devir Qemu_version Vmm
