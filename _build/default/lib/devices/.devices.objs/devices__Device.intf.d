lib/devices/device.mli: Devir Qemu_version Vmm
