lib/devices/ehci.ml: Device Devir Layout Program Qemu_version Stmt Width
