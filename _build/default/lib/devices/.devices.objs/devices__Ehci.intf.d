lib/devices/ehci.mli: Device Devir Qemu_version
