lib/devices/fdc.ml: Device Devir Int64 Layout Program Qemu_version Width
