lib/devices/fdc.mli: Device Devir Qemu_version
