lib/devices/pcnet.ml: Device Devir Layout Program Qemu_version Stmt Width
