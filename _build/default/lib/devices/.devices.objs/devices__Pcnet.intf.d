lib/devices/pcnet.mli: Device Devir Qemu_version
