lib/devices/qemu_version.ml: Printf Stdlib String
