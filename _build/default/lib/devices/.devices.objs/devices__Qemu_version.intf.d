lib/devices/qemu_version.mli:
