lib/devices/scsi.ml: Device Devir Layout Program Qemu_version Stmt Width
