lib/devices/scsi.mli: Device Devir Qemu_version
