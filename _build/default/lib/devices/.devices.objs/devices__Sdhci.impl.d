lib/devices/sdhci.ml: Device Devir Layout Program Qemu_version Width
