lib/devices/sdhci.mli: Device Devir Qemu_version
