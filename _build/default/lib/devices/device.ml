type t = {
  name : string;
  version : Qemu_version.t;
  program : Devir.Program.t;
  make_binding : unit -> Vmm.Machine.device_binding;
}

let binding_of ~program ?(pmio = []) ?pmio_read ?pmio_write ?(mmio = [])
    ?mmio_read ?mmio_write () =
  {
    Vmm.Machine.program;
    arena = Devir.Arena.create (Devir.Program.layout program);
    pmio;
    pmio_read;
    pmio_write;
    mmio;
    mmio_read;
    mmio_write;
  }
