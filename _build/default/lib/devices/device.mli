(** Common packaging for the emulated device models.

    Each device module builds its program at a given QEMU version (gating
    vulnerable vs. patched logic) and can mint fresh machine bindings —
    a new control-structure arena wired to the device's I/O ranges. *)

type t = {
  name : string;
  version : Qemu_version.t;
  program : Devir.Program.t;
  make_binding : unit -> Vmm.Machine.device_binding;
      (** Fresh arena each call; program shared. *)
}

val binding_of :
  program:Devir.Program.t ->
  ?pmio:(int64 * int) list ->
  ?pmio_read:string ->
  ?pmio_write:string ->
  ?mmio:(int64 * int) list ->
  ?mmio_read:string ->
  ?mmio_write:string ->
  unit ->
  Vmm.Machine.device_binding
(** Convenience constructor allocating a fresh arena from the program's
    layout. *)
