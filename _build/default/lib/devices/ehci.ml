open Devir
open Devir.Dsl

let name = "ehci"
let mmio_base = 0x3000_0000L
let irq_cb = 0x0050_3000L
let data_buf_size = 4096
let cve_2020_14364_fixed_in = Qemu_version.v 5 1 1

let pid_out = 0
let pid_in = 1
let pid_setup = 2

(* USBSTS bits. *)
let sts_int = 0x1
let sts_err = 0x2

(* Mirrors the real USBDevice field order: setup_len and setup_index sit
   behind data_buf, then the irq pointer; [guard] sizes the structure so a
   wLength of data_buf + 80 bytes corrupts everything up to the end without
   escaping. *)
let layout =
  Layout.make
    [
      Layout.reg ~hw:true "usbcmd" Width.W32;
      Layout.reg ~hw:true "usbsts" Width.W32;
      Layout.reg ~hw:true "usbintr" Width.W32;
      Layout.reg ~hw:true "frindex" Width.W32;
      Layout.reg ~hw:true "async_addr" Width.W32;
      Layout.reg ~hw:true ~init:0x1000L "portsc" Width.W32;
      Layout.reg "dev_addr" Width.W8;
      Layout.reg "config" Width.W8;
      Layout.reg "setup_state" Width.W8;
      Layout.buf "setup_buf" 8;
      Layout.buf "data_buf" data_buf_size;
      Layout.reg "setup_len" Width.W32;
      Layout.reg "setup_index" Width.W32;
      Layout.fn_ptr ~init:irq_cb "irq";
      Layout.buf "guard" 64;
    ]

let or_sts bits = set "usbsts" (bor Width.W32 (fld "usbsts") (c bits))

(* Transfer-size computation shared by IN and OUT tokens: the qTD length
   clamped to what remains of the control transfer.  Produces blocks
   [<pfx>_want]/[<pfx>_clamp] defining local "xfer", both continuing at
   [next]. *)
let min_xfer_blocks pfx next =
  [
    blk (pfx ^ "_minchk")
      [ local "remain" (sub Width.W32 (fld "setup_len") (fld "setup_index")) ]
      (br (lcl "tlen" <=% lcl "remain") (pfx ^ "_want") (pfx ^ "_clamp"));
    blk (pfx ^ "_want") [ local "xfer" (lcl "tlen") ] (goto next);
    blk (pfx ^ "_clamp") [ local "xfer" (lcl "remain") ] (goto next);
  ]

let write_handler ~vulnerable =
  let setup_len_blocks =
    if vulnerable then
      (* CVE-2020-14364: wLength stored without validation. *)
      [ blk "setup_lenchk" [ set "setup_len" (lcl "wlen") ] (goto "setup_parse") ]
    else
      [
        blk "setup_lenchk" [ set "setup_len" (lcl "wlen") ]
          (br (fld "setup_len" >% buflen "data_buf") "setup_stall" "setup_parse");
        blk "setup_stall"
          [ set "setup_len" (c 0); set "setup_state" (c ~w:Width.W8 0); or_sts sts_err ]
          (goto "async_done");
      ]
  in
  handler "mmio_write"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    ([
       entry "w_entry" []
         (switch (prm "offset")
            [
              (0x00, "w_usbcmd");
              (0x04, "w_usbsts");
              (0x08, "w_usbintr");
              (0x0C, "w_frindex");
              (0x18, "w_async");
              (0x44, "w_portsc");
            ]
            "w_exit");
       blk "w_usbcmd" [ set "usbcmd" (prm "data") ]
         (br ((prm "data" &% c 0x21) ==% c 0x21) "async_run" "w_exit");
       blk "w_usbsts"
         [
           set "usbsts"
             (band Width.W32 (fld "usbsts")
                (bxor Width.W32 (prm "data") (c64 0xFFFFFFFFL)));
         ]
         (goto "w_exit");
       blk "w_usbintr" [ set "usbintr" (prm "data") ] (goto "w_exit");
       blk "w_frindex" [ set "frindex" (prm "data") ] (goto "w_exit");
       blk "w_async" [ set "async_addr" (prm "data") ] (goto "w_exit");
       blk "w_portsc" [] (br ((prm "data" &% c 0x100) <>% c 0) "port_reset" "port_set");
       blk "port_reset"
         [
           set "portsc" (c 0x1005);
           set "dev_addr" (c ~w:Width.W8 0);
           set "setup_state" (c ~w:Width.W8 0);
           set "setup_len" (c 0);
           set "setup_index" (c 0);
         ]
         (goto "w_exit");
       blk "port_set" [ set "portsc" (bor Width.W32 (prm "data") (c 1)) ] (goto "w_exit");
       (* One qTD per async-schedule kick. *)
       cmd_decision "async_run"
         [
           Stmt.Read_guest { local = "qtd_token"; addr = fld "async_addr"; width = Width.W32 };
           Stmt.Read_guest
             { local = "qtd_buf"; addr = fld "async_addr" +% c 4; width = Width.W32 };
           local "pid" (band Width.W32 (shr Width.W32 (lcl "qtd_token") (c 8)) (c 3));
           local "tlen" (band Width.W32 (shr Width.W32 (lcl "qtd_token") (c 16)) (c 0x7FFF));
         ]
         (switch (lcl "pid")
            [ (pid_out, "tok_out"); (pid_in, "tok_in"); (pid_setup, "tok_setup") ]
            "tok_err");
       cmd_decision "tok_setup"
         [
           dma_in ~buf:"setup_buf" ~buf_off:(c 0) ~addr:(lcl "qtd_buf") ~len:(c 8);
           local "breq" (bufb "setup_buf" (c 1));
           local "wval"
             (bufb "setup_buf" (c 2) |% shl Width.W32 (bufb "setup_buf" (c 3)) (c 8));
           local "wlen"
             (bufb "setup_buf" (c 6) |% shl Width.W32 (bufb "setup_buf" (c 7)) (c 8));
           set "setup_state" (c ~w:Width.W8 1);
           set "setup_index" (c 0);
         ]
         (switch (lcl "breq")
            [
              (0, "req_get_status");
              (1, "req_clear_feat");
              (3, "req_set_feat");
              (5, "req_set_addr");
              (6, "req_get_desc");
              (9, "req_set_conf");
            ]
            "req_stall");
     ]
    @ setup_len_blocks
    @ [
        (* setup_lenchk runs between tok_setup and the request dispatch: the
           switch above goes through setup_parse. *)
        blk "setup_parse" [] (goto "setup_done");
        blk "req_get_desc"
          [ local "dtype" (shr Width.W32 (lcl "wval") (c 8)) ]
          (br (lcl "dtype" ==% c 1) "desc_device" "desc_other");
        blk "desc_device"
          [ fill "data_buf" ~off:(c 0) ~len:(c 18) (c 0x12 +% fld "dev_addr") ]
          (goto "setup_lenchk");
        blk "desc_other" [] (br (lcl "dtype" ==% c 2) "desc_config" "desc_string");
        blk "desc_config"
          [ fill "data_buf" ~off:(c 0) ~len:(c 32) (c 0x43) ]
          (goto "setup_lenchk");
        blk "desc_string"
          [ fill "data_buf" ~off:(c 0) ~len:(c 16) (c 0x53) ]
          (goto "setup_lenchk");
        blk "req_set_addr" [ set "dev_addr" (lcl "wval") ] (goto "setup_lenchk");
        blk "req_set_conf" [ set "config" (lcl "wval") ] (goto "setup_lenchk");
        blk "req_get_status"
          [ setb "data_buf" (c 0) (c 1); setb "data_buf" (c 1) (c 0) ]
          (goto "setup_lenchk");
        blk "req_clear_feat" [] (goto "setup_lenchk");
        blk "req_set_feat" [] (goto "setup_lenchk");
        blk "req_stall"
          [ set "setup_state" (c ~w:Width.W8 0); set "setup_len" (c 0); or_sts sts_err ]
          (goto "async_done");
        blk "setup_done" [ or_sts sts_int ] (icall (fld "irq") "async_done");
        blk "tok_in" [] (br (fld "setup_state" ==% c 1) "in_minchk" "tok_err");
      ]
    @ min_xfer_blocks "in" "in_copy"
    @ [
        blk "in_copy"
          [
            dma_out ~buf:"data_buf" ~buf_off:(fld "setup_index") ~addr:(lcl "qtd_buf")
              ~len:(lcl "xfer");
            set "setup_index" (fld "setup_index" +% lcl "xfer");
          ]
          (br (fld "setup_index" >=% fld "setup_len") "in_status" "in_more");
        blk "in_status" [ set "setup_state" (c ~w:Width.W8 0); or_sts sts_int ]
          (icall (fld "irq") "async_done");
        blk "in_more" [ or_sts sts_int ] (icall (fld "irq") "async_done");
        blk "tok_out" [] (br (fld "setup_state" ==% c 1) "out_minchk" "tok_err");
      ]
    @ min_xfer_blocks "out" "out_copy"
    @ [
        blk "out_copy"
          [
            dma_in ~buf:"data_buf" ~buf_off:(fld "setup_index") ~addr:(lcl "qtd_buf")
              ~len:(lcl "xfer");
            set "setup_index" (fld "setup_index" +% lcl "xfer");
          ]
          (br (fld "setup_index" >=% fld "setup_len") "out_status" "out_more");
        blk "out_status" [ set "setup_state" (c ~w:Width.W8 0); or_sts sts_int ]
          (icall (fld "irq") "async_done");
        blk "out_more" [ or_sts sts_int ] (icall (fld "irq") "async_done");
        blk "tok_err" [ or_sts sts_err ] (goto "async_done");
        cmd_end "async_done" [ set "frindex" (fld "frindex" +% c 8) ] (goto "w_exit");
        exit_ "w_exit" [];
      ])

let read_handler =
  handler "mmio_read"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    [
      entry "r_entry" []
        (switch (prm "offset")
           [
             (0x00, "r_usbcmd");
             (0x04, "r_usbsts");
             (0x08, "r_usbintr");
             (0x0C, "r_frindex");
             (0x18, "r_async");
             (0x44, "r_portsc");
           ]
           "r_zero");
      blk "r_usbcmd" [ respond (fld "usbcmd") ] (goto "r_exit");
      blk "r_usbsts" [ respond (fld "usbsts") ] (goto "r_exit");
      blk "r_usbintr" [ respond (fld "usbintr") ] (goto "r_exit");
      blk "r_frindex" [ respond (fld "frindex") ] (goto "r_exit");
      blk "r_async" [ respond (fld "async_addr") ] (goto "r_exit");
      blk "r_portsc" [ respond (fld "portsc") ] (goto "r_exit");
      blk "r_zero" [ respond (c 0) ] (goto "r_exit");
      exit_ "r_exit" [];
    ]

let program ~version =
  let vulnerable = Qemu_version.(version < cve_2020_14364_fixed_in) in
  Program.make ~name ~layout ~code_base:0x0043_0000L
    ~callbacks:
      [ (irq_cb, { Program.cb_name = "ehci_irq"; action = Program.Raise_irq_line }) ]
    [ write_handler ~vulnerable; read_handler ]

let device ~version =
  let program = program ~version in
  {
    Device.name;
    version;
    program;
    make_binding =
      (fun () ->
        Device.binding_of ~program
          ~mmio:[ (mmio_base, 0x100) ]
          ~mmio_read:"mmio_read" ~mmio_write:"mmio_write" ());
  }
