(** USB EHCI host controller with an attached USB device, modelled after
    QEMU's [hcd-ehci.c] + [core.c] (usb_generic_handle_packet).

    Memory-mapped at [0x3000_0000]: USBCMD/USBSTS/USBINTR, FRINDEX, the
    async list address and PORTSC.  Writing USBCMD with the run + async
    schedule bits set processes one qTD from the async list: the qTD's PID
    selects a SETUP, IN or OUT token against the attached device's control
    endpoint.  SETUP parses the 8-byte setup packet (GET_DESCRIPTOR /
    SET_ADDRESS / SET_CONFIGURATION / ...), IN moves data from the device's
    [data_buf] to guest memory, OUT moves guest data into [data_buf].
    Mirroring the real USBDevice struct, [setup_len] and [setup_index] live
    directly {e behind} [data_buf], followed by the [irq] pointer.

    Vulnerability (version-gated):
    - {b CVE-2020-14364} (fixed in 5.1.1): [setup_len] is taken from the
      setup packet's wLength without validation against
      [sizeof(data_buf)].  An OUT token can then write past [data_buf],
      overwriting [setup_len], [setup_index] (the second out-of-bounds
      instance: a corrupted, effectively negative index) and the [irq]
      function pointer. *)

val name : string
val mmio_base : int64
val irq_cb : int64
val data_buf_size : int
val cve_2020_14364_fixed_in : Qemu_version.t

(** qTD layout in guest memory: +0 token (PID in bits 8..9, length in bits
    16..30), +4 buffer pointer. *)

val pid_out : int
val pid_in : int
val pid_setup : int

val layout : Devir.Layout.t
val program : version:Qemu_version.t -> Devir.Program.t
val device : version:Qemu_version.t -> Device.t
