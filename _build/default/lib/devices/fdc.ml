open Devir
open Devir.Dsl

let name = "fdc"
let io_base = 0x3F0L
let irq_cb = 0x0050_0000L
let fifo_size = 512
let disk_capacity = 2_880 * 1024
let venom_fixed_in = Qemu_version.v 2 3 1

(* Main status register bits. *)
let msr_rqm = 0x80
let msr_dio = 0x40
let msr_ndma = 0x20
let msr_cb = 0x10

(* Field widths follow QEMU's FDCtrl; [fifo] is deliberately the last field
   so a Venom overflow escapes the control structure (the heap corruption /
   crash of the real exploit). *)
let layout =
  Layout.make
    [
      Layout.reg ~hw:true ~init:(Int64.of_int msr_rqm) "msr" Width.W8;
      Layout.reg ~hw:true "dor" Width.W8;
      Layout.reg ~hw:true "tdr" Width.W8;
      Layout.reg ~hw:true "dsr" Width.W8;
      Layout.reg ~hw:true "dir_reg" Width.W8;
      Layout.reg "cur_drv" Width.W8;
      Layout.reg "track" Width.W8;
      Layout.reg "head" Width.W8;
      Layout.reg "sect" Width.W8;
      Layout.reg "st0" Width.W8;
      Layout.reg "st1" Width.W8;
      Layout.reg "st2" Width.W8;
      Layout.reg "phase" Width.W8;
      Layout.reg "data_dir" Width.W8;
      Layout.reg "cmd" Width.W8;
      Layout.reg "config" Width.W8;
      Layout.reg "precomp" Width.W8;
      Layout.reg "perp" Width.W8;
      Layout.reg "data_pos" Width.W32;
      Layout.reg "data_len" Width.W32;
      Layout.reg "wr_sum" Width.W32;
      Layout.fn_ptr ~init:irq_cb "irq";
      Layout.buf "fifo" fifo_size;
    ]

(* Sector content served for READ: a deterministic function of the CHS
   address, so tests can verify data integrity end to end. *)
let sector_pattern =
  band Width.W32
    ((fld "track" *% c 7) +% ((fld "sect" *% c 13) +% (fld "head" *% c 3)))
    (c 0xFF)

(* Stage st0/st1/st2/C/H/S/2 into the FIFO and enter the result phase. *)
let stage_result7_stmts =
  [
    setb "fifo" (c 0) (fld "st0");
    setb "fifo" (c 1) (fld "st1");
    setb "fifo" (c 2) (fld "st2");
    setb "fifo" (c 3) (fld "track");
    setb "fifo" (c 4) (fld "head");
    setb "fifo" (c 5) (fld "sect");
    setb "fifo" (c 6) (c 2);
    set "phase" (c ~w:Width.W8 2);
    set "data_pos" (c 0);
    set "data_len" (c 7);
    set "msr" (c ~w:Width.W8 (msr_rqm lor msr_dio lor msr_cb));
  ]

let end_idle_stmts =
  [
    set "phase" (c ~w:Width.W8 0);
    set "data_pos" (c 0);
    set "data_len" (c 0);
    set "msr" (c ~w:Width.W8 msr_rqm);
  ]

let write_handler ~vulnerable =
  let ds_check_blocks =
    if vulnerable then
      (* CVE-2015-3456: termination only on a high-bit byte; data_pos is
         never bounded. *)
      [
        blk "w_ds_chk" []
          (br ((prm "data" &% c 0x80) <>% c 0) "ex_drivespec" "w_exit");
      ]
    else
      [
        blk "w_ds_chk" []
          (br ((prm "data" &% c 0x80) <>% c 0) "ex_drivespec" "w_ds_bound");
        blk "w_ds_bound" []
          (br (fld "data_pos" >=% fld "data_len") "ex_drivespec" "w_exit");
      ]
  in
  handler "write"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    ([
       entry "w_entry" []
         (switch (prm "offset")
            [ (2, "w_dor"); (3, "w_tdr"); (4, "w_dsr"); (5, "w_fifo"); (7, "w_ccr") ]
            "w_exit");
       blk "w_dor"
         [
           set "dor" (prm "data");
           set "cur_drv" (band Width.W8 (prm "data") (c 3));
         ]
         (br ((prm "data" &% c 0x04) ==% c 0) "w_reset" "w_exit");
       blk "w_reset"
         (end_idle_stmts @ [ set "st0" (c ~w:Width.W8 0xC0) ])
         (icall (fld "irq") "w_exit");
       blk "w_tdr" [ set "tdr" (prm "data") ] (goto "w_exit");
       blk "w_ccr" [ set "dsr" (band Width.W8 (prm "data") (c 3)) ] (goto "w_exit");
       blk "w_dsr" [ set "dsr" (prm "data") ]
         (br ((prm "data" &% c 0x80) <>% c 0) "w_reset" "w_exit");
       blk "w_fifo" []
         (br ((fld "msr" &% c msr_rqm) ==% c 0) "w_exit" "w_fifo_rdy");
       blk "w_fifo_rdy" [] (br (fld "phase" ==% c 0) "w_cmd_phase" "w_exec_chk");
       blk "w_exec_chk" [] (br (fld "phase" ==% c 1) "w_exec_dir" "w_exit");
       blk "w_exec_dir" [] (br (fld "data_dir" ==% c 0) "w_exec_byte" "w_exit");
       blk "w_exec_byte"
         [
           setb "fifo" (fld "data_pos") (prm "data");
           set "data_pos" (fld "data_pos" +% c 1);
         ]
         (br (fld "data_pos" >=% fld "data_len") "w_commit" "w_exit");
       blk "w_commit"
         ([
            set "wr_sum"
              (bxor Width.W32 (fld "wr_sum")
                 (bufb "fifo" (c 0) +% fld "track"));
            set "st0" (bor Width.W8 (fld "cur_drv") (shl Width.W8 (fld "head") (c 2)));
          ]
         @ stage_result7_stmts)
         (icall (fld "irq") "w_commit_end");
       blk "w_commit_end" [] (goto "w_exit");
       cmd_decision "w_new_cmd"
         [
           set "cmd" (prm "data");
           setb "fifo" (c 0) (prm "data");
           set "data_pos" (c 1);
           set "msr" (c ~w:Width.W8 (msr_rqm lor msr_cb));
         ]
         (switch (fld "cmd")
            [
              (0x03, "su_specify");
              (0x04, "su_sensedrv");
              (0x07, "su_recal");
              (0x08, "ex_senseint");
              (0x0A, "su_readid");
              (0x0E, "ex_dumpreg");
              (0x0F, "su_seek");
              (0x10, "ex_version");
              (0x12, "su_perp");
              (0x13, "su_configure");
              (0x45, "su_write");
              (0xC5, "su_write");
              (0x46, "su_read");
              (0xE6, "su_read");
              (0x8E, "su_drivespec");
            ]
            "ex_invalid");
       blk "w_cmd_phase" [] (br (fld "data_pos" ==% c 0) "w_new_cmd" "w_param");
       blk "su_specify" [ set "data_len" (c 3) ] (goto "w_exit");
       blk "su_sensedrv" [ set "data_len" (c 2) ] (goto "w_exit");
       blk "su_recal" [ set "data_len" (c 2) ] (goto "w_exit");
       blk "su_readid" [ set "data_len" (c 2) ] (goto "w_exit");
       blk "su_seek" [ set "data_len" (c 3) ] (goto "w_exit");
       blk "su_perp" [ set "data_len" (c 2) ] (goto "w_exit");
       blk "su_configure" [ set "data_len" (c 4) ] (goto "w_exit");
       blk "su_write" [ set "data_len" (c 9) ] (goto "w_exit");
       blk "su_read" [ set "data_len" (c 9) ] (goto "w_exit");
       blk "su_drivespec"
         [ set "data_len" (if vulnerable then c 0xFFFFFF else c 6) ]
         (goto "w_exit");
       cmd_end "ex_senseint"
         ([
            setb "fifo" (c 0) (fld "st0");
            setb "fifo" (c 1) (fld "track");
            set "phase" (c ~w:Width.W8 2);
            set "data_pos" (c 0);
            set "data_len" (c 2);
            set "msr" (c ~w:Width.W8 (msr_rqm lor msr_dio lor msr_cb));
          ])
         (goto "w_exit");
       cmd_end "ex_version"
         [
           setb "fifo" (c 0) (c 0x90);
           set "phase" (c ~w:Width.W8 2);
           set "data_pos" (c 0);
           set "data_len" (c 1);
           set "msr" (c ~w:Width.W8 (msr_rqm lor msr_dio lor msr_cb));
         ]
         (goto "w_exit");
       cmd_end "ex_dumpreg"
         [
           setb "fifo" (c 0) (fld "track");
           setb "fifo" (c 1) (c 0);
           setb "fifo" (c 2) (fld "dsr");
           setb "fifo" (c 3) (fld "tdr");
           setb "fifo" (c 4) (fld "config");
           setb "fifo" (c 5) (fld "precomp");
           setb "fifo" (c 6) (fld "perp");
           setb "fifo" (c 7) (c 0);
           setb "fifo" (c 8) (c 0);
           setb "fifo" (c 9) (c 0);
           set "phase" (c ~w:Width.W8 2);
           set "data_pos" (c 0);
           set "data_len" (c 10);
           set "msr" (c ~w:Width.W8 (msr_rqm lor msr_dio lor msr_cb));
         ]
         (goto "w_exit");
       cmd_end "ex_invalid"
         [
           set "st0" (c ~w:Width.W8 0x80);
           setb "fifo" (c 0) (c 0x80);
           set "phase" (c ~w:Width.W8 2);
           set "data_pos" (c 0);
           set "data_len" (c 1);
           set "msr" (c ~w:Width.W8 (msr_rqm lor msr_dio lor msr_cb));
         ]
         (goto "w_exit");
       blk "w_param"
         [
           setb "fifo" (fld "data_pos") (prm "data");
           set "data_pos" (fld "data_pos" +% c 1);
         ]
         (br (fld "cmd" ==% c 0x8E) "w_ds_chk" "w_param_chk");
     ]
    @ ds_check_blocks
    @ [
        cmd_end "ex_drivespec"
          ([ set "precomp" (bufb "fifo" (c 1)) ] @ end_idle_stmts)
          (goto "w_exit");
        blk "w_param_chk" []
          (br (fld "data_pos" >=% fld "data_len") "w_dispatch" "w_exit");
        cmd_decision "w_dispatch" []
          (switch (fld "cmd")
             [
               (0x03, "ex_specify");
               (0x04, "ex_sensedrv");
               (0x07, "ex_recal");
               (0x0A, "ex_readid");
               (0x0F, "ex_seek");
               (0x12, "ex_perp");
               (0x13, "ex_configure");
               (0x45, "ex_wsetup");
               (0xC5, "ex_wsetup");
               (0x46, "ex_rsetup");
               (0xE6, "ex_rsetup");
             ]
             "ex_invalid");
        cmd_end "ex_specify"
          ([ set "config" (bufb "fifo" (c 1)); set "precomp" (bufb "fifo" (c 2)) ]
          @ end_idle_stmts)
          (goto "w_exit");
        cmd_end "ex_sensedrv"
          [
            set "cur_drv" (band Width.W8 (bufb "fifo" (c 1)) (c 3));
            setb "fifo" (c 0) (bor Width.W8 (c 0x28) (fld "cur_drv"));
            set "phase" (c ~w:Width.W8 2);
            set "data_pos" (c 0);
            set "data_len" (c 1);
            set "msr" (c ~w:Width.W8 (msr_rqm lor msr_dio lor msr_cb));
          ]
          (goto "w_exit");
        blk "ex_recal"
          ([
             set "cur_drv" (band Width.W8 (bufb "fifo" (c 1)) (c 3));
             set "track" (c ~w:Width.W8 0);
             set "st0" (bor Width.W8 (c 0x20) (fld "cur_drv"));
           ]
          @ end_idle_stmts)
          (icall (fld "irq") "w_recal_end");
        cmd_end "w_recal_end" [] (goto "w_exit");
        blk "ex_seek"
          ([
             set "cur_drv" (band Width.W8 (bufb "fifo" (c 1)) (c 3));
             set "head" (band Width.W8 (shr Width.W8 (bufb "fifo" (c 1)) (c 2)) (c 1));
             set "track" (bufb "fifo" (c 2));
             set "st0" (bor Width.W8 (c 0x20) (fld "cur_drv"));
           ]
          @ end_idle_stmts)
          (icall (fld "irq") "w_seek_end");
        cmd_end "w_seek_end" [] (goto "w_exit");
        cmd_end "ex_perp"
          ([ set "perp" (bufb "fifo" (c 1)) ] @ end_idle_stmts)
          (goto "w_exit");
        cmd_end "ex_configure"
          ([ set "config" (bufb "fifo" (c 2)); set "precomp" (bufb "fifo" (c 3)) ]
          @ end_idle_stmts)
          (goto "w_exit");
        blk "ex_readid"
          [
            set "st0" (bor Width.W8 (fld "cur_drv") (shl Width.W8 (fld "head") (c 2)));
            set "st1" (c ~w:Width.W8 0);
            set "st2" (c ~w:Width.W8 0);
          ]
          (goto "ex_readid_stage");
        blk "ex_readid_stage" stage_result7_stmts (icall (fld "irq") "w_readid_end");
        cmd_end "w_readid_end" [] (goto "w_exit");
        blk "ex_rsetup"
          [
            set "cur_drv" (band Width.W8 (bufb "fifo" (c 1)) (c 3));
            set "head" (band Width.W8 (shr Width.W8 (bufb "fifo" (c 1)) (c 2)) (c 1));
            set "track" (bufb "fifo" (c 2));
            set "sect" (bufb "fifo" (c 4));
            fill "fifo" ~off:(c 0) ~len:(c fifo_size) sector_pattern;
            set "phase" (c ~w:Width.W8 1);
            set "data_dir" (c ~w:Width.W8 1);
            set "data_pos" (c 0);
            set "data_len" (c fifo_size);
            set "msr" (c ~w:Width.W8 (msr_rqm lor msr_dio lor msr_ndma lor msr_cb));
          ]
          (icall (fld "irq") "w_rsetup_end");
        blk "w_rsetup_end" [] (goto "w_exit");
        blk "ex_wsetup"
          [
            set "cur_drv" (band Width.W8 (bufb "fifo" (c 1)) (c 3));
            set "head" (band Width.W8 (shr Width.W8 (bufb "fifo" (c 1)) (c 2)) (c 1));
            set "track" (bufb "fifo" (c 2));
            set "sect" (bufb "fifo" (c 4));
            set "phase" (c ~w:Width.W8 1);
            set "data_dir" (c ~w:Width.W8 0);
            set "data_pos" (c 0);
            set "data_len" (c fifo_size);
            set "msr" (c ~w:Width.W8 (msr_rqm lor msr_ndma lor msr_cb));
          ]
          (goto "w_exit");
        exit_ "w_exit" [];
      ])

let read_handler =
  handler "read"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    [
      entry "r_entry" []
        (switch (prm "offset")
           [
             (0, "r_sra");
             (1, "r_srb");
             (3, "r_tdr");
             (4, "r_msr");
             (5, "r_fifo");
             (7, "r_dir");
           ]
           "r_bogus");
      blk "r_sra" [ respond (c 0) ] (goto "r_exit");
      blk "r_srb" [ respond (c 0) ] (goto "r_exit");
      blk "r_tdr" [ respond (fld "tdr") ] (goto "r_exit");
      blk "r_msr" [ respond (fld "msr") ] (goto "r_exit");
      blk "r_dir" [ respond (fld "dir_reg") ] (goto "r_exit");
      blk "r_bogus" [ respond (c 0xFF) ] (goto "r_exit");
      blk "r_fifo" [] (br (fld "phase" ==% c 2) "r_result" "r_exec_chk");
      blk "r_result"
        [
          respond (bufb "fifo" (fld "data_pos"));
          set "data_pos" (fld "data_pos" +% c 1);
        ]
        (br (fld "data_pos" >=% fld "data_len") "r_done" "r_exit");
      cmd_end "r_done"
        [
          set "phase" (c ~w:Width.W8 0);
          set "data_pos" (c 0);
          set "data_len" (c 0);
          set "cmd" (c ~w:Width.W8 0);
          set "msr" (c ~w:Width.W8 msr_rqm);
        ]
        (goto "r_exit");
      blk "r_exec_chk" [] (br (fld "phase" ==% c 1) "r_exec_dir" "r_bogus2");
      blk "r_exec_dir" [] (br (fld "data_dir" ==% c 1) "r_exec_byte" "r_bogus2");
      blk "r_bogus2" [ respond (c 0) ] (goto "r_exit");
      blk "r_exec_byte"
        [
          respond (bufb "fifo" (fld "data_pos"));
          set "data_pos" (fld "data_pos" +% c 1);
        ]
        (br (fld "data_pos" >=% fld "data_len") "r_to_result" "r_exit");
      blk "r_to_result"
        ([
           set "st0"
             (bor Width.W8 (fld "cur_drv") (shl Width.W8 (fld "head") (c 2)));
         ]
        @ stage_result7_stmts)
        (icall (fld "irq") "r_result_staged");
      blk "r_result_staged" [] (goto "r_exit");
      exit_ "r_exit" [];
    ]

let program ~version =
  let vulnerable = Qemu_version.(version < venom_fixed_in) in
  Program.make ~name ~layout ~code_base:0x0040_0000L
    ~callbacks:[ (irq_cb, { Program.cb_name = "fdc_irq"; action = Program.Raise_irq_line }) ]
    [ write_handler ~vulnerable; read_handler ]

let device ~version =
  let program = program ~version in
  {
    Device.name;
    version;
    program;
    make_binding =
      (fun () ->
        Device.binding_of ~program
          ~pmio:[ (io_base, 8) ]
          ~pmio_read:"read" ~pmio_write:"write" ());
  }
