(** Floppy disk controller (82078-style), modelled after QEMU's [fdc.c].

    Port-mapped at [0x3F0..0x3F7]: DOR (drive control/reset), TDR, MSR/DSR,
    the data FIFO at [0x3F5] and DIR.  Commands are issued by writing the
    command byte and its parameters to the FIFO in the command phase;
    READ/WRITE run a non-DMA execution phase where the guest moves 512-byte
    sectors through the FIFO; most commands finish with a result phase read
    back through the FIFO.

    Vulnerability (version-gated):
    - {b CVE-2015-3456 "Venom"} (fixed in 2.3.1): the DRIVE SPECIFICATION
      command (0x8E) accumulates parameter bytes into [fifo\[data_pos++\]]
      until a byte with the high bit arrives, without bounding [data_pos] —
      a guest streaming low-bit bytes writes past the 512-byte FIFO. *)

val name : string
(** ["fdc"]. *)

val io_base : int64
(** Port base [0x3F0]. *)

val irq_cb : int64
(** Callback value stored in the [irq] function pointer. *)

val fifo_size : int
(** 512. *)

val disk_capacity : int
(** 2.88 MB — bounds the block sizes the paper's Figure 3/4 sweep may use
    for this device. *)

val venom_fixed_in : Qemu_version.t
(** 2.3.1. *)

val layout : Devir.Layout.t

val program : version:Qemu_version.t -> Devir.Program.t

val device : version:Qemu_version.t -> Device.t
