open Devir
open Devir.Dsl

let name = "pcnet"
let io_base = 0xC100L
let irq_cb = 0x0050_2000L
let buffer_size = 4096
let cve_2015_750x_fixed_in = Qemu_version.v 2 5 0
let cve_2016_7909_fixed_in = Qemu_version.v 2 7 1

let ib_mode_off = 0
let ib_rdra_off = 4
let ib_tdra_off = 8
let ib_rcvrl_off = 12
let ib_xmtrl_off = 16
let desc_size = 16

(* CSR0 bits. *)
let csr0_init = 0x0001
let csr0_strt = 0x0002
let csr0_stop = 0x0004
let csr0_tdmd = 0x0008
let csr0_txon = 0x0010
let csr0_rxon = 0x0020
let csr0_inea = 0x0040
let csr0_idon = 0x0100
let csr0_tint = 0x0200
let csr0_rint = 0x0400
let csr0_miss = 0x1000

let own_bit = 0x8000_0000L
let enp_bit = 0x0100_0000L

(* The [irq] pointer directly follows [buffer]; [guard] keeps moderate
   overflows inside the structure so corruption (not an immediate crash) is
   what the exploit achieves, as on the real heap. *)
let layout =
  Layout.make
    [
      Layout.reg ~hw:true "rap" Width.W8;
      Layout.reg ~hw:true "csr0" Width.W16;
      Layout.reg ~hw:true "mode" Width.W16;
      Layout.reg ~hw:true "bcr20" Width.W16;
      Layout.reg "init_addr" Width.W32;
      Layout.reg "rdra" Width.W32;
      Layout.reg "tdra" Width.W32;
      Layout.reg "rcvrl" Width.W32;
      Layout.reg "xmtrl" Width.W32;
      Layout.reg "recv_idx" Width.W32;
      Layout.reg "xmit_idx" Width.W32;
      Layout.reg "xmit_pos" Width.W32;
      Layout.reg "recv_pos" Width.W32;
      Layout.reg "lnkst" Width.W8;
      Layout.reg "wr_sum" Width.W32;
      Layout.buf "buffer" buffer_size;
      Layout.fn_ptr ~init:irq_cb "irq";
      Layout.buf "guard" 512;
    ]

let or_csr0 bits = set "csr0" (bor Width.W16 (fld "csr0") (c bits))

let tmd_field off =
  fld "tdra" +% ((fld "xmit_idx" *% c desc_size) +% c off)

let rmd_field off =
  fld "rdra" +% ((fld "recv_idx" *% c desc_size) +% c off)

let write_handler ~vuln_750x ~vuln_7909 =
  let clamp_ring local set_fld ok_label next_label =
    (* Patched ring-length setup: a zero length is forced to 1. *)
    [
      blk ok_label []
        (br (lcl local ==% c 0) (ok_label ^ "_clamp") (ok_label ^ "_set"));
      blk (ok_label ^ "_clamp") [ set set_fld (c 1) ] (goto next_label);
      blk (ok_label ^ "_set") [ set set_fld (lcl local) ] (goto next_label);
    ]
  in
  let init_ring_blocks =
    if vuln_7909 then
      [
        blk "cb_init_rings"
          [ set "rcvrl" (lcl "ib_rcvrl"); set "xmtrl" (lcl "ib_xmtrl") ]
          (goto "cb_init_done");
      ]
    else
      blk "cb_init_rings" [] (br (lcl "ib_rcvrl" ==% c 0) "cb_rcl_clamp" "cb_rcl_set")
      :: blk "cb_rcl_clamp" [ set "rcvrl" (c 1) ] (goto "cb_xml")
      :: blk "cb_rcl_set" [ set "rcvrl" (lcl "ib_rcvrl") ] (goto "cb_xml")
      :: clamp_ring "ib_xmtrl" "xmtrl" "cb_xml" "cb_init_done"
  in
  let csr76_blocks =
    if vuln_7909 then
      [ blk "w_csr76" [ set "rcvrl" (prm "data") ] (goto "w_exit") ]
    else
      [
        blk "w_csr76" [] (br (prm "data" ==% c 0) "w_csr76_clamp" "w_csr76_set");
        blk "w_csr76_clamp" [ set "rcvrl" (c 1) ] (goto "w_exit");
        blk "w_csr76_set" [ set "rcvrl" (prm "data") ] (goto "w_exit");
      ]
  in
  (* Frames may span several descriptors; only a descriptor with ENP set
     completes the frame.  CVE-2015-7512: the vulnerable code accumulates
     fragment bytes at [xmit_pos] without bounding it against the buffer, so
     a guest chaining enough un-ENP'd fragments writes past it. *)
  let tx_copy_blocks =
    if vuln_750x then
      [
        blk "tx_own"
          [
            Stmt.Read_guest { local = "tmd_addr"; addr = tmd_field 0; width = Width.W32 };
            Stmt.Read_guest { local = "tmd_bcnt"; addr = tmd_field 8; width = Width.W32 };
            dma_in ~buf:"buffer" ~buf_off:(fld "xmit_pos") ~addr:(lcl "tmd_addr")
              ~len:(lcl "tmd_bcnt");
            set "xmit_pos" (fld "xmit_pos" +% lcl "tmd_bcnt");
            local "fsize" (lcl "fsize" +% lcl "tmd_bcnt");
          ]
          (br ((lcl "tmd_status" &% c64 enp_bit) <>% c 0) "tx_send_chk" "tx_finish");
      ]
    else
      [
        blk "tx_own"
          [
            Stmt.Read_guest { local = "tmd_addr"; addr = tmd_field 0; width = Width.W32 };
            Stmt.Read_guest { local = "tmd_bcnt"; addr = tmd_field 8; width = Width.W32 };
          ]
          (br ((fld "xmit_pos" +% lcl "tmd_bcnt") <=% buflen "buffer") "tx_copy"
             "tx_drop");
        blk "tx_copy"
          [
            dma_in ~buf:"buffer" ~buf_off:(fld "xmit_pos") ~addr:(lcl "tmd_addr")
              ~len:(lcl "tmd_bcnt");
            set "xmit_pos" (fld "xmit_pos" +% lcl "tmd_bcnt");
            local "fsize" (lcl "fsize" +% lcl "tmd_bcnt");
          ]
          (br ((lcl "tmd_status" &% c64 enp_bit) <>% c 0) "tx_send_chk" "tx_finish");
        blk "tx_drop" [ set "xmit_pos" (c 0); local "fsize" (c 0) ] (goto "tx_finish");
      ]
  in
  let crc_stmts =
    [
      setb "buffer" (lcl "lsize") (bufb "buffer" (c 0) ^% c 0x5A);
      setb "buffer" (lcl "lsize" +% c 1) (c 0xA5);
      setb "buffer" (lcl "lsize" +% c 2) (c 0x3C);
      setb "buffer" (lcl "lsize" +% c 3) (c 0xC3);
    ]
  in
  let loopback_blocks =
    if vuln_750x then
      (* CVE-2015-7504: FCS appended without bounding size + 4. *)
      [
        blk "tx_loopback" [ local "lsize" (lcl "fsize") ] (goto "lb_crc");
        blk "lb_crc"
          (crc_stmts @ [ or_csr0 csr0_rint; set "xmit_pos" (c 0); local "fsize" (c 0) ])
          (goto "tx_finish");
      ]
    else
      [
        blk "tx_loopback"
          [ local "lsize" (lcl "fsize") ]
          (br ((lcl "lsize" +% c 4) <=% buflen "buffer") "lb_crc" "lb_skip");
        blk "lb_crc"
          (crc_stmts @ [ or_csr0 csr0_rint; set "xmit_pos" (c 0); local "fsize" (c 0) ])
          (goto "tx_finish");
        blk "lb_skip"
          [ or_csr0 csr0_rint; set "xmit_pos" (c 0); local "fsize" (c 0) ]
          (goto "tx_finish");
      ]
  in
  handler "write"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    ([
       entry "w_entry" []
         (switch (prm "offset")
            [ (0x10, "w_rdp"); (0x12, "w_rap"); (0x14, "w_reset"); (0x16, "w_bdp") ]
            "w_exit");
       blk "w_rap" [ set "rap" (prm "data" &% c 0xFF) ] (goto "w_exit");
       blk "w_reset"
         [
           set "csr0" (c ~w:Width.W16 csr0_stop);
           set "xmit_pos" (c 0);
           set "recv_pos" (c 0);
           set "xmit_idx" (c 0);
           set "recv_idx" (c 0);
         ]
         (goto "w_exit");
       blk "w_bdp" [] (br (fld "rap" ==% c 20) "w_bcr20" "w_exit");
       blk "w_bcr20" [ set "bcr20" (prm "data") ] (goto "w_exit");
       cmd_decision "w_rdp" []
         (switch (fld "rap")
            [
              (0, "w_csr0");
              (1, "w_csr1");
              (2, "w_csr2");
              (15, "w_csr15");
              (76, "w_csr76");
              (78, "w_csr78");
            ]
            "w_exit");
       blk "w_csr1"
         [
           set "init_addr"
             (bor Width.W32
                (band Width.W32 (fld "init_addr") (c64 0xFFFF0000L))
                (prm "data" &% c 0xFFFF));
         ]
         (goto "w_exit");
       blk "w_csr2"
         [
           set "init_addr"
             (bor Width.W32
                (band Width.W32 (fld "init_addr") (c 0xFFFF))
                (shl Width.W32 (prm "data" &% c 0xFFFF) (c 16)));
         ]
         (goto "w_exit");
       blk "w_csr15" [ set "mode" (prm "data") ] (goto "w_exit");
       blk "w_csr78" [ set "xmtrl" (prm "data") ] (goto "w_exit");
       blk "w_csr0" [] (br ((prm "data" &% c csr0_stop) <>% c 0) "cb_stop" "cb_chk_init");
       blk "cb_stop" [ set "csr0" (c ~w:Width.W16 csr0_stop) ] (goto "w_exit");
       blk "cb_chk_init" []
         (br ((prm "data" &% c csr0_init) <>% c 0) "cb_init" "cb_chk_strt");
       blk "cb_init"
         [
           Stmt.Read_guest
             { local = "ib_mode"; addr = fld "init_addr" +% c ib_mode_off; width = Width.W16 };
           Stmt.Read_guest
             { local = "ib_rdra"; addr = fld "init_addr" +% c ib_rdra_off; width = Width.W32 };
           Stmt.Read_guest
             { local = "ib_tdra"; addr = fld "init_addr" +% c ib_tdra_off; width = Width.W32 };
           Stmt.Read_guest
             { local = "ib_rcvrl"; addr = fld "init_addr" +% c ib_rcvrl_off; width = Width.W32 };
           Stmt.Read_guest
             { local = "ib_xmtrl"; addr = fld "init_addr" +% c ib_xmtrl_off; width = Width.W32 };
           set "mode" (lcl "ib_mode");
           set "rdra" (lcl "ib_rdra");
           set "tdra" (lcl "ib_tdra");
         ]
         (goto "cb_init_rings");
     ]
    @ init_ring_blocks
    @ [
        blk "cb_init_done"
          [
            set "recv_idx" (c 0);
            set "xmit_idx" (c 0);
            (* INIT clears STOP, like the real chip. *)
            set "csr0"
              (bor Width.W16
                 (band Width.W16 (fld "csr0") (c (0xFFFF lxor csr0_stop)))
                 (c (csr0_idon lor csr0_init)));
          ]
          (icall (fld "irq") "cb_chk_strt");
        blk "cb_chk_strt" []
          (br ((prm "data" &% c csr0_strt) <>% c 0) "cb_strt" "cb_chk_tdmd");
        blk "cb_strt"
          [
            set "csr0"
              (bor Width.W16
                 (band Width.W16 (fld "csr0") (c (0xFFFF lxor csr0_stop)))
                 (c (csr0_strt lor csr0_txon lor csr0_rxon)));
          ]
          (goto "cb_chk_tdmd");
        blk "cb_chk_tdmd" []
          (br ((prm "data" &% c csr0_tdmd) <>% c 0) "tx_poll" "cb_inea");
        blk "cb_inea"
          [
            set "csr0"
              (bor Width.W16
                 (band Width.W16 (fld "csr0") (c (0xFFFF lxor csr0_inea)))
                 (prm "data" &% c csr0_inea));
          ]
          (goto "w_exit");
        blk "tx_poll" [ local "fsize" (c 0) ]
          (br ((fld "csr0" &% c csr0_txon) <>% c 0) "tx_loop" "cb_inea");
        blk "tx_loop"
          [ Stmt.Read_guest { local = "tmd_status"; addr = tmd_field 4; width = Width.W32 } ]
          (br ((lcl "tmd_status" &% c64 own_bit) <>% c 0) "tx_own" "tx_done");
      ]
    @ tx_copy_blocks
    @ [
        blk "tx_send_chk" []
          (br ((fld "mode" &% c 4) <>% c 0) "tx_loopback" "tx_wire");
        blk "tx_wire"
          [
            set "wr_sum" (bxor Width.W32 (fld "wr_sum") (bufb "buffer" (c 0)));
            set "xmit_pos" (c 0);
            local "fsize" (c 0);
          ]
          (goto "tx_finish");
      ]
    @ loopback_blocks
    @ [
        blk "tx_finish"
          [
            store ~w:Width.W32 (tmd_field 4)
              (band Width.W32 (lcl "tmd_status") (c64 0x7FFFFFFFL));
            set "xmit_idx" (fld "xmit_idx" +% c 1);
          ]
          (br (fld "xmit_idx" >=% fld "xmtrl") "tx_wrap" "tx_int");
        blk "tx_wrap" [ set "xmit_idx" (c 0) ] (goto "tx_int");
        blk "tx_int" [ or_csr0 csr0_tint ] (icall (fld "irq") "tx_loop_back");
        blk "tx_loop_back" [] (goto "tx_loop");
        blk "tx_done" [] (goto "cb_inea");
        exit_ "w_exit" [];
      ]
    @ csr76_blocks)

let receive_handler ~vuln_7512 ~vuln_7909 =
  let entry_blocks =
    if vuln_7512 then
      [
        entry "rx_entry" []
          (br ((fld "csr0" &% c csr0_rxon) <>% c 0) "rx_copy" "rx_exit");
      ]
    else
      [
        entry "rx_entry" []
          (br ((fld "csr0" &% c csr0_rxon) <>% c 0) "rx_szchk" "rx_exit");
        blk "rx_szchk" [] (br (prm "size" >% buflen "buffer") "rx_exit" "rx_copy");
      ]
  in
  let scan_exit_cond =
    (* CVE-2016-7909: equality exit is unreachable for rcvrl = 0. *)
    if vuln_7909 then lcl "scan" ==% fld "rcvrl" else lcl "scan" >=% fld "rcvrl"
  in
  handler "receive"
    ~params:[ "size"; "pkt_addr" ]
    (entry_blocks
    @ [
        blk "rx_copy"
          [
            set "recv_pos" (c 0);
            dma_in ~buf:"buffer" ~buf_off:(fld "recv_pos") ~addr:(prm "pkt_addr")
              ~len:(prm "size");
            local "scan" (c 0);
          ]
          (goto "rx_scan");
        blk "rx_scan"
          [ Stmt.Read_guest { local = "rmd_status"; addr = rmd_field 4; width = Width.W32 } ]
          (br ((lcl "rmd_status" &% c64 own_bit) <>% c 0) "rx_deliver" "rx_next");
        blk "rx_next"
          [ set "recv_idx" (fld "recv_idx" +% c 1) ]
          (br (fld "recv_idx" >=% fld "rcvrl") "rx_widx" "rx_cnt");
        blk "rx_widx" [ set "recv_idx" (c 0) ] (goto "rx_cnt");
        blk "rx_cnt" [ local "scan" (lcl "scan" +% c 1) ]
          (br scan_exit_cond "rx_miss" "rx_scan");
        blk "rx_miss" [ set "csr0" (bor Width.W16 (fld "csr0") (c csr0_miss)) ]
          (goto "rx_exit");
        blk "rx_deliver"
          [
            Stmt.Read_guest { local = "rmd_addr"; addr = rmd_field 0; width = Width.W32 };
            dma_out ~buf:"buffer" ~buf_off:(c 0) ~addr:(lcl "rmd_addr") ~len:(prm "size");
            store ~w:Width.W32 (rmd_field 4)
              (band Width.W32 (lcl "rmd_status") (c64 0x7FFFFFFFL));
            store ~w:Width.W32 (rmd_field 12) (prm "size");
            set "recv_idx" (fld "recv_idx" +% c 1);
          ]
          (br (fld "recv_idx" >=% fld "rcvrl") "rx_dwrap" "rx_int");
        blk "rx_dwrap" [ set "recv_idx" (c 0) ] (goto "rx_int");
        blk "rx_int" [ set "csr0" (bor Width.W16 (fld "csr0") (c csr0_rint)) ]
          (icall (fld "irq") "rx_end");
        blk "rx_end" [] (goto "rx_exit");
        exit_ "rx_exit" [];
      ])

let read_handler =
  handler "read"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    [
      entry "r_entry" []
        (switch (prm "offset")
           [ (0x10, "r_rdp"); (0x12, "r_rap"); (0x14, "r_reset"); (0x16, "r_bdp") ]
           "r_zero");
      blk "r_rap" [ respond (fld "rap") ] (goto "r_exit");
      blk "r_reset" [ respond (c 0) ] (goto "r_exit");
      blk "r_zero" [ respond (c 0) ] (goto "r_exit");
      blk "r_rdp" []
        (switch (fld "rap")
           [
             (0, "r_csr0");
             (1, "r_csr1");
             (2, "r_csr2");
             (15, "r_csr15");
             (76, "r_csr76");
             (78, "r_csr78");
             (88, "r_chipid");
           ]
           "r_zero2");
      blk "r_csr0" [ respond (fld "csr0") ] (goto "r_exit");
      blk "r_csr1" [ respond (fld "init_addr" &% c 0xFFFF) ] (goto "r_exit");
      blk "r_csr2" [ respond (shr Width.W32 (fld "init_addr") (c 16)) ] (goto "r_exit");
      blk "r_csr15" [ respond (fld "mode") ] (goto "r_exit");
      blk "r_csr76" [ respond (fld "rcvrl") ] (goto "r_exit");
      blk "r_csr78" [ respond (fld "xmtrl") ] (goto "r_exit");
      blk "r_chipid" [ respond (c 0x2621) ] (goto "r_exit");
      blk "r_zero2" [ respond (c 0) ] (goto "r_exit");
      (* BCR4: link status comes from the host NIC — invisible to the
         ES-Checker, hence a sync point in the execution specification. *)
      blk "r_bdp" [] (br (fld "rap" ==% c 4) "r_lnkst" "r_bdp_other");
      blk "r_lnkst" [ hostv "lnk" "pcnet_link" ]
        (br (lcl "lnk" <>% c 0) "r_lnk_up" "r_lnk_down");
      blk "r_lnk_up" [ set "lnkst" (c 0x40); respond (c 0xC0) ] (goto "r_exit");
      blk "r_lnk_down" [ set "lnkst" (c 0); respond (c 0) ] (goto "r_exit");
      blk "r_bdp_other" [] (br (fld "rap" ==% c 20) "r_bcr20" "r_zero3");
      blk "r_bcr20" [ respond (fld "bcr20") ] (goto "r_exit");
      blk "r_zero3" [ respond (c 0) ] (goto "r_exit");
      exit_ "r_exit" [];
    ]

let program ~version =
  let vuln_750x = Qemu_version.(version < cve_2015_750x_fixed_in) in
  let vuln_7909 = Qemu_version.(version < cve_2016_7909_fixed_in) in
  Program.make ~name ~layout ~code_base:0x0042_0000L
    ~callbacks:
      [ (irq_cb, { Program.cb_name = "pcnet_irq"; action = Program.Raise_irq_line }) ]
    [
      write_handler ~vuln_750x ~vuln_7909;
      read_handler;
      receive_handler ~vuln_7512:vuln_750x ~vuln_7909;
    ]

let device ~version =
  let program = program ~version in
  {
    Device.name;
    version;
    program;
    make_binding =
      (fun () ->
        Device.binding_of ~program
          ~pmio:[ (io_base, 0x20) ]
          ~pmio_read:"read" ~pmio_write:"write" ());
  }
