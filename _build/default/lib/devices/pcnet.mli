(** AMD PCNet-PCI II network adapter, modelled after QEMU's [pcnet.c].

    Port-mapped at [0xC100]: RDP (CSR data), RAP (register address), reset
    and BDP (BCR data).  The driver initialises the device by staging an
    init block in guest memory (mode, receive/transmit descriptor ring
    addresses and lengths) and setting CSR0.INIT; transmission polls the
    TX descriptor ring on CSR0.TDMD, DMA-ing owned frames into the 4096-byte
    device buffer; reception scans the RX ring for an owned descriptor and
    DMAs the frame to the guest.  The [irq] function pointer sits directly
    after the frame buffer, as the corresponding QEMU heap layout that made
    the 2015 exploits control-flow hijacks.

    Vulnerabilities (version-gated):
    - {b CVE-2015-7504} (fixed in 2.5.0): in loopback mode the FCS/CRC is
      appended at [buffer\[size\]] without bounding [size + 4], so a
      4096-byte loopback frame overwrites the adjacent [irq] pointer.
    - {b CVE-2015-7512} (fixed in 2.5.0): received frames are copied without
      checking [size] against the buffer, so an oversized frame corrupts
      the fields behind the buffer.
    - {b CVE-2016-7909} (fixed in 2.7.1): the receive-ring scan exits on
      [scanned == rcvrl]; a guest that programs a ring length of zero makes
      the condition unreachable and the scan loops forever. *)

val name : string
val io_base : int64
val irq_cb : int64
val buffer_size : int
val cve_2015_750x_fixed_in : Qemu_version.t
val cve_2016_7909_fixed_in : Qemu_version.t

(** Init-block field offsets relative to the init address (mode, rdra,
    tdra, rcvrl, xmtrl). *)

val ib_mode_off : int
val ib_rdra_off : int
val ib_tdra_off : int
val ib_rcvrl_off : int
val ib_xmtrl_off : int

(** Ring descriptors are 16 bytes: buffer address, status (bit 31 = OWN),
    byte count, message count. *)

val desc_size : int

val layout : Devir.Layout.t
val program : version:Qemu_version.t -> Devir.Program.t
val device : version:Qemu_version.t -> Device.t
