type t = int * int * int

let v major minor patch = (major, minor, patch)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some a, Some b, Some c -> (a, b, c)
    | _ -> invalid_arg (Printf.sprintf "Qemu_version.of_string: %s" s))
  | _ -> invalid_arg (Printf.sprintf "Qemu_version.of_string: %s" s)

let to_string (a, b, c) = Printf.sprintf "%d.%d.%d" a b c

let compare = Stdlib.compare
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0

let latest = (99, 0, 0)
