(** QEMU release versions, used to gate vulnerable code paths.

    The paper evaluates each CVE against the QEMU release that shipped the
    bug (e.g. Venom against v2.3.0, CVE-2020-14364 against v5.1.0).  Our
    device models do the same: building a device at a version older than a
    fix includes the faithful vulnerable logic; at or after the fix it
    includes the patched logic. *)

type t

val v : int -> int -> int -> t
(** [v major minor patch]. *)

val of_string : string -> t
(** Parses ["2.3.0"].  Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string

val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val latest : t
(** A version newer than every fix — all patches applied. *)
