open Devir
open Devir.Dsl

let name = "scsi"
let mmio_base = 0x4000_0000L
let irq_cb = 0x0050_4000L
let complete_cb = 0x0050_4008L
let ti_buf_size = 16
let cmdbuf_size = 16
let cve_2015_5158_fixed_in = Qemu_version.v 2 4 1
let cve_2016_4439_fixed_in = Qemu_version.v 2 6 1
let cve_2016_1568_fixed_in = Qemu_version.v 2 5 1

(* Interrupt register bits. *)
let intr_fc = 0x08  (* function complete *)
let intr_bs = 0x10  (* bus service *)
let intr_dc = 0x20  (* disconnect *)
let intr_rst = 0x80

(* scsi_state values: 0 idle, 1 selected, 2 data-in, 3 data-out, 4 status. *)

(* cmdbuf is followed by ti_size/scsi_state/do_cmd/cdb_len and cdb is
   followed by disk_len/disk_lba: the two overflows corrupt exactly the
   scalars that drive later control flow, as on the real struct. *)
let layout =
  Layout.make
    [
      Layout.reg ~hw:true "tclo" Width.W8;
      Layout.reg ~hw:true "tchi" Width.W8;
      Layout.reg ~hw:true "status" Width.W8;
      Layout.reg ~hw:true "intr" Width.W8;
      Layout.reg ~hw:true "seqstep" Width.W8;
      Layout.reg ~hw:true "wregs_cmd" Width.W8;
      Layout.reg ~hw:true "dma_addr" Width.W32;
      Layout.reg "ti_rptr" Width.W16;
      Layout.reg "ti_wptr" Width.W16;
      Layout.reg "lun" Width.W8;
      Layout.reg "completions" Width.W32;
      Layout.reg "wr_sum" Width.W32;
      Layout.reg "req_active" Width.W8;
      Layout.buf "ti_buf" ti_buf_size;
      Layout.buf "dma_buf" 4096;
      Layout.buf "cmdbuf" cmdbuf_size;
      Layout.reg "ti_size" Width.W16;
      Layout.reg "scsi_state" Width.W8;
      Layout.reg "do_cmd" Width.W8;
      Layout.reg "cdb_len" Width.W16;
      Layout.buf "cdb" 16;
      Layout.reg "disk_len" Width.W32;
      Layout.reg "disk_lba" Width.W32;
      Layout.fn_ptr ~init:complete_cb "complete_fn";
      Layout.fn_ptr ~init:irq_cb "irq";
      Layout.buf "guard" 64;
    ]

let disk_pattern = band Width.W32 ((fld "disk_lba" *% c 17) +% c 0x40) (c 0xFF)

let write_handler ~vuln_5158 ~vuln_4439 ~vuln_1568 =
  let sel_dma_blocks =
    if vuln_4439 then
      (* CVE-2016-4439: the DMA length is trusted. *)
      [
        blk "sel_dma"
          [
            Stmt.Read_guest { local = "dmalen"; addr = fld "dma_addr"; width = Width.W32 };
            local "cl" (lcl "dmalen");
            dma_in ~buf:"cmdbuf" ~buf_off:(c 0) ~addr:(fld "dma_addr" +% c 4)
              ~len:(lcl "cl");
          ]
          (goto "sel_parse");
      ]
    else
      [
        blk "sel_dma"
          [ Stmt.Read_guest { local = "dmalen"; addr = fld "dma_addr"; width = Width.W32 } ]
          (br (lcl "dmalen" >% c cmdbuf_size) "sel_clamp" "sel_take");
        blk "sel_clamp" [ local "cl" (c cmdbuf_size) ] (goto "sel_dma_copy");
        blk "sel_take" [ local "cl" (lcl "dmalen") ] (goto "sel_dma_copy");
        blk "sel_dma_copy"
          [
            dma_in ~buf:"cmdbuf" ~buf_off:(c 0) ~addr:(fld "dma_addr" +% c 4)
              ~len:(lcl "cl");
          ]
          (goto "sel_parse");
      ]
  in
  let cdb_default_blocks =
    if vuln_5158 then
      (* CVE-2015-5158: reserved command groups take the transferred length
         as the CDB length. *)
      [ blk "cl_bad" [ set "cdb_len" (lcl "cl") ] (goto "cp_init") ]
    else
      [
        blk "cl_bad"
          [
            set "status" (c ~w:Width.W8 2);
            set "do_cmd" (c ~w:Width.W8 0);
            set "intr" (c ~w:Width.W8 intr_fc);
          ]
          (icall (fld "irq") "cl_bad_end");
        blk "cl_bad_end" [] (goto "es_exit");
      ]
  in
  let iccs_blocks =
    if vuln_1568 then
      [ blk "es_iccs" [] (goto "iccs_do") ]
    else
      [ blk "es_iccs" [] (br (fld "req_active" ==% c 1) "iccs_do" "es_exit") ]
  in
  handler "mmio_write"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    ([
       entry "w_entry" []
         (switch (prm "offset")
            [
              (0, "w_tclo");
              (1, "w_tchi");
              (2, "w_fifo");
              (3, "w_cmd");
              (8, "w_dmaaddr");
            ]
            "es_exit");
       blk "w_tclo" [ set "tclo" (prm "data") ] (goto "es_exit");
       blk "w_tchi" [ set "tchi" (prm "data") ] (goto "es_exit");
       blk "w_dmaaddr" [ set "dma_addr" (prm "data") ] (goto "es_exit");
       blk "w_fifo" [] (br (fld "ti_wptr" <% c ti_buf_size) "wf_push" "es_exit");
       blk "wf_push"
         [
           setb "ti_buf" (fld "ti_wptr") (prm "data");
           set "ti_wptr" (fld "ti_wptr" +% c 1);
           set "ti_size" (fld "ti_wptr");
         ]
         (goto "es_exit");
       cmd_decision "w_cmd"
         [ set "wregs_cmd" (prm "data") ]
         (switch (prm "data" &% c 0x7F)
            [
              (0x00, "es_nop");
              (0x01, "es_flush");
              (0x02, "es_reset");
              (0x03, "es_busreset");
              (0x10, "ti_chk");
              (0x11, "es_iccs");
              (0x12, "es_msgacc");
              (0x41, "sel_entry");
              (0x42, "sel_entry");
            ]
            "es_nop");
       blk "es_nop" [] (goto "es_exit");
       blk "es_flush"
         [ set "ti_rptr" (c 0); set "ti_wptr" (c 0) ]
         (goto "es_exit");
       blk "es_reset"
         [
           set "ti_rptr" (c 0);
           set "ti_wptr" (c 0);
           set "ti_size" (c 0);
           set "scsi_state" (c ~w:Width.W8 0);
           set "do_cmd" (c ~w:Width.W8 0);
           set "req_active" (c ~w:Width.W8 0);
           set "status" (c ~w:Width.W8 0);
           set "intr" (c ~w:Width.W8 0);
           set "disk_len" (c 0);
           set "cdb_len" (c 0);
           set "seqstep" (c ~w:Width.W8 0);
         ]
         (goto "es_exit");
       blk "es_busreset" [ set "intr" (c ~w:Width.W8 intr_rst) ]
         (icall (fld "irq") "es_busreset_end");
       blk "es_busreset_end" [] (goto "es_exit");
       (* SELECT: latch the CDB (FIFO or DMA), parse, execute. *)
       blk "sel_entry" [ set "seqstep" (c ~w:Width.W8 0) ]
         (br ((fld "wregs_cmd" &% c 0x80) <>% c 0) "sel_dma" "sel_fifo");
       blk "sel_fifo"
         [ local "cl" (fld "ti_wptr"); local "ci" (c 0) ]
         (br (lcl "cl" ==% c 0) "sel_parse" "sf_loop");
       blk "sf_loop"
         [
           setb "cmdbuf" (lcl "ci") (bufb "ti_buf" (lcl "ci"));
           local "ci" (lcl "ci" +% c 1);
         ]
         (br (lcl "ci" <% lcl "cl") "sf_loop" "sel_parse");
       blk "sel_parse" [ set "do_cmd" (c ~w:Width.W8 1) ]
         (br ((fld "wregs_cmd" &% c 0x7F) ==% c 0x41) "sp_atn" "sp_noatn");
       blk "sp_atn"
         [
           set "lun" (band Width.W8 (bufb "cmdbuf" (c 0)) (c 7));
           local "cdb_start" (c 1);
         ]
         (goto "cdb_lencalc");
       blk "sp_noatn"
         [ set "lun" (c ~w:Width.W8 0); local "cdb_start" (c 0) ]
         (goto "cdb_lencalc");
       blk "cdb_lencalc"
         [
           local "op" (bufb "cmdbuf" (lcl "cdb_start"));
           local "grp" (shr Width.W32 (lcl "op") (c 5));
         ]
         (switch (lcl "grp")
            [ (0, "cl6"); (1, "cl10"); (2, "cl10"); (5, "cl12") ]
            "cl_bad");
       blk "cl6" [ set "cdb_len" (c 6) ] (goto "cp_init");
       blk "cl10" [ set "cdb_len" (c 10) ] (goto "cp_init");
       blk "cl12" [ set "cdb_len" (c 12) ] (goto "cp_init");
       blk "cp_init" [ local "ci" (c 0) ] (goto "cp_loop");
       blk "cp_loop"
         [
           setb "cdb" (lcl "ci") (bufb "cmdbuf" (lcl "ci" +% lcl "cdb_start"));
           local "ci" (lcl "ci" +% c 1);
         ]
         (br (lcl "ci" <% fld "cdb_len") "cp_loop" "scsi_exec");
       cmd_decision "scsi_exec" []
         (switch (bufb "cdb" (c 0))
            [
              (0x00, "sc_tur");
              (0x03, "sc_sense");
              (0x12, "sc_inquiry");
              (0x1A, "sc_modesense");
              (0x25, "sc_readcap");
              (0x28, "sc_read10");
              (0x2A, "sc_write10");
            ]
            "sc_unknown");
       blk "sc_tur"
         [ set "status" (c ~w:Width.W8 0); set "scsi_state" (c ~w:Width.W8 4) ]
         (goto "sc_done");
       blk "sc_sense"
         [ set "disk_len" (c 18); set "disk_lba" (c 0);
           set "scsi_state" (c ~w:Width.W8 2); set "status" (c ~w:Width.W8 0) ]
         (goto "sc_done");
       blk "sc_inquiry"
         [ set "disk_len" (c 36); set "disk_lba" (c 0);
           set "scsi_state" (c ~w:Width.W8 2); set "status" (c ~w:Width.W8 0) ]
         (goto "sc_done");
       blk "sc_modesense"
         [ set "disk_len" (bufb "cdb" (c 4)); set "disk_lba" (c 0);
           set "scsi_state" (c ~w:Width.W8 2); set "status" (c ~w:Width.W8 0) ]
         (goto "sc_done");
       blk "sc_readcap"
         [ set "disk_len" (c 8); set "disk_lba" (c 0);
           set "scsi_state" (c ~w:Width.W8 2); set "status" (c ~w:Width.W8 0) ]
         (goto "sc_done");
       blk "sc_read10"
         [
           set "disk_lba"
             (shl Width.W32 (bufb "cdb" (c 2)) (c 24)
             |% (shl Width.W32 (bufb "cdb" (c 3)) (c 16)
                |% (shl Width.W32 (bufb "cdb" (c 4)) (c 8) |% bufb "cdb" (c 5))));
           local "nblk"
             (shl Width.W32 (bufb "cdb" (c 7)) (c 8) |% bufb "cdb" (c 8));
           set "disk_len" (lcl "nblk" *% c 512);
           set "scsi_state" (c ~w:Width.W8 2);
           set "status" (c ~w:Width.W8 0);
         ]
         (goto "sc_done");
       blk "sc_write10"
         [
           set "disk_lba"
             (shl Width.W32 (bufb "cdb" (c 2)) (c 24)
             |% (shl Width.W32 (bufb "cdb" (c 3)) (c 16)
                |% (shl Width.W32 (bufb "cdb" (c 4)) (c 8) |% bufb "cdb" (c 5))));
           local "nblk"
             (shl Width.W32 (bufb "cdb" (c 7)) (c 8) |% bufb "cdb" (c 8));
           set "disk_len" (lcl "nblk" *% c 512);
           set "scsi_state" (c ~w:Width.W8 3);
           set "status" (c ~w:Width.W8 0);
         ]
         (goto "sc_done");
       (* Unknown opcode: check condition; note disk_len is left as-is. *)
       blk "sc_unknown"
         [ set "status" (c ~w:Width.W8 2); set "scsi_state" (c ~w:Width.W8 4) ]
         (goto "sc_done");
       blk "sc_done"
         [
           set "req_active" (c ~w:Width.W8 1);
           set "seqstep" (c ~w:Width.W8 4);
           set "intr" (c ~w:Width.W8 (intr_bs lor intr_fc));
         ]
         (icall (fld "irq") "sc_done_end");
       blk "sc_done_end" [] (goto "es_exit");
       (* TRANSFER INFO.  The defensive length check is never taken by
          benign traffic; CVE-2015-5158's corrupted disk_len lands here. *)
       blk "ti_chk" [] (br (fld "ti_size" >% c ti_buf_size) "es_badti" "ti_len_chk");
       (* An impossible FIFO byte count: CVE-2016-4439's corrupted ti_size
          lands here. *)
       blk "es_badti"
         [ set "ti_size" (c 0); set "ti_rptr" (c 0); set "ti_wptr" (c 0);
           set "status" (c ~w:Width.W8 2) ]
         (goto "es_exit");
       blk "ti_len_chk" [] (br (fld "disk_len" >% c 0x100000) "es_badlen" "ti_state_sw");
       blk "es_badlen"
         [ set "disk_len" (c 0); set "status" (c ~w:Width.W8 2) ]
         (goto "es_exit");
       blk "ti_state_sw" []
         (switch (fld "scsi_state")
            [ (0, "ti_idle"); (1, "ti_idle"); (2, "ti_datain"); (3, "ti_dataout");
              (4, "ti_statusph") ]
            "es_badstate");
       (* An impossible device state: CVE-2016-4439's corrupted scsi_state
          lands here. *)
       blk "es_badstate"
         [ set "status" (c ~w:Width.W8 2); set "intr" (c ~w:Width.W8 intr_dc) ]
         (goto "es_exit");
       blk "ti_idle" [ set "intr" (c ~w:Width.W8 intr_dc) ] (goto "es_exit");
       (* DMA transfers move page-sized chunks through the external DMA
          engine's bounce buffer; the FIFO path moves 16 bytes at a time. *)
       blk "ti_datain" []
         (br ((fld "wregs_cmd" &% c 0x80) <>% c 0) "ti_di_dmasz" "ti_di_fifosz");
       blk "ti_di_dmasz" []
         (br (fld "disk_len" <=% buflen "dma_buf") "ti_di_dlast" "ti_di_dfull");
       blk "ti_di_dlast" [ local "chunk" (fld "disk_len") ] (goto "ti_di_dma");
       blk "ti_di_dfull" [ local "chunk" (buflen "dma_buf") ] (goto "ti_di_dma");
       blk "ti_di_fifosz" []
         (br (fld "disk_len" <=% c ti_buf_size) "ti_di_last" "ti_di_full");
       blk "ti_di_last" [ local "chunk" (fld "disk_len") ] (goto "ti_di_copy");
       blk "ti_di_full" [ local "chunk" (c ti_buf_size) ] (goto "ti_di_copy");
       blk "ti_di_copy"
         [ fill "ti_buf" ~off:(c 0) ~len:(lcl "chunk") disk_pattern ]
         (goto "ti_di_fifo");
       blk "ti_di_dma"
         [
           fill "dma_buf" ~off:(c 0) ~len:(lcl "chunk") disk_pattern;
           dma_out ~buf:"dma_buf" ~buf_off:(c 0) ~addr:(fld "dma_addr")
             ~len:(lcl "chunk");
           set "dma_addr" (fld "dma_addr" +% lcl "chunk");
         ]
         (goto "ti_di_adv");
       blk "ti_di_fifo"
         [ set "ti_wptr" (lcl "chunk"); set "ti_rptr" (c 0);
           set "ti_size" (lcl "chunk") ]
         (goto "ti_di_adv");
       blk "ti_di_adv"
         [
           set "disk_len" (sub Width.W32 (fld "disk_len") (lcl "chunk"));
           set "disk_lba" (fld "disk_lba" +% c 1);
           set "intr" (c ~w:Width.W8 intr_bs);
         ]
         (br (fld "disk_len" ==% c 0) "ti_di_done" "ti_di_more");
       blk "ti_di_done" [ set "scsi_state" (c ~w:Width.W8 4) ]
         (icall (fld "irq") "ti_di_done_end");
       blk "ti_di_done_end" [] (goto "es_exit");
       blk "ti_di_more" [] (icall (fld "irq") "ti_di_more_end");
       blk "ti_di_more_end" [] (goto "es_exit");
       blk "ti_dataout" []
         (br ((fld "wregs_cmd" &% c 0x80) <>% c 0) "ti_do_dmasz" "ti_do_fifosz");
       blk "ti_do_dmasz" []
         (br (fld "disk_len" <=% buflen "dma_buf") "ti_do_dlast" "ti_do_dfull");
       blk "ti_do_dlast" [ local "chunk" (fld "disk_len") ] (goto "ti_do_dma");
       blk "ti_do_dfull" [ local "chunk" (buflen "dma_buf") ] (goto "ti_do_dma");
       blk "ti_do_fifosz" []
         (br (fld "disk_len" <=% c ti_buf_size) "ti_do_last" "ti_do_full");
       blk "ti_do_last" [ local "chunk" (fld "disk_len") ] (goto "ti_do_fifo");
       blk "ti_do_full" [ local "chunk" (c ti_buf_size) ] (goto "ti_do_fifo");
       blk "ti_do_dma"
         [
           dma_in ~buf:"dma_buf" ~buf_off:(c 0) ~addr:(fld "dma_addr")
             ~len:(lcl "chunk");
           set "wr_sum" (bxor Width.W32 (fld "wr_sum") (bufb "dma_buf" (c 0)));
           set "dma_addr" (fld "dma_addr" +% lcl "chunk");
         ]
         (goto "ti_do_adv");
       blk "ti_do_fifo"
         [
           set "ti_rptr" (c 0);
           set "ti_wptr" (c 0);
           set "wr_sum" (bxor Width.W32 (fld "wr_sum") (bufb "ti_buf" (c 0)));
         ]
         (goto "ti_do_adv");
       blk "ti_do_adv"
         [
           set "disk_len" (sub Width.W32 (fld "disk_len") (lcl "chunk"));
           set "intr" (c ~w:Width.W8 intr_bs);
         ]
         (br (fld "disk_len" ==% c 0) "ti_do_done" "ti_do_more");
       blk "ti_do_done" [ set "scsi_state" (c ~w:Width.W8 4) ]
         (icall (fld "irq") "ti_do_done_end");
       blk "ti_do_done_end" [] (goto "es_exit");
       blk "ti_do_more" [] (icall (fld "irq") "ti_do_more_end");
       blk "ti_do_more_end" [] (goto "es_exit");
       blk "ti_statusph"
         [
           setb "ti_buf" (c 0) (fld "status");
           setb "ti_buf" (c 1) (c 0);
           set "ti_wptr" (c 2);
           set "ti_rptr" (c 0);
           set "intr" (c ~w:Width.W8 (intr_bs lor intr_fc));
         ]
         (icall (fld "irq") "ti_st_end");
       blk "ti_st_end" [] (goto "es_exit");
       (* ICCS: the completion callback runs here. *)
       blk "iccs_do"
         [
           set "completions" (fld "completions" +% c 1);
           setb "ti_buf" (c 0) (fld "status");
           setb "ti_buf" (c 1) (c 0);
           set "ti_wptr" (c 2);
           set "ti_rptr" (c 0);
           set "intr" (c ~w:Width.W8 (intr_bs lor intr_fc));
         ]
         (icall (fld "complete_fn") "iccs_end");
       blk "iccs_end" [] (goto "es_exit");
       blk "es_msgacc"
         [
           set "req_active" (c ~w:Width.W8 0);
           set "scsi_state" (c ~w:Width.W8 0);
           set "do_cmd" (c ~w:Width.W8 0);
           set "intr" (c ~w:Width.W8 intr_dc);
         ]
         (icall (fld "irq") "msgacc_end");
       cmd_end "msgacc_end" [] (goto "es_exit");
       exit_ "es_exit" [];
     ]
    @ sel_dma_blocks @ cdb_default_blocks @ iccs_blocks)

let read_handler =
  handler "mmio_read"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    [
      entry "r_entry" []
        (switch (prm "offset")
           [
             (0, "r_tclo");
             (1, "r_tchi");
             (2, "r_fifo");
             (4, "r_status");
             (5, "r_intr");
             (6, "r_seq");
             (7, "r_flags");
           ]
           "r_zero");
      blk "r_tclo" [ respond (fld "tclo") ] (goto "r_exit");
      blk "r_tchi" [ respond (fld "tchi") ] (goto "r_exit");
      blk "r_status" [ respond (fld "status") ] (goto "r_exit");
      blk "r_seq" [ respond (fld "seqstep") ] (goto "r_exit");
      blk "r_flags" [ respond (fld "ti_wptr") ] (goto "r_exit");
      blk "r_zero" [ respond (c 0) ] (goto "r_exit");
      (* Interrupt register reads clear it, like the real chip. *)
      blk "r_intr" [ respond (fld "intr"); set "intr" (c ~w:Width.W8 0) ]
        (goto "r_exit");
      blk "r_fifo" [] (br (fld "ti_rptr" <% fld "ti_wptr") "rf_pop" "rf_empty");
      blk "rf_pop"
        [
          respond (bufb "ti_buf" (fld "ti_rptr"));
          set "ti_rptr" (fld "ti_rptr" +% c 1);
        ]
        (goto "r_exit");
      blk "rf_empty" [ respond (c 0) ] (goto "r_exit");
      exit_ "r_exit" [];
    ]

let program ~version =
  let vuln_5158 = Qemu_version.(version < cve_2015_5158_fixed_in) in
  let vuln_4439 = Qemu_version.(version < cve_2016_4439_fixed_in) in
  let vuln_1568 = Qemu_version.(version < cve_2016_1568_fixed_in) in
  Program.make ~name ~layout ~code_base:0x0044_0000L
    ~callbacks:
      [
        (irq_cb, { Program.cb_name = "esp_irq"; action = Program.Raise_irq_line });
        (complete_cb, { Program.cb_name = "esp_complete"; action = Program.Raise_irq_line });
      ]
    [ write_handler ~vuln_5158 ~vuln_4439 ~vuln_1568; read_handler ]

let device ~version =
  let program = program ~version in
  {
    Device.name;
    version;
    program;
    make_binding =
      (fun () ->
        Device.binding_of ~program
          ~mmio:[ (mmio_base, 0x40) ]
          ~mmio_read:"mmio_read" ~mmio_write:"mmio_write" ());
  }
