(** ESP (53C9X) SCSI controller with a disk target, modelled after QEMU's
    [esp.c] + [scsi-bus.c]/[scsi-disk.c].

    Memory-mapped at [0x4000_0000]: transfer count (TCLO/TCHI), the 16-byte
    TI FIFO, the command register, status/interrupt/sequence-step registers
    and a DMA address register.  SELECT (with/without ATN) latches a CDB —
    either from the FIFO or via DMA from a guest descriptor
    ([count][bytes...] at the DMA address) — parses it by SCSI command
    group and executes it against the disk; TRANSFER INFO moves data in
    16-byte FIFO chunks (or via DMA); ICCS/MSGACC finish the request.

    Vulnerabilities (version-gated):
    - {b CVE-2015-5158} (fixed in 2.4.1): a CDB whose opcode falls in a
      reserved command group takes the transferred length as the CDB
      length, so parsing copies past the 16-byte [cdb] into [disk_len] /
      [disk_lba].  Detected only later, when the corrupted [disk_len]
      drives TRANSFER INFO through a defensive branch no benign run takes.
    - {b CVE-2016-4439} (fixed in 2.6.1): [get_cmd] DMA-copies the full
      guest-supplied length into the 16-byte [cmdbuf], corrupting
      [ti_size], [scsi_state] and [cdb_len] behind it — an impossible
      [scsi_state] then takes the TRANSFER INFO switch's default edge.
    - {b CVE-2016-1568 analog} (fixed in 2.5.1): ICCS invokes the
      completion callback without checking that a request is still active;
      after MSGACC a replayed ICCS re-runs a completion for a dead request
      (the use-after-free pattern).  The callback value is stale but {e
      legitimate}, and the path is a trained one — this is the paper's
      acknowledged miss. *)

val name : string
val mmio_base : int64
val irq_cb : int64
val complete_cb : int64
val ti_buf_size : int
val cmdbuf_size : int
val cve_2015_5158_fixed_in : Qemu_version.t
val cve_2016_4439_fixed_in : Qemu_version.t
val cve_2016_1568_fixed_in : Qemu_version.t

val layout : Devir.Layout.t
val program : version:Qemu_version.t -> Devir.Program.t
val device : version:Qemu_version.t -> Device.t
