open Devir
open Devir.Dsl

let name = "sdhci"
let mmio_base = 0x2000_0000L
let irq_cb = 0x0050_1000L
let buf_size = 4096
let cve_2021_3409_fixed_in = Qemu_version.v 6 0 0

(* Normal interrupt status bits. *)
let int_cmd_complete = 0x0001
let int_xfer_complete = 0x0002
let int_buf_write_rdy = 0x0010
let int_buf_read_rdy = 0x0020
let int_error = 0x8000

(* Present-state bits. *)
let prn_write_active = 0x0100
let prn_read_active = 0x0200

(* [fifo_buffer] is last: a runaway transfer escapes the structure quickly,
   like the SDMA heap overflow of the real bug. *)
let layout =
  Layout.make
    [
      Layout.reg ~hw:true "sdma_addr" Width.W32;
      Layout.reg ~hw:true "blksize" Width.W16;
      Layout.reg ~hw:true "blkcnt" Width.W16;
      Layout.reg ~hw:true "argument" Width.W32;
      Layout.reg ~hw:true "trnmod" Width.W16;
      Layout.reg ~hw:true "cmdreg" Width.W16;
      Layout.reg ~hw:true "resp" Width.W32;
      Layout.reg ~hw:true "prnsts" Width.W32;
      Layout.reg ~hw:true "hostctl" Width.W8;
      Layout.reg ~hw:true "clkcon" Width.W16;
      Layout.reg ~hw:true "norintsts" Width.W16;
      Layout.reg "card_state" Width.W8;
      Layout.reg "rca" Width.W16;
      Layout.reg "is_read" Width.W8;
      Layout.reg "transfer_active" Width.W8;
      Layout.reg "data_count" Width.W32;
      Layout.reg "tx_remaining" Width.W32;
      Layout.reg "wr_sum" Width.W32;
      Layout.fn_ptr ~init:irq_cb "irq";
      Layout.buf "fifo_buffer" buf_size;
    ]

let blk_mask e = e &% c 0xFFF

(* Card data served for reads: a function of the argument (the LBA). *)
let card_pattern = band Width.W32 ((fld "argument" *% c 11) +% c 0x30) (c 0xFF)

let set_int bits = set "norintsts" (bor Width.W16 (fld "norintsts") (c bits))

let write_handler ~vulnerable =
  let blksize_blocks =
    if vulnerable then
      (* CVE-2021-3409: no transfer-active gate on the register write. *)
      [ blk "w_blksize" [ set "blksize" (blk_mask (prm "data")) ] (goto "w_exit") ]
    else
      [
        blk "w_blksize" []
          (br (fld "transfer_active" <>% c 0) "w_exit" "w_blksize_ok");
        blk "w_blksize_ok" [ set "blksize" (blk_mask (prm "data")) ] (goto "w_exit");
      ]
  in
  let flush_cond =
    (* The vulnerable flush test uses equality, so a shrunken blksize makes
       it unreachable; the fix compares with >=. *)
    if vulnerable then fld "data_count" ==% blk_mask (fld "blksize")
    else fld "data_count" >=% blk_mask (fld "blksize")
  in
  handler "mmio_write"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    ([
       entry "w_entry" []
         (switch (prm "offset")
            [
              (0x00, "w_sdma");
              (0x04, "w_blksize");
              (0x06, "w_blkcnt");
              (0x08, "w_arg");
              (0x0C, "w_trnmod");
              (0x0E, "w_cmd");
              (0x20, "w_bdata");
              (0x30, "w_norint");
            ]
            "w_exit");
       blk "w_sdma" [ set "sdma_addr" (prm "data") ] (goto "w_exit");
       blk "w_blkcnt" [ set "blkcnt" (prm "data") ] (goto "w_exit");
       blk "w_arg" [ set "argument" (prm "data") ] (goto "w_exit");
       blk "w_trnmod" [ set "trnmod" (prm "data" &% c 0x37) ] (goto "w_exit");
       cmd_decision "w_cmd"
         [ set "cmdreg" (prm "data") ]
         (switch
            (band Width.W16 (shr Width.W16 (fld "cmdreg") (c 8)) (c 0x3F))
            [
              (0, "c_go_idle");
              (2, "c_all_cid");
              (3, "c_send_rca");
              (7, "c_select");
              (8, "c_if_cond");
              (12, "c_stop");
              (13, "c_status");
              (16, "c_blocklen");
              (17, "c_read_single");
              (18, "c_read_multi");
              (24, "c_write_single");
              (25, "c_write_multi");
              (41, "c_acmd41");
              (55, "c_app");
            ]
            "c_unknown");
       blk "c_go_idle"
         [ set "card_state" (c ~w:Width.W8 0); set "resp" (c 0); set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_all_cid"
         [ set "resp" (c64 0xDEADBEEFL); set "card_state" (c ~w:Width.W8 2);
           set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_send_rca"
         [ set "rca" (c ~w:Width.W16 1); set "resp" (c 0x10000);
           set "card_state" (c ~w:Width.W8 3); set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_select"
         [ set "card_state" (c ~w:Width.W8 4); set "resp" (c 0x700);
           set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_if_cond"
         [ set "resp" (fld "argument"); set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_stop"
         [ set "transfer_active" (c ~w:Width.W8 0); set "prnsts" (c 0);
           set "card_state" (c ~w:Width.W8 4); set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_status"
         [ set "resp" (shl Width.W32 (fld "card_state") (c 9));
           set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_blocklen"
         [ set "resp" (c 0x900); set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_acmd41"
         [ set "resp" (c64 0x80FF8000L); set "card_state" (c ~w:Width.W8 1);
           set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_app"
         [ set "resp" (c 0x120); set_int int_cmd_complete ]
         (icall (fld "irq") "c_done");
       blk "c_unknown"
         [ set "resp" (c64 0xFFFFFFFFL); set_int int_error ]
         (goto "w_exit");
       blk "c_read_single" []
         (br (fld "card_state" ==% c 4) "c_read_ok" "c_state_err");
       blk "c_read_ok"
         [
           fill "fifo_buffer" ~off:(c 0) ~len:(blk_mask (fld "blksize")) card_pattern;
           set "data_count" (c 0);
           set "is_read" (c ~w:Width.W8 1);
           set "transfer_active" (c ~w:Width.W8 1);
           set "prnsts" (bor Width.W32 (fld "prnsts") (c (prn_read_active lor 0x800)));
           set_int (int_cmd_complete lor int_buf_read_rdy);
         ]
         (icall (fld "irq") "c_done");
       blk "c_write_single" []
         (br (fld "card_state" ==% c 4) "c_write_ok" "c_state_err");
       blk "c_write_ok"
         [
           set "data_count" (c 0);
           set "is_read" (c ~w:Width.W8 0);
           set "transfer_active" (c ~w:Width.W8 1);
           set "prnsts" (bor Width.W32 (fld "prnsts") (c (prn_write_active lor 0x400)));
           set_int (int_cmd_complete lor int_buf_write_rdy);
         ]
         (icall (fld "irq") "c_done");
       blk "c_state_err"
         [ set "resp" (c64 0x80000000L); set_int int_error ]
         (goto "w_exit");
       (* Multi-block SDMA read: per block, fill the buffer from the card
          and DMA it to guest memory. *)
       blk "c_read_multi" []
         (br (fld "card_state" ==% c 4) "rm_block" "c_state_err");
       blk "rm_block"
         [
           fill "fifo_buffer" ~off:(c 0) ~len:(blk_mask (fld "blksize")) card_pattern;
           dma_out ~buf:"fifo_buffer" ~buf_off:(c 0) ~addr:(fld "sdma_addr")
             ~len:(blk_mask (fld "blksize"));
           set "sdma_addr" (fld "sdma_addr" +% blk_mask (fld "blksize"));
           set "blkcnt" (sub Width.W16 (fld "blkcnt") (c 1));
         ]
         (br (fld "blkcnt" ==% c 0) "rm_done" "rm_block");
       blk "rm_done" [ set_int (int_cmd_complete lor int_xfer_complete) ]
         (icall (fld "irq") "c_done");
       (* Multi-block SDMA write: per block, DMA from guest memory into the
          buffer and "program" it into the card. *)
       blk "c_write_multi" []
         (br (fld "card_state" ==% c 4) "wm_block" "c_state_err");
       blk "wm_block"
         [
           dma_in ~buf:"fifo_buffer" ~buf_off:(c 0) ~addr:(fld "sdma_addr")
             ~len:(blk_mask (fld "blksize"));
           set "wr_sum"
             (bxor Width.W32 (fld "wr_sum")
                (bufb "fifo_buffer" (c 0) +% fld "argument"));
           set "sdma_addr" (fld "sdma_addr" +% blk_mask (fld "blksize"));
           set "blkcnt" (sub Width.W16 (fld "blkcnt") (c 1));
         ]
         (br (fld "blkcnt" ==% c 0) "wm_done" "wm_block");
       blk "wm_done" [ set_int (int_cmd_complete lor int_xfer_complete) ]
         (icall (fld "irq") "c_done");
       cmd_end "c_done" [] (goto "w_exit");
       (* Buffer data port: one byte per write during an active write
          transfer.  This is the CVE-2021-3409 site. *)
       blk "w_bdata" []
         (br (fld "transfer_active" ==% c 1) "wb_active" "w_exit");
       blk "wb_active" [] (br (fld "is_read" ==% c 0) "wb_store" "w_exit");
       blk "wb_store"
         [
           setb "fifo_buffer" (fld "data_count") (prm "data");
           set "data_count" (fld "data_count" +% c 1);
           set "tx_remaining"
             (sub Width.W32 (blk_mask (fld "blksize")) (fld "data_count"));
         ]
         (br flush_cond "wb_flush" "w_exit");
       blk "wb_flush"
         [
           set "wr_sum"
             (bxor Width.W32 (fld "wr_sum")
                (bufb "fifo_buffer" (c 0) +% fld "argument"));
           set "data_count" (c 0);
           set "transfer_active" (c ~w:Width.W8 0);
           set "prnsts" (c 0);
           set_int int_xfer_complete;
         ]
         (icall (fld "irq") "c_done");
       blk "w_norint"
         [
           set "norintsts"
             (band Width.W16 (fld "norintsts")
                (bxor Width.W16 (prm "data") (c 0xFFFF)));
         ]
         (goto "w_exit");
       exit_ "w_exit" [];
     ]
    @ blksize_blocks)

let read_handler =
  handler "mmio_read"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    [
      entry "r_entry" []
        (switch (prm "offset")
           [
             (0x00, "r_sdma");
             (0x04, "r_blk");
             (0x08, "r_arg");
             (0x0C, "r_trnmod");
             (0x10, "r_resp");
             (0x20, "r_bdata");
             (0x24, "r_prnsts");
             (0x30, "r_norint");
           ]
           "r_zero");
      blk "r_sdma" [ respond (fld "sdma_addr") ] (goto "r_exit");
      blk "r_blk"
        [ respond (bor Width.W32 (fld "blksize") (shl Width.W32 (fld "blkcnt") (c 16))) ]
        (goto "r_exit");
      blk "r_arg" [ respond (fld "argument") ] (goto "r_exit");
      blk "r_trnmod" [ respond (fld "trnmod") ] (goto "r_exit");
      blk "r_resp" [ respond (fld "resp") ] (goto "r_exit");
      blk "r_prnsts" [ respond (fld "prnsts") ] (goto "r_exit");
      blk "r_norint" [ respond (fld "norintsts") ] (goto "r_exit");
      blk "r_zero" [ respond (c 0) ] (goto "r_exit");
      (* Buffer data port: one byte per read during an active read
         transfer. *)
      blk "r_bdata" []
        (br (fld "transfer_active" ==% c 1) "rb_active" "r_zero2");
      blk "rb_active" [] (br (fld "is_read" ==% c 1) "rb_load" "r_zero2");
      blk "rb_load"
        [
          respond (bufb "fifo_buffer" (fld "data_count"));
          set "data_count" (fld "data_count" +% c 1);
        ]
        (br (fld "data_count" >=% blk_mask (fld "blksize")) "rb_done" "r_exit");
      blk "rb_done"
        [
          set "data_count" (c 0);
          set "transfer_active" (c ~w:Width.W8 0);
          set "prnsts" (c 0);
          set "norintsts" (bor Width.W16 (fld "norintsts") (c int_xfer_complete));
        ]
        (icall (fld "irq") "rb_end");
      blk "rb_end" [] (goto "r_exit");
      blk "r_zero2" [ respond (c 0) ] (goto "r_exit");
      exit_ "r_exit" [];
    ]

let program ~version =
  let vulnerable = Qemu_version.(version < cve_2021_3409_fixed_in) in
  Program.make ~name ~layout ~code_base:0x0041_0000L
    ~callbacks:
      [ (irq_cb, { Program.cb_name = "sdhci_irq"; action = Program.Raise_irq_line }) ]
    [ write_handler ~vulnerable; read_handler ]

let device ~version =
  let program = program ~version in
  {
    Device.name;
    version;
    program;
    make_binding =
      (fun () ->
        Device.binding_of ~program
          ~mmio:[ (mmio_base, 0x100) ]
          ~mmio_read:"mmio_read" ~mmio_write:"mmio_write" ());
  }
