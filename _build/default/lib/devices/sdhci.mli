(** SD Host Controller Interface, modelled after QEMU's [sdhci.c] with an
    SD card behind it.

    Memory-mapped at [0x2000_0000]: SDMA address, block size/count,
    argument, transfer mode, command (writing triggers execution), response,
    buffer data port, present state and normal interrupt status.  Single
    block transfers move bytes through the buffer data port; multi-block
    transfers (CMD18/CMD25) run SDMA against guest memory.

    Vulnerability (version-gated):
    - {b CVE-2021-3409} (fixed in 6.0.0): the block size register may be
      reprogrammed while a transfer is in progress.  The data port path
      compares [data_count] against [blksize] with equality, so shrinking
      [blksize] mid-transfer makes the flush condition unreachable:
      [data_count] keeps growing past the 4096-byte buffer, and the
      remaining-bytes computation [blksize - data_count] underflows. *)

val name : string
val mmio_base : int64
val irq_cb : int64
val buf_size : int
val cve_2021_3409_fixed_in : Qemu_version.t

val layout : Devir.Layout.t
val program : version:Qemu_version.t -> Devir.Program.t
val device : version:Qemu_version.t -> Device.t
