lib/devir/arena.ml: Bytes Char Format Int64 Layout List Printf Width
