lib/devir/arena.mli: Format Layout
