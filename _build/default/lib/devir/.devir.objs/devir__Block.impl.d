lib/devir/block.ml: Format List Stmt Term
