lib/devir/block.mli: Format Stmt Term
