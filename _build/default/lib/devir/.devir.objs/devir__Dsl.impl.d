lib/devir/dsl.ml: Block Expr Int64 List Program Stmt Term Width
