lib/devir/dsl.mli: Block Expr Program Stmt Term Width
