lib/devir/expr.ml: Format List Width
