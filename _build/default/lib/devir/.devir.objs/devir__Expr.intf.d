lib/devir/expr.mli: Format Width
