lib/devir/layout.ml: Format Hashtbl List Printf Width
