lib/devir/layout.mli: Format Width
