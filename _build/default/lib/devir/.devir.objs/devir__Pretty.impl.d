lib/devir/pretty.ml: Block Buffer Expr Format Layout List Printf Program Stmt String Term Width
