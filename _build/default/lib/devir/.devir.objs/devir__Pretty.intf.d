lib/devir/pretty.mli: Format Program
