lib/devir/program.ml: Block Format Hashtbl Int64 Layout List Printf Stdlib
