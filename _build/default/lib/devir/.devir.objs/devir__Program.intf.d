lib/devir/program.mli: Block Format Layout
