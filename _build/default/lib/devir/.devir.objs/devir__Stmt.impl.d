lib/devir/stmt.ml: Expr Format List Width
