lib/devir/stmt.mli: Expr Format Width
