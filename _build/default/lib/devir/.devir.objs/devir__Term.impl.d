lib/devir/term.ml: Expr Format List Printf String
