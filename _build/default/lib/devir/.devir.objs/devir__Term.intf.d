lib/devir/term.mli: Expr Format
