lib/devir/validate.ml: Block Buffer Expr Format Layout List Program Stmt Term
