lib/devir/validate.mli: Format Program
