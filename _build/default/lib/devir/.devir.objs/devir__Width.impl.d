lib/devir/width.ml: Format Int64 Stdlib
