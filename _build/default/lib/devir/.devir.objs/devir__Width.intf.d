lib/devir/width.mli: Format
