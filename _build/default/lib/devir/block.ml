type kind = Normal | Entry | Exit | Cmd_decision | Cmd_end

type t = {
  label : string;
  kind : kind;
  stmts : Stmt.t list;
  term : Term.t;
}

let kind_to_string = function
  | Normal -> "normal"
  | Entry -> "entry"
  | Exit -> "exit"
  | Cmd_decision -> "cmd-decision"
  | Cmd_end -> "cmd-end"

let v ?(kind = Normal) label stmts term = { label; kind; stmts; term }

let is_conditional b = match b.term with Term.Branch _ -> true | _ -> false

let is_indirect b = match b.term with Term.Icall _ -> true | _ -> false

let pp ppf b =
  Format.fprintf ppf "@[<v 2>%s (%s):@,%a%a@]" b.label (kind_to_string b.kind)
    (fun ppf stmts ->
      List.iter (fun s -> Format.fprintf ppf "%a@," Stmt.pp s) stmts)
    b.stmts Term.pp b.term
