(** Basic blocks and their SEDSpec-relevant kinds.

    The paper's device state change log tags each block with auxiliary
    information used to classify ES-CFG blocks (entry, exit, conditional,
    command decision, command end).  In this reproduction the tag is carried
    on the IR block itself — that is precisely the information the paper's
    instrumentation extracts from the source. *)

type kind =
  | Normal
  | Entry  (** First block a handler executes; parses the I/O request. *)
  | Exit   (** Last block of an I/O round. *)
  | Cmd_decision
      (** Identifies the current device command (a switch over the command
          byte); keys the ES-CFG command access table. *)
  | Cmd_end
      (** Marks the completion of the current command's execution. *)

type t = {
  label : string;
  kind : kind;
  stmts : Stmt.t list;
  term : Term.t;
}

val kind_to_string : kind -> string

val v : ?kind:kind -> string -> Stmt.t list -> Term.t -> t
(** [v label stmts term] builds a block ([kind] defaults to [Normal]). *)

val is_conditional : t -> bool
(** A block terminated by a conditional branch. *)

val is_indirect : t -> bool
(** A block terminated by an indirect call. *)

val pp : Format.formatter -> t -> unit
