let c ?(w = Width.W32) v = Expr.Const (Int64.of_int v, w)
let c64 ?(w = Width.W32) v = Expr.Const (v, w)
let fld n = Expr.Field n
let bufb b idx = Expr.Buf_byte (b, idx)
let buflen b = Expr.Buf_len b
let prm n = Expr.Param n
let lcl n = Expr.Local n

let add w a b = Expr.Binop (Expr.Add, w, a, b)
let sub w a b = Expr.Binop (Expr.Sub, w, a, b)
let mul w a b = Expr.Binop (Expr.Mul, w, a, b)
let div w a b = Expr.Binop (Expr.Div, w, a, b)
let rem w a b = Expr.Binop (Expr.Rem, w, a, b)
let band w a b = Expr.Binop (Expr.And, w, a, b)
let bor w a b = Expr.Binop (Expr.Or, w, a, b)
let bxor w a b = Expr.Binop (Expr.Xor, w, a, b)
let shl w a b = Expr.Binop (Expr.Shl, w, a, b)
let shr w a b = Expr.Binop (Expr.Shr, w, a, b)

let ( +% ) = add Width.W32
let ( -% ) = sub Width.W32
let ( *% ) = mul Width.W32
let ( &% ) = band Width.W32
let ( |% ) = bor Width.W32
let ( ^% ) = bxor Width.W32
let ( <<% ) = shl Width.W32
let ( >>% ) = shr Width.W32

let ( ==% ) a b = Expr.Cmp (Expr.Eq, a, b)
let ( <>% ) a b = Expr.Cmp (Expr.Ne, a, b)
let ( <% ) a b = Expr.Cmp (Expr.Ltu, a, b)
let ( <=% ) a b = Expr.Cmp (Expr.Leu, a, b)
let ( >% ) a b = Expr.Cmp (Expr.Gtu, a, b)
let ( >=% ) a b = Expr.Cmp (Expr.Geu, a, b)
let lts a b = Expr.Cmp (Expr.Lts, a, b)
let not_ e = Expr.Not e

let set f e = Stmt.Set_field (f, e)
let setb b idx v = Stmt.Set_buf (b, idx, v)
let local n e = Stmt.Set_local (n, e)
let fill b ~off ~len v = Stmt.Buf_fill (b, off, len, v)
let dma_in ~buf ~buf_off ~addr ~len = Stmt.Copy_from_guest { buf; buf_off; addr; len }
let dma_out ~buf ~buf_off ~addr ~len = Stmt.Copy_to_guest { buf; buf_off; addr; len }
let load name ?(w = Width.W32) addr = Stmt.Read_guest { local = name; addr; width = w }
let store ?(w = Width.W32) addr value = Stmt.Write_guest { addr; value; width = w }
let hostv name key = Stmt.Host_value { local = name; key }
let respond e = Stmt.Respond e
let note s = Stmt.Note s

let goto l = Term.Goto l
let br cond t f = Term.Branch (cond, t, f)

let switch e cases default =
  Term.Switch (e, List.map (fun (v, l) -> (Int64.of_int v, l)) cases, default)

let icall e next = Term.Icall (e, next)
let halt = Term.Halt

let blk ?kind label stmts term = Block.v ?kind label stmts term
let entry label stmts term = Block.v ~kind:Block.Entry label stmts term
let exit_ label stmts = Block.v ~kind:Block.Exit label stmts Term.Halt
let cmd_decision label stmts term = Block.v ~kind:Block.Cmd_decision label stmts term
let cmd_end label stmts term = Block.v ~kind:Block.Cmd_end label stmts term

let handler hname ~params blocks : Program.handler = { hname; params; blocks }
