(** Concise construction helpers for writing device models.

    The five device models are several hundred blocks of IR; this module
    keeps them readable.  Arithmetic helpers take an explicit width;
    the infix operators default to [W32], matching the dominant register
    width in the modelled devices. *)

(* Expressions ---------------------------------------------------------- *)

val c : ?w:Width.t -> int -> Expr.t
(** Integer constant (default width [W32]). *)

val c64 : ?w:Width.t -> int64 -> Expr.t
val fld : string -> Expr.t
val bufb : string -> Expr.t -> Expr.t
val buflen : string -> Expr.t
val prm : string -> Expr.t
val lcl : string -> Expr.t

val add : Width.t -> Expr.t -> Expr.t -> Expr.t
val sub : Width.t -> Expr.t -> Expr.t -> Expr.t
val mul : Width.t -> Expr.t -> Expr.t -> Expr.t
val div : Width.t -> Expr.t -> Expr.t -> Expr.t
val rem : Width.t -> Expr.t -> Expr.t -> Expr.t
val band : Width.t -> Expr.t -> Expr.t -> Expr.t
val bor : Width.t -> Expr.t -> Expr.t -> Expr.t
val bxor : Width.t -> Expr.t -> Expr.t -> Expr.t
val shl : Width.t -> Expr.t -> Expr.t -> Expr.t
val shr : Width.t -> Expr.t -> Expr.t -> Expr.t

(** [( +% )] is [add W32]; the remaining [%] operators follow suit. *)
val ( +% ) : Expr.t -> Expr.t -> Expr.t
val ( -% ) : Expr.t -> Expr.t -> Expr.t
val ( *% ) : Expr.t -> Expr.t -> Expr.t
val ( &% ) : Expr.t -> Expr.t -> Expr.t
val ( |% ) : Expr.t -> Expr.t -> Expr.t
val ( ^% ) : Expr.t -> Expr.t -> Expr.t
val ( <<% ) : Expr.t -> Expr.t -> Expr.t
val ( >>% ) : Expr.t -> Expr.t -> Expr.t

val ( ==% ) : Expr.t -> Expr.t -> Expr.t
val ( <>% ) : Expr.t -> Expr.t -> Expr.t

(** Comparisons: [%] variants are unsigned; [lts] is signed [<]. *)

val ( <% ) : Expr.t -> Expr.t -> Expr.t
val ( <=% ) : Expr.t -> Expr.t -> Expr.t
val ( >% ) : Expr.t -> Expr.t -> Expr.t
val ( >=% ) : Expr.t -> Expr.t -> Expr.t
val lts : Expr.t -> Expr.t -> Expr.t
val not_ : Expr.t -> Expr.t

(* Statements ----------------------------------------------------------- *)

val set : string -> Expr.t -> Stmt.t
val setb : string -> Expr.t -> Expr.t -> Stmt.t
val local : string -> Expr.t -> Stmt.t
val fill : string -> off:Expr.t -> len:Expr.t -> Expr.t -> Stmt.t
val dma_in : buf:string -> buf_off:Expr.t -> addr:Expr.t -> len:Expr.t -> Stmt.t
(** Guest memory -> device buffer. *)

val dma_out : buf:string -> buf_off:Expr.t -> addr:Expr.t -> len:Expr.t -> Stmt.t
(** Device buffer -> guest memory. *)

val load : string -> ?w:Width.t -> Expr.t -> Stmt.t
(** [load local addr]: little-endian guest load (default [W32]). *)

val store : ?w:Width.t -> Expr.t -> Expr.t -> Stmt.t
val hostv : string -> string -> Stmt.t
(** [hostv local key]: load host-side value [key] into [local]. *)

val respond : Expr.t -> Stmt.t
val note : string -> Stmt.t

(* Terminators and blocks ------------------------------------------------ *)

val goto : string -> Term.t
val br : Expr.t -> string -> string -> Term.t
val switch : Expr.t -> (int * string) list -> string -> Term.t
val icall : Expr.t -> string -> Term.t
val halt : Term.t

val blk : ?kind:Block.kind -> string -> Stmt.t list -> Term.t -> Block.t
val entry : string -> Stmt.t list -> Term.t -> Block.t
val exit_ : string -> Stmt.t list -> Block.t
(** Exit block; always terminates with [halt]. *)

val cmd_decision : string -> Stmt.t list -> Term.t -> Block.t
val cmd_end : string -> Stmt.t list -> Term.t -> Block.t

val handler : string -> params:string list -> Block.t list -> Program.handler
