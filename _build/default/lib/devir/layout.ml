type field_kind = Reg of Width.t | Buf of int | Fn_ptr

type field = {
  name : string;
  kind : field_kind;
  hw_register : bool;
  init : int64;
}

type t = {
  fields : field list;
  offsets : (string, int * field) Hashtbl.t;
  size : int;
}

let field_size f =
  match f.kind with
  | Reg w -> Width.bytes w
  | Buf n -> n
  | Fn_ptr -> 8

let make fields =
  let offsets = Hashtbl.create 16 in
  let size =
    List.fold_left
      (fun off f ->
        (match f.kind with
        | Buf n when n <= 0 ->
          invalid_arg (Printf.sprintf "Layout.make: buffer %s has size %d" f.name n)
        | _ -> ());
        if Hashtbl.mem offsets f.name then
          invalid_arg (Printf.sprintf "Layout.make: duplicate field %s" f.name);
        Hashtbl.add offsets f.name (off, f);
        off + field_size f)
      0 fields
  in
  { fields; offsets; size }

let reg ?(hw = false) ?(init = 0L) name w =
  { name; kind = Reg w; hw_register = hw; init }

let buf ?(hw = false) name n = { name; kind = Buf n; hw_register = hw; init = 0L }

let fn_ptr ?(init = 0L) name =
  { name; kind = Fn_ptr; hw_register = false; init }

let fields t = t.fields
let size t = t.size
let mem t name = Hashtbl.mem t.offsets name

let find t name =
  match Hashtbl.find_opt t.offsets name with
  | Some (_, f) -> f
  | None -> raise Not_found

let offset t name =
  match Hashtbl.find_opt t.offsets name with
  | Some (off, _) -> off
  | None -> raise Not_found

let buf_size t name =
  match (find t name).kind with
  | Buf n -> n
  | Reg _ | Fn_ptr ->
    invalid_arg (Printf.sprintf "Layout.buf_size: %s is not a buffer" name)

let width_of t name =
  match (find t name).kind with
  | Reg w -> w
  | Fn_ptr -> Width.W64
  | Buf _ ->
    invalid_arg (Printf.sprintf "Layout.width_of: %s is a buffer" name)

let field_at t off =
  if off < 0 || off >= t.size then None
  else
    let rec go cur = function
      | [] -> None
      | f :: rest ->
        let sz = field_size f in
        if off < cur + sz then Some (f, off - cur) else go (cur + sz) rest
    in
    go 0 t.fields

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun f ->
      let kind =
        match f.kind with
        | Reg w -> Width.to_string w
        | Buf n -> Printf.sprintf "u8[%d]" n
        | Fn_ptr -> "fn*"
      in
      Format.fprintf ppf "%+4d %-16s %s%s@," (offset t f.name) f.name kind
        (if f.hw_register then " (hw)" else ""))
    t.fields;
  Format.fprintf ppf "@]"
