(** Memory layout of a device control structure.

    A layout is an ordered list of named fields, laid out back to back like
    a C struct (no padding).  The order matters for security semantics: a
    buffer overflow spills into the *following* fields, which is how the
    reproduced CVEs corrupt length fields and function pointers. *)

type field_kind =
  | Reg of Width.t  (** Scalar register-like field, little-endian. *)
  | Buf of int      (** Fixed-length byte buffer of the given size. *)
  | Fn_ptr
      (** Function pointer (stored as a 64-bit callback value resolved
          against {!Program.callbacks}). *)

type field = {
  name : string;
  kind : field_kind;
  hw_register : bool;
      (** [true] when the field mirrors a physical device register —
          SEDSpec's Rule 1 for device state parameter selection. *)
  init : int64;
      (** Initial scalar value ([Buf] fields are zero-filled; for [Fn_ptr]
          this is the initial callback value). *)
}

type t

val make : field list -> t
(** Builds a layout; raises [Invalid_argument] on duplicate field names or
    non-positive buffer sizes. *)

val reg : ?hw:bool -> ?init:int64 -> string -> Width.t -> field
val buf : ?hw:bool -> string -> int -> field
val fn_ptr : ?init:int64 -> string -> field

val fields : t -> field list
val size : t -> int
(** Total byte size of the structure. *)

val mem : t -> string -> bool
val find : t -> string -> field
(** Raises [Not_found]. *)

val offset : t -> string -> int
(** Byte offset of a field.  Raises [Not_found]. *)

val field_size : field -> int

val buf_size : t -> string -> int
(** Declared size of a [Buf] field; raises [Invalid_argument] if the field
    is not a buffer. *)

val width_of : t -> string -> Width.t
(** Width of a [Reg] field ([Fn_ptr] counts as [W64]); raises
    [Invalid_argument] for buffers. *)

val field_at : t -> int -> (field * int) option
(** [field_at t off] returns the field covering byte offset [off] together
    with the offset within that field, or [None] past the end. *)

val pp : Format.formatter -> t -> unit
