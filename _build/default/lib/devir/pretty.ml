let layout_to_buf buf layout =
  Buffer.add_string buf "struct control_structure {\n";
  List.iter
    (fun (f : Layout.field) ->
      let decl =
        match f.kind with
        | Layout.Reg w ->
          Printf.sprintf "  uint%d_t %s;%s" (Width.bits w) f.name
            (if f.hw_register then "  /* hw register */" else "")
        | Layout.Buf n -> Printf.sprintf "  uint8_t %s[%d];" f.name n
        | Layout.Fn_ptr -> Printf.sprintf "  void (*%s)(void);" f.name
      in
      Buffer.add_string buf decl;
      if f.init <> 0L then
        Buffer.add_string buf (Printf.sprintf "  /* init: 0x%Lx */" f.init);
      Buffer.add_char buf '\n')
    (Layout.fields layout);
  Buffer.add_string buf "};\n"

let term_lines (t : Term.t) =
  match t with
  | Term.Goto l -> [ Printf.sprintf "goto %s;" l ]
  | Term.Branch (e, a, b) ->
    [ Printf.sprintf "if (%s) goto %s; else goto %s;" (Expr.to_string e) a b ]
  | Term.Switch (e, cases, d) ->
    (Printf.sprintf "switch (%s) {" (Expr.to_string e))
    :: List.map (fun (v, l) -> Printf.sprintf "  case 0x%Lx: goto %s;" v l) cases
    @ [ Printf.sprintf "  default: goto %s;" d; "}" ]
  | Term.Icall (e, next) ->
    [
      Printf.sprintf "(*%s)();  /* indirect */" (Expr.to_string e);
      Printf.sprintf "goto %s;" next;
    ]
  | Term.Halt -> [ "return;" ]

let handler_to_string program (h : Program.handler) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "void %s(%s)\n{\n" h.hname
       (if h.params = [] then "void"
        else String.concat ", " (List.map (fun p -> "uint64_t " ^ p) h.params)));
  List.iter
    (fun (b : Block.t) ->
      let bref : Program.bref = { handler = h.hname; label = b.label } in
      Buffer.add_string buf
        (Printf.sprintf "%s:  /* %s @ 0x%Lx */\n" b.label
           (Block.kind_to_string b.kind)
           (Program.address_of program bref));
      List.iter
        (fun stmt ->
          Buffer.add_string buf ("  " ^ Stmt.to_string stmt ^ ";\n"))
        b.stmts;
      List.iter (fun l -> Buffer.add_string buf ("  " ^ l ^ "\n")) (term_lines b.term))
    h.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let program_to_string program =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "/* device: %s */\n\n" (Program.name program));
  layout_to_buf buf (Program.layout program);
  Buffer.add_char buf '\n';
  (match Program.callbacks program with
  | [] -> ()
  | callbacks ->
    Buffer.add_string buf "/* callback table */\n";
    List.iter
      (fun (v, (cb : Program.callback)) ->
        let action =
          match cb.action with
          | Program.Raise_irq_line -> "raise irq"
          | Program.Lower_irq_line -> "lower irq"
          | Program.Run_handler h -> "run " ^ h
          | Program.Noop -> "noop"
        in
        Buffer.add_string buf (Printf.sprintf "/*   0x%Lx -> %s (%s) */\n" v cb.cb_name action))
      callbacks;
    Buffer.add_char buf '\n');
  List.iter
    (fun h ->
      Buffer.add_string buf (handler_to_string program h);
      Buffer.add_char buf '\n')
    (Program.handlers program);
  Buffer.contents buf

let pp_program ppf p = Format.pp_print_string ppf (program_to_string p)
