(** Pseudo-C rendering of device programs.

    The device models are data; this renders them the way the
    corresponding QEMU C code reads — one function per handler, labels and
    gotos for the block structure — which is how DESIGN.md documents the
    models and how humans review them. *)

val handler_to_string : Program.t -> Program.handler -> string

val program_to_string : Program.t -> string
(** Layout (as a struct definition), callbacks, then every handler. *)

val pp_program : Format.formatter -> Program.t -> unit
