type t =
  | Set_field of string * Expr.t
  | Set_buf of string * Expr.t * Expr.t
  | Set_local of string * Expr.t
  | Buf_fill of string * Expr.t * Expr.t * Expr.t
  | Copy_from_guest of { buf : string; buf_off : Expr.t; addr : Expr.t; len : Expr.t }
  | Copy_to_guest of { buf : string; buf_off : Expr.t; addr : Expr.t; len : Expr.t }
  | Read_guest of { local : string; addr : Expr.t; width : Width.t }
  | Write_guest of { addr : Expr.t; value : Expr.t; width : Width.t }
  | Host_value of { local : string; key : string }
  | Respond of Expr.t
  | Note of string

let dedup l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let exprs = function
  | Set_field (_, e) | Set_local (_, e) | Respond e -> [ e ]
  | Set_buf (_, idx, v) -> [ idx; v ]
  | Buf_fill (_, off, len, b) -> [ off; len; b ]
  | Copy_from_guest { buf_off; addr; len; _ }
  | Copy_to_guest { buf_off; addr; len; _ } ->
    [ buf_off; addr; len ]
  | Read_guest { addr; _ } -> [ addr ]
  | Write_guest { addr; value; _ } -> [ addr; value ]
  | Host_value _ | Note _ -> []

let fields_read stmt =
  let from_exprs = List.concat_map Expr.fields (exprs stmt) in
  let extra =
    match stmt with
    | Copy_to_guest { buf; _ } -> [ buf ]
    | _ -> []
  in
  dedup (extra @ from_exprs)

let fields_written = function
  | Set_field (f, _) -> [ f ]
  | Set_buf (b, _, _) | Buf_fill (b, _, _, _) -> [ b ]
  | Copy_from_guest { buf; _ } -> [ buf ]
  | Set_local _ | Copy_to_guest _ | Read_guest _ | Write_guest _ | Respond _
  | Host_value _ | Note _ ->
    []

let locals_read stmt = dedup (List.concat_map Expr.locals (exprs stmt))

let locals_written = function
  | Set_local (n, _) -> [ n ]
  | Read_guest { local; _ } | Host_value { local; _ } -> [ local ]
  | _ -> []

let touches_state is_param stmt =
  List.exists is_param (fields_read stmt)
  || List.exists is_param (fields_written stmt)

let pp ppf = function
  | Set_field (f, e) -> Format.fprintf ppf "s.%s = %a" f Expr.pp e
  | Set_buf (b, idx, v) ->
    Format.fprintf ppf "s.%s[%a] = %a" b Expr.pp idx Expr.pp v
  | Set_local (n, e) -> Format.fprintf ppf "%s = %a" n Expr.pp e
  | Buf_fill (b, off, len, v) ->
    Format.fprintf ppf "memset(s.%s+%a, %a, %a)" b Expr.pp off Expr.pp v
      Expr.pp len
  | Copy_from_guest { buf; buf_off; addr; len } ->
    Format.fprintf ppf "dma_read(s.%s+%a, guest:%a, %a)" buf Expr.pp buf_off
      Expr.pp addr Expr.pp len
  | Copy_to_guest { buf; buf_off; addr; len } ->
    Format.fprintf ppf "dma_write(guest:%a, s.%s+%a, %a)" Expr.pp addr buf
      Expr.pp buf_off Expr.pp len
  | Read_guest { local; addr; width } ->
    Format.fprintf ppf "%s = guest_load_%s(%a)" local (Width.to_string width)
      Expr.pp addr
  | Write_guest { addr; value; width } ->
    Format.fprintf ppf "guest_store_%s(%a, %a)" (Width.to_string width)
      Expr.pp addr Expr.pp value
  | Host_value { local; key } ->
    Format.fprintf ppf "%s = host_value(%S)" local key
  | Respond e -> Format.fprintf ppf "respond %a" Expr.pp e
  | Note s -> Format.fprintf ppf "/* %s */" s

let to_string s = Format.asprintf "%a" pp s
