(** Statements of the device IR.

    Statements are the side-effecting half of the IR: they update the device
    control structure, handler locals, guest memory (DMA) and the I/O
    response.  The SEDSpec ES-CFG constructor lifts the subset of statements
    that touch device state parameters into DSOD (Device State Operation
    Data). *)

type t =
  | Set_field of string * Expr.t
      (** [fld := e], truncated to the field's width; a wrap sets the
          interpreter's overflow flag. *)
  | Set_buf of string * Expr.t * Expr.t
      (** [buf[idx] := byte].  An index past the end of the buffer writes
          into the following fields of the control structure, exactly like
          the C structs the paper's devices use; writes past the whole
          structure trap. *)
  | Set_local of string * Expr.t
      (** Define or update a handler-local temporary. *)
  | Buf_fill of string * Expr.t * Expr.t * Expr.t
      (** [Buf_fill (buf, off, len, byte)]: memset-like fill, with the same
          out-of-bounds semantics as {!Set_buf}. *)
  | Copy_from_guest of { buf : string; buf_off : Expr.t; addr : Expr.t; len : Expr.t }
      (** DMA read: copy [len] bytes from guest physical memory [addr] into
          [buf] at [buf_off]. *)
  | Copy_to_guest of { buf : string; buf_off : Expr.t; addr : Expr.t; len : Expr.t }
      (** DMA write: copy [len] bytes from [buf] at [buf_off] into guest
          physical memory at [addr]. *)
  | Read_guest of { local : string; addr : Expr.t; width : Width.t }
      (** Load a little-endian scalar from guest memory into a local. *)
  | Write_guest of { addr : Expr.t; value : Expr.t; width : Width.t }
      (** Store a little-endian scalar to guest memory. *)
  | Host_value of { local : string; key : string }
      (** Load a host-side value (link status, host clock, ...) into a
          local.  Unlike guest memory, host state is invisible to the
          ES-Checker, so branch conditions depending on such locals cannot
          be recovered and force a sync point. *)
  | Respond of Expr.t
      (** Set the data returned to the guest for a read request. *)
  | Note of string
      (** Free-form marker; no semantics. *)

val fields_read : t -> string list
(** Control-structure fields read by the statement's expressions. *)

val fields_written : t -> string list
(** Control-structure fields written (the target of [Set_field], [Set_buf],
    [Buf_fill], [Copy_from_guest]). *)

val locals_read : t -> string list
val locals_written : t -> string list

val touches_state : (string -> bool) -> t -> bool
(** [touches_state is_param stmt] is [true] when the statement reads or
    writes at least one field for which [is_param] holds — i.e. whether the
    ES-CFG constructor must lift it into DSOD. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
