type t =
  | Goto of string
  | Branch of Expr.t * string * string
  | Switch of Expr.t * (int64 * string) list * string
  | Icall of Expr.t * string
  | Halt

let successors = function
  | Goto l -> [ l ]
  | Branch (_, t, f) -> [ t; f ]
  | Switch (_, cases, default) -> List.map snd cases @ [ default ]
  | Icall (_, next) -> [ next ]
  | Halt -> []

let exprs = function
  | Goto _ | Halt -> []
  | Branch (e, _, _) | Switch (e, _, _) | Icall (e, _) -> [ e ]

let pp ppf = function
  | Goto l -> Format.fprintf ppf "goto %s" l
  | Branch (e, t, f) ->
    Format.fprintf ppf "if %a then %s else %s" Expr.pp e t f
  | Switch (e, cases, d) ->
    Format.fprintf ppf "switch %a {%s default:%s}" Expr.pp e
      (String.concat "; "
         (List.map (fun (v, l) -> Printf.sprintf "%Ld:%s" v l) cases))
      d
  | Icall (e, next) -> Format.fprintf ppf "icall %a; goto %s" Expr.pp e next
  | Halt -> Format.fprintf ppf "halt"

let to_string t = Format.asprintf "%a" pp t
