(** Basic-block terminators of the device IR.

    Terminators are the IR's control transfers — exactly the events Intel PT
    records (conditional branches as TNT bits, indirect transfers as TIP
    packets) and exactly the points where the ES-Checker's conditional and
    indirect jump checks apply. *)

type t =
  | Goto of string  (** Unconditional jump; PT emits nothing for it. *)
  | Branch of Expr.t * string * string
      (** [Branch (cond, if_taken, if_not)]: taken when [cond] is nonzero.
          PT records one TNT bit. *)
  | Switch of Expr.t * (int64 * string) list * string
      (** Multi-way dispatch on a command byte with a default label.  The
          ES-CFG maps switches in [Cmd_decision] blocks to its command
          access table.  PT-wise a switch is an indirect transfer (TIP). *)
  | Icall of Expr.t * string
      (** [Icall (fnptr, next)]: call through a function-pointer value
          (e.g. the [irq] callback), then continue at [next].  The value is
          resolved against the program's callback table; an unknown value is
          a wild jump and traps.  PT records a TIP packet with the target
          value. *)
  | Halt  (** End of the handler: the I/O round's exit. *)

val successors : t -> string list
(** Static successor labels, in branch order (taken first for [Branch];
    cases then default for [Switch]). *)

val exprs : t -> Expr.t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
