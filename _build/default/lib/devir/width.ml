type t = W8 | W16 | W32 | W64

let bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

let mask = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFFFFFFL
  | W64 -> -1L

let truncate w v = Int64.logand v (mask w)

let fits_unsigned w v =
  match w with
  | W64 -> true
  | _ -> Int64.logand v (Int64.lognot (mask w)) = 0L && v >= 0L

let sign_extend w v =
  match w with
  | W64 -> v
  | _ ->
    let n = bits w in
    let v = truncate w v in
    let sign_bit = Int64.shift_left 1L (n - 1) in
    if Int64.logand v sign_bit = 0L then v
    else Int64.sub v (Int64.shift_left 1L n)

let max_signed w =
  match w with
  | W64 -> Int64.max_int
  | _ -> Int64.sub (Int64.shift_left 1L (bits w - 1)) 1L

let min_signed w =
  match w with
  | W64 -> Int64.min_int
  | _ -> Int64.neg (Int64.shift_left 1L (bits w - 1))

let to_string = function
  | W8 -> "u8"
  | W16 -> "u16"
  | W32 -> "u32"
  | W64 -> "u64"

let pp ppf w = Format.pp_print_string ppf (to_string w)

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
