(** Machine integer widths for device registers and IR arithmetic.

    Every scalar field of a device control structure and every arithmetic
    operation in the device IR carries a width.  The interpreter wraps
    results to the width (like C unsigned arithmetic) and reports when a
    wrap occurred, which is the signal the parameter check strategy uses to
    detect integer overflow. *)

type t = W8 | W16 | W32 | W64

val bits : t -> int
(** Number of bits: 8, 16, 32 or 64. *)

val bytes : t -> int
(** Number of bytes: 1, 2, 4 or 8. *)

val mask : t -> int64
(** All-ones mask of the width, e.g. [mask W16 = 0xFFFFL]. *)

val truncate : t -> int64 -> int64
(** [truncate w v] keeps the low [bits w] bits of [v] (zero-extended). *)

val fits_unsigned : t -> int64 -> bool
(** [fits_unsigned w v] is [true] when [v] is already within \[0, 2^bits).
    For [W64] every value fits. *)

val sign_extend : t -> int64 -> int64
(** [sign_extend w v] reinterprets the low bits of [v] as a signed integer
    of width [w]. *)

val max_signed : t -> int64
val min_signed : t -> int64

val to_string : t -> string
(** ["u8"], ["u16"], ["u32"], ["u64"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
