lib/interp/interp.ml: Arena Block Bytes Char Devir Eval Event Hashtbl Int64 Layout List Option Printf Program Stmt Term Width
