lib/interp/interp.mli: Devir Eval Event
