lib/interp/eval.ml: Devir Expr Format Int64 Width
