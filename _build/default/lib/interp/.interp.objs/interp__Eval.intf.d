lib/interp/eval.mli: Devir Format
