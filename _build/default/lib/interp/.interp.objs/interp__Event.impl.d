lib/interp/event.ml: Devir Format List Printf String
