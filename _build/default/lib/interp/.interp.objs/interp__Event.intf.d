lib/interp/event.mli: Devir Format
