lib/iptrace/decoder.ml: Devir Format List Packet Printf Program Term
