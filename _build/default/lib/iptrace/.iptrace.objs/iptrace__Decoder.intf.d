lib/iptrace/decoder.mli: Devir Format Packet
