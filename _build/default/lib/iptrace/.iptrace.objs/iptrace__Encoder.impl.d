lib/iptrace/encoder.ml: Filter Interp List Packet
