lib/iptrace/encoder.mli: Filter Interp Packet
