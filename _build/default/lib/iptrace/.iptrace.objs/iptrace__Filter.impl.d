lib/iptrace/filter.ml: Devir Int64 List
