lib/iptrace/filter.mli: Devir
