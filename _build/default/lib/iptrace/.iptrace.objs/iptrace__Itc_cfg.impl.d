lib/iptrace/itc_cfg.ml: Block Decoder Devir Format Hashtbl Int64 List Printf Program String Term
