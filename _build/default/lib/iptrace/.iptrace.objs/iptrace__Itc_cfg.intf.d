lib/iptrace/itc_cfg.mli: Decoder Devir Format
