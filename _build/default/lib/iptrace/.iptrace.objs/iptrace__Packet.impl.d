lib/iptrace/packet.ml: Format List String
