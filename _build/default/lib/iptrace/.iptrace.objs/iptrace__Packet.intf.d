lib/iptrace/packet.mli: Format
