open Devir

type transfer =
  | Fall
  | Taken
  | Not_taken
  | Sw of Program.bref
  | Call of int64
  | End

type step = { block : Program.bref; transfer : transfer }

type trace = step list

exception Desync of string

let desync fmt = Format.kasprintf (fun s -> raise (Desync s)) fmt

(* Mutable cursor over the packet stream with a TNT bit queue. *)
type cursor = {
  mutable rest : Packet.t list;
  mutable bits : bool list;
}

let rec next_tnt cur =
  match cur.bits with
  | b :: bits ->
    cur.bits <- bits;
    b
  | [] -> (
    match cur.rest with
    | Packet.Tnt_short bits :: rest ->
      cur.rest <- rest;
      cur.bits <- bits;
      next_tnt cur
    | Packet.Pad :: rest ->
      cur.rest <- rest;
      next_tnt cur
    | p :: _ -> desync "expected TNT, found %s" (Packet.to_string p)
    | [] -> desync "expected TNT, stream ended")

let next_tip cur =
  if cur.bits <> [] then desync "unconsumed TNT bits before TIP";
  match cur.rest with
  | Packet.Tip addr :: rest ->
    cur.rest <- rest;
    addr
  | Packet.Pad :: _ ->
    (* A filtered-out indirect target: the decoder cannot continue. *)
    desync "indirect target was filtered out of the trace"
  | Packet.Tnt_short _ :: _ -> desync "unexpected TNT before TIP"
  | p :: _ -> desync "expected TIP, found %s" (Packet.to_string p)
  | [] -> desync "expected TIP, stream ended"

let expect_pgd cur =
  let rec go () =
    match cur.rest with
    | Packet.Tip_pgd :: rest ->
      cur.rest <- rest;
      if cur.bits <> [] then desync "TNT bits left over at PGD"
    | Packet.Pad :: rest ->
      cur.rest <- rest;
      go ()
    | p :: _ -> desync "expected TIP.PGD, found %s" (Packet.to_string p)
    | [] -> desync "expected TIP.PGD, stream ended"
  in
  go ()

(* Walk the program from an entry block, consuming packets, producing steps
   in order.  [stack] holds continuation blocks of chained handlers. *)
let decode_window program cur entry =
  let steps = ref [] in
  let push block transfer = steps := { block; transfer } :: !steps in
  let find (r : Program.bref) = Program.find_block program r in
  let rec walk (bref : Program.bref) stack =
    let block = find bref in
    let sibling label : Program.bref = { handler = bref.handler; label } in
    match block.term with
    | Term.Goto l ->
      push bref Fall;
      walk (sibling l) stack
    | Term.Branch (_, if_taken, if_not) ->
      let taken = next_tnt cur in
      push bref (if taken then Taken else Not_taken);
      walk (sibling (if taken then if_taken else if_not)) stack
    | Term.Switch (_, _, _) ->
      let addr = next_tip cur in
      let dest =
        match Program.block_at program addr with
        | Some d -> d
        | None -> desync "switch TIP %Lx resolves to no block" addr
      in
      push bref (Sw dest);
      walk dest stack
    | Term.Icall (_, next) ->
      let target = next_tip cur in
      push bref (Call target);
      let continue_at = sibling next in
      (match Program.find_callback program target with
      | Some { action = Program.Run_handler callee; _ } ->
        let callee_entry =
          match (Program.find_handler program callee).blocks with
          | b :: _ -> ({ handler = callee; label = b.label } : Program.bref)
          | [] -> desync "chained handler %s is empty" callee
        in
        walk callee_entry (continue_at :: stack)
      | Some _ -> walk continue_at stack
      | None ->
        (* A wild jump: the interpreter trapped right after emitting this
           TIP, so the window ends here with no PGD; the partial path is
           kept. *)
        ())
    | Term.Halt -> (
      push bref End;
      match stack with
      | cont :: stack -> walk cont stack
      | [] -> ())
  in
  walk entry [];
  List.rev !steps

let decode program packets =
  let cur = { rest = packets; bits = [] } in
  let traces = ref [] in
  let rec go () =
    match cur.rest with
    | [] -> ()
    | Packet.Psb :: rest ->
      cur.rest <- rest;
      (match cur.rest with
      | Packet.Psbend :: rest -> cur.rest <- rest
      | _ -> desync "PSB without PSBEND");
      (match cur.rest with
      | Packet.Tip_pge addr :: rest ->
        cur.rest <- rest;
        let entry =
          match Program.block_at program addr with
          | Some b -> b
          | None -> desync "PGE %Lx resolves to no block" addr
        in
        let steps = decode_window program cur entry in
        (* Windows that trapped mid-flight (wild jump) have no PGD. *)
        (match cur.rest with
        | Packet.Tip_pgd :: _ -> expect_pgd cur
        | _ -> ());
        traces := steps :: !traces
      | _ -> desync "PSBEND without TIP.PGE");
      go ()
    | Packet.Pad :: rest ->
      cur.rest <- rest;
      go ()
    | p :: _ -> desync "unexpected %s between windows" (Packet.to_string p)
  in
  go ();
  List.rev !traces

let pp_step ppf s =
  let transfer =
    match s.transfer with
    | Fall -> "fall"
    | Taken -> "T"
    | Not_taken -> "N"
    | Sw d -> Printf.sprintf "sw->%s" (Program.bref_to_string d)
    | Call v -> Printf.sprintf "call %Lx" v
    | End -> "end"
  in
  Format.fprintf ppf "%a:%s" Program.pp_bref s.block transfer
