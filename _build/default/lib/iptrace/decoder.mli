(** PT packet decoder.

    Reconstructs the exact basic-block path of each trace window from the
    packet stream plus the static device program, the way FlowGuard-style
    decoders reconstruct flow from PT packets plus the binary: gotos are
    followed statically, each conditional branch consumes one TNT bit,
    each switch consumes a TIP packet resolved to a block address, and each
    indirect call consumes a TIP carrying the raw function-pointer value
    (following into chained handlers when the callback table says so). *)

type transfer =
  | Fall                      (** Unconditional (goto). *)
  | Taken
  | Not_taken
  | Sw of Devir.Program.bref  (** Switch destination. *)
  | Call of int64             (** Indirect call target value. *)
  | End                       (** Handler halt. *)

type step = { block : Devir.Program.bref; transfer : transfer }

type trace = step list
(** One PGE..PGD window. *)

exception Desync of string
(** The packet stream is inconsistent with the program (missing TNT bits,
    unresolvable TIP, truncated window, filtered-out indirect target). *)

val decode : Devir.Program.t -> Packet.t list -> trace list
(** Decode all complete trace windows.  Raises {!Desync} on malformed
    streams. *)

val pp_step : Format.formatter -> step -> unit
