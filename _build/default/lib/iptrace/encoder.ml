type t = {
  filter : Filter.t;
  mutable packets_rev : Packet.t list;
  mutable tnt_buf : bool list;  (** Newest first. *)
  mutable in_window : bool;
      (** False between a dropped PGE and the matching PGD: the filter
          suppressed this trace window. *)
}

let create filter =
  { filter; packets_rev = []; tnt_buf = []; in_window = false }

let emit t p = t.packets_rev <- p :: t.packets_rev

let flush_tnt t =
  match t.tnt_buf with
  | [] -> ()
  | bits ->
    emit t (Packet.Tnt_short (List.rev bits));
    t.tnt_buf <- []

let feed t (ev : Interp.Event.trace_event) =
  match ev with
  | Interp.Event.Pge addr ->
    if Filter.contains t.filter addr then begin
      t.in_window <- true;
      emit t Packet.Psb;
      emit t Packet.Psbend;
      emit t (Packet.Tip_pge addr)
    end
    else t.in_window <- false
  | Interp.Event.Tnt taken ->
    if t.in_window then begin
      t.tnt_buf <- taken :: t.tnt_buf;
      if List.length t.tnt_buf >= 6 then flush_tnt t
    end
  | Interp.Event.Tip addr ->
    if t.in_window then begin
      flush_tnt t;
      if Filter.contains t.filter addr then emit t (Packet.Tip addr)
      else
        (* Real PT suppresses out-of-range targets; the decoder sees a
           filtered TIP as a hole.  We keep a placeholder so decoding can
           detect contaminated streams in tests. *)
        emit t Packet.Pad
    end
  | Interp.Event.Pgd ->
    if t.in_window then begin
      flush_tnt t;
      emit t Packet.Tip_pgd;
      t.in_window <- false
    end

let packets t =
  flush_tnt t;
  List.rev t.packets_rev

let clear t =
  t.packets_rev <- [];
  t.tnt_buf <- [];
  t.in_window <- false

let trace_bytes t =
  List.fold_left (fun acc p -> acc + Packet.encoded_size p) 0 (packets t)
