(** PT packet encoder.

    Consumes the interpreter's {!Interp.Event.trace_event}s and produces a
    compressed packet stream: conditional branch bits accumulate into short
    TNT packets (up to six bits) that are flushed before any other packet,
    and every trace window is bracketed by PSB/PSBEND...TIP.PGE and
    TIP.PGD.  Events whose address falls outside the filter are dropped,
    like hardware range filtering; a dropped PGE suppresses the whole
    window. *)

type t

val create : Filter.t -> t

val feed : t -> Interp.Event.trace_event -> unit

val packets : t -> Packet.t list
(** Flush pending TNT bits and return all packets so far, in order.  The
    encoder can keep being fed afterwards. *)

val clear : t -> unit
(** Drop all buffered packets and bits. *)

val trace_bytes : t -> int
(** Total {!Packet.encoded_size} of the packets emitted so far. *)
