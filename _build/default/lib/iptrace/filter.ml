type t = { ranges : (int64 * int64) list }

let make ~ranges = { ranges }

let kernel_base = 0xFFFF_8000_0000_0000L

let for_program program =
  let lo, hi = Devir.Program.code_range program in
  let callback_values = List.map fst (Devir.Program.callbacks program) in
  let cb_ranges =
    List.map (fun v -> (v, Int64.add v 1L)) callback_values
  in
  { ranges = (lo, hi) :: cb_ranges }

let contains t addr =
  List.exists
    (fun (lo, hi) ->
      Int64.unsigned_compare addr lo >= 0 && Int64.unsigned_compare addr hi < 0)
    t.ranges

let ranges t = t.ranges
