(** IPT address filtering.

    SEDSpec configures IPT so that only control flow inside the emulated
    device is collected: tracing starts/stops at the device's I/O entry and
    exit, the collected address range is restricted to the device code, and
    kernel-space flow is disabled.  This module reproduces those filtering
    rules for the simulated packet stream. *)

type t

val make : ranges:(int64 * int64) list -> t
(** Half-open address ranges \[lo, hi) whose flow may be collected. *)

val for_program : Devir.Program.t -> t
(** The filter SEDSpec's IPT module would compute from the device's memory
    layout: the program's code range plus its callback-value range (so
    indirect-jump targets survive filtering). *)

val kernel_base : int64
(** Base of the simulated kernel address space ([0xFFFF_8000_0000_0000]);
    never inside a device filter, so kernel flow is dropped. *)

val contains : t -> int64 -> bool

val ranges : t -> (int64 * int64) list
