open Devir

type node = {
  bref : Program.bref;
  mutable visits : int;
  mutable taken : int;
  mutable not_taken : int;
  mutable itargets : (int64 * int) list;
  mutable succs : (Program.bref * int) list;
}

type t = {
  program : Program.t;
  table : (Program.bref, node) Hashtbl.t;
}

let create program = { program; table = Hashtbl.create 64 }

let get_node t bref =
  match Hashtbl.find_opt t.table bref with
  | Some n -> n
  | None ->
    let n = { bref; visits = 0; taken = 0; not_taken = 0; itargets = []; succs = [] } in
    Hashtbl.add t.table bref n;
    n

let bump_assoc key l =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, c) :: rest when k = key -> (k, c + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  go l

let add_succ n succ = n.succs <- bump_assoc succ n.succs

let add_trace t (trace : Decoder.trace) =
  let rec go = function
    | [] -> ()
    | (step : Decoder.step) :: rest ->
      let n = get_node t step.block in
      n.visits <- n.visits + 1;
      (match step.transfer with
      | Decoder.Taken -> n.taken <- n.taken + 1
      | Decoder.Not_taken -> n.not_taken <- n.not_taken + 1
      | Decoder.Call v -> n.itargets <- bump_assoc v n.itargets
      | Decoder.Fall | Decoder.Sw _ | Decoder.End -> ());
      (match rest with
      | next :: _ -> add_succ n next.Decoder.block
      | [] -> ());
      go rest
  in
  go trace

let program t = t.program
let node t bref = Hashtbl.find_opt t.table bref

let nodes t =
  let all = Hashtbl.fold (fun _ n acc -> n :: acc) t.table [] in
  List.sort
    (fun a b ->
      Int64.compare
        (Program.address_of t.program a.bref)
        (Program.address_of t.program b.bref))
    all

let block_count t = Hashtbl.length t.table

let term_of t bref = (Program.find_block t.program bref).Block.term

let conditional_nodes t =
  List.filter
    (fun n -> match term_of t n.bref with Term.Branch _ -> true | _ -> false)
    (nodes t)

let indirect_nodes t =
  List.filter
    (fun n -> match term_of t n.bref with Term.Icall _ -> true | _ -> false)
    (nodes t)

let one_sided n =
  (n.taken = 0 && n.not_taken > 0) || (n.taken > 0 && n.not_taken = 0)

let edge_count t =
  Hashtbl.fold (fun _ n acc -> acc + List.length n.succs) t.table 0

let pp ppf t =
  Format.fprintf ppf "@[<v>ITC-CFG of %s: %d blocks, %d edges@,"
    (Program.name t.program) (block_count t) (edge_count t);
  List.iter
    (fun n ->
      Format.fprintf ppf "%a visits=%d" Program.pp_bref n.bref n.visits;
      if n.taken + n.not_taken > 0 then
        Format.fprintf ppf " T=%d N=%d" n.taken n.not_taken;
      if n.itargets <> [] then
        Format.fprintf ppf " targets={%s}"
          (String.concat ","
             (List.map (fun (v, c) -> Printf.sprintf "%Lx:%d" v c) n.itargets));
      Format.fprintf ppf "@,")
    (nodes t);
  Format.fprintf ppf "@]"
