(** Indirect Targets Connected Control Flow Graph (ITC-CFG).

    The runtime control-flow graph SEDSpec builds from decoded PT traces
    (the FlowGuard construction): one node per basic block actually
    executed, edges weighted by observation counts, and — the "indirect
    targets connected" part — each indirect jump site annotated with the
    set of concrete targets it was observed to reach.  SEDSpec's CFG
    analyzer later walks this graph to find the conditional and indirect
    structures whose variables become device state parameters. *)

type node = {
  bref : Devir.Program.bref;
  mutable visits : int;
  mutable taken : int;       (** Conditional branch: times taken. *)
  mutable not_taken : int;
  mutable itargets : (int64 * int) list;
      (** Indirect call targets with observation counts. *)
  mutable succs : (Devir.Program.bref * int) list;
      (** Observed successor blocks with edge counts. *)
}

type t

val create : Devir.Program.t -> t

val add_trace : t -> Decoder.trace -> unit
(** Fold one decoded trace window into the graph. *)

val program : t -> Devir.Program.t
val node : t -> Devir.Program.bref -> node option
val nodes : t -> node list
(** All nodes, in program address order. *)

val block_count : t -> int

val conditional_nodes : t -> node list
(** Nodes whose block ends in a conditional branch. *)

val indirect_nodes : t -> node list
(** Nodes whose block ends in an indirect call. *)

val one_sided : node -> bool
(** A conditional node observed taking only one direction — the basis of
    the conditional jump check. *)

val edge_count : t -> int

val pp : Format.formatter -> t -> unit
