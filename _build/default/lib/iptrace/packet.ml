type t =
  | Psb
  | Psbend
  | Tip_pge of int64
  | Tip of int64
  | Tip_pgd
  | Tnt_short of bool list
  | Pad

let pp ppf = function
  | Psb -> Format.fprintf ppf "PSB"
  | Psbend -> Format.fprintf ppf "PSBEND"
  | Tip_pge a -> Format.fprintf ppf "TIP.PGE %Lx" a
  | Tip a -> Format.fprintf ppf "TIP %Lx" a
  | Tip_pgd -> Format.fprintf ppf "TIP.PGD"
  | Tnt_short bits ->
    Format.fprintf ppf "TNT %s"
      (String.concat "" (List.map (fun b -> if b then "T" else "N") bits))
  | Pad -> Format.fprintf ppf "PAD"

let to_string p = Format.asprintf "%a" pp p

let ip_bytes = 6 (* a 48-bit IP payload, the common real-world case *)

let encoded_size = function
  | Psb -> 16
  | Psbend -> 2
  | Tip_pge _ | Tip _ -> 1 + ip_bytes
  | Tip_pgd -> 2
  | Tnt_short _ -> 1
  | Pad -> 1
