(** Simulated Intel Processor Trace packets.

    The encoder compresses the interpreter's control-flow events into the
    same packet vocabulary real IPT uses: PSB synchronisation, TIP.PGE /
    TIP.PGD trace windowing, short TNT packets carrying up to six
    conditional-branch bits, and TIP packets for indirect transfers.  The
    decoder must recover the exact block path from these packets plus the
    static program, exactly as FlowGuard-style decoders recover it from the
    binary. *)

type t =
  | Psb          (** Stream synchronisation boundary. *)
  | Psbend
  | Tip_pge of int64  (** Trace enabled at address (handler entry). *)
  | Tip of int64      (** Indirect transfer target. *)
  | Tip_pgd           (** Trace disabled (handler exit). *)
  | Tnt_short of bool list
      (** 1..6 conditional-branch outcomes, oldest first. *)
  | Pad

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encoded_size : t -> int
(** Approximate wire size in bytes of the packet, mirroring real IPT
    encodings (PSB 16, TIP* 1+IP bytes, short TNT 1, PAD 1).  Used to
    report trace-volume statistics. *)
