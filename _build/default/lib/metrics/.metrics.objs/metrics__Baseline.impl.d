lib/metrics/baseline.ml: Attacks Format List Nioh Option Sedspec Sedspec_util Spec_cache Vmm Workload
