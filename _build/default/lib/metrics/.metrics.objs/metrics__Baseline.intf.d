lib/metrics/baseline.mli: Format
