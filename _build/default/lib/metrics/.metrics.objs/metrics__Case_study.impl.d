lib/metrics/case_study.ml: Attacks Devices Format List Sedspec Spec_cache Vmm Workload
