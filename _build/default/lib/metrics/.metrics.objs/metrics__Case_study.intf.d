lib/metrics/case_study.mli: Attacks Format Sedspec
