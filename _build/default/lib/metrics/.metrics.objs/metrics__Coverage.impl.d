lib/metrics/coverage.ml: Devir Format Hashtbl Interp Sedspec Sedspec_util Spec_cache Vmm Workload
