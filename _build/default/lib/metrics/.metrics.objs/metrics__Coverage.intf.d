lib/metrics/coverage.mli: Format Workload
