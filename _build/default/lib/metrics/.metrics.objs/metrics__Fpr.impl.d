lib/metrics/fpr.ml: Array Format List Option Printf Sedspec Sedspec_util Spec_cache String Vmm Workload
