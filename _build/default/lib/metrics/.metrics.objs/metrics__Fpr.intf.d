lib/metrics/fpr.mli: Format Workload
