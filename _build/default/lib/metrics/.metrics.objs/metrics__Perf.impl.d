lib/metrics/perf.ml: Bytes List Spec_cache Unix Workload
