lib/metrics/perf.mli:
