lib/metrics/spec_cache.ml: Devices Hashtbl Sedspec Workload
