lib/metrics/spec_cache.mli: Devices Sedspec Vmm Workload
