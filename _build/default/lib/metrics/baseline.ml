type verdict = {
  cve : string;
  device : string;
  nioh_detected : bool;
  sedspec_detected : bool;
}

let nioh_cves =
  [
    "CVE-2015-3456";
    "CVE-2015-5158";
    "CVE-2016-4439";
    "CVE-2016-7909";
    "CVE-2016-1568";
  ]

let run_stream m (attack : Attacks.Attack.t) =
  try attack.run m with Exit -> ()

let nioh_detects (attack : Attacks.Attack.t) =
  let w = Workload.Samples.find attack.device in
  let m = Spec_cache.fresh_machine w attack.qemu_version in
  let spec =
    match Nioh.spec_for attack.device with
    | Some s -> s
    | None -> invalid_arg ("no nioh model for " ^ attack.device)
  in
  (* Nioh monitors from boot; the benign setup must pass it too. *)
  let monitor = Nioh.attach m spec in
  attack.setup m;
  assert (Nioh.anomalies monitor = []);
  run_stream m attack;
  Nioh.drain_anomalies monitor <> []

let sedspec_detects (attack : Attacks.Attack.t) =
  let w = Workload.Samples.find attack.device in
  let m, checker = Spec_cache.fresh_protected_machine w attack.qemu_version in
  attack.setup m;
  ignore (Sedspec.Checker.drain_anomalies checker);
  run_stream m attack;
  Sedspec.Checker.drain_anomalies checker <> []

let run () =
  List.map
    (fun cve ->
      let attack = Attacks.Attack.find cve in
      {
        cve;
        device = attack.device;
        nioh_detected = nioh_detects attack;
        sedspec_detected = sedspec_detects attack;
      })
    nioh_cves

let benign_nioh_fp device =
  let w = Workload.Samples.find device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine W.paper_version in
  let spec = Option.get (Nioh.spec_for device) in
  let monitor = Nioh.attach m spec in
  let rng = Sedspec_util.Prng.create 17L in
  let flagged = ref 0 in
  for _ = 1 to 40 do
    W.soak_case ~mode:Workload.Samples.Random ~rng ~rare_prob:0.05 ~ops:8 m;
    if Nioh.drain_anomalies monitor <> [] then incr flagged;
    if Vmm.Machine.halted m then begin
      Vmm.Machine.resume m;
      Nioh.resync monitor
    end
  done;
  !flagged

let pp_verdict ppf v =
  Format.fprintf ppf "%-16s %-6s nioh=%-5b sedspec=%b" v.cve v.device
    v.nioh_detected v.sedspec_detected
