(** Nioh-vs-SEDSpec comparison (paper §VII-B2).

    The Nioh experiment referenced by the paper covers five CVEs on three
    devices (FDC Venom, SCSI 5158/4439, PCNet 7909, and the AHCI UAF whose
    analog lives in our SCSI model).  This harness runs each against

    - the hand-written Nioh state machine for the device, and
    - an automatically trained SEDSpec checker (all strategies),

    recording who detects what.  The expected divergence is exactly the
    paper's: Nioh additionally catches the use-after-free analog (its
    manual model knows completions require an active request), while
    SEDSpec catches everything else without any manual model. *)

type verdict = {
  cve : string;
  device : string;
  nioh_detected : bool;
  sedspec_detected : bool;
}

val nioh_cves : string list
(** The five Nioh-experiment CVEs. *)

val run : unit -> verdict list

val benign_nioh_fp : string -> int
(** Run the device's benign soak (rare commands included) under the Nioh
    monitor and count flagged cases — the manual model covers rare
    commands, so this should be zero, at the cost of having been written
    by hand. *)

val pp_verdict : Format.formatter -> verdict -> unit
