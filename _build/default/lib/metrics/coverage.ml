module Prng = Sedspec_util.Prng

type result = {
  device : string;
  trained_blocks : int;
  fuzz_blocks : int;
  covered : int;
  effective : float;
}

let record_blocks m device f =
  let interp = Vmm.Machine.interp_of m device in
  let saved = Interp.hooks interp in
  let set : (Devir.Program.bref, unit) Hashtbl.t = Hashtbl.create 64 in
  Interp.set_hooks interp
    {
      saved with
      Interp.on_block =
        (fun bref kind ->
          Hashtbl.replace set bref ();
          saved.Interp.on_block bref kind);
    };
  f ();
  Interp.set_hooks interp saved;
  set

let measure ?(seed = 7L) ?(fuzz_cases = 60) ?(ops_per_case = 20)
    (module W : Workload.Samples.DEVICE_WORKLOAD) =
  (* Training coverage. *)
  let m1 = W.make_machine W.paper_version in
  let trainer = W.trainer ~cases:!Spec_cache.training_cases in
  let trained =
    record_blocks m1 W.device_name (fun () ->
        for case = 0 to trainer.Sedspec.Pipeline.cases - 1 do
          trainer.Sedspec.Pipeline.run_case m1 case
        done)
  in
  (* Legitimate-behaviour fuzzing: the full benign mix, rare commands
     included at a high rate, unprotected. *)
  let m2 = W.make_machine W.paper_version in
  let rng = Prng.create seed in
  let fuzz =
    record_blocks m2 W.device_name (fun () ->
        for _ = 1 to fuzz_cases do
          let mode =
            if Prng.bool rng then Workload.Samples.Random
            else Workload.Samples.Sequential
          in
          W.soak_case ~mode ~rng ~rare_prob:0.10 ~ops:ops_per_case m2
        done)
  in
  let covered =
    Hashtbl.fold
      (fun bref () acc -> if Hashtbl.mem trained bref then acc + 1 else acc)
      fuzz 0
  in
  {
    device = W.device_name;
    trained_blocks = Hashtbl.length trained;
    fuzz_blocks = Hashtbl.length fuzz;
    covered;
    effective =
      (if Hashtbl.length fuzz = 0 then 1.0
       else float_of_int covered /. float_of_int (Hashtbl.length fuzz));
  }

let pp_result ppf r =
  Format.fprintf ppf "%s: %d trained / %d fuzz-reached -> %s effective"
    r.device r.trained_blocks r.fuzz_blocks
    (Sedspec_util.Table.fmt_pct r.effective)
