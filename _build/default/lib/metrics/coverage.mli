(** Effective coverage (paper Table III, last column).

    The paper approximates "all legitimate behaviour paths" by fuzzing the
    device for an hour (coverage converges quickly), then reports the
    fraction of those paths the training corpus covered.  We fuzz with the
    full benign operation mix — rare maintenance commands included and
    parameters drawn from the whole legitimate space — and compare block
    coverage sets. *)

type result = {
  device : string;
  trained_blocks : int;
  fuzz_blocks : int;
  covered : int;  (** Fuzz-reached blocks also covered by training. *)
  effective : float;  (** covered / fuzz_blocks. *)
}

val measure :
  ?seed:int64 ->
  ?fuzz_cases:int ->
  ?ops_per_case:int ->
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  result
(** Defaults: seed 7, 60 fuzz cases of 20 ops ("one hour" of fuzzing). *)

val pp_result : Format.formatter -> result -> unit
