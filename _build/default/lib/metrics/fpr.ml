module Prng = Sedspec_util.Prng

type checkpoint = { at_hours : int; fp_cases : int; cases : int }

type result = {
  device : string;
  checkpoints : checkpoint list;
  total_cases : int;
  fp_cases : int;
  fpr : float;
  param_check_fps : int;
  interactions : int;
}

let paper_fpr = function
  | "fdc" -> 0.0014
  | "ehci" -> 0.0010
  | "pcnet" -> 0.0011
  | "sdhci" -> 0.0009
  | "scsi" -> 0.0017
  | _ -> 0.0012

let modes =
  [| Workload.Samples.Sequential; Workload.Samples.Random; Workload.Samples.Random_delay |]

let soak ?(seed = 42L) ?(cases_per_hour = 120) ?(checkpoint_hours = [ 10; 20; 30 ])
    ?(ops_per_case = (4, 8)) ?rare_prob (module W : Workload.Samples.DEVICE_WORKLOAD)
    =
  let rare_prob = Option.value rare_prob ~default:(paper_fpr W.device_name) in
  let rng = Prng.create seed in
  let config =
    { Sedspec.Checker.default_config with Sedspec.Checker.mode = Sedspec.Checker.Enhancement }
  in
  let m, checker = Spec_cache.fresh_protected_machine ~config (module W) W.paper_version in
  let max_hours = List.fold_left max 0 checkpoint_hours in
  let fp_cases = ref 0 and cases = ref 0 and param_fps = ref 0 in
  let checkpoints = ref [] in
  let lo, hi = ops_per_case in
  for hour = 1 to max_hours do
    for k = 0 to cases_per_hour - 1 do
      let mode = modes.(k mod Array.length modes) in
      let ops = Prng.int_in rng lo hi in
      (* Spread the rare-command probability over the case's ops so that
         P(case contains a rare command) = rare_prob to first order. *)
      let per_op = rare_prob /. float_of_int ops in
      W.soak_case ~mode ~rng ~rare_prob:per_op ~ops m;
      incr cases;
      let anoms = Sedspec.Checker.drain_anomalies checker in
      if anoms <> [] then incr fp_cases;
      List.iter
        (fun (a : Sedspec.Checker.anomaly) ->
          if a.strategy = Sedspec.Checker.Parameter_check then incr param_fps)
        anoms;
      Vmm.Machine.clear_warnings m;
      if Vmm.Machine.halted m then begin
        Vmm.Machine.resume m;
        Sedspec.Checker.resync checker
      end
    done;
    if List.mem hour checkpoint_hours then
      checkpoints :=
        { at_hours = hour; fp_cases = !fp_cases; cases = !cases } :: !checkpoints
  done;
  let stats = Sedspec.Checker.stats checker in
  {
    device = W.device_name;
    checkpoints = List.rev !checkpoints;
    total_cases = !cases;
    fp_cases = !fp_cases;
    fpr = (if !cases = 0 then 0.0 else float_of_int !fp_cases /. float_of_int !cases);
    param_check_fps = !param_fps;
    interactions = stats.Sedspec.Checker.interactions;
  }

let pp_result ppf r =
  Format.fprintf ppf "%s: %d/%d cases flagged (FPR %s, %d interactions)%s [%s]"
    r.device r.fp_cases r.total_cases
    (Sedspec_util.Table.fmt_pct r.fpr)
    r.interactions
    (if r.param_check_fps > 0 then
       Printf.sprintf " PARAM FPS=%d!" r.param_check_fps
     else "")
    (String.concat "; "
       (List.map
          (fun c -> Printf.sprintf "%dh:%d" c.at_hours c.fp_cases)
          r.checkpoints))
