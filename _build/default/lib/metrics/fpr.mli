(** False-positive soak experiments (paper Tables II and III).

    The protected device runs long benign workloads in the three
    interaction modes; every test case that raises any anomaly counts as a
    false positive (all soak traffic is benign by construction).  Time is
    simulated: one "hour" is a fixed budget of test cases, and each test
    case performs thousands of I/O interactions, like the paper's.  The
    rare-command tail drives the FP rate; its per-case probability is the
    paper's measured FPR for the device, so the FP-over-time counts
    reproduce Table II's shape in expectation. *)

type checkpoint = { at_hours : int; fp_cases : int; cases : int }

type result = {
  device : string;
  checkpoints : checkpoint list;
  total_cases : int;
  fp_cases : int;
  fpr : float;  (** N_L / N_T. *)
  param_check_fps : int;  (** Parameter-check anomalies on benign traffic
                              — the paper claims (and we verify) zero. *)
  interactions : int;
}

val paper_fpr : string -> float
(** The paper's Table III FPR for a device (used as the rare-command
    probability). *)

val soak :
  ?seed:int64 ->
  ?cases_per_hour:int ->
  ?checkpoint_hours:int list ->
  ?ops_per_case:int * int ->
  ?rare_prob:float ->
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  result
(** Defaults: seed 42, 120 cases/hour (the paper's Table II counts imply
    roughly this volume at its FPRs), checkpoints at 10/20/30 h, 4..8
    logical ops per case, [rare_prob] = [paper_fpr device].  The checker
    runs in enhancement mode so non-parameter anomalies only warn. *)

val pp_result : Format.formatter -> result -> unit
