let training_cases = ref 24

let cache : (string * string, Sedspec.Pipeline.built) Hashtbl.t =
  Hashtbl.create 8

let built (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let key = (W.device_name, Devices.Qemu_version.to_string version) in
  match Hashtbl.find_opt cache key with
  | Some b -> b
  | None ->
    let m = W.make_machine version in
    let b =
      Sedspec.Pipeline.build m ~device:W.device_name
        (W.trainer ~cases:!training_cases)
    in
    Hashtbl.add cache key b;
    b

let fresh_machine ?vmexit_cost (module W : Workload.Samples.DEVICE_WORKLOAD)
    version =
  W.make_machine ?vmexit_cost version

let fresh_protected_machine ?config ?vmexit_cost
    (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let b = built (module W) version in
  let m = W.make_machine ?vmexit_cost version in
  let checker = Sedspec.Pipeline.protect ?config m ~device:W.device_name b in
  (m, checker)
