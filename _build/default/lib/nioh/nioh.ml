type astate = string
type input = string

type spec = {
  device : string;
  initial : astate;
  abstract : Devir.Arena.t -> astate;
  classify : Vmm.Machine.request -> input;
  transitions : (astate * input * astate list) list;
  invariants : (string * (Devir.Arena.t -> bool)) list;
}

type anomaly = {
  at_state : astate;
  input : input;
  detail : string;
}

type t = {
  machine : Vmm.Machine.t;
  spec : spec;
  mutable state : astate;
  mutable pending : input option;
  mutable anomalies_rev : anomaly list;
}

let pp_anomaly ppf a =
  Format.fprintf ppf "[nioh] state %s, input %s: %s" a.at_state a.input a.detail

(* Lookup: exact (state, input) first, then a "*" wildcard state.  "=" in
   the result list stands for "the pre-state". *)
let allowed spec state input =
  let resolve l = List.map (fun s -> if s = "=" then state else s) l in
  let exact =
    List.find_opt (fun (s, i, _) -> s = state && i = input) spec.transitions
  in
  match exact with
  | Some (_, _, out) -> Some (resolve out)
  | None -> (
    match
      List.find_opt (fun (s, i, _) -> s = "*" && i = input) spec.transitions
    with
    | Some (_, _, out) -> Some (resolve out)
    | None -> None)

let arena t = Interp.arena (Vmm.Machine.interp_of t.machine t.spec.device)

let record t at_state input detail =
  t.anomalies_rev <- { at_state; input; detail } :: t.anomalies_rev

let before t (req : Vmm.Machine.request) : Vmm.Machine.verdict =
  let input = t.spec.classify req in
  t.pending <- Some input;
  match allowed t.spec t.state input with
  | Some _ -> Vmm.Machine.Allow
  | None ->
    record t t.state input "illegal I/O request for the current device state";
    Vmm.Machine.Halt
      (Printf.sprintf "[nioh] illegal request %s in state %s" input t.state)

let after t (_req : Vmm.Machine.request) (_outcome : Interp.Event.outcome) :
    Vmm.Machine.verdict =
  let input = Option.value t.pending ~default:"?" in
  t.pending <- None;
  let post = t.spec.abstract (arena t) in
  let verdict =
    match allowed t.spec t.state input with
    | Some states when not (List.mem post states) ->
      record t t.state input
        (Printf.sprintf "transition to %s not in the device model" post);
      Vmm.Machine.Halt
        (Printf.sprintf "[nioh] illegal transition %s --%s--> %s" t.state input
           post)
    | _ -> (
      match
        List.find_opt (fun (_, check) -> not (check (arena t))) t.spec.invariants
      with
      | Some (name, _) ->
        record t t.state input (Printf.sprintf "invariant %s violated" name);
        Vmm.Machine.Halt (Printf.sprintf "[nioh] invariant %s violated" name)
      | None -> Vmm.Machine.Allow)
  in
  t.state <- post;
  verdict

let attach machine spec =
  let t =
    {
      machine;
      spec;
      state = spec.initial;
      pending = None;
      anomalies_rev = [];
    }
  in
  t.state <- spec.abstract (Interp.arena (Vmm.Machine.interp_of machine spec.device));
  Vmm.Machine.set_interposer machine spec.device
    { Vmm.Machine.before = before t; after = after t };
  t

let anomalies t = List.rev t.anomalies_rev

let drain_anomalies t =
  let out = List.rev t.anomalies_rev in
  t.anomalies_rev <- [];
  out

let resync t = t.state <- t.spec.abstract (arena t)

(* ------------------------------------------------------------------ *)
(* FDC: hand-written from the 82078 programming model.                 *)

let fdc_spec =
  let get = Devir.Arena.get in
  {
    device = "fdc";
    initial = "idle";
    abstract =
      (fun a ->
        match (get a "phase", get a "data_pos", get a "data_dir") with
        | 0L, 0L, _ -> "idle"
        | 0L, _, _ -> "cmd-args"
        | 1L, _, 1L -> "exec-read"
        | 1L, _, _ -> "exec-write"
        | _ -> "result");
    classify =
      (fun req ->
        let off = Option.value (List.assoc_opt "offset" req.params) ~default:(-1L) in
        match (req.handler, off) with
        | "write", 2L -> "dor-write"
        | "write", 3L -> "tdr-write"
        | "write", 4L -> "dsr-write"
        | "write", 5L -> "data-write"
        | "write", 7L -> "ccr-write"
        | "write", _ -> "reg-write"
        | "read", 4L -> "msr-read"
        | "read", 5L -> "data-read"
        | _, _ -> "reg-read");
    transitions =
      [
        (* A command byte either needs arguments or executes immediately
           (single-byte commands end in the result phase). *)
        ("idle", "data-write", [ "cmd-args"; "result" ]);
        (* The final argument dispatches the command. *)
        ( "cmd-args",
          "data-write",
          [ "cmd-args"; "exec-read"; "exec-write"; "result"; "idle" ] );
        ("exec-write", "data-write", [ "exec-write"; "result" ]);
        ("exec-read", "data-read", [ "exec-read"; "result" ]);
        ("result", "data-read", [ "result"; "idle" ]);
        (* Ignored/bogus accesses leave the state alone. *)
        ("idle", "data-read", [ "idle" ]);
        ("cmd-args", "data-read", [ "cmd-args" ]);
        ("exec-read", "data-write", [ "exec-read" ]);
        ("exec-write", "data-read", [ "exec-write" ]);
        ("result", "data-write", [ "result" ]);
        (* Register traffic; DOR/DSR writes may reset the controller. *)
        ("*", "dor-write", [ "="; "idle" ]);
        ("*", "dsr-write", [ "="; "idle" ]);
        ("*", "tdr-write", [ "=" ]);
        ("*", "ccr-write", [ "=" ]);
        ("*", "reg-write", [ "=" ]);
        ("*", "msr-read", [ "=" ]);
        ("*", "reg-read", [ "=" ]);
      ]
    (* Straight from the datasheet: commands take at most 9 bytes, the
       result phase at most 10 bytes, 80 cylinders (+ a safety margin). *)
    ;
    invariants =
      [
        ("command-length", fun a -> get a "phase" <> 0L || get a "data_pos" <= 9L);
        ( "result-length",
          fun a -> get a "phase" <> 2L || get a "data_len" <= 16L );
        ("cylinder-range", fun a -> get a "track" <= 83L);
      ];
  }

(* ------------------------------------------------------------------ *)
(* SCSI/ESP: hand-written from the 53C9X + SCSI-2 model.               *)

let scsi_spec =
  let get = Devir.Arena.get in
  {
    device = "scsi";
    initial = "free";
    abstract =
      (fun a ->
        if get a "req_active" = 0L then "free"
        else
          match get a "scsi_state" with
          | 2L -> "data-in"
          | 3L -> "data-out"
          | 4L -> "status"
          | _ -> "selected");
    classify =
      (fun req ->
        let off = Option.value (List.assoc_opt "offset" req.params) ~default:(-1L) in
        let data = Option.value (List.assoc_opt "data" req.params) ~default:0L in
        match (req.handler, off) with
        | "mmio_write", 3L -> (
          match Int64.to_int (Int64.logand data 0x7FL) with
          | 0x00 -> "cmd:nop"
          | 0x01 -> "cmd:flush"
          | 0x02 -> "cmd:reset"
          | 0x03 -> "cmd:busreset"
          | 0x10 -> "cmd:ti"
          | 0x11 -> "cmd:iccs"
          | 0x12 -> "cmd:msgacc"
          | 0x41 | 0x42 -> "cmd:select"
          | _ -> "cmd:other")
        | "mmio_write", (0L | 1L) -> "tc-write"
        | "mmio_write", 2L -> "fifo-write"
        | "mmio_write", 8L -> "dma-write"
        | "mmio_write", _ -> "reg-write"
        | "mmio_read", 2L -> "fifo-read"
        | _, _ -> "reg-read");
    transitions =
      [
        (* Selection executes the command: it lands in a transfer phase or
           straight in status. *)
        ("free", "cmd:select", [ "data-in"; "data-out"; "status"; "selected" ]);
        ("data-in", "cmd:ti", [ "data-in"; "status" ]);
        ("data-out", "cmd:ti", [ "data-out"; "status" ]);
        ("status", "cmd:ti", [ "status" ]);
        ("free", "cmd:ti", [ "free" ]);
        (* Command completion is only meaningful while a request is
           active — the rule that catches the use-after-free replay. *)
        ("status", "cmd:iccs", [ "status" ]);
        ("status", "cmd:msgacc", [ "free" ]);
        ("free", "cmd:msgacc", [ "free" ]);
        ("*", "cmd:nop", [ "=" ]);
        ("*", "cmd:flush", [ "=" ]);
        ("*", "cmd:reset", [ "free" ]);
        ("*", "cmd:busreset", [ "=" ]);
        ("*", "tc-write", [ "=" ]);
        ("*", "fifo-write", [ "=" ]);
        ("*", "dma-write", [ "=" ]);
        ("*", "reg-write", [ "=" ]);
        ("*", "fifo-read", [ "=" ]);
        ("*", "reg-read", [ "=" ]);
      ];
    invariants =
      [
        (* SCSI-2: CDBs are 6/10/12/16 bytes; the TI FIFO holds 16. *)
        ("cdb-length", fun a -> get a "cdb_len" <= 16L);
        ("ti-fifo-size", fun a -> get a "ti_size" <= 16L);
        ( "transfer-length",
          fun a -> Int64.unsigned_compare (get a "disk_len") 0x100000L <= 0 );
      ];
  }

(* ------------------------------------------------------------------ *)
(* PCNet: hand-written from the Am79C970A model.                       *)

let pcnet_spec =
  let get = Devir.Arena.get in
  {
    device = "pcnet";
    initial = "stopped";
    abstract =
      (fun a ->
        let csr0 = Int64.to_int (get a "csr0") in
        if csr0 land 0x4 <> 0 then "stopped"
        else if csr0 land 0x2 <> 0 then "running"
        else if csr0 land 0x1 <> 0 then "initialized"
        else "off");
    classify =
      (fun req ->
        let off = Option.value (List.assoc_opt "offset" req.params) ~default:(-1L) in
        match (req.handler, off) with
        | "receive", _ -> "frame-rx"
        | "write", 0x14L -> "sw-reset"
        | "write", 0x12L -> "rap-write"
        | "write", 0x10L -> "csr-write"
        | "write", 0x16L -> "bcr-write"
        | "write", _ -> "reg-write"
        | _, _ -> "reg-read");
    transitions =
      [
        (* CSR0 control bits move the card between stopped / initialized /
           running; the RAP-addressed CSRs do not change the run state. *)
        ("*", "csr-write", [ "off"; "initialized"; "running"; "stopped" ]);
        ("*", "sw-reset", [ "stopped" ]);
        ("*", "rap-write", [ "=" ]);
        ("*", "bcr-write", [ "=" ]);
        ("*", "reg-write", [ "=" ]);
        ("*", "reg-read", [ "=" ]);
        ("*", "frame-rx", [ "=" ]);
      ];
    invariants =
      [
        (* The datasheet requires ring lengths of at least one descriptor
           while the card is running — the CVE-2016-7909 condition. *)
        ( "ring-lengths",
          fun a ->
            Int64.to_int (get a "csr0") land 0x2 = 0
            || (get a "rcvrl" >= 1L && get a "xmtrl" >= 1L) );
        ( "ring-addresses",
          fun a ->
            Int64.to_int (get a "csr0") land 0x2 = 0
            || (get a "rdra" <> 0L && get a "tdra" <> 0L) );
      ];
  }

let spec_for = function
  | "fdc" -> Some fdc_spec
  | "scsi" -> Some scsi_spec
  | "pcnet" -> Some pcnet_spec
  | _ -> None
