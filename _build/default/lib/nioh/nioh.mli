(** Nioh baseline (Ogasawara & Kono, ACSAC 2017) — the paper's main point
    of comparison.

    Nioh hardens the hypervisor by filtering illegal I/O requests against a
    {e hand-written} device state transition model derived from the device
    specification.  This module implements that approach for the devices
    the Nioh experiment covered: an abstraction function from the live
    control structure to a small set of named states, a hand-enumerated
    allowed-transition relation over classified inputs, and manually
    written state invariants (e.g. "data_pos never exceeds the 512-byte
    FIFO").

    The contrast the paper draws is reproduced exactly:
    - Nioh's manual models encode semantic rules SEDSpec cannot learn —
      its SCSI model knows a completion is only legal while a request is
      active, so it {e detects} the CVE-2016-1568 analog that SEDSpec
      misses;
    - but every model below had to be written by hand from the device
      documentation, which is the scalability cost SEDSpec removes. *)

type astate = string
(** Abstract device state label (e.g. ["idle"], ["exec-read"]). *)

type input = string
(** Input class label (e.g. ["data-write"], ["cmd:iccs"]). *)

type spec = {
  device : string;
  initial : astate;
  abstract : Devir.Arena.t -> astate;
      (** Manual abstraction from the control structure. *)
  classify : Vmm.Machine.request -> input;
  transitions : (astate * input * astate list) list;
      (** Allowed transitions: in state [s], input [i] may lead to any of
          the listed states.  Absent (s, i) pairs are illegal requests. *)
  invariants : (string * (Devir.Arena.t -> bool)) list;
      (** Named safety conditions on the concrete state, checked after
          every request. *)
}

type anomaly = {
  at_state : astate;
  input : input;
  detail : string;
}

type t

val attach : Vmm.Machine.t -> spec -> t
(** Install the monitor as the device's machine interposer (protection
    mode: illegal requests halt the VM before execution; bad resulting
    states/invariants halt after). *)

val anomalies : t -> anomaly list
val drain_anomalies : t -> anomaly list
val resync : t -> unit
(** Re-read the abstract state from the device (after a resume). *)

val pp_anomaly : Format.formatter -> anomaly -> unit

(** {1 Hand-written device models}

    These cover the devices of the Nioh experiment referenced by the
    paper (FDC, SCSI, PCNet).  Writing them required exactly the kind of
    per-device manual effort the paper criticises; they are kept honest —
    every rule comes from the device's programming model, not from the
    exploits. *)

val fdc_spec : spec
val scsi_spec : spec
val pcnet_spec : spec

val spec_for : string -> spec option
