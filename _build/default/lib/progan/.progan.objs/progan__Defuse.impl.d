lib/progan/defuse.ml: Block Devir Expr Hashtbl List Option Program Stmt
