lib/progan/defuse.mli: Devir
