lib/progan/relevance.ml: Block Devir Expr Layout List Program Set Stmt String Term
