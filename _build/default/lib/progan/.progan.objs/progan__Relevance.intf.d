lib/progan/relevance.mli: Devir
