lib/progan/usage.ml: Block Defuse Devir Expr Hashtbl Layout List Option Program Stmt Term
