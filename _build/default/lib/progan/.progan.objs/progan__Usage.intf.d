lib/progan/usage.mli: Devir
