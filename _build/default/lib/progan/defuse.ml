open Devir

type def =
  | Def_expr of Expr.t
  | Def_guest  (* loaded from guest memory: unrecoverable *)

type t = {
  defs : (string, def list) Hashtbl.t;
  def_stmts : (string, Stmt.t list) Hashtbl.t;
}

let add tbl key v =
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (cur @ [ v ])

let analyze (h : Program.handler) =
  let t = { defs = Hashtbl.create 16; def_stmts = Hashtbl.create 16 } in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun stmt ->
          match stmt with
          | Stmt.Set_local (n, e) ->
            add t.defs n (Def_expr e);
            add t.def_stmts n stmt
          | Stmt.Read_guest { local; _ } | Stmt.Host_value { local; _ } ->
            add t.defs local Def_guest;
            add t.def_stmts local stmt
          | _ -> ())
        b.stmts)
    h.blocks;
  t

let definitions t local =
  Option.value ~default:[] (Hashtbl.find_opt t.def_stmts local)

(* Transitive closure over locals, tracking visited locals to terminate on
   cycles such as [i = i + 1]. *)
let transitive t extract e =
  let seen_locals = Hashtbl.create 8 in
  let acc = ref [] in
  let push x = if not (List.mem x !acc) then acc := x :: !acc in
  let rec go e =
    List.iter push (extract e);
    List.iter
      (fun local ->
        if not (Hashtbl.mem seen_locals local) then begin
          Hashtbl.add seen_locals local ();
          List.iter
            (function Def_expr d -> go d | Def_guest -> ())
            (Option.value ~default:[] (Hashtbl.find_opt t.defs local))
        end)
      (Expr.locals e)
  in
  go e;
  List.rev !acc

let influencing_fields t e = transitive t Expr.fields e
let influencing_params t e = transitive t Expr.params e

let recover t e =
  let rec go depth visiting e =
    if depth > 64 then None
    else
      match Expr.locals e with
      | [] -> Some e
      | local :: _ ->
        if List.mem local visiting then None
        else begin
          match Hashtbl.find_opt t.defs local with
          | Some [ Def_expr d ] -> (
            match go (depth + 1) (local :: visiting) d with
            | Some d' -> go (depth + 1) visiting (Expr.subst_local local d' e)
            | None -> None)
          | Some defs ->
            (* Multiple definitions are acceptable only when syntactically
               identical. *)
            let exprs =
              List.filter_map
                (function Def_expr d -> Some d | Def_guest -> None)
                defs
            in
            (match exprs with
            | d :: rest
              when List.length exprs = List.length defs
                   && List.for_all (Expr.equal d) rest -> (
              match go (depth + 1) (local :: visiting) d with
              | Some d' -> go (depth + 1) visiting (Expr.subst_local local d' e)
              | None -> None)
            | _ -> None)
          | None -> None
        end
  in
  go 0 [] e
