(** Def-use analysis over handler locals.

    Handlers are small, so the analysis is intraprocedural and
    flow-insensitive: a local is described by the set of expressions ever
    assigned to it in the handler.  Two consumers build on this:

    - {!influencing_fields} computes the control-structure fields that can
      reach an expression through local definitions — SEDSpec's CFG
      analyzer uses it to find the variables that influence conditional
      and indirect jumps;
    - {!recover} rebuilds an expression over fields and request parameters
      only, by inlining unique local definitions — SEDSpec's
      data-dependency recovery (the paper uses angr for this step).
      Recovery fails ([None]) when a local has several conflicting
      definitions or is loaded from guest memory, which is exactly the
      case where the paper falls back to a sync point. *)

type t

val analyze : Devir.Program.handler -> t
(** Collect local definitions of one handler. *)

val definitions : t -> string -> Devir.Stmt.t list
(** All statements assigning the local (in block order). *)

val influencing_fields : t -> Devir.Expr.t -> string list
(** Control-structure fields that flow into the expression, directly or
    through any chain of local definitions (guest loads contribute no
    fields).  Order: first encountered first; no duplicates. *)

val influencing_params : t -> Devir.Expr.t -> string list
(** Request parameters that flow into the expression, transitively. *)

val recover : t -> Devir.Expr.t -> Devir.Expr.t option
(** Rewrite the expression so it references no locals, by inlining local
    definitions.  [None] if some local has zero or multiple distinct
    definitions, is defined from guest memory, or the inlining recurses
    (self-referential definitions like [i = i + 1]). *)
