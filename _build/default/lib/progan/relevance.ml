open Devir

module S = Set.Make (String)

let rec bufs_read acc (e : Expr.t) =
  match e with
  | Expr.Buf_byte (b, idx) -> bufs_read (S.add b acc) idx
  | Expr.Binop (_, _, a, b) | Expr.Cmp (_, a, b) -> bufs_read (bufs_read acc a) b
  | Expr.Not a -> bufs_read acc a
  | Expr.Const _ | Expr.Field _ | Expr.Buf_len _ | Expr.Param _ | Expr.Local _ ->
    acc

let vars_of e = Expr.fields e @ Expr.locals e

(* Index / offset / length expressions of a statement: always decision-
   relevant (they position buffer accesses). *)
let position_exprs (stmt : Stmt.t) =
  match stmt with
  | Stmt.Set_buf (_, idx, _) -> [ idx ]
  | Stmt.Buf_fill (_, off, len, _) -> [ off; len ]
  | Stmt.Copy_from_guest { buf_off; len; _ } | Stmt.Copy_to_guest { buf_off; len; _ }
    ->
    [ buf_off; len ]
  | _ -> []

(* Value expressions whose result lands in the given sink. *)
let assignments (stmt : Stmt.t) =
  match stmt with
  | Stmt.Set_field (f, e) -> [ (`Var f, e) ]
  | Stmt.Set_local (n, e) -> [ (`Var n, e) ]
  | Stmt.Set_buf (b, _, v) -> [ (`Buf b, v) ]
  | Stmt.Buf_fill (b, _, _, v) -> [ (`Buf b, v) ]
  | _ -> []

let relevant_buffers program =
  let rel_vars = ref S.empty and rel_bufs = ref S.empty in
  let changed = ref true in
  let add_vars vars =
    List.iter
      (fun v ->
        if not (S.mem v !rel_vars) then begin
          rel_vars := S.add v !rel_vars;
          changed := true
        end)
      vars
  in
  let add_bufs bufs =
    S.iter
      (fun b ->
        if not (S.mem b !rel_bufs) then begin
          rel_bufs := S.add b !rel_bufs;
          changed := true
        end)
      bufs
  in
  let mark_expr e =
    add_vars (vars_of e);
    add_bufs (bufs_read S.empty e)
  in
  (* Seed: decisions and buffer positions. *)
  Program.iter_blocks program (fun _ block ->
      List.iter mark_expr (Term.exprs block.Block.term);
      List.iter
        (fun stmt -> List.iter mark_expr (position_exprs stmt))
        block.Block.stmts);
  (* Propagate backwards through assignments until stable. *)
  while !changed do
    changed := false;
    Program.iter_blocks program (fun _ block ->
        List.iter
          (fun stmt ->
            List.iter
              (fun (sink, e) ->
                let sink_relevant =
                  match sink with
                  | `Var v -> S.mem v !rel_vars
                  | `Buf b -> S.mem b !rel_bufs
                in
                if sink_relevant then mark_expr e)
              (assignments stmt))
          block.Block.stmts)
  done;
  (* Keep only actual buffer fields. *)
  let layout = Program.layout program in
  S.elements
    (S.filter
       (fun b ->
         Layout.mem layout b
         &&
         match (Layout.find layout b).kind with
         | Layout.Buf _ -> true
         | _ -> false)
       !rel_bufs)
