(** Buffer-content relevance analysis.

    SEDSpec's device state deliberately excludes buffer contents (the
    data-volume rule) — except where content actually decides control
    flow, e.g. a command byte parsed out of a FIFO.  This analysis
    computes, per program, the set of buffers whose {e bytes} can reach a
    branch/switch/indirect-call decision or a buffer index/offset/length,
    directly or through any chain of local and scalar-field assignments
    (including byte copies into other relevant buffers).

    The ES-Checker replays content only for relevant buffers; for the rest
    it validates bounds and skips the byte traffic, which is what keeps
    its overhead low on bulk-data paths. *)

val relevant_buffers : Devir.Program.t -> string list
(** Buffers whose contents must be tracked, in no particular order. *)
