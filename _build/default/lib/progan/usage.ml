open Devir

type fact = {
  field : Layout.field;
  influences_branches : Program.bref list;
  indexes_buffers : string list;
  is_called : bool;
  is_indexed_buffer : bool;
}

type t = {
  by_name : (string, fact) Hashtbl.t;
  order : string list;
  sites : (Program.bref * Expr.t) list;
  site_fields : (Program.bref, string list) Hashtbl.t;
}

let analyze program =
  let layout = Program.layout program in
  let influences : (string, Program.bref list) Hashtbl.t = Hashtbl.create 32 in
  let indexes : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let called : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let indexed_buf : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let sites = ref [] in
  let site_fields = Hashtbl.create 32 in
  let add_multi tbl key v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    if not (List.mem v cur) then Hashtbl.replace tbl key (cur @ [ v ])
  in
  List.iter
    (fun (h : Program.handler) ->
      let du = Defuse.analyze h in
      let record_index_expr buf e =
        (match e with
        | Expr.Const _ -> ()
        | _ -> Hashtbl.replace indexed_buf buf ());
        List.iter
          (fun field -> add_multi indexes field buf)
          (Defuse.influencing_fields du e)
      in
      List.iter
        (fun (b : Block.t) ->
          let bref : Program.bref = { handler = h.hname; label = b.label } in
          (* Branch decision expressions. *)
          (match b.term with
          | Term.Branch (e, _, _) | Term.Switch (e, _, _) ->
            sites := (bref, e) :: !sites;
            let fields = Defuse.influencing_fields du e in
            Hashtbl.replace site_fields bref fields;
            List.iter (fun f -> add_multi influences f bref) fields
          | Term.Icall (e, _) ->
            sites := (bref, e) :: !sites;
            let fields = Defuse.influencing_fields du e in
            Hashtbl.replace site_fields bref fields;
            List.iter (fun f -> add_multi influences f bref) fields;
            List.iter
              (fun f ->
                match (Layout.find layout f).kind with
                | Layout.Fn_ptr -> Hashtbl.replace called f ()
                | _ -> ())
              fields
          | Term.Goto _ | Term.Halt -> ());
          (* Buffer index / offset / length positions, in statements and in
             buffer reads inside expressions. *)
          let rec scan_expr e =
            match e with
            | Expr.Buf_byte (buf, idx) ->
              record_index_expr buf idx;
              scan_expr idx
            | Expr.Binop (_, _, a, b2) | Expr.Cmp (_, a, b2) ->
              scan_expr a;
              scan_expr b2
            | Expr.Not a -> scan_expr a
            | Expr.Const _ | Expr.Field _ | Expr.Buf_len _ | Expr.Param _
            | Expr.Local _ ->
              ()
          in
          List.iter
            (fun stmt ->
              (match stmt with
              | Stmt.Set_buf (buf, idx, _) -> record_index_expr buf idx
              | Stmt.Buf_fill (buf, off, len, _) ->
                record_index_expr buf off;
                record_index_expr buf len
              | Stmt.Copy_from_guest { buf; buf_off; len; _ }
              | Stmt.Copy_to_guest { buf; buf_off; len; _ } ->
                record_index_expr buf buf_off;
                record_index_expr buf len
              | _ -> ());
              List.iter scan_expr
                (match stmt with
                | Stmt.Set_field (_, e) | Stmt.Set_local (_, e) | Stmt.Respond e
                  ->
                  [ e ]
                | Stmt.Set_buf (_, i, v) -> [ i; v ]
                | Stmt.Buf_fill (_, o, l, v) -> [ o; l; v ]
                | Stmt.Copy_from_guest { buf_off; addr; len; _ }
                | Stmt.Copy_to_guest { buf_off; addr; len; _ } ->
                  [ buf_off; addr; len ]
                | Stmt.Read_guest { addr; _ } -> [ addr ]
                | Stmt.Write_guest { addr; value; _ } -> [ addr; value ]
                | Stmt.Host_value _ | Stmt.Note _ -> []))
            b.stmts;
          List.iter scan_expr (Term.exprs b.term))
        h.blocks)
    (Program.handlers program);
  let by_name = Hashtbl.create 32 in
  let order = List.map (fun (f : Layout.field) -> f.name) (Layout.fields layout) in
  List.iter
    (fun (f : Layout.field) ->
      Hashtbl.replace by_name f.name
        {
          field = f;
          influences_branches =
            Option.value ~default:[] (Hashtbl.find_opt influences f.name);
          indexes_buffers =
            Option.value ~default:[] (Hashtbl.find_opt indexes f.name);
          is_called = Hashtbl.mem called f.name;
          is_indexed_buffer = Hashtbl.mem indexed_buf f.name;
        })
    (Layout.fields layout);
  { by_name; order; sites = List.rev !sites; site_fields }

let fact t name =
  match Hashtbl.find_opt t.by_name name with
  | Some f -> f
  | None -> raise Not_found

let facts t = List.map (fact t) t.order

let branch_sites t = t.sites

let fields_influencing t bref =
  Option.value ~default:[] (Hashtbl.find_opt t.site_fields bref)
