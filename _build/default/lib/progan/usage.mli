(** Whole-program usage facts about control-structure fields.

    These facts feed SEDSpec's two device-state-parameter selection rules:
    Rule 1 keeps fields mirroring physical device registers (a layout
    attribute), Rule 2 keeps buffers, the fields that index or bound
    buffers, and function pointers that are actually called.  Index and
    length positions are traced through local definitions with
    {!Defuse.influencing_fields}, so [buf[pos]] still attributes [pos]'s
    source field when the device wrote [tmp = s.pos + 1; buf[tmp] = x]. *)

type fact = {
  field : Devir.Layout.field;
  influences_branches : Devir.Program.bref list;
      (** Conditional/switch/icall blocks whose decision the field reaches. *)
  indexes_buffers : string list;
      (** Buffers whose index, offset or length expressions the field
          reaches. *)
  is_called : bool;  (** Function pointer used by some [Icall]. *)
  is_indexed_buffer : bool;
      (** Buffer accessed with a non-constant index somewhere. *)
}

type t

val analyze : Devir.Program.t -> t

val fact : t -> string -> fact
(** Raises [Not_found] for unknown fields. *)

val facts : t -> fact list
(** In layout order. *)

val branch_sites : t -> (Devir.Program.bref * Devir.Expr.t) list
(** All conditional/switch/icall sites of the program with their decision
    expressions. *)

val fields_influencing :
  t -> Devir.Program.bref -> string list
(** Fields reaching the decision of one branch site ([[]] for unknown
    sites). *)
