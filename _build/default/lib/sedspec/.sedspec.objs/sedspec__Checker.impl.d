lib/sedspec/checker.ml: Arena Block Bytes Devir Es_cfg Expr Format Hashtbl Int64 Interp Layout List Printf Program Queue Selection Stmt Term Vmm Width
