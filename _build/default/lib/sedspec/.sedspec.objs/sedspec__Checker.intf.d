lib/sedspec/checker.mli: Devir Es_cfg Format Interp Vmm
