lib/sedspec/datadep.ml: Block Devir Es_cfg Expr Format Hashtbl List Program Stmt Term
