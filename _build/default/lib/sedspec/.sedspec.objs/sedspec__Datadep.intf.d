lib/sedspec/datadep.mli: Devir Es_cfg Format
