lib/sedspec/ds_log.ml: Devir Interp List Vmm
