lib/sedspec/ds_log.mli: Devir Interp Vmm
