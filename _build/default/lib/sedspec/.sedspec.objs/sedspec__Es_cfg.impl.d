lib/sedspec/es_cfg.ml: Block Devir Ds_log Format Hashtbl Int64 Interp List Program Selection Stmt Term
