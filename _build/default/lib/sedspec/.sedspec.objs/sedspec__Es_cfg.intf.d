lib/sedspec/es_cfg.mli: Devir Ds_log Format Selection
