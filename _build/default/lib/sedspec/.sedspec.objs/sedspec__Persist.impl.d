lib/sedspec/persist.ml: Buffer Devir Es_cfg Hashtbl Int64 List Printf Program Selection String
