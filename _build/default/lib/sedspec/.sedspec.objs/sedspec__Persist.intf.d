lib/sedspec/persist.mli: Devir Es_cfg
