lib/sedspec/pipeline.ml: Checker Datadep Devir Ds_log Es_cfg Format Interp Iptrace List Progan Selection Vmm
