lib/sedspec/pipeline.mli: Checker Datadep Devir Ds_log Es_cfg Format Iptrace Progan Selection Vmm
