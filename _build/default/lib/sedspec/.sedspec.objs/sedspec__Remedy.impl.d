lib/sedspec/remedy.ml: Bytes Checker Devir Format Interp List Vmm
