lib/sedspec/remedy.mli: Checker Format Vmm
