lib/sedspec/selection.ml: Block Devir Expr Format Hashtbl Layout List Option Progan Program Stmt String Term
