lib/sedspec/selection.mli: Devir Format Progan
