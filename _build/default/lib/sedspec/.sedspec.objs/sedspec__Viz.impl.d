lib/sedspec/viz.ml: Block Buffer Devir Es_cfg List Printf Program String Term
