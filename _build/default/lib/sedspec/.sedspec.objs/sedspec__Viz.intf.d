lib/sedspec/viz.mli: Es_cfg
