open Devir

type classification = Substituted | Guest_replay | Sync_point

type report = {
  per_site : (Program.bref * classification) list;
  substituted : int;
  guest_replay : int;
  sync_points : int;
}

(* Classify the locals a decision expression depends on by chasing their
   definitions across the whole handler (flow-insensitive, like the
   paper's angr pass): a host-value definition anywhere in the chain makes
   the site a sync point; a guest read makes it guest-replay. *)
let classify_site program (bref : Program.bref) expr =
  let handler = Program.find_handler program bref.handler in
  let deps = Hashtbl.create 8 in
  let uses_host = ref false and uses_guest = ref false in
  let rec chase local =
    if not (Hashtbl.mem deps local) then begin
      Hashtbl.add deps local ();
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (stmt : Stmt.t) ->
              match stmt with
              | Stmt.Set_local (n, e) when n = local ->
                List.iter chase (Expr.locals e)
              | Stmt.Read_guest { local = n; _ } when n = local ->
                uses_guest := true
              | Stmt.Host_value { local = n; _ } when n = local ->
                uses_host := true
              | _ -> ())
            b.stmts)
        handler.blocks
    end
  in
  List.iter chase (Expr.locals expr);
  if !uses_host then Sync_point
  else if !uses_guest then Guest_replay
  else Substituted

let analyze spec =
  let program = Es_cfg.program spec in
  let per_site =
    List.filter_map
      (fun (n : Es_cfg.node) ->
        match Term.exprs n.term with
        | [] -> None
        | e :: _ -> Some (n.bref, classify_site program n.bref e))
      (Es_cfg.nodes spec)
  in
  let count c = List.length (List.filter (fun (_, x) -> x = c) per_site) in
  {
    per_site;
    substituted = count Substituted;
    guest_replay = count Guest_replay;
    sync_points = count Sync_point;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "data dependencies: %d substituted, %d guest-replay, %d sync points"
    r.substituted r.guest_replay r.sync_points
