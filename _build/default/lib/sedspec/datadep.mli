(** Data dependency recovery (paper §V-D).

    Control-flow transitions can depend on variables other than the device
    state parameters.  For each NBTD of the specification this module
    classifies how the ES-Checker obtains the decision's inputs:

    - [Substituted] — the decision is computable from device state and
      request parameters alone (the paper rewrites the NBTD with the
      recovered expression; our checker replays the lifted definitions,
      which is the same computation);
    - [Guest_replay] — the decision additionally needs guest-memory values;
      the checker re-reads guest memory (part of the I/O data);
    - [Sync_point] — the decision depends on host-side values the checker
      cannot see; a sync point is inserted and the check for that
      interaction runs after the device, with the synchronised values. *)

type classification = Substituted | Guest_replay | Sync_point

type report = {
  per_site : (Devir.Program.bref * classification) list;
  substituted : int;
  guest_replay : int;
  sync_points : int;
}

val analyze : Es_cfg.t -> report

val pp_report : Format.formatter -> report -> unit
