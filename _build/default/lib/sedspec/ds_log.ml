type interaction = {
  handler : string;
  params : (string * int64) list;
  entries : Interp.Event.observe_entry list;
}

type log = interaction list

type t = log list

let observation_points program =
  let points = ref [] in
  Devir.Program.iter_blocks program (fun bref block ->
      let keep =
        match block.Devir.Block.kind with
        | Devir.Block.Entry | Devir.Block.Exit | Devir.Block.Cmd_decision
        | Devir.Block.Cmd_end ->
          true
        | Devir.Block.Normal -> (
          match block.Devir.Block.term with
          | Devir.Term.Branch _ | Devir.Term.Switch _ | Devir.Term.Icall _ -> true
          | Devir.Term.Goto _ | Devir.Term.Halt -> false)
      in
      if keep then points := bref :: !points);
  List.rev !points

module Collector = struct
  type collector = {
    machine : Vmm.Machine.t;
    device : string;
    interp : Interp.t;
    saved_hooks : Interp.hooks;
    mutable current : (string * (string * int64) list) option;
        (** Handler/params of the in-flight interaction. *)
    mutable current_entries : Interp.Event.observe_entry list;  (* reversed *)
    mutable current_case : interaction list;  (* reversed *)
    mutable cases : log list;  (* reversed *)
  }

  let close_interaction t =
    match t.current with
    | None -> ()
    | Some (handler, params) ->
      t.current_case <-
        { handler; params; entries = List.rev t.current_entries }
        :: t.current_case;
      t.current <- None;
      t.current_entries <- []

  let attach machine ~device ~points ~state_params =
    let interp = Vmm.Machine.interp_of machine device in
    let saved_hooks = Interp.hooks interp in
    let t =
      {
        machine;
        device;
        interp;
        saved_hooks;
        current = None;
        current_entries = [];
        current_case = [];
        cases = [];
      }
    in
    Interp.set_observation interp ~points ~state_params;
    Interp.set_hooks interp
      {
        saved_hooks with
        Interp.on_observe =
          (fun e ->
            t.current_entries <- e :: t.current_entries;
            saved_hooks.Interp.on_observe e);
      };
    Vmm.Machine.set_interposer machine device
      {
        Vmm.Machine.before =
          (fun req ->
            close_interaction t;
            t.current <- Some (req.Vmm.Machine.handler, req.Vmm.Machine.params);
            Vmm.Machine.Allow);
        after =
          (fun _ _ ->
            close_interaction t;
            Vmm.Machine.Allow);
      };
    t

  let flush_case t =
    close_interaction t;
    if t.current_case <> [] then begin
      t.cases <- List.rev t.current_case :: t.cases;
      t.current_case <- []
    end

  let begin_case t = flush_case t

  let logs t =
    close_interaction t;
    let completed = List.rev t.cases in
    if t.current_case = [] then completed
    else completed @ [ List.rev t.current_case ]

  let detach t =
    flush_case t;
    Interp.clear_observation t.interp;
    Interp.set_hooks t.interp t.saved_hooks;
    Vmm.Machine.clear_interposer t.machine t.device
end

let interaction_count t = List.fold_left (fun acc l -> acc + List.length l) 0 t

let entry_count t =
  List.fold_left
    (fun acc l ->
      List.fold_left (fun acc i -> acc + List.length i.entries) acc l)
    0 t
