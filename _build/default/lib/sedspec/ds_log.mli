(** Device state change logs (paper §IV, phase 1 output).

    A log records one benign test case: the sequence of I/O interactions it
    performed, each carrying the observation-point entries the instrumented
    device emitted (block identity and kind, the selected state parameters'
    values after the block, the branch outcome, and — for command decision
    blocks — the decoded command).  Algorithm 1 consumes a set of such
    logs. *)

type interaction = {
  handler : string;
  params : (string * int64) list;
  entries : Interp.Event.observe_entry list;
}

type log = interaction list

type t = log list

(** Collector: instruments a device with observation points and groups the
    resulting entries per interaction and per test case.  Interaction
    boundaries come from the machine's dispatch (the collector occupies the
    device's interposer slot while attached — training happens before any
    checker is installed). *)

module Collector : sig
  type collector

  val attach :
    Vmm.Machine.t ->
    device:string ->
    points:Devir.Program.bref list ->
    state_params:string list ->
    collector

  val begin_case : collector -> unit
  (** Start a new test case (a new log). *)

  val logs : collector -> t
  (** All logs, oldest first (includes the in-progress case). *)

  val detach : collector -> unit
  (** Remove observation points, the observe hook and the interposer. *)
end

val observation_points : Devir.Program.t -> Devir.Program.bref list
(** Where SEDSpec places observation points: entry, exit, command decision
    and command end blocks, plus every block ending in a conditional
    branch, switch or indirect call — the control-flow joints from which
    the full path can be restored statically. *)

val interaction_count : t -> int
val entry_count : t -> int
