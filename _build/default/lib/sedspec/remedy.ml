type severity = Critical | High | Medium

let severity_of (a : Checker.anomaly) =
  let base =
    match a.strategy with
    | Checker.Parameter_check -> Critical
    | Checker.Indirect_jump_check -> High
    | Checker.Conditional_jump_check -> Medium
  in
  if a.pre_execution then base
  else
    (* Damage may already have happened: promote. *)
    match base with Medium -> High | High | Critical -> Critical

let severity_to_string = function
  | Critical -> "critical"
  | High -> "high"
  | Medium -> "medium"

type policy = Halt_vm | Rollback | Resume_with_warning

type event = {
  anomaly : Checker.anomaly;
  severity : severity;
  action : policy;
}

type snapshot = {
  arena_bytes : bytes;
  ram_bytes : bytes;
}

type t = {
  machine : Vmm.Machine.t;
  device : string;
  checker : Checker.t;
  policy_of : severity -> policy;
  mutable saved : snapshot;
  mutable events_rev : event list;
  mutable rollbacks : int;
}

let take_snapshot t =
  {
    arena_bytes =
      Devir.Arena.snapshot (Interp.arena (Vmm.Machine.interp_of t.machine t.device));
    ram_bytes = Vmm.Guest_mem.snapshot (Vmm.Machine.ram t.machine);
  }

let create ?(policy_of = fun _ -> Rollback) machine ~device checker =
  let t =
    {
      machine;
      device;
      checker;
      policy_of;
      saved = { arena_bytes = Bytes.empty; ram_bytes = Bytes.empty };
      events_rev = [];
      rollbacks = 0;
    }
  in
  t.saved <- take_snapshot t;
  t

let checkpoint t =
  if Vmm.Machine.halted t.machine then
    invalid_arg "Remedy.checkpoint: machine is halted";
  t.saved <- take_snapshot t

let apply_rollback t =
  Devir.Arena.restore
    (Interp.arena (Vmm.Machine.interp_of t.machine t.device))
    t.saved.arena_bytes;
  Vmm.Guest_mem.restore (Vmm.Machine.ram t.machine) t.saved.ram_bytes;
  Vmm.Machine.resume t.machine;
  Checker.resync t.checker;
  t.rollbacks <- t.rollbacks + 1

let tick t =
  if not (Vmm.Machine.halted t.machine) then begin
    (* Clean point: advance the rollback target. *)
    ignore (Checker.drain_anomalies t.checker);
    Vmm.Machine.clear_warnings t.machine;
    t.saved <- take_snapshot t;
    []
  end
  else begin
    let anomalies = Checker.drain_anomalies t.checker in
    let events =
      List.map
        (fun anomaly ->
          let severity = severity_of anomaly in
          { anomaly; severity; action = t.policy_of severity })
        anomalies
    in
    (* The strongest requested action wins: Halt > Rollback > Resume. *)
    let decided =
      List.fold_left
        (fun acc e ->
          match (acc, e.action) with
          | Halt_vm, _ | _, Halt_vm -> Halt_vm
          | Rollback, _ | _, Rollback -> Rollback
          | Resume_with_warning, Resume_with_warning -> Resume_with_warning)
        Resume_with_warning events
    in
    (match decided with
    | Halt_vm -> ()
    | Rollback -> apply_rollback t
    | Resume_with_warning ->
      Vmm.Machine.resume t.machine;
      Checker.resync t.checker);
    t.events_rev <- List.rev_append events t.events_rev;
    events
  end

let events t = List.rev t.events_rev
let rollbacks t = t.rollbacks

let pp_event ppf e =
  Format.fprintf ppf "[%s -> %s] %a"
    (severity_to_string e.severity)
    (match e.action with
    | Halt_vm -> "halt"
    | Rollback -> "rollback"
    | Resume_with_warning -> "resume")
    Checker.pp_anomaly e.anomaly
