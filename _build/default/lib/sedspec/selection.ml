open Devir

type rule =
  | Rule1_hw_register
  | Rule2_buffer
  | Rule2_index
  | Rule2_fn_ptr
  | Branch_influencer
  | Dependency

let rule_to_string = function
  | Rule1_hw_register -> "rule1:hw-register"
  | Rule2_buffer -> "rule2:buffer"
  | Rule2_index -> "rule2:index"
  | Rule2_fn_ptr -> "rule2:fn-ptr"
  | Branch_influencer -> "branch-influencer"
  | Dependency -> "dependency"

type t = {
  scalars : string list;
  buffers : (string * int) list;
  fn_ptrs : string list;
  index_params : string list;
  tracked_buffers : string list;
  rationale : (string * rule list) list;
}

let select program usage ~observed =
  let layout = Program.layout program in
  let tags : (string, rule list) Hashtbl.t = Hashtbl.create 32 in
  let tag name rule =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tags name) in
    if not (List.mem rule cur) then Hashtbl.replace tags name (cur @ [ rule ])
  in
  List.iter
    (fun (fact : Progan.Usage.fact) ->
      let name = fact.field.name in
      let observed_influence =
        List.exists (fun b -> List.mem b observed) fact.influences_branches
      in
      if observed_influence then tag name Branch_influencer;
      (match fact.field.kind with
      | Layout.Buf _ -> if fact.is_indexed_buffer then tag name Rule2_buffer
      | Layout.Reg _ ->
        if fact.field.hw_register then tag name Rule1_hw_register;
        if fact.indexes_buffers <> [] then tag name Rule2_index
      | Layout.Fn_ptr -> if fact.is_called then tag name Rule2_fn_ptr))
    (Progan.Usage.facts usage);
  (* Dependency closure: scalar fields read by statements that write a
     selected field, or read by the decision expression of an observed
     branch site, are needed to replay DSOD — pull them in. *)
  let is_selected name = Hashtbl.mem tags name in
  let scalar_kind name =
    match (Layout.find layout name).kind with
    | Layout.Reg _ | Layout.Fn_ptr -> true
    | Layout.Buf _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Program.iter_blocks program (fun bref block ->
        let pull name =
          if scalar_kind name && not (is_selected name) then begin
            tag name Dependency;
            changed := true
          end
        in
        List.iter
          (fun stmt ->
            let writes_selected =
              List.exists is_selected (Stmt.fields_written stmt)
            in
            if writes_selected then List.iter pull (Stmt.fields_read stmt))
          block.Block.stmts;
        if List.mem bref observed then
          List.iter
            (fun e -> List.iter pull (Expr.fields e))
            (Term.exprs block.Block.term))
  done;
  let in_layout_order f =
    List.filter_map f (Layout.fields layout)
  in
  let scalars =
    in_layout_order (fun (f : Layout.field) ->
        match f.kind with
        | (Layout.Reg _ | Layout.Fn_ptr) when is_selected f.name -> Some f.name
        | _ -> None)
  in
  let buffers =
    in_layout_order (fun (f : Layout.field) ->
        match f.kind with
        | Layout.Buf n when is_selected f.name -> Some (f.name, n)
        | _ -> None)
  in
  let fn_ptrs =
    in_layout_order (fun (f : Layout.field) ->
        match f.kind with
        | Layout.Fn_ptr when is_selected f.name -> Some f.name
        | _ -> None)
  in
  let index_params =
    List.filter
      (fun name ->
        List.mem Rule2_index (Option.value ~default:[] (Hashtbl.find_opt tags name)))
      scalars
  in
  let rationale =
    List.filter_map
      (fun (f : Layout.field) ->
        Option.map (fun rules -> (f.name, rules)) (Hashtbl.find_opt tags f.name))
      (Layout.fields layout)
  in
  {
    scalars;
    buffers;
    fn_ptrs;
    index_params;
    tracked_buffers = Progan.Relevance.relevant_buffers program;
    rationale;
  }

let select_static program =
  let usage = Progan.Usage.analyze program in
  let observed = List.map fst (Progan.Usage.branch_sites usage) in
  select program usage ~observed

let is_scalar_param t name = List.mem name t.scalars
let is_buffer_param t name = List.exists (fun (b, _) -> b = name) t.buffers

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, rules) ->
      Format.fprintf ppf "%-16s %s@," name
        (String.concat ", " (List.map rule_to_string rules)))
    t.rationale;
  Format.fprintf ppf "@]"
