(** Device state parameter selection (paper §IV-B).

    The CFG analyzer walks the ITC-CFG recovered from benign traces,
    extracts the variables that influence the conditional and indirect
    jumps actually observed, and filters/extends them by the two rules:

    - {b Rule 1}: variables mirroring physical device registers (the
      [hw_register] layout attribute);
    - {b Rule 2}: fixed-length buffers, the variables counting/indexing
      buffer positions, and function pointers that are called.

    A dependency closure then pulls in scalar fields read by statements
    that compute selected parameters, so the ES-Checker can replay every
    device-state operation without consulting the live device.  Buffers
    are selected by name and size only — their contents are never logged
    (the paper's data-volume rule). *)

type rule =
  | Rule1_hw_register
  | Rule2_buffer
  | Rule2_index  (** Counts or indexes buffer positions. *)
  | Rule2_fn_ptr
  | Branch_influencer
  | Dependency  (** Pulled in by the dependency closure. *)

type t = {
  scalars : string list;  (** Scalar parameters, layout order. *)
  buffers : (string * int) list;  (** Buffer parameters with sizes. *)
  fn_ptrs : string list;  (** Function-pointer parameters. *)
  index_params : string list;
      (** Scalars tagged Rule2_index — the parameter check's buffer-bound
          scope. *)
  tracked_buffers : string list;
      (** Buffers whose contents decide control flow (see
          {!Progan.Relevance}); the checker replays bytes only for
          these. *)
  rationale : (string * rule list) list;
}

val select :
  Devir.Program.t -> Progan.Usage.t -> observed:Devir.Program.bref list -> t
(** [select program usage ~observed] computes the selection given the
    branch sites observed in the ITC-CFG. *)

val select_static : Devir.Program.t -> t
(** Selection treating every static branch site as observed (used by tests
    and by the ablation that skips the tracing phase). *)

val is_scalar_param : t -> string -> bool
val is_buffer_param : t -> string -> bool

val pp : Format.formatter -> t -> unit
