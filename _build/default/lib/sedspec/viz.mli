(** Graphviz rendering of execution specifications.

    Produces a dot graph of the ES-CFG: nodes carry block kind, visit
    counts and sync markers; edges are the observed transitions, with
    one-sided conditionals highlighted (those are the conditional jump
    check's tripwires).  Useful for reviewing what a device's
    specification actually learned. *)

val to_dot : Es_cfg.t -> string

val save_dot : Es_cfg.t -> string -> unit
(** [save_dot spec path] writes the dot file. *)
