lib/util/prng.ml: Array Bytes Char Int64 List
