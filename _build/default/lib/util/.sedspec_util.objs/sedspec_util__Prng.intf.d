lib/util/prng.mli:
