lib/util/table.mli:
