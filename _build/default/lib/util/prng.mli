(** Deterministic pseudo-random number generation.

    All randomized workloads in this repository draw from this splitmix64
    generator so that every experiment is reproducible from its seed.  The
    generator is the public-domain splitmix64 of Steele, Lea and Flood, which
    has a 64-bit state, passes BigCrush, and is cheap enough to sit inside
    the I/O request generators without showing up in benchmarks. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Distinct seeds give
    statistically independent streams. *)

val copy : t -> t
(** [copy t] duplicates the state so two consumers can replay the same
    stream. *)

val next : t -> int64
(** [next t] returns the next raw 64-bit output and advances the state. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in \[0, bound).  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in \[lo, hi\] inclusive. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val chance : t -> float -> bool
(** [chance t p] returns [true] with probability [p]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in \[0, bound). *)

val pick : t -> 'a array -> 'a
(** [pick t arr] returns a uniform element of [arr].  [arr] must be
    non-empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] returns a uniform element of [l].  [l] must be
    non-empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)

val bytes : t -> int -> bytes
(** [bytes t n] returns [n] uniform random bytes. *)

val split : t -> t
(** [split t] derives an independent child generator, advancing [t]. *)
