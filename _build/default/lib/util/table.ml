type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let align_of i =
    match List.nth_opt align i with Some a -> a | None -> Left
  in
  let line c =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) c) widths)
    ^ "+\n"
  in
  let render_row row =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun i cell ->
             " " ^ pad (align_of i) (List.nth widths i) cell ^ " ")
           row)
    ^ "|\n"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_string buf (render_row header);
  Buffer.add_string buf (line '=');
  List.iter (fun r -> Buffer.add_string buf (render_row r)) rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let fmt_pct x = Printf.sprintf "%.2f%%" (x *. 100.0)

let fmt_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x
