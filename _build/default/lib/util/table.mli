(** Plain-text table rendering for benchmark and experiment reports.

    The bench harness prints the same rows the paper's tables report; this
    module renders them with aligned columns so the output is directly
    comparable to the paper. *)

type align = Left | Right | Center

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out [rows] under [header] with box-drawing
    separators.  [align] gives per-column alignment (default all [Left]);
    missing entries default to [Left].  Rows shorter than the header are
    padded with empty cells. *)

val print :
  ?align:align list ->
  header:string list ->
  string list list ->
  unit
(** [print] is [render] followed by [print_string]. *)

val fmt_pct : float -> string
(** [fmt_pct x] formats a ratio [x] as a percentage with two decimals,
    e.g. [fmt_pct 0.0014 = "0.14%"]. *)

val fmt_float : ?digits:int -> float -> string
(** [fmt_float x] formats [x] with [digits] decimals (default 2). *)
