lib/vmm/guest_mem.ml: Bytes Char Devir Int64 Interp
