lib/vmm/guest_mem.mli: Devir Interp
