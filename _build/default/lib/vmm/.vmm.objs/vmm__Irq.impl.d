lib/vmm/irq.ml: Hashtbl
