lib/vmm/irq.mli:
