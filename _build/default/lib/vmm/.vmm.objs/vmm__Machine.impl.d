lib/vmm/machine.ml: Devir Guest_mem Hashtbl Int64 Interp Irq List Option Printf
