lib/vmm/machine.mli: Devir Guest_mem Interp Irq
