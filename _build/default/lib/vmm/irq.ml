type line = { mutable raised : bool; mutable count : int }

type t = { lines : (string, line) Hashtbl.t }

let create () = { lines = Hashtbl.create 8 }

let get t name =
  match Hashtbl.find_opt t.lines name with
  | Some l -> l
  | None ->
    let l = { raised = false; count = 0 } in
    Hashtbl.add t.lines name l;
    l

let register t name = ignore (get t name)

let raise_line t name =
  let l = get t name in
  if not l.raised then l.count <- l.count + 1;
  l.raised <- true

let lower_line t name = (get t name).raised <- false

let is_raised t name = (get t name).raised
let raise_count t name = (get t name).count

let clear_counts t =
  Hashtbl.iter (fun _ l -> l.count <- 0) t.lines
