(** Interrupt controller.

    One line per attached device; experiments read the per-line raise
    counts to assert that emulated devices still signal the guest while
    SEDSpec protection is active, and the workload drivers poll line state
    the way a guest interrupt handler would. *)

type t

val create : unit -> t

val register : t -> string -> unit
(** Register a line (idempotent). *)

val raise_line : t -> string -> unit
val lower_line : t -> string -> unit

val is_raised : t -> string -> bool
val raise_count : t -> string -> int
(** Total number of raise edges seen on the line. *)

val clear_counts : t -> unit
