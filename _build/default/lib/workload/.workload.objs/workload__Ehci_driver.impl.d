lib/workload/ehci_driver.ml: Bytes Char Devices Devir Int64 Io Vmm
