lib/workload/ehci_driver.mli: Io Vmm
