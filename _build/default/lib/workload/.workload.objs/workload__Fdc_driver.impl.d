lib/workload/fdc_driver.ml: Array Bytes Char Devices Int64 Io Vmm
