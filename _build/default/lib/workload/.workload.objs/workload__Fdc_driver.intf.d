lib/workload/fdc_driver.mli: Io Vmm
