lib/workload/io.ml: Int64 Interp Vmm
