lib/workload/io.mli: Interp Vmm
