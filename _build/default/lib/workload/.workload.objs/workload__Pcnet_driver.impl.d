lib/workload/pcnet_driver.ml: Bytes Devices Devir Int64 Io List Vmm
