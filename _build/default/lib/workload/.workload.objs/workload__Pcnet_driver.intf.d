lib/workload/pcnet_driver.mli: Io Vmm
