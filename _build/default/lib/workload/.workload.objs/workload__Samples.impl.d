lib/workload/samples.ml: Array Bytes Char Devices Ehci_driver Fdc_driver Int64 List Pcnet_driver Scsi_driver Sdhci_driver Sedspec Sedspec_util Vmm
