lib/workload/samples.mli: Devices Sedspec Sedspec_util Vmm
