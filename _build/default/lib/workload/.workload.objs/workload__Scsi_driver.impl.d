lib/workload/scsi_driver.ml: Bytes Char Devices Devir Int64 Io List Vmm
