lib/workload/scsi_driver.mli: Io Vmm
