lib/workload/sdhci_driver.ml: Bytes Char Devices Int64 Io Vmm
