lib/workload/sdhci_driver.mli: Io Vmm
