type t = { m : Vmm.Machine.t }

let qtd_addr = 0x5000L
let dbuf = 0x6000L

let reg off = Int64.add Devices.Ehci.mmio_base (Int64.of_int off)

let create m = { m }

let ram t = Vmm.Machine.ram t.m

let reset_port t = Io.mmio_w32 t.m (reg 0x44) 0x100L

let submit t ~pid ~len ~buf =
  let token = Int64.of_int ((len lsl 16) lor (pid lsl 8)) in
  Vmm.Guest_mem.write (ram t) qtd_addr Devir.Width.W32 token;
  Vmm.Guest_mem.write (ram t) (Int64.add qtd_addr 4L) Devir.Width.W32 buf;
  match Io.mmio_w32 t.m (reg 0x18) qtd_addr with
  | Io.R_ok _ -> Io.mmio_w32 t.m (reg 0x00) 0x21L
  | r -> r

let control_setup t ~bm ~req ~value ~index ~length =
  let pkt = Bytes.create 8 in
  Bytes.set pkt 0 (Char.chr (bm land 0xFF));
  Bytes.set pkt 1 (Char.chr (req land 0xFF));
  Bytes.set pkt 2 (Char.chr (value land 0xFF));
  Bytes.set pkt 3 (Char.chr ((value lsr 8) land 0xFF));
  Bytes.set pkt 4 (Char.chr (index land 0xFF));
  Bytes.set pkt 5 (Char.chr ((index lsr 8) land 0xFF));
  Bytes.set pkt 6 (Char.chr (length land 0xFF));
  Bytes.set pkt 7 (Char.chr ((length lsr 8) land 0xFF));
  Vmm.Guest_mem.blit_in (ram t) dbuf pkt;
  submit t ~pid:Devices.Ehci.pid_setup ~len:8 ~buf:dbuf

let get_descriptor t ~dtype ~length =
  if
    Io.ok (control_setup t ~bm:0x80 ~req:6 ~value:(dtype lsl 8) ~index:0 ~length)
    && Io.ok (submit t ~pid:Devices.Ehci.pid_in ~len:length ~buf:dbuf)
  then Some (Vmm.Guest_mem.blit_out (ram t) dbuf length)
  else None

let set_address t addr =
  Io.ok (control_setup t ~bm:0x00 ~req:5 ~value:addr ~index:0 ~length:0)
  && Io.ok (submit t ~pid:Devices.Ehci.pid_in ~len:0 ~buf:dbuf)

let set_configuration t cfg =
  Io.ok (control_setup t ~bm:0x00 ~req:9 ~value:cfg ~index:0 ~length:0)
  && Io.ok (submit t ~pid:Devices.Ehci.pid_in ~len:0 ~buf:dbuf)

let get_status t =
  if
    Io.ok (control_setup t ~bm:0x80 ~req:0 ~value:0 ~index:0 ~length:2)
    && Io.ok (submit t ~pid:Devices.Ehci.pid_in ~len:2 ~buf:dbuf)
  then Some (Vmm.Guest_mem.blit_out (ram t) dbuf 2)
  else None

let control_out t payload =
  let length = Bytes.length payload in
  Io.ok (control_setup t ~bm:0x00 ~req:3 ~value:0 ~index:0 ~length)
  &&
  (Vmm.Guest_mem.blit_in (ram t) dbuf payload;
   Io.ok (submit t ~pid:Devices.Ehci.pid_out ~len:length ~buf:dbuf))

let usbsts t = Io.mmio_r32_v t.m (reg 0x04)
let frindex t = Io.mmio_r32_v t.m (reg 0x0C)
