(** Guest-side EHCI driver: port management and USB control transfers via
    qTDs staged in guest memory. *)

type t

val create : Vmm.Machine.t -> t

val reset_port : t -> Io.result

val submit : t -> pid:int -> len:int -> buf:int64 -> Io.result
(** Stage a qTD and kick the async schedule. *)

val control_setup :
  t -> bm:int -> req:int -> value:int -> index:int -> length:int -> Io.result
(** SETUP token with the 8-byte setup packet staged in guest memory. *)

val get_descriptor : t -> dtype:int -> length:int -> bytes option
(** GET_DESCRIPTOR control transfer: SETUP then one IN qTD of [length]. *)

val set_address : t -> int -> bool
val set_configuration : t -> int -> bool
val get_status : t -> bytes option

val control_out : t -> bytes -> bool
(** A vendor-style OUT data stage: SETUP with wLength = payload size, then
    one OUT qTD carrying the payload. *)

val usbsts : t -> int64
val frindex : t -> int64
