type t = { m : Vmm.Machine.t }

let base = Devices.Fdc.io_base
let port off = Int64.add base (Int64.of_int off)

let create m = { m }

let wr t v = Io.outb t.m (port 5) v
let rd t = Io.inb t.m (port 5)

let rd_v t = match rd t with Io.R_ok (Some v) -> Int64.to_int v | _ -> -1

let msr t = Io.inb_v t.m (port 4)

let reset t =
  match Io.outb t.m (port 2) 0x00 with
  | Io.R_ok _ -> Io.outb t.m (port 2) 0x0C
  | r -> r

(* Issue a command byte followed by parameter bytes; stop on any blocked
   or faulted access. *)
let command t bytes_ =
  let rec go = function
    | [] -> Io.R_ok None
    | b :: rest -> (
      match wr t b with Io.R_ok _ -> go rest | r -> r)
  in
  go bytes_

let drain_result t n =
  let out = Array.make n (-1) in
  let rec go i =
    if i >= n then true
    else
      let v = rd_v t in
      if v < 0 then false
      else begin
        out.(i) <- v;
        go (i + 1)
      end
  in
  if go 0 then Some out else None

let specify t ~srt ~hut = command t [ 0x03; srt land 0xFF; hut land 0xFF ]

let configure t v = command t [ 0x13; 0x00; v land 0xFF; 0x00 ]

let recalibrate t ~drive = command t [ 0x07; drive land 3 ]

let seek t ~drive ~head ~track =
  command t [ 0x0F; (drive land 3) lor ((head land 1) lsl 2); track land 0xFF ]

let sense_interrupt t =
  match command t [ 0x08 ] with
  | Io.R_ok _ -> (
    match drain_result t 2 with
    | Some [| st0; trk |] -> Some (st0, trk)
    | _ -> None)
  | _ -> None

let chs_command op ~drive ~head ~track ~sect =
  [
    op;
    (drive land 3) lor ((head land 1) lsl 2);
    track land 0xFF;
    head land 1;
    sect land 0xFF;
    2;  (* 512-byte sectors *)
    0x12;
    0x1B;
    0xFF;
  ]

let read_sector t ~drive ~head ~track ~sect =
  match command t (chs_command 0x46 ~drive ~head ~track ~sect) with
  | Io.R_ok _ ->
    let buf = Bytes.create Devices.Fdc.fifo_size in
    let rec go i =
      if i >= Devices.Fdc.fifo_size then true
      else
        let v = rd_v t in
        if v < 0 then false
        else begin
          Bytes.set buf i (Char.chr (v land 0xFF));
          go (i + 1)
        end
    in
    if go 0 && drain_result t 7 <> None then Some buf else None
  | _ -> None

let write_sector t ~drive ~head ~track ~sect data =
  assert (Bytes.length data = Devices.Fdc.fifo_size);
  match command t (chs_command 0x45 ~drive ~head ~track ~sect) with
  | Io.R_ok _ ->
    let rec go i =
      if i >= Bytes.length data then true
      else
        match wr t (Char.code (Bytes.get data i)) with
        | Io.R_ok _ -> go (i + 1)
        | _ -> false
    in
    go 0 && drain_result t 7 <> None
  | _ -> false

let read_id t ~drive =
  match command t [ 0x0A; drive land 3 ] with
  | Io.R_ok _ -> drain_result t 7 <> None
  | _ -> false

let version t =
  match command t [ 0x10 ] with
  | Io.R_ok _ -> (
    match drain_result t 1 with Some [| v |] -> Some v | _ -> None)
  | _ -> None

let dumpreg t =
  match command t [ 0x0E ] with
  | Io.R_ok _ -> drain_result t 10 <> None
  | _ -> false

let perpendicular t v =
  match command t [ 0x12; v land 0xFF ] with Io.R_ok _ -> true | _ -> false

let invalid_command t =
  match command t [ 0x1F ] with
  | Io.R_ok _ -> drain_result t 1 <> None
  | _ -> false

let expected_byte ~track ~head ~sect =
  ((track * 7) + (sect * 13) + (head * 3)) land 0xFF
