(** Guest-side floppy driver: the test program of paper §VII driving the
    FDC through its port interface. *)

type t

val create : Vmm.Machine.t -> t

val reset : t -> Io.result
(** Toggle DOR reset. *)

val specify : t -> srt:int -> hut:int -> Io.result
val configure : t -> int -> Io.result
val recalibrate : t -> drive:int -> Io.result
val seek : t -> drive:int -> head:int -> track:int -> Io.result
val sense_interrupt : t -> (int * int) option
(** Returns (st0, track). *)

val read_sector :
  t -> drive:int -> head:int -> track:int -> sect:int -> bytes option
(** Full READ lifecycle: command, 512 data-port reads, 7 result reads.
    [None] when any access is blocked or faults. *)

val write_sector :
  t -> drive:int -> head:int -> track:int -> sect:int -> bytes -> bool
val read_id : t -> drive:int -> bool
val msr : t -> int

(** Rare maintenance commands — excluded from training, occasionally issued
    by the soak workloads (the paper's false-positive source). *)

val version : t -> int option
val dumpreg : t -> bool
val perpendicular : t -> int -> bool
val invalid_command : t -> bool

val expected_byte : track:int -> head:int -> sect:int -> int
(** The deterministic sector pattern served by the device model. *)
