type result =
  | R_ok of int64 option
  | R_blocked of string
  | R_fault of Interp.Event.trap
  | R_halted

let of_io = function
  | Vmm.Machine.Io_ok v -> R_ok v
  | Vmm.Machine.Io_blocked reason -> R_blocked reason
  | Vmm.Machine.Io_fault trap -> R_fault trap
  | Vmm.Machine.Io_no_device -> R_blocked "no device"
  | Vmm.Machine.Io_vm_halted -> R_halted

let outb m port v =
  of_io (Vmm.Machine.io_write m ~port ~size:1 ~data:(Int64.of_int v))

let inb m port = of_io (Vmm.Machine.io_read m ~port ~size:1)

let inb_v m port =
  match inb m port with
  | R_ok (Some v) -> Int64.to_int v
  | _ -> -1

let mmio_w32 m addr v = of_io (Vmm.Machine.mmio_write m ~addr ~size:4 ~data:v)
let mmio_r32 m addr = of_io (Vmm.Machine.mmio_read m ~addr ~size:4)

let mmio_r32_v m addr =
  match mmio_r32 m addr with R_ok (Some v) -> v | _ -> -1L

let ok = function R_ok _ -> true | _ -> false
let blocked = function R_blocked _ | R_halted -> true | _ -> false

let outw m port v =
  of_io (Vmm.Machine.io_write m ~port ~size:2 ~data:(Int64.of_int v))

let inw m port = of_io (Vmm.Machine.io_read m ~port ~size:2)

let inw_v m port =
  match inw m port with
  | R_ok (Some v) -> Int64.to_int v
  | _ -> -1
