(** Small guest-side I/O helpers shared by the device drivers.

    All drivers return {!result} rather than raising: a blocked access
    means the SEDSpec checker halted the VM, which the experiments treat
    as a first-class outcome. *)

type result =
  | R_ok of int64 option
  | R_blocked of string
  | R_fault of Interp.Event.trap
  | R_halted

val of_io : Vmm.Machine.io_result -> result

val outb : Vmm.Machine.t -> int64 -> int -> result
(** Port write, 1 byte. *)

val inb : Vmm.Machine.t -> int64 -> result

val inb_v : Vmm.Machine.t -> int64 -> int
(** Port read returning the byte value; -1 on anything but [R_ok]. *)

val mmio_w32 : Vmm.Machine.t -> int64 -> int64 -> result
val mmio_r32 : Vmm.Machine.t -> int64 -> result
val mmio_r32_v : Vmm.Machine.t -> int64 -> int64
(** MMIO read returning the value; -1L on anything but [R_ok]. *)

val ok : result -> bool
val blocked : result -> bool

val outw : Vmm.Machine.t -> int64 -> int -> result
(** Port write, 2 bytes. *)

val inw : Vmm.Machine.t -> int64 -> result
val inw_v : Vmm.Machine.t -> int64 -> int
