type t = {
  m : Vmm.Machine.t;
  rcvrl : int;
  xmtrl : int;
  mutable rx_head : int;  (** Next RX descriptor the guest will reap. *)
  mutable tx_head : int;  (** Next TX descriptor the guest will fill. *)
}

(* Guest memory map owned by this driver. *)
let ib_addr = 0x1000L
let rx_ring = 0x2000L
let tx_ring = 0x3000L
let rx_bufs = 0x10000L
let tx_bufs = 0x40000L
let pkt_stage = 0x80000L
let rx_buf_size = 2048

let port off = Int64.add Devices.Pcnet.io_base (Int64.of_int off)

let create ?(rcvrl = 8) ?(xmtrl = 8) m =
  { m; rcvrl; xmtrl; rx_head = 0; tx_head = 0 }

let reset t =
  t.rx_head <- 0;
  t.tx_head <- 0;
  Io.outw t.m (port 0x14) 0

let write_csr t n v =
  match Io.outw t.m (port 0x12) n with
  | Io.R_ok _ -> Io.outw t.m (port 0x10) v
  | r -> r

let read_csr t n =
  match Io.outw t.m (port 0x12) n with
  | Io.R_ok _ -> Io.inw_v t.m (port 0x10)
  | _ -> -1

let read_bcr t n =
  match Io.outw t.m (port 0x12) n with
  | Io.R_ok _ -> Io.inw_v t.m (port 0x16)
  | _ -> -1

let ram t = Vmm.Machine.ram t.m

let desc_addr ring i = Int64.add ring (Int64.of_int (i * Devices.Pcnet.desc_size))

let write_desc t ring i ~addr ~status ~bcnt =
  let d = desc_addr ring i in
  Vmm.Guest_mem.write (ram t) d Devir.Width.W32 addr;
  Vmm.Guest_mem.write (ram t) (Int64.add d 4L) Devir.Width.W32 status;
  Vmm.Guest_mem.write (ram t) (Int64.add d 8L) Devir.Width.W32 (Int64.of_int bcnt);
  Vmm.Guest_mem.write (ram t) (Int64.add d 12L) Devir.Width.W32 0L

let read_desc_status t ring i =
  Vmm.Guest_mem.read (ram t) (Int64.add (desc_addr ring i) 4L) Devir.Width.W32

let stock_rx_desc t i =
  write_desc t rx_ring i
    ~addr:(Int64.add rx_bufs (Int64.of_int (i * rx_buf_size)))
    ~status:0x8000_0000L ~bcnt:rx_buf_size

let stock_rx_ring t =
  for i = 0 to t.rcvrl - 1 do
    stock_rx_desc t i
  done

let init t ?(mode = 0) () =
  let g = ram t in
  Vmm.Guest_mem.write g
    (Int64.add ib_addr (Int64.of_int Devices.Pcnet.ib_mode_off))
    Devir.Width.W16 (Int64.of_int mode);
  Vmm.Guest_mem.write g
    (Int64.add ib_addr (Int64.of_int Devices.Pcnet.ib_rdra_off))
    Devir.Width.W32 rx_ring;
  Vmm.Guest_mem.write g
    (Int64.add ib_addr (Int64.of_int Devices.Pcnet.ib_tdra_off))
    Devir.Width.W32 tx_ring;
  Vmm.Guest_mem.write g
    (Int64.add ib_addr (Int64.of_int Devices.Pcnet.ib_rcvrl_off))
    Devir.Width.W32 (Int64.of_int t.rcvrl);
  Vmm.Guest_mem.write g
    (Int64.add ib_addr (Int64.of_int Devices.Pcnet.ib_xmtrl_off))
    Devir.Width.W32 (Int64.of_int t.xmtrl);
  stock_rx_ring t;
  (* Clear the TX ring. *)
  for i = 0 to t.xmtrl - 1 do
    write_desc t tx_ring i ~addr:0L ~status:0L ~bcnt:0
  done;
  Io.ok (write_csr t 1 (Int64.to_int ib_addr land 0xFFFF))
  && Io.ok (write_csr t 2 (Int64.to_int (Int64.shift_right_logical ib_addr 16)))
  && Io.ok (write_csr t 0 0x0001)

let start t = write_csr t 0 0x0042 (* STRT | INEA *)

let transmit t frags =
  let g = ram t in
  let n = List.length frags in
  if n = 0 || n > t.xmtrl then false
  else begin
    let staged = ref true in
    List.iteri
      (fun k frag ->
        let i = (t.tx_head + k) mod t.xmtrl in
        let buf = Int64.add tx_bufs (Int64.of_int (i * 4096)) in
        Vmm.Guest_mem.blit_in g buf frag;
        let enp = if k = n - 1 then 0x0100_0000L else 0L in
        write_desc t tx_ring i ~addr:buf
          ~status:(Int64.logor 0x8000_0000L enp)
          ~bcnt:(Bytes.length frag))
      frags;
    t.tx_head <- (t.tx_head + n) mod t.xmtrl;
    !staged && Io.ok (write_csr t 0 0x0048 (* TDMD | INEA *))
  end

let receive t frame =
  Vmm.Guest_mem.blit_in (ram t) pkt_stage frame;
  Io.of_io
    (Vmm.Machine.inject t.m ~device:Devices.Pcnet.name ~handler:"receive"
       ~params:
         [
           ("size", Int64.of_int (Bytes.length frame)); ("pkt_addr", pkt_stage);
         ])

let rx_frame t =
  let i = t.rx_head in
  let status = read_desc_status t rx_ring i in
  if Int64.logand status 0x8000_0000L <> 0L then None
  else begin
    let len =
      Int64.to_int
        (Vmm.Guest_mem.read (ram t)
           (Int64.add (desc_addr rx_ring i) 12L)
           Devir.Width.W32)
    in
    let buf = Int64.add rx_bufs (Int64.of_int (i * rx_buf_size)) in
    let data = Vmm.Guest_mem.blit_out (ram t) buf (min len rx_buf_size) in
    stock_rx_desc t i;
    t.rx_head <- (t.rx_head + 1) mod t.rcvrl;
    Some (len, data)
  end

let link_up t = read_bcr t 4 <> 0

let csr0 t = read_csr t 0

let ack_interrupts t = ignore (write_csr t 0 (csr0 t land 0x0F00))
