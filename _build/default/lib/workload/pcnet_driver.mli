(** Guest-side PCNet driver: init block staging, descriptor rings, frame
    transmission (single- and multi-fragment) and host-side frame
    injection. *)

type t

val create : ?rcvrl:int -> ?xmtrl:int -> Vmm.Machine.t -> t
(** Ring lengths default to 8 / 8. *)

val reset : t -> Io.result
val write_csr : t -> int -> int -> Io.result
val read_csr : t -> int -> int
val read_bcr : t -> int -> int

val init : t -> ?mode:int -> unit -> bool
(** Stage the init block (mode, ring addresses, ring lengths) in guest
    memory and fire CSR0.INIT.  [mode] bit 2 enables loopback. *)

val start : t -> Io.result
(** CSR0.STRT — enables RX and TX. *)

val stock_rx_ring : t -> unit
(** Give every RX descriptor back to the device (set OWN). *)

val transmit : t -> bytes list -> bool
(** One frame as a list of fragments; only the last descriptor carries
    ENP.  Returns [false] when any access is blocked. *)

val receive : t -> bytes -> Io.result
(** Host-side frame delivery (what iperf traffic arriving from the wire
    looks like). *)

val rx_frame : t -> (int * bytes) option
(** Pop the oldest delivered frame from the RX ring: returns (length,
    data) and restocks the descriptor. *)

val link_up : t -> bool
(** Read BCR4 — backed by a host value, hence a sync point under
    SEDSpec. *)

val csr0 : t -> int
val ack_interrupts : t -> unit
