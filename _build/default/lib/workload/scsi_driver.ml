type t = { m : Vmm.Machine.t }

let dma_desc = 0x7000L
let dma_data = 0x9000L

let reg off = Int64.add Devices.Scsi.mmio_base (Int64.of_int off)

let create m = { m }

let w t off v = Io.mmio_w32 t.m (reg off) (Int64.of_int v)
let r t off = Int64.to_int (Io.mmio_r32_v t.m (reg off)) land 0xFF

let ram t = Vmm.Machine.ram t.m

let reset t = w t 3 0x02
let flush_fifo t = w t 3 0x01

let set_dma_addr t addr = Io.mmio_w32 t.m (reg 8) addr

let push_fifo t bytes_ =
  List.for_all (fun b -> Io.ok (w t 2 b)) bytes_

let select_fifo t ~lun ~cdb =
  Io.ok (flush_fifo t)
  && push_fifo t ((0x80 lor (lun land 7)) :: cdb)
  && Io.ok (w t 3 0x41)

let select_dma t ~lun ~cdb =
  let n = 1 + List.length cdb in
  Vmm.Guest_mem.write (ram t) dma_desc Devir.Width.W32 (Int64.of_int n);
  Vmm.Guest_mem.write_byte (ram t) (Int64.add dma_desc 4L) (0x80 lor (lun land 7));
  List.iteri
    (fun i b ->
      Vmm.Guest_mem.write_byte (ram t) (Int64.add dma_desc (Int64.of_int (5 + i))) b)
    cdb;
  Io.ok (set_dma_addr t dma_desc) && Io.ok (w t 3 0xC1)

(* The DMA engine moves up to a page per TRANSFER INFO. *)
let dma_chunk = 4096

let transfer_dma t ~len =
  Io.ok (set_dma_addr t dma_data)
  &&
  let rec go remaining =
    if remaining <= 0 then true
    else if Io.ok (w t 3 0x90) then go (remaining - dma_chunk)
    else false
  in
  go len

let transfer_fifo_in t ~len =
  let out = Bytes.create len in
  let rec chunk pos =
    if pos >= len then Some out
    else if not (Io.ok (w t 3 0x10)) then None
    else begin
      let n = min 16 (len - pos) in
      let rec pop i =
        if i >= n then true
        else
          let v = r t 2 in
          if v < 0 then false
          else begin
            Bytes.set out (pos + i) (Char.chr (v land 0xFF));
            pop (i + 1)
          end
      in
      if pop 0 then chunk (pos + n) else None
    end
  in
  chunk 0

let iccs t =
  if Io.ok (w t 3 0x11) then begin
    let status = r t 2 in
    let _msg = r t 2 in
    if status >= 0 then Some status else None
  end
  else None

let msgacc t = w t 3 0x12

let read_intr t = r t 5

let bus_reset t = w t 3 0x03
let nop t = w t 3 0x00

let cdb_read10 ~lba ~blocks =
  [
    0x28;
    0x00;
    (lba lsr 24) land 0xFF;
    (lba lsr 16) land 0xFF;
    (lba lsr 8) land 0xFF;
    lba land 0xFF;
    0x00;
    (blocks lsr 8) land 0xFF;
    blocks land 0xFF;
    0x00;
  ]

let cdb_write10 ~lba ~blocks =
  0x2A :: List.tl (cdb_read10 ~lba ~blocks)

let finish t =
  match iccs t with
  | Some _ -> Io.ok (msgacc t)
  | None -> false

let inquiry t ~dma =
  let cdb = [ 0x12; 0x00; 0x00; 0x00; 36; 0x00 ] in
  (if dma then select_dma t ~lun:0 ~cdb else select_fifo t ~lun:0 ~cdb)
  && (if dma then transfer_dma t ~len:36
      else transfer_fifo_in t ~len:36 <> None)
  && finish t

let test_unit_ready t =
  select_fifo t ~lun:0 ~cdb:[ 0x00; 0x00; 0x00; 0x00; 0x00; 0x00 ] && finish t

let request_sense t =
  select_fifo t ~lun:0 ~cdb:[ 0x03; 0x00; 0x00; 0x00; 18; 0x00 ]
  && transfer_dma t ~len:18 && finish t

let read10 t ~lba ~blocks =
  select_dma t ~lun:0 ~cdb:(cdb_read10 ~lba ~blocks)
  && transfer_dma t ~len:(blocks * 512)
  && finish t

let write10 t ~lba ~blocks =
  (* Stage deterministic data in the DMA area first. *)
  for i = 0 to (blocks * 512) - 1 do
    Vmm.Guest_mem.write_byte (ram t)
      (Int64.add dma_data (Int64.of_int i))
      ((lba + i) land 0xFF)
  done;
  select_dma t ~lun:0 ~cdb:(cdb_write10 ~lba ~blocks)
  && transfer_dma t ~len:(blocks * 512)
  && finish t

let mode_sense t ~pages =
  select_fifo t ~lun:0 ~cdb:[ 0x1A; 0x00; 0x3F; 0x00; pages land 0xFF; 0x00 ]
  && transfer_dma t ~len:(pages land 0xFF)
  && finish t
