(** Guest-side ESP/SCSI driver: CDB selection (FIFO or DMA), chunked
    TRANSFER INFO and the command-completion handshake. *)

type t

val create : Vmm.Machine.t -> t

val reset : t -> Io.result
val flush_fifo : t -> Io.result

val select_fifo : t -> lun:int -> cdb:int list -> bool
(** Push an identify byte plus the CDB into the TI FIFO, then SELATN. *)

val select_dma : t -> lun:int -> cdb:int list -> bool
(** Stage [count][bytes...] at the DMA descriptor address, then SELATN
    with the DMA bit. *)

val transfer_dma : t -> len:int -> bool
(** Issue TRANSFER INFO (DMA) repeatedly until [len] bytes have moved
    (16-byte device chunks).  Data lands at / comes from the driver's DMA
    data area. *)

val transfer_fifo_in : t -> len:int -> bytes option
(** TRANSFER INFO via the FIFO, popping each chunk through register
    reads. *)

val iccs : t -> int option
(** Initiator command complete: returns the SCSI status byte. *)

val msgacc : t -> Io.result

val inquiry : t -> dma:bool -> bool
val test_unit_ready : t -> bool
val request_sense : t -> bool
val read10 : t -> lba:int -> blocks:int -> bool
val write10 : t -> lba:int -> blocks:int -> bool
val mode_sense : t -> pages:int -> bool

val bus_reset : t -> Io.result
(** SCSI bus reset — legitimate but rare (a soak-workload rare command). *)

val nop : t -> Io.result

val read_intr : t -> int
(** Read (and clear) the interrupt register. *)

val dma_data : int64
(** Guest address of the driver's DMA data area. *)
