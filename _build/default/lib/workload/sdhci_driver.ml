type t = { m : Vmm.Machine.t }

let base = Devices.Sdhci.mmio_base
let reg off = Int64.add base (Int64.of_int off)

let create m = { m }

let w t off v = Io.mmio_w32 t.m (reg off) (Int64.of_int v)
let w64 t off v = Io.mmio_w32 t.m (reg off) v
let r t off = Io.mmio_r32_v t.m (reg off)

let command t ~idx ~arg =
  match w64 t 0x08 (Int64.of_int arg) with
  | Io.R_ok _ -> w t 0x0E (idx lsl 8)
  | res -> res

let init_card t =
  Io.ok (command t ~idx:0 ~arg:0)
  && Io.ok (command t ~idx:8 ~arg:0x1AA)
  && Io.ok (command t ~idx:55 ~arg:0)
  && Io.ok (command t ~idx:41 ~arg:0x40FF8000)
  && Io.ok (command t ~idx:2 ~arg:0)
  && Io.ok (command t ~idx:3 ~arg:0)
  && Io.ok (command t ~idx:7 ~arg:0x10000)

let set_blksize t v = w t 0x04 v
let set_blkcnt t v = w t 0x06 v

let read_block t ~lba ~blksize =
  if not (Io.ok (set_blksize t blksize)) then None
  else if not (Io.ok (command t ~idx:17 ~arg:lba)) then None
  else begin
    let out = Bytes.create blksize in
    let rec go i =
      if i >= blksize then true
      else
        let v = r t 0x20 in
        if Int64.compare v 0L < 0 then false
        else begin
          Bytes.set out i (Char.chr (Int64.to_int v land 0xFF));
          go (i + 1)
        end
    in
    if go 0 then Some out else None
  end

let write_block t ~lba data =
  let blksize = Bytes.length data in
  Io.ok (set_blksize t blksize)
  && Io.ok (command t ~idx:24 ~arg:lba)
  &&
  let rec go i =
    if i >= blksize then true
    else if Io.ok (w t 0x20 (Char.code (Bytes.get data i))) then go (i + 1)
    else false
  in
  go 0

let read_multi t ~lba ~blksize ~blkcnt ~dma_addr =
  Io.ok (w64 t 0x00 dma_addr)
  && Io.ok (set_blksize t blksize)
  && Io.ok (set_blkcnt t blkcnt)
  && Io.ok (command t ~idx:18 ~arg:lba)

let write_multi t ~lba ~blksize ~blkcnt ~dma_addr =
  Io.ok (w64 t 0x00 dma_addr)
  && Io.ok (set_blksize t blksize)
  && Io.ok (set_blkcnt t blkcnt)
  && Io.ok (command t ~idx:25 ~arg:lba)

let send_status t =
  if Io.ok (command t ~idx:13 ~arg:0) then
    let v = r t 0x10 in
    if Int64.compare v 0L >= 0 then Some v else None
  else None

let stop t = w t 0x0E (12 lsl 8)

let norintsts t = Int64.to_int (r t 0x30) land 0xFFFF

let clear_ints t = w t 0x30 0xFFFF

let raw_command t ~idx ~arg = command t ~idx ~arg

let expected_byte ~lba = ((lba * 11) + 0x30) land 0xFF
