(** Guest-side SD host driver: card initialisation and block I/O through
    the SDHCI model's MMIO interface. *)

type t

val create : Vmm.Machine.t -> t

val init_card : t -> bool
(** CMD0 / CMD8 / CMD55+ACMD41 / CMD2 / CMD3 / CMD7 — leaves the card in
    transfer state. *)

val set_blksize : t -> int -> Io.result
val set_blkcnt : t -> int -> Io.result

val read_block : t -> lba:int -> blksize:int -> bytes option
(** CMD17 plus [blksize] buffer-data-port reads. *)

val write_block : t -> lba:int -> bytes -> bool
(** CMD24 plus per-byte buffer-data-port writes of the whole block. *)

val read_multi : t -> lba:int -> blksize:int -> blkcnt:int -> dma_addr:int64 -> bool
(** CMD18: SDMA transfer into guest memory. *)

val write_multi : t -> lba:int -> blksize:int -> blkcnt:int -> dma_addr:int64 -> bool
(** CMD25: SDMA transfer from guest memory (caller stages the data). *)

val send_status : t -> int64 option
val stop : t -> Io.result
val norintsts : t -> int
val clear_ints : t -> Io.result
val raw_command : t -> idx:int -> arg:int -> Io.result
(** Issue an arbitrary SD command (used by the soak workloads' rare
    commands). *)

val expected_byte : lba:int -> int
