test/test_attacks.ml: Alcotest Attacks Devices Format List Sedspec String Workload
