test/test_devices.ml: Alcotest Arena Attacks Bytes Char Devices Devir Int64 Interp List QCheck QCheck_alcotest Sedspec Sedspec_util Vmm Width Workload
