test/test_devir.ml: Alcotest Arena Block Bytes Devices Devir Expr Int64 Layout List Pretty Program QCheck QCheck_alcotest Stmt String Term Validate Width
