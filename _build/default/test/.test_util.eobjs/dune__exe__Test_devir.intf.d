test/test_devir.mli:
