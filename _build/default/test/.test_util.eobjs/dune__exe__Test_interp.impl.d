test/test_interp.ml: Alcotest Arena Bytes Devir Format Int64 Interp Layout List Program QCheck QCheck_alcotest Stmt Width
