test/test_iptrace.ml: Alcotest Devices Devir Interp Iptrace List Program QCheck QCheck_alcotest Sedspec Sedspec_util Vmm Workload
