test/test_iptrace.mli:
