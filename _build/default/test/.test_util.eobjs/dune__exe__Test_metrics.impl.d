test/test_metrics.ml: Alcotest Attacks Devices Format List Metrics Workload
