test/test_nioh.ml: Alcotest Devices Format Int64 List Metrics Nioh Option Sedspec Sedspec_util Vmm Workload
