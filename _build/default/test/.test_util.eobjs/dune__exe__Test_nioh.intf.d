test/test_nioh.mli:
