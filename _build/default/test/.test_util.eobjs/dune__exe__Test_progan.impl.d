test/test_progan.ml: Alcotest Devices Devir Expr List Progan Program Stmt Width
