test/test_progan.mli:
