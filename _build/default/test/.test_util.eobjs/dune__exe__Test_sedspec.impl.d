test/test_sedspec.ml: Alcotest Arena Attacks Block Devices Devir Format Int64 Interp Lazy List Metrics Option Program QCheck QCheck_alcotest Sedspec Sedspec_util Stmt String Term Vmm Width Workload
