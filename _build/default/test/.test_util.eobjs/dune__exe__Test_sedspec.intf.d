test/test_sedspec.mli:
