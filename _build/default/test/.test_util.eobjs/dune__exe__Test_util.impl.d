test/test_util.ml: Alcotest Array Bytes Fun List QCheck QCheck_alcotest Sedspec_util String
