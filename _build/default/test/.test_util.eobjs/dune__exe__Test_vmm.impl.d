test/test_vmm.ml: Alcotest Arena Bytes Devices Devir Interp Layout List Program Unix Vmm Width Workload
