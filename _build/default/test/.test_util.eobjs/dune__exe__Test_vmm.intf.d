test/test_vmm.mli:
