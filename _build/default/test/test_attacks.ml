(* Tests for the CVE proof-of-concept catalogue: every exploit has a
   concrete effect against its vulnerable QEMU version and none against the
   first fixed version (except the 1568 analog, whose vulnerable effect is
   semantic). *)

module QV = Devices.Qemu_version

let machine_for (attack : Attacks.Attack.t) version =
  let w = Workload.Samples.find attack.device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  W.make_machine version

let effects_for (attack : Attacks.Attack.t) version =
  let m = machine_for attack version in
  attack.setup m;
  Attacks.Attack.observe_effects m ~device:attack.device
    (fun () -> try attack.run m with Exit -> ())
    attack

let fixed_version_for = function
  | "CVE-2015-3456" -> QV.v 2 3 1
  | "CVE-2020-14364" -> QV.v 5 1 1
  | "CVE-2015-7504" | "CVE-2015-7512" -> QV.v 2 5 0
  | "CVE-2016-7909" -> QV.v 2 7 1
  | "CVE-2021-3409" -> QV.v 6 0 0
  | "CVE-2015-5158" -> QV.v 2 4 1
  | "CVE-2016-4439" -> QV.v 2 6 1
  | "CVE-2016-1568" -> QV.v 2 5 1
  | cve -> Alcotest.failf "unknown cve %s" cve

(* CVEs whose fixed-version run is still "noisy" because a *different* CVE
   remains open at that version on the same device (pcnet 7504/7512 share a
   fix; scsi 5158's fix predates 4439's). *)
let isolated_effect (attack : Attacks.Attack.t) (e : Attacks.Attack.effects) =
  match attack.cve with
  | "CVE-2016-1568" -> List.mem "double-completion" e.extra
  | "CVE-2015-5158" ->
    (* Its own signature is trap-free corruption followed by the defensive
       branch; at 2.4.1 the stream is refused at parse. *)
    e.oob_writes > 4 (* more than 4439's residual 4-byte spill *)
  | _ -> Attacks.Attack.succeeded e

let test_catalogue_is_complete () =
  Alcotest.(check int) "eight case studies + one miss" 9
    (List.length Attacks.Attack.all);
  List.iter
    (fun (a : Attacks.Attack.t) ->
      Alcotest.(check bool) (a.cve ^ " has description") true (a.description <> ""))
    Attacks.Attack.all

let test_exploits_succeed_on_vulnerable () =
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let e = effects_for a a.qemu_version in
      if not (isolated_effect a e) then
        Alcotest.failf "%s had no effect on QEMU %s: %s" a.cve
          (QV.to_string a.qemu_version)
          (Format.asprintf "%a" Attacks.Attack.pp_effects e))
    Attacks.Attack.all

let test_exploits_fail_on_patched () =
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let e = effects_for a (fixed_version_for a.cve) in
      if isolated_effect a e then
        Alcotest.failf "%s still effective on patched: %s" a.cve
          (Format.asprintf "%a" Attacks.Attack.pp_effects e))
    Attacks.Attack.all

let test_expected_matrix_matches_paper () =
  (* The paper's Table III: which strategies mark each CVE. *)
  let expect cve strategies =
    let a = Attacks.Attack.find cve in
    Alcotest.(check (list string)) cve
      (List.map Sedspec.Checker.strategy_to_string strategies)
      (List.map Sedspec.Checker.strategy_to_string a.expected)
  in
  let p = Sedspec.Checker.Parameter_check
  and i = Sedspec.Checker.Indirect_jump_check
  and c = Sedspec.Checker.Conditional_jump_check in
  expect "CVE-2015-3456" [ p; c ];
  expect "CVE-2020-14364" [ p; i ];
  expect "CVE-2015-7504" [ i ];
  expect "CVE-2015-7512" [ p; i ];
  expect "CVE-2016-7909" [ c ];
  expect "CVE-2021-3409" [ p ];
  expect "CVE-2015-5158" [ c ];
  expect "CVE-2016-4439" [ c ];
  expect "CVE-2016-1568" []

let test_miss_is_marked_undetectable () =
  let a = Attacks.Attack.find "CVE-2016-1568" in
  Alcotest.(check bool) "not detectable" false a.detectable;
  List.iter
    (fun (a : Attacks.Attack.t) ->
      if a.cve <> "CVE-2016-1568" then
        Alcotest.(check bool) (a.cve ^ " detectable") true a.detectable)
    Attacks.Attack.all

let test_setup_streams_are_benign () =
  (* Attack setups must not corrupt anything by themselves. *)
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let m = machine_for a a.qemu_version in
      let e =
        Attacks.Attack.observe_effects m ~device:a.device (fun () -> a.setup m) a
      in
      Alcotest.(check int) (a.cve ^ " setup oob-free") 0 e.oob_writes;
      Alcotest.(check int) (a.cve ^ " setup trap-free") 0 (List.length e.traps))
    Attacks.Attack.all

let test_effects_pp_and_succeeded () =
  let empty =
    { Attacks.Attack.oob_writes = 0; oob_reads = 0; traps = []; extra = [] }
  in
  Alcotest.(check bool) "no effect" false (Attacks.Attack.succeeded empty);
  Alcotest.(check bool) "oob counts" true
    (Attacks.Attack.succeeded { empty with oob_writes = 1 });
  Alcotest.(check bool) "extra counts" true
    (Attacks.Attack.succeeded { empty with extra = [ "double-completion" ] });
  Alcotest.(check bool) "prints" true
    (String.length (Format.asprintf "%a" Attacks.Attack.pp_effects empty) > 0)

let test_find_unknown_raises () =
  Alcotest.(check bool) "not found" true
    (match Attacks.Attack.find "CVE-0000-0000" with
    | _ -> false
    | exception Not_found -> true)

let () =
  Alcotest.run "attacks"
    [
      ( "catalogue",
        [
          Alcotest.test_case "complete" `Quick test_catalogue_is_complete;
          Alcotest.test_case "expected matrix matches paper" `Quick
            test_expected_matrix_matches_paper;
          Alcotest.test_case "miss marked undetectable" `Quick
            test_miss_is_marked_undetectable;
        ] );
      ( "ground truth",
        [
          Alcotest.test_case "exploits succeed on vulnerable versions" `Quick
            test_exploits_succeed_on_vulnerable;
          Alcotest.test_case "exploits fail on patched versions" `Quick
            test_exploits_fail_on_patched;
          Alcotest.test_case "setup streams are benign" `Quick
            test_setup_streams_are_benign;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "effects classification" `Quick
            test_effects_pp_and_succeeded;
          Alcotest.test_case "unknown cve raises" `Quick test_find_unknown_raises;
        ] );
    ]
