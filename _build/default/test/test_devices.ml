(* Functional tests for the five device models: benign lifecycles behave
   like the real hardware programming models, and each CVE's vulnerable
   logic corrupts memory (or hangs) exactly where the patched logic
   stays safe. *)

open Devir

module QV = Devices.Qemu_version

let machine_with (dev : Devices.Device.t) =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (dev.make_binding ());
  m

let arena_of m name = Interp.arena (Vmm.Machine.interp_of m name)

let count_oob m name =
  let interp = Vmm.Machine.interp_of m name in
  let n = ref 0 in
  Interp.set_hooks interp
    { (Interp.hooks interp) with Interp.on_oob = (fun _ -> incr n) };
  n

(* --- FDC -------------------------------------------------------------- *)

let fdc_m version = machine_with (Devices.Fdc.device ~version)

let test_fdc_read_write_lifecycle () =
  let m = fdc_m (QV.v 2 3 0) in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
  (match Workload.Fdc_driver.sense_interrupt d with
  | Some (_, 0) -> ()
  | _ -> Alcotest.fail "recalibrate should leave track 0");
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:1 ~track:33);
  ignore (Workload.Fdc_driver.sense_interrupt d);
  (match Workload.Fdc_driver.read_sector d ~drive:0 ~head:1 ~track:33 ~sect:5 with
  | Some buf ->
    let expect = Workload.Fdc_driver.expected_byte ~track:33 ~head:1 ~sect:5 in
    Bytes.iter (fun ch -> assert (Char.code ch = expect)) buf
  | None -> Alcotest.fail "read failed");
  let data = Bytes.make 512 'Z' in
  Alcotest.(check bool) "write completes" true
    (Workload.Fdc_driver.write_sector d ~drive:0 ~head:1 ~track:33 ~sect:6 data);
  Alcotest.(check int64) "idle after lifecycle" 0L
    (Arena.get (arena_of m "fdc") "phase")

let test_fdc_msr_progression () =
  let m = fdc_m (QV.v 2 3 0) in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  Alcotest.(check int) "RQM after reset" 0x80 (Workload.Fdc_driver.msr d land 0x80);
  (* Mid-command: busy bit set. *)
  ignore (Workload.Io.outb m (Int64.add Devices.Fdc.io_base 5L) 0x0F);
  Alcotest.(check int) "busy during command" 0x10 (Workload.Fdc_driver.msr d land 0x10)

let test_fdc_rare_commands () =
  let m = fdc_m (QV.v 2 3 0) in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.reset d);
  (match Workload.Fdc_driver.version d with
  | Some v -> Alcotest.(check int) "version byte" 0x90 v
  | None -> Alcotest.fail "version failed");
  Alcotest.(check bool) "dumpreg" true (Workload.Fdc_driver.dumpreg d);
  Alcotest.(check bool) "perpendicular" true (Workload.Fdc_driver.perpendicular d 3);
  Alcotest.(check bool) "invalid command gets 0x80 status" true
    (Workload.Fdc_driver.invalid_command d)

let test_fdc_venom_vulnerable_vs_patched () =
  let exploit m =
    let port = Int64.add Devices.Fdc.io_base 5L in
    ignore (Workload.Io.outb m port 0x8E);
    let trapped = ref false in
    (try
       for _ = 1 to 600 do
         match Workload.Io.outb m port 0x01 with
         | Workload.Io.R_fault _ ->
           trapped := true;
           raise Exit
         | _ -> ()
       done
     with Exit -> ());
    !trapped
  in
  Alcotest.(check bool) "2.3.0 crashes" true (exploit (fdc_m (QV.v 2 3 0)));
  Alcotest.(check bool) "2.3.1 immune" false (exploit (fdc_m (QV.v 2 3 1)))

let test_fdc_reset_during_command () =
  let m = fdc_m (QV.v 2 3 0) in
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Io.outb m (Int64.add Devices.Fdc.io_base 5L) 0x46);
  ignore (Workload.Fdc_driver.reset d);
  Alcotest.(check int64) "reset clears pos" 0L (Arena.get (arena_of m "fdc") "data_pos");
  Alcotest.(check int64) "reset idles" 0L (Arena.get (arena_of m "fdc") "phase")

(* --- SDHCI ------------------------------------------------------------ *)

let sdhci_m version = machine_with (Devices.Sdhci.device ~version)

let test_sdhci_init_and_block_io () =
  let m = sdhci_m (QV.v 5 2 0) in
  let d = Workload.Sdhci_driver.create m in
  Alcotest.(check bool) "init" true (Workload.Sdhci_driver.init_card d);
  Alcotest.(check int64) "transfer state" 4L
    (Arena.get (arena_of m "sdhci") "card_state");
  (match Workload.Sdhci_driver.read_block d ~lba:9 ~blksize:512 with
  | Some buf ->
    let expect = Workload.Sdhci_driver.expected_byte ~lba:9 in
    Alcotest.(check int) "pattern byte" expect (Char.code (Bytes.get buf 0))
  | None -> Alcotest.fail "read failed");
  Alcotest.(check bool) "write block" true
    (Workload.Sdhci_driver.write_block d ~lba:3 (Bytes.make 512 'q'));
  Alcotest.(check bool) "status" true (Workload.Sdhci_driver.send_status d <> None)

let test_sdhci_multiblock_dma () =
  let m = sdhci_m (QV.v 5 2 0) in
  let d = Workload.Sdhci_driver.create m in
  ignore (Workload.Sdhci_driver.init_card d);
  let dma = 0xA0000L in
  Alcotest.(check bool) "read multi" true
    (Workload.Sdhci_driver.read_multi d ~lba:4 ~blksize:512 ~blkcnt:3 ~dma_addr:dma);
  let expect = Workload.Sdhci_driver.expected_byte ~lba:4 in
  Alcotest.(check int) "dma data landed in guest ram" expect
    (Vmm.Guest_mem.read_byte (Vmm.Machine.ram m) dma);
  Alcotest.(check bool) "write multi" true
    (Workload.Sdhci_driver.write_multi d ~lba:9 ~blksize:512 ~blkcnt:2 ~dma_addr:dma);
  Alcotest.(check bool) "xfer-complete interrupt" true
    (Workload.Sdhci_driver.norintsts d land 0x0002 <> 0)

let sdhci_exploit m =
  let d = Workload.Sdhci_driver.create m in
  ignore (Workload.Sdhci_driver.init_card d);
  ignore (Workload.Sdhci_driver.set_blksize d 0x200);
  ignore (Workload.Sdhci_driver.raw_command d ~idx:24 ~arg:1);
  let bdata v =
    Workload.Io.mmio_w32 m
      (Int64.add Devices.Sdhci.mmio_base 0x20L)
      (Int64.of_int v)
  in
  for _ = 1 to 0x80 do
    ignore (bdata 0x55)
  done;
  ignore (Workload.Sdhci_driver.set_blksize d 0x40);
  let trapped = ref false in
  (try
     for _ = 1 to 8192 do
       match bdata 0x66 with
       | Workload.Io.R_fault _ ->
         trapped := true;
         raise Exit
       | _ -> ()
     done
   with Exit -> ());
  !trapped

let test_sdhci_3409_vulnerable_vs_patched () =
  Alcotest.(check bool) "5.2.0 runs away" true (sdhci_exploit (sdhci_m (QV.v 5 2 0)));
  Alcotest.(check bool) "6.0.0 immune" false (sdhci_exploit (sdhci_m (QV.v 6 0 0)))

(* --- PCNet ------------------------------------------------------------ *)

let pcnet_m version = machine_with (Devices.Pcnet.device ~version)

let pcnet_up ?(mode = 0) m =
  let d = Workload.Pcnet_driver.create m in
  ignore (Workload.Pcnet_driver.reset d);
  ignore (Workload.Pcnet_driver.init d ~mode ());
  ignore (Workload.Pcnet_driver.start d);
  d

let test_pcnet_init_from_init_block () =
  let m = pcnet_m (QV.v 2 4 0) in
  let d = pcnet_up m in
  ignore d;
  let a = arena_of m "pcnet" in
  Alcotest.(check int64) "rdra" 0x2000L (Arena.get a "rdra");
  Alcotest.(check int64) "tdra" 0x3000L (Arena.get a "tdra");
  Alcotest.(check int64) "rcvrl" 8L (Arena.get a "rcvrl");
  Alcotest.(check bool) "rx/tx on" true
    (Int64.to_int (Arena.get a "csr0") land 0x30 = 0x30)

let test_pcnet_transmit_and_receive () =
  let m = pcnet_m (QV.v 2 4 0) in
  let d = pcnet_up m in
  Alcotest.(check bool) "tx" true (Workload.Pcnet_driver.transmit d [ Bytes.make 100 'x' ]);
  Alcotest.(check bool) "tint" true (Workload.Pcnet_driver.csr0 d land 0x200 <> 0);
  let frame = Bytes.init 96 (fun i -> Char.chr (i land 0xFF)) in
  (match Workload.Pcnet_driver.receive d frame with
  | Workload.Io.R_ok _ -> ()
  | _ -> Alcotest.fail "receive failed");
  match Workload.Pcnet_driver.rx_frame d with
  | Some (len, data) ->
    Alcotest.(check int) "length written back" 96 len;
    Alcotest.(check char) "payload delivered" (Char.chr 5) (Bytes.get data 5)
  | None -> Alcotest.fail "no frame delivered"

let test_pcnet_rx_ring_wrap_and_miss () =
  let m = pcnet_m (QV.v 2 4 0) in
  let d = pcnet_up m in
  (* Fill the whole ring without reaping: the final injects must MISS. *)
  for _ = 1 to 10 do
    ignore (Workload.Pcnet_driver.receive d (Bytes.make 64 'y'))
  done;
  Alcotest.(check bool) "miss flagged" true
    (Workload.Pcnet_driver.csr0 d land 0x1000 <> 0);
  (* Reap everything; ring indices wrapped consistently. *)
  let reaped = ref 0 in
  let rec go () =
    match Workload.Pcnet_driver.rx_frame d with
    | Some _ ->
      incr reaped;
      go ()
    | None -> ()
  in
  go ();
  Alcotest.(check int) "ring capacity delivered" 8 !reaped

let test_pcnet_loopback_crc_in_bounds () =
  let m = pcnet_m (QV.v 2 4 0) in
  let d = pcnet_up ~mode:4 m in
  let oob = count_oob m "pcnet" in
  Alcotest.(check bool) "small loopback tx" true
    (Workload.Pcnet_driver.transmit d [ Bytes.make 256 'l' ]);
  Alcotest.(check int) "no oob for small frames" 0 !oob;
  Alcotest.(check int64) "irq intact" Devices.Pcnet.irq_cb
    (Arena.get (arena_of m "pcnet") "irq")

let test_pcnet_7504_vulnerable_vs_patched () =
  let exploit m =
    let d = pcnet_up ~mode:4 m in
    ignore (Workload.Pcnet_driver.transmit d [ Bytes.make 4096 '\xCC' ]);
    Arena.get (arena_of m "pcnet") "irq" <> Devices.Pcnet.irq_cb
  in
  Alcotest.(check bool) "2.4.0 corrupts irq" true (exploit (pcnet_m (QV.v 2 4 0)));
  Alcotest.(check bool) "2.5.0 immune" false (exploit (pcnet_m (QV.v 2 5 0)))

let test_pcnet_7512_vulnerable_vs_patched () =
  let exploit m =
    let d = pcnet_up m in
    let oob = count_oob m "pcnet" in
    ignore
      (Workload.Pcnet_driver.transmit d
         [ Bytes.make 1518 'a'; Bytes.make 1518 'b'; Bytes.make 1518 'c' ]);
    !oob > 0
  in
  Alcotest.(check bool) "2.4.0 overflows" true (exploit (pcnet_m (QV.v 2 4 0)));
  Alcotest.(check bool) "2.5.0 immune" false (exploit (pcnet_m (QV.v 2 5 0)))

let test_pcnet_7909_vulnerable_vs_patched () =
  let exploit m =
    let d = pcnet_up m in
    let g = Vmm.Machine.ram m in
    for i = 0 to 7 do
      Vmm.Guest_mem.write g
        (Int64.add 0x2000L (Int64.of_int ((i * 16) + 4)))
        Width.W32 0L
    done;
    ignore (Workload.Pcnet_driver.write_csr d 76 0);
    match Workload.Pcnet_driver.receive d (Bytes.make 64 'z') with
    | Workload.Io.R_fault Interp.Event.Step_limit -> true
    | _ -> false
  in
  Alcotest.(check bool) "2.6.0 hangs" true (exploit (pcnet_m (QV.v 2 6 0)));
  Alcotest.(check bool) "2.7.1 immune" false (exploit (pcnet_m (QV.v 2 7 1)))

let test_pcnet_link_status_host_value () =
  let m = pcnet_m (QV.v 2 4 0) in
  let d = pcnet_up m in
  Alcotest.(check bool) "link down by default" false (Workload.Pcnet_driver.link_up d);
  Interp.set_host_values (Vmm.Machine.interp_of m "pcnet") (fun _ -> 1L);
  Alcotest.(check bool) "link up from host value" true (Workload.Pcnet_driver.link_up d)

(* --- EHCI -------------------------------------------------------------- *)

let ehci_m version = machine_with (Devices.Ehci.device ~version)

let test_ehci_control_transfers () =
  let m = ehci_m (QV.v 5 1 0) in
  let d = Workload.Ehci_driver.create m in
  ignore (Workload.Ehci_driver.reset_port d);
  Alcotest.(check bool) "set_address" true (Workload.Ehci_driver.set_address d 9);
  Alcotest.(check int64) "address latched" 9L (Arena.get (arena_of m "ehci") "dev_addr");
  (match Workload.Ehci_driver.get_descriptor d ~dtype:1 ~length:18 with
  | Some buf ->
    Alcotest.(check int) "device descriptor pattern" (0x12 + 9)
      (Char.code (Bytes.get buf 0))
  | None -> Alcotest.fail "get_descriptor failed");
  Alcotest.(check bool) "set_configuration" true (Workload.Ehci_driver.set_configuration d 1);
  (match Workload.Ehci_driver.get_status d with
  | Some st -> Alcotest.(check int) "self-powered bit" 1 (Char.code (Bytes.get st 0))
  | None -> Alcotest.fail "get_status failed");
  Alcotest.(check bool) "OUT data stage" true
    (Workload.Ehci_driver.control_out d (Bytes.make 32 'o'));
  Alcotest.(check bool) "usbsts has interrupt bit" true
    (Int64.to_int (Workload.Ehci_driver.usbsts d) land 1 <> 0)

let test_ehci_frindex_advances () =
  let m = ehci_m (QV.v 5 1 0) in
  let d = Workload.Ehci_driver.create m in
  ignore (Workload.Ehci_driver.reset_port d);
  let f0 = Workload.Ehci_driver.frindex d in
  ignore (Workload.Ehci_driver.set_address d 1);
  Alcotest.(check bool) "frindex advanced" true (Workload.Ehci_driver.frindex d > f0)

let ehci_exploit m =
  let d = Workload.Ehci_driver.create m in
  ignore (Workload.Ehci_driver.reset_port d);
  let len = Devices.Ehci.data_buf_size + 80 in
  ignore (Workload.Ehci_driver.control_setup d ~bm:0 ~req:9 ~value:1 ~index:0 ~length:len);
  Vmm.Guest_mem.blit_in (Vmm.Machine.ram m) 0x6000L (Bytes.make len '\x41');
  ignore (Workload.Ehci_driver.submit d ~pid:Devices.Ehci.pid_out ~len ~buf:0x6000L);
  Arena.get (arena_of m "ehci") "irq" <> Devices.Ehci.irq_cb

let test_ehci_14364_vulnerable_vs_patched () =
  Alcotest.(check bool) "5.1.0 corrupts irq" true (ehci_exploit (ehci_m (QV.v 5 1 0)));
  Alcotest.(check bool) "5.1.1 immune (stalls)" false (ehci_exploit (ehci_m (QV.v 5 1 1)))

(* --- SCSI -------------------------------------------------------------- *)

let scsi_m version = machine_with (Devices.Scsi.device ~version)

let test_scsi_command_lifecycle () =
  let m = scsi_m (QV.v 2 4 0) in
  let d = Workload.Scsi_driver.create m in
  ignore (Workload.Scsi_driver.reset d);
  Alcotest.(check bool) "TUR" true (Workload.Scsi_driver.test_unit_ready d);
  Alcotest.(check bool) "inquiry via fifo" true (Workload.Scsi_driver.inquiry d ~dma:false);
  Alcotest.(check bool) "inquiry via dma" true (Workload.Scsi_driver.inquiry d ~dma:true);
  Alcotest.(check bool) "read10" true (Workload.Scsi_driver.read10 d ~lba:100 ~blocks:2);
  (* Disk data pattern lands in the DMA area. *)
  let b0 = Vmm.Guest_mem.read_byte (Vmm.Machine.ram m) Workload.Scsi_driver.dma_data in
  Alcotest.(check int) "disk pattern" ((100 * 17 + 0x40) land 0xFF) b0;
  Alcotest.(check bool) "write10" true (Workload.Scsi_driver.write10 d ~lba:4 ~blocks:1);
  Alcotest.(check bool) "request sense" true (Workload.Scsi_driver.request_sense d);
  Alcotest.(check int64) "request completed" 0L
    (Arena.get (arena_of m "scsi") "req_active")

let test_scsi_large_transfer () =
  let m = scsi_m (QV.v 2 4 0) in
  let d = Workload.Scsi_driver.create m in
  ignore (Workload.Scsi_driver.reset d);
  Alcotest.(check bool) "16-block read (8 KiB)" true
    (Workload.Scsi_driver.read10 d ~lba:7 ~blocks:16)

let test_scsi_5158_vulnerable_vs_patched () =
  (* CVE-2016-4439 is still open at 2.4.1 (the select copy itself
     overflows by 4 bytes), so discriminate on 5158's own effect: the cdb
     parse overflowing into disk_len. *)
  let exploit m =
    let d = Workload.Scsi_driver.create m in
    ignore (Workload.Scsi_driver.reset d);
    let g = Vmm.Machine.ram m in
    Vmm.Guest_mem.write g 0x7000L Width.W32 20L;
    Vmm.Guest_mem.write_byte g 0x7004L 0x80;
    Vmm.Guest_mem.write_byte g 0x7005L 0xE3;
    for i = 2 to 19 do
      Vmm.Guest_mem.write_byte g (Int64.add 0x7004L (Int64.of_int i)) 0xFF
    done;
    ignore (Workload.Io.mmio_w32 m (Int64.add Devices.Scsi.mmio_base 8L) 0x7000L);
    ignore (Workload.Io.mmio_w32 m (Int64.add Devices.Scsi.mmio_base 3L) 0xC1L);
    (* The spilled bytes include live neighbour values, so just check the
       length became impossible (the defensive-branch trigger). *)
    Int64.unsigned_compare (Arena.get (arena_of m "scsi") "disk_len") 0x100000L > 0
  in
  Alcotest.(check bool) "2.4.0 corrupts disk_len via cdb" true
    (exploit (scsi_m (QV.v 2 4 0)));
  Alcotest.(check bool) "2.4.1 immune" false (exploit (scsi_m (QV.v 2 4 1)))

let test_scsi_4439_vulnerable_vs_patched () =
  let exploit m =
    let d = Workload.Scsi_driver.create m in
    ignore (Workload.Scsi_driver.reset d);
    let g = Vmm.Machine.ram m in
    Vmm.Guest_mem.write g 0x7000L Width.W32 32L;
    Vmm.Guest_mem.write_byte g 0x7004L 0x80;
    Vmm.Guest_mem.write_byte g 0x7005L 0x00;
    for i = 2 to 31 do
      Vmm.Guest_mem.write_byte g (Int64.add 0x7004L (Int64.of_int i)) 0xFF
    done;
    ignore (Workload.Io.mmio_w32 m (Int64.add Devices.Scsi.mmio_base 8L) 0x7000L);
    ignore (Workload.Io.mmio_w32 m (Int64.add Devices.Scsi.mmio_base 3L) 0xC1L);
    (* ti_size sits right behind cmdbuf. *)
    Arena.get (arena_of m "scsi") "ti_size" = 0xFFFFL
  in
  Alcotest.(check bool) "2.6.0 corrupts ti_size" true (exploit (scsi_m (QV.v 2 6 0)));
  Alcotest.(check bool) "2.6.1 immune" false (exploit (scsi_m (QV.v 2 6 1)))

let test_scsi_1568_analog () =
  let replay m =
    let d = Workload.Scsi_driver.create m in
    ignore (Workload.Scsi_driver.reset d);
    ignore (Workload.Scsi_driver.test_unit_ready d);
    (* Request done; replay the completion. *)
    ignore (Workload.Scsi_driver.iccs d);
    Int64.to_int (Arena.get (arena_of m "scsi") "completions")
  in
  Alcotest.(check int) "2.4.0 double completion" 2 (replay (scsi_m (QV.v 2 4 0)));
  Alcotest.(check int) "2.5.1 single completion" 1 (replay (scsi_m (QV.v 2 5 1)))

(* --- Cross-device properties ------------------------------------------- *)

let prop_benign_traffic_is_safe =
  QCheck.Test.make
    ~name:"benign soak traffic never traps or corrupts (all devices)" ~count:8
    QCheck.int64
    (fun seed ->
      List.for_all
        (fun w ->
          let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
          let m = W.make_machine W.paper_version in
          let oob = count_oob m W.device_name in
          let rng = Sedspec_util.Prng.create seed in
          W.soak_case ~mode:Workload.Samples.Random ~rng ~rare_prob:0.1 ~ops:8 m;
          if !oob > 0 then
            QCheck.Test.fail_reportf "%s: %d OOB accesses on benign traffic"
              W.device_name !oob;
          match Vmm.Machine.last_traps m with
          | [] -> true
          | (_, t) :: _ ->
            QCheck.Test.fail_reportf "%s: benign trap %s" W.device_name
              (Interp.Event.trap_to_string t))
        Workload.Samples.all)

let prop_trainers_are_safe =
  QCheck.Test.make ~name:"trainer corpora never trap or corrupt" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun w ->
          let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
          let m = W.make_machine W.paper_version in
          let oob = count_oob m W.device_name in
          let trainer = W.trainer ~cases:12 in
          for case = 0 to 11 do
            trainer.Sedspec.Pipeline.run_case m case
          done;
          !oob = 0 && Vmm.Machine.last_traps m = [])
        Workload.Samples.all)

let test_patched_devices_survive_all_attacks () =
  (* Every attack against the fully patched device build: no corruption,
     no crash, no hang. *)
  List.iter
    (fun (a : Attacks.Attack.t) ->
      let w = Workload.Samples.find a.device in
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let m = W.make_machine Devices.Qemu_version.latest in
      let oob = count_oob m a.device in
      a.setup m;
      (try a.run m with Exit -> ());
      Alcotest.(check int) (a.cve ^ " no oob on latest") 0 !oob;
      Alcotest.(check (list reject)) (a.cve ^ " no traps on latest") []
        (List.map (fun _ -> ()) (Vmm.Machine.last_traps m));
      Alcotest.(check (list string)) (a.cve ^ " no residual effect") []
        (a.ground_check m))
    Attacks.Attack.all

let test_irq_counts_on_benign_work () =
  (* Interrupts keep flowing for every device under benign load. *)
  List.iter
    (fun w ->
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let m = W.make_machine W.paper_version in
      let rng = Sedspec_util.Prng.create 21L in
      W.soak_case ~mode:Workload.Samples.Sequential ~rng ~rare_prob:0.0 ~ops:6 m;
      Alcotest.(check bool) (W.device_name ^ " raised interrupts") true
        (Vmm.Irq.raise_count (Vmm.Machine.irq m) W.device_name > 0))
    Workload.Samples.all

let () =
  Alcotest.run "devices"
    [
      ( "fdc",
        [
          Alcotest.test_case "read/write lifecycle" `Quick test_fdc_read_write_lifecycle;
          Alcotest.test_case "msr progression" `Quick test_fdc_msr_progression;
          Alcotest.test_case "rare commands" `Quick test_fdc_rare_commands;
          Alcotest.test_case "venom: vulnerable vs patched" `Quick
            test_fdc_venom_vulnerable_vs_patched;
          Alcotest.test_case "reset during command" `Quick test_fdc_reset_during_command;
        ] );
      ( "sdhci",
        [
          Alcotest.test_case "init and block io" `Quick test_sdhci_init_and_block_io;
          Alcotest.test_case "multi-block dma" `Quick test_sdhci_multiblock_dma;
          Alcotest.test_case "CVE-2021-3409: vulnerable vs patched" `Quick
            test_sdhci_3409_vulnerable_vs_patched;
        ] );
      ( "pcnet",
        [
          Alcotest.test_case "init block" `Quick test_pcnet_init_from_init_block;
          Alcotest.test_case "transmit and receive" `Quick test_pcnet_transmit_and_receive;
          Alcotest.test_case "ring wrap and miss" `Quick test_pcnet_rx_ring_wrap_and_miss;
          Alcotest.test_case "loopback crc in bounds" `Quick test_pcnet_loopback_crc_in_bounds;
          Alcotest.test_case "CVE-2015-7504: vulnerable vs patched" `Quick
            test_pcnet_7504_vulnerable_vs_patched;
          Alcotest.test_case "CVE-2015-7512: vulnerable vs patched" `Quick
            test_pcnet_7512_vulnerable_vs_patched;
          Alcotest.test_case "CVE-2016-7909: vulnerable vs patched" `Quick
            test_pcnet_7909_vulnerable_vs_patched;
          Alcotest.test_case "link status is a host value" `Quick
            test_pcnet_link_status_host_value;
        ] );
      ( "ehci",
        [
          Alcotest.test_case "control transfers" `Quick test_ehci_control_transfers;
          Alcotest.test_case "frindex advances" `Quick test_ehci_frindex_advances;
          Alcotest.test_case "CVE-2020-14364: vulnerable vs patched" `Quick
            test_ehci_14364_vulnerable_vs_patched;
        ] );
      ( "cross-device",
        [
          QCheck_alcotest.to_alcotest prop_benign_traffic_is_safe;
          QCheck_alcotest.to_alcotest prop_trainers_are_safe;
          Alcotest.test_case "patched devices survive all attacks" `Quick
            test_patched_devices_survive_all_attacks;
          Alcotest.test_case "interrupts flow under load" `Quick
            test_irq_counts_on_benign_work;
        ] );
      ( "scsi",
        [
          Alcotest.test_case "command lifecycle" `Quick test_scsi_command_lifecycle;
          Alcotest.test_case "large transfer" `Quick test_scsi_large_transfer;
          Alcotest.test_case "CVE-2015-5158: vulnerable vs patched" `Quick
            test_scsi_5158_vulnerable_vs_patched;
          Alcotest.test_case "CVE-2016-4439: vulnerable vs patched" `Quick
            test_scsi_4439_vulnerable_vs_patched;
          Alcotest.test_case "CVE-2016-1568 analog (double completion)" `Quick
            test_scsi_1568_analog;
        ] );
    ]
