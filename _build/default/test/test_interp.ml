(* Tests for the expression evaluator (width-aware arithmetic, overflow
   reporting) and the block-graph interpreter (control transfers, traps,
   hooks, guards, sync points). *)

open Devir
open Devir.Dsl

(* --- Eval ----------------------------------------------------------- *)

let eval_with ?(fields = []) ?(params = []) ?(locals = []) e =
  let overflow = ref None in
  let ctx =
    {
      Interp.Eval.get_field =
        (fun n ->
          match List.assoc_opt n fields with
          | Some v -> v
          | None -> Alcotest.failf "unknown field %s" n);
      get_buf_byte = (fun _ i -> i land 0xFF);
      buf_len = (fun _ -> 16);
      get_param =
        (fun n ->
          match List.assoc_opt n params with
          | Some v -> v
          | None -> raise (Interp.Eval.Undefined_param n));
      get_local =
        (fun n ->
          match List.assoc_opt n locals with
          | Some v -> v
          | None -> raise (Interp.Eval.Undefined_local n));
      record_overflow = (fun o -> overflow := Some o);
    }
  in
  let v = Interp.Eval.eval ctx e in
  (v, !overflow)

let test_eval_arith () =
  Alcotest.(check int64) "add" 5L (fst (eval_with (c 2 +% c 3)));
  Alcotest.(check int64) "sub" 1L (fst (eval_with (c 3 -% c 2)));
  Alcotest.(check int64) "mul" 6L (fst (eval_with (c 2 *% c 3)));
  Alcotest.(check int64) "and" 4L (fst (eval_with (c 6 &% c 12)));
  Alcotest.(check int64) "or" 14L (fst (eval_with (c 6 |% c 12)));
  Alcotest.(check int64) "xor" 10L (fst (eval_with (c 6 ^% c 12)));
  Alcotest.(check int64) "shl" 8L (fst (eval_with (c 1 <<% c 3)));
  Alcotest.(check int64) "shr" 2L (fst (eval_with (c 8 >>% c 2)));
  Alcotest.(check int64) "div" 3L (fst (eval_with (div Width.W32 (c 7) (c 2))));
  Alcotest.(check int64) "rem" 1L (fst (eval_with (rem Width.W32 (c 7) (c 2))))

let test_eval_cmp () =
  let t e = Alcotest.(check int64) "true" 1L (fst (eval_with e)) in
  let f e = Alcotest.(check int64) "false" 0L (fst (eval_with e)) in
  t (c 1 ==% c 1);
  f (c 1 ==% c 2);
  t (c 1 <>% c 2);
  t (c 1 <% c 2);
  f (c 2 <% c 1);
  t (c 2 <=% c 2);
  t (c 3 >% c 2);
  t (c 3 >=% c 3);
  (* Unsigned vs signed: all-ones is max unsigned but -1 signed. *)
  t (c64 ~w:Width.W64 (-1L) >% c64 ~w:Width.W64 1L);
  t (lts (c64 ~w:Width.W64 (-1L)) (c64 ~w:Width.W64 1L));
  t (not_ (c 0));
  f (not_ (c 5))

let test_eval_overflow_add () =
  let v, ov = eval_with (add Width.W8 (c 200) (c 100)) in
  Alcotest.(check int64) "wraps" 44L v;
  Alcotest.(check bool) "overflow recorded" true (ov <> None)

let test_eval_overflow_sub () =
  let v, ov = eval_with (sub Width.W32 (c 0x40) (c 0x81)) in
  (* The SDHCI CVE-2021-3409 expression shape. *)
  Alcotest.(check int64) "wraps" 0xFFFFFFBFL v;
  Alcotest.(check bool) "underflow recorded" true (ov <> None)

let test_eval_overflow_mul () =
  let _, ov = eval_with (mul Width.W16 (c 300) (c 300)) in
  Alcotest.(check bool) "mul overflow recorded" true (ov <> None)

let test_eval_shl_overflow () =
  let _, ov = eval_with (shl Width.W8 (c 0x80) (c 1)) in
  Alcotest.(check bool) "shl overflow recorded" true (ov <> None)

let test_eval_no_false_overflow () =
  let _, ov = eval_with (c 1000 +% c 2000) in
  Alcotest.(check bool) "no overflow" true (ov = None);
  let _, ov = eval_with (sub Width.W32 (c 5) (c 5)) in
  Alcotest.(check bool) "equal sub no overflow" true (ov = None)

let test_eval_div_zero () =
  Alcotest.check_raises "div by zero" Interp.Eval.Div_by_zero (fun () ->
      ignore (eval_with (div Width.W32 (c 1) (c 0))))

let test_eval_undefined () =
  Alcotest.check_raises "undefined param" (Interp.Eval.Undefined_param "nope")
    (fun () -> ignore (eval_with (prm "nope")));
  Alcotest.check_raises "undefined local" (Interp.Eval.Undefined_local "ghost")
    (fun () -> ignore (eval_with (lcl "ghost")))

let prop_add_matches_reference =
  QCheck.Test.make ~name:"W16 add wraps like a reference" ~count:500
    QCheck.(pair (int_range 0 0xFFFF) (int_range 0 0xFFFF))
    (fun (a, b) ->
      let v, _ =
        eval_with (add Width.W16 (c ~w:Width.W16 a) (c ~w:Width.W16 b))
      in
      Int64.to_int v = (a + b) land 0xFFFF)

let prop_cmp_matches_reference =
  QCheck.Test.make ~name:"unsigned comparisons match reference" ~count:500
    QCheck.(pair (int_range 0 0xFFFF) (int_range 0 0xFFFF))
    (fun (a, b) ->
      let t e = fst (eval_with e) = 1L in
      t (c a <% c b) = (a < b)
      && t (c a <=% c b) = (a <= b)
      && t (c a ==% c b) = (a = b))

(* --- Interpreter ----------------------------------------------------- *)

let tiny_layout =
  Layout.make
    [
      Layout.reg "x" Width.W32;
      Layout.reg "y" Width.W32;
      Layout.fn_ptr ~init:0x100L "cb";
      Layout.buf "buf" 8;
    ]

let tiny_program
    ?(callbacks = [ (0x100L, { Program.cb_name = "cb"; action = Program.Raise_irq_line }) ])
    handlers =
  Program.make ~name:"tiny" ~layout:tiny_layout ~callbacks handlers

let run_tiny ?(params = []) ?hooks ?config program handler =
  let arena = Arena.create tiny_layout in
  let interp =
    Interp.create ?config ?hooks ~program ~arena ~guest:Interp.null_guest ()
  in
  (Interp.run interp ~handler ~params, arena, interp)

let test_interp_straightline () =
  let p =
    tiny_program
      [
        handler "h" ~params:[]
          [
            entry "e" [ set "x" (c 3) ] (goto "next");
            blk "next" [ set "y" (fld "x" +% c 1); respond (fld "y") ] (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let outcome, arena, _ = run_tiny p "h" in
  (match outcome with
  | Interp.Event.Done { response = Some 4L } -> ()
  | o ->
    Alcotest.failf "unexpected outcome %s"
      (Format.asprintf "%a" Interp.Event.pp_outcome o));
  Alcotest.(check int64) "y" 4L (Arena.get arena "y")

let test_interp_branch_directions () =
  let p =
    tiny_program
      [
        handler "h" ~params:[ "v" ]
          [
            entry "e" [] (br (prm "v" >% c 10) "big" "small");
            blk "big" [ set "x" (c 1) ] (goto "out");
            blk "small" [ set "x" (c 2) ] (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let _, arena, _ = run_tiny ~params:[ ("v", 50L) ] p "h" in
  Alcotest.(check int64) "taken" 1L (Arena.get arena "x");
  let _, arena, _ = run_tiny ~params:[ ("v", 5L) ] p "h" in
  Alcotest.(check int64) "not taken" 2L (Arena.get arena "x")

let test_interp_switch_default () =
  let p =
    tiny_program
      [
        handler "h" ~params:[ "v" ]
          [
            entry "e" [] (switch (prm "v") [ (1, "one") ] "other");
            blk "one" [ set "x" (c 11) ] (goto "out");
            blk "other" [ set "x" (c 99) ] (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let _, arena, _ = run_tiny ~params:[ ("v", 1L) ] p "h" in
  Alcotest.(check int64) "case" 11L (Arena.get arena "x");
  let _, arena, _ = run_tiny ~params:[ ("v", 7L) ] p "h" in
  Alcotest.(check int64) "default" 99L (Arena.get arena "x")

let test_interp_icall_and_wild_jump () =
  let p =
    tiny_program
      [
        handler "h" ~params:[]
          [ entry "e" [] (icall (fld "cb") "out"); exit_ "out" [] ];
      ]
  in
  let irqs = ref 0 in
  let hooks =
    { Interp.silent_hooks with Interp.on_irq = (fun up -> if up then incr irqs) }
  in
  let outcome, _, _ = run_tiny ~hooks p "h" in
  Alcotest.(check bool) "done" true (outcome = Interp.Event.Done { response = None });
  Alcotest.(check int) "irq raised" 1 !irqs;
  let arena = Arena.create tiny_layout in
  Arena.set arena "cb" 0xBADL;
  let interp = Interp.create ~program:p ~arena ~guest:Interp.null_guest () in
  match Interp.run interp ~handler:"h" ~params:[] with
  | Interp.Event.Trapped (Interp.Event.Wild_jump { target = 0xBADL; _ }) -> ()
  | o ->
    Alcotest.failf "expected wild jump, got %s"
      (Format.asprintf "%a" Interp.Event.pp_outcome o)

let test_interp_icall_guard () =
  let p =
    tiny_program
      [
        handler "h" ~params:[]
          [ entry "e" [] (icall (fld "cb") "out"); exit_ "out" [] ];
      ]
  in
  let arena = Arena.create tiny_layout in
  let interp = Interp.create ~program:p ~arena ~guest:Interp.null_guest () in
  Interp.set_icall_guard interp (Some (fun _ _ -> false));
  (match Interp.run interp ~handler:"h" ~params:[] with
  | Interp.Event.Trapped (Interp.Event.Icall_blocked { target = 0x100L; _ }) -> ()
  | o ->
    Alcotest.failf "expected guard block, got %s"
      (Format.asprintf "%a" Interp.Event.pp_outcome o));
  Interp.clear_icall_guard interp;
  Alcotest.(check bool) "guard cleared" true
    (Interp.run interp ~handler:"h" ~params:[] = Interp.Event.Done { response = None })

let test_interp_step_limit () =
  let p =
    tiny_program
      [
        handler "h" ~params:[]
          [ entry "e" [] (goto "spin"); blk "spin" [] (goto "spin"); exit_ "out" [] ];
      ]
  in
  let outcome, _, _ =
    run_tiny ~config:{ Interp.step_limit = 100; depth_limit = 4 } p "h"
  in
  Alcotest.(check bool) "hangs" true
    (outcome = Interp.Event.Trapped Interp.Event.Step_limit)

let test_interp_depth_limit () =
  let p =
    tiny_program
      ~callbacks:
        [ (0x100L, { Program.cb_name = "rec"; action = Program.Run_handler "h" }) ]
      [
        handler "h" ~params:[]
          [ entry "e" [] (icall (fld "cb") "out"); exit_ "out" [] ];
      ]
  in
  let outcome, _, _ = run_tiny p "h" in
  Alcotest.(check bool) "depth limit" true
    (outcome = Interp.Event.Trapped Interp.Event.Depth_limit)

let test_interp_chained_handler () =
  let p =
    tiny_program
      ~callbacks:
        [ (0x100L, { Program.cb_name = "sub"; action = Program.Run_handler "sub" }) ]
      [
        handler "h" ~params:[]
          [
            entry "e" [ set "x" (c 1) ] (icall (fld "cb") "after");
            blk "after" [ set "y" (fld "y" +% c 10) ] (goto "out");
            exit_ "out" [];
          ];
        handler "sub" ~params:[]
          [ entry "se" [ set "y" (c 5) ] (goto "sout"); exit_ "sout" [] ];
      ]
  in
  let _, arena, _ = run_tiny p "h" in
  Alcotest.(check int64) "chain ran before continuation" 15L (Arena.get arena "y")

let test_interp_oob_hook_and_trap () =
  let p =
    tiny_program
      [
        handler "h" ~params:[ "i" ]
          [
            entry "e" [ setb "buf" (prm "i") (c 0xAB) ] (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let oob = ref [] in
  let hooks =
    { Interp.silent_hooks with Interp.on_oob = (fun e -> oob := e :: !oob) }
  in
  (* buf is the last field, so index 9 escapes the whole structure. *)
  let outcome, _, _ = run_tiny ~hooks ~params:[ ("i", 9L) ] p "h" in
  Alcotest.(check bool) "trap on escape" true
    (match outcome with
    | Interp.Event.Trapped (Interp.Event.Out_of_arena _) -> true
    | _ -> false);
  Alcotest.(check int) "oob event fired" 1 (List.length !oob)

let test_interp_host_values () =
  let p =
    tiny_program
      [
        handler "h" ~params:[]
          [
            entry "e" [ hostv "hv" "link"; set "x" (lcl "hv") ] (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let arena = Arena.create tiny_layout in
  let interp = Interp.create ~program:p ~arena ~guest:Interp.null_guest () in
  Interp.set_host_values interp (fun key -> if key = "link" then 7L else 0L);
  ignore (Interp.run interp ~handler:"h" ~params:[]);
  Alcotest.(check int64) "host value loaded" 7L (Arena.get arena "x")

let test_interp_sync_points () =
  let p =
    tiny_program
      [
        handler "h" ~params:[]
          [
            entry "e" [ local "t" (c 42); set "x" (lcl "t") ] (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let arena = Arena.create tiny_layout in
  let interp = Interp.create ~program:p ~arena ~guest:Interp.null_guest () in
  let synced = ref [] in
  Interp.set_sync_points interp
    [ ({ Program.handler = "h"; label = "e" }, [ "t" ]) ]
    ~on_sync:(fun _ values -> synced := values @ !synced);
  ignore (Interp.run interp ~handler:"h" ~params:[]);
  Alcotest.(check (list (pair string int64))) "synced" [ ("t", 42L) ] !synced

let test_interp_observation () =
  let p =
    tiny_program
      [
        handler "h" ~params:[ "v" ]
          [
            entry "e" [] (br (prm "v" >% c 0) "a" "b");
            blk "a" [ set "x" (c 1) ] (goto "out");
            blk "b" [ set "x" (c 2) ] (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let arena = Arena.create tiny_layout in
  let entries = ref [] in
  let hooks =
    { Interp.silent_hooks with Interp.on_observe = (fun e -> entries := e :: !entries) }
  in
  let interp = Interp.create ~hooks ~program:p ~arena ~guest:Interp.null_guest () in
  Interp.set_observation interp
    ~points:[ { Program.handler = "h"; label = "e" } ]
    ~state_params:[ "x" ];
  ignore (Interp.run interp ~handler:"h" ~params:[ ("v", 1L) ]);
  match !entries with
  | [ e ] ->
    Alcotest.(check bool) "taken outcome" true
      (e.Interp.Event.outcome = Interp.Event.O_taken);
    Alcotest.(check (list (pair string int64))) "state" [ ("x", 0L) ]
      e.Interp.Event.state
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_guest_memory_dma () =
  let p =
    tiny_program
      [
        handler "h" ~params:[ "addr" ]
          [
            entry "e"
              [
                dma_in ~buf:"buf" ~buf_off:(c 0) ~addr:(prm "addr") ~len:(c 4);
                Stmt.Read_guest { local = "g"; addr = prm "addr"; width = Width.W32 };
                set "x" (lcl "g");
              ]
              (goto "out");
            exit_ "out" [];
          ];
      ]
  in
  let mem = Bytes.make 64 '\000' in
  Bytes.set mem 8 '\x78';
  Bytes.set mem 9 '\x56';
  Bytes.set mem 10 '\x34';
  Bytes.set mem 11 '\x12';
  let arena = Arena.create tiny_layout in
  let interp = Interp.create ~program:p ~arena ~guest:(Interp.bytes_guest mem) () in
  ignore (Interp.run interp ~handler:"h" ~params:[ ("addr", 8L) ]);
  Alcotest.(check int64) "little-endian load" 0x12345678L (Arena.get arena "x");
  Alcotest.(check int) "dma byte" 0x78 (Arena.get_buf_byte arena "buf" 0)

let () =
  Alcotest.run "interp"
    [
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arith;
          Alcotest.test_case "comparisons" `Quick test_eval_cmp;
          Alcotest.test_case "add overflow" `Quick test_eval_overflow_add;
          Alcotest.test_case "sub underflow (CVE-2021-3409 shape)" `Quick
            test_eval_overflow_sub;
          Alcotest.test_case "mul overflow" `Quick test_eval_overflow_mul;
          Alcotest.test_case "shl overflow" `Quick test_eval_shl_overflow;
          Alcotest.test_case "no false positives" `Quick test_eval_no_false_overflow;
          Alcotest.test_case "div by zero" `Quick test_eval_div_zero;
          Alcotest.test_case "undefined names" `Quick test_eval_undefined;
          QCheck_alcotest.to_alcotest prop_add_matches_reference;
          QCheck_alcotest.to_alcotest prop_cmp_matches_reference;
        ] );
      ( "interpreter",
        [
          Alcotest.test_case "straight line" `Quick test_interp_straightline;
          Alcotest.test_case "branch directions" `Quick test_interp_branch_directions;
          Alcotest.test_case "switch and default" `Quick test_interp_switch_default;
          Alcotest.test_case "icall and wild jump" `Quick test_interp_icall_and_wild_jump;
          Alcotest.test_case "icall guard" `Quick test_interp_icall_guard;
          Alcotest.test_case "step limit (hang)" `Quick test_interp_step_limit;
          Alcotest.test_case "depth limit" `Quick test_interp_depth_limit;
          Alcotest.test_case "chained handler" `Quick test_interp_chained_handler;
          Alcotest.test_case "oob hook and trap" `Quick test_interp_oob_hook_and_trap;
          Alcotest.test_case "host values" `Quick test_interp_host_values;
          Alcotest.test_case "sync points" `Quick test_interp_sync_points;
          Alcotest.test_case "observation points" `Quick test_interp_observation;
          Alcotest.test_case "guest memory dma" `Quick test_guest_memory_dma;
        ] );
    ]
