(* Tests for the PT simulator: packet encoding, address filtering, decoder
   fidelity (the decoded path must equal the executed path on every device)
   and the ITC-CFG construction. *)

open Devir

module Prng = Sedspec_util.Prng

let test_packet_sizes () =
  Alcotest.(check int) "psb" 16 (Iptrace.Packet.encoded_size Iptrace.Packet.Psb);
  Alcotest.(check int) "tip" 7 (Iptrace.Packet.encoded_size (Iptrace.Packet.Tip 0L));
  Alcotest.(check int) "tnt" 1
    (Iptrace.Packet.encoded_size (Iptrace.Packet.Tnt_short [ true ]))

let test_filter () =
  let f = Iptrace.Filter.make ~ranges:[ (0x100L, 0x200L) ] in
  Alcotest.(check bool) "inside" true (Iptrace.Filter.contains f 0x100L);
  Alcotest.(check bool) "upper bound exclusive" false (Iptrace.Filter.contains f 0x200L);
  Alcotest.(check bool) "outside" false (Iptrace.Filter.contains f 0x99L);
  Alcotest.(check bool) "kernel excluded" false
    (Iptrace.Filter.contains f Iptrace.Filter.kernel_base)

let test_filter_for_program () =
  let p = Devices.Fdc.program ~version:(Devices.Qemu_version.v 2 3 0) in
  let f = Iptrace.Filter.for_program p in
  let lo, _ = Program.code_range p in
  Alcotest.(check bool) "covers code" true (Iptrace.Filter.contains f lo);
  Alcotest.(check bool) "covers callback value" true
    (Iptrace.Filter.contains f Devices.Fdc.irq_cb)

let test_encoder_tnt_packing () =
  let f = Iptrace.Filter.make ~ranges:[ (0L, 0x1000L) ] in
  let enc = Iptrace.Encoder.create f in
  Iptrace.Encoder.feed enc (Interp.Event.Pge 0x10L);
  for _ = 1 to 7 do
    Iptrace.Encoder.feed enc (Interp.Event.Tnt true)
  done;
  Iptrace.Encoder.feed enc Interp.Event.Pgd;
  let tnts =
    List.filter_map
      (function Iptrace.Packet.Tnt_short bits -> Some (List.length bits) | _ -> None)
      (Iptrace.Encoder.packets enc)
  in
  Alcotest.(check (list int)) "6+1 packing" [ 6; 1 ] tnts

let test_encoder_window_suppression () =
  (* A PGE outside the filter suppresses the whole window. *)
  let f = Iptrace.Filter.make ~ranges:[ (0L, 0x100L) ] in
  let enc = Iptrace.Encoder.create f in
  Iptrace.Encoder.feed enc (Interp.Event.Pge Iptrace.Filter.kernel_base);
  Iptrace.Encoder.feed enc (Interp.Event.Tnt true);
  Iptrace.Encoder.feed enc (Interp.Event.Tip 0x50L);
  Iptrace.Encoder.feed enc Interp.Event.Pgd;
  Alcotest.(check int) "nothing emitted" 0
    (List.length (Iptrace.Encoder.packets enc));
  (* An in-range window afterwards is captured normally. *)
  Iptrace.Encoder.feed enc (Interp.Event.Pge 0x10L);
  Iptrace.Encoder.feed enc Interp.Event.Pgd;
  Alcotest.(check bool) "window captured" true
    (List.length (Iptrace.Encoder.packets enc) >= 3)

let test_encoder_clear () =
  let f = Iptrace.Filter.make ~ranges:[ (0L, 0x100L) ] in
  let enc = Iptrace.Encoder.create f in
  Iptrace.Encoder.feed enc (Interp.Event.Pge 0x10L);
  Iptrace.Encoder.clear enc;
  Alcotest.(check int) "cleared" 0 (List.length (Iptrace.Encoder.packets enc))

(* Decoder fidelity: execute benign traffic on a device, encode, decode,
   and compare block-by-block with what actually ran. *)
let roundtrip_device (module W : Workload.Samples.DEVICE_WORKLOAD) ops_seed =
  let m = W.make_machine W.paper_version in
  let interp = Vmm.Machine.interp_of m W.device_name in
  let program = Interp.program interp in
  let enc = Iptrace.Encoder.create (Iptrace.Filter.for_program program) in
  let executed = ref [] in
  let saved = Interp.hooks interp in
  Interp.set_hooks interp
    {
      saved with
      Interp.on_trace = Iptrace.Encoder.feed enc;
      on_block = (fun bref _ -> executed := bref :: !executed);
    };
  let rng = Prng.create ops_seed in
  W.soak_case ~mode:Workload.Samples.Random ~rng ~rare_prob:0.05 ~ops:6 m;
  Interp.set_hooks interp saved;
  let traces = Iptrace.Decoder.decode program (Iptrace.Encoder.packets enc) in
  let decoded =
    List.concat_map (List.map (fun (s : Iptrace.Decoder.step) -> s.block)) traces
  in
  let executed = List.rev !executed in
  Alcotest.(check int)
    (W.device_name ^ " lengths")
    (List.length executed) (List.length decoded);
  List.iter2
    (fun a b ->
      if not (Program.bref_equal a b) then
        Alcotest.failf "%s: decoded %s but executed %s" W.device_name
          (Program.bref_to_string b) (Program.bref_to_string a))
    executed decoded

let test_roundtrip_all_devices () =
  List.iter (fun w -> roundtrip_device w 13L) Workload.Samples.all

let prop_roundtrip_random_seeds =
  QCheck.Test.make ~name:"decode = execution for random benign traffic"
    ~count:10 QCheck.int64
    (fun seed ->
      List.iter (fun w -> roundtrip_device w seed) Workload.Samples.all;
      true)

let test_decoder_desync_detection () =
  let p = Devices.Fdc.program ~version:(Devices.Qemu_version.v 2 3 0) in
  Alcotest.(check bool) "bad preamble raises" true
    (try
       ignore (Iptrace.Decoder.decode p [ Iptrace.Packet.Tip 0L ]);
       false
     with Iptrace.Decoder.Desync _ -> true)

let test_itc_cfg_counts () =
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine W.paper_version in
  let interp = Vmm.Machine.interp_of m "fdc" in
  let program = Interp.program interp in
  let enc = Iptrace.Encoder.create (Iptrace.Filter.for_program program) in
  Interp.set_hooks interp
    { (Interp.hooks interp) with Interp.on_trace = Iptrace.Encoder.feed enc };
  let trainer = W.trainer ~cases:4 in
  for case = 0 to 3 do
    trainer.Sedspec.Pipeline.run_case m case
  done;
  let traces = Iptrace.Decoder.decode program (Iptrace.Encoder.packets enc) in
  let itc = Iptrace.Itc_cfg.create program in
  List.iter (Iptrace.Itc_cfg.add_trace itc) traces;
  Alcotest.(check bool) "blocks observed" true (Iptrace.Itc_cfg.block_count itc > 20);
  Alcotest.(check bool) "edges observed" true (Iptrace.Itc_cfg.edge_count itc > 20);
  Alcotest.(check bool) "conditionals found" true
    (Iptrace.Itc_cfg.conditional_nodes itc <> []);
  (* The irq callback target must have been connected. *)
  let icalls = Iptrace.Itc_cfg.indirect_nodes itc in
  Alcotest.(check bool) "indirect targets connected" true
    (List.exists
       (fun (n : Iptrace.Itc_cfg.node) ->
         List.mem_assoc Devices.Fdc.irq_cb n.itargets)
       icalls);
  (* Visit counts are consistent. *)
  List.iter
    (fun (n : Iptrace.Itc_cfg.node) ->
      if Iptrace.Itc_cfg.one_sided n then
        Alcotest.(check bool) "one-sided has visits" true (n.visits > 0))
    (Iptrace.Itc_cfg.conditional_nodes itc)

let test_trace_volume_reported () =
  let f = Iptrace.Filter.make ~ranges:[ (0L, 0x1000L) ] in
  let enc = Iptrace.Encoder.create f in
  Iptrace.Encoder.feed enc (Interp.Event.Pge 0x10L);
  Iptrace.Encoder.feed enc (Interp.Event.Tnt false);
  Iptrace.Encoder.feed enc Interp.Event.Pgd;
  Alcotest.(check int) "bytes" (16 + 2 + 7 + 1 + 2) (Iptrace.Encoder.trace_bytes enc)

let () =
  Alcotest.run "iptrace"
    [
      ( "packets",
        [
          Alcotest.test_case "sizes" `Quick test_packet_sizes;
          Alcotest.test_case "volume" `Quick test_trace_volume_reported;
        ] );
      ( "filter",
        [
          Alcotest.test_case "ranges" `Quick test_filter;
          Alcotest.test_case "for_program" `Quick test_filter_for_program;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "tnt packing" `Quick test_encoder_tnt_packing;
          Alcotest.test_case "window suppression" `Quick test_encoder_window_suppression;
          Alcotest.test_case "clear" `Quick test_encoder_clear;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "roundtrip on all devices" `Quick test_roundtrip_all_devices;
          QCheck_alcotest.to_alcotest prop_roundtrip_random_seeds;
          Alcotest.test_case "desync detection" `Quick test_decoder_desync_detection;
        ] );
      ( "itc-cfg",
        [ Alcotest.test_case "construction counts" `Quick test_itc_cfg_counts ] );
    ]
