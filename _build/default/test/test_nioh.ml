(* Tests for the Nioh baseline: the hand-written state machines accept all
   benign traffic, detect their experiment's five CVEs, and diverge from
   SEDSpec exactly where the paper says (the use-after-free analog). *)

let () = Metrics.Spec_cache.training_cases := 12

let devices_with_models = [ "fdc"; "scsi"; "pcnet" ]

let test_models_exist () =
  List.iter
    (fun d ->
      Alcotest.(check bool) (d ^ " has a model") true (Nioh.spec_for d <> None))
    devices_with_models;
  Alcotest.(check bool) "no model for sdhci" true (Nioh.spec_for "sdhci" = None)

let test_benign_traffic_accepted () =
  List.iter
    (fun device ->
      let w = Workload.Samples.find device in
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let m = W.make_machine W.paper_version in
      let monitor = Nioh.attach m (Option.get (Nioh.spec_for device)) in
      let rng = Sedspec_util.Prng.create 33L in
      (* Rare maintenance commands included: the manual model covers them,
         so unlike SEDSpec's learned model, Nioh has no rare-command FPs. *)
      for _ = 1 to 12 do
        W.soak_case ~mode:Workload.Samples.Random ~rng ~rare_prob:0.1 ~ops:8 m
      done;
      let anoms = Nioh.drain_anomalies monitor in
      if anoms <> [] then
        Alcotest.failf "%s: nioh flagged benign traffic: %s" device
          (Format.asprintf "%a" Nioh.pp_anomaly (List.hd anoms)))
    devices_with_models

let test_trainer_traffic_accepted () =
  List.iter
    (fun device ->
      let w = Workload.Samples.find device in
      let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
      let m = W.make_machine W.paper_version in
      let monitor = Nioh.attach m (Option.get (Nioh.spec_for device)) in
      let trainer = W.trainer ~cases:8 in
      for case = 0 to 7 do
        trainer.Sedspec.Pipeline.run_case m case
      done;
      Alcotest.(check int) (device ^ " trainer clean") 0
        (List.length (Nioh.drain_anomalies monitor)))
    devices_with_models

let test_nioh_detects_its_five_cves () =
  List.iter
    (fun (v : Metrics.Baseline.verdict) ->
      Alcotest.(check bool) (v.cve ^ " detected by nioh") true v.nioh_detected)
    (Metrics.Baseline.run ())

let test_divergence_matches_paper () =
  let verdicts = Metrics.Baseline.run () in
  List.iter
    (fun (v : Metrics.Baseline.verdict) ->
      let expected_sedspec = v.cve <> "CVE-2016-1568" in
      Alcotest.(check bool) (v.cve ^ " sedspec verdict") expected_sedspec
        v.sedspec_detected)
    verdicts

let test_venom_blocked_before_crash () =
  (* Nioh's command-length invariant stops venom long before the FIFO
     overflows. *)
  let w = Workload.Samples.find "fdc" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine (Devices.Qemu_version.v 2 3 0) in
  let monitor = Nioh.attach m Nioh.fdc_spec in
  let port = Int64.add Devices.Fdc.io_base 5L in
  ignore (Workload.Io.outb m port 0x8E);
  let sent = ref 0 in
  (try
     for _ = 1 to 600 do
       match Workload.Io.outb m port 0x01 with
       | Workload.Io.R_ok _ -> incr sent
       | _ -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "blocked early" true (!sent < 20);
  Alcotest.(check bool) "anomaly recorded" true (Nioh.anomalies monitor <> []);
  Alcotest.(check bool) "vm halted" true (Vmm.Machine.halted m)

let test_resync_after_halt () =
  let w = Workload.Samples.find "scsi" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine (Devices.Qemu_version.v 2 4 0) in
  let monitor = Nioh.attach m Nioh.scsi_spec in
  let d = Workload.Scsi_driver.create m in
  ignore (Workload.Scsi_driver.reset d);
  ignore (Workload.Scsi_driver.test_unit_ready d);
  (* Illegal replayed completion: halted. *)
  ignore (Workload.Scsi_driver.iccs d);
  Alcotest.(check bool) "halted on replayed iccs" true (Vmm.Machine.halted m);
  Vmm.Machine.resume m;
  Nioh.resync monitor;
  ignore (Nioh.drain_anomalies monitor);
  Alcotest.(check bool) "works after resync" true
    (Workload.Scsi_driver.test_unit_ready d);
  Alcotest.(check int) "clean after resync" 0
    (List.length (Nioh.drain_anomalies monitor))

let () =
  Alcotest.run "nioh"
    [
      ( "models",
        [
          Alcotest.test_case "exist for the nioh devices" `Quick test_models_exist;
          Alcotest.test_case "accept benign soak traffic" `Quick
            test_benign_traffic_accepted;
          Alcotest.test_case "accept trainer traffic" `Quick
            test_trainer_traffic_accepted;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "nioh detects its five CVEs" `Slow
            test_nioh_detects_its_five_cves;
          Alcotest.test_case "divergence matches the paper" `Slow
            test_divergence_matches_paper;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "venom blocked before crash" `Quick
            test_venom_blocked_before_crash;
          Alcotest.test_case "resync after halt" `Quick test_resync_after_halt;
        ] );
    ]
