(* Tests for the static analyses: def-use chains, branch-influencing
   variable extraction, expression recovery (the angr substitute) and
   buffer-content relevance. *)

open Devir
open Devir.Dsl

let mk_handler blocks = handler "h" ~params:[ "data" ] blocks

let test_defuse_definitions () =
  let h =
    mk_handler
      [
        entry "e" [ local "t" (fld "a" +% c 1); local "t" (fld "a" +% c 1) ] (goto "x");
        exit_ "x" [];
      ]
  in
  let du = Progan.Defuse.analyze h in
  Alcotest.(check int) "two defs" 2 (List.length (Progan.Defuse.definitions du "t"));
  Alcotest.(check int) "none" 0 (List.length (Progan.Defuse.definitions du "u"))

let test_influencing_fields_transitive () =
  let h =
    mk_handler
      [
        entry "e"
          [ local "t" (fld "a" +% c 1); local "u" (lcl "t" *% fld "b") ]
          (br (lcl "u" >% c 0) "x" "x");
        exit_ "x" [];
      ]
  in
  let du = Progan.Defuse.analyze h in
  Alcotest.(check (list string)) "fields through two hops" [ "a"; "b" ]
    (List.sort compare (Progan.Defuse.influencing_fields du (lcl "u" >% c 0)))

let test_influencing_guest_is_opaque () =
  let h =
    mk_handler
      [
        entry "e"
          [ Stmt.Read_guest { local = "g"; addr = c 0; width = Width.W32 } ]
          (br (lcl "g" ==% c 1) "x" "x");
        exit_ "x" [];
      ]
  in
  let du = Progan.Defuse.analyze h in
  Alcotest.(check (list string)) "no fields through guest loads" []
    (Progan.Defuse.influencing_fields du (lcl "g" ==% c 1))

let test_recover_single_def () =
  let h =
    mk_handler
      [ entry "e" [ local "t" (fld "a" +% prm "data") ] (goto "x"); exit_ "x" [] ]
  in
  let du = Progan.Defuse.analyze h in
  match Progan.Defuse.recover du (lcl "t" >% c 5) with
  | Some e ->
    Alcotest.(check (list string)) "expr over fields" [ "a" ] (Expr.fields e);
    Alcotest.(check (list string)) "no locals" [] (Expr.locals e)
  | None -> Alcotest.fail "expected recovery"

let test_recover_fails_on_guest () =
  let h =
    mk_handler
      [
        entry "e"
          [ Stmt.Read_guest { local = "t"; addr = c 0; width = Width.W32 } ]
          (goto "x");
        exit_ "x" [];
      ]
  in
  let du = Progan.Defuse.analyze h in
  Alcotest.(check bool) "unrecoverable" true
    (Progan.Defuse.recover du (lcl "t") = None)

let test_recover_fails_on_conflicting_defs () =
  let h =
    mk_handler
      [ entry "e" [ local "t" (c 1); local "t" (c 2) ] (goto "x"); exit_ "x" [] ]
  in
  let du = Progan.Defuse.analyze h in
  Alcotest.(check bool) "conflicting defs" true
    (Progan.Defuse.recover du (lcl "t") = None)

let test_recover_identical_defs_ok () =
  let h =
    mk_handler
      [ entry "e" [ local "t" (fld "a"); local "t" (fld "a") ] (goto "x"); exit_ "x" [] ]
  in
  let du = Progan.Defuse.analyze h in
  Alcotest.(check bool) "identical defs recover" true
    (Progan.Defuse.recover du (lcl "t") <> None)

let test_recover_terminates_on_cycle () =
  let h =
    mk_handler
      [ entry "e" [ local "i" (lcl "i" +% c 1) ] (goto "x"); exit_ "x" [] ]
  in
  let du = Progan.Defuse.analyze h in
  Alcotest.(check bool) "self-reference fails gracefully" true
    (Progan.Defuse.recover du (lcl "i") = None)

(* Usage facts on the real FDC model. *)
let fdc = Devices.Fdc.program ~version:(Devices.Qemu_version.v 2 3 0)

let test_usage_fdc_indexers () =
  let usage = Progan.Usage.analyze fdc in
  let data_pos = Progan.Usage.fact usage "data_pos" in
  Alcotest.(check bool) "data_pos indexes fifo" true
    (List.mem "fifo" data_pos.indexes_buffers);
  Alcotest.(check bool) "data_pos influences branches" true
    (data_pos.influences_branches <> []);
  let fifo = Progan.Usage.fact usage "fifo" in
  Alcotest.(check bool) "fifo is an indexed buffer" true fifo.is_indexed_buffer;
  let irq = Progan.Usage.fact usage "irq" in
  Alcotest.(check bool) "irq is called" true irq.is_called;
  let tdr = Progan.Usage.fact usage "tdr" in
  Alcotest.(check bool) "tdr indexes nothing" true (tdr.indexes_buffers = [])

let test_usage_branch_sites () =
  let usage = Progan.Usage.analyze fdc in
  let sites = Progan.Usage.branch_sites usage in
  Alcotest.(check bool) "many sites" true (List.length sites > 20);
  let bref : Program.bref = { handler = "write"; label = "w_cmd_phase" } in
  Alcotest.(check bool) "data_pos influences w_cmd_phase" true
    (List.mem "data_pos" (Progan.Usage.fields_influencing usage bref))

(* Relevance on the real device models. *)
let relevance_of program = Progan.Relevance.relevant_buffers program

let test_relevance_fdc () =
  (* FDC FIFO bytes flow only into data sinks (CHS fields feed the sector
     pattern and result staging, never a branch or index), so its content
     is NOT relevant — the checker skips replaying it. *)
  let r = relevance_of fdc in
  Alcotest.(check bool) "fifo content not control-relevant" false
    (List.mem "fifo" r)

let test_relevance_ehci () =
  let p = Devices.Ehci.program ~version:(Devices.Qemu_version.v 5 1 0) in
  let r = relevance_of p in
  Alcotest.(check bool) "setup_buf relevant" true (List.mem "setup_buf" r);
  Alcotest.(check bool) "data_buf NOT relevant (bulk data)" false
    (List.mem "data_buf" r)

let test_relevance_pcnet () =
  let p = Devices.Pcnet.program ~version:(Devices.Qemu_version.v 2 4 0) in
  let r = relevance_of p in
  Alcotest.(check bool) "frame buffer NOT relevant" false (List.mem "buffer" r)

let test_relevance_scsi () =
  let p = Devices.Scsi.program ~version:(Devices.Qemu_version.v 2 4 0) in
  let r = relevance_of p in
  Alcotest.(check bool) "cmdbuf relevant" true (List.mem "cmdbuf" r);
  Alcotest.(check bool) "cdb relevant" true (List.mem "cdb" r);
  Alcotest.(check bool) "dma bounce buffer NOT relevant" false
    (List.mem "dma_buf" r)

let test_relevance_sdhci () =
  let p = Devices.Sdhci.program ~version:(Devices.Qemu_version.v 5 2 0) in
  let r = relevance_of p in
  Alcotest.(check bool) "fifo_buffer NOT relevant" false (List.mem "fifo_buffer" r)

let () =
  Alcotest.run "progan"
    [
      ( "defuse",
        [
          Alcotest.test_case "definitions" `Quick test_defuse_definitions;
          Alcotest.test_case "transitive fields" `Quick test_influencing_fields_transitive;
          Alcotest.test_case "guest loads are opaque" `Quick test_influencing_guest_is_opaque;
        ] );
      ( "recover",
        [
          Alcotest.test_case "single def" `Quick test_recover_single_def;
          Alcotest.test_case "guest def fails" `Quick test_recover_fails_on_guest;
          Alcotest.test_case "conflicting defs fail" `Quick test_recover_fails_on_conflicting_defs;
          Alcotest.test_case "identical defs ok" `Quick test_recover_identical_defs_ok;
          Alcotest.test_case "cycles terminate" `Quick test_recover_terminates_on_cycle;
        ] );
      ( "usage",
        [
          Alcotest.test_case "fdc indexers" `Quick test_usage_fdc_indexers;
          Alcotest.test_case "branch sites" `Quick test_usage_branch_sites;
        ] );
      ( "relevance",
        [
          Alcotest.test_case "fdc" `Quick test_relevance_fdc;
          Alcotest.test_case "ehci" `Quick test_relevance_ehci;
          Alcotest.test_case "pcnet" `Quick test_relevance_pcnet;
          Alcotest.test_case "scsi" `Quick test_relevance_scsi;
          Alcotest.test_case "sdhci" `Quick test_relevance_sdhci;
        ] );
    ]
