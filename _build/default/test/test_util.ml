(* Unit and property tests for the utility library. *)

module Prng = Sedspec_util.Prng
module Table = Sedspec_util.Table

let test_determinism () =
  let a = Prng.create 1L and b = Prng.create 1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_distinct_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.next a <> Prng.next b then differs := true
  done;
  Alcotest.(check bool) "different streams" true !differs

let test_copy () =
  let a = Prng.create 7L in
  ignore (Prng.next a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.next a) (Prng.next b)

let test_split_independent () =
  let a = Prng.create 3L in
  let child = Prng.split a in
  Alcotest.(check bool) "child differs from parent" true
    (Prng.next child <> Prng.next a)

let test_pick_and_shuffle () =
  let rng = Prng.create 11L in
  let arr = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick in range" true (Array.mem (Prng.pick rng arr) arr)
  done;
  let arr2 = Array.init 10 Fun.id in
  Prng.shuffle rng arr2;
  let sorted = Array.copy arr2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 10 Fun.id) sorted

let test_bytes_len () =
  let rng = Prng.create 5L in
  Alcotest.(check int) "bytes length" 33 (Bytes.length (Prng.bytes rng 33))

let prop_int_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_int_in =
  QCheck.Test.make ~name:"prng int_in inclusive bounds" ~count:500
    QCheck.(triple int64 (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, extra) ->
      let hi = lo + extra in
      let rng = Prng.create seed in
      let v = Prng.int_in rng lo hi in
      v >= lo && v <= hi)

let prop_float_bounds =
  QCheck.Test.make ~name:"prng float stays in bounds" ~count:500 QCheck.int64
    (fun seed ->
      let rng = Prng.create seed in
      let v = Prng.float rng 2.5 in
      v >= 0.0 && v < 2.5)

let prop_chance_extremes =
  QCheck.Test.make ~name:"chance 0 never, 1 always" ~count:200 QCheck.int64
    (fun seed ->
      let rng = Prng.create seed in
      (not (Prng.chance rng 0.0)) && Prng.chance (Prng.create seed) 1.0)

let test_table_render () =
  let s =
    Table.render ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains padded cell" true
    (String.length s > 0
     &&
     (* every line same width *)
     let lines = String.split_on_char '\n' (String.trim s) in
     match lines with
     | l :: rest -> List.for_all (fun l' -> String.length l' = String.length l) rest
     | [] -> false)

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fmt_pct () =
  Alcotest.(check string) "pct" "0.14%" (Table.fmt_pct 0.0014);
  Alcotest.(check string) "pct 100" "100.00%" (Table.fmt_pct 1.0)

let test_fmt_float () =
  Alcotest.(check string) "default digits" "1.50" (Table.fmt_float 1.5);
  Alcotest.(check string) "3 digits" "1.500" (Table.fmt_float ~digits:3 1.5)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "pick and shuffle" `Quick test_pick_and_shuffle;
          Alcotest.test_case "bytes" `Quick test_bytes_len;
          QCheck_alcotest.to_alcotest prop_int_bounds;
          QCheck_alcotest.to_alcotest prop_int_in;
          QCheck_alcotest.to_alcotest prop_float_bounds;
          QCheck_alcotest.to_alcotest prop_chance_extremes;
        ] );
      ( "table",
        [
          Alcotest.test_case "render aligns" `Quick test_table_render;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "fmt_pct" `Quick test_fmt_pct;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
    ]
