(* Tests for the machine substrate: guest memory, IRQ controller, bus
   routing, interposer semantics and VM-halt behaviour. *)

open Devir
open Devir.Dsl

let test_guest_mem_rw () =
  let g = Vmm.Guest_mem.create 256 in
  Vmm.Guest_mem.write g 10L Width.W32 0xCAFEBABEL;
  Alcotest.(check int64) "w32 roundtrip" 0xCAFEBABEL
    (Vmm.Guest_mem.read g 10L Width.W32);
  Alcotest.(check int) "byte order" 0xBE (Vmm.Guest_mem.read_byte g 10L);
  Vmm.Guest_mem.blit_in g 20L (Bytes.of_string "abc");
  Alcotest.(check string) "blit roundtrip" "abc"
    (Bytes.to_string (Vmm.Guest_mem.blit_out g 20L 3))

let test_guest_mem_out_of_range () =
  let g = Vmm.Guest_mem.create 16 in
  Vmm.Guest_mem.write_byte g 100L 0xFF;
  Alcotest.(check int) "oob write dropped, read zero" 0
    (Vmm.Guest_mem.read_byte g 100L)

let test_guest_mem_fill () =
  let g = Vmm.Guest_mem.create 16 in
  Vmm.Guest_mem.fill g 4L 4 0xAA;
  Alcotest.(check int) "filled" 0xAA (Vmm.Guest_mem.read_byte g 7L);
  Alcotest.(check int) "outside fill" 0 (Vmm.Guest_mem.read_byte g 8L)

let test_irq_controller () =
  let irq = Vmm.Irq.create () in
  Vmm.Irq.register irq "dev";
  Alcotest.(check bool) "initially low" false (Vmm.Irq.is_raised irq "dev");
  Vmm.Irq.raise_line irq "dev";
  Vmm.Irq.raise_line irq "dev";
  Alcotest.(check int) "level-triggered count" 1 (Vmm.Irq.raise_count irq "dev");
  Vmm.Irq.lower_line irq "dev";
  Vmm.Irq.raise_line irq "dev";
  Alcotest.(check int) "second edge" 2 (Vmm.Irq.raise_count irq "dev");
  Vmm.Irq.clear_counts irq;
  Alcotest.(check int) "cleared" 0 (Vmm.Irq.raise_count irq "dev")

(* A trivial device for routing tests. *)
let echo_layout = Layout.make [ Layout.reg "last" Width.W32 ]

let echo_program name =
  Program.make ~name ~layout:echo_layout
    [
      handler "write"
        ~params:[ "addr"; "offset"; "size"; "data" ]
        [ entry "e" [ set "last" (prm "data") ] (goto "x"); exit_ "x" [] ];
      handler "read"
        ~params:[ "addr"; "offset"; "size"; "data" ]
        [ entry "e" [ respond (fld "last") ] (goto "x"); exit_ "x" [] ];
    ]

let echo_binding ?(pmio_base = 0x100L) name =
  let program = echo_program name in
  Devices.Device.binding_of ~program
    ~pmio:[ (pmio_base, 8) ]
    ~pmio_read:"read" ~pmio_write:"write" ()

let test_machine_routing () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (echo_binding "echo");
  (match Vmm.Machine.io_write m ~port:0x104L ~size:4 ~data:42L with
  | Vmm.Machine.Io_ok _ -> ()
  | _ -> Alcotest.fail "write failed");
  (match Vmm.Machine.io_read m ~port:0x100L ~size:4 with
  | Vmm.Machine.Io_ok (Some 42L) -> ()
  | _ -> Alcotest.fail "read failed");
  Alcotest.(check bool) "unmapped port" true
    (Vmm.Machine.io_read m ~port:0x900L ~size:1 = Vmm.Machine.Io_no_device)

let test_machine_overlap_rejected () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (echo_binding "a");
  Alcotest.(check bool) "overlap raises" true
    (try
       Vmm.Machine.attach m (echo_binding ~pmio_base:0x104L "b");
       false
     with Invalid_argument _ -> true)

let test_machine_duplicate_rejected () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (echo_binding "a");
  Alcotest.(check bool) "duplicate raises" true
    (try
       Vmm.Machine.attach m (echo_binding ~pmio_base:0x200L "a");
       false
     with Invalid_argument _ -> true)

let test_interposer_halt_blocks_before_execution () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (echo_binding "echo");
  Vmm.Machine.set_interposer m "echo"
    {
      Vmm.Machine.before = (fun _ -> Vmm.Machine.Halt "nope");
      after = (fun _ _ -> Vmm.Machine.Allow);
    };
  (match Vmm.Machine.io_write m ~port:0x100L ~size:4 ~data:7L with
  | Vmm.Machine.Io_blocked "nope" -> ()
  | _ -> Alcotest.fail "expected block");
  Alcotest.(check bool) "vm halted" true (Vmm.Machine.halted m);
  (* Device state untouched. *)
  let arena = Interp.arena (Vmm.Machine.interp_of m "echo") in
  Alcotest.(check int64) "no execution" 0L (Arena.get arena "last");
  (* Further I/O refused until resume. *)
  Alcotest.(check bool) "subsequent io refused" true
    (Vmm.Machine.io_read m ~port:0x100L ~size:4 = Vmm.Machine.Io_vm_halted);
  Vmm.Machine.resume m;
  Vmm.Machine.clear_interposer m "echo";
  Alcotest.(check bool) "resumed" true
    (match Vmm.Machine.io_read m ~port:0x100L ~size:4 with
    | Vmm.Machine.Io_ok _ -> true
    | _ -> false)

let test_interposer_warn_allows () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (echo_binding "echo");
  Vmm.Machine.set_interposer m "echo"
    {
      Vmm.Machine.before = (fun _ -> Vmm.Machine.Warn "careful");
      after = (fun _ _ -> Vmm.Machine.Warn "post");
    };
  (match Vmm.Machine.io_write m ~port:0x100L ~size:4 ~data:9L with
  | Vmm.Machine.Io_ok _ -> ()
  | _ -> Alcotest.fail "warn must allow");
  Alcotest.(check (list string)) "both warnings" [ "careful"; "post" ]
    (Vmm.Machine.warnings m);
  Vmm.Machine.clear_warnings m;
  Alcotest.(check (list string)) "cleared" [] (Vmm.Machine.warnings m)

let test_interposer_sees_request () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (echo_binding "echo");
  let seen = ref [] in
  Vmm.Machine.set_interposer m "echo"
    {
      Vmm.Machine.before =
        (fun req ->
          seen := (req.Vmm.Machine.handler, req.Vmm.Machine.params) :: !seen;
          Vmm.Machine.Allow);
      after = (fun _ _ -> Vmm.Machine.Allow);
    };
  ignore (Vmm.Machine.io_write m ~port:0x102L ~size:2 ~data:5L);
  match !seen with
  | [ ("write", params) ] ->
    Alcotest.(check (option int64)) "offset" (Some 2L) (List.assoc_opt "offset" params);
    Alcotest.(check (option int64)) "data" (Some 5L) (List.assoc_opt "data" params)
  | _ -> Alcotest.fail "interposer not called exactly once"

let test_trap_reporting () =
  let program =
    Program.make ~name:"crash" ~layout:echo_layout
      [
        handler "write"
          ~params:[ "addr"; "offset"; "size"; "data" ]
          [
            entry "e" [] (goto "spin");
            blk "spin" [] (goto "spin");
            exit_ "x" [];
          ];
      ]
  in
  let binding =
    Devices.Device.binding_of ~program ~pmio:[ (0x100L, 8) ] ~pmio_write:"write" ()
  in
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m binding;
  (match Vmm.Machine.io_write m ~port:0x100L ~size:1 ~data:0L with
  | Vmm.Machine.Io_fault Interp.Event.Step_limit -> ()
  | _ -> Alcotest.fail "expected hang fault");
  Alcotest.(check int) "trap recorded" 1 (List.length (Vmm.Machine.last_traps m));
  Vmm.Machine.clear_traps m;
  Alcotest.(check int) "traps cleared" 0 (List.length (Vmm.Machine.last_traps m))

let test_inject () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  Vmm.Machine.attach m (echo_binding "echo");
  match
    Vmm.Machine.inject m ~device:"echo" ~handler:"write"
      ~params:[ ("addr", 0L); ("offset", 0L); ("size", 1L); ("data", 77L) ]
  with
  | Vmm.Machine.Io_ok _ ->
    let arena = Interp.arena (Vmm.Machine.interp_of m "echo") in
    Alcotest.(check int64) "inject executed" 77L (Arena.get arena "last")
  | _ -> Alcotest.fail "inject failed"

let test_device_irq_wiring () =
  let m = Vmm.Machine.create ~vmexit_cost:0 () in
  let dev = Devices.Fdc.device ~version:(Devices.Qemu_version.v 2 3 0) in
  Vmm.Machine.attach m (dev.make_binding ());
  let d = Workload.Fdc_driver.create m in
  ignore (Workload.Fdc_driver.seek d ~drive:0 ~head:0 ~track:3);
  Alcotest.(check bool) "irq raised through machine" true
    (Vmm.Irq.raise_count (Vmm.Machine.irq m) "fdc" > 0)

let test_vmexit_spin_costs_time () =
  (* The VM-exit model must actually burn time, monotonically in the
     spin count (coarse check: 200k spins cost measurably more than 0). *)
  let time_accesses vmexit_cost =
    let m = Vmm.Machine.create ~vmexit_cost () in
    Vmm.Machine.attach m (echo_binding "echo");
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 2000 do
      ignore (Vmm.Machine.io_read m ~port:0x100L ~size:4)
    done;
    Unix.gettimeofday () -. t0
  in
  let free = time_accesses 0 and costly = time_accesses 200_000 in
  Alcotest.(check bool) "spin burns time" true (costly > free *. 2.0)

let test_ram_snapshot_restore () =
  let g = Vmm.Guest_mem.create 64 in
  Vmm.Guest_mem.write g 8L Width.W32 0xABCDL;
  let snap = Vmm.Guest_mem.snapshot g in
  Vmm.Guest_mem.write g 8L Width.W32 0L;
  Vmm.Guest_mem.restore g snap;
  Alcotest.(check int64) "restored" 0xABCDL (Vmm.Guest_mem.read g 8L Width.W32)

let () =
  Alcotest.run "vmm"
    [
      ( "guest-mem",
        [
          Alcotest.test_case "read/write" `Quick test_guest_mem_rw;
          Alcotest.test_case "out of range" `Quick test_guest_mem_out_of_range;
          Alcotest.test_case "fill" `Quick test_guest_mem_fill;
        ] );
      ("irq", [ Alcotest.test_case "controller" `Quick test_irq_controller ]);
      ( "machine",
        [
          Alcotest.test_case "routing" `Quick test_machine_routing;
          Alcotest.test_case "overlap rejected" `Quick test_machine_overlap_rejected;
          Alcotest.test_case "duplicate rejected" `Quick test_machine_duplicate_rejected;
          Alcotest.test_case "halt blocks pre-execution" `Quick
            test_interposer_halt_blocks_before_execution;
          Alcotest.test_case "warn allows" `Quick test_interposer_warn_allows;
          Alcotest.test_case "interposer sees request" `Quick test_interposer_sees_request;
          Alcotest.test_case "trap reporting" `Quick test_trap_reporting;
          Alcotest.test_case "inject" `Quick test_inject;
          Alcotest.test_case "device irq wiring" `Quick test_device_irq_wiring;
          Alcotest.test_case "vm-exit spin costs time" `Slow test_vmexit_spin_costs_time;
          Alcotest.test_case "ram snapshot/restore" `Quick test_ram_snapshot_restore;
        ] );
    ]
