(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VII).  Subcommands:

     table2    False positives over time        (paper Table II)
     table3    Main results: CVE detection matrix, FPR, coverage (Table III)
     fig3      Normalized storage throughput    (paper Figure 3)
     fig4      Normalized storage latency       (paper Figure 4)
     fig5      PCNet bandwidth and ping latency (paper Figure 5)
     ablation  Design-choice ablations (DESIGN.md §5)
     micro     Walk-engine throughput + Bechamel micro-benchmarks
     scale     Fleet scale: shared arenas + per-VM cursors at 10/1k/10k VMs
     fuzz      Coverage-guided differential fuzz smoke (lib/fuzz)
     locate    Cross-version deviation locator over the attack catalogue
     hostile   Adversarial response faults vs the guest-side validator
     all       Everything above (default)

   Flags: --quick (shorter soaks), --seed N, --json FILE (dump every
   reported number as a flat JSON object keyed "section.detail"),
   --jobs N (fan independent per-device experiments out across N
   domains; deterministic sections are bit-identical for any N). *)

module Table = Sedspec_util.Table
module Runner = Sedspec_util.Runner

let quick = ref false
let seed = ref 42L

(* Effective worker-domain count.  Results never depend on it (every
   experiment derives its PRNG from the base seed and its own identity),
   only wall-clock does, so --jobs is clamped to the cores the runtime
   reports: oversubscribed domains only add stop-the-world GC barrier
   churn. *)
let jobs_requested = ref 1
let jobs = ref 1

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE)                               *)

let json_path : string option ref = ref None
let json_out : (string * string) list ref = ref []
let json_add key value = json_out := (key, value) :: !json_out
let json_int key v = json_add key (string_of_int v)
let json_bool key v = json_add key (string_of_bool v)

let json_float key v =
  json_add key (if Float.is_finite v then Printf.sprintf "%.6g" v else "null")

(* RFC 8259 escaping via the shared emitter: UTF-8 prose (schema notes
   with dashes and arrows) passes through byte-clean, unlike OCaml's %S
   whose decimal escapes are invalid JSON. *)
let json_str key v =
  json_add key (Sedspec_util.Json.to_string (Sedspec_util.Json.Str v))

(* Keys are ASCII identifiers, so OCaml's %S escaping is valid JSON.
   The write is atomic (temp file + rename) and the fd is protected, so
   an exception mid-dump never leaves a truncated JSON file behind. *)
let json_write path =
  let buf = Buffer.create 4096 in
  let entries = List.rev !json_out in
  let last = List.length entries - 1 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S: %s%s\n" k v (if i < last then "," else "")))
    entries;
  Buffer.add_string buf "}\n";
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Buffer.output_buffer oc buf)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let strategies =
  [
    Sedspec.Checker.Parameter_check;
    Sedspec.Checker.Indirect_jump_check;
    Sedspec.Checker.Conditional_jump_check;
  ]

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* ------------------------------------------------------------------ *)
(* Table II: false positives over time                                  *)

let soak_results = Hashtbl.create 8

let soak_one (module W : Workload.Samples.DEVICE_WORKLOAD) =
  let cases_per_hour = if !quick then 20 else 120 in
  Metrics.Fpr.soak ~seed:!seed ~cases_per_hour
    ~checkpoint_hours:[ 10; 20; 30 ]
    (module W)

(* The per-device soaks are independent (each derives its own PRNG from
   the same base seed and its spec comes from the single-flight cache),
   so they fan out across --jobs domains.  Results are identical to a
   serial run; the section wall-clock is the first recorded parallelism
   trajectory point of the bench. *)
let soak_wall_s = ref nan

let ensure_soaks () =
  let missing =
    List.filter
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        not (Hashtbl.mem soak_results W.device_name))
      Workload.Samples.all
  in
  if missing <> [] then begin
    let t0 = Unix.gettimeofday () in
    let results = Runner.map ~jobs:!jobs soak_one missing in
    soak_wall_s := Unix.gettimeofday () -. t0;
    List.iter
      (fun (r : Metrics.Fpr.result) -> Hashtbl.add soak_results r.device r)
      results
  end

let soak_for (module W : Workload.Samples.DEVICE_WORKLOAD) =
  ensure_soaks ();
  Hashtbl.find soak_results W.device_name

(* Coverage measurements fan out the same way. *)
let coverage_results = Hashtbl.create 8

let coverage_for (module W : Workload.Samples.DEVICE_WORKLOAD) =
  if Hashtbl.length coverage_results = 0 then
    List.iter
      (fun (r : Metrics.Coverage.result) ->
        Hashtbl.add coverage_results r.device r)
      (Runner.map ~jobs:!jobs
         (fun w ->
           let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
           Metrics.Coverage.measure ~seed:!seed
             ~fuzz_cases:(if !quick then 30 else 60)
             (module W))
         Workload.Samples.all);
  Hashtbl.find coverage_results W.device_name

let table2 () =
  section "Table II: False Positives Over Time";
  let rows =
    List.map
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        let r = soak_for (module W) in
        List.iter
          (fun (c : Metrics.Fpr.checkpoint) ->
            json_int
              (Printf.sprintf "table2.%s.fp_at_%dh" W.device_name c.at_hours)
              c.fp_cases)
          r.checkpoints;
        let at h =
          match
            List.find_opt (fun (c : Metrics.Fpr.checkpoint) -> c.at_hours = h) r.checkpoints
          with
          | Some c -> string_of_int c.fp_cases
          | None -> "-"
        in
        [ String.uppercase_ascii W.device_name; at 10; at 20; at 30 ])
      Workload.Samples.all
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Device"; "10 hours"; "20 hours"; "30 hours" ]
    rows;
  Printf.printf
    "(paper: FDC 1/2/5, USB EHCI 3/3/3, PCNet 1/5/6, SDHCI 4/7/7, SCSI 1/3/4)\n";
  if Float.is_finite !soak_wall_s then
    Printf.printf "soak section wall-clock: %.2fs with %d job%s\n" !soak_wall_s
      !jobs
      (if !jobs = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Table III: main results                                              *)

let check_mark detected = if detected then "x" else ""

let table3 () =
  section "Table III: Main results (CVE case studies, FPR, coverage)";
  let case_results = Metrics.Case_study.run_all ~jobs:!jobs () in
  let rows =
    List.map
      (fun (r : Metrics.Case_study.result) ->
        let det s =
          match
            List.find_opt
              (fun (o : Metrics.Case_study.strategy_outcome) -> o.strategy = s)
              r.per_strategy
          with
          | Some o -> check_mark o.detected
          | None -> ""
        in
        json_bool
          (Printf.sprintf "table3.%s.matches_paper" r.attack.cve)
          (Metrics.Case_study.matches_expectation r);
        [
          r.attack.device;
          r.attack.cve;
          "v" ^ Devices.Qemu_version.to_string r.attack.qemu_version;
          det Sedspec.Checker.Parameter_check;
          det Sedspec.Checker.Indirect_jump_check;
          det Sedspec.Checker.Conditional_jump_check;
          (if Metrics.Case_study.matches_expectation r then "yes" else "NO");
        ])
      case_results
  in
  Table.print
    ~align:[ Table.Left; Table.Left; Table.Left; Table.Center; Table.Center; Table.Center; Table.Center ]
    ~header:
      [ "Device"; "CVE ID"; "QEMU"; "Param"; "Indirect"; "Cond."; "=paper?" ]
    rows;
  Printf.printf "\nPer-device FPR and effective coverage:\n";
  let rows =
    List.map
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        let soak = soak_for (module W) in
        let cov = coverage_for (module W) in
        json_float (Printf.sprintf "table3.%s.fpr" W.device_name) soak.fpr;
        json_float
          (Printf.sprintf "table3.%s.effective_coverage" W.device_name)
          cov.effective;
        [
          String.uppercase_ascii W.device_name;
          Table.fmt_pct soak.fpr;
          Printf.sprintf "%d/%d" soak.fp_cases soak.total_cases;
          string_of_int soak.param_check_fps;
          Table.fmt_pct cov.effective;
        ])
      Workload.Samples.all
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Device"; "FPR"; "N_L/N_T"; "param FPs"; "Eff. coverage" ]
    rows;
  Printf.printf
    "(paper FPR: 0.14/0.10/0.11/0.09/0.17%%; coverage: 95.9/97.3/96.2/93.5/93.8%%)\n"

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: storage throughput / latency                        *)

let fmt_block b =
  if b >= 1048576 then Printf.sprintf "%dM" (b / 1048576)
  else if b >= 1024 then Printf.sprintf "%dK" (b / 1024)
  else string_of_int b

(* Best-of-N to suppress scheduler noise. *)
let sweep_cached = Hashtbl.create 16

let sweep_compute device write =
    let reps = if !quick then 1 else 3 in
    let runs =
      List.init reps (fun _ -> Metrics.Perf.storage_sweep ~device ~write ())
    in
    (* Combine repetitions with per-side minima: the fastest observed
       base and protected times are the least noisy estimators. *)
    let best =
      List.map
        (fun (p0 : Metrics.Perf.storage_point) ->
          let pts =
            List.map
              (fun run ->
                List.find
                  (fun (p : Metrics.Perf.storage_point) ->
                    p.block_bytes = p0.block_bytes)
                  run)
              runs
          in
          let base_s =
            List.fold_left (fun acc (p : Metrics.Perf.storage_point) -> min acc p.base_s)
              max_float pts
          in
          let protected_s =
            List.fold_left
              (fun acc (p : Metrics.Perf.storage_point) -> min acc p.protected_s)
              max_float pts
          in
          {
            Metrics.Perf.block_bytes = p0.block_bytes;
            base_s;
            protected_s;
            norm_throughput = base_s /. protected_s;
            norm_latency = protected_s /. base_s;
          })
        (List.hd runs)
    in
    best

(* All (device, direction) sweeps are pairwise independent, so they fan
   out across --jobs domains.  The numbers are wall-clock measurements:
   fan-out trades a little timing noise (domains share cores with each
   other's spin loops) for section wall-clock; the reported values are
   base/protected ratios, which see the same contention on both sides. *)
let ensure_sweeps () =
  let missing =
    List.filter
      (fun key -> not (Hashtbl.mem sweep_cached key))
      (List.concat_map
         (fun device -> [ (device, false); (device, true) ])
         Metrics.Perf.storage_devices)
  in
  if missing <> [] then
    List.iter2
      (fun key pts -> Hashtbl.add sweep_cached key pts)
      missing
      (Runner.map ~jobs:!jobs
         (fun (device, write) -> sweep_compute device write)
         missing)

let sweep device write =
  ensure_sweeps ();
  Hashtbl.find sweep_cached (device, write)

let fig_storage ~latency () =
  section
    (if latency then "Figure 4: Normalized storage latency (protected / baseline)"
     else "Figure 3: Normalized storage throughput (baseline = 1.0)");
  List.iter
    (fun write ->
      Printf.printf "\n%s:\n" (if write then "write" else "read");
      let blocks =
        List.sort_uniq compare
          (List.concat_map Metrics.Perf.storage_blocks Metrics.Perf.storage_devices)
      in
      let rows =
        List.map
          (fun device ->
            let pts = sweep device write in
            device
            :: List.map
                 (fun b ->
                   match
                     List.find_opt
                       (fun (p : Metrics.Perf.storage_point) -> p.block_bytes = b)
                       pts
                   with
                   | Some p ->
                     let v = if latency then p.norm_latency else p.norm_throughput in
                     json_float
                       (Printf.sprintf "%s.%s.%s.%s"
                          (if latency then "fig4" else "fig3")
                          device
                          (if write then "write" else "read")
                          (fmt_block b))
                       v;
                     Table.fmt_float ~digits:3 v
                   | None -> "-")
                 blocks)
          Metrics.Perf.storage_devices
      in
      Table.print
        ~header:("Device" :: List.map fmt_block blocks)
        rows)
    [ false; true ];
  Printf.printf "(paper: within 5%% of 1.0 at every block size)\n"

(* ------------------------------------------------------------------ *)
(* Figure 5: PCNet bandwidth + ping                                     *)

let fig5 () =
  section "Figure 5: PCNet bandwidth benchmark (+ ping latency)";
  let kinds =
    [ Metrics.Perf.Tcp_up; Metrics.Perf.Tcp_down; Metrics.Perf.Udp_up; Metrics.Perf.Udp_down ]
  in
  let reps = if !quick then 1 else 3 in
  (* The four stream kinds are independent measurements; fan them out
     across --jobs domains (each kind keeps its repetitions serial so
     per-side maxima stay comparable). *)
  let measured =
    Runner.map ~jobs:!jobs
      (fun kind ->
        (* Per-side maxima across repetitions: the highest observed
           bandwidth on each side is the least noisy estimator. *)
        let pts = List.init reps (fun _ -> Metrics.Perf.pcnet_bandwidth kind) in
        let base_mbps =
          List.fold_left
            (fun acc (p : Metrics.Perf.net_point) -> max acc p.base_mbps)
            0.0 pts
        in
        let protected_mbps =
          List.fold_left
            (fun acc (p : Metrics.Perf.net_point) -> max acc p.protected_mbps)
            0.0 pts
        in
        (kind, base_mbps, protected_mbps))
      kinds
  in
  let rows =
    List.map
      (fun (kind, base_mbps, protected_mbps) ->
        let overhead = 100.0 *. (1.0 -. (protected_mbps /. base_mbps)) in
        let slug =
          String.map
            (fun c -> if c = ' ' then '_' else Char.lowercase_ascii c)
            (Metrics.Perf.net_kind_to_string kind)
        in
        json_float (Printf.sprintf "fig5.%s.base_mbps" slug) base_mbps;
        json_float (Printf.sprintf "fig5.%s.protected_mbps" slug) protected_mbps;
        json_float (Printf.sprintf "fig5.%s.overhead_pct" slug) overhead;
        [
          Metrics.Perf.net_kind_to_string kind;
          Table.fmt_float base_mbps;
          Table.fmt_float protected_mbps;
          Table.fmt_float overhead ^ "%";
        ])
      measured
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Stream"; "Base MB/s"; "SEDSpec MB/s"; "Overhead" ]
    rows;
  let pings = List.init reps (fun _ -> Metrics.Perf.pcnet_ping ()) in
  let base = List.fold_left (fun acc (b, _, _) -> min acc b) max_float pings in
  let prot = List.fold_left (fun acc (_, p, _) -> min acc p) max_float pings in
  Printf.printf "ping: base %.3f ms, SEDSpec %.3f ms, overhead %.1f%%\n" base
    prot ((prot -. base) /. base *. 100.0);
  json_float "fig5.ping.base_ms" base;
  json_float "fig5.ping.protected_ms" prot;
  json_float "fig5.ping.overhead_pct" ((prot -. base) /. base *. 100.0);
  Printf.printf
    "(paper: TCP up/down 6.9/7.3%%, UDP up/down 5.7/6.6%%, ping +9.2%%)\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let ablation () =
  section "Ablation: control-flow reduction (spec size)";
  let rows =
    List.map
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        let m = W.make_machine W.paper_version in
        let cases = if !quick then 8 else 16 in
        let unreduced =
          Sedspec.Pipeline.build ~reduce:false m ~device:W.device_name
            (W.trainer ~cases)
        in
        let m2 = W.make_machine W.paper_version in
        let reduced =
          Sedspec.Pipeline.build ~reduce:true m2 ~device:W.device_name
            (W.trainer ~cases)
        in
        [
          W.device_name;
          string_of_int (Sedspec.Es_cfg.node_count unreduced.spec);
          string_of_int (Sedspec.Es_cfg.node_count reduced.spec);
          string_of_int reduced.reduced;
          Printf.sprintf "%d/%d/%d" reduced.datadep.substituted
            reduced.datadep.guest_replay reduced.datadep.sync_points;
          string_of_int reduced.p1.trace_bytes;
        ])
      Workload.Samples.all
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Center; Table.Right ]
    ~header:
      [ "Device"; "ES-CFG nodes"; "after reduction"; "removed";
        "datadep subst/guest/sync"; "PT bytes" ]
    rows;
  section "Ablation: simulated VM-exit cost vs. protection overhead (FDC read, 4K blocks)";
  let rows =
    List.map
      (fun vmexit_cost ->
        let pts =
          Metrics.Perf.storage_sweep ~total_bytes:8192 ~vmexit_cost ~device:"fdc"
            ~write:false ()
        in
        let p = List.nth pts 1 in
        [
          string_of_int vmexit_cost;
          Table.fmt_float ~digits:3 p.norm_throughput;
          Table.fmt_float ~digits:1 ((p.norm_latency -. 1.0) *. 100.0) ^ "%";
        ])
      [ 0; 2000; 20000; 60000 ]
  in
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Right ]
    ~header:[ "vm-exit spin"; "norm. throughput"; "latency overhead" ]
    rows;
  section "Ablation: single-strategy detection of the venom stream";
  let rows =
    List.map
      (fun strat ->
        let attack = Attacks.Attack.find "CVE-2015-3456" in
        let w = Workload.Samples.find attack.device in
        let config =
          { Sedspec.Checker.default_config with Sedspec.Checker.strategies = [ strat ] }
        in
        let m, checker =
          Metrics.Spec_cache.fresh_protected_machine ~config w attack.qemu_version
        in
        attack.setup m;
        (try attack.run m with Exit -> ());
        let anoms = Sedspec.Checker.drain_anomalies checker in
        [
          Sedspec.Checker.strategy_to_string strat;
          string_of_int (List.length anoms);
          string_of_int (Sedspec.Checker.stats checker).Sedspec.Checker.interactions;
        ])
      strategies
  in
  Table.print
    ~header:[ "Strategy"; "anomalies (venom)"; "interactions checked" ]
    rows

(* ------------------------------------------------------------------ *)
(* Baseline comparison: Nioh                                            *)

let baseline () =
  section "Baseline: Nioh (manual state machines) vs SEDSpec (learned specs)";
  let rows =
    List.map
      (fun (v : Metrics.Baseline.verdict) ->
        [
          v.cve;
          v.device;
          (if v.nioh_detected then "detected" else "missed");
          (if v.sedspec_detected then "detected" else "missed");
        ])
      (Metrics.Baseline.run ())
  in
  Table.print
    ~header:[ "CVE"; "Device"; "Nioh (manual)"; "SEDSpec (automatic)" ]
    rows;
  Printf.printf
    "(paper: Nioh's set is fully detected by SEDSpec except CVE-2016-1568)\n";
  let rows =
    List.map
      (fun device ->
        [ device; string_of_int (Metrics.Baseline.benign_nioh_fp device) ])
      [ "fdc"; "scsi"; "pcnet" ]
  in
  Table.print ~header:[ "Device"; "Nioh benign FPs (40 soak cases)" ] rows;
  Printf.printf
    "(manual models cover rare commands, so Nioh has no rare-command FPs —\n\
    \ at the cost of hand-writing every model, which SEDSpec automates)\n"

(* ------------------------------------------------------------------ *)
(* Walk-engine throughput: compiled vs interpreted                      *)

(* Record one benign request stream off an unprotected machine; the
   interposer sees exactly what the checker would. *)
let capture_stream w ~cases ~ops =
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = Metrics.Spec_cache.fresh_machine w W.paper_version in
  let reqs = ref [] in
  Vmm.Machine.set_interposer m W.device_name
    {
      before = (fun r -> reqs := r :: !reqs; Vmm.Machine.Allow);
      after = (fun _ _ -> Vmm.Machine.Allow);
    };
  let rng = Sedspec_util.Prng.create !seed in
  for _ = 1 to cases do
    W.soak_case ~mode:Workload.Samples.Sequential ~rng ~rare_prob:0.0 ~ops m
  done;
  Array.of_list (List.rev !reqs)

(* Replay the stream through a live checker's interposer (the full
   protection path: pre-execution walk, verdict, shadow commit) and
   measure interactions and ES-CFG nodes walked per second. *)
let replay_throughput ?(contained = true) ?(minimized = false) w engine reqs =
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let config = { Sedspec.Checker.default_config with Sedspec.Checker.engine } in
  let b =
    if minimized then Metrics.Spec_cache.built_minimized w W.paper_version
    else Metrics.Spec_cache.built w W.paper_version
  in
  let m = W.make_machine W.paper_version in
  let checker = Sedspec.Pipeline.protect ~config m ~device:W.device_name b in
  let ip =
    if contained then Sedspec.Checker.interposer checker
    else Sedspec.Checker.interposer_exn checker
  in
  let done_ = Interp.Event.Done { response = None } in
  let replay () =
    Array.iter
      (fun (r : Vmm.Machine.request) ->
        ignore (ip.Vmm.Machine.before r);
        ignore (ip.Vmm.Machine.after r done_))
      reqs;
    ignore (Sedspec.Checker.drain_anomalies checker)
  in
  (* Warm pass: lazy lowering under the compiled engine, caches under
     both. *)
  replay ();
  let stats = Sedspec.Checker.stats checker in
  let n0 = stats.Sedspec.Checker.nodes_walked in
  let budget = if !quick then 0.2 else 0.6 in
  let t0 = Unix.gettimeofday () in
  let passes = ref 0 in
  while Unix.gettimeofday () -. t0 < budget do
    replay ();
    incr passes
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let interactions = !passes * Array.length reqs in
  let nodes = stats.Sedspec.Checker.nodes_walked - n0 in
  (float_of_int interactions /. dt, float_of_int nodes /. dt)

let fmt_rate r =
  if r >= 1.0e6 then Printf.sprintf "%.2fM" (r /. 1.0e6)
  else if r >= 1.0e3 then Printf.sprintf "%.1fk" (r /. 1.0e3)
  else Printf.sprintf "%.0f" r

let walk_throughput () =
  section "Micro: ES-Checker walk throughput (compiled vs interpreted)";
  let rows =
    List.concat_map
      (fun device ->
        let w = Workload.Samples.find device in
        let reqs =
          capture_stream w ~cases:(if !quick then 2 else 4) ~ops:20
        in
        let i_ips, i_nps =
          replay_throughput w Sedspec.Checker.Interpreted reqs
        in
        let c_ips, c_nps = replay_throughput w Sedspec.Checker.Compiled reqs in
        let speedup = c_ips /. i_ips in
        json_float (Printf.sprintf "micro.walk.%s.interpreted_ips" device) i_ips;
        json_float (Printf.sprintf "micro.walk.%s.compiled_ips" device) c_ips;
        json_float
          (Printf.sprintf "micro.walk.%s.interpreted_nodes_per_s" device)
          i_nps;
        json_float
          (Printf.sprintf "micro.walk.%s.compiled_nodes_per_s" device)
          c_nps;
        json_float (Printf.sprintf "micro.walk.%s.speedup" device) speedup;
        [
          [ device; "interpreted"; fmt_rate i_ips; fmt_rate i_nps; "" ];
          [
            device; "compiled"; fmt_rate c_ips; fmt_rate c_nps;
            Printf.sprintf "%.2fx" speedup;
          ];
        ])
      [ "fdc"; "pcnet"; "scsi" ]
  in
  Table.print
    ~align:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Device"; "Engine"; "interactions/s"; "nodes/s"; "speedup" ]
    rows;
  Printf.printf
    "(replays one benign request stream through the checker interposer;\n\
    \ speedup = compiled / interpreted interactions per second)\n"

(* Dependence-driven spec minimization: spec size and walk cost before
   vs after, per device.  The JSON carries the per-device node counts so
   CI can assert the invariant that minimization never grows a spec
   (BENCH_7.json thresholds). *)
let minimize_bench () =
  section "Ablation: dependence-driven spec minimization (CDG/DDG)";
  let rows =
    List.map
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        let device = W.device_name in
        let minimized = Metrics.Spec_cache.built_minimized w W.paper_version in
        let rep =
          match minimized.Sedspec.Pipeline.minimized with
          | Some r -> r
          | None -> assert false
        in
        let reqs = capture_stream w ~cases:(if !quick then 2 else 4) ~ops:20 in
        let ns_per_node nps = if nps > 0.0 then 1.0e9 /. nps else Float.nan in
        let _, t_nps = replay_throughput w Sedspec.Checker.Compiled reqs in
        let _, m_nps =
          replay_throughput ~minimized:true w Sedspec.Checker.Compiled reqs
        in
        let pfx = Printf.sprintf "minimize.%s" device in
        json_int (pfx ^ ".nodes_before") rep.Sedspec.Minimize.nodes_before;
        json_int (pfx ^ ".nodes_after") rep.Sedspec.Minimize.nodes_after;
        json_int (pfx ^ ".pruned") rep.Sedspec.Minimize.pruned;
        json_int (pfx ^ ".branches_folded") rep.Sedspec.Minimize.branches_folded;
        json_int (pfx ^ ".branches_dominated")
          rep.Sedspec.Minimize.branches_dominated;
        json_int (pfx ^ ".chains_merged") rep.Sedspec.Minimize.chains_merged;
        json_int (pfx ^ ".sync_sites_flow_insensitive")
          rep.Sedspec.Minimize.sync_sites_flow_insensitive;
        json_int (pfx ^ ".sync_sites_ddg") rep.Sedspec.Minimize.sync_sites_ddg;
        json_bool (pfx ^ ".never_larger")
          (rep.Sedspec.Minimize.nodes_after <= rep.Sedspec.Minimize.nodes_before);
        json_float (pfx ^ ".trained_ns_per_node") (ns_per_node t_nps);
        json_float (pfx ^ ".minimized_ns_per_node") (ns_per_node m_nps);
        [
          device;
          string_of_int rep.Sedspec.Minimize.nodes_before;
          string_of_int rep.Sedspec.Minimize.nodes_after;
          Printf.sprintf "%d/%d/%d/%d" rep.Sedspec.Minimize.pruned
            rep.Sedspec.Minimize.branches_folded
            rep.Sedspec.Minimize.branches_dominated
            rep.Sedspec.Minimize.chains_merged;
          Printf.sprintf "%d -> %d"
            rep.Sedspec.Minimize.sync_sites_flow_insensitive
            rep.Sedspec.Minimize.sync_sites_ddg;
          Printf.sprintf "%.1f" (ns_per_node t_nps);
          Printf.sprintf "%.1f" (ns_per_node m_nps);
        ])
      Workload.Samples.all
  in
  Table.print
    ~align:
      [
        Table.Left; Table.Right; Table.Right; Table.Center; Table.Center;
        Table.Right; Table.Right;
      ]
    ~header:
      [
        "Device"; "nodes"; "minimized"; "pruned/fold/dom/merge";
        "sync sites (fi -> ddg)"; "walk ns/node"; "min ns/node";
      ]
    rows;
  Printf.printf
    "(compiled engine; sync sites compare the flow-insensitive classifier\n\
    \ against the reaching-definitions DDG; ns/node is walk cost per\n\
    \ ES-CFG node over a benign request stream)\n"

(* The fault-injection PR wrapped every interposer callback in a
   containment handler (Checker.interposer vs interposer_exn).  This row
   proves the wrapper is free on the no-fault hot path: same stream,
   same engine, with and without the try/with. *)
let containment_overhead () =
  section "Micro: containment wrapper overhead (no-fault hot path)";
  let rows =
    List.map
      (fun device ->
        let w = Workload.Samples.find device in
        let reqs = capture_stream w ~cases:(if !quick then 2 else 4) ~ops:20 in
        (* Interleaved best-of-3 per side so scheduler drift hits both. *)
        let best f =
          let r = ref 0.0 in
          for _ = 1 to 3 do
            r := max !r (fst (f ()))
          done;
          !r
        in
        let raw_ips =
          best (fun () ->
              replay_throughput ~contained:false w Sedspec.Checker.Compiled reqs)
        in
        let con_ips =
          best (fun () ->
              replay_throughput ~contained:true w Sedspec.Checker.Compiled reqs)
        in
        let overhead = 100.0 *. (1.0 -. (con_ips /. raw_ips)) in
        json_float (Printf.sprintf "micro.containment.%s.raw_ips" device) raw_ips;
        json_float
          (Printf.sprintf "micro.containment.%s.contained_ips" device)
          con_ips;
        json_float
          (Printf.sprintf "micro.containment.%s.overhead_pct" device)
          overhead;
        [
          device;
          fmt_rate raw_ips;
          fmt_rate con_ips;
          Printf.sprintf "%.1f%%" overhead;
        ])
      [ "fdc"; "scsi" ]
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "Device"; "raw interposer/s"; "contained/s"; "overhead" ]
    rows;
  Printf.printf
    "(the containment try/with should cost ~0%%: it allocates nothing and\n\
    \ only runs exception code when a fault actually fires)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)

let micro () =
  walk_throughput ();
  containment_overhead ();
  section "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let fdc_w = Workload.Samples.find "fdc" in
  let module FW = (val fdc_w : Workload.Samples.DEVICE_WORKLOAD) in
  let m_t2, checker_t2 =
    Metrics.Spec_cache.fresh_protected_machine fdc_w FW.paper_version
  in
  let rng = Sedspec_util.Prng.create 99L in
  let t2 =
    Test.make ~name:"table2.soak-case(fdc)"
      (Staged.stage (fun () ->
           FW.soak_case ~mode:Workload.Samples.Random ~rng ~rare_prob:0.0 ~ops:1
             m_t2;
           ignore (Sedspec.Checker.drain_anomalies checker_t2)))
  in
  let t3 =
    Test.make ~name:"table3.venom-stream"
      (Staged.stage (fun () ->
           let attack = Attacks.Attack.find "CVE-2015-3456" in
           let m = Metrics.Spec_cache.fresh_machine fdc_w attack.qemu_version in
           attack.setup m;
           try attack.run m with Exit -> ()))
  in
  let m_f3, _ = Metrics.Spec_cache.fresh_protected_machine fdc_w FW.paper_version in
  let d_f3 = Workload.Fdc_driver.create m_f3 in
  ignore (Workload.Fdc_driver.reset d_f3);
  ignore (Workload.Fdc_driver.recalibrate d_f3 ~drive:0);
  ignore (Workload.Fdc_driver.sense_interrupt d_f3);
  let f34 =
    Test.make ~name:"fig3-4.protected-sector-read(fdc)"
      (Staged.stage (fun () ->
           ignore
             (Workload.Fdc_driver.read_sector d_f3 ~drive:0 ~head:0 ~track:1
                ~sect:1)))
  in
  let pcnet_w = Workload.Samples.find "pcnet" in
  let module PW = (val pcnet_w : Workload.Samples.DEVICE_WORKLOAD) in
  let m_f5, _ = Metrics.Spec_cache.fresh_protected_machine pcnet_w PW.paper_version in
  let d_f5 = Workload.Pcnet_driver.create m_f5 in
  ignore (Workload.Pcnet_driver.reset d_f5);
  ignore (Workload.Pcnet_driver.init d_f5 ~mode:0 ());
  ignore (Workload.Pcnet_driver.start d_f5);
  let payload = Bytes.make 1460 'p' in
  let f5 =
    Test.make ~name:"fig5.protected-frame-tx(pcnet)"
      (Staged.stage (fun () -> ignore (Workload.Pcnet_driver.transmit d_f5 [ payload ])))
  in
  let tests = [ t2; t3; f34; f5 ] in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-40s %10.1f ns/run\n" name t
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Fuzz smoke: a short coverage-guided differential fuzzing run per     *)
(* device.  Divergences are checker bugs, so any non-zero count is an   *)
(* immediate red flag in the bench output and the JSON dump.            *)

(* Replay a captured stream with the deadline watchdog disarmed vs armed
   at a budget no walk reaches: the difference is the watchdog's no-fault
   cost (one integer compare per walked node).  Both sides run in
   alternating timed rounds so scheduler/GC drift cannot masquerade as
   overhead, and each side keeps its best round. *)
let watchdog_pair w reqs =
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let side deadline =
    let _m, checker =
      Metrics.Spec_cache.fresh_protected_machine w W.paper_version
    in
    Sedspec.Checker.set_deadline checker deadline;
    let ip = Sedspec.Checker.interposer checker in
    let done_ = Interp.Event.Done { response = None } in
    fun () ->
      Array.iter
        (fun (r : Vmm.Machine.request) ->
          ignore (ip.Vmm.Machine.before r);
          ignore (ip.Vmm.Machine.after r done_))
        reqs;
      ignore (Sedspec.Checker.drain_anomalies checker)
  in
  let off = side None and on_ = side (Some 1_000_000) in
  off ();
  on_ ();
  let round replay =
    let budget = if !quick then 0.1 else 0.25 in
    let t0 = Unix.gettimeofday () in
    let passes = ref 0 in
    while Unix.gettimeofday () -. t0 < budget do
      replay ();
      incr passes
    done;
    float_of_int (!passes * Array.length reqs)
    /. (Unix.gettimeofday () -. t0)
  in
  let off_best = ref 0.0 and on_best = ref 0.0 in
  for _ = 1 to 5 do
    off_best := max !off_best (round off);
    on_best := max !on_best (round on_)
  done;
  (!off_best, !on_best)

let fleet_bench () =
  section "Fleet: multi-VM serving throughput and watchdog overhead";
  let vms = if !quick then 5 else 10 in
  let ticks = if !quick then 6 else 16 in
  let opts jobs =
    {
      (Fleet.Supervisor.default_options ()) with
      Fleet.Supervisor.vms;
      ticks;
      seed = !seed;
      jobs;
    }
  in
  (* Warm the spec cache so the timed runs measure serving, not training. *)
  ignore (Fleet.Supervisor.run (opts 1) : Fleet.Supervisor.report);
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    let r = Fleet.Supervisor.run (opts jobs) in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs_list =
    List.sort_uniq compare (1 :: (if !jobs > 1 then [ !jobs ] else []))
  in
  let runs = List.map (fun j -> (j, timed j)) jobs_list in
  let _, (r1, dt1) = List.hd runs in
  let base_json = Fleet.Supervisor.report_to_json r1 in
  let deterministic =
    List.for_all
      (fun (_, (r, _)) -> Fleet.Supervisor.report_to_json r = base_json)
      runs
  in
  let rows =
    List.map
      (fun (j, ((r : Fleet.Supervisor.report), dt)) ->
        let ips = float_of_int r.Fleet.Supervisor.f_interactions /. dt in
        json_float (Printf.sprintf "fleet.jobs%d.ips" j) ips;
        json_float (Printf.sprintf "fleet.jobs%d.wall_s" j) dt;
        [
          string_of_int j;
          string_of_int r.Fleet.Supervisor.f_interactions;
          Printf.sprintf "%.2fs" dt;
          fmt_rate ips;
          Printf.sprintf "%.2fx" (dt1 /. dt);
        ])
      runs
  in
  json_bool "fleet.deterministic" deterministic;
  json_int "fleet.vms" vms;
  json_int "fleet.ticks" ticks;
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "jobs"; "interactions"; "wall"; "interactions/s"; "speedup" ]
    rows;
  Printf.printf
    "(%d VMs x %d ticks, mixed devices; reports %s across jobs)\n" vms ticks
    (if deterministic then "bit-identical" else "DIVERGED");
  let wd_rows =
    List.map
      (fun device ->
        let w = Workload.Samples.find device in
        let reqs = capture_stream w ~cases:(if !quick then 2 else 4) ~ops:20 in
        let off_ips, on_ips = watchdog_pair w reqs in
        let overhead = 100.0 *. (1.0 -. (on_ips /. off_ips)) in
        json_float (Printf.sprintf "fleet.watchdog.%s.off_ips" device) off_ips;
        json_float (Printf.sprintf "fleet.watchdog.%s.on_ips" device) on_ips;
        json_float
          (Printf.sprintf "fleet.watchdog.%s.overhead_pct" device)
          overhead;
        [
          device;
          fmt_rate off_ips;
          fmt_rate on_ips;
          Printf.sprintf "%.1f%%" overhead;
        ])
      [ "fdc"; "scsi" ]
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Device"; "watchdog off/s"; "watchdog on/s"; "overhead" ]
    wd_rows;
  Printf.printf
    "(deadline armed at a budget no benign walk reaches: the no-fault\n\
    \ cost is one integer compare per walked node, so ~0%%)\n"

(* ------------------------------------------------------------------ *)
(* Fleet scale: the arena/cursor split measured at 10 / 1k / 10k VMs.   *)

(* Fixed regression budgets, dumped next to the measurements so CI can
   fail the bench from the JSON alone.  Calibrated several x above the
   reference-container numbers so scheduler and GC noise cannot trip
   them, while a reintroduced per-walk allocation (a boxed option, a
   closure, a fresh tuple per node) or a per-VM copy of any arena table
   blows straight through. *)
let scale_max_minor_words_per_walk = 150.0
let scale_max_bytes_per_vm = 100_000.0

let scale_schema =
  "scale.vms<N>.*: vms = fleet size; interactions = timed-phase total; \
   throughput_ips = interactions/s fleet-wide; p50_tick_ns / p99_tick_ns \
   = per-VM tick latency percentiles in ns; bytes_per_vm = marginal \
   major-heap bytes per VM (live-word delta across cell creation); \
   minor_words_per_tick / minor_words_per_walk = steady-state \
   minor-heap allocation; walk_ns_per_node = busy ns per walked ES-CFG \
   node; builds = spec builds this configuration triggered (<= 1 per \
   (device, version), 0 once the single-flight cache is warm); shared = \
   every cell's compiled arena is physically (==) its device's one.  \
   scale.threshold.*: fixed budgets; CI fails if any configuration's \
   minor_words_per_walk or bytes_per_vm exceeds them."

let scale_bench () =
  section "Fleet scale: shared arenas + per-VM cursors";
  let sizes = if !quick then [ 10; 1000 ] else [ 10; 1000; 10_000 ] in
  let results =
    List.map
      (fun vms ->
        let opts =
          {
            (Fleet.Scale.default_options ()) with
            Fleet.Scale.vms;
            ticks = (if !quick then 2 else 4);
            seed = !seed;
            jobs = !jobs;
          }
        in
        (vms, Fleet.Scale.run opts))
      sizes
  in
  let rows =
    List.map
      (fun (vms, (r : Fleet.Scale.result)) ->
        let open Fleet.Scale in
        let pfx = Printf.sprintf "scale.vms%d" vms in
        json_int (pfx ^ ".vms") r.sc_vms;
        json_int (pfx ^ ".interactions") r.sc_interactions;
        json_int (pfx ^ ".anomalies") r.sc_anomalies;
        json_int (pfx ^ ".builds") r.sc_builds;
        json_bool (pfx ^ ".shared") r.sc_shared;
        json_float (pfx ^ ".throughput_ips") r.sc_throughput_ips;
        json_float (pfx ^ ".p50_tick_ns") r.sc_p50_tick_ns;
        json_float (pfx ^ ".p99_tick_ns") r.sc_p99_tick_ns;
        json_float (pfx ^ ".bytes_per_vm") r.sc_bytes_per_vm;
        json_float (pfx ^ ".minor_words_per_tick") r.sc_minor_words_per_tick;
        json_float (pfx ^ ".minor_words_per_walk") r.sc_minor_words_per_walk;
        json_float (pfx ^ ".walk_ns_per_node") r.sc_walk_ns_per_node;
        json_float (pfx ^ ".create_s") r.sc_create_s;
        [
          string_of_int vms;
          string_of_int r.sc_interactions;
          fmt_rate r.sc_throughput_ips;
          Printf.sprintf "%.0f" (r.sc_p99_tick_ns /. 1e3);
          Printf.sprintf "%.0f" r.sc_bytes_per_vm;
          Printf.sprintf "%.1f" r.sc_minor_words_per_walk;
          Printf.sprintf "%.1f" r.sc_walk_ns_per_node;
          Printf.sprintf "%d/%b" r.sc_builds r.sc_shared;
        ])
      results
  in
  json_str "scale.schema" scale_schema;
  json_float "scale.threshold.minor_words_per_walk"
    scale_max_minor_words_per_walk;
  json_float "scale.threshold.bytes_per_vm" scale_max_bytes_per_vm;
  Table.print
    ~align:
      [
        Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right;
      ]
    ~header:
      [
        "VMs"; "interactions"; "ia/s"; "p99 us"; "B/VM"; "mw/walk";
        "ns/node"; "builds/shared";
      ]
    rows;
  List.iter
    (fun (vms, (r : Fleet.Scale.result)) ->
      let budget name v max_v =
        if v > max_v then
          Printf.printf "BUDGET EXCEEDED: %d VMs %s %.1f > %.1f\n" vms name v
            max_v
      in
      budget "minor_words_per_walk" r.Fleet.Scale.sc_minor_words_per_walk
        scale_max_minor_words_per_walk;
      budget "bytes_per_vm" r.Fleet.Scale.sc_bytes_per_vm
        scale_max_bytes_per_vm;
      if r.Fleet.Scale.sc_anomalies > 0 then
        Printf.printf "ANOMALIES: %d VMs reported %d on benign streams\n" vms
          r.Fleet.Scale.sc_anomalies)
    results;
  Printf.printf
    "(one compiled arena per (device, version) shared by every cell;\n\
    \ each VM adds only a cursor + shadow/work state — bytes/VM is the\n\
    \ marginal cost, mw/walk the steady-state allocation per check)\n"

let fuzz_smoke () =
  section "Fuzz smoke: differential fuzzing of the ES-Checker";
  let budget = if !quick then 100 else 500 in
  (* The loop parallelises internally; devices run serially so their
     reports land in a stable order. *)
  let rows =
    List.map
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        let device = W.device_name in
        let opts =
          {
            (Fuzz.Loop.default_options ~device) with
            Fuzz.Loop.budget;
            seed = !seed;
            jobs = !jobs;
          }
        in
        let r = Fuzz.Loop.run opts in
        let pfx = Printf.sprintf "fuzz.%s" device in
        json_int (pfx ^ ".executed") r.Fuzz.Loop.r_executed;
        json_int (pfx ^ ".corpus") (List.length r.Fuzz.Loop.r_corpus);
        json_int (pfx ^ ".nodes") r.Fuzz.Loop.r_nodes;
        json_int (pfx ^ ".edges") r.Fuzz.Loop.r_edges;
        json_int (pfx ^ ".new_nodes")
          (r.Fuzz.Loop.r_nodes - r.Fuzz.Loop.r_seed_nodes);
        json_int (pfx ^ ".new_edges")
          (r.Fuzz.Loop.r_edges - r.Fuzz.Loop.r_seed_edges);
        json_int (pfx ^ ".divergences") r.Fuzz.Loop.r_divergent_inputs;
        json_int (pfx ^ ".crashes") r.Fuzz.Loop.r_crashes;
        [
          String.uppercase_ascii device;
          string_of_int r.Fuzz.Loop.r_executed;
          string_of_int (List.length r.Fuzz.Loop.r_corpus);
          Printf.sprintf "%d (+%d)" r.Fuzz.Loop.r_nodes
            (r.Fuzz.Loop.r_nodes - r.Fuzz.Loop.r_seed_nodes);
          Printf.sprintf "%d (+%d)" r.Fuzz.Loop.r_edges
            (r.Fuzz.Loop.r_edges - r.Fuzz.Loop.r_seed_edges);
          string_of_int r.Fuzz.Loop.r_divergent_inputs;
          string_of_int r.Fuzz.Loop.r_crashes;
        ])
      Workload.Samples.all
  in
  Table.print
    ~align:
      [
        Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right;
      ]
    ~header:
      [ "Device"; "Execs"; "Corpus"; "Nodes"; "Edges"; "Diverg."; "Crashes" ]
    rows;
  Printf.printf "(any divergence or crash is a walk-engine bug)\n"

(* The cross-version deviation locator over the attack catalogue:
   vulnerable vs patched device model per CVE, minimized witnesses,
   localized block sets (DESIGN.md §4i).  Quick mode covers the scsi
   catalogue (three CVEs, three version pairs, one device build); the
   full run covers all nine. *)
let locate_bench () =
  section "Locate: cross-version behaviour deltas over the attack catalogue";
  let opts =
    {
      Fuzz.Locate.default_options with
      Fuzz.Locate.device = (if !quick then Some "scsi" else None);
      budget = 8;
      seed = !seed;
      jobs = !jobs;
    }
  in
  let r = Fuzz.Locate.run opts in
  let rows =
    List.map
      (fun (d : Fuzz.Delta.cve_delta) ->
        let best_ratio =
          List.fold_left
            (fun acc (w : Fuzz.Delta.witness) ->
              min acc
                (float_of_int (Array.length w.Fuzz.Delta.w_input.Fuzz.Input.steps)
                /. float_of_int (max 1 w.Fuzz.Delta.w_original_len)))
            1.0 d.Fuzz.Delta.cd_witnesses
        in
        let pfx = Printf.sprintf "locate.%s" d.Fuzz.Delta.cd_cve in
        json_int (pfx ^ ".witnesses") (List.length d.Fuzz.Delta.cd_witnesses);
        json_int (pfx ^ ".changed_blocks") (List.length d.Fuzz.Delta.cd_changed);
        json_int (pfx ^ ".roots") (List.length d.Fuzz.Delta.cd_roots);
        json_int (pfx ^ ".static_blocks") (List.length d.Fuzz.Delta.cd_static);
        json_float (pfx ^ ".best_shrink_ratio") best_ratio;
        json_bool (pfx ^ ".localized") d.Fuzz.Delta.cd_localized;
        [
          d.Fuzz.Delta.cd_cve;
          d.Fuzz.Delta.cd_device;
          Printf.sprintf "%s->%s"
            (Devices.Qemu_version.to_string d.Fuzz.Delta.cd_vulnerable)
            (Devices.Qemu_version.to_string d.Fuzz.Delta.cd_patched);
          string_of_int (List.length d.Fuzz.Delta.cd_witnesses);
          string_of_int (List.length d.Fuzz.Delta.cd_changed);
          string_of_int (List.length d.Fuzz.Delta.cd_roots);
          Printf.sprintf "%.2f" best_ratio;
          (if d.Fuzz.Delta.cd_localized then "yes" else "NO");
        ])
      r.Fuzz.Delta.deltas
  in
  Table.print
    ~align:
      [
        Table.Left; Table.Left; Table.Center; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Center;
      ]
    ~header:
      [
        "CVE"; "device"; "pair"; "witnesses"; "changed"; "roots";
        "best shrink"; "localized";
      ]
    rows;
  Printf.printf
    "(localized = statically patched blocks contained in the dynamically\n\
    \ localized set; best shrink = smallest minimized/original witness ratio)\n"

(* ------------------------------------------------------------------ *)

(* Hostile-device hardening (DESIGN.md §4j): the guest-side validator's
   overhead on benign traffic, then the adversarial campaign's
   containment pressure.  Quick mode shrinks the plan grid; the verdict
   line is the same zero-escape / zero-fail-open bar CI enforces. *)
let hostile_bench () =
  section "Hostile: adversarial response faults vs the guest-side validator";
  (* Validator overhead on benign traffic: delta between a guarded and
     an unguarded protected soak over the virtio ring. *)
  let w = Workload.Samples.find "virtio" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let ops = if !quick then 40 else 200 in
  let soak ~guarded =
    let m, _checker =
      Metrics.Spec_cache.fresh_protected_machine ~vmexit_cost:0 w
        W.paper_version
    in
    let v =
      if guarded then
        Some
          (Guard.Validator.attach m ~device:W.device_name
             ~profile:(Metrics.Spec_cache.guard_profile w W.paper_version))
      else None
    in
    let rng = Sedspec_util.Prng.create !seed in
    let t0 = Unix.gettimeofday () in
    W.soak_case ~mode:Workload.Samples.Sequential ~rng ~rare_prob:0.0 ~ops m;
    let dt = Unix.gettimeofday () -. t0 in
    Option.iter Guard.Validator.detach v;
    dt
  in
  ignore (soak ~guarded:false);
  (* warmed: spec + guard profile now come from the single-flight cache *)
  let base = soak ~guarded:false in
  let guarded = soak ~guarded:true in
  let overhead = (guarded -. base) /. base *. 100. in
  Printf.printf
    "benign soak (%d ops, virtio): unguarded %.2f ms, guarded %.2f ms (%+.1f%%)\n"
    ops (base *. 1000.) (guarded *. 1000.) overhead;
  json_float "hostile.guard_overhead_pct" overhead;
  let opts =
    {
      Faultinj.Campaign.default_hostile_options with
      h_plans_per_combo = (if !quick then 6 else 18);
      h_cases_per_plan = (if !quick then 2 else 4);
      h_ops_per_case = (if !quick then 4 else 8);
      h_min_injected = 1;
      h_seed = !seed;
      h_jobs = !jobs;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Faultinj.Campaign.run_hostile opts in
  let dt = Unix.gettimeofday () -. t0 in
  let t = Faultinj.Campaign.hostile_totals r in
  Printf.printf
    "campaign (sdhci+virtio, both modes x both engines): %d injected, %d \
     contained, %d escaped, %d fail-open in %.1fs\n"
    t.Faultinj.Campaign.hc_injected t.Faultinj.Campaign.hc_contained
    t.Faultinj.Campaign.hc_escaped t.Faultinj.Campaign.hc_fail_open dt;
  Printf.printf
    "  guard anomalies %d, halts %d, warns %d, rollbacks %d, breaker trips \
     %d, heals %d\n"
    t.Faultinj.Campaign.hc_guard_anoms t.Faultinj.Campaign.hc_halts
    t.Faultinj.Campaign.hc_warns t.Faultinj.Campaign.hc_rollbacks
    t.Faultinj.Campaign.hc_breaker_trips t.Faultinj.Campaign.hc_heals;
  json_int "hostile.injected" t.Faultinj.Campaign.hc_injected;
  json_int "hostile.contained" t.Faultinj.Campaign.hc_contained;
  json_int "hostile.escaped" t.Faultinj.Campaign.hc_escaped;
  json_int "hostile.fail_open" t.Faultinj.Campaign.hc_fail_open;
  json_int "hostile.guard_anomalies" t.Faultinj.Campaign.hc_guard_anoms;
  json_int "hostile.rollbacks" t.Faultinj.Campaign.hc_rollbacks;
  json_bool "hostile.passed" (Faultinj.Campaign.hostile_passed r);
  Printf.printf "verdict: %s (escapes and silent fail-opens must be zero)\n"
    (if Faultinj.Campaign.hostile_passed r then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* Rollout: shadow-walk overhead + the candidate ladder.                *)

(* Fixed regression budget, dumped next to the measurements so CI can
   fail the bench from the JSON alone: the lockstep shadow walk must
   cost at most 15% of fleet wall-clock.  The walk itself is a second
   pointer-chase over an already-resident arena while the tick is
   dominated by device emulation, so the reference-container numbers sit
   far below the budget; a reintroduced per-interaction allocation or a
   rebuild of the candidate inside the hot path blows through it. *)
let rollout_overhead_max = 0.15

let rollout_schema =
  "rollout.<row>.base_cpu_s / shadow_cpu_s = minimum user-CPU seconds \
   over paired fleet runs with the shadow walk off / on (same seed, \
   same ticks; Gc.compact before each timed run, and minima because \
   scheduler/collector contamination only ever adds time); overhead = \
   shadow/base - 1 over those minima; agree/stricter/looser = fleet-wide \
   shadow scoreboard of the timed run.  Rows: fdc and scsi put every \
   VM of a single-device fleet in lockstep (informational; fdc's \
   walk-heavy workload is the worst case), shadow_phase is the rollout \
   ladder's default shadow-phase shape — shadow_vms of vms walking, on \
   the worst-case device — the budgeted number.  ladder.* = one full \
   rollout ladder (retrained candidate): final rung, pinned revision, \
   rollback_latency_ticks (-1 when no rollback).  \
   rollout.threshold.overhead_max: fixed budget; CI fails if \
   rollout.shadow_phase.overhead exceeds it."

let rollout_bench () =
  section "Rollout: shadow-walk overhead and the candidate ladder";
  let vms = 3 in
  (* Enough ticks that per-VM setup (the candidate checker's two arena
     allocations) amortises: the budget bounds the steady-state walk. *)
  let ticks = if !quick then 32 else 48 in
  let pairs = if !quick then 6 else 7 in
  let shadow_fetch device =
    let w = Workload.Samples.find device in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    fun () ->
      Metrics.Spec_cache.built_retrained (module W) W.paper_version
        ~cases:!Metrics.Spec_cache.training_cases
  in
  (* Direct Vm loop (per-index shadow subset, which Supervisor's
     per-device options cannot express); same seeds for the on/off
     configurations of a row, so the workload streams are identical. *)
  let run_fleet device nvms shadow_pred =
    List.init nvms (fun i ->
        let opts =
          {
            (Fleet.Vm.default_options ~device) with
            Fleet.Vm.shadow =
              (if shadow_pred i then Some (shadow_fetch device) else None);
          }
        in
        let vm =
          Fleet.Vm.create ~index:i
            ~seed:(Int64.add !seed (Int64.of_int (31 * i)))
            opts
        in
        for _ = 1 to ticks do
          Fleet.Vm.tick vm
        done;
        Fleet.Vm.report vm)
  in
  let cpu () = (Unix.times ()).Unix.tms_utime in
  let timed device nvms shadow_pred =
    Gc.compact ();
    let t0 = cpu () in
    let rs = run_fleet device nvms shadow_pred in
    (cpu () -. t0, rs)
  in
  let none _ = false in
  let all _ = true in
  let rollout_default = Fleet.Rollout.default_config ~device:"fdc" in
  let configs =
    [
      (* Worst case: every VM of the walk-heaviest device in lockstep. *)
      ("fdc", "fdc", vms, all);
      ("scsi", "scsi", vms, all);
      (* The budgeted row: the rollout ladder's default shadow-phase
         shape (shadow_vms of vms walking) on the worst-case device. *)
      ( "shadow_phase",
        "fdc",
        rollout_default.Fleet.Rollout.vms,
        fun i -> i < rollout_default.Fleet.Rollout.shadow_vms );
    ]
  in
  let budget_overhead = ref nan in
  let rows =
    List.map
      (fun (row, device, nvms, pred) ->
        (* Warm base and candidate cache entries: the timed runs measure
           serving, not training. *)
        ignore (timed device nvms pred);
        let base_ts = ref [] and sh_ts = ref [] in
        let last = ref [] in
        for _ = 1 to pairs do
          let b, _ = timed device nvms none in
          let s, rs = timed device nvms pred in
          base_ts := b :: !base_ts;
          sh_ts := s :: !sh_ts;
          last := rs
        done;
        (* Ratio of minima: scheduler and collector contamination only
           ever adds time, so the minimum of each configuration is the
           robust estimate of its true busy cost. *)
        let base_dt = List.fold_left Float.min infinity !base_ts
        and sh_dt = List.fold_left Float.min infinity !sh_ts in
        let overhead = if base_dt > 0. then (sh_dt /. base_dt) -. 1.0 else 0.0 in
        if row = "shadow_phase" then budget_overhead := overhead;
        let agree, stricter, looser =
          List.fold_left
            (fun (a, s, l) (r : Fleet.Vm.report) ->
              match r.Fleet.Vm.r_shadow with
              | Some sh ->
                ( a + sh.Fleet.Vm.sh_agree,
                  s + sh.Fleet.Vm.sh_stricter,
                  l + sh.Fleet.Vm.sh_looser )
              | None -> (a, s, l))
            (0, 0, 0) !last
        in
        json_float (Printf.sprintf "rollout.%s.base_cpu_s" row) base_dt;
        json_float (Printf.sprintf "rollout.%s.shadow_cpu_s" row) sh_dt;
        json_float (Printf.sprintf "rollout.%s.overhead" row) overhead;
        json_int (Printf.sprintf "rollout.%s.agree" row) agree;
        json_int (Printf.sprintf "rollout.%s.stricter" row) stricter;
        json_int (Printf.sprintf "rollout.%s.looser" row) looser;
        [
          row;
          Printf.sprintf "%.0f ms" (base_dt *. 1000.);
          Printf.sprintf "%.0f ms" (sh_dt *. 1000.);
          Printf.sprintf "%+.1f%%" (overhead *. 100.);
          Printf.sprintf "%d/%d/%d" agree stricter looser;
        ])
      configs
  in
  Table.print
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Fleet"; "base"; "shadow"; "overhead"; "agree/str/loose" ]
    rows;
  Printf.printf
    "(%d ticks, minimum of %d pairs, user-CPU time; shadow walks the \
     retrained candidate in lockstep; the budget applies to the \
     shadow_phase row: %+.1f%% vs %.0f%% max)\n"
    ticks pairs
    (100. *. !budget_overhead)
    (100. *. rollout_overhead_max);
  (* One full ladder: the retrained candidate must promote cleanly. *)
  Fleet.Rollout.reset_latches ();
  let device = "fdc" in
  let w = Workload.Samples.find device in
  let cfg =
    {
      (Fleet.Rollout.default_config ~device) with
      Fleet.Rollout.vms = (if !quick then 2 else 4);
      shadow_ticks = (if !quick then 6 else 12);
      canary_ticks = (if !quick then 4 else 8);
      seed = !seed;
    }
  in
  let recipe =
    Fleet.Rollout.retrained w ~cases:!Metrics.Spec_cache.training_cases
  in
  let t0 = Unix.gettimeofday () in
  let o = Fleet.Rollout.run cfg recipe in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%a" Fleet.Rollout.pp_outcome o;
  Printf.printf "ladder wall-clock: %.1fs\n" dt;
  json_str "rollout.ladder.device" device;
  json_str "rollout.ladder.final"
    (Fleet.Rollout.rung_to_string o.Fleet.Rollout.o_final);
  json_int "rollout.ladder.base_revision" o.Fleet.Rollout.o_base_revision;
  json_int "rollout.ladder.pinned_revision" o.Fleet.Rollout.o_pinned_revision;
  json_int "rollout.ladder.rollback_latency_ticks"
    (match o.Fleet.Rollout.o_rollback with
    | Some rb -> rb.Fleet.Rollout.rb_latency_ticks
    | None -> -1);
  json_float "rollout.threshold.overhead_max" rollout_overhead_max;
  json_str "rollout.schema" rollout_schema

let () =
  let cmds = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick := true
        | "--seed" | "--json" | "--jobs" -> ()
        | s when i > 1 && Sys.argv.(i - 1) = "--seed" -> seed := Int64.of_string s
        | s when i > 1 && Sys.argv.(i - 1) = "--json" -> json_path := Some s
        | s when i > 1 && Sys.argv.(i - 1) = "--jobs" ->
          jobs_requested := max 1 (int_of_string s)
        | s -> cmds := s :: !cmds)
    Sys.argv;
  let cmds = if !cmds = [] then [ "all" ] else List.rev !cmds in
  jobs := min !jobs_requested (Runner.default_jobs ());
  if !jobs < !jobs_requested then
    Printf.printf "--jobs %d requested, %d core%s available: running %d\n"
      !jobs_requested (Runner.default_jobs ())
      (if Runner.default_jobs () = 1 then "" else "s")
      !jobs;
  (* Fail on an unwritable --json target now, not after the full run. *)
  (match !json_path with
  | Some path ->
    (try close_out (open_out path)
     with Sys_error msg ->
       Printf.eprintf "cannot write json output: %s\n" msg;
       exit 2)
  | None -> ());
  Metrics.Spec_cache.training_cases := (if !quick then 12 else 24);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun cmd ->
      match cmd with
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "fig3" -> fig_storage ~latency:false ()
      | "fig4" -> fig_storage ~latency:true ()
      | "fig5" -> fig5 ()
      | "ablation" -> ablation ()
      | "baseline" -> baseline ()
      | "micro" -> micro ()
      | "minimize" -> minimize_bench ()
      | "fleet" -> fleet_bench ()
      | "scale" -> scale_bench ()
      | "fuzz" -> fuzz_smoke ()
      | "locate" -> locate_bench ()
      | "hostile" -> hostile_bench ()
      | "rollout" -> rollout_bench ()
      | "all" ->
        table2 ();
        table3 ();
        fig_storage ~latency:false ();
        fig_storage ~latency:true ();
        fig5 ();
        baseline ();
        ablation ();
        micro ();
        minimize_bench ();
        fleet_bench ();
        scale_bench ();
        fuzz_smoke ();
        locate_bench ();
        hostile_bench ();
        rollout_bench ()
      | other ->
        Printf.eprintf
          "unknown command %s (table2|table3|fig3|fig4|fig5|baseline|ablation|micro|minimize|fleet|scale|fuzz|locate|hostile|rollout|all)\n"
          other;
        exit 2)
    cmds;
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal bench time: %.1fs (%d job%s)\n" wall !jobs
    (if !jobs = 1 then "" else "s");
  match !json_path with
  | Some path ->
    (* meta.* fields describe the run itself and are the only keys that
       legitimately differ between --jobs settings. *)
    json_int "meta.jobs" !jobs;
    json_int "meta.jobs_requested" !jobs_requested;
    json_float "meta.wall_clock_s" wall;
    if Float.is_finite !soak_wall_s then
      json_float "meta.soak_wall_s" !soak_wall_s;
    json_write path;
    Printf.printf "machine-readable results written to %s\n" path
  | None -> ()
