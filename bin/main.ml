(* sedspec — command-line front end.

   Subcommands: list, inspect, attack, soak, coverage.  See README.md. *)

open Cmdliner

let setup_training cases = Metrics.Spec_cache.training_cases := cases

let training_cases_arg =
  let doc = "Benign training cases used to build specifications." in
  Arg.(value & opt int 24 & info [ "training-cases" ] ~docv:"N" ~doc)

let device_arg =
  let doc = "Device: fdc, ehci, pcnet, sdhci or scsi." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DEVICE" ~doc)

let find_device name =
  try Workload.Samples.find name
  with Not_found ->
    Printf.eprintf "unknown device %s (fdc|ehci|pcnet|sdhci|scsi)\n" name;
    exit 2

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "Devices (QEMU version used by the paper's case studies):";
    List.iter
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        Printf.printf "  %-8s v%s\n" W.device_name
          (Devices.Qemu_version.to_string W.paper_version))
      Workload.Samples.all;
    print_endline "";
    print_endline "Attack catalogue:";
    List.iter
      (fun (a : Attacks.Attack.t) ->
        Printf.printf "  %-16s %-6s %s\n" a.cve a.device a.description)
      Attacks.Attack.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List devices and the CVE catalogue")
    Term.(const run $ const ())

(* --- inspect ------------------------------------------------------------ *)

let inspect_cmd =
  let save_arg =
    let doc = "Save the trained specification to $(docv) (Sedspec.Persist format)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let dot_arg =
    let doc = "Write a Graphviz rendering of the ES-CFG to $(docv)." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let run device cases save dot =
    setup_training cases;
    let w = find_device device in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let built = Metrics.Spec_cache.built (module W) W.paper_version in
    Format.printf "device %s at QEMU v%s@." W.device_name
      (Devices.Qemu_version.to_string W.paper_version);
    Format.printf "@.%a@." Sedspec.Pipeline.pp_built built;
    Format.printf "@.device state parameter selection:@.%a@." Sedspec.Selection.pp
      (Sedspec.Es_cfg.selection built.spec);
    Format.printf "content-tracked buffers: %s@."
      (String.concat ", "
         (Sedspec.Es_cfg.selection built.spec).Sedspec.Selection.tracked_buffers);
    Format.printf "@.commands in the access table:@.";
    List.iter
      (fun ((bref, v) : Sedspec.Es_cfg.cmd_key) ->
        Format.printf "  %a = 0x%Lx@." Devir.Program.pp_bref bref v)
      (List.sort compare (Sedspec.Es_cfg.commands built.spec));
    (match save with
    | Some path -> (
      match Sedspec.Persist.save built.spec path with
      | Ok () -> Format.printf "@.specification saved to %s@." path
      | Error msg ->
        Printf.eprintf "cannot save specification: %s\n" msg;
        exit 1)
    | None -> ());
    match dot with
    | Some path ->
      Sedspec.Viz.save_dot built.spec path;
      Format.printf "ES-CFG dot graph written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Train and print a device's execution specification")
    Term.(const run $ device_arg $ training_cases_arg $ save_arg $ dot_arg)

(* --- attack ------------------------------------------------------------- *)

let jobs_arg =
  let doc = "Worker domains used to fan independent experiments out in parallel." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let attack_cmd =
  let cve_arg =
    let doc = "CVE id, e.g. CVE-2015-3456, or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CVE" ~doc)
  in
  let run cve cases jobs =
    setup_training cases;
    let attacks =
      if cve = "all" then Attacks.Attack.all
      else
        try [ Attacks.Attack.find cve ]
        with Not_found ->
          Printf.eprintf "unknown CVE %s (try 'list')\n" cve;
          exit 2
    in
    List.iter
      (fun r ->
        Format.printf "%a@." Metrics.Case_study.pp_result r;
        Format.printf "  matches paper: %b@.@."
          (Metrics.Case_study.matches_expectation r))
      (Sedspec_util.Runner.map ~jobs Metrics.Case_study.run attacks)
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Replay a CVE exploit under each check strategy (Table III)")
    Term.(const run $ cve_arg $ training_cases_arg $ jobs_arg)

(* --- soak --------------------------------------------------------------- *)

let soak_cmd =
  let hours_arg =
    let doc = "Simulated soak hours." in
    Arg.(value & opt int 10 & info [ "hours" ] ~docv:"H" ~doc)
  in
  let cases_per_hour_arg =
    let doc = "Test cases per simulated hour." in
    Arg.(value & opt int 40 & info [ "cases-per-hour" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run device hours cases_per_hour seed cases =
    setup_training cases;
    let w = find_device device in
    let r =
      Metrics.Fpr.soak ~seed ~cases_per_hour ~checkpoint_hours:[ hours ] w
    in
    Format.printf "%a@." Metrics.Fpr.pp_result r
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run the benign false-positive soak (Tables II/III) on a device")
    Term.(const run $ device_arg $ hours_arg $ cases_per_hour_arg $ seed_arg
          $ training_cases_arg)

(* --- coverage ------------------------------------------------------------ *)

let coverage_cmd =
  let run device cases =
    setup_training cases;
    let w = find_device device in
    let r = Metrics.Coverage.measure w in
    Format.printf "%a@." Metrics.Coverage.pp_result r
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Measure effective coverage of the training corpus (Table III)")
    Term.(const run $ device_arg $ training_cases_arg)

(* --- dump-device ----------------------------------------------------------- *)

let dump_device_cmd =
  let version_arg =
    let doc = "QEMU version to build the model at (default: the paper's)." in
    Arg.(value & opt (some string) None & info [ "qemu" ] ~docv:"VER" ~doc)
  in
  let run device version =
    let w = find_device device in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let version =
      match version with
      | Some v -> Devices.Qemu_version.of_string v
      | None -> W.paper_version
    in
    let m = W.make_machine version in
    let program = Interp.program (Vmm.Machine.interp_of m W.device_name) in
    print_string (Devir.Pretty.program_to_string program)
  in
  Cmd.v
    (Cmd.info "dump-device"
       ~doc:"Render a device model as pseudo-C (handlers, blocks, layout)")
    Term.(const run $ device_arg $ version_arg)

(* --- check-spec ----------------------------------------------------------- *)

let check_spec_cmd =
  let file_arg =
    let doc = "Saved specification file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run device file =
    let w = find_device device in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let m = W.make_machine W.paper_version in
    let program = Interp.program (Vmm.Machine.interp_of m W.device_name) in
    match Sedspec.Persist.load ~program file with
    | Error msg ->
      Printf.eprintf "load failed: %s
" msg;
      exit 1
    | Ok spec ->
      Format.printf "%a@." Sedspec.Es_cfg.pp_stats spec;
      let checker = Sedspec.Checker.attach m ~spec W.device_name in
      let trainer = W.trainer ~cases:4 in
      for case = 0 to 3 do
        trainer.Sedspec.Pipeline.run_case m case
      done;
      let anoms = Sedspec.Checker.drain_anomalies checker in
      Format.printf "benign replay under the loaded spec: %d anomalies@."
        (List.length anoms);
      if anoms <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check-spec"
       ~doc:"Load a saved specification and verify benign traffic passes")
    Term.(const run $ device_arg $ file_arg)

let () =
  let doc = "SEDSpec: securing emulated devices by enforcing execution specification" in
  let info = Cmd.info "sedspec" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            inspect_cmd;
            attack_cmd;
            soak_cmd;
            coverage_cmd;
            check_spec_cmd;
            dump_device_cmd;
          ]))
