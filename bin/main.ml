(* sedspec — command-line front end.

   Subcommands: list, inspect, attack, soak, coverage.  See README.md. *)

open Cmdliner

let setup_training cases = Metrics.Spec_cache.training_cases := cases

let training_cases_arg =
  let doc = "Benign training cases used to build specifications." in
  Arg.(value & opt int 24 & info [ "training-cases" ] ~docv:"N" ~doc)

let device_arg =
  let doc = "Device: fdc, ehci, pcnet, sdhci, scsi or virtio." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DEVICE" ~doc)

let find_device name =
  try Workload.Samples.find name
  with Not_found ->
    Printf.eprintf "unknown device %s (fdc|ehci|pcnet|sdhci|scsi|virtio)\n" name;
    exit 2

(* --- list -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "Devices (QEMU version used by the paper's case studies):";
    List.iter
      (fun w ->
        let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
        Printf.printf "  %-8s v%s\n" W.device_name
          (Devices.Qemu_version.to_string W.paper_version))
      Workload.Samples.all;
    print_endline "";
    print_endline "Attack catalogue:";
    List.iter
      (fun (a : Attacks.Attack.t) ->
        Printf.printf "  %-16s %-6s %s\n" a.cve a.device a.description)
      Attacks.Attack.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List devices and the CVE catalogue")
    Term.(const run $ const ())

(* --- inspect ------------------------------------------------------------ *)

let inspect_cmd =
  let save_arg =
    let doc = "Save the trained specification to $(docv) (Sedspec.Persist format)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let dot_arg =
    let doc = "Write a Graphviz rendering of the ES-CFG to $(docv)." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let minimize_arg =
    let doc = "Also minimize the specification (dependence-driven check \
               pruning and chain merging) and print the before/after \
               comparison; saved/rendered outputs then describe the \
               minimized spec." in
    Arg.(value & flag & info [ "minimize" ] ~doc)
  in
  let run device cases save dot minimize =
    setup_training cases;
    let w = find_device device in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let built =
      if minimize then Metrics.Spec_cache.built_minimized (module W) W.paper_version
      else Metrics.Spec_cache.built (module W) W.paper_version
    in
    Format.printf "device %s at QEMU v%s@." W.device_name
      (Devices.Qemu_version.to_string W.paper_version);
    Format.printf "@.%a@." Sedspec.Pipeline.pp_built built;
    (if minimize then
       let trained = Metrics.Spec_cache.built (module W) W.paper_version in
       Format.printf "@.trained spec (before minimization):@.%a@."
         Sedspec.Es_cfg.pp_stats trained.Sedspec.Pipeline.spec);
    Format.printf "@.device state parameter selection:@.%a@." Sedspec.Selection.pp
      (Sedspec.Es_cfg.selection built.spec);
    Format.printf "content-tracked buffers: %s@."
      (String.concat ", "
         (Sedspec.Es_cfg.selection built.spec).Sedspec.Selection.tracked_buffers);
    Format.printf "@.commands in the access table:@.";
    List.iter
      (fun ((bref, v) : Sedspec.Es_cfg.cmd_key) ->
        Format.printf "  %a = 0x%Lx@." Devir.Program.pp_bref bref v)
      (List.sort compare (Sedspec.Es_cfg.commands built.spec));
    (match save with
    | Some path -> (
      match Sedspec.Persist.save built.spec path with
      | Ok () -> Format.printf "@.specification saved to %s@." path
      | Error msg ->
        Printf.eprintf "cannot save specification: %s\n" msg;
        exit 1)
    | None -> ());
    match dot with
    | Some path ->
      Sedspec.Viz.save_dot built.spec path;
      Format.printf "ES-CFG dot graph written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Train and print a device's execution specification")
    Term.(const run $ device_arg $ training_cases_arg $ save_arg $ dot_arg
          $ minimize_arg)

(* --- attack ------------------------------------------------------------- *)

let jobs_arg =
  let doc = "Worker domains used to fan independent experiments out in parallel." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let attack_cmd =
  let cve_arg =
    let doc = "CVE id, e.g. CVE-2015-3456, or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CVE" ~doc)
  in
  let run cve cases jobs =
    setup_training cases;
    let attacks =
      if cve = "all" then Attacks.Attack.all
      else
        try [ Attacks.Attack.find cve ]
        with Not_found ->
          Printf.eprintf "unknown CVE %s (try 'list')\n" cve;
          exit 2
    in
    List.iter
      (fun r ->
        Format.printf "%a@." Metrics.Case_study.pp_result r;
        Format.printf "  matches paper: %b@.@."
          (Metrics.Case_study.matches_expectation r))
      (Sedspec_util.Runner.map ~jobs Metrics.Case_study.run attacks)
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Replay a CVE exploit under each check strategy (Table III)")
    Term.(const run $ cve_arg $ training_cases_arg $ jobs_arg)

(* --- soak --------------------------------------------------------------- *)

let soak_cmd =
  let hours_arg =
    let doc = "Simulated soak hours." in
    Arg.(value & opt int 10 & info [ "hours" ] ~docv:"H" ~doc)
  in
  let cases_per_hour_arg =
    let doc = "Test cases per simulated hour." in
    Arg.(value & opt int 40 & info [ "cases-per-hour" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run device hours cases_per_hour seed cases =
    setup_training cases;
    let w = find_device device in
    let r =
      Metrics.Fpr.soak ~seed ~cases_per_hour ~checkpoint_hours:[ hours ] w
    in
    Format.printf "%a@." Metrics.Fpr.pp_result r
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run the benign false-positive soak (Tables II/III) on a device")
    Term.(const run $ device_arg $ hours_arg $ cases_per_hour_arg $ seed_arg
          $ training_cases_arg)

(* --- coverage ------------------------------------------------------------ *)

let coverage_cmd =
  let run device cases =
    setup_training cases;
    let w = find_device device in
    let r = Metrics.Coverage.measure w in
    Format.printf "%a@." Metrics.Coverage.pp_result r
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Measure effective coverage of the training corpus (Table III)")
    Term.(const run $ device_arg $ training_cases_arg)

(* --- dump-device ----------------------------------------------------------- *)

let dump_device_cmd =
  let version_arg =
    let doc = "QEMU version to build the model at (default: the paper's)." in
    Arg.(value & opt (some string) None & info [ "qemu" ] ~docv:"VER" ~doc)
  in
  let run device version =
    let w = find_device device in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let version =
      match version with
      | Some v -> Devices.Qemu_version.of_string v
      | None -> W.paper_version
    in
    let m = W.make_machine version in
    let program = Interp.program (Vmm.Machine.interp_of m W.device_name) in
    print_string (Devir.Pretty.program_to_string program)
  in
  Cmd.v
    (Cmd.info "dump-device"
       ~doc:"Render a device model as pseudo-C (handlers, blocks, layout)")
    Term.(const run $ device_arg $ version_arg)

(* --- fuzz ----------------------------------------------------------------- *)

let fuzz_cmd =
  let device_opt_arg =
    let doc = "Device to fuzz (fdc, ehci, pcnet, sdhci, scsi, virtio) or 'all'." in
    Arg.(value & opt string "fdc" & info [ "device" ] ~docv:"DEVICE" ~doc)
  in
  let budget_arg =
    let doc = "Mutant evaluations per device." in
    Arg.(value & opt int 1000 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Master PRNG seed." in
    Arg.(value & opt int64 0L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let batch_arg =
    let doc = "Candidates derived per generation." in
    Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let max_steps_arg =
    let doc = "Mutant length cap in interaction steps." in
    Arg.(value & opt int 48 & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Write the JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let corpus_out_arg =
    let doc = "Save the final corpus to $(docv) (with 'all', one file per \
               device: $(docv).DEVICE)." in
    Arg.(value & opt (some string) None & info [ "corpus-out" ] ~docv:"FILE" ~doc)
  in
  let corpus_in_arg =
    let doc = "Extra seed inputs loaded from a corpus file." in
    Arg.(value & opt (some string) None & info [ "corpus-in" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc = "Replay the inputs in $(docv) under the differential oracle and \
               report per-input verdicts instead of fuzzing." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let oracle_arg =
    let doc = "Differential oracle: $(b,default) (compiled vs interpreted), \
               $(b,minimized) (minimized vs trained spec, same engine) or \
               $(b,all)." in
    Arg.(value
         & opt (enum [ ("default", `Default); ("minimized", `Minimized); ("all", `All) ]) `Default
         & info [ "oracle" ] ~docv:"ORACLE" ~doc)
  in
  let oracle_profiles = function
    | `Default -> Fuzz.Exec.default_profiles
    | `Minimized -> Fuzz.Exec.minimized_profiles
    | `All -> Fuzz.Exec.all_profiles
  in
  let load_corpus file =
    match Fuzz.Input.load_corpus file with
    | Ok inputs -> inputs
    | Error msg ->
      Printf.eprintf "cannot load corpus %s: %s\n" file msg;
      exit 2
  in
  let replay_file ~profiles file =
    let inputs = load_corpus file in
    let failed = ref 0 in
    List.iteri
      (fun i (input : Fuzz.Input.t) ->
        let o = Fuzz.Exec.evaluate ~profiles input in
        let verdict =
          match (o.Fuzz.Exec.divergences, o.Fuzz.Exec.crashed) with
          | [], None -> "ok"
          | _ ->
            incr failed;
            String.concat "; "
              ((match o.Fuzz.Exec.crashed with
               | Some e -> [ "crash: " ^ e ]
               | None -> [])
              @ List.map
                  (fun (d : Fuzz.Exec.divergence) ->
                    Printf.sprintf "%s/%s: %s" d.d_profile d.d_field d.d_detail)
                  o.Fuzz.Exec.divergences)
        in
        Printf.printf "input %d (%s, %s, %d steps): %s\n" i input.device
          (Fuzz.Input.origin_to_string input.origin)
          (Array.length input.steps) verdict)
      inputs;
    if !failed > 0 then exit 1
  in
  let fuzz_devices ~profiles device budget seed jobs batch max_steps json
      corpus_out corpus_in =
    let devices =
      if device = "all" then
        List.map
          (fun w ->
            let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
            W.device_name)
          Workload.Samples.all
      else begin
        ignore (find_device device);
        [ device ]
      end
    in
    let extra_seeds =
      match corpus_in with Some f -> load_corpus f | None -> []
    in
    let reports =
      List.map
        (fun dev ->
          let opts =
            {
              (Fuzz.Loop.default_options ~device:dev) with
              Fuzz.Loop.seed;
              budget;
              jobs;
              batch;
              max_steps;
              profiles;
              extra_seeds =
                List.filter
                  (fun (i : Fuzz.Input.t) -> i.device = dev)
                  extra_seeds;
            }
          in
          let r = Fuzz.Loop.run opts in
          Printf.printf
            "%s: executed %d, corpus %d (%d seeds), coverage %d nodes / %d \
             edges (+%d/+%d over seeds), %d divergent inputs, %d crashes, %d \
             fp candidates\n"
            r.Fuzz.Loop.r_device r.r_executed (List.length r.r_corpus)
            r.r_seed_corpus r.r_nodes r.r_edges (r.r_nodes - r.r_seed_nodes)
            (r.r_edges - r.r_seed_edges) r.r_divergent_inputs r.r_crashes
            (List.length r.r_fp_candidates);
          List.iter
            (fun (f : Fuzz.Loop.finding) ->
              Printf.printf "  divergence [%s/%s] %s (%d-step reproducer)\n"
                f.f_profile f.f_field f.f_detail
                (Array.length f.f_input.Fuzz.Input.steps))
            r.r_findings;
          (match corpus_out with
          | Some base ->
            let file = if device = "all" then base ^ "." ^ dev else base in
            Fuzz.Input.save_corpus file r.r_corpus
          | None -> ());
          r)
        devices
    in
    (match json with
    | Some file ->
      let body =
        match reports with
        | [ r ] -> Fuzz.Loop.report_to_string r
        | rs ->
          Sedspec_util.Json.to_string
            (Sedspec_util.Json.List
               (List.map Fuzz.Loop.report_to_json rs))
      in
      let tmp = file ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc body);
      Sys.rename tmp file
    | None -> ());
    if
      List.exists
        (fun r -> r.Fuzz.Loop.r_divergent_inputs > 0 || r.r_crashes > 0)
        reports
    then exit 1
  in
  let run device budget seed jobs batch max_steps json corpus_out corpus_in
      replay oracle cases =
    setup_training cases;
    let profiles = oracle_profiles oracle in
    match replay with
    | Some file -> replay_file ~profiles file
    | None ->
      fuzz_devices ~profiles device budget seed jobs batch max_steps json
        corpus_out corpus_in
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Coverage-guided differential fuzzing of the ES-Checker")
    Term.(const run $ device_opt_arg $ budget_arg $ seed_arg $ jobs_arg
          $ batch_arg $ max_steps_arg $ json_arg $ corpus_out_arg
          $ corpus_in_arg $ replay_arg $ oracle_arg $ training_cases_arg)

(* --- locate ---------------------------------------------------------------- *)

let locate_cmd =
  let device_arg =
    let doc =
      "Restrict to one device's CVEs (fdc, ehci, pcnet, sdhci, scsi, virtio)."
    in
    Arg.(value & opt (some string) None & info [ "device" ] ~docv:"DEVICE" ~doc)
  in
  let cve_arg =
    let doc = "Restrict to one CVE id, e.g. CVE-2021-3409." in
    Arg.(value & opt (some string) None & info [ "cve" ] ~docv:"CVE" ~doc)
  in
  let budget_arg =
    let doc = "Mutant evaluations per CVE." in
    Arg.(value & opt int 128 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Master PRNG seed." in
    Arg.(value & opt int64 0L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let max_steps_arg =
    let doc = "Mutant length cap in interaction steps." in
    Arg.(value & opt int 48 & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Write the behaviour-delta JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc =
      "Exit non-zero unless every selected CVE is localized (all its \
       statically patched blocks appear in the fuzzer's changed-block set)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run device cve budget seed jobs max_steps json check cases =
    setup_training cases;
    let opts =
      {
        Fuzz.Locate.default_options with
        Fuzz.Locate.device;
        cve;
        budget;
        seed;
        jobs;
        max_steps;
      }
    in
    if Fuzz.Locate.targets opts = [] then begin
      Printf.eprintf "no catalogued CVE matches the filters (try 'list')\n";
      exit 2
    end;
    let report = Fuzz.Locate.run opts in
    Format.printf "%a@." Fuzz.Delta.pp report;
    (match json with
    | Some file ->
      let tmp = file ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Fuzz.Delta.to_string report));
      Sys.rename tmp file
    | None -> ());
    if
      check
      && List.exists
           (fun (d : Fuzz.Delta.cve_delta) -> not d.Fuzz.Delta.cd_localized)
           report.Fuzz.Delta.deltas
    then exit 1
  in
  Cmd.v
    (Cmd.info "locate"
       ~doc:
         "Locate behaviour deviations across each CVE's vulnerable/patched \
          version pair")
    Term.(const run $ device_arg $ cve_arg $ budget_arg $ seed_arg $ jobs_arg
          $ max_steps_arg $ json_arg $ check_arg $ training_cases_arg)

(* --- fleet ---------------------------------------------------------------- *)

let fleet_cmd =
  let devices_arg =
    let doc =
      "Comma-separated devices assigned round-robin (fdc, ehci, pcnet, \
       sdhci, scsi) or 'all'."
    in
    Arg.(value & opt string "all" & info [ "device" ] ~docv:"DEVICES" ~doc)
  in
  let vms_arg =
    let doc = "Fleet size (protected VMs)." in
    Arg.(value & opt int 8 & info [ "vms" ] ~docv:"N" ~doc)
  in
  let ticks_arg =
    let doc = "Supervision periods per VM." in
    Arg.(value & opt int 32 & info [ "ticks" ] ~docv:"N" ~doc)
  in
  let ops_arg =
    let doc = "Logical workload operations per tick." in
    Arg.(value & opt int 12 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Fleet seed (per-VM seeds derive from it; jobs-independent)." in
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let deadline_arg =
    let doc = "Watchdog step budget per checker walk (0 disables)." in
    Arg.(value & opt int 50_000 & info [ "deadline" ] ~docv:"STEPS" ~doc)
  in
  let json_arg =
    let doc = "Write the health-snapshot JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let run device vms ticks ops seed jobs deadline json training =
    setup_training training;
    let devices =
      if device = "all" then
        List.map
          (fun w ->
            let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
            W.device_name)
          Workload.Samples.all
      else begin
        let ds = String.split_on_char ',' device in
        List.iter (fun d -> ignore (find_device d)) ds;
        ds
      end
    in
    let opts =
      {
        Fleet.Supervisor.vms;
        ticks;
        seed;
        jobs;
        devices;
        vm_opts =
          (fun device ->
            {
              (Fleet.Vm.default_options ~device) with
              Fleet.Vm.ops_per_tick = ops;
              deadline = (if deadline <= 0 then None else Some deadline);
            });
      }
    in
    let r = Fleet.Supervisor.run opts in
    Format.printf "%a" Fleet.Supervisor.pp_report r;
    match json with
    | Some file ->
      let body = Fleet.Supervisor.report_to_json r in
      let tmp = file ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc body);
      Sys.rename tmp file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Serve a fleet of protected VMs under the deadline watchdog, \
          error-budget governor and bulkhead isolation")
    Term.(const run $ devices_arg $ vms_arg $ ticks_arg $ ops_arg $ seed_arg
          $ jobs_arg $ deadline_arg $ json_arg $ training_cases_arg)

(* --- evolve ---------------------------------------------------------------- *)

let evolve_cmd =
  let recipe_arg =
    let doc =
      "Candidate recipe: 'retrained' or 'retrained:N' (retrain on N benign \
       cases), 'minimized' (dependence-driven minimization), or \
       'poisoned:CVE-XXXX-YYYY' (a deliberately looser candidate whose \
       training corpus treats that CVE's attack as benign — the ladder \
       must reject it)."
    in
    Arg.(value & opt string "retrained" & info [ "recipe" ] ~docv:"RECIPE" ~doc)
  in
  let vms_arg =
    let doc = "Fleet size per rollout phase." in
    Arg.(value & opt int 4 & info [ "vms" ] ~docv:"N" ~doc)
  in
  let canary_vms_arg =
    let doc = "Candidate-enforcing subset during the canary phase." in
    Arg.(value & opt int 1 & info [ "canary-vms" ] ~docv:"N" ~doc)
  in
  let shadow_vms_arg =
    let doc =
      "Shadow-walking subset (the shadow-overhead budget); 0 uses the \
       ladder default."
    in
    Arg.(value & opt int 0 & info [ "shadow-vms" ] ~docv:"N" ~doc)
  in
  let shadow_ticks_arg =
    let doc = "Supervision periods in the shadow phase." in
    Arg.(value & opt int 12 & info [ "shadow-ticks" ] ~docv:"N" ~doc)
  in
  let canary_ticks_arg =
    let doc = "Supervision periods in the canary phase." in
    Arg.(value & opt int 8 & info [ "canary-ticks" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Rollout seed (per-VM seeds derive from it; jobs-independent)." in
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json_arg =
    let doc = "Write the rollout outcome JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let expect_arg =
    let doc =
      "Exit nonzero unless the final rung is $(docv) (shadow, canary, \
       promoted or rolled-back) — for CI smokes."
    in
    Arg.(value & opt (some string) None & info [ "expect" ] ~docv:"RUNG" ~doc)
  in
  let poisoned_recipe ~cve ~device =
    let attack =
      try Attacks.Attack.find cve
      with Not_found ->
        Printf.eprintf "unknown CVE %s (try 'list')\n" cve;
        exit 2
    in
    if attack.Attacks.Attack.device <> device then begin
      Printf.eprintf "%s targets %s, not %s\n" cve attack.Attacks.Attack.device
        device;
      exit 2
    end;
    let w = find_device device in
    let module D = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    {
      Fleet.Rollout.rc_name = "poisoned:" ^ cve;
      rc_build =
        (fun version ->
          let m = D.make_machine version in
          let base = D.trainer ~cases:!Metrics.Spec_cache.training_cases in
          let trainer =
            {
              Sedspec.Pipeline.cases = base.Sedspec.Pipeline.cases + 1;
              run_case =
                (fun m i ->
                  if i < base.Sedspec.Pipeline.cases then
                    base.Sedspec.Pipeline.run_case m i
                  else begin
                    (try attack.Attacks.Attack.setup m with _ -> ());
                    try attack.Attacks.Attack.run m with _ -> ()
                  end);
            }
          in
          let b = Sedspec.Pipeline.build m ~device trainer in
          Sedspec.Es_cfg.set_version b.Sedspec.Pipeline.spec ~revision:1
            ~provenance:
              (Sedspec.Es_cfg.Retrained trainer.Sedspec.Pipeline.cases);
          b);
    }
  in
  let parse_recipe recipe device w =
    match recipe with
    | "minimized" -> Fleet.Rollout.minimized w
    | "retrained" ->
      Fleet.Rollout.retrained w ~cases:!Metrics.Spec_cache.training_cases
    | _ -> (
      match String.index_opt recipe ':' with
      | Some i -> (
        let kind = String.sub recipe 0 i in
        let arg = String.sub recipe (i + 1) (String.length recipe - i - 1) in
        match kind with
        | "retrained" -> (
          match int_of_string_opt arg with
          | Some n when n >= 1 -> Fleet.Rollout.retrained w ~cases:n
          | _ ->
            Printf.eprintf "retrained:N needs N >= 1 (got %s)\n" arg;
            exit 2)
        | "poisoned" -> poisoned_recipe ~cve:arg ~device
        | _ ->
          Printf.eprintf
            "unknown recipe %s (retrained[:N]|minimized|poisoned:CVE)\n" recipe;
          exit 2)
      | None ->
        Printf.eprintf
          "unknown recipe %s (retrained[:N]|minimized|poisoned:CVE)\n" recipe;
        exit 2)
  in
  let run device recipe vms canary_vms shadow_vms shadow_ticks canary_ticks
      seed jobs json expect training =
    setup_training training;
    let w = find_device device in
    let rc = parse_recipe recipe device w in
    let default = Fleet.Rollout.default_config ~device in
    let shadow_vms =
      if shadow_vms = 0 then min default.Fleet.Rollout.shadow_vms vms
      else shadow_vms
    in
    let cfg =
      {
        default with
        Fleet.Rollout.vms;
        canary_vms;
        shadow_vms;
        shadow_ticks;
        canary_ticks;
        seed;
        jobs;
      }
    in
    let o = Fleet.Rollout.run cfg rc in
    Format.printf "%a" Fleet.Rollout.pp_outcome o;
    (match json with
    | Some file ->
      let body =
        Sedspec_util.Json.to_string (Fleet.Rollout.outcome_to_json o)
      in
      let tmp = file ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc body);
      Sys.rename tmp file
    | None -> ());
    match expect with
    | Some want ->
      let got = Fleet.Rollout.rung_to_string o.Fleet.Rollout.o_final in
      if got <> want then begin
        Printf.eprintf "evolve: expected final rung %s, got %s\n" want got;
        exit 1
      end
    | None -> ()
  in
  Cmd.v
    (Cmd.info "evolve"
       ~doc:
         "Climb a candidate specification through the rollout ladder \
          (shadow -> canary -> promoted) with catalogue-gated automatic \
          rollback")
    Term.(const run $ device_arg $ recipe_arg $ vms_arg $ canary_vms_arg
          $ shadow_vms_arg $ shadow_ticks_arg $ canary_ticks_arg $ seed_arg
          $ jobs_arg $ json_arg $ expect_arg $ training_cases_arg)

(* --- faultinj -------------------------------------------------------------- *)

let faultinj_cmd =
  let devices_arg =
    let doc =
      "Comma-separated devices (fdc, ehci, pcnet, sdhci, scsi, virtio) or 'all'."
    in
    Arg.(value & opt string "all" & info [ "device" ] ~docv:"DEVICES" ~doc)
  in
  let plans_arg =
    let doc = "Fault plans per device-mode-engine combination." in
    Arg.(value & opt int 12 & info [ "plans" ] ~docv:"N" ~doc)
  in
  let cases_arg =
    let doc = "Soak cases run while each plan is armed." in
    Arg.(value & opt int 3 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let ops_arg =
    let doc = "Logical operations per soak case." in
    Arg.(value & opt int 6 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Master PRNG seed (plans and workloads replay exactly)." in
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json_arg =
    let doc = "Write the JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let fleet_vms_arg =
    let doc =
      "Run the fleet bulkhead-isolation campaign over $(docv) VMs instead of \
       the per-combo campaign (0 keeps the per-combo campaign)."
    in
    Arg.(value & opt int 0 & info [ "fleet-vms" ] ~docv:"N" ~doc)
  in
  let fleet_faulty_arg =
    let doc = "Fleet members carrying an armed fault (fleet mode)." in
    Arg.(value & opt int 3 & info [ "fleet-faulty" ] ~docv:"N" ~doc)
  in
  let fleet_ticks_arg =
    let doc = "Supervision periods per VM (fleet mode)." in
    Arg.(value & opt int 24 & info [ "fleet-ticks" ] ~docv:"N" ~doc)
  in
  let write_json json body =
    match json with
    | Some file ->
      let tmp = file ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc body);
      Sys.rename tmp file
    | None -> ()
  in
  let run device plans cases ops seed jobs json fleet_vms fleet_faulty
      fleet_ticks training =
    setup_training training;
    let devices =
      if device = "all" then
        List.map
          (fun w ->
            let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
            W.device_name)
          Workload.Samples.all
      else begin
        let ds = String.split_on_char ',' device in
        List.iter (fun d -> ignore (find_device d)) ds;
        ds
      end
    in
    if fleet_vms > 0 then begin
      let opts =
        {
          Faultinj.Campaign.fl_vms = fleet_vms;
          fl_faulty = fleet_faulty;
          fl_ticks = fleet_ticks;
          fl_seed = seed;
          fl_jobs = jobs;
          fl_devices = devices;
        }
      in
      let r = Faultinj.Campaign.fleet_isolation opts in
      Format.printf "%a" Faultinj.Campaign.pp_fleet_report r;
      write_json json
        (Sedspec_util.Json.to_string (Faultinj.Campaign.fleet_report_to_json r));
      if not (Faultinj.Campaign.fleet_passed r) then exit 1
    end
    else begin
      let opts =
        {
          Faultinj.Campaign.devices;
          plans_per_combo = plans;
          cases_per_plan = cases;
          ops_per_case = ops;
          seed;
          jobs;
        }
      in
      let r = Faultinj.Campaign.run opts in
      Format.printf "%a" Faultinj.Campaign.pp_report r;
      write_json json
        (Sedspec_util.Json.to_string (Faultinj.Campaign.report_to_json r));
      if not (Faultinj.Campaign.passed r) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "faultinj"
       ~doc:
         "Deterministic fault-injection campaign against the checker's \
          containment (exits 1 on any escaped exception or silent fail-open); \
          --fleet-vms switches to the fleet bulkhead-isolation campaign")
    Term.(const run $ devices_arg $ plans_arg $ cases_arg $ ops_arg $ seed_arg
          $ jobs_arg $ json_arg $ fleet_vms_arg $ fleet_faulty_arg
          $ fleet_ticks_arg $ training_cases_arg)


(* --- hostile --------------------------------------------------------------- *)

let hostile_cmd =
  let devices_arg =
    let doc =
      "Comma-separated devices under hostile response corruption (fdc, ehci, \
       pcnet, sdhci, scsi, virtio)."
    in
    Arg.(value & opt string "sdhci,virtio" & info [ "device" ] ~docv:"DEVICES" ~doc)
  in
  let plans_arg =
    let doc = "Hostile fault plans per device-mode-engine combination." in
    Arg.(value & opt int 36 & info [ "plans" ] ~docv:"N" ~doc)
  in
  let cases_arg =
    let doc = "Soak cases run while each plan is armed." in
    Arg.(value & opt int 6 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let ops_arg =
    let doc = "Logical operations per soak case." in
    Arg.(value & opt int 10 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let min_injected_arg =
    let doc = "Fail unless at least $(docv) corruptions were injected." in
    Arg.(value & opt int 5000 & info [ "min-injected" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Master PRNG seed (plans and workloads replay exactly)." in
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json_arg =
    let doc = "Write the JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let isolation_vms_arg =
    let doc =
      "Run the hostile fleet-isolation campaign over $(docv) guarded VMs \
       instead of the per-combo campaign (0 keeps the per-combo campaign)."
    in
    Arg.(value & opt int 0 & info [ "isolation-vms" ] ~docv:"N" ~doc)
  in
  let isolation_faulty_arg =
    let doc = "Fleet members carrying a hostile device model (isolation mode)." in
    Arg.(value & opt int 3 & info [ "isolation-faulty" ] ~docv:"N" ~doc)
  in
  let isolation_ticks_arg =
    let doc = "Supervision periods per VM (isolation mode)." in
    Arg.(value & opt int 24 & info [ "isolation-ticks" ] ~docv:"N" ~doc)
  in
  let write_json json body =
    match json with
    | Some file ->
      let tmp = file ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc body);
      Sys.rename tmp file
    | None -> ()
  in
  let run device plans cases ops min_injected seed jobs json isolation_vms
      isolation_faulty isolation_ticks training =
    setup_training training;
    let devices =
      let ds = String.split_on_char ',' device in
      List.iter (fun d -> ignore (find_device d)) ds;
      ds
    in
    if isolation_vms > 0 then begin
      let opts =
        {
          Faultinj.Campaign.fl_vms = isolation_vms;
          fl_faulty = isolation_faulty;
          fl_ticks = isolation_ticks;
          fl_seed = seed;
          fl_jobs = jobs;
          fl_devices = devices;
        }
      in
      let r = Faultinj.Campaign.hostile_isolation opts in
      Format.printf "%a" Faultinj.Campaign.pp_fleet_report r;
      write_json json
        (Sedspec_util.Json.to_string (Faultinj.Campaign.fleet_report_to_json r));
      if not (Faultinj.Campaign.fleet_passed r) then exit 1
    end
    else begin
      let opts =
        {
          Faultinj.Campaign.h_devices = devices;
          h_plans_per_combo = plans;
          h_cases_per_plan = cases;
          h_ops_per_case = ops;
          h_min_injected = min_injected;
          h_seed = seed;
          h_jobs = jobs;
        }
      in
      let r = Faultinj.Campaign.run_hostile opts in
      Format.printf "%a" Faultinj.Campaign.pp_hostile_report r;
      write_json json
        (Sedspec_util.Json.to_string (Faultinj.Campaign.hostile_report_to_json r));
      if not (Faultinj.Campaign.hostile_passed r) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "hostile"
       ~doc:
         "Hostile-device campaign: seeded corruption of device responses \
          (read returns, DMA lengths, completion stores, IRQ storms) under \
          the guest-side validator; exits 1 on any escaped exception, silent \
          fail-open, or too few injections; --isolation-vms switches to the \
          guarded fleet-isolation campaign")
    Term.(const run $ devices_arg $ plans_arg $ cases_arg $ ops_arg
          $ min_injected_arg $ seed_arg $ jobs_arg $ json_arg
          $ isolation_vms_arg $ isolation_faulty_arg $ isolation_ticks_arg
          $ training_cases_arg)

(* --- check-spec ----------------------------------------------------------- *)

let check_spec_cmd =
  let file_arg =
    let doc = "Saved specification file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run device file =
    let w = find_device device in
    let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
    let m = W.make_machine W.paper_version in
    let program = Interp.program (Vmm.Machine.interp_of m W.device_name) in
    match Sedspec.Persist.load ~program file with
    | Error msg ->
      Printf.eprintf "load failed: %s
" msg;
      exit 1
    | Ok spec ->
      Format.printf "%a@." Sedspec.Es_cfg.pp_stats spec;
      let checker = Sedspec.Checker.attach m ~spec W.device_name in
      let trainer = W.trainer ~cases:4 in
      for case = 0 to 3 do
        trainer.Sedspec.Pipeline.run_case m case
      done;
      let anoms = Sedspec.Checker.drain_anomalies checker in
      Format.printf "benign replay under the loaded spec: %d anomalies@."
        (List.length anoms);
      if anoms <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check-spec"
       ~doc:"Load a saved specification and verify benign traffic passes")
    Term.(const run $ device_arg $ file_arg)

let () =
  let doc = "SEDSpec: securing emulated devices by enforcing execution specification" in
  let info = Cmd.info "sedspec" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            inspect_cmd;
            attack_cmd;
            soak_cmd;
            coverage_cmd;
            fuzz_cmd;
            locate_cmd;
            fleet_cmd;
            evolve_cmd;
            faultinj_cmd;
            hostile_cmd;
            check_spec_cmd;
            dump_device_cmd;
          ]))
