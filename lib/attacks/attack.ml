type t = {
  cve : string;
  device : string;
  qemu_version : Devices.Qemu_version.t;
  fixed_in : Devices.Qemu_version.t;
  expected : Sedspec.Checker.strategy list;
  detectable : bool;
  description : string;
  setup : Vmm.Machine.t -> unit;
  run : Vmm.Machine.t -> unit;
  ground_check : Vmm.Machine.t -> string list;
}

type effects = {
  oob_writes : int;
  oob_reads : int;
  traps : (string * Interp.Event.trap) list;
  extra : string list;
}

let succeeded e =
  e.oob_writes > 0 || e.oob_reads > 0 || e.traps <> [] || e.extra <> []

let observe_effects m ~device thunk attack =
  let interp = Vmm.Machine.interp_of m device in
  let saved = Interp.hooks interp in
  let oob_writes = ref 0 and oob_reads = ref 0 in
  Interp.set_hooks interp
    {
      saved with
      Interp.on_oob =
        (fun e ->
          if e.Interp.Event.oob_write then incr oob_writes else incr oob_reads;
          saved.Interp.on_oob e);
    };
  Vmm.Machine.clear_traps m;
  thunk ();
  Interp.set_hooks interp saved;
  {
    oob_writes = !oob_writes;
    oob_reads = !oob_reads;
    traps = Vmm.Machine.last_traps m;
    extra = attack.ground_check m;
  }

let pp_effects ppf e =
  Format.fprintf ppf "oob-writes=%d oob-reads=%d traps=[%s]%s" e.oob_writes
    e.oob_reads
    (String.concat "; "
       (List.map (fun (_, t) -> Interp.Event.trap_to_string t) e.traps))
    (if e.extra = [] then "" else " " ^ String.concat ", " e.extra)

(* ------------------------------------------------------------------ *)
(* FDC: CVE-2015-3456 "Venom"                                          *)

let fdc_data_port = Int64.add Devices.Fdc.io_base 5L

let venom =
  {
    cve = "CVE-2015-3456";
    device = Devices.Fdc.name;
    qemu_version = Devices.Qemu_version.v 2 3 0;
    fixed_in = Devices.Fdc.venom_fixed_in;
    expected = [ Sedspec.Checker.Parameter_check; Sedspec.Checker.Conditional_jump_check ];
    detectable = true;
    description =
      "DRIVE SPECIFICATION parameter bytes grow data_pos past the 512-byte FIFO";
    setup =
      (fun m ->
        let d = Workload.Fdc_driver.create m in
        ignore (Workload.Fdc_driver.reset d);
        ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
        ignore (Workload.Fdc_driver.sense_interrupt d));
    run =
      (fun m ->
        (match Workload.Io.outb m fdc_data_port 0x8E with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        for _ = 1 to 600 do
          match Workload.Io.outb m fdc_data_port 0x01 with
          | Workload.Io.R_ok _ -> ()
          | _ -> raise Exit
        done);
    ground_check = (fun _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* EHCI: CVE-2020-14364                                                *)

let ehci_dbuf = 0x6000L

let cve_2020_14364 =
  {
    cve = "CVE-2020-14364";
    device = Devices.Ehci.name;
    qemu_version = Devices.Qemu_version.v 5 1 0;
    fixed_in = Devices.Ehci.cve_2020_14364_fixed_in;
    expected = [ Sedspec.Checker.Parameter_check; Sedspec.Checker.Indirect_jump_check ];
    detectable = true;
    description =
      "SETUP wLength > sizeof(data_buf); an OUT token overwrites setup_len, setup_index and the irq pointer";
    setup =
      (fun m ->
        let d = Workload.Ehci_driver.create m in
        ignore (Workload.Ehci_driver.reset_port d);
        ignore (Workload.Ehci_driver.set_address d 5);
        ignore (Workload.Ehci_driver.get_descriptor d ~dtype:1 ~length:18));
    run =
      (fun m ->
        let d = Workload.Ehci_driver.create m in
        let len = Devices.Ehci.data_buf_size + 80 in
        (* SET_CONFIGURATION with an oversized wLength. *)
        (match
           Workload.Ehci_driver.control_setup d ~bm:0x00 ~req:9 ~value:1
             ~index:0 ~length:len
         with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        (* Stage the payload: the tail bytes land on the irq pointer. *)
        let payload = Bytes.make len '\x41' in
        Vmm.Guest_mem.blit_in (Vmm.Machine.ram m) ehci_dbuf payload;
        (match
           Workload.Ehci_driver.submit d ~pid:Devices.Ehci.pid_out ~len
             ~buf:ehci_dbuf
         with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        (* Second instance: another token with the corrupted index. *)
        ignore
          (Workload.Ehci_driver.submit d ~pid:Devices.Ehci.pid_out ~len:16
             ~buf:ehci_dbuf));
    ground_check = (fun _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* PCNet: CVE-2015-7504, CVE-2015-7512, CVE-2016-7909                  *)

let pcnet_setup ?(mode = 0) m =
  let d = Workload.Pcnet_driver.create m in
  ignore (Workload.Pcnet_driver.reset d);
  ignore (Workload.Pcnet_driver.init d ~mode ());
  ignore (Workload.Pcnet_driver.start d);
  ignore (Workload.Pcnet_driver.transmit d [ Bytes.make 128 'b' ]);
  Workload.Pcnet_driver.ack_interrupts d

let cve_2015_7504 =
  {
    cve = "CVE-2015-7504";
    device = Devices.Pcnet.name;
    qemu_version = Devices.Qemu_version.v 2 4 0;
    fixed_in = Devices.Pcnet.cve_2015_750x_fixed_in;
    expected = [ Sedspec.Checker.Indirect_jump_check ];
    detectable = true;
    description =
      "loopback FCS append at buffer[4096] overwrites the irq function pointer";
    setup = (fun m -> pcnet_setup ~mode:4 m);
    run =
      (fun m ->
        (* The PCNet driver tracks ring indices, so the exploit brings the
           device back to a known ring position first (all trained). *)
        let d = Workload.Pcnet_driver.create m in
        ignore (Workload.Pcnet_driver.reset d);
        ignore (Workload.Pcnet_driver.init d ~mode:4 ());
        ignore (Workload.Pcnet_driver.start d);
        ignore
          (Workload.Pcnet_driver.transmit d
             [ Bytes.make Devices.Pcnet.buffer_size '\xCC' ]));
    ground_check = (fun _ -> []);
  }

let cve_2015_7512 =
  {
    cve = "CVE-2015-7512";
    device = Devices.Pcnet.name;
    qemu_version = Devices.Qemu_version.v 2 4 0;
    fixed_in = Devices.Pcnet.cve_2015_750x_fixed_in;
    expected = [ Sedspec.Checker.Parameter_check; Sedspec.Checker.Indirect_jump_check ];
    detectable = true;
    description =
      "chained un-ENP'd fragments accumulate xmit_pos past the 4096-byte frame buffer";
    setup =
      (fun m ->
        pcnet_setup ~mode:0 m;
        (* also train a benign multi-fragment frame *)
        let d = Workload.Pcnet_driver.create m in
        ignore (Workload.Pcnet_driver.transmit d [ Bytes.make 600 'c'; Bytes.make 600 'd' ]));
    run =
      (fun m ->
        let d = Workload.Pcnet_driver.create m in
        ignore (Workload.Pcnet_driver.reset d);
        ignore (Workload.Pcnet_driver.init d ~mode:0 ());
        ignore (Workload.Pcnet_driver.start d);
        ignore
          (Workload.Pcnet_driver.transmit d
             [
               Bytes.make 1518 '\xDD';
               Bytes.make 1518 '\xDD';
               Bytes.make 1518 '\xDD';
             ]));
    ground_check = (fun _ -> []);
  }

let cve_2016_7909 =
  {
    cve = "CVE-2016-7909";
    device = Devices.Pcnet.name;
    qemu_version = Devices.Qemu_version.v 2 6 0;
    fixed_in = Devices.Pcnet.cve_2016_7909_fixed_in;
    expected = [ Sedspec.Checker.Conditional_jump_check ];
    detectable = true;
    description =
      "receive ring length programmed to zero makes the descriptor scan loop forever";
    setup = (fun m -> pcnet_setup ~mode:0 m);
    run =
      (fun m ->
        let d = Workload.Pcnet_driver.create m in
        ignore (Workload.Pcnet_driver.reset d);
        ignore (Workload.Pcnet_driver.init d ~mode:0 ());
        ignore (Workload.Pcnet_driver.start d);
        (* Take every RX descriptor away from the device... *)
        let g = Vmm.Machine.ram m in
        for i = 0 to 7 do
          Vmm.Guest_mem.write g
            (Int64.add 0x2000L (Int64.of_int ((i * 16) + 4)))
            Devir.Width.W32 0L
        done;
        (* ...and make the ring length zero (the vulnerable CSR write). *)
        (match Workload.Pcnet_driver.write_csr d 76 0 with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        ignore (Workload.Pcnet_driver.receive d (Bytes.make 64 'e')));
    ground_check = (fun _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* SDHCI: CVE-2021-3409                                                *)

let sdhci_reg off = Int64.add Devices.Sdhci.mmio_base (Int64.of_int off)

let cve_2021_3409 =
  {
    cve = "CVE-2021-3409";
    device = Devices.Sdhci.name;
    qemu_version = Devices.Qemu_version.v 5 2 0;
    fixed_in = Devices.Sdhci.cve_2021_3409_fixed_in;
    expected = [ Sedspec.Checker.Parameter_check ];
    detectable = true;
    description =
      "blksize shrunk mid-transfer: blksize - data_count underflows and data_count runs away";
    setup =
      (fun m ->
        let d = Workload.Sdhci_driver.create m in
        ignore (Workload.Sdhci_driver.init_card d);
        ignore (Workload.Sdhci_driver.write_block d ~lba:1 (Bytes.make 512 'f')));
    run =
      (fun m ->
        let d = Workload.Sdhci_driver.create m in
        (match Workload.Sdhci_driver.set_blksize d 0x200 with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        (match Workload.Sdhci_driver.raw_command d ~idx:24 ~arg:9 with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        let bdata v = Workload.Io.mmio_w32 m (sdhci_reg 0x20) (Int64.of_int v) in
        for _ = 1 to 0x80 do
          match bdata 0x55 with Workload.Io.R_ok _ -> () | _ -> raise Exit
        done;
        (* Shrink the block size while the transfer is active. *)
        (match Workload.Sdhci_driver.set_blksize d 0x40 with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        for _ = 1 to 8192 do
          match bdata 0x66 with Workload.Io.R_ok _ -> () | _ -> raise Exit
        done);
    ground_check = (fun _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* SCSI/ESP: CVE-2015-5158, CVE-2016-4439, CVE-2016-1568 analog        *)

let scsi_reg off = Int64.add Devices.Scsi.mmio_base (Int64.of_int off)
let scsi_dma_desc = 0x7000L

(* Raw SELATN-with-DMA: stage [count][bytes...] ourselves so the exploit
   controls the DMA length exactly. *)
let raw_select_dma m ~count bytes_ =
  let g = Vmm.Machine.ram m in
  Vmm.Guest_mem.write g scsi_dma_desc Devir.Width.W32 (Int64.of_int count);
  List.iteri
    (fun i b ->
      Vmm.Guest_mem.write_byte g
        (Int64.add scsi_dma_desc (Int64.of_int (4 + i)))
        b)
    bytes_;
  match Workload.Io.mmio_w32 m (scsi_reg 8) scsi_dma_desc with
  | Workload.Io.R_ok _ -> Workload.Io.mmio_w32 m (scsi_reg 3) 0xC1L
  | r -> r

let scsi_setup m =
  let d = Workload.Scsi_driver.create m in
  ignore (Workload.Scsi_driver.reset d);
  ignore (Workload.Scsi_driver.test_unit_ready d);
  ignore (Workload.Scsi_driver.inquiry d ~dma:true)

let cve_2015_5158 =
  {
    cve = "CVE-2015-5158";
    device = Devices.Scsi.name;
    qemu_version = Devices.Qemu_version.v 2 4 0;
    fixed_in = Devices.Scsi.cve_2015_5158_fixed_in;
    expected = [ Sedspec.Checker.Conditional_jump_check ];
    detectable = true;
    description =
      "reserved-group opcode makes cdb_len the transferred length; parsing overflows cdb into disk_len";
    setup = scsi_setup;
    run =
      (fun m ->
        let junk = List.init 18 (fun _ -> 0xFF) in
        (match raw_select_dma m ~count:20 ((0x80 :: 0xE3 :: junk)) with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        (* The corrupted disk_len drives TRANSFER INFO into the defensive
           branch. *)
        ignore (Workload.Io.mmio_w32 m (scsi_reg 3) 0x10L));
    ground_check = (fun _ -> []);
  }

let cve_2016_4439 =
  {
    cve = "CVE-2016-4439";
    device = Devices.Scsi.name;
    qemu_version = Devices.Qemu_version.v 2 6 0;
    fixed_in = Devices.Scsi.cve_2016_4439_fixed_in;
    expected = [ Sedspec.Checker.Conditional_jump_check ];
    detectable = true;
    description =
      "get_cmd DMA length unchecked: 32 bytes into the 16-byte cmdbuf corrupt ti_size/scsi_state";
    setup = scsi_setup;
    run =
      (fun m ->
        (* A valid TUR CDB followed by 16 corrupting bytes. *)
        let cdb = [ 0x80; 0x00; 0x00; 0x00; 0x00; 0x00; 0x00 ] in
        let junk = List.init 25 (fun _ -> 0xFF) in
        (match raw_select_dma m ~count:32 (cdb @ junk) with
        | Workload.Io.R_ok _ -> ()
        | _ -> raise Exit);
        ignore (Workload.Io.mmio_w32 m (scsi_reg 3) 0x10L));
    ground_check = (fun _ -> []);
  }

let cve_2016_1568 =
  {
    cve = "CVE-2016-1568";
    device = Devices.Scsi.name;
    qemu_version = Devices.Qemu_version.v 2 4 0;
    fixed_in = Devices.Scsi.cve_2016_1568_fixed_in;
    expected = [];
    detectable = false;
    description =
      "use-after-free analog: ICCS replayed after MSGACC re-runs a completion for a dead request (paper's miss)";
    setup =
      (fun m ->
        let d = Workload.Scsi_driver.create m in
        ignore (Workload.Scsi_driver.reset d);
        ignore (Workload.Scsi_driver.test_unit_ready d));
    run =
      (fun m ->
        let d = Workload.Scsi_driver.create m in
        (* The request is gone; the stale completion callback runs again. *)
        ignore (Workload.Scsi_driver.iccs d));
    ground_check =
      (fun m ->
        let arena = Interp.arena (Vmm.Machine.interp_of m Devices.Scsi.name) in
        let completions = Devir.Arena.get arena "completions" in
        let active = Devir.Arena.get arena "req_active" in
        if Int64.compare completions 1L > 0 && active = 0L then
          [ "double-completion" ]
        else []);
  }

(* ------------------------------------------------------------------ *)
(* Virtio ring: CVE-2019-14835 analog                                  *)

let virtio_setup m =
  let d = Workload.Virtio_driver.create m in
  ignore (Workload.Virtio_driver.init d);
  ignore (Workload.Virtio_driver.send d [ Bytes.make 128 'v' ]);
  ignore (Workload.Virtio_driver.poll_used d);
  ignore (Workload.Virtio_driver.isr_ack d)

let cve_2019_14835 =
  {
    cve = "CVE-2019-14835";
    device = Devices.Virtio_ring.name;
    qemu_version = Devices.Qemu_version.v 4 0 0;
    fixed_in = Devices.Virtio_ring.cve_2019_14835_fixed_in;
    expected = [ Sedspec.Checker.Parameter_check ];
    detectable = true;
    description =
      "descriptor length never bounded against the staging buffer: a 1536-byte chain overflows the 1024-byte vq_buf";
    setup = virtio_setup;
    run =
      (fun m ->
        let d = Workload.Virtio_driver.create m in
        if not (Workload.Virtio_driver.init d) then raise Exit;
        (* One oversized guest-readable descriptor: cur_len + d_len runs
           past the staging buffer, like the vhost overflow. *)
        Workload.Virtio_driver.write_desc d 0
          ~addr:Workload.Virtio_driver.data_bufs
          ~len:(Devices.Virtio_ring.buf_size + 512)
          ~flags:0 ~next:0;
        ignore (Workload.Virtio_driver.publish d 0));
    ground_check = (fun _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* Locator-grown candidate attacks.

   The cross-version deviation locator (the locate tool) mutates the
   catalogued exploit streams and minimizes any input whose protected
   replay diverges across a CVE's version pair.  The two entries below
   are such grown witnesses promoted to catalogue entries: each
   reproduces its parent CVE's defect through a register stream distinct
   from the hand-written PoC, directly from machine boot (no setup
   traffic), so the protected-replay loops pin them as regressions. *)

let grown_step m ~device ~handler params =
  try ignore (Vmm.Machine.inject m ~device ~handler ~params) with Exit -> ()

let grown_hex s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* locate --cve CVE-2021-3409 --seed 21: the shrink-mid-transfer trigger
   with the FIFO one byte past the shrunken block size, so the very next
   buffer-data store computes tx_remaining = 64 - 65 and wraps. *)
let grown_2021_3409 =
  let wreg m off data =
    grown_step m ~device:Devices.Sdhci.name ~handler:"mmio_write"
      [
        ("addr", Int64.add Devices.Sdhci.mmio_base (Int64.of_int off));
        ("offset", Int64.of_int off);
        ("size", 4L);
        ("data", data);
      ]
  in
  {
    cve = "GROWN-2021-3409";
    device = Devices.Sdhci.name;
    qemu_version = Devices.Qemu_version.v 5 2 0;
    fixed_in = Devices.Sdhci.cve_2021_3409_fixed_in;
    expected = [ Sedspec.Checker.Parameter_check ];
    detectable = true;
    description =
      "locator-grown 69-step stream: blksize shrunk one byte short of the FIFO fill wraps tx_remaining";
    setup = (fun _ -> ());
    run =
      (fun m ->
        wreg m 0xe 0x700L;
        wreg m 0x4 0x200L;
        wreg m 0xe 0x1800L;
        for _ = 1 to 44 do
          wreg m 0x20 0x66L
        done;
        for _ = 1 to 20 do
          wreg m 0x20 0x55L
        done;
        wreg m 0x4 0x40L;
        wreg m 0x20 0x66L);
    ground_check =
      (fun m ->
        (* The wrapped subtraction leaves a ~2^32 residual where the
           patched model keeps tx_remaining below one block. *)
        let arena = Interp.arena (Vmm.Machine.interp_of m Devices.Sdhci.name) in
        if Int64.compare (Devir.Arena.get arena "tx_remaining") 0xFFFFL > 0 then
          [ "tx_remaining-underflow" ]
        else []);
  }

(* locate --cve CVE-2015-7512 --seed 11: raw CSR pokes stand in for the
   driver — an init block at 0x1004, three OWNed descriptors whose chained
   un-ENP'd fragments overrun the 4096-byte frame buffer and reach the
   irq pointer (wild jump on the unpatched model). *)
let grown_2015_7512 =
  let wcsr m off data =
    grown_step m ~device:Devices.Pcnet.name ~handler:"write"
      [
        ("addr", Int64.add Devices.Pcnet.io_base (Int64.of_int off));
        ("offset", Int64.of_int off);
        ("size", 2L);
        ("data", data);
      ]
  in
  {
    cve = "GROWN-2015-7512";
    device = Devices.Pcnet.name;
    qemu_version = Devices.Qemu_version.v 2 4 0;
    fixed_in = Devices.Pcnet.cve_2015_750x_fixed_in;
    (* The overrun clobbers the irq pointer, so the stream both exceeds
       the parameter envelope and lands a wild indirect jump. *)
    expected =
      [ Sedspec.Checker.Parameter_check; Sedspec.Checker.Indirect_jump_check ];
    detectable = true;
    description =
      "locator-grown raw-CSR stream: three OWNed un-ENP'd descriptors overrun the frame buffer into the irq pointer";
    setup = (fun _ -> ());
    run =
      (fun m ->
        let g = Vmm.Machine.ram m in
        Vmm.Guest_mem.blit_in g 0x1004L
          (grown_hex "00200000003000000800000008000000");
        wcsr m 0x12 0x1L;
        wcsr m 0x10 0x1000L;
        wcsr m 0x12 0x0L;
        wcsr m 0x10 0x1L;
        wcsr m 0x10 0x42L;
        Vmm.Guest_mem.blit_in g 0x3000L
          (grown_hex "0000040000000080ee05000000000000");
        Vmm.Guest_mem.blit_in g 0x3010L
          (grown_hex "0010040000000080ee05000000000000");
        Vmm.Guest_mem.blit_in g 0x3020L
          (grown_hex "0020040000000081ee05000000000000");
        wcsr m 0x10 0x48L);
    ground_check = (fun _ -> []);
  }

let all =
  [
    venom;
    cve_2020_14364;
    cve_2015_7504;
    cve_2015_7512;
    cve_2016_7909;
    cve_2021_3409;
    cve_2015_5158;
    cve_2016_4439;
    cve_2016_1568;
    cve_2019_14835;
    grown_2021_3409;
    grown_2015_7512;
  ]

let find cve = List.find (fun a -> a.cve = cve) all

let version_pair a = (a.qemu_version, a.fixed_in)
