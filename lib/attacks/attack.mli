(** CVE proof-of-concept catalogue (paper §VII-B2 case studies).

    Every attack replays the register-level I/O stream of a published
    exploit against the version-gated vulnerable device model.  [setup]
    puts the device into the benign state the exploit assumes (all setup
    traffic stays on trained paths); [run] is the malicious stream;
    [ground_check] inspects the machine afterwards for exploit-specific
    effects the traps/hooks cannot see (e.g. a double completion).

    [expected] is the paper's Table III check-strategy matrix for the CVE;
    [detectable] is false only for the CVE-2016-1568 analog, the paper's
    acknowledged miss. *)

type t = {
  cve : string;
  device : string;
  qemu_version : Devices.Qemu_version.t;
  fixed_in : Devices.Qemu_version.t;
      (** First QEMU version whose device model carries the fix — the
          patched side of the CVE's version pair (matches the device
          module's [*_fixed_in] gate). *)
  expected : Sedspec.Checker.strategy list;
  detectable : bool;
  description : string;
  setup : Vmm.Machine.t -> unit;
  run : Vmm.Machine.t -> unit;
  ground_check : Vmm.Machine.t -> string list;
}

val version_pair : t -> Devices.Qemu_version.t * Devices.Qemu_version.t
(** [(vulnerable, patched)] — the adjacent device versions the
    cross-version deviation locator replays against. *)

type effects = {
  oob_writes : int;
  oob_reads : int;
  traps : (string * Interp.Event.trap) list;
  extra : string list;  (** From [ground_check]. *)
}

val succeeded : effects -> bool
(** The exploit had a concrete effect: memory corruption, a crash/hang, a
    blocked hijack, or a device-specific effect. *)

val observe_effects : Vmm.Machine.t -> device:string -> (unit -> unit) -> t -> effects
(** Run a thunk while counting OOB events on the device and collecting
    traps, then apply the attack's ground check. *)

val all : t list
(** The Table III case studies plus the CVE-2016-1568 miss (paper's
    order), the virtio-ring CVE-2019-14835 analog, and two
    locator-grown entries ([GROWN-*]): minimized deviation witnesses the
    cross-version locator bred from the catalogue streams, promoted to
    first-class regressions. *)

val find : string -> t
(** Lookup by CVE id; raises [Not_found]. *)

val pp_effects : Format.formatter -> effects -> unit
