open Devir
open Devir.Dsl

let name = "virtio"
let mmio_base = 0x5000_0000L
let irq_cb = 0x0060_1000L
let buf_size = 1024
let desc_size = 16
let cve_2019_14835_fixed_in = Qemu_version.v 4 1 0

(* ISR bits. *)
let isr_queue = 0x1

(* Descriptor flags. *)
let f_next = 0x1
let f_write = 0x2

(* [vq_buf] is last: a runaway descriptor chain escapes the structure
   quickly, like the vhost buffer overflow of the real bug. *)
let layout =
  Layout.make
    [
      Layout.reg ~hw:true "qsize" Width.W16;
      Layout.reg ~hw:true "desc_addr" Width.W32;
      Layout.reg ~hw:true "avail_addr" Width.W32;
      Layout.reg ~hw:true "used_addr" Width.W32;
      Layout.reg ~hw:true "status" Width.W8;
      Layout.reg ~hw:true "isr" Width.W16;
      Layout.reg "avail_idx" Width.W16;
      Layout.reg "used_idx" Width.W16;
      Layout.reg "head" Width.W16;
      Layout.reg "desc_idx" Width.W16;
      Layout.reg "chain_len" Width.W16;
      Layout.reg "cur_len" Width.W32;
      Layout.reg "rx_sum" Width.W32;
      Layout.fn_ptr ~init:irq_cb "irq";
      Layout.buf "vq_buf" buf_size;
    ]

(* Byte the device serves into device-writable descriptors. *)
let served_pattern = band Width.W32 (fld "rx_sum" +% c 0x41) (c 0xFF)

let desc_base = fld "desc_addr" +% (fld "desc_idx" *% c desc_size)

(* Queue processing: consume avail entries, walk each descriptor chain
   (guest-readable descriptors DMA into [vq_buf] at [cur_len];
   device-writable ones are served from [vq_buf]), then publish a used
   entry and raise the interrupt. *)
let notify_blocks ~vulnerable =
  let head_blocks =
    if vulnerable then
      (* CVE-2019-14835 analog: the avail-ring head is used unmasked, so a
         16-bit index escapes the descriptor table. *)
      [ blk "n_head_set" [ set "head" (lcl "head_v") ] (goto "n_chain") ]
    else
      [
        blk "n_head_set"
          [ set "head" (band Width.W16 (lcl "head_v") (fld "qsize" -% c 1)) ]
          (goto "n_chain");
      ]
  in
  let desc_term =
    (* The vulnerable copy never bounds the descriptor length against the
       remaining buffer space. *)
    if vulnerable then goto "n_dir"
    else br (lcl "d_len" +% fld "cur_len" >% c buf_size) "n_used" "n_dir"
  in
  let next_blocks =
    if vulnerable then
      (* Unmasked next pointer, unbounded chain: a self-linked descriptor
         loops until the step limit (hang analog). *)
      [ blk "n_next" [ set "desc_idx" (lcl "d_next") ] (goto "n_desc") ]
    else
      [
        blk "n_next" []
          (br (fld "chain_len" >=% fld "qsize") "n_used" "n_next_ok");
        blk "n_next_ok"
          [ set "desc_idx" (band Width.W16 (lcl "d_next") (fld "qsize" -% c 1)) ]
          (goto "n_desc");
      ]
  in
  [
    blk "n_loop"
      [ load "g_avail" ~w:Width.W16 (fld "avail_addr" +% c 2) ]
      (br (fld "avail_idx" <>% lcl "g_avail") "n_head" "n_done");
    blk "n_head"
      [
        local "slot" (rem Width.W16 (fld "avail_idx") (fld "qsize"));
        load "head_v" ~w:Width.W16
          (fld "avail_addr" +% c 4 +% (lcl "slot" *% c 2));
      ]
      (goto "n_head_set");
    blk "n_chain"
      [
        set "cur_len" (c 0);
        set "chain_len" (c ~w:Width.W16 0);
        set "desc_idx" (fld "head");
      ]
      (goto "n_desc");
    blk "n_desc"
      [
        load "d_addr" ~w:Width.W32 desc_base;
        load "d_len" ~w:Width.W32 (desc_base +% c 4);
        load "d_flags" ~w:Width.W16 (desc_base +% c 8);
        load "d_next" ~w:Width.W16 (desc_base +% c 10);
      ]
      desc_term;
    blk "n_dir" []
      (br (band Width.W16 (lcl "d_flags") (c f_write) <>% c 0) "n_serve"
         "n_consume");
    blk "n_consume"
      [
        dma_in ~buf:"vq_buf" ~buf_off:(fld "cur_len") ~addr:(lcl "d_addr")
          ~len:(lcl "d_len");
        set "rx_sum"
          (bxor Width.W32 (fld "rx_sum")
             (bufb "vq_buf" (fld "cur_len") +% lcl "d_len"));
      ]
      (goto "n_adv");
    blk "n_serve"
      [
        fill "vq_buf" ~off:(fld "cur_len") ~len:(lcl "d_len") served_pattern;
        dma_out ~buf:"vq_buf" ~buf_off:(fld "cur_len") ~addr:(lcl "d_addr")
          ~len:(lcl "d_len");
      ]
      (goto "n_adv");
    blk "n_adv"
      [
        set "cur_len" (fld "cur_len" +% lcl "d_len");
        set "chain_len" (add Width.W16 (fld "chain_len") (c 1));
      ]
      (br (band Width.W16 (lcl "d_flags") (c f_next) <>% c 0) "n_next" "n_used");
    (* Publish the completion: used-ring id + length, bumped used index —
       all host→guest stores the guest-side validator watches. *)
    blk "n_used"
      [
        local "u_slot" (rem Width.W16 (fld "used_idx") (fld "qsize"));
        store ~w:Width.W32
          (fld "used_addr" +% c 4 +% (lcl "u_slot" *% c 8))
          (fld "head");
        store ~w:Width.W32
          (fld "used_addr" +% c 8 +% (lcl "u_slot" *% c 8))
          (fld "cur_len");
        set "used_idx" (add Width.W16 (fld "used_idx") (c 1));
        store ~w:Width.W16 (fld "used_addr" +% c 2) (fld "used_idx");
        set "avail_idx" (add Width.W16 (fld "avail_idx") (c 1));
        set "isr" (bor Width.W16 (fld "isr") (c isr_queue));
      ]
      (icall (fld "irq") "n_loop");
  ]
  @ head_blocks @ next_blocks

let write_handler ~vulnerable =
  handler "mmio_write"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    ([
       entry "w_entry" []
         (switch (prm "offset")
            [
              (0x00, "w_qsize");
              (0x04, "w_desc");
              (0x08, "w_avail");
              (0x0C, "w_used");
              (0x10, "w_status");
              (0x14, "w_isr_ack");
              (0x20, "w_notify");
            ]
            "w_exit");
       blk "w_qsize" [ set "qsize" (prm "data" &% c 0xFF) ] (goto "w_exit");
       blk "w_desc" [ set "desc_addr" (prm "data") ] (goto "w_exit");
       blk "w_avail" [ set "avail_addr" (prm "data") ] (goto "w_exit");
       blk "w_used" [ set "used_addr" (prm "data") ] (goto "w_exit");
       (* Writing zero is a device reset (virtio status semantics): the
          queue state returns to power-on values. *)
       blk "w_status" [] (br (prm "data" ==% c 0) "w_reset" "w_status_set");
       blk "w_status_set" [ set "status" (prm "data" &% c 0xFF) ] (goto "w_exit");
       blk "w_reset"
         [
           set "status" (c ~w:Width.W8 0);
           set "isr" (c ~w:Width.W16 0);
           set "avail_idx" (c ~w:Width.W16 0);
           set "used_idx" (c ~w:Width.W16 0);
           set "head" (c ~w:Width.W16 0);
           set "desc_idx" (c ~w:Width.W16 0);
           set "chain_len" (c ~w:Width.W16 0);
           set "cur_len" (c 0);
         ]
         (goto "w_exit");
       blk "w_isr_ack"
         [
           set "isr"
             (band Width.W16 (fld "isr") (bxor Width.W16 (prm "data") (c 0xFFFF)));
         ]
         (goto "w_exit");
       (* Queue notify: the written value selects the queue (one queue). *)
       cmd_decision "w_notify" []
         (switch (prm "data") [ (0, "n_loop") ] "w_exit");
       cmd_end "n_done" [] (goto "w_exit");
       exit_ "w_exit" [];
     ]
    @ notify_blocks ~vulnerable)

let read_handler =
  handler "mmio_read"
    ~params:[ "addr"; "offset"; "size"; "data" ]
    [
      entry "r_entry" []
        (switch (prm "offset")
           [
             (0x00, "r_qsize");
             (0x04, "r_desc");
             (0x08, "r_avail");
             (0x0C, "r_used");
             (0x10, "r_status");
             (0x14, "r_isr");
             (0x18, "r_used_idx");
             (0x1C, "r_features");
           ]
           "r_zero");
      blk "r_qsize" [ respond (fld "qsize") ] (goto "r_exit");
      blk "r_desc" [ respond (fld "desc_addr") ] (goto "r_exit");
      blk "r_avail" [ respond (fld "avail_addr") ] (goto "r_exit");
      blk "r_used" [ respond (fld "used_addr") ] (goto "r_exit");
      blk "r_status" [ respond (fld "status") ] (goto "r_exit");
      blk "r_isr" [ respond (fld "isr") ] (goto "r_exit");
      blk "r_used_idx" [ respond (fld "used_idx") ] (goto "r_exit");
      blk "r_features" [ respond (c64 0x74726976L) ] (goto "r_exit");
      blk "r_zero" [ respond (c 0) ] (goto "r_exit");
      exit_ "r_exit" [];
    ]

let program ~version =
  let vulnerable = Qemu_version.(version < cve_2019_14835_fixed_in) in
  Program.make ~name ~layout ~code_base:0x0045_0000L
    ~callbacks:
      [ (irq_cb, { Program.cb_name = "virtio_irq"; action = Program.Raise_irq_line }) ]
    [ write_handler ~vulnerable; read_handler ]

let device ~version =
  let program = program ~version in
  {
    Device.name;
    version;
    program;
    make_binding =
      (fun () ->
        Device.binding_of ~program
          ~mmio:[ (mmio_base, 0x100) ]
          ~mmio_read:"mmio_read" ~mmio_write:"mmio_write" ());
  }
