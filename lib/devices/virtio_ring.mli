(** A virtio-style ring device: one queue of guest-staged descriptor
    chains, modelled after the split virtqueue (avail/used rings plus a
    descriptor table in guest memory).

    Memory-mapped at [0x5000_0000]: queue size, descriptor/avail/used ring
    base addresses, device status, ISR and a queue-notify doorbell.  On
    notify the device consumes every pending avail entry: guest-readable
    descriptors DMA into the device's 1 KiB staging buffer, device-writable
    ones are served back from it, and each chain completes with used-ring
    id/length stores, a used-index bump and an interrupt — a host→guest
    write pattern the guest-side validator trains over.

    Vulnerability (version-gated):
    - {b CVE-2019-14835 analog} (fixed in 4.1.0): the avail-ring head and
      the chain's next pointers are used unmasked and descriptor lengths
      are never bounded against the staging buffer, so an out-of-range
      index or an oversized/self-linked chain overflows [vq_buf] (or loops
      until the step limit), like the vhost buffer-overflow of the real
      bug.  The fix masks both indices, bounds the accumulated length and
      caps the chain at the queue size. *)

val name : string
val mmio_base : int64
val irq_cb : int64
val buf_size : int
val desc_size : int
val f_next : int
val f_write : int
val cve_2019_14835_fixed_in : Qemu_version.t

val layout : Devir.Layout.t
val program : version:Qemu_version.t -> Devir.Program.t
val device : version:Qemu_version.t -> Device.t
