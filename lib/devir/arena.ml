type t = { layout : Layout.t; mem : bytes }

exception Out_of_arena of { field : string; index : int }

let write_scalar mem off size v =
  for i = 0 to size - 1 do
    Bytes.set mem (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let read_scalar mem off size =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (Int64.logor (Int64.shift_left acc 8)
           (Int64.of_int (Char.code (Bytes.get mem (off + i)))))
  in
  go (size - 1) 0L

let init_fields t =
  List.iter
    (fun (f : Layout.field) ->
      let off = Layout.offset t.layout f.name in
      match f.kind with
      | Layout.Reg w ->
        write_scalar t.mem off (Width.bytes w) (Width.truncate w f.init)
      | Layout.Fn_ptr -> write_scalar t.mem off 8 f.init
      | Layout.Buf n -> Bytes.fill t.mem off n '\000')
    (Layout.fields t.layout)

let create layout =
  let t = { layout; mem = Bytes.make (Layout.size layout) '\000' } in
  init_fields t;
  t

let layout t = t.layout

let reset t =
  Bytes.fill t.mem 0 (Bytes.length t.mem) '\000';
  init_fields t

let get t name =
  let f = Layout.find t.layout name in
  let off = Layout.offset t.layout name in
  match f.kind with
  | Layout.Reg w -> read_scalar t.mem off (Width.bytes w)
  | Layout.Fn_ptr -> read_scalar t.mem off 8
  | Layout.Buf _ ->
    invalid_arg (Printf.sprintf "Arena.get: %s is a buffer" name)

let set t name v =
  let f = Layout.find t.layout name in
  let off = Layout.offset t.layout name in
  match f.kind with
  | Layout.Reg w -> write_scalar t.mem off (Width.bytes w) (Width.truncate w v)
  | Layout.Fn_ptr -> write_scalar t.mem off 8 v
  | Layout.Buf _ ->
    invalid_arg (Printf.sprintf "Arena.set: %s is a buffer" name)

let size t = Bytes.length t.mem

let get_byte_at t off = Char.code (Bytes.get t.mem off)
let set_byte_at t off v = Bytes.set t.mem off (Char.chr (v land 0xFF))

let read_u8 t off = Int64.of_int (Bytes.get_uint8 t.mem off)
let read_u16 t off = Int64.of_int (Bytes.get_uint16_le t.mem off)

let read_u32 t off =
  Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.mem off)) 0xFFFFFFFFL

let read_u64 t off = Bytes.get_int64_le t.mem off

let write_u8 t off v = Bytes.set_uint8 t.mem off (Int64.to_int v land 0xFF)

let write_u16 t off v =
  Bytes.set_uint16_le t.mem off (Int64.to_int v land 0xFFFF)

let write_u32 t off v = Bytes.set_int32_le t.mem off (Int64.to_int32 v)
let write_u64 t off v = Bytes.set_int64_le t.mem off v

let buf_abs t name idx =
  let off = Layout.offset t.layout name + idx in
  if off < 0 || off >= Bytes.length t.mem then
    raise (Out_of_arena { field = name; index = idx });
  off

let get_buf_byte t name idx = Char.code (Bytes.get t.mem (buf_abs t name idx))

let set_buf_byte t name idx v =
  Bytes.set t.mem (buf_abs t name idx) (Char.chr (v land 0xFF))

let blit_to_buf t name off src =
  for i = 0 to Bytes.length src - 1 do
    set_buf_byte t name (off + i) (Char.code (Bytes.get src i))
  done

let read_buf t name off len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (get_buf_byte t name (off + i)))
  done;
  out

let snapshot t = Bytes.copy t.mem

let save_into t out =
  if Bytes.length out <> Bytes.length t.mem then
    invalid_arg "Arena.save_into: size mismatch";
  Bytes.blit t.mem 0 out 0 (Bytes.length t.mem)

(* Span blits run on the checker's per-interaction hot path; a top-level
   recursion (instead of [List.iter] with a capturing closure) keeps them
   allocation-free. *)
let rec blit_spans src dst = function
  | [] -> ()
  | (off, len) :: rest ->
    Bytes.blit src off dst off len;
    blit_spans src dst rest

let copy_spans ~spans ~src ~dst = blit_spans src.mem dst.mem spans

let save_spans ~spans t out = blit_spans t.mem out spans

let restore_spans ~spans t saved = blit_spans saved t.mem spans

let copy_into ~src ~dst =
  if Bytes.length src.mem <> Bytes.length dst.mem then
    invalid_arg "Arena.copy_into: size mismatch";
  Bytes.blit src.mem 0 dst.mem 0 (Bytes.length src.mem)

let restore t saved =
  if Bytes.length saved <> Bytes.length t.mem then
    invalid_arg "Arena.restore: size mismatch";
  Bytes.blit saved 0 t.mem 0 (Bytes.length saved)

let scalar_fields t =
  List.filter_map
    (fun (f : Layout.field) ->
      match f.kind with
      | Layout.Buf _ -> None
      | Layout.Reg _ | Layout.Fn_ptr -> Some (f.name, get t f.name))
    (Layout.fields t.layout)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-16s = %Ld (0x%Lx)@," name v v)
    (scalar_fields t);
  Format.fprintf ppf "@]"
