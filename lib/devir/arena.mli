(** A live instance of a device control structure.

    The arena stores the structure as a flat byte array according to its
    {!Layout}, so field accesses have exactly C's aliasing behaviour:
    writing past the end of a buffer corrupts whatever field follows it in
    the layout — this is what makes the reproduced exploits (Venom,
    CVE-2020-14364, CVE-2015-7504, ...) genuinely take over length fields
    and function pointers rather than being simulated by fiat.  Writing
    past the end of the whole structure raises {!Out_of_arena}, the analog
    of a crash the host would take. *)

type t

exception Out_of_arena of { field : string; index : int }
(** Raised when a buffer access escapes the entire control structure. *)

val create : Layout.t -> t
(** Fresh arena with every field at its declared initial value. *)

val layout : t -> Layout.t

val reset : t -> unit
(** Restore all fields to their initial values (device reset). *)

val get : t -> string -> int64
(** Read a scalar or function-pointer field. *)

val set : t -> string -> int64 -> unit
(** Write a scalar field (truncated to its width). *)

val get_buf_byte : t -> string -> int -> int
(** [get_buf_byte t buf idx] reads byte [idx] relative to [buf]'s offset.
    Indices beyond the buffer read the adjacent fields; indices escaping
    the structure raise {!Out_of_arena}.  Negative indices that stay within
    the structure read the preceding fields, as in C. *)

val set_buf_byte : t -> string -> int -> int -> unit
(** Same addressing rules as {!get_buf_byte}, for writes. *)

val blit_to_buf : t -> string -> int -> bytes -> unit
(** [blit_to_buf t buf off src] writes [src] starting at [buf + off], byte
    by byte with overflow semantics. *)

val read_buf : t -> string -> int -> int -> bytes
(** [read_buf t buf off len] reads [len] bytes starting at [buf + off]. *)

val snapshot : t -> bytes
val restore : t -> bytes -> unit
(** Save / restore the raw structure contents (same layout required). *)

val save_into : t -> bytes -> unit
(** Copy the raw contents into a caller-provided buffer (no allocation). *)

val copy_into : src:t -> dst:t -> unit
(** Copy [src]'s contents into [dst] without allocating (same layout
    size required). *)

val copy_spans : spans:(int * int) list -> src:t -> dst:t -> unit
(** Copy only the given (offset, length) spans. *)

val save_spans : spans:(int * int) list -> t -> bytes -> unit
val restore_spans : spans:(int * int) list -> t -> bytes -> unit

val scalar_fields : t -> (string * int64) list
(** Current values of all non-buffer fields, in layout order. *)

(** {1 Raw offset access}

    Absolute-offset accessors for code that has already resolved field
    names to layout offsets (the compiled ES-Checker).  They perform no
    name lookup and no width truncation: scalar writers expect the value
    already truncated to the field's width, exactly as {!set} would store
    it.  Offsets must come from {!Layout.offset}; byte accessors only
    carry the byte-array bounds check, so callers enforcing C overflow
    semantics must range-check against {!size} themselves. *)

val size : t -> int
(** Total byte length of the control structure. *)

val get_byte_at : t -> int -> int
val set_byte_at : t -> int -> int -> unit

val read_u8 : t -> int -> int64
val read_u16 : t -> int -> int64
val read_u32 : t -> int -> int64
val read_u64 : t -> int -> int64
(** Little-endian scalar reads at an absolute offset, as {!get} performs
    after resolving the field. *)

val write_u8 : t -> int -> int64 -> unit
val write_u16 : t -> int -> int64 -> unit
val write_u32 : t -> int -> int64 -> unit
val write_u64 : t -> int -> int64 -> unit

val pp : Format.formatter -> t -> unit
