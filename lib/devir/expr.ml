type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cmpop = Eq | Ne | Ltu | Leu | Gtu | Geu | Lts | Les | Gts | Ges

type t =
  | Const of int64 * Width.t
  | Field of string
  | Buf_byte of string * t
  | Buf_len of string
  | Param of string
  | Local of string
  | Binop of binop * Width.t * t * t
  | Cmp of cmpop * t * t
  | Not of t

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let cmpop_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Ltu -> "<u"
  | Leu -> "<=u"
  | Gtu -> ">u"
  | Geu -> ">=u"
  | Lts -> "<s"
  | Les -> "<=s"
  | Gts -> ">s"
  | Ges -> ">=s"

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Field _ | Buf_len _ | Param _ | Local _ -> acc
  | Buf_byte (_, idx) -> fold f acc idx
  | Binop (_, _, a, b) | Cmp (_, a, b) -> fold f (fold f acc a) b
  | Not a -> fold f acc a

let dedup l =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l)

let fields e =
  dedup
    (List.rev
       (fold
          (fun acc e ->
            match e with
            | Field n | Buf_byte (n, _) | Buf_len n -> n :: acc
            | _ -> acc)
          [] e))

let locals e =
  dedup
    (List.rev
       (fold (fun acc e -> match e with Local n -> n :: acc | _ -> acc) [] e))

let params e =
  dedup
    (List.rev
       (fold (fun acc e -> match e with Param n -> n :: acc | _ -> acc) [] e))

let rec subst_local name repl e =
  match e with
  | Local n when n = name -> repl
  | Const _ | Field _ | Buf_len _ | Param _ | Local _ -> e
  | Buf_byte (b, idx) -> Buf_byte (b, subst_local name repl idx)
  | Binop (op, w, a, b) ->
    Binop (op, w, subst_local name repl a, subst_local name repl b)
  | Cmp (op, a, b) -> Cmp (op, subst_local name repl a, subst_local name repl b)
  | Not a -> Not (subst_local name repl a)

let is_constant e =
  fold
    (fun acc e ->
      acc
      &&
      match e with
      | Field _ | Buf_byte _ | Param _ | Local _ -> false
      | Const _ | Buf_len _ | Binop _ | Cmp _ | Not _ -> true)
    true e

let equal (a : t) b = a = b

let rec pp ppf = function
  | Const (v, w) -> Format.fprintf ppf "%Ld:%s" v (Width.to_string w)
  | Field n -> Format.fprintf ppf "s.%s" n
  | Buf_byte (b, idx) -> Format.fprintf ppf "s.%s[%a]" b pp idx
  | Buf_len b -> Format.fprintf ppf "sizeof(s.%s)" b
  | Param n -> Format.fprintf ppf "io.%s" n
  | Local n -> Format.fprintf ppf "%s" n
  | Binop (op, w, a, b) ->
    Format.fprintf ppf "(%a %s:%s %a)" pp a (binop_to_string op)
      (Width.to_string w) pp b
  | Cmp (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (cmpop_to_string op) pp b
  | Not a -> Format.fprintf ppf "!%a" pp a

let to_string e = Format.asprintf "%a" pp e
