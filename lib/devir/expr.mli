(** Pure expressions of the device IR.

    Expressions read device control-structure fields, request parameters and
    handler-local temporaries; they never write.  All arithmetic is
    performed at an explicit width with C-style wraparound; the interpreter
    additionally records whether any operation wrapped, which feeds the
    parameter check strategy. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div   (** unsigned; division by zero traps *)
  | Rem   (** unsigned; division by zero traps *)
  | And
  | Or
  | Xor
  | Shl
  | Shr   (** logical shift right *)

type cmpop =
  | Eq
  | Ne
  | Ltu  (** unsigned < *)
  | Leu
  | Gtu
  | Geu
  | Lts  (** signed < *)
  | Les
  | Gts
  | Ges

type t =
  | Const of int64 * Width.t
  | Field of string
      (** Scalar or function-pointer field of the control structure. *)
  | Buf_byte of string * t
      (** [Buf_byte (buf, idx)]: byte [idx] of buffer field [buf].  Reads
          past the buffer fall into adjacent fields (C struct semantics). *)
  | Buf_len of string
      (** Declared size of a buffer field; a compile-time constant like C's
          [sizeof]. *)
  | Param of string
      (** I/O request parameter, e.g. ["addr"], ["data"], ["size"]. *)
  | Local of string
      (** Handler-local temporary, set by {!Stmt.Set_local}. *)
  | Binop of binop * Width.t * t * t
  | Cmp of cmpop * t * t  (** Yields 0 or 1 (width [W8]). *)
  | Not of t              (** Logical negation: 0 -> 1, nonzero -> 0. *)

val binop_to_string : binop -> string
val cmpop_to_string : cmpop -> string

val fields : t -> string list
(** All control-structure field names read by the expression (scalar reads,
    buffer reads and [Buf_len]), without duplicates, in first-use order. *)

val locals : t -> string list
(** All handler-local temporaries read by the expression. *)

val params : t -> string list
(** All request parameters read by the expression. *)

val subst_local : string -> t -> t -> t
(** [subst_local name repl e] replaces every [Local name] in [e] with
    [repl]. *)

val is_constant : t -> bool
(** The expression reads no device state, request parameter or local: its
    value is the same in every evaluation context.  [Buf_len] counts as
    constant — buffer sizes are layout constants, like C's [sizeof]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
