type callback_action =
  | Raise_irq_line
  | Lower_irq_line
  | Run_handler of string
  | Noop

type callback = { cb_name : string; action : callback_action }

type handler = {
  hname : string;
  params : string list;
  blocks : Block.t list;
}

type bref = { handler : string; label : string }

type t = {
  name : string;
  layout : Layout.t;
  code_base : int64;
  callbacks : (int64 * callback) list;
  handlers : handler list;
  by_name : (string, handler) Hashtbl.t;
  block_index : (string * string, Block.t * int64) Hashtbl.t;
  by_address : (int64, bref) Hashtbl.t;
  block_count : int;
}

let make ~name ~layout ?(code_base = 0x40_0000L) ?(callbacks = []) handlers =
  let by_name = Hashtbl.create 8 in
  let block_index = Hashtbl.create 64 in
  let by_address = Hashtbl.create 64 in
  let counter = ref 0 in
  List.iter
    (fun h ->
      if Hashtbl.mem by_name h.hname then
        invalid_arg (Printf.sprintf "Program.make: duplicate handler %s" h.hname);
      Hashtbl.add by_name h.hname h;
      List.iter
        (fun (b : Block.t) ->
          let addr = Int64.add code_base (Int64.of_int (16 * !counter)) in
          incr counter;
          if Hashtbl.mem block_index (h.hname, b.label) then
            invalid_arg
              (Printf.sprintf "Program.make: duplicate block %s/%s" h.hname
                 b.label);
          Hashtbl.add block_index (h.hname, b.label) (b, addr);
          Hashtbl.add by_address addr { handler = h.hname; label = b.label })
        h.blocks)
    handlers;
  {
    name;
    layout;
    code_base;
    callbacks;
    handlers;
    by_name;
    block_index;
    by_address;
    block_count = !counter;
  }

let map_blocks ?name t f =
  let name = match name with Some n -> n | None -> t.name in
  let handlers =
    List.map
      (fun h ->
        {
          h with
          blocks =
            List.map
              (fun (b : Block.t) ->
                f { handler = h.hname; label = b.label } b)
              h.blocks;
        })
      t.handlers
  in
  make ~name ~layout:t.layout ~code_base:t.code_base ~callbacks:t.callbacks
    handlers

let name t = t.name
let layout t = t.layout
let code_base t = t.code_base
let handlers t = t.handlers
let callbacks t = t.callbacks

let find_handler t hname =
  match Hashtbl.find_opt t.by_name hname with
  | Some h -> h
  | None -> raise Not_found

let find_block t (r : bref) =
  match Hashtbl.find_opt t.block_index (r.handler, r.label) with
  | Some (b, _) -> b
  | None -> raise Not_found

let find_callback t v = List.assoc_opt v t.callbacks

let address_of t (r : bref) =
  match Hashtbl.find_opt t.block_index (r.handler, r.label) with
  | Some (_, addr) -> addr
  | None -> raise Not_found

let block_at t addr = Hashtbl.find_opt t.by_address addr

let code_range t =
  (t.code_base, Int64.add t.code_base (Int64.of_int (16 * t.block_count)))

let block_count t = t.block_count

let iter_blocks t f =
  List.iter
    (fun h ->
      List.iter
        (fun (b : Block.t) -> f { handler = h.hname; label = b.label } b)
        h.blocks)
    t.handlers

let pp_bref ppf (r : bref) = Format.fprintf ppf "%s/%s" r.handler r.label
let bref_to_string r = Format.asprintf "%a" pp_bref r
let bref_equal (a : bref) b = a = b
let bref_compare (a : bref) b = Stdlib.compare a b
