(** A complete emulated-device program: layout, handlers, callbacks and the
    synthetic code addresses used by the processor-trace simulator.

    A device exposes one handler per I/O entry point (port read/write, MMIO
    read/write, DMA kick, packet receive, ...).  Each handler is a flat
    graph of basic blocks.  Blocks receive synthetic code addresses
    ([code_base + 16 * global_index]) so the PT packet stream can reference
    them exactly as real PT references instruction pointers. *)

type callback_action =
  | Raise_irq_line
  | Lower_irq_line
  | Run_handler of string
      (** Invoke another handler of the same device (completion routines,
          internal transfers).  Runs with the parameters of the calling
          request. *)
  | Noop

type callback = { cb_name : string; action : callback_action }

type handler = {
  hname : string;
  params : string list;  (** Request parameter names the handler reads. *)
  blocks : Block.t list; (** First block is the handler's entry. *)
}

type bref = { handler : string; label : string }
(** A block reference — the IR's notion of a source location. *)

type t

val make :
  name:string ->
  layout:Layout.t ->
  ?code_base:int64 ->
  ?callbacks:(int64 * callback) list ->
  handler list ->
  t
(** Builds a program.  [code_base] defaults to [0x40_0000].  Raises
    [Invalid_argument] on duplicate handler names. *)

val map_blocks : ?name:string -> t -> (bref -> Block.t -> Block.t) -> t
(** Rebuild the program with every block passed through [f] (layout,
    code base, callbacks and handler/block order are preserved, so block
    addresses are unchanged).  [name] defaults to the source program's
    name.  [f] must keep each block's label: brefs of the derived program
    are expected to denote the same locations as in the source — this is
    what lets a minimized specification walk against the original
    device's events. *)

val name : t -> string
val layout : t -> Layout.t
val code_base : t -> int64
val handlers : t -> handler list
val callbacks : t -> (int64 * callback) list

val find_handler : t -> string -> handler
(** Raises [Not_found]. *)

val find_block : t -> bref -> Block.t
(** Raises [Not_found]. *)

val find_callback : t -> int64 -> callback option

val address_of : t -> bref -> int64
(** Synthetic code address of a block.  Raises [Not_found]. *)

val block_at : t -> int64 -> bref option
(** Inverse of {!address_of}. *)

val code_range : t -> int64 * int64
(** [lo, hi) address range covering all blocks of the device — the filter
    range configured into the PT simulator. *)

val block_count : t -> int

val iter_blocks : t -> (bref -> Block.t -> unit) -> unit
(** Iterate all blocks in address order. *)

val pp_bref : Format.formatter -> bref -> unit
val bref_to_string : bref -> string
val bref_equal : bref -> bref -> bool
val bref_compare : bref -> bref -> int
