type error = {
  where : Program.bref option;
  message : string;
}

let pp_error ppf e =
  match e.where with
  | Some r -> Format.fprintf ppf "%a: %s" Program.pp_bref r e.message
  | None -> Format.fprintf ppf "%s" e.message

let check program =
  let errors = ref [] in
  let err ?where fmt =
    Format.kasprintf (fun message -> errors := { where; message } :: !errors) fmt
  in
  let layout = Program.layout program in
  let check_field_kind where name ~want =
    if not (Layout.mem layout name) then
      err ~where "unknown field %s" name
    else
      let f = Layout.find layout name in
      match (f.kind, want) with
      | Layout.Buf _, `Buf | Layout.Reg _, `Scalar | Layout.Fn_ptr, `Scalar
      | _, `Any ->
        ()
      | Layout.Buf _, `Scalar -> err ~where "field %s is a buffer" name
      | (Layout.Reg _ | Layout.Fn_ptr), `Buf ->
        err ~where "field %s is not a buffer" name
  in
  let check_expr where e =
    let rec go = function
      | Expr.Const _ | Expr.Param _ | Expr.Local _ -> ()
      | Expr.Field n -> check_field_kind where n ~want:`Scalar
      | Expr.Buf_byte (n, idx) ->
        check_field_kind where n ~want:`Buf;
        go idx
      | Expr.Buf_len n -> check_field_kind where n ~want:`Buf
      | Expr.Binop (_, _, a, b) | Expr.Cmp (_, a, b) ->
        go a;
        go b
      | Expr.Not a -> go a
    in
    go e
  in
  List.iter
    (fun (h : Program.handler) ->
      let labels = List.map (fun (b : Block.t) -> b.label) h.blocks in
      let assigned_locals =
        List.concat_map
          (fun (b : Block.t) -> List.concat_map Stmt.locals_written b.stmts)
          h.blocks
      in
      (match h.blocks with
      | [] -> err "handler %s has no blocks" h.hname
      | first :: rest ->
        if first.kind <> Block.Entry then
          err
            ~where:{ handler = h.hname; label = first.label }
            "first block must have kind entry";
        List.iter
          (fun (b : Block.t) ->
            if b.kind = Block.Entry then
              err
                ~where:{ handler = h.hname; label = b.label }
                "only the first block may have kind entry")
          rest);
      let exits =
        List.filter (fun (b : Block.t) -> b.kind = Block.Exit) h.blocks
      in
      if exits = [] then err "handler %s has no exit block" h.hname;
      List.iter
        (fun (b : Block.t) ->
          if b.term <> Term.Halt then
            err
              ~where:{ handler = h.hname; label = b.label }
              "exit block must terminate with halt")
        exits;
      List.iter
        (fun (b : Block.t) ->
          let where : Program.bref = { handler = h.hname; label = b.label } in
          List.iter
            (fun succ ->
              if not (List.mem succ labels) then
                err ~where "successor %s not found" succ)
            (Term.successors b.term);
          (if b.kind = Block.Cmd_decision then
             match b.term with
             | Term.Switch _ -> ()
             | _ -> err ~where "cmd-decision block must terminate with switch");
          List.iter (check_expr where) (Term.exprs b.term);
          List.iter
            (fun stmt ->
              List.iter (check_expr where)
                (match stmt with
                | Stmt.Set_field (_, e) | Stmt.Set_local (_, e) | Stmt.Respond e
                  ->
                  [ e ]
                | Stmt.Set_buf (_, i, v) -> [ i; v ]
                | Stmt.Buf_fill (_, o, n, v) -> [ o; n; v ]
                | Stmt.Copy_from_guest { buf_off; addr; len; _ }
                | Stmt.Copy_to_guest { buf_off; addr; len; _ } ->
                  [ buf_off; addr; len ]
                | Stmt.Read_guest { addr; _ } -> [ addr ]
                | Stmt.Write_guest { addr; value; _ } -> [ addr; value ]
                | Stmt.Host_value _ | Stmt.Note _ -> []);
              (match stmt with
              | Stmt.Set_field (n, _) -> check_field_kind where n ~want:`Scalar
              | Stmt.Set_buf (n, _, _)
              | Stmt.Buf_fill (n, _, _, _)
              | Stmt.Copy_from_guest { buf = n; _ }
              | Stmt.Copy_to_guest { buf = n; _ } ->
                check_field_kind where n ~want:`Buf
              | _ -> ());
              List.iter
                (fun local ->
                  if not (List.mem local assigned_locals) then
                    err ~where "local %s is never assigned in handler %s" local
                      h.hname)
                (Stmt.locals_read stmt);
              List.iter
                (fun param ->
                  if not (List.mem param h.params) then
                    err ~where "parameter %s not declared by handler %s" param
                      h.hname)
                (List.concat_map Expr.params
                   (match stmt with
                   | Stmt.Set_field (_, e)
                   | Stmt.Set_local (_, e)
                   | Stmt.Respond e ->
                     [ e ]
                   | Stmt.Set_buf (_, i, v) -> [ i; v ]
                   | Stmt.Buf_fill (_, o, n, v) -> [ o; n; v ]
                   | Stmt.Copy_from_guest { buf_off; addr; len; _ }
                   | Stmt.Copy_to_guest { buf_off; addr; len; _ } ->
                     [ buf_off; addr; len ]
                   | Stmt.Read_guest { addr; _ } -> [ addr ]
                   | Stmt.Write_guest { addr; value; _ } -> [ addr; value ]
                   | Stmt.Host_value _ | Stmt.Note _ -> [])))
            b.stmts;
          List.iter
            (fun param ->
              if not (List.mem param h.params) then
                err ~where "parameter %s not declared by handler %s" param
                  h.hname)
            (List.concat_map Expr.params (Term.exprs b.term)))
        h.blocks)
    (Program.handlers program);
  (* Callback actions that chain to handlers must name existing handlers. *)
  List.iter
    (fun (_, (cb : Program.callback)) ->
      match cb.action with
      | Program.Run_handler hname ->
        (try ignore (Program.find_handler program hname)
         with Not_found -> err "callback %s chains to unknown handler %s" cb.cb_name hname)
      | _ -> ())
    (Program.callbacks program);
  List.rev !errors

(* Graph-over-program validation: a set of graph nodes (brefs + successor
   edges) layered over a program, where a successor may also resolve by
   chasing pass-through blocks — blocks the graph's walker crosses without
   work.  The walker's notion of "no work" is graph-specific (e.g. the
   ES-CFG passes through blocks whose DSOD lifting is empty), so it comes
   in as a predicate. *)
let check_graph program ~nodes ~pass_through =
  let errors = ref [] in
  let err ?where fmt =
    Format.kasprintf (fun message -> errors := { where; message } :: !errors) fmt
  in
  let member = Hashtbl.create (2 * List.length nodes + 1) in
  List.iter (fun ((bref : Program.bref), _) -> Hashtbl.replace member bref ())
    nodes;
  let rec chase ~(where : Program.bref) (bref : Program.bref) fuel =
    if not (Hashtbl.mem member bref) then
      if fuel = 0 then
        err ~where "successor chase through %a does not terminate"
          Program.pp_bref bref
      else
        match Program.find_block program bref with
        | exception Not_found ->
          err ~where "dangling successor %a: no such block" Program.pp_bref bref
        | block ->
          if not (pass_through block) then
            err ~where "dangling successor %a: off-graph block is not pass-through"
              Program.pp_bref bref
          else (
            match block.Block.term with
            | Term.Goto l ->
              chase ~where { Program.handler = bref.handler; label = l } (fuel - 1)
            | Term.Halt -> ()
            | Term.Branch _ | Term.Switch _ | Term.Icall _ ->
              err ~where
                "dangling successor %a: pass-through block has a decision terminator"
                Program.pp_bref bref)
  in
  List.iter
    (fun ((bref : Program.bref), succs) ->
      (match Program.find_block program bref with
      | exception Not_found ->
        err ~where:bref "graph node has no source block"
      | _ -> ());
      List.iter (fun s -> chase ~where:bref s 1024) succs)
    nodes;
  List.rev !errors

let errors_message program errors =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "program %s is ill-formed:@." (Program.name program);
  List.iter (fun e -> Format.fprintf ppf "  %a@." pp_error e) errors;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let validate_result program =
  match check program with
  | [] -> Ok ()
  | errors -> Error (errors_message program errors)

let check_exn program =
  match validate_result program with
  | Ok () -> ()
  | Error msg -> failwith msg
