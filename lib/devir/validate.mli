(** Static well-formedness checks for device programs.

    Devices are data, so a malformed device model would otherwise surface as
    a confusing runtime failure deep inside an experiment.  [check] is run
    by the test suite over every shipped device model. *)

type error = {
  where : Program.bref option;
  message : string;
}

val check : Program.t -> error list
(** Returns all violations found:
    - branch/goto/switch/icall successors resolve to blocks of the handler;
    - the first block of a handler has kind [Entry]; no other block does;
    - every handler has at least one [Exit]-kind block and [Exit] blocks
      terminate with [Halt];
    - referenced fields exist in the layout; buffer operations target [Buf]
      fields; [Set_field] targets scalars;
    - locals are assigned somewhere in the handler before any block reads
      them (flow-insensitive approximation);
    - request parameters read by blocks are declared by the handler;
    - [Cmd_decision] blocks terminate with [Switch]. *)

val check_graph :
  Program.t ->
  nodes:(Program.bref * Program.bref list) list ->
  pass_through:(Block.t -> bool) ->
  error list
(** Validate a graph layered over a program: every node bref must resolve
    to a block, and every successor must either be a graph node itself or
    chase to one through pass-through blocks — blocks satisfying
    [pass_through] with an unconditional terminator ([Goto] chains; a
    [Halt] ends the chase legitimately).  Reports dangling successors,
    off-graph blocks that are not pass-through, decisions reached
    mid-chase, and non-terminating chases.  Used to assert that reduced
    and minimized execution specifications keep the walker on defined
    paths. *)

val validate_result : Program.t -> (unit, string) result
(** [Ok ()] when {!check} finds nothing; otherwise [Error msg] where [msg]
    is a readable report naming every offending block. *)

val check_exn : Program.t -> unit
(** Raises [Failure] with the {!validate_result} report when [check] is
    non-empty. *)

val pp_error : Format.formatter -> error -> unit
