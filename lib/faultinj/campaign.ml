module Prng = Sedspec_util.Prng
module Runner = Sedspec_util.Runner
module Json = Sedspec_util.Json
module C = Sedspec.Checker

type options = {
  devices : string list;
  plans_per_combo : int;
  cases_per_plan : int;
  ops_per_case : int;
  seed : int64;
  jobs : int;
}

let default_options =
  {
    devices = [ "fdc"; "ehci"; "pcnet"; "sdhci"; "scsi" ];
    plans_per_combo = 12;
    cases_per_plan = 3;
    ops_per_case = 6;
    seed = 1L;
    jobs = 1;
  }

type combo_report = {
  device : string;
  mode : C.mode;
  engine : C.engine;
  injected : int;
  contained : int;
  escaped : int;
  fail_open : int;
  halts : int;
  warns : int;
  rollbacks : int;
  breaker_trips : int;
  heals : int;
  spec_detected : int;
  spec_benign : int;
  spec_silent : int;
}

type report = { options : options; combos : combo_report list }

type combo = { cb_device : string; cb_mode : C.mode; cb_engine : C.engine }

(* Return the recycled machine/checker pair to boot state between plans
   (the fuzzer's scrub, inlined: faultinj must not depend on fuzz). *)
let scrub ~device machine checker =
  Vmm.Machine.resume machine;
  Vmm.Machine.clear_warnings machine;
  Vmm.Machine.clear_traps machine;
  Vmm.Guest_mem.clear (Vmm.Machine.ram machine);
  Devir.Arena.reset (Interp.arena (Vmm.Machine.interp_of machine device));
  Vmm.Irq.lower_line (Vmm.Machine.irq machine) device;
  Vmm.Irq.clear_counts (Vmm.Machine.irq machine);
  C.reset checker

let run_combo ~seed opts { cb_device = device; cb_mode; cb_engine } =
  let w = Workload.Samples.find device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let version = W.paper_version in
  let spec_text =
    Sedspec.Persist.to_string (Metrics.Spec_cache.built w version).Sedspec.Pipeline.spec
  in
  let config =
    { C.default_config with mode = cb_mode; engine = cb_engine }
  in
  let machine, checker =
    Metrics.Spec_cache.fresh_protected_machine ~config ~vmexit_cost:0 w version
  in
  let program = Interp.program (Vmm.Machine.interp_of machine device) in
  let rng = Prng.create seed in
  let plans = Plan.generate rng ~n:opts.plans_per_combo in
  let injected = ref 0
  and contained = ref 0
  and escaped = ref 0
  and fail_open = ref 0
  and halts = ref 0
  and warns = ref 0
  and rollbacks = ref 0
  and breaker_trips = ref 0
  and heals = ref 0
  and spec_detected = ref 0
  and spec_benign = ref 0
  and spec_silent = ref 0 in
  List.iter
    (fun (plan : Plan.t) ->
      let prng = Prng.split rng in
      match plan.site with
      | Plan.Spec_bit_flip _ | Plan.Spec_truncate -> (
        incr injected;
        let corrupted = Inject.corrupt_spec prng plan.site spec_text in
        match Sedspec.Persist.of_string ~program corrupted with
        | Error _ -> incr spec_detected
        | Ok spec' ->
          if Sedspec.Persist.to_string spec' = spec_text then incr spec_benign
          else incr spec_silent)
      | _ ->
        scrub ~device machine checker;
        C.set_config checker { config with on_internal_error = plan.policy };
        let remedy =
          Sedspec.Remedy.create
            ~policy_of:(fun _ -> Sedspec.Remedy.Rollback)
            ~breaker:(2, 8) machine ~device checker
        in
        let armed = Inject.arm plan machine checker in
        let plan_escaped = ref 0 in
        for _ = 1 to opts.cases_per_plan do
          (try
             W.soak_case ~mode:Workload.Samples.Sequential ~rng:prng
               ~rare_prob:0.0 ~ops:opts.ops_per_case machine
           with _ -> incr plan_escaped);
          warns := !warns + List.length (Vmm.Machine.warnings machine);
          if Vmm.Machine.halted machine then incr halts;
          ignore (Sedspec.Remedy.tick remedy : Sedspec.Remedy.event list)
        done;
        Inject.disarm armed;
        let plan_contained = C.internal_errors checker in
        injected := !injected + Inject.fired armed;
        contained := !contained + plan_contained;
        escaped := !escaped + !plan_escaped;
        (match plan.site with
        | Plan.Walk_raise _
          when plan.policy = C.Fail_closed
               && Inject.fired armed > 0
               && plan_contained = 0
               && !plan_escaped = 0 ->
          incr fail_open
        | _ -> ());
        rollbacks := !rollbacks + Sedspec.Remedy.rollbacks remedy;
        if Sedspec.Remedy.breaker_tripped remedy then incr breaker_trips;
        heals := !heals + C.heals checker)
    plans;
  {
    device;
    mode = cb_mode;
    engine = cb_engine;
    injected = !injected;
    contained = !contained;
    escaped = !escaped;
    fail_open = !fail_open;
    halts = !halts;
    warns = !warns;
    rollbacks = !rollbacks;
    breaker_trips = !breaker_trips;
    heals = !heals;
    spec_detected = !spec_detected;
    spec_benign = !spec_benign;
    spec_silent = !spec_silent;
  }

let run opts =
  let combos =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun m ->
            List.map
              (fun e -> { cb_device = d; cb_mode = m; cb_engine = e })
              [ C.Compiled; C.Interpreted ])
          [ C.Protection; C.Enhancement ])
      opts.devices
  in
  let combos_r =
    Runner.map_seeded ~jobs:opts.jobs ~seed:opts.seed
      (fun ~seed combo -> run_combo ~seed opts combo)
      combos
  in
  { options = opts; combos = combos_r }

let totals r =
  List.fold_left
    (fun acc c ->
      {
        acc with
        injected = acc.injected + c.injected;
        contained = acc.contained + c.contained;
        escaped = acc.escaped + c.escaped;
        fail_open = acc.fail_open + c.fail_open;
        halts = acc.halts + c.halts;
        warns = acc.warns + c.warns;
        rollbacks = acc.rollbacks + c.rollbacks;
        breaker_trips = acc.breaker_trips + c.breaker_trips;
        heals = acc.heals + c.heals;
        spec_detected = acc.spec_detected + c.spec_detected;
        spec_benign = acc.spec_benign + c.spec_benign;
        spec_silent = acc.spec_silent + c.spec_silent;
      })
    {
      device = "total";
      mode = C.Protection;
      engine = C.Compiled;
      injected = 0;
      contained = 0;
      escaped = 0;
      fail_open = 0;
      halts = 0;
      warns = 0;
      rollbacks = 0;
      breaker_trips = 0;
      heals = 0;
      spec_detected = 0;
      spec_benign = 0;
      spec_silent = 0;
    }
    r.combos

let passed r =
  let t = totals r in
  t.escaped = 0 && t.fail_open = 0 && t.spec_silent = 0

let mode_to_string = function
  | C.Protection -> "protection"
  | C.Enhancement -> "enhancement"

let engine_to_string = function
  | C.Compiled -> "compiled"
  | C.Interpreted -> "interpreted"

let combo_fields c =
  [
    ("injected", Json.Int c.injected);
    ("contained", Json.Int c.contained);
    ("escaped", Json.Int c.escaped);
    ("fail_open", Json.Int c.fail_open);
    ("halts", Json.Int c.halts);
    ("warns", Json.Int c.warns);
    ("rollbacks", Json.Int c.rollbacks);
    ("breaker_trips", Json.Int c.breaker_trips);
    ("heals", Json.Int c.heals);
    ("spec_detected", Json.Int c.spec_detected);
    ("spec_benign", Json.Int c.spec_benign);
    ("spec_silent", Json.Int c.spec_silent);
  ]

let report_to_json r =
  Json.Obj
    [
      ("seed", Json.Str (Printf.sprintf "0x%Lx" r.options.seed));
      ("plans_per_combo", Json.Int r.options.plans_per_combo);
      ("cases_per_plan", Json.Int r.options.cases_per_plan);
      ("ops_per_case", Json.Int r.options.ops_per_case);
      ("devices", Json.List (List.map (fun d -> Json.Str d) r.options.devices));
      ( "combos",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 (("device", Json.Str c.device)
                  :: ("mode", Json.Str (mode_to_string c.mode))
                  :: ("engine", Json.Str (engine_to_string c.engine))
                  :: combo_fields c))
             r.combos) );
      ("totals", Json.Obj (combo_fields (totals r)));
      ("passed", Json.Bool (passed r));
    ]

let pp_report ppf r =
  let line c name =
    Format.fprintf ppf
      "%-24s %9d %9d %7d %9d %6d %6d %9d %7d %5d %8d %6d %6d@." name c.injected
      c.contained c.escaped c.fail_open c.halts c.warns c.rollbacks
      c.breaker_trips c.heals c.spec_detected c.spec_benign c.spec_silent
  in
  Format.fprintf ppf "%-24s %9s %9s %7s %9s %6s %6s %9s %7s %5s %8s %6s %6s@."
    "device/mode/engine" "injected" "contained" "escaped" "fail-open" "halts"
    "warns" "rollbacks" "breaker" "heals" "specdet" "benign" "silent";
  List.iter
    (fun c ->
      line c
        (Printf.sprintf "%s/%s/%s" c.device
           (match c.mode with C.Protection -> "prot" | C.Enhancement -> "enh")
           (match c.engine with C.Compiled -> "comp" | C.Interpreted -> "interp")))
    r.combos;
  line (totals r) "TOTAL";
  Format.fprintf ppf "verdict: %s@."
    (if passed r then "PASS (no escapes, no silent fail-opens)"
     else "FAIL (escaped exception or silent fail-open)")
