module Prng = Sedspec_util.Prng
module Runner = Sedspec_util.Runner
module Json = Sedspec_util.Json
module C = Sedspec.Checker

type options = {
  devices : string list;
  plans_per_combo : int;
  cases_per_plan : int;
  ops_per_case : int;
  seed : int64;
  jobs : int;
}

let default_options =
  {
    devices = [ "fdc"; "ehci"; "pcnet"; "sdhci"; "scsi" ];
    plans_per_combo = 12;
    cases_per_plan = 3;
    ops_per_case = 6;
    seed = 1L;
    jobs = 1;
  }

type combo_report = {
  device : string;
  mode : C.mode;
  engine : C.engine;
  injected : int;
  contained : int;
  escaped : int;
  fail_open : int;
  halts : int;
  warns : int;
  rollbacks : int;
  breaker_trips : int;
  heals : int;
  spec_detected : int;
  spec_benign : int;
  spec_silent : int;
}

type report = { options : options; combos : combo_report list }

type combo = { cb_device : string; cb_mode : C.mode; cb_engine : C.engine }

(* Return the recycled machine/checker pair to boot state between plans
   (the fuzzer's scrub, inlined: faultinj must not depend on fuzz). *)
let scrub ~device machine checker =
  Vmm.Machine.resume machine;
  Vmm.Machine.clear_warnings machine;
  Vmm.Machine.clear_traps machine;
  Vmm.Guest_mem.clear (Vmm.Machine.ram machine);
  Devir.Arena.reset (Interp.arena (Vmm.Machine.interp_of machine device));
  Vmm.Irq.lower_line (Vmm.Machine.irq machine) device;
  Vmm.Irq.clear_counts (Vmm.Machine.irq machine);
  C.reset checker

let run_combo ~seed opts { cb_device = device; cb_mode; cb_engine } =
  let w = Workload.Samples.find device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let version = W.paper_version in
  let spec_text =
    Sedspec.Persist.to_string (Metrics.Spec_cache.built w version).Sedspec.Pipeline.spec
  in
  let config =
    { C.default_config with mode = cb_mode; engine = cb_engine }
  in
  let machine, checker =
    Metrics.Spec_cache.fresh_protected_machine ~config ~vmexit_cost:0 w version
  in
  let program = Interp.program (Vmm.Machine.interp_of machine device) in
  let rng = Prng.create seed in
  let plans = Plan.generate rng ~n:opts.plans_per_combo in
  let injected = ref 0
  and contained = ref 0
  and escaped = ref 0
  and fail_open = ref 0
  and halts = ref 0
  and warns = ref 0
  and rollbacks = ref 0
  and breaker_trips = ref 0
  and heals = ref 0
  and spec_detected = ref 0
  and spec_benign = ref 0
  and spec_silent = ref 0 in
  List.iter
    (fun (plan : Plan.t) ->
      let prng = Prng.split rng in
      match plan.site with
      | Plan.Spec_bit_flip _ | Plan.Spec_truncate -> (
        incr injected;
        let corrupted = Inject.corrupt_spec prng plan.site spec_text in
        match Sedspec.Persist.of_string ~program corrupted with
        | Error _ -> incr spec_detected
        | Ok spec' ->
          if Sedspec.Persist.to_string spec' = spec_text then incr spec_benign
          else incr spec_silent)
      | _ ->
        scrub ~device machine checker;
        C.set_config checker { config with on_internal_error = plan.policy };
        let remedy =
          Sedspec.Remedy.create
            ~policy_of:(fun _ -> Sedspec.Remedy.Rollback)
            ~breaker:(2, 8) machine ~device checker
        in
        let armed = Inject.arm plan machine checker in
        let plan_escaped = ref 0 in
        for _ = 1 to opts.cases_per_plan do
          (try
             W.soak_case ~mode:Workload.Samples.Sequential ~rng:prng
               ~rare_prob:0.0 ~ops:opts.ops_per_case machine
           with _ -> incr plan_escaped);
          warns := !warns + List.length (Vmm.Machine.warnings machine);
          if Vmm.Machine.halted machine then incr halts;
          ignore (Sedspec.Remedy.tick remedy : Sedspec.Remedy.event list)
        done;
        Inject.disarm armed;
        let plan_contained = C.internal_errors checker in
        injected := !injected + Inject.fired armed;
        contained := !contained + plan_contained;
        escaped := !escaped + !plan_escaped;
        (match plan.site with
        | Plan.Walk_raise _
          when plan.policy = C.Fail_closed
               && Inject.fired armed > 0
               && plan_contained = 0
               && !plan_escaped = 0 ->
          incr fail_open
        | _ -> ());
        rollbacks := !rollbacks + Sedspec.Remedy.rollbacks remedy;
        if Sedspec.Remedy.breaker_tripped remedy then incr breaker_trips;
        heals := !heals + C.heals checker)
    plans;
  {
    device;
    mode = cb_mode;
    engine = cb_engine;
    injected = !injected;
    contained = !contained;
    escaped = !escaped;
    fail_open = !fail_open;
    halts = !halts;
    warns = !warns;
    rollbacks = !rollbacks;
    breaker_trips = !breaker_trips;
    heals = !heals;
    spec_detected = !spec_detected;
    spec_benign = !spec_benign;
    spec_silent = !spec_silent;
  }

let run opts =
  let combos =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun m ->
            List.map
              (fun e -> { cb_device = d; cb_mode = m; cb_engine = e })
              [ C.Compiled; C.Interpreted ])
          [ C.Protection; C.Enhancement ])
      opts.devices
  in
  let combos_r =
    Runner.map_seeded ~jobs:opts.jobs ~seed:opts.seed
      (fun ~seed combo -> run_combo ~seed opts combo)
      combos
  in
  { options = opts; combos = combos_r }

let totals r =
  List.fold_left
    (fun acc c ->
      {
        acc with
        injected = acc.injected + c.injected;
        contained = acc.contained + c.contained;
        escaped = acc.escaped + c.escaped;
        fail_open = acc.fail_open + c.fail_open;
        halts = acc.halts + c.halts;
        warns = acc.warns + c.warns;
        rollbacks = acc.rollbacks + c.rollbacks;
        breaker_trips = acc.breaker_trips + c.breaker_trips;
        heals = acc.heals + c.heals;
        spec_detected = acc.spec_detected + c.spec_detected;
        spec_benign = acc.spec_benign + c.spec_benign;
        spec_silent = acc.spec_silent + c.spec_silent;
      })
    {
      device = "total";
      mode = C.Protection;
      engine = C.Compiled;
      injected = 0;
      contained = 0;
      escaped = 0;
      fail_open = 0;
      halts = 0;
      warns = 0;
      rollbacks = 0;
      breaker_trips = 0;
      heals = 0;
      spec_detected = 0;
      spec_benign = 0;
      spec_silent = 0;
    }
    r.combos

let passed r =
  let t = totals r in
  t.escaped = 0 && t.fail_open = 0 && t.spec_silent = 0

let mode_to_string = function
  | C.Protection -> "protection"
  | C.Enhancement -> "enhancement"

let engine_to_string = function
  | C.Compiled -> "compiled"
  | C.Interpreted -> "interpreted"

let combo_fields c =
  [
    ("injected", Json.Int c.injected);
    ("contained", Json.Int c.contained);
    ("escaped", Json.Int c.escaped);
    ("fail_open", Json.Int c.fail_open);
    ("halts", Json.Int c.halts);
    ("warns", Json.Int c.warns);
    ("rollbacks", Json.Int c.rollbacks);
    ("breaker_trips", Json.Int c.breaker_trips);
    ("heals", Json.Int c.heals);
    ("spec_detected", Json.Int c.spec_detected);
    ("spec_benign", Json.Int c.spec_benign);
    ("spec_silent", Json.Int c.spec_silent);
  ]

let report_to_json r =
  Json.Obj
    [
      ("seed", Json.Str (Printf.sprintf "0x%Lx" r.options.seed));
      ("plans_per_combo", Json.Int r.options.plans_per_combo);
      ("cases_per_plan", Json.Int r.options.cases_per_plan);
      ("ops_per_case", Json.Int r.options.ops_per_case);
      ("devices", Json.List (List.map (fun d -> Json.Str d) r.options.devices));
      ( "combos",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 (("device", Json.Str c.device)
                  :: ("mode", Json.Str (mode_to_string c.mode))
                  :: ("engine", Json.Str (engine_to_string c.engine))
                  :: combo_fields c))
             r.combos) );
      ("totals", Json.Obj (combo_fields (totals r)));
      ("passed", Json.Bool (passed r));
    ]

let pp_report ppf r =
  let line c name =
    Format.fprintf ppf
      "%-24s %9d %9d %7d %9d %6d %6d %9d %7d %5d %8d %6d %6d@." name c.injected
      c.contained c.escaped c.fail_open c.halts c.warns c.rollbacks
      c.breaker_trips c.heals c.spec_detected c.spec_benign c.spec_silent
  in
  Format.fprintf ppf "%-24s %9s %9s %7s %9s %6s %6s %9s %7s %5s %8s %6s %6s@."
    "device/mode/engine" "injected" "contained" "escaped" "fail-open" "halts"
    "warns" "rollbacks" "breaker" "heals" "specdet" "benign" "silent";
  List.iter
    (fun c ->
      line c
        (Printf.sprintf "%s/%s/%s" c.device
           (match c.mode with C.Protection -> "prot" | C.Enhancement -> "enh")
           (match c.engine with C.Compiled -> "comp" | C.Interpreted -> "interp")))
    r.combos;
  line (totals r) "TOTAL";
  Format.fprintf ppf "verdict: %s@."
    (if passed r then "PASS (no escapes, no silent fail-opens)"
     else "FAIL (escaped exception or silent fail-open)")

(* ------------------------------------------------------------------ *)
(* Fleet bulkhead isolation                                            *)
(* ------------------------------------------------------------------ *)

type fleet_options = {
  fl_vms : int;
  fl_faulty : int;
  fl_ticks : int;
  fl_seed : int64;
  fl_jobs : int;
  fl_devices : string list;
}

let default_fleet_options =
  {
    fl_vms = 8;
    fl_faulty = 3;
    fl_ticks = 24;
    fl_seed = 1L;
    fl_jobs = 1;
    fl_devices = [ "fdc"; "ehci"; "pcnet"; "sdhci"; "scsi" ];
  }

type fleet_report = {
  fl_options : fleet_options;
  fl_faulty_set : int list;
  fl_sites : (int * string) list;  (** (vm, armed fault site). *)
  fl_fired : int;
  fl_clean_divergent : int list;
  fl_jobs_divergence : bool;
  fl_baseline : Fleet.Supervisor.report;
  fl_faulted : Fleet.Supervisor.report;
}

(* Spread the faulty members across the fleet so every device type in the
   round-robin can land in both the faulty and the clean partition. *)
let faulty_set ~vms ~faulty =
  List.init faulty (fun k -> k * vms / faulty)

(* Only machine-site faults make sense against a live fleet member; the
   spec sites are exercised by the load path (Vm's backoff'd Persist
   retries), not by arming. *)
let machine_site rng =
  match Prng.int rng 4 with
  | 0 -> Plan.Guest_corrupt { mask = Prng.pick rng Plan.masks }
  | 1 -> Plan.Guest_short { limit = Prng.pick rng Plan.limits }
  | 2 -> Plan.Walk_raise { at_walk = Prng.int rng 6 }
  | _ -> Plan.Walk_delay { at_walk = Prng.int rng 6; spin = Prng.pick rng Plan.spins }

let fleet_isolation opts =
  if opts.fl_faulty < 1 || opts.fl_faulty > opts.fl_vms then
    invalid_arg "Campaign.fleet_isolation: need 1 <= faulty <= vms";
  let faulty = faulty_set ~vms:opts.fl_vms ~faulty:opts.fl_faulty in
  let sup_opts jobs =
    {
      (Fleet.Supervisor.default_options ()) with
      Fleet.Supervisor.vms = opts.fl_vms;
      ticks = opts.fl_ticks;
      seed = opts.fl_seed;
      jobs;
      devices = opts.fl_devices;
    }
  in
  (* Plan sites are drawn per faulty VM from a stream keyed only by the
     campaign seed and the VM index, so arming is jobs-independent too. *)
  let site_of = Hashtbl.create 8 in
  List.iter
    (fun vm ->
      let rng = Prng.create (Int64.add opts.fl_seed (Int64.of_int (vm + 1))) in
      Hashtbl.replace site_of vm (machine_site (Prng.split rng)))
    faulty;
  let fired = Atomic.make 0 in
  let arm ~vm machine checker =
    match Hashtbl.find_opt site_of vm with
    | None -> None
    | Some site ->
      let plan = { Plan.id = vm; site; policy = C.Fail_closed } in
      let armed = Inject.arm plan machine checker in
      Some
        (fun () ->
          Inject.disarm armed;
          ignore (Atomic.fetch_and_add fired (Inject.fired armed) : int))
  in
  let baseline = Fleet.Supervisor.run (sup_opts opts.fl_jobs) in
  let faulted = Fleet.Supervisor.run ~arm (sup_opts opts.fl_jobs) in
  let jobs_divergence =
    if opts.fl_jobs = 1 then false
    else
      let serial = Fleet.Supervisor.run ~arm (sup_opts 1) in
      Fleet.Supervisor.report_to_json serial
      <> Fleet.Supervisor.report_to_json faulted
  in
  let base_vms = Array.of_list baseline.Fleet.Supervisor.f_vms
  and fault_vms = Array.of_list faulted.Fleet.Supervisor.f_vms in
  (* Compare behaviour, not arena identity: [r_arena] is a physical
     handle (and holds closures, which structural compare rejects).  A
     faulty sibling's failed build may legitimately force a fresh —
     equal-content — arena for clean VMs acquired after the eviction. *)
  let strip (r : Fleet.Vm.report) = { r with Fleet.Vm.r_arena = None } in
  let clean_divergent =
    List.filter
      (fun i ->
        (not (List.mem i faulty)) && strip base_vms.(i) <> strip fault_vms.(i))
      (List.init opts.fl_vms Fun.id)
  in
  {
    fl_options = opts;
    fl_faulty_set = faulty;
    fl_sites =
      List.map (fun vm -> (vm, Plan.site_to_string (Hashtbl.find site_of vm))) faulty;
    fl_fired = Atomic.get fired;
    fl_clean_divergent = clean_divergent;
    fl_jobs_divergence = jobs_divergence;
    fl_baseline = baseline;
    fl_faulted = faulted;
  }

let fleet_passed r =
  r.fl_fired > 0 && r.fl_clean_divergent = [] && not r.fl_jobs_divergence

let fleet_report_to_json r =
  let o = r.fl_options in
  Json.Obj
    [
      ("seed", Json.Str (Printf.sprintf "0x%Lx" o.fl_seed));
      ("vms", Json.Int o.fl_vms);
      ("ticks", Json.Int o.fl_ticks);
      ("jobs", Json.Int o.fl_jobs);
      ("devices", Json.List (List.map (fun d -> Json.Str d) o.fl_devices));
      ("faulty", Json.List (List.map (fun i -> Json.Int i) r.fl_faulty_set));
      ( "sites",
        Json.List
          (List.map
             (fun (vm, s) ->
               Json.Obj [ ("vm", Json.Int vm); ("site", Json.Str s) ])
             r.fl_sites) );
      ("fired", Json.Int r.fl_fired);
      ( "clean_divergent",
        Json.List (List.map (fun i -> Json.Int i) r.fl_clean_divergent) );
      ("jobs_divergence", Json.Bool r.fl_jobs_divergence);
      ( "baseline",
        Json.Obj
          [
            ("interactions", Json.Int r.fl_baseline.Fleet.Supervisor.f_interactions);
            ("anomalies", Json.Int r.fl_baseline.Fleet.Supervisor.f_anomalies);
            ("crashes", Json.Int r.fl_baseline.Fleet.Supervisor.f_crashes);
            ("rollbacks", Json.Int r.fl_baseline.Fleet.Supervisor.f_rollbacks);
          ] );
      ( "faulted",
        Json.Obj
          [
            ("interactions", Json.Int r.fl_faulted.Fleet.Supervisor.f_interactions);
            ("anomalies", Json.Int r.fl_faulted.Fleet.Supervisor.f_anomalies);
            ("internal_errors", Json.Int r.fl_faulted.Fleet.Supervisor.f_internal_errors);
            ("deadline_overruns", Json.Int r.fl_faulted.Fleet.Supervisor.f_deadline_overruns);
            ("crashes", Json.Int r.fl_faulted.Fleet.Supervisor.f_crashes);
            ("rollbacks", Json.Int r.fl_faulted.Fleet.Supervisor.f_rollbacks);
            ("degrades", Json.Int r.fl_faulted.Fleet.Supervisor.f_degrades);
          ] );
      ("passed", Json.Bool (fleet_passed r));
    ]

let pp_fleet_report ppf r =
  Format.fprintf ppf
    "fleet isolation: %d VMs (%d faulty: %s), %d ticks, seed %Ld@."
    r.fl_options.fl_vms r.fl_options.fl_faulty
    (String.concat ","
       (List.map (fun (vm, s) -> Printf.sprintf "vm%d:%s" vm s) r.fl_sites))
    r.fl_options.fl_ticks r.fl_options.fl_seed;
  Format.fprintf ppf
    "  faults fired: %d; faulted-run anomalies: %d (baseline %d); \
     rollbacks: %d (baseline %d)@."
    r.fl_fired r.fl_faulted.Fleet.Supervisor.f_anomalies
    r.fl_baseline.Fleet.Supervisor.f_anomalies
    r.fl_faulted.Fleet.Supervisor.f_rollbacks
    r.fl_baseline.Fleet.Supervisor.f_rollbacks;
  (match r.fl_clean_divergent with
  | [] -> Format.fprintf ppf "  clean VMs: all byte-identical to baseline@."
  | l ->
    Format.fprintf ppf "  clean VMs DIVERGED: %s@."
      (String.concat "," (List.map string_of_int l)));
  Format.fprintf ppf "verdict: %s@."
    (if fleet_passed r then
       "PASS (faults fired, zero cross-bulkhead interference, \
        jobs-independent)"
     else "FAIL (no firing, clean-VM divergence or jobs divergence)")

(* ------------------------------------------------------------------ *)
(* Hostile-device campaign: corruptions of the host->guest channel     *)
(* ------------------------------------------------------------------ *)

type hostile_options = {
  h_devices : string list;
  h_plans_per_combo : int;
  h_cases_per_plan : int;
  h_ops_per_case : int;
  h_min_injected : int;
  h_seed : int64;
  h_jobs : int;
}

let default_hostile_options =
  {
    h_devices = [ "sdhci"; "virtio" ];
    h_plans_per_combo = 36;
    h_cases_per_plan = 6;
    h_ops_per_case = 10;
    h_min_injected = 5000;
    h_seed = 1L;
    h_jobs = 1;
  }

type hostile_combo_report = {
  hc_device : string;
  hc_mode : C.mode;
  hc_engine : C.engine;
  hc_injected : int;
  hc_contained : int;
  hc_escaped : int;
  hc_fail_open : int;
  hc_guard_anoms : int;
  hc_halts : int;
  hc_warns : int;
  hc_rollbacks : int;
  hc_breaker_trips : int;
  hc_heals : int;
}

type hostile_report = {
  h_options : hostile_options;
  h_combos : hostile_combo_report list;
}

let run_hostile_combo ~seed opts { cb_device = device; cb_mode; cb_engine } =
  let w = Workload.Samples.find device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let version = W.paper_version in
  let config = { C.default_config with mode = cb_mode; engine = cb_engine } in
  let machine, checker =
    Metrics.Spec_cache.fresh_protected_machine ~config ~vmexit_cost:0 w version
  in
  let profile = Metrics.Spec_cache.guard_profile w version in
  let validator = Guard.Validator.attach machine ~device ~profile in
  let guard_anoms = ref 0 in
  let aux_drain () =
    let l = Guard.Validator.drain_as_checker_anomalies validator in
    guard_anoms := !guard_anoms + List.length l;
    l
  in
  let rng = Prng.create seed in
  let plans = Plan.generate_hostile rng ~n:opts.h_plans_per_combo in
  let injected = ref 0
  and contained = ref 0
  and escaped = ref 0
  and fail_open = ref 0
  and halts = ref 0
  and warns = ref 0
  and rollbacks = ref 0
  and breaker_trips = ref 0
  and heals = ref 0 in
  List.iter
    (fun (plan : Plan.t) ->
      let prng = Prng.split rng in
      scrub ~device machine checker;
      Guard.Validator.reset validator;
      C.set_config checker { config with on_internal_error = plan.policy };
      Guard.Validator.set_config validator
        { Guard.Validator.default_config with containment = plan.policy };
      let remedy =
        Sedspec.Remedy.create
          ~policy_of:(fun _ -> Sedspec.Remedy.Rollback)
          ~aux_drain ~breaker:(2, 8) machine ~device checker
      in
      let armed = Inject.arm ~guard:validator plan machine checker in
      let plan_escaped = ref 0 in
      for _ = 1 to opts.h_cases_per_plan do
        (try
           W.soak_case ~mode:Workload.Samples.Sequential ~rng:prng
             ~rare_prob:0.0 ~ops:opts.h_ops_per_case machine
         with _ -> incr plan_escaped);
        warns := !warns + List.length (Vmm.Machine.warnings machine);
        if Vmm.Machine.halted machine then incr halts;
        ignore (Guard.Validator.heal validator : bool);
        ignore (Sedspec.Remedy.tick remedy : Sedspec.Remedy.event list)
      done;
      Inject.disarm armed;
      let plan_contained =
        C.internal_errors checker + Guard.Validator.internal_errors validator
      in
      injected := !injected + Inject.fired armed;
      contained := !contained + plan_contained;
      escaped := !escaped + !plan_escaped;
      (match plan.site with
      | Plan.Guard_raise _
        when plan.policy = C.Fail_closed
             && Inject.fired armed > 0
             && Guard.Validator.internal_errors validator = 0
             && !plan_escaped = 0 ->
        incr fail_open
      | _ -> ());
      rollbacks := !rollbacks + Sedspec.Remedy.rollbacks remedy;
      if Sedspec.Remedy.breaker_tripped remedy then incr breaker_trips;
      heals := !heals + C.heals checker + Guard.Validator.heals validator)
    plans;
  Guard.Validator.detach validator;
  {
    hc_device = device;
    hc_mode = cb_mode;
    hc_engine = cb_engine;
    hc_injected = !injected;
    hc_contained = !contained;
    hc_escaped = !escaped;
    hc_fail_open = !fail_open;
    hc_guard_anoms = !guard_anoms;
    hc_halts = !halts;
    hc_warns = !warns;
    hc_rollbacks = !rollbacks;
    hc_breaker_trips = !breaker_trips;
    hc_heals = !heals;
  }

let run_hostile opts =
  let combos =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun m ->
            List.map
              (fun e -> { cb_device = d; cb_mode = m; cb_engine = e })
              [ C.Compiled; C.Interpreted ])
          [ C.Protection; C.Enhancement ])
      opts.h_devices
  in
  let combos_r =
    Runner.map_seeded ~jobs:opts.h_jobs ~seed:opts.h_seed
      (fun ~seed combo -> run_hostile_combo ~seed opts combo)
      combos
  in
  { h_options = opts; h_combos = combos_r }

let hostile_totals r =
  List.fold_left
    (fun acc c ->
      {
        acc with
        hc_injected = acc.hc_injected + c.hc_injected;
        hc_contained = acc.hc_contained + c.hc_contained;
        hc_escaped = acc.hc_escaped + c.hc_escaped;
        hc_fail_open = acc.hc_fail_open + c.hc_fail_open;
        hc_guard_anoms = acc.hc_guard_anoms + c.hc_guard_anoms;
        hc_halts = acc.hc_halts + c.hc_halts;
        hc_warns = acc.hc_warns + c.hc_warns;
        hc_rollbacks = acc.hc_rollbacks + c.hc_rollbacks;
        hc_breaker_trips = acc.hc_breaker_trips + c.hc_breaker_trips;
        hc_heals = acc.hc_heals + c.hc_heals;
      })
    {
      hc_device = "total";
      hc_mode = C.Protection;
      hc_engine = C.Compiled;
      hc_injected = 0;
      hc_contained = 0;
      hc_escaped = 0;
      hc_fail_open = 0;
      hc_guard_anoms = 0;
      hc_halts = 0;
      hc_warns = 0;
      hc_rollbacks = 0;
      hc_breaker_trips = 0;
      hc_heals = 0;
    }
    r.h_combos

let hostile_passed r =
  let t = hostile_totals r in
  t.hc_escaped = 0 && t.hc_fail_open = 0
  && t.hc_injected >= r.h_options.h_min_injected

let hostile_combo_fields c =
  [
    ("injected", Json.Int c.hc_injected);
    ("contained", Json.Int c.hc_contained);
    ("escaped", Json.Int c.hc_escaped);
    ("fail_open", Json.Int c.hc_fail_open);
    ("guard_anomalies", Json.Int c.hc_guard_anoms);
    ("halts", Json.Int c.hc_halts);
    ("warns", Json.Int c.hc_warns);
    ("rollbacks", Json.Int c.hc_rollbacks);
    ("breaker_trips", Json.Int c.hc_breaker_trips);
    ("heals", Json.Int c.hc_heals);
  ]

let hostile_report_to_json r =
  Json.Obj
    [
      ("seed", Json.Str (Printf.sprintf "0x%Lx" r.h_options.h_seed));
      ("plans_per_combo", Json.Int r.h_options.h_plans_per_combo);
      ("cases_per_plan", Json.Int r.h_options.h_cases_per_plan);
      ("ops_per_case", Json.Int r.h_options.h_ops_per_case);
      ("min_injected", Json.Int r.h_options.h_min_injected);
      ( "devices",
        Json.List (List.map (fun d -> Json.Str d) r.h_options.h_devices) );
      ( "combos",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 (("device", Json.Str c.hc_device)
                  :: ("mode", Json.Str (mode_to_string c.hc_mode))
                  :: ("engine", Json.Str (engine_to_string c.hc_engine))
                  :: hostile_combo_fields c))
             r.h_combos) );
      ("totals", Json.Obj (hostile_combo_fields (hostile_totals r)));
      ("passed", Json.Bool (hostile_passed r));
    ]

let pp_hostile_report ppf r =
  let line c name =
    Format.fprintf ppf "%-24s %9d %9d %7d %9d %6d %6d %6d %9d %7d %5d@." name
      c.hc_injected c.hc_contained c.hc_escaped c.hc_fail_open c.hc_guard_anoms
      c.hc_halts c.hc_warns c.hc_rollbacks c.hc_breaker_trips c.hc_heals
  in
  Format.fprintf ppf "%-24s %9s %9s %7s %9s %6s %6s %6s %9s %7s %5s@."
    "device/mode/engine" "injected" "contained" "escaped" "fail-open" "guard"
    "halts" "warns" "rollbacks" "breaker" "heals";
  List.iter
    (fun c ->
      line c
        (Printf.sprintf "%s/%s/%s" c.hc_device
           (match c.hc_mode with C.Protection -> "prot" | C.Enhancement -> "enh")
           (match c.hc_engine with
           | C.Compiled -> "comp"
           | C.Interpreted -> "interp")))
    r.h_combos;
  line (hostile_totals r) "TOTAL";
  let t = hostile_totals r in
  Format.fprintf ppf "verdict: %s@."
    (if hostile_passed r then
       Printf.sprintf
         "PASS (%d corruptions injected, no escapes, no silent fail-opens)"
         t.hc_injected
     else "FAIL (escaped exception, silent fail-open or too few injections)")

(* Hostile fleet isolation: the same bulkhead oracle, but with the guard
   enabled on every VM and response-direction sites armed on the faulty
   subset.  [Guard_raise] cannot flow through the supervisor's arm seam
   (it has no validator handle), so the pool is the four corruption
   sites. *)
let hostile_machine_site rng =
  match Prng.int rng 4 with
  | 0 -> Plan.Resp_read_corrupt { mask = Prng.pick rng Plan.masks }
  | 1 -> Plan.Resp_dma_len { delta = Prng.pick rng Plan.resp_deltas }
  | 2 -> Plan.Resp_store_corrupt { mask = Prng.pick rng Plan.masks }
  | _ -> Plan.Resp_irq_storm { burst = Prng.pick rng Plan.bursts }

let isolation_run ~site_gen ~guard opts =
  if opts.fl_faulty < 1 || opts.fl_faulty > opts.fl_vms then
    invalid_arg "Campaign.fleet_isolation: need 1 <= faulty <= vms";
  let faulty = faulty_set ~vms:opts.fl_vms ~faulty:opts.fl_faulty in
  let sup_opts jobs =
    {
      Fleet.Supervisor.vms = opts.fl_vms;
      ticks = opts.fl_ticks;
      seed = opts.fl_seed;
      jobs;
      devices = opts.fl_devices;
      vm_opts =
        (fun device ->
          { (Fleet.Vm.default_options ~device) with Fleet.Vm.guard });
    }
  in
  let site_of = Hashtbl.create 8 in
  List.iter
    (fun vm ->
      let rng = Prng.create (Int64.add opts.fl_seed (Int64.of_int (vm + 1))) in
      Hashtbl.replace site_of vm (site_gen (Prng.split rng)))
    faulty;
  let fired = Atomic.make 0 in
  let arm ~vm machine checker =
    match Hashtbl.find_opt site_of vm with
    | None -> None
    | Some site ->
      let plan = { Plan.id = vm; site; policy = C.Fail_closed } in
      let armed = Inject.arm plan machine checker in
      Some
        (fun () ->
          Inject.disarm armed;
          ignore (Atomic.fetch_and_add fired (Inject.fired armed) : int))
  in
  let baseline = Fleet.Supervisor.run (sup_opts opts.fl_jobs) in
  let faulted = Fleet.Supervisor.run ~arm (sup_opts opts.fl_jobs) in
  let jobs_divergence =
    if opts.fl_jobs = 1 then false
    else
      let serial = Fleet.Supervisor.run ~arm (sup_opts 1) in
      Fleet.Supervisor.report_to_json serial
      <> Fleet.Supervisor.report_to_json faulted
  in
  let base_vms = Array.of_list baseline.Fleet.Supervisor.f_vms
  and fault_vms = Array.of_list faulted.Fleet.Supervisor.f_vms in
  let strip (r : Fleet.Vm.report) = { r with Fleet.Vm.r_arena = None } in
  let clean_divergent =
    List.filter
      (fun i ->
        (not (List.mem i faulty)) && strip base_vms.(i) <> strip fault_vms.(i))
      (List.init opts.fl_vms Fun.id)
  in
  {
    fl_options = opts;
    fl_faulty_set = faulty;
    fl_sites =
      List.map
        (fun vm -> (vm, Plan.site_to_string (Hashtbl.find site_of vm)))
        faulty;
    fl_fired = Atomic.get fired;
    fl_clean_divergent = clean_divergent;
    fl_jobs_divergence = jobs_divergence;
    fl_baseline = baseline;
    fl_faulted = faulted;
  }

let hostile_isolation opts =
  isolation_run ~site_gen:hostile_machine_site ~guard:true opts
