(** The fault-injection campaign: every requested device × both working
    modes × both walk engines, [plans_per_combo] seeded plans each,
    driven by short benign soaks under a remedy supervisor with the
    circuit breaker armed.

    Determinism contract (same as the experiment suite): per-combo seeds
    come from [Runner.map_seeded], so the report — including the JSON
    rendering — is bit-identical for any [jobs] value. *)

type options = {
  devices : string list;  (** Device names ([Workload.Samples.find]). *)
  plans_per_combo : int;
  cases_per_plan : int;  (** Soak cases run while a plan is armed. *)
  ops_per_case : int;
  seed : int64;
  jobs : int;
}

val default_options : options
(** All five devices, 12 plans/combo, 3 cases/plan, 6 ops/case, seed 1,
    jobs 1. *)

type combo_report = {
  device : string;
  mode : Sedspec.Checker.mode;
  engine : Sedspec.Checker.engine;
  injected : int;  (** Fault firings (corrupted reads, walk hooks, spec plans). *)
  contained : int;  (** Exceptions converted to [Internal_error] anomalies. *)
  escaped : int;  (** Exceptions that crossed the interposer — must be 0. *)
  fail_open : int;
      (** Fail-closed walk-raise plans whose fault fired yet produced
          neither a contained anomaly nor an escape — must be 0. *)
  halts : int;  (** Ticks that found the machine halted (degraded, closed). *)
  warns : int;  (** Warnings recorded (degraded, open). *)
  rollbacks : int;
  breaker_trips : int;
  heals : int;  (** Shadow resyncs performed by [Checker.heal]. *)
  spec_detected : int;  (** Corrupted spec loads rejected with [Error]. *)
  spec_benign : int;  (** Corruption beyond the covered bytes: identical spec. *)
  spec_silent : int;  (** Loads that returned a different spec — must be 0. *)
}

type report = { options : options; combos : combo_report list }

val run : options -> report

val passed : report -> bool
(** No escaped exception, no silent fail-open, no silently corrupted
    spec load, anywhere. *)

val totals : report -> combo_report
(** Column sums (the [device]/[mode]/[engine] fields are meaningless). *)

val report_to_json : report -> Sedspec_util.Json.t
(** Deterministic rendering: no timestamps, no wall-clock, field order
    fixed — byte-identical across runs and [jobs] values. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Fleet bulkhead isolation}

    Inject machine-site faults (guest-memory corruption/short reads,
    synthetic walk exceptions and latency spikes) into a deterministic
    subset of a {!Fleet.Supervisor} fleet and prove the bulkheads hold:
    every {e clean} VM's report — verdict stream, anomaly counts,
    coverage — must be byte-identical to a fault-free baseline run, and
    the faulted run itself must be bit-identical across [jobs]. *)

type fleet_options = {
  fl_vms : int;
  fl_faulty : int;  (** Faulty members, spread evenly over the fleet. *)
  fl_ticks : int;
  fl_seed : int64;
  fl_jobs : int;
  fl_devices : string list;
}

val default_fleet_options : fleet_options
(** 8 VMs, 3 faulty, 24 ticks, seed 1, jobs 1, all five devices. *)

type fleet_report = {
  fl_options : fleet_options;
  fl_faulty_set : int list;  (** VM indices that carried a fault. *)
  fl_sites : (int * string) list;  (** (vm, armed fault site). *)
  fl_fired : int;  (** Total fault firings — must be > 0. *)
  fl_clean_divergent : int list;
      (** Clean VMs whose full report differs from the baseline run —
          must be empty (zero cross-bulkhead interference). *)
  fl_jobs_divergence : bool;
      (** Faulted run at [jobs] vs [jobs = 1] produced different JSON —
          must be [false]. *)
  fl_baseline : Fleet.Supervisor.report;
  fl_faulted : Fleet.Supervisor.report;
}

val fleet_isolation : fleet_options -> fleet_report
(** Three fleet runs (clean baseline, faulted, faulted serial when
    [fl_jobs <> 1]) under identical options and seed; faults are armed
    through {!Fleet.Supervisor.run}'s [arm] seam on the faulty subset
    only, with sites drawn from a stream keyed by (seed, vm). *)

val fleet_passed : fleet_report -> bool
(** Faults fired, no clean-VM divergence, no jobs divergence. *)

val fleet_report_to_json : fleet_report -> Sedspec_util.Json.t
val pp_fleet_report : Format.formatter -> fleet_report -> unit

(** {1 Hostile-device campaign}

    The mirror of the substrate campaign for the {e host->guest}
    direction: seeded, replayable corruptions of device responses —
    register read-returns, outbound DMA lengths, completion stores, IRQ
    storms — plus synthetic faults inside the guest-side validator
    itself.  Every combo runs a protected machine with the
    {!Guard.Validator} chained in front of the ES-Checker and a remedy
    supervisor consuming the validator's anomalies, so a hostile device
    trips the same rollback/breaker machinery as a guest-side exploit.

    Same determinism contract as {!run}: per-combo seeds come from
    [Runner.map_seeded], so the report and its JSON are byte-identical
    for any [h_jobs]. *)

type hostile_options = {
  h_devices : string list;
  h_plans_per_combo : int;
  h_cases_per_plan : int;
  h_ops_per_case : int;
  h_min_injected : int;
      (** Floor on total corruption firings for the run to pass. *)
  h_seed : int64;
  h_jobs : int;
}

val default_hostile_options : hostile_options
(** sdhci + the virtio ring, 36 plans/combo, 6 cases/plan, 10 ops/case,
    >= 5000 injections required, seed 1, jobs 1. *)

type hostile_combo_report = {
  hc_device : string;
  hc_mode : Sedspec.Checker.mode;
  hc_engine : Sedspec.Checker.engine;
  hc_injected : int;  (** Response corruptions the guest actually saw. *)
  hc_contained : int;  (** Checker + validator internal containments. *)
  hc_escaped : int;  (** Exceptions that crossed a bulkhead — must be 0. *)
  hc_fail_open : int;
      (** Fail-closed [Guard_raise] plans whose fault fired yet produced
          neither a contained anomaly nor an escape — must be 0. *)
  hc_guard_anoms : int;  (** Validator anomalies fed to the remedy. *)
  hc_halts : int;
  hc_warns : int;
  hc_rollbacks : int;
  hc_breaker_trips : int;
  hc_heals : int;
}

type hostile_report = {
  h_options : hostile_options;
  h_combos : hostile_combo_report list;
}

val run_hostile : hostile_options -> hostile_report

val hostile_passed : hostile_report -> bool
(** No escape, no silent fail-open, and at least [h_min_injected]
    corruption firings. *)

val hostile_totals : hostile_report -> hostile_combo_report
val hostile_report_to_json : hostile_report -> Sedspec_util.Json.t
val pp_hostile_report : Format.formatter -> hostile_report -> unit

val hostile_isolation : fleet_options -> fleet_report
(** {!fleet_isolation} with the guard enabled on every VM and
    response-direction corruption sites armed on the faulty subset: a
    hostile device model must trip its own bulkhead without perturbing
    one byte of any clean neighbour's report. *)
