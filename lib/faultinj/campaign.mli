(** The fault-injection campaign: every requested device × both working
    modes × both walk engines, [plans_per_combo] seeded plans each,
    driven by short benign soaks under a remedy supervisor with the
    circuit breaker armed.

    Determinism contract (same as the experiment suite): per-combo seeds
    come from [Runner.map_seeded], so the report — including the JSON
    rendering — is bit-identical for any [jobs] value. *)

type options = {
  devices : string list;  (** Device names ([Workload.Samples.find]). *)
  plans_per_combo : int;
  cases_per_plan : int;  (** Soak cases run while a plan is armed. *)
  ops_per_case : int;
  seed : int64;
  jobs : int;
}

val default_options : options
(** All five devices, 12 plans/combo, 3 cases/plan, 6 ops/case, seed 1,
    jobs 1. *)

type combo_report = {
  device : string;
  mode : Sedspec.Checker.mode;
  engine : Sedspec.Checker.engine;
  injected : int;  (** Fault firings (corrupted reads, walk hooks, spec plans). *)
  contained : int;  (** Exceptions converted to [Internal_error] anomalies. *)
  escaped : int;  (** Exceptions that crossed the interposer — must be 0. *)
  fail_open : int;
      (** Fail-closed walk-raise plans whose fault fired yet produced
          neither a contained anomaly nor an escape — must be 0. *)
  halts : int;  (** Ticks that found the machine halted (degraded, closed). *)
  warns : int;  (** Warnings recorded (degraded, open). *)
  rollbacks : int;
  breaker_trips : int;
  heals : int;  (** Shadow resyncs performed by [Checker.heal]. *)
  spec_detected : int;  (** Corrupted spec loads rejected with [Error]. *)
  spec_benign : int;  (** Corruption beyond the covered bytes: identical spec. *)
  spec_silent : int;  (** Loads that returned a different spec — must be 0. *)
}

type report = { options : options; combos : combo_report list }

val run : options -> report

val passed : report -> bool
(** No escaped exception, no silent fail-open, no silently corrupted
    spec load, anywhere. *)

val totals : report -> combo_report
(** Column sums (the [device]/[mode]/[engine] fields are meaningless). *)

val report_to_json : report -> Sedspec_util.Json.t
(** Deterministic rendering: no timestamps, no wall-clock, field order
    fixed — byte-identical across runs and [jobs] values. *)

val pp_report : Format.formatter -> report -> unit
