module Prng = Sedspec_util.Prng

(* splitmix64's finaliser: a stateless 64-bit mix, so the corruption
   pattern is a pure function of (address, mask). *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L
  in
  Int64.logxor z (Int64.shift_right_logical z 33)

let corrupt_byte ~mask addr b =
  let h = mix64 (Int64.logxor addr mask) in
  if Int64.logand h 0x7L = 0L then
    b lxor (Int64.to_int (Int64.logand (Int64.shift_right_logical h 8) 0xFFL) lor 1)
  else b

(* Response-value corruption: a pure function of (value, mask), firing on
   a deterministic ~1/4 of values with a nonzero derived XOR — replayable
   and identical wherever the same value flows. *)
let corrupt_value ~mask v =
  let h = mix64 (Int64.logxor v mask) in
  if Int64.logand h 0x3L = 0L then
    Int64.logxor v
      (Int64.logor (Int64.logand (Int64.shift_right_logical h 8) 0xFFFFL) 1L)
  else v

let dma_len_delta ~delta len = max 0 (len + delta)

let unsigned_ge a b = Int64.unsigned_compare a b >= 0

let short_byte ~limit addr b = if unsigned_ge addr limit then 0 else b

let burn n =
  let x = ref 0 in
  for i = 1 to n do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x)

type armed = {
  machine : Vmm.Machine.t;
  checker : Sedspec.Checker.t;
  guard : Guard.Validator.t option;
  mutable fired : int;
  mutable undo : (unit -> unit) list;
}

let fired a = a.fired

(* Arm a response-fault record on every device interp of the machine
   (corruptions of the host->guest channel are a property of the device
   model, not of one checker). *)
let arm_response a rf =
  List.iter
    (fun name ->
      let it = Vmm.Machine.interp_of a.machine name in
      Interp.set_response_fault it (Some rf);
      a.undo <- (fun () -> Interp.set_response_fault it None) :: a.undo)
    (Vmm.Machine.device_names a.machine)

let arm ?guard (plan : Plan.t) machine checker =
  let a = { machine; checker; guard; fired = 0; undo = [] } in
  (match plan.site with
  | Plan.Guest_corrupt { mask } ->
    Vmm.Guest_mem.set_read_fault (Vmm.Machine.ram machine)
      (Some
         (fun addr b ->
           let b' = corrupt_byte ~mask addr b in
           if b' <> b then a.fired <- a.fired + 1;
           b'))
  | Plan.Guest_short { limit } ->
    Vmm.Guest_mem.set_read_fault (Vmm.Machine.ram machine)
      (Some
         (fun addr b ->
           let b' = short_byte ~limit addr b in
           if b' <> b then a.fired <- a.fired + 1;
           b'))
  | Plan.Spec_bit_flip _ | Plan.Spec_truncate -> ()
  | Plan.Walk_raise { at_walk } ->
    let n = ref 0 in
    Sedspec.Checker.set_fault_hook checker
      (Some
         (fun () ->
           let k = !n in
           incr n;
           if k = at_walk then begin
             a.fired <- a.fired + 1;
             raise (Plan.Injected "synthetic checker fault")
           end))
  | Plan.Walk_delay { at_walk; spin } ->
    let n = ref 0 in
    Sedspec.Checker.set_fault_hook checker
      (Some
         (fun () ->
           let k = !n in
           incr n;
           if k = at_walk then begin
             a.fired <- a.fired + 1;
             burn spin
           end))
  | Plan.Resp_read_corrupt { mask } ->
    arm_response a
      {
        Interp.no_response_fault with
        Interp.rf_read =
          Some
            (fun v ->
              let v' = corrupt_value ~mask v in
              if v' <> v then a.fired <- a.fired + 1;
              v');
      }
  | Plan.Resp_dma_len { delta } ->
    arm_response a
      {
        Interp.no_response_fault with
        Interp.rf_dma_len =
          Some
            (fun len ->
              let len' = dma_len_delta ~delta len in
              if len' <> len then a.fired <- a.fired + 1;
              len');
      }
  | Plan.Resp_store_corrupt { mask } ->
    arm_response a
      {
        Interp.no_response_fault with
        Interp.rf_store =
          Some
            (fun v ->
              let v' = corrupt_value ~mask v in
              if v' <> v then a.fired <- a.fired + 1;
              v');
      }
  | Plan.Resp_irq_storm { burst } ->
    (* The burst is applied inside the interp; count the raise edges the
       guest actually sees while the storm is armed (each legitimate
       raise is amplified by [burst] injected edges). *)
    List.iter
      (fun name ->
        let it = Vmm.Machine.interp_of machine name in
        Interp.set_response_fault it
          (Some { Interp.no_response_fault with Interp.rf_irq_burst = burst });
        let h = Interp.hooks it in
        Interp.set_hooks it
          {
            h with
            Interp.on_irq =
              (fun up ->
                if up then a.fired <- a.fired + 1;
                h.Interp.on_irq up);
          };
        a.undo <-
          (fun () ->
            Interp.set_response_fault it None;
            Interp.set_hooks it h)
          :: a.undo)
      (Vmm.Machine.device_names machine)
  | Plan.Guard_raise { at_check } -> (
    match guard with
    | None -> ()
    | Some g ->
      let n = ref 0 in
      Guard.Validator.set_fault_hook g
        (Some
           (fun () ->
             let k = !n in
             incr n;
             if k = at_check then begin
               a.fired <- a.fired + 1;
               raise (Plan.Injected "synthetic guard fault")
             end));
      a.undo <- (fun () -> Guard.Validator.set_fault_hook g None) :: a.undo));
  a

let disarm a =
  Vmm.Guest_mem.set_read_fault (Vmm.Machine.ram a.machine) None;
  Sedspec.Checker.set_fault_hook a.checker None;
  List.iter (fun f -> f ()) a.undo;
  a.undo <- []

let corrupt_spec rng (site : Plan.site) text =
  match site with
  | Plan.Spec_bit_flip { flips } ->
    let b = Bytes.of_string text in
    for _ = 1 to flips do
      let i = Prng.int rng (Bytes.length b) in
      let bit = 1 lsl Prng.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit land 0xFF))
    done;
    Bytes.to_string b
  | Plan.Spec_truncate -> String.sub text 0 (Prng.int rng (String.length text))
  | _ -> invalid_arg "Inject.corrupt_spec: not a spec-site plan"
