module Prng = Sedspec_util.Prng

(* splitmix64's finaliser: a stateless 64-bit mix, so the corruption
   pattern is a pure function of (address, mask). *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L
  in
  Int64.logxor z (Int64.shift_right_logical z 33)

let corrupt_byte ~mask addr b =
  let h = mix64 (Int64.logxor addr mask) in
  if Int64.logand h 0x7L = 0L then
    b lxor (Int64.to_int (Int64.logand (Int64.shift_right_logical h 8) 0xFFL) lor 1)
  else b

let unsigned_ge a b = Int64.unsigned_compare a b >= 0

let short_byte ~limit addr b = if unsigned_ge addr limit then 0 else b

let burn n =
  let x = ref 0 in
  for i = 1 to n do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x)

type armed = {
  machine : Vmm.Machine.t;
  checker : Sedspec.Checker.t;
  mutable fired : int;
}

let fired a = a.fired

let arm (plan : Plan.t) machine checker =
  let a = { machine; checker; fired = 0 } in
  (match plan.site with
  | Plan.Guest_corrupt { mask } ->
    Vmm.Guest_mem.set_read_fault (Vmm.Machine.ram machine)
      (Some
         (fun addr b ->
           let b' = corrupt_byte ~mask addr b in
           if b' <> b then a.fired <- a.fired + 1;
           b'))
  | Plan.Guest_short { limit } ->
    Vmm.Guest_mem.set_read_fault (Vmm.Machine.ram machine)
      (Some
         (fun addr b ->
           let b' = short_byte ~limit addr b in
           if b' <> b then a.fired <- a.fired + 1;
           b'))
  | Plan.Spec_bit_flip _ | Plan.Spec_truncate -> ()
  | Plan.Walk_raise { at_walk } ->
    let n = ref 0 in
    Sedspec.Checker.set_fault_hook checker
      (Some
         (fun () ->
           let k = !n in
           incr n;
           if k = at_walk then begin
             a.fired <- a.fired + 1;
             raise (Plan.Injected "synthetic checker fault")
           end))
  | Plan.Walk_delay { at_walk; spin } ->
    let n = ref 0 in
    Sedspec.Checker.set_fault_hook checker
      (Some
         (fun () ->
           let k = !n in
           incr n;
           if k = at_walk then begin
             a.fired <- a.fired + 1;
             burn spin
           end)));
  a

let disarm a =
  Vmm.Guest_mem.set_read_fault (Vmm.Machine.ram a.machine) None;
  Sedspec.Checker.set_fault_hook a.checker None

let corrupt_spec rng (site : Plan.site) text =
  match site with
  | Plan.Spec_bit_flip { flips } ->
    let b = Bytes.of_string text in
    for _ = 1 to flips do
      let i = Prng.int rng (Bytes.length b) in
      let bit = 1 lsl Prng.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit land 0xFF))
    done;
    Bytes.to_string b
  | Plan.Spec_truncate -> String.sub text 0 (Prng.int rng (String.length text))
  | _ -> invalid_arg "Inject.corrupt_spec: not a spec-site plan"
