(** Arming fault plans on a live machine/checker pair.

    The guest-memory faults are pure functions of [(address, byte)] — a
    hard requirement: the device and both checker engines read the same
    addresses and must observe identical wrong values, or the
    differential oracle (and the checker's own shadow discipline) would
    report the {e injector} instead of the fault's consequences. *)

type armed
(** One armed plan; counts firings until {!disarm}. *)

val arm :
  ?guard:Guard.Validator.t -> Plan.t -> Vmm.Machine.t -> Sedspec.Checker.t ->
  armed
(** Install the plan's hooks ([Guest_mem.set_read_fault] /
    [Checker.set_fault_hook] / [Interp.set_response_fault] on every
    device interp for the response-direction sites).  Spec-site plans
    install nothing — they are exercised through {!corrupt_spec}.
    [Guard_raise] plans need [?guard] (the validator whose fault seam
    they exercise) and arm nothing without it. *)

val disarm : armed -> unit
(** Remove both hooks. *)

val fired : armed -> int
(** Fault firings so far: corrupted/shorted byte reads, or walk hook
    activations. *)

val corrupt_byte : mask:int64 -> int64 -> int -> int
(** The pure corruption function [Guest_corrupt] uses: XORs the byte at
    a deterministic ~1/8 subset of addresses keyed by [mask], identity
    elsewhere.  Exposed so the fuzzer's replays corrupt identically. *)

val short_byte : limit:int64 -> int64 -> int -> int
(** The pure short-read function: 0 at/above [limit] (unsigned). *)

val corrupt_value : mask:int64 -> int64 -> int64
(** The pure response-value corruption [Resp_read_corrupt] and
    [Resp_store_corrupt] use: XORs a nonzero derived pattern into a
    deterministic ~1/4 subset of values keyed by [mask], identity
    elsewhere.  Exposed so the fuzzer's replays corrupt identically. *)

val dma_len_delta : delta:int -> int -> int
(** The pure [Resp_dma_len] mangler: [max 0 (len + delta)]. *)

val burn : int -> unit
(** Spin for [n] iterations (the latency fault's payload); opaque to the
    optimiser. *)

val corrupt_spec : Sedspec_util.Prng.t -> Plan.site -> string -> string
(** Apply a [Spec_bit_flip]/[Spec_truncate] site to serialised spec
    bytes.  Raises [Invalid_argument] for other sites. *)
