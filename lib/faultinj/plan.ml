module Prng = Sedspec_util.Prng

type site =
  | Guest_corrupt of { mask : int64 }
  | Guest_short of { limit : int64 }
  | Spec_bit_flip of { flips : int }
  | Spec_truncate
  | Walk_raise of { at_walk : int }
  | Walk_delay of { at_walk : int; spin : int }
  | Resp_read_corrupt of { mask : int64 }
  | Resp_dma_len of { delta : int }
  | Resp_store_corrupt of { mask : int64 }
  | Resp_irq_storm of { burst : int }
  | Guard_raise of { at_check : int }

type t = { id : int; site : site; policy : Sedspec.Checker.containment }

exception Injected of string

(* Constant pools: corruption masks hitting single bits, sign bits and
   dense patterns; short-read limits at guest-physical landmarks (page,
   64K, legacy hole, megabyte marks); spin counts spanning noise to a
   visible latency spike. *)
let masks =
  [|
    0x1L;
    0x80L;
    0xFFL;
    0xDEADBEEFL;
    0xFFFFFFFFL;
    0x5555555555555555L;
    0xAAAAAAAAAAAAAAAAL;
    0x8000000000000000L;
  |]

let limits = [| 0x0L; 0x100L; 0x1000L; 0x10000L; 0xA0000L; 0x100000L |]
let spins = [| 64; 1024; 16384 |]

(* Response-direction pools: DMA-length deltas spanning truncation,
   off-by-one and page-scale inflation; IRQ-storm bursts from nuisance to
   flood. *)
let resp_deltas = [| -512; -1; 1; 64; 4096 |]
let bursts = [| 3; 8; 32 |]

let dictionary =
  Array.concat
    [
      masks;
      limits;
      Array.map Int64.of_int spins;
      Array.map Int64.of_int resp_deltas;
      Array.map Int64.of_int bursts;
    ]

let gen_site rng =
  match Prng.int rng 6 with
  | 0 -> Guest_corrupt { mask = Prng.pick rng masks }
  | 1 -> Guest_short { limit = Prng.pick rng limits }
  | 2 -> Spec_bit_flip { flips = 1 + Prng.int rng 8 }
  | 3 -> Spec_truncate
  | 4 -> Walk_raise { at_walk = Prng.int rng 24 }
  | _ -> Walk_delay { at_walk = Prng.int rng 24; spin = Prng.pick rng spins }

(* Hostile-device sites: corruptions of what the device feeds back to the
   guest, plus the validator's own fault seam. *)
let gen_hostile_site rng =
  match Prng.int rng 5 with
  | 0 -> Resp_read_corrupt { mask = Prng.pick rng masks }
  | 1 -> Resp_dma_len { delta = Prng.pick rng resp_deltas }
  | 2 -> Resp_store_corrupt { mask = Prng.pick rng masks }
  | 3 -> Resp_irq_storm { burst = Prng.pick rng bursts }
  | _ -> Guard_raise { at_check = Prng.int rng 24 }

let generate_with gen rng ~n =
  List.init n (fun id ->
      let site = gen rng in
      let policy : Sedspec.Checker.containment =
        if Prng.chance rng 0.25 then Sedspec.Checker.Fail_open_warn
        else Sedspec.Checker.Fail_closed
      in
      { id; site; policy })

let generate rng ~n = generate_with gen_site rng ~n
let generate_hostile rng ~n = generate_with gen_hostile_site rng ~n

let site_to_string = function
  | Guest_corrupt { mask } -> Printf.sprintf "guest-corrupt mask=0x%Lx" mask
  | Guest_short { limit } -> Printf.sprintf "guest-short limit=0x%Lx" limit
  | Spec_bit_flip { flips } -> Printf.sprintf "spec-bit-flip flips=%d" flips
  | Spec_truncate -> "spec-truncate"
  | Walk_raise { at_walk } -> Printf.sprintf "walk-raise at=%d" at_walk
  | Walk_delay { at_walk; spin } ->
    Printf.sprintf "walk-delay at=%d spin=%d" at_walk spin
  | Resp_read_corrupt { mask } -> Printf.sprintf "resp-read-corrupt mask=0x%Lx" mask
  | Resp_dma_len { delta } -> Printf.sprintf "resp-dma-len delta=%d" delta
  | Resp_store_corrupt { mask } ->
    Printf.sprintf "resp-store-corrupt mask=0x%Lx" mask
  | Resp_irq_storm { burst } -> Printf.sprintf "resp-irq-storm burst=%d" burst
  | Guard_raise { at_check } -> Printf.sprintf "guard-raise at=%d" at_check

let to_string p =
  Printf.sprintf "#%d %s policy=%s" p.id (site_to_string p.site)
    (match p.policy with
    | Sedspec.Checker.Fail_closed -> "fail-closed"
    | Sedspec.Checker.Fail_open_warn -> "fail-open-warn")
