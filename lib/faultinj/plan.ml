module Prng = Sedspec_util.Prng

type site =
  | Guest_corrupt of { mask : int64 }
  | Guest_short of { limit : int64 }
  | Spec_bit_flip of { flips : int }
  | Spec_truncate
  | Walk_raise of { at_walk : int }
  | Walk_delay of { at_walk : int; spin : int }

type t = { id : int; site : site; policy : Sedspec.Checker.containment }

exception Injected of string

(* Constant pools: corruption masks hitting single bits, sign bits and
   dense patterns; short-read limits at guest-physical landmarks (page,
   64K, legacy hole, megabyte marks); spin counts spanning noise to a
   visible latency spike. *)
let masks =
  [|
    0x1L;
    0x80L;
    0xFFL;
    0xDEADBEEFL;
    0xFFFFFFFFL;
    0x5555555555555555L;
    0xAAAAAAAAAAAAAAAAL;
    0x8000000000000000L;
  |]

let limits = [| 0x0L; 0x100L; 0x1000L; 0x10000L; 0xA0000L; 0x100000L |]
let spins = [| 64; 1024; 16384 |]

let dictionary =
  Array.concat [ masks; limits; Array.map Int64.of_int spins ]

let gen_site rng =
  match Prng.int rng 6 with
  | 0 -> Guest_corrupt { mask = Prng.pick rng masks }
  | 1 -> Guest_short { limit = Prng.pick rng limits }
  | 2 -> Spec_bit_flip { flips = 1 + Prng.int rng 8 }
  | 3 -> Spec_truncate
  | 4 -> Walk_raise { at_walk = Prng.int rng 24 }
  | _ -> Walk_delay { at_walk = Prng.int rng 24; spin = Prng.pick rng spins }

let generate rng ~n =
  List.init n (fun id ->
      let site = gen_site rng in
      let policy : Sedspec.Checker.containment =
        if Prng.chance rng 0.25 then Sedspec.Checker.Fail_open_warn
        else Sedspec.Checker.Fail_closed
      in
      { id; site; policy })

let site_to_string = function
  | Guest_corrupt { mask } -> Printf.sprintf "guest-corrupt mask=0x%Lx" mask
  | Guest_short { limit } -> Printf.sprintf "guest-short limit=0x%Lx" limit
  | Spec_bit_flip { flips } -> Printf.sprintf "spec-bit-flip flips=%d" flips
  | Spec_truncate -> "spec-truncate"
  | Walk_raise { at_walk } -> Printf.sprintf "walk-raise at=%d" at_walk
  | Walk_delay { at_walk; spin } ->
    Printf.sprintf "walk-delay at=%d spin=%d" at_walk spin

let to_string p =
  Printf.sprintf "#%d %s policy=%s" p.id (site_to_string p.site)
    (match p.policy with
    | Sedspec.Checker.Fail_closed -> "fail-closed"
    | Sedspec.Checker.Fail_open_warn -> "fail-open-warn")
