(** Deterministic fault plans.

    A plan is one seeded, replayable fault at one of the three substrate
    seams the checker depends on but does not control:

    - {b guest memory}: byte reads return corrupted data
      ([Guest_corrupt], a pure address-keyed XOR so the device and both
      walk engines observe the same wrong value) or short data
      ([Guest_short], reads at or above a limit return 0 — a missing
      page);
    - {b persisted spec}: the serialised bytes are bit-flipped or
      truncated before [Persist.of_string];
    - {b the walk itself}: a synthetic exception or latency spike fires
      at the top of the k-th walk, under either engine
      ([Checker.set_fault_hook]).

    Plans carry the containment policy the checker runs under, so a
    fixed seed replays the exact campaign. *)

type site =
  | Guest_corrupt of { mask : int64 }
      (** XOR-corrupt a deterministic ~1/8 subset of guest byte reads;
          [mask] keys which addresses and with what value. *)
  | Guest_short of { limit : int64 }
      (** Byte reads at addresses >= [limit] (unsigned) return 0. *)
  | Spec_bit_flip of { flips : int }  (** Flip [flips] random bits. *)
  | Spec_truncate  (** Cut the serialised spec at a random offset. *)
  | Walk_raise of { at_walk : int }
      (** Raise {!Injected} at the top of walk number [at_walk]
          (0-based). *)
  | Walk_delay of { at_walk : int; spin : int }
      (** Burn [spin] iterations at the top of walk number [at_walk]. *)
  | Resp_read_corrupt of { mask : int64 }
      (** XOR-corrupt a deterministic ~1/4 subset of register read-return
          values at the host->guest seam; [mask] keys which values. *)
  | Resp_dma_len of { delta : int }
      (** Add [delta] to every outbound (device->guest) DMA length —
          malformed completions, truncated or inflated. *)
  | Resp_store_corrupt of { mask : int64 }
      (** XOR-corrupt a deterministic ~1/4 subset of completion-store
          values written into guest memory. *)
  | Resp_irq_storm of { burst : int }
      (** Inject [burst] extra raise/lower edges per IRQ raise. *)
  | Guard_raise of { at_check : int }
      (** Raise {!Injected} inside the guest-side validator's boundary
          adjudication number [at_check] (0-based) — exercises the
          validator's own containment, as [Walk_raise] does the
          checker's. *)

type t = { id : int; site : site; policy : Sedspec.Checker.containment }

exception Injected of string
(** The synthetic fault [Walk_raise] throws from inside the checker. *)

val generate : Sedspec_util.Prng.t -> n:int -> t list
(** [n] plans drawn from the generator: site uniform over the six
    substrate kinds, parameters from {!dictionary}-style constants,
    policy fail-closed 3/4 of the time.  Pure function of the PRNG
    state. *)

val generate_hostile : Sedspec_util.Prng.t -> n:int -> t list
(** Like {!generate} but over the five hostile-device sites
    ([Resp_read_corrupt], [Resp_dma_len], [Resp_store_corrupt],
    [Resp_irq_storm], [Guard_raise]) — the host->guest direction. *)

val site_to_string : site -> string
val to_string : t -> string

val dictionary : int64 array
(** The plan constants (XOR masks, short-read limits, delay spins) as a
    mutation dictionary, so the fuzzer schedules the same fault shapes
    the campaign replays. *)

val masks : int64 array
val limits : int64 array
val spins : int array
val resp_deltas : int array
val bursts : int array
(** The individual constant pools {!generate}/{!generate_hostile} draw
    from. *)
