module Checker = Sedspec.Checker

(* The sliding-window accumulator the governor rides on, split out so
   other ladders (the rollout's agreement budget) reuse the exact same
   window semantics instead of reimplementing them. *)
module Budget = struct
  type t = {
    ring : int array;
    mutable pos : int;
    mutable sum : int;
  }

  let create ~window =
    if window < 1 then invalid_arg "Governor.Budget: window must be >= 1";
    { ring = Array.make window 0; pos = 0; sum = 0 }

  let window t = Array.length t.ring

  let observe t burn =
    if burn < 0 then invalid_arg "Governor.Budget.observe: burn must be >= 0";
    t.sum <- t.sum - t.ring.(t.pos) + burn;
    t.ring.(t.pos) <- burn;
    t.pos <- (t.pos + 1) mod Array.length t.ring

  let sum t = t.sum

  let clear t =
    Array.fill t.ring 0 (Array.length t.ring) 0;
    t.pos <- 0;
    t.sum <- 0
end

type state = Protection | Enhancement | Fail_open

type config = {
  window : int;
  degrade_burn : int;
  restore_burn : int;
  restore_clean : int;
}

let default_config =
  { window = 8; degrade_burn = 6; restore_burn = 2; restore_clean = 4 }

type transition =
  | Steady
  | Degraded of state * state
  | Restored of state * state

type t = {
  cfg : config;
  budget : Budget.t;  (** Last [window] burns; zero-filled at creation. *)
  mutable state : state;
  mutable clean : int;  (** Current restore-eligible streak. *)
  mutable degrades : int;
  mutable restores : int;
}

let create ?(config = default_config) () =
  if config.window < 1 then invalid_arg "Governor: window must be >= 1";
  if config.degrade_burn < 1 then invalid_arg "Governor: degrade_burn must be >= 1";
  if config.restore_burn < 0 || config.restore_burn >= config.degrade_burn then
    invalid_arg "Governor: need 0 <= restore_burn < degrade_burn";
  if config.restore_clean < 1 then
    invalid_arg "Governor: restore_clean must be >= 1";
  {
    cfg = config;
    budget = Budget.create ~window:config.window;
    state = Protection;
    clean = 0;
    degrades = 0;
    restores = 0;
  }

let state t = t.state
let burn_in_window t = Budget.sum t.budget
let degrades t = t.degrades
let restores t = t.restores

let down = function
  | Protection -> Some Enhancement
  | Enhancement -> Some Fail_open
  | Fail_open -> None

let up = function
  | Fail_open -> Some Enhancement
  | Enhancement -> Some Protection
  | Protection -> None

(* A transition charges the incident once: the window and the streak
   restart, so the same burn cannot immediately drive a second rung. *)
let clear_window t =
  Budget.clear t.budget;
  t.clean <- 0

let observe t ~burn =
  if burn < 0 then invalid_arg "Governor.observe: burn must be >= 0";
  Budget.observe t.budget burn;
  if Budget.sum t.budget > t.cfg.degrade_burn then begin
    t.clean <- 0;
    match down t.state with
    | None -> Steady (* already at the bottom rung *)
    | Some s ->
      let from = t.state in
      t.state <- s;
      t.degrades <- t.degrades + 1;
      clear_window t;
      Degraded (from, s)
  end
  else if Budget.sum t.budget <= t.cfg.restore_burn then begin
    t.clean <- t.clean + 1;
    if t.clean >= t.cfg.restore_clean then
      match up t.state with
      | None ->
        t.clean <- 0;
        Steady
      | Some s ->
        let from = t.state in
        t.state <- s;
        t.restores <- t.restores + 1;
        clear_window t;
        Restored (from, s)
    else Steady
  end
  else begin
    (* Between the thresholds: the hysteresis band.  Hold the rung and
       break the streak — neither boundary value can flap the state. *)
    t.clean <- 0;
    Steady
  end

let checker_config state ~base =
  let strategies =
    if List.mem Checker.Parameter_check base.Checker.strategies then
      base.Checker.strategies
    else Checker.Parameter_check :: base.Checker.strategies
  in
  match state with
  | Protection ->
    {
      base with
      Checker.strategies;
      mode = Checker.Protection;
      on_internal_error = Checker.Fail_closed;
    }
  | Enhancement ->
    {
      base with
      Checker.strategies;
      mode = Checker.Enhancement;
      on_internal_error = Checker.Fail_closed;
    }
  | Fail_open ->
    {
      base with
      Checker.strategies;
      mode = Checker.Enhancement;
      on_internal_error = Checker.Fail_open_warn;
    }

let state_to_string = function
  | Protection -> "protection"
  | Enhancement -> "enhancement"
  | Fail_open -> "fail-open"
