(** Error-budget governor: the paper's two working modes (§VII) as a
    degradation ladder.

    Each protected VM carries a sliding-window budget over checker
    trouble — non-parameter anomalies (the false-positive-prone
    conditional/indirect strategies), contained internal errors
    (including deadline-watchdog overruns) and bulkhead-caught workload
    crashes.  Burning through the budget degrades the checker one rung,
    trading detection breadth for availability; a sustained clean window
    restores one rung:

    {v Protection  ->  Enhancement  ->  Fail_open v}

    - [Protection]: the paper's protection mode, fail-closed containment;
    - [Enhancement]: the paper's enhancement mode (only parameter-check
      anomalies halt, the rest warn), fail-closed containment;
    - [Fail_open]: enhancement mode with fail-open-warn containment —
      internal checker errors no longer block the interaction.

    {b Hard invariant}: no rung ever admits a parameter-check anomaly.
    Every configuration {!checker_config} produces keeps
    [Parameter_check] among the enabled strategies and a working mode
    that halts on it (the paper's enhancement mode still blocks those);
    degradation only ever relaxes the warn-only strategies and the
    internal-error policy.

    {b Hysteresis}: degradation requires the window burn to {e exceed}
    [degrade_burn]; restoration requires it to stay {e at or below}
    [restore_burn] (strictly less than [degrade_burn]) for
    [restore_clean] consecutive observations.  A burn rate sitting
    exactly on either boundary therefore holds the current rung — the
    ladder cannot oscillate on a boundary burn rate.  Every transition
    clears the window and the clean streak, so a single incident is
    charged once. *)

(** The governor's sliding-window accumulator, exposed so other ladders
    (the rollout's agreement budget) share the exact same window
    semantics: a fixed-size ring of per-observation burns whose running
    sum is the windowed total. *)
module Budget : sig
  type t

  val create : window:int -> t
  (** Zero-filled ring of [window] (>= 1) observations; raises
      [Invalid_argument] otherwise. *)

  val observe : t -> int -> unit
  (** Push one observation (>= 0), evicting the oldest. *)

  val sum : t -> int
  (** Total burn across the current window. *)

  val window : t -> int
  val clear : t -> unit
end

type state = Protection | Enhancement | Fail_open

type config = {
  window : int;  (** Sliding-window length in observations (>= 1). *)
  degrade_burn : int;  (** Degrade when window burn exceeds this (>= 1). *)
  restore_burn : int;
      (** Restore-eligible while window burn <= this; must be
          [< degrade_burn]. *)
  restore_clean : int;
      (** Consecutive eligible observations before one restore (>= 1). *)
}

val default_config : config
(** [{ window = 8; degrade_burn = 6; restore_burn = 2; restore_clean = 4 }]. *)

type transition =
  | Steady
  | Degraded of state * state  (** (from, to) — one rung down. *)
  | Restored of state * state  (** (from, to) — one rung up. *)

type t

val create : ?config:config -> unit -> t
(** Fresh governor at [Protection] with an empty window.  Raises
    [Invalid_argument] on a config violating the bounds above. *)

val observe : t -> burn:int -> transition
(** Record one observation period's burn (>= 0) and apply the ladder
    rules.  At most one transition per observation. *)

val state : t -> state
val burn_in_window : t -> int

val degrades : t -> int
(** Total rungs descended so far. *)

val restores : t -> int
(** Total rungs re-ascended so far. *)

val checker_config :
  state -> base:Sedspec.Checker.config -> Sedspec.Checker.config
(** The checker configuration enforcing a rung, preserving [base]'s
    engine, walk limit and heal budget.  Always includes
    [Parameter_check] in the strategies (adding it if [base] dropped it)
    and always maps to a mode that halts parameter-check anomalies — the
    hard invariant above. *)

val state_to_string : state -> string
