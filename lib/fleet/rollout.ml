(* The spec-evolution rollout ladder: Shadow -> Canary -> Promoted, with
   automatic demotion, rollback to the pinned base revision and a latch
   (like the Remedy circuit breaker) on any safety miss.

   Every rung is gated twice:

   - the {e catalogue gate}: the candidate, rebuilt at each catalogued
     CVE's vulnerable version, must detect the attack in both walk
     engines and both working modes (and block it in protection mode) —
     a candidate that unlearned an exploit signature never climbs;
   - the {e agreement gate}: shadow/canary fleets score the candidate's
     verdicts against the enforced spec; a looser verdict burns the
     agreement budget (a {!Governor.Budget} window), and candidate
     failures or halts on benign traffic demote immediately. *)

module Json = Sedspec_util.Json
module Runner = Sedspec_util.Runner

type recipe = {
  rc_name : string;
  rc_build : Devices.Qemu_version.t -> Sedspec.Pipeline.built;
}

let retrained (module W : Workload.Samples.DEVICE_WORKLOAD) ~cases =
  {
    rc_name = Printf.sprintf "retrained:%d" cases;
    rc_build =
      (fun version -> Metrics.Spec_cache.built_retrained (module W) version ~cases);
  }

let minimized (module W : Workload.Samples.DEVICE_WORKLOAD) =
  {
    rc_name = "minimized";
    rc_build = (fun version -> Metrics.Spec_cache.built_minimized (module W) version);
  }

type rung = Shadow | Canary | Promoted | Rolled_back

let rung_to_string = function
  | Shadow -> "shadow"
  | Canary -> "canary"
  | Promoted -> "promoted"
  | Rolled_back -> "rolled-back"

type config = {
  device : string;
  vms : int;
  canary_vms : int;
  shadow_vms : int;
  shadow_ticks : int;
  canary_ticks : int;
  seed : int64;
  jobs : int;
  agree_min : float;  (** Minimum agreement ratio per fleet phase. *)
  looser_budget : int;  (** Max looser verdicts in any budget window. *)
  budget_window : int;  (** {!Governor.Budget} window, in ticks. *)
  vm_opts : Vm.options;
}

let default_config ~device =
  {
    device;
    vms = 4;
    canary_vms = 1;
    shadow_vms = 1;
    shadow_ticks = 12;
    canary_ticks = 8;
    seed = 1L;
    jobs = 1;
    agree_min = 0.98;
    looser_budget = 0;
    budget_window = 8;
    vm_opts = Vm.default_options ~device;
  }

let validate cfg =
  if cfg.vms < 1 then invalid_arg "Rollout: vms must be >= 1";
  if cfg.canary_vms < 1 || cfg.canary_vms > cfg.vms then
    invalid_arg "Rollout: need 1 <= canary_vms <= vms";
  if cfg.shadow_vms < 1 || cfg.shadow_vms > cfg.vms then
    invalid_arg "Rollout: need 1 <= shadow_vms <= vms";
  if cfg.shadow_ticks < 1 || cfg.canary_ticks < 1 then
    invalid_arg "Rollout: ticks must be >= 1";
  if cfg.agree_min < 0.0 || cfg.agree_min > 1.0 then
    invalid_arg "Rollout: agree_min must be in [0, 1]";
  if cfg.looser_budget < 0 then
    invalid_arg "Rollout: looser_budget must be >= 0";
  if cfg.budget_window < 1 then
    invalid_arg "Rollout: budget_window must be >= 1";
  if Workload.Samples.find_opt cfg.device = None then
    invalid_arg (Printf.sprintf "Rollout: unknown device %s" cfg.device)

(* --- Catalogue gate --------------------------------------------------- *)

type gate_check = {
  g_cve : string;
  g_engine : string;
  g_mode : string;
  g_detected : bool;
  g_blocked : bool;
  g_pass : bool;
}

let run_stream m (attack : Attacks.Attack.t) =
  try attack.Attacks.Attack.run m with Exit -> ()

(* Replay one catalogued CVE with the candidate enforced: detectable
   attacks must raise anomalies in both modes and also halt the machine
   in protection mode.  The candidate is rebuilt at the CVE's vulnerable
   version — the rollout never assumes paper-version behaviour transfers
   across the catalogue's version gates. *)
let gate_attack ~device (recipe : recipe) (a : Attacks.Attack.t) =
  let w = Workload.Samples.find device in
  let module D = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  List.concat_map
    (fun engine ->
      List.map
        (fun mode ->
          let built = recipe.rc_build a.Attacks.Attack.qemu_version in
          let m = D.make_machine a.Attacks.Attack.qemu_version in
          let config =
            { Sedspec.Checker.default_config with Sedspec.Checker.engine; mode }
          in
          let checker =
            Sedspec.Pipeline.protect ~config m ~device built
          in
          a.Attacks.Attack.setup m;
          ignore
            (Sedspec.Checker.drain_anomalies checker
              : Sedspec.Checker.anomaly list);
          run_stream m a;
          let anomalies = Sedspec.Checker.drain_anomalies checker in
          let detected = anomalies <> [] in
          let blocked = Vmm.Machine.halted m in
          let pass =
            match mode with
            | Sedspec.Checker.Protection -> detected && blocked
            | Sedspec.Checker.Enhancement -> detected
          in
          {
            g_cve = a.Attacks.Attack.cve;
            g_engine =
              (match engine with
              | Sedspec.Checker.Compiled -> "compiled"
              | Sedspec.Checker.Interpreted -> "interpreted");
            g_mode =
              (match mode with
              | Sedspec.Checker.Protection -> "protection"
              | Sedspec.Checker.Enhancement -> "enhancement");
            g_detected = detected;
            g_blocked = blocked;
            g_pass = pass;
          })
        [ Sedspec.Checker.Protection; Sedspec.Checker.Enhancement ])
    [ Sedspec.Checker.Compiled; Sedspec.Checker.Interpreted ]

let catalogue_gate ~device recipe =
  Attacks.Attack.all
  |> List.filter (fun (a : Attacks.Attack.t) ->
         a.Attacks.Attack.device = device
         && a.Attacks.Attack.detectable
         && a.Attacks.Attack.expected <> [])
  |> List.concat_map (gate_attack ~device recipe)

(* --- Fleet phases ----------------------------------------------------- *)

type phase = {
  ph_rung : rung;
  ph_agree : int;
  ph_stricter : int;
  ph_looser : int;
  ph_failed_vms : int;
  ph_halted_vms : int;
  ph_breaker_trips : int;
  ph_param_anomalies : int;
  ph_max_window_looser : int;  (** Peak {!Governor.Budget} window sum. *)
  ph_first_looser_tick : int option;
  ph_canary_regressions : string list;
      (** One entry per canary VM that did worse than its same-seed base
          twin; empty outside the canary rung. *)
}

(* The canary availability oracle is an A/B pair: the candidate-enforcing
   VM against a twin with the same index, seed and options but the base
   spec.  Benign-traffic flakiness (rare-command false positives halt
   base VMs too) cancels out — only a candidate doing {e worse} than the
   base under identical traffic is a regression. *)
let twin_regression index (c : Vm.report) (b : Vm.report) =
  let worse what cv bv =
    if cv > bv then
      Some (Printf.sprintf "vm%d: %s %d vs base %d" index what cv bv)
    else None
  in
  let bool_worse what cv bv =
    if cv && not bv then Some (Printf.sprintf "vm%d: %s" index what) else None
  in
  List.filter_map Fun.id
    [
      bool_worse "failed where the base served"
        (c.Vm.r_status <> "ok")
        (b.Vm.r_status <> "ok");
      worse "halt ticks" c.Vm.r_halt_ticks b.Vm.r_halt_ticks;
      bool_worse "breaker tripped" c.Vm.r_breaker_tripped
        b.Vm.r_breaker_tripped;
      worse "parameter anomalies" c.Vm.r_anoms_param b.Vm.r_anoms_param;
      worse "workload crashes" c.Vm.r_crashes b.Vm.r_crashes;
      worse "degrades" c.Vm.r_degrades b.Vm.r_degrades;
    ]

let phase_of_reports ~rung ~window pairs =
  let reports = List.map fst pairs in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let shadowed =
    List.filter_map (fun (r : Vm.report) -> r.Vm.r_shadow) reports
  in
  let ssum f = List.fold_left (fun acc s -> acc + f s) 0 shadowed in
  (* Fold every shadowing VM's per-tick looser counts into one fleet
     stream (tick-aligned: all VMs run the same tick count) and slide the
     governor's budget window over it. *)
  let ticks =
    List.fold_left
      (fun acc s -> max acc (List.length s.Vm.sh_tick_looser))
      0 shadowed
  in
  let merged = Array.make (max ticks 1) 0 in
  List.iter
    (fun s ->
      List.iteri
        (fun i l -> merged.(i) <- merged.(i) + l)
        s.Vm.sh_tick_looser)
    shadowed;
  let budget = Governor.Budget.create ~window in
  let peak = ref 0 in
  Array.iter
    (fun l ->
      Governor.Budget.observe budget l;
      if Governor.Budget.sum budget > !peak then
        peak := Governor.Budget.sum budget)
    (if ticks = 0 then [||] else merged);
  {
    ph_rung = rung;
    ph_agree = ssum (fun s -> s.Vm.sh_agree);
    ph_stricter = ssum (fun s -> s.Vm.sh_stricter);
    ph_looser = ssum (fun s -> s.Vm.sh_looser);
    ph_failed_vms = sum (fun r -> if r.Vm.r_status = "ok" then 0 else 1);
    ph_halted_vms = sum (fun r -> if r.Vm.r_halted_final then 1 else 0);
    ph_breaker_trips = sum (fun r -> if r.Vm.r_breaker_tripped then 1 else 0);
    ph_param_anomalies = sum (fun r -> r.Vm.r_anoms_param);
    ph_max_window_looser = !peak;
    ph_first_looser_tick =
      List.fold_left
        (fun acc s ->
          match (acc, s.Vm.sh_first_looser_tick) with
          | None, t | t, None -> t
          | Some a, Some b -> Some (min a b))
        None shadowed;
    ph_canary_regressions =
      List.concat
        (List.mapi
           (fun i (c, twin) ->
             match twin with
             | None -> []
             | Some b -> twin_regression i c b)
           pairs);
  }

let agreement_ratio ph =
  let total = ph.ph_agree + ph.ph_stricter + ph.ph_looser in
  if total = 0 then 1.0 else float_of_int ph.ph_agree /. float_of_int total

(* Run one rollout fleet phase on the Runner pool: the first [canaries]
   VMs enforce the candidate (each paired with a same-seed base twin for
   the A/B regression oracle), the next [shadow_vms] enforce the base
   and shadow-walk the candidate, and any remaining VMs serve the base
   untouched — the subset is the shadow-overhead budget: evidence
   collection never costs more than [shadow_vms/vms] of one VM's
   lockstep walk, fleet-wide.  Seeding matches {!Supervisor.run}, so the
   phase is bit-identical for any [jobs]. *)
let fleet_phase cfg ~rung ~ticks ~canaries fetch =
  let serve ~seed ~index opts =
    let vm = Vm.create ~index ~seed opts in
    for _ = 1 to ticks do
      Vm.tick vm
    done;
    Vm.report vm
  in
  let run_vm ~seed index =
    if index < canaries then
      let cand_opts =
        {
          cfg.vm_opts with
          Vm.device = cfg.device;
          spec_source = Vm.Candidate fetch;
          shadow = None;
        }
      in
      let base_opts =
        { cand_opts with Vm.spec_source = Vm.Trained }
      in
      ( serve ~seed ~index cand_opts,
        Some (serve ~seed ~index base_opts) )
    else
      ( serve ~seed ~index
          {
            cfg.vm_opts with
            Vm.device = cfg.device;
            spec_source = Vm.Trained;
            shadow =
              (if index < canaries + cfg.shadow_vms then Some fetch
               else None);
          },
        None )
  in
  let pairs =
    Runner.map_seeded ~jobs:cfg.jobs ~seed:cfg.seed run_vm
      (List.init cfg.vms Fun.id)
  in
  (phase_of_reports ~rung ~window:cfg.budget_window pairs, pairs)

(* --- The ladder ------------------------------------------------------- *)

type rollback = {
  rb_rung : rung;  (** The rung the candidate was demoted from. *)
  rb_reason : string;
  rb_to_revision : int;
  rb_latency_ticks : int;
      (** Ticks into the failing phase before the first looser evidence
          (phase length when the failure was not verdict-shaped). *)
}

type outcome = {
  o_device : string;
  o_recipe : string;
  o_base_revision : int;
  o_cand_revision : int;
  o_diff : Sedspec.Evolve.diff option;
      (** [None] only when the candidate never built. *)
  o_final : rung;
  o_pinned_revision : int;
  o_shadow : phase option;
  o_canary : phase option;
  o_gates : (string * gate_check list) list;
      (** Catalogue-gate results per rung, in rung order. *)
  o_rollback : rollback option;
}

(* Rollback latch, keyed by (device, recipe): a candidate demoted for a
   safety miss stays demoted for the life of the process — re-running the
   ladder cannot re-canary it (the Remedy breaker's latching discipline,
   applied to spec distribution). *)
let latches : (string * string, string) Hashtbl.t = Hashtbl.create 8
let latch_lock = Mutex.create ()

let latched ~device ~recipe =
  Mutex.lock latch_lock;
  let r = Hashtbl.find_opt latches (device, recipe) in
  Mutex.unlock latch_lock;
  r

let latch ~device ~recipe reason =
  Mutex.lock latch_lock;
  Hashtbl.replace latches (device, recipe) reason;
  Mutex.unlock latch_lock

let reset_latches () =
  Mutex.lock latch_lock;
  Hashtbl.reset latches;
  Mutex.unlock latch_lock

let run cfg (recipe : recipe) =
  validate cfg;
  let w = Workload.Samples.find cfg.device in
  let module D = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let base = Metrics.Spec_cache.built w D.paper_version in
  let base_rev = Sedspec.Es_cfg.revision base.Sedspec.Pipeline.spec in
  let rolled_back ?diff ?shadow ?canary ?(gates = []) ~cand_rev ~rung ~latency
      reason =
    latch ~device:cfg.device ~recipe:recipe.rc_name reason;
    {
      o_device = cfg.device;
      o_recipe = recipe.rc_name;
      o_base_revision = base_rev;
      o_cand_revision = cand_rev;
      o_diff = diff;
      o_final = Rolled_back;
      o_pinned_revision = base_rev;
      o_shadow = shadow;
      o_canary = canary;
      o_gates = gates;
      o_rollback =
        Some
          {
            rb_rung = rung;
            rb_reason = reason;
            rb_to_revision = base_rev;
            rb_latency_ticks = latency;
          };
    }
  in
  match latched ~device:cfg.device ~recipe:recipe.rc_name with
  | Some reason ->
    rolled_back ~cand_rev:(-1) ~rung:Rolled_back ~latency:0
      ("latched: " ^ reason)
  | None -> (
    (* Memoise candidate builds for this run so the per-rung catalogue
       gates do not re-train uncached recipes at every rung. *)
    let memo : (string, Sedspec.Pipeline.built) Hashtbl.t = Hashtbl.create 4 in
    let recipe =
      {
        recipe with
        rc_build =
          (fun version ->
            let k = Devices.Qemu_version.to_string version in
            match Hashtbl.find_opt memo k with
            | Some b -> b
            | None ->
              let b = recipe.rc_build version in
              Hashtbl.replace memo k b;
              b);
      }
    in
    match recipe.rc_build D.paper_version with
    | exception e ->
      rolled_back ~cand_rev:(-1) ~rung:Shadow ~latency:0
        ("candidate build failed: " ^ Printexc.to_string e)
    | cand ->
      let cand_rev = Sedspec.Es_cfg.revision cand.Sedspec.Pipeline.spec in
      let diff =
        Sedspec.Evolve.diff ~base:base.Sedspec.Pipeline.spec
          ~cand:cand.Sedspec.Pipeline.spec
      in
      let fetch () = recipe.rc_build D.paper_version in
      let gate_failures checks =
        List.filter_map
          (fun g ->
            if g.g_pass then None
            else Some (Printf.sprintf "%s/%s/%s" g.g_cve g.g_engine g.g_mode))
          checks
      in
      (* Rung 1: shadow.  Catalogue first — an unsafe candidate must not
         even be walked against production traffic. *)
      let g_shadow = catalogue_gate ~device:cfg.device recipe in
      let gates = [ (rung_to_string Shadow, g_shadow) ] in
      (match gate_failures g_shadow with
      | f :: _ ->
        rolled_back ~diff ~gates ~cand_rev ~rung:Shadow ~latency:0
          ("catalogue gate failed at shadow: " ^ f)
      | [] -> (
        let shadow_phase, _ =
          fleet_phase cfg ~rung:Shadow ~ticks:cfg.shadow_ticks ~canaries:0
            fetch
        in
        let latency_of ph ~ticks =
          Option.value ph.ph_first_looser_tick ~default:ticks
        in
        if shadow_phase.ph_failed_vms > 0 then
          rolled_back ~diff ~gates ~shadow:shadow_phase ~cand_rev ~rung:Shadow
            ~latency:cfg.shadow_ticks "shadow VM failed"
        else if shadow_phase.ph_max_window_looser > cfg.looser_budget then
          rolled_back ~diff ~gates ~shadow:shadow_phase ~cand_rev ~rung:Shadow
            ~latency:(latency_of shadow_phase ~ticks:cfg.shadow_ticks)
            (Printf.sprintf "agreement budget breached (%d looser in window > %d)"
               shadow_phase.ph_max_window_looser cfg.looser_budget)
        else if agreement_ratio shadow_phase < cfg.agree_min then
          rolled_back ~diff ~gates ~shadow:shadow_phase ~cand_rev ~rung:Shadow
            ~latency:(latency_of shadow_phase ~ticks:cfg.shadow_ticks)
            (Printf.sprintf "agreement %.4f below threshold %.4f"
               (agreement_ratio shadow_phase) cfg.agree_min)
        else
          (* Rung 2: canary — a subset of the fleet enforces the
             candidate; the rest keep shadow-scoring it. *)
          let g_canary = catalogue_gate ~device:cfg.device recipe in
          let gates = gates @ [ (rung_to_string Canary, g_canary) ] in
          match gate_failures g_canary with
          | f :: _ ->
            rolled_back ~diff ~gates ~shadow:shadow_phase ~cand_rev
              ~rung:Canary ~latency:0
              ("catalogue gate failed at canary: " ^ f)
          | [] -> (
            let canary_phase, _ =
              fleet_phase cfg ~rung:Canary ~ticks:cfg.canary_ticks
                ~canaries:cfg.canary_vms fetch
            in
            if canary_phase.ph_failed_vms > 0 then
              rolled_back ~diff ~gates ~shadow:shadow_phase
                ~canary:canary_phase ~cand_rev ~rung:Canary
                ~latency:cfg.canary_ticks "canary VM failed"
            else if canary_phase.ph_canary_regressions <> [] then
              rolled_back ~diff ~gates ~shadow:shadow_phase
                ~canary:canary_phase ~cand_rev ~rung:Canary
                ~latency:cfg.canary_ticks
                ("canary regressed against its base twin: "
                ^ String.concat "; " canary_phase.ph_canary_regressions)
            else if
              canary_phase.ph_max_window_looser > cfg.looser_budget
            then
              rolled_back ~diff ~gates ~shadow:shadow_phase
                ~canary:canary_phase ~cand_rev ~rung:Canary
                ~latency:(latency_of canary_phase ~ticks:cfg.canary_ticks)
                (Printf.sprintf
                   "agreement budget breached (%d looser in window > %d)"
                   canary_phase.ph_max_window_looser cfg.looser_budget)
            else
              (* Rung 3: promotion — one last catalogue replay before the
                 candidate revision is pinned fleet-wide. *)
              let g_promote = catalogue_gate ~device:cfg.device recipe in
              let gates = gates @ [ (rung_to_string Promoted, g_promote) ] in
              match gate_failures g_promote with
              | f :: _ ->
                rolled_back ~diff ~gates ~shadow:shadow_phase
                  ~canary:canary_phase ~cand_rev ~rung:Promoted ~latency:0
                  ("catalogue gate failed at promotion: " ^ f)
              | [] ->
                {
                  o_device = cfg.device;
                  o_recipe = recipe.rc_name;
                  o_base_revision = base_rev;
                  o_cand_revision = cand_rev;
                  o_diff = Some diff;
                  o_final = Promoted;
                  o_pinned_revision = cand_rev;
                  o_shadow = Some shadow_phase;
                  o_canary = Some canary_phase;
                  o_gates = gates;
                  o_rollback = None;
                }))))

(* --- Rendering -------------------------------------------------------- *)

let phase_to_json ph =
  Json.Obj
    [
      ("rung", Json.Str (rung_to_string ph.ph_rung));
      ("agree", Json.Int ph.ph_agree);
      ("stricter", Json.Int ph.ph_stricter);
      ("looser", Json.Int ph.ph_looser);
      ("agreement", Json.Str (Printf.sprintf "%.4f" (agreement_ratio ph)));
      ("failed_vms", Json.Int ph.ph_failed_vms);
      ("halted_vms", Json.Int ph.ph_halted_vms);
      ("breaker_trips", Json.Int ph.ph_breaker_trips);
      ("param_anomalies", Json.Int ph.ph_param_anomalies);
      ("max_window_looser", Json.Int ph.ph_max_window_looser);
      ( "first_looser_tick",
        match ph.ph_first_looser_tick with
        | None -> Json.Int (-1)
        | Some t -> Json.Int t );
      ( "canary_regressions",
        Json.List
          (List.map (fun s -> Json.Str s) ph.ph_canary_regressions) );
    ]

let gate_to_json (rung, checks) =
  Json.Obj
    [
      ("rung", Json.Str rung);
      ("pass", Json.Bool (List.for_all (fun g -> g.g_pass) checks));
      ( "checks",
        Json.List
          (List.map
             (fun g ->
               Json.Obj
                 [
                   ("cve", Json.Str g.g_cve);
                   ("engine", Json.Str g.g_engine);
                   ("mode", Json.Str g.g_mode);
                   ("detected", Json.Bool g.g_detected);
                   ("blocked", Json.Bool g.g_blocked);
                   ("pass", Json.Bool g.g_pass);
                 ])
             checks) );
    ]

let outcome_to_json o =
  Json.Obj
    ([
       ("device", Json.Str o.o_device);
       ("recipe", Json.Str o.o_recipe);
       ("base_revision", Json.Int o.o_base_revision);
       ("candidate_revision", Json.Int o.o_cand_revision);
       ("final", Json.Str (rung_to_string o.o_final));
       ("pinned_revision", Json.Int o.o_pinned_revision);
       ("gates", Json.List (List.map gate_to_json o.o_gates));
     ]
    @ (match o.o_diff with
      | None -> []
      | Some d -> [ ("diff", Sedspec.Evolve.diff_to_json d) ])
    @ (match o.o_shadow with
      | None -> []
      | Some ph -> [ ("shadow", phase_to_json ph) ])
    @ (match o.o_canary with
      | None -> []
      | Some ph -> [ ("canary", phase_to_json ph) ])
    @
    match o.o_rollback with
    | None -> []
    | Some rb ->
      [
        ( "rollback",
          Json.Obj
            [
              ("rung", Json.Str (rung_to_string rb.rb_rung));
              ("reason", Json.Str rb.rb_reason);
              ("to_revision", Json.Int rb.rb_to_revision);
              ("latency_ticks", Json.Int rb.rb_latency_ticks);
            ] );
      ])

let pp_outcome ppf o =
  Format.fprintf ppf "rollout %s %s: base r%d -> candidate r%d: %s@."
    o.o_device o.o_recipe o.o_base_revision o.o_cand_revision
    (rung_to_string o.o_final);
  (match o.o_diff with
  | Some d ->
    Format.fprintf ppf "  diff: %d changes@." (Sedspec.Evolve.change_count d)
  | None -> ());
  List.iter
    (fun (rung, checks) ->
      Format.fprintf ppf "  gate@%s: %d checks, %s@." rung
        (List.length checks)
        (if List.for_all (fun g -> g.g_pass) checks then "pass" else "FAIL"))
    o.o_gates;
  List.iter
    (fun ph ->
      Format.fprintf ppf
        "  %s: agree=%d stricter=%d looser=%d (%.4f) failed=%d halted=%d@."
        (rung_to_string ph.ph_rung)
        ph.ph_agree ph.ph_stricter ph.ph_looser (agreement_ratio ph)
        ph.ph_failed_vms ph.ph_halted_vms)
    (List.filter_map Fun.id [ o.o_shadow; o.o_canary ]);
  match o.o_rollback with
  | None -> ()
  | Some rb ->
    Format.fprintf ppf "  rollback@%s -> r%d after %d ticks: %s@."
      (rung_to_string rb.rb_rung) rb.rb_to_revision rb.rb_latency_ticks
      rb.rb_reason
