(** Online spec evolution: the candidate rollout ladder.

    A candidate specification (retrained on a newer corpus, minimized, or
    merged) climbs three rungs before it may replace the enforced base:

    {v Shadow  ->  Canary  ->  Promoted v}

    - {b Shadow}: a [shadow_vms]-strong subset of the fleet enforces the
      base and walks the candidate in lockstep ({!Vm.options.shadow})
      while the rest serve untouched — the subset is the shadow-overhead
      budget, capping evidence collection at [shadow_vms/vms] of one
      VM's lockstep walk fleet-wide (the bench's
      [rollout.threshold.overhead_max] asserts the resulting wall-clock
      cost stays under 15%); verdict agreement is scored per anomaly
      site and a {!Governor.Budget} window slides over the fleet's
      per-tick looser counts;
    - {b Canary}: a subset of the fleet enforces the candidate
      ({!Vm.spec_source.Candidate}) while the rest keep shadow-scoring;
      each canary VM is A/B-paired with a same-seed twin enforcing the
      base, and any canary doing worse than its twin (failure, more halt
      ticks, a breaker trip, more parameter anomalies, crashes or
      degrades) demotes immediately;
    - {b Promoted}: the candidate revision becomes the pinned revision.

    {b Safety gate}: at {e every} rung the candidate is replayed against
    the device's attack catalogue — rebuilt at each CVE's vulnerable
    version, in both walk engines and both working modes.  A candidate
    that fails to detect (or, in protection mode, block) any catalogued
    CVE is demoted on the spot: rolled back to the pinned base revision
    and {e latched} — like the Remedy circuit breaker, a candidate
    demoted for a safety miss cannot re-enter the ladder for the life of
    the process ({!reset_latches} exists for harnesses).

    Determinism: phases seed VMs exactly like {!Supervisor.run}, so the
    whole {!outcome} (and {!outcome_to_json}) is bit-identical for any
    [jobs] setting. *)

type recipe = {
  rc_name : string;  (** Latch key, e.g. ["retrained:48"]. *)
  rc_build : Devices.Qemu_version.t -> Sedspec.Pipeline.built;
      (** Build the candidate at a version — the catalogue gate rebuilds
          at each CVE's vulnerable version.  Memoised per {!run}. *)
}

val retrained :
  (module Workload.Samples.DEVICE_WORKLOAD) -> cases:int -> recipe
(** The {!Metrics.Spec_cache.built_retrained} candidate. *)

val minimized : (module Workload.Samples.DEVICE_WORKLOAD) -> recipe
(** The {!Metrics.Spec_cache.built_minimized} candidate. *)

type rung = Shadow | Canary | Promoted | Rolled_back

val rung_to_string : rung -> string

type config = {
  device : string;
  vms : int;  (** Fleet size per phase (>= 1). *)
  canary_vms : int;  (** Candidate-enforcing subset (1 <= n <= vms). *)
  shadow_vms : int;
      (** Shadow-walking subset (1 <= n <= vms) — the shadow-overhead
          budget.  During the shadow phase the first [shadow_vms] VMs
          walk the candidate; during the canary phase the [shadow_vms]
          VMs after the canaries do. *)
  shadow_ticks : int;
  canary_ticks : int;
  seed : int64;
  jobs : int;
  agree_min : float;  (** Minimum agreement ratio per fleet phase. *)
  looser_budget : int;
      (** Maximum looser verdicts tolerated in any {!Governor.Budget}
          window; the default 0 demotes on the first missed detection. *)
  budget_window : int;  (** Budget window length in ticks. *)
  vm_opts : Vm.options;  (** Base VM options ([device]/[spec_source]/
          [shadow] are overridden per phase). *)
}

val default_config : device:string -> config
(** 4 VMs, 1 canary, 1 shadower, 12 shadow + 8 canary ticks, seed 1,
    1 job, agreement 0.98, zero looser budget over an 8-tick window. *)

type gate_check = {
  g_cve : string;
  g_engine : string;  (** ["compiled"] or ["interpreted"]. *)
  g_mode : string;  (** ["protection"] or ["enhancement"]. *)
  g_detected : bool;
  g_blocked : bool;
  g_pass : bool;
      (** Protection requires detected && blocked; enhancement requires
          detected. *)
}

val catalogue_gate : device:string -> recipe -> gate_check list
(** Replay every catalogued detectable CVE of the device against the
    candidate (both engines x both modes); exposed for harnesses. *)

type phase = {
  ph_rung : rung;
  ph_agree : int;
  ph_stricter : int;
  ph_looser : int;
  ph_failed_vms : int;
  ph_halted_vms : int;
  ph_breaker_trips : int;
  ph_param_anomalies : int;
  ph_max_window_looser : int;
      (** Peak windowed looser count across the fleet's merged per-tick
          stream. *)
  ph_first_looser_tick : int option;
  ph_canary_regressions : string list;
      (** A/B regression oracle: each canary VM is paired with a twin of
          the same index, seed and options enforcing the base spec, so
          benign-traffic flakiness (rare-command false positives halt
          base VMs too) cancels out.  One entry per canary VM that did
          {e worse} than its twin — failed, more halt ticks, a breaker
          trip, more parameter anomalies, crashes or degrades.  Empty
          outside the canary rung; any entry demotes. *)
}

val agreement_ratio : phase -> float
(** agree / (agree + stricter + looser); 1.0 when no comparisons ran. *)

type rollback = {
  rb_rung : rung;  (** The rung the candidate was demoted from. *)
  rb_reason : string;
  rb_to_revision : int;  (** The pinned base revision rolled back to. *)
  rb_latency_ticks : int;
      (** Deterministic rollback latency: ticks into the failing phase
          before the first looser evidence (the phase length when the
          failure was not verdict-shaped). *)
}

type outcome = {
  o_device : string;
  o_recipe : string;
  o_base_revision : int;
  o_cand_revision : int;  (** [-1] when the candidate never built. *)
  o_diff : Sedspec.Evolve.diff option;
  o_final : rung;
  o_pinned_revision : int;
      (** Candidate revision on promotion; base revision otherwise. *)
  o_shadow : phase option;
  o_canary : phase option;
  o_gates : (string * gate_check list) list;
      (** Catalogue-gate results per rung climbed, in rung order. *)
  o_rollback : rollback option;
}

val run : config -> recipe -> outcome
(** Climb the ladder.  Never raises on candidate misbehaviour (build
    failures and safety misses are rollback outcomes); raises
    [Invalid_argument] on an ill-formed config. *)

val reset_latches : unit -> unit
(** Clear the process-wide rollback latches (test harnesses only). *)

val outcome_to_json : outcome -> Sedspec_util.Json.t
(** Deterministic, jobs-independent rendering. *)

val pp_outcome : Format.formatter -> outcome -> unit
