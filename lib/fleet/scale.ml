module Runner = Sedspec_util.Runner
module Checker = Sedspec.Checker
module W = Workload.Samples

type options = {
  vms : int;
  ticks : int;
  seed : int64;
  jobs : int;
  devices : string list;
  capture_cases : int;
  capture_ops : int;
  deadline : int option;
}

let default_options () =
  {
    vms = 1000;
    ticks = 4;
    seed = 7L;
    jobs = 1;
    devices = [ "fdc"; "ehci"; "pcnet"; "sdhci"; "scsi" ];
    capture_cases = 2;
    capture_ops = 12;
    deadline = Some 50_000;
  }

type result = {
  sc_vms : int;
  sc_ticks : int;
  sc_interactions : int;
  sc_nodes_walked : int;
  sc_anomalies : int;
  sc_builds : int;
  sc_shared : bool;
  sc_create_s : float;
  sc_wall_s : float;
  sc_throughput_ips : float;
  sc_walk_ns_per_node : float;
  sc_p50_tick_ns : float;
  sc_p99_tick_ns : float;
  sc_bytes_per_vm : float;
  sc_minor_words_per_tick : float;
  sc_minor_words_per_walk : float;
}

(* One per device: the shared immutable arena, its spec, the live
   control structure and guest of a single capture machine (per-VM
   machines are exactly what this harness exists to avoid paying for),
   and a benign request stream recorded off that machine. *)
type device_ctx = {
  dc_arena : Sedspec.Compile.t;
  dc_spec : Sedspec.Es_cfg.t;
  dc_device_arena : Devir.Arena.t;
  dc_guest : Interp.guest;
  dc_reqs : Vmm.Machine.request array;
}

(* A scale cell: the per-VM unit of this harness — one checker (and
   therefore one cursor and one shadow/work/staged triple) against its
   device's shared arena.  [bytes/VM] measures exactly this marginal
   footprint. *)
type cell = {
  c_checker : Checker.t;
  c_ip : Vmm.Machine.interposer;
  c_reqs : Vmm.Machine.request array;
}

let validate opts =
  if opts.vms < 1 then invalid_arg "Scale.run: vms must be >= 1";
  if opts.ticks < 1 then invalid_arg "Scale.run: ticks must be >= 1";
  if opts.devices = [] then invalid_arg "Scale.run: devices is empty";
  List.iter
    (fun d ->
      if W.find_opt d = None then
        invalid_arg (Printf.sprintf "Scale.run: unknown device %s" d))
    opts.devices

let done_outcome = Interp.Event.Done { response = None }

(* Reduce a captured stream to its replay-stable benign core.  On the
   live machine every captured request is benign, but a device-less
   replay is only state-faithful when the pre-execution walk's shadow
   commit models the interaction's whole effect; requests whose checks
   depend on device work the walk does not simulate (asynchronous ring
   processing, DMA completion) drift off the trained branch directions
   and fire false conditional-jump anomalies.  Replay the stream a few
   full passes through a scratch checker, drop every request that fires
   an anomaly, and iterate until a multi-pass replay is anomaly-free —
   multi-pass because the steady-state loop re-enters the stream from
   its own end state, not from pristine. *)
let stable_stream arena spec device_arena guest reqs =
  let reqs = ref reqs in
  let dirty = ref true in
  let rounds = ref 0 in
  while !dirty && !rounds < 10 do
    incr rounds;
    let checker =
      Checker.create ~compiled:arena ~spec ~device_arena ~guest ()
    in
    let ip = Checker.interposer checker in
    let bad = Hashtbl.create 16 in
    for _pass = 1 to 3 do
      Array.iteri
        (fun i r ->
          ignore (ip.Vmm.Machine.before r : Vmm.Machine.verdict);
          ignore (ip.Vmm.Machine.after r done_outcome : Vmm.Machine.verdict);
          if Checker.drain_anomalies checker <> [] then
            Hashtbl.replace bad i ())
        !reqs
    done;
    if Hashtbl.length bad = 0 then dirty := false
    else
      reqs :=
        Array.of_list
          (List.filteri
             (fun i _ -> not (Hashtbl.mem bad i))
             (Array.to_list !reqs))
  done;
  if !dirty || Array.length !reqs = 0 then
    invalid_arg "Scale: capture stream did not stabilise to a benign core";
  !reqs

let make_device_ctx opts device =
  let w = W.find device in
  let module D = (val w : W.DEVICE_WORKLOAD) in
  let b = Metrics.Spec_cache.built w D.paper_version in
  let m = D.make_machine D.paper_version in
  let reqs = ref [] in
  Vmm.Machine.set_interposer m D.device_name
    {
      before =
        (fun r ->
          reqs := r :: !reqs;
          Vmm.Machine.Allow);
      after = (fun _ _ -> Vmm.Machine.Allow);
    };
  let rng = Sedspec_util.Prng.create opts.seed in
  for _ = 1 to opts.capture_cases do
    D.soak_case ~mode:W.Sequential ~rng ~rare_prob:0.0 ~ops:opts.capture_ops m
  done;
  let interp = Vmm.Machine.interp_of m D.device_name in
  (* Return the control structure to its pristine state: every cell's
     shadow initialises from it, exactly like a fresh attach. *)
  Devir.Arena.reset (Interp.arena interp);
  let guest = Vmm.Guest_mem.access (Vmm.Machine.ram m) in
  let stream =
    stable_stream b.Sedspec.Pipeline.arena b.Sedspec.Pipeline.spec
      (Interp.arena interp) guest
      (Array.of_list (List.rev !reqs))
  in
  {
    dc_arena = b.Sedspec.Pipeline.arena;
    dc_spec = b.Sedspec.Pipeline.spec;
    dc_device_arena = Interp.arena interp;
    dc_guest = guest;
    dc_reqs = stream;
  }

let make_cell opts ctx =
  let checker =
    Checker.create ~compiled:ctx.dc_arena ~spec:ctx.dc_spec
      ~device_arena:ctx.dc_device_arena ~guest:ctx.dc_guest ()
  in
  Checker.set_deadline checker opts.deadline;
  { c_checker = checker; c_ip = Checker.interposer checker; c_reqs = ctx.dc_reqs }

(* One supervision tick: replay the device's benign stream through the
   full protection path (pre-execution walk, verdict, shadow commit). *)
let tick_cell cell =
  let reqs = cell.c_reqs in
  for i = 0 to Array.length reqs - 1 do
    let r = reqs.(i) in
    ignore (cell.c_ip.Vmm.Machine.before r : Vmm.Machine.verdict);
    ignore (cell.c_ip.Vmm.Machine.after r done_outcome : Vmm.Machine.verdict)
  done

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run opts =
  validate opts;
  let builds0 = Metrics.Spec_cache.builds () in
  let ctxs = Array.of_list (List.map (make_device_ctx opts) opts.devices) in
  let n_devices = Array.length ctxs in
  (* Cell creation, serially: the marginal per-VM footprint and cost. *)
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let t0 = Unix.gettimeofday () in
  let cells =
    Array.init opts.vms (fun i -> make_cell opts ctxs.(i mod n_devices))
  in
  let create_s = Unix.gettimeofday () -. t0 in
  Gc.full_major ();
  let live1 = (Gc.stat ()).Gc.live_words in
  let bytes_per_vm =
    float_of_int ((live1 - live0) * (Sys.word_size / 8))
    /. float_of_int opts.vms
  in
  let shared =
    Array.for_all
      (fun i ->
        match Checker.compiled_arena cells.(i).c_checker with
        | Some a -> a == ctxs.(i mod n_devices).dc_arena
        | None -> false)
      (Array.init opts.vms Fun.id)
  in
  (* Partition into [jobs] contiguous chunks; each task owns its cells. *)
  let jobs = max 1 opts.jobs in
  let chunks =
    List.init jobs (fun j ->
        let lo = opts.vms * j / jobs and hi = opts.vms * (j + 1) / jobs in
        (lo, hi))
  in
  let stats_sum () =
    Array.fold_left
      (fun acc c ->
        let s = Checker.stats c.c_checker in
        ( fst acc + s.Checker.interactions,
          snd acc + s.Checker.nodes_walked ))
      (0, 0) cells
  in
  (* Allocation probe: one untimed pass per cell, per-domain
     [Gc.minor_words] deltas summed across tasks (minor heaps are
     per-domain in OCaml 5). *)
  let ia0, _ = stats_sum () in
  let probe_words =
    Runner.map ~jobs
      (fun (lo, hi) ->
        (* Warm pass: fills per-cursor stacks, hashtable probes, etc. *)
        for i = lo to hi - 1 do
          tick_cell cells.(i)
        done;
        let w0 = Gc.minor_words () in
        for i = lo to hi - 1 do
          tick_cell cells.(i)
        done;
        Gc.minor_words () -. w0)
      chunks
    |> List.fold_left ( +. ) 0.0
  in
  let ia1, n1 = stats_sum () in
  let probe_interactions = (ia1 - ia0) / 2 in
  let minor_words_per_tick = probe_words /. float_of_int opts.vms in
  let minor_words_per_walk =
    if probe_interactions = 0 then 0.0
    else probe_words /. float_of_int probe_interactions
  in
  (* Timed phase: per-tick latencies plus fleet throughput. *)
  let wall0 = Unix.gettimeofday () in
  let samples =
    Runner.map ~jobs
      (fun (lo, hi) ->
        let out = Array.make ((hi - lo) * opts.ticks) 0.0 in
        let k = ref 0 in
        for _ = 1 to opts.ticks do
          for i = lo to hi - 1 do
            let s0 = Unix.gettimeofday () in
            tick_cell cells.(i);
            out.(!k) <- Unix.gettimeofday () -. s0;
            incr k
          done
        done;
        out)
      chunks
  in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let ia2, n2 = stats_sum () in
  let samples = Array.concat samples in
  Array.sort compare samples;
  let busy_s = Array.fold_left ( +. ) 0.0 samples in
  let interactions = ia2 - ia1 in
  let nodes = n2 - n1 in
  let anomalies =
    Array.fold_left
      (fun acc c -> acc + List.length (Checker.anomalies c.c_checker))
      0 cells
  in
  {
    sc_vms = opts.vms;
    sc_ticks = opts.ticks;
    sc_interactions = interactions;
    sc_nodes_walked = nodes;
    sc_anomalies = anomalies;
    sc_builds = Metrics.Spec_cache.builds () - builds0;
    sc_shared = shared;
    sc_create_s = create_s;
    sc_wall_s = wall_s;
    sc_throughput_ips =
      (if wall_s > 0.0 then float_of_int interactions /. wall_s else 0.0);
    sc_walk_ns_per_node =
      (if nodes > 0 then busy_s *. 1e9 /. float_of_int nodes else 0.0);
    sc_p50_tick_ns = percentile samples 0.50 *. 1e9;
    sc_p99_tick_ns = percentile samples 0.99 *. 1e9;
    sc_bytes_per_vm = bytes_per_vm;
    sc_minor_words_per_tick = minor_words_per_tick;
    sc_minor_words_per_walk = minor_words_per_walk;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%d VMs x %d ticks: %d interactions in %.3fs (%.0f ia/s)@,\
     builds=%d shared=%b create=%.3fs bytes/VM=%.0f@,\
     p50 tick=%.0fns p99 tick=%.0fns walk=%.1fns/node@,\
     minor words: %.1f/tick %.2f/walk; anomalies=%d@]"
    r.sc_vms r.sc_ticks r.sc_interactions r.sc_wall_s r.sc_throughput_ips
    r.sc_builds r.sc_shared r.sc_create_s r.sc_bytes_per_vm r.sc_p50_tick_ns
    r.sc_p99_tick_ns r.sc_walk_ns_per_node r.sc_minor_words_per_tick
    r.sc_minor_words_per_walk r.sc_anomalies
