(** Fleet-scale checker harness: thousands of protected VMs per process.

    {!Supervisor} runs full VMs — machine, guest RAM, workload, governor,
    remedy — which is the right fidelity for supervision semantics but
    caps fleet size at tens (16 MiB of guest RAM each).  This harness
    isolates what actually scales with fleet size under the arena/cursor
    split: per VM it instantiates only a {e cell} — one
    {!Sedspec.Checker} (cursor + shadow state) over its device's shared
    immutable compiled arena — and drives every cell's full protection
    path (pre-execution walk, verdict, shadow commit) by replaying a
    benign request stream captured once per device.  Captures are
    reduced to their replay-stable core first: requests whose checks
    depend on device work the walk does not simulate (asynchronous ring
    processing, DMA completion) are state-faithful only on a live
    machine, so they are iteratively dropped until a multi-pass
    device-less replay is anomaly-free.

    Measured per configuration: interactions/s across the fleet, p50/p99
    per-tick latency, marginal bytes per VM (major-heap live-word delta
    across cell creation), minor-heap words allocated per steady-state
    tick and per walk ({!Gc.minor_words} deltas summed per domain), walk
    ns/node, and the single-flight build count — which must be at most
    one per (device, version) no matter the fleet size ([sc_shared]
    asserts physical arena identity across all cells). *)

type options = {
  vms : int;  (** Cells, assigned round-robin over [devices]. *)
  ticks : int;  (** Timed stream replays per cell. *)
  seed : int64;  (** Capture-stream workload seed. *)
  jobs : int;  (** Runner domains; cells are partitioned into chunks. *)
  devices : string list;
  capture_cases : int;  (** Soak cases recorded into the stream. *)
  capture_ops : int;  (** Ops per soak case. *)
  deadline : int option;  (** Per-cell watchdog budget. *)
}

val default_options : unit -> options
(** 1000 VMs, 4 ticks, seed 7, 1 job, all five paper devices, 2x12-op
    capture, 50k-step deadline. *)

type result = {
  sc_vms : int;
  sc_ticks : int;
  sc_interactions : int;  (** Timed-phase interactions, fleet-wide. *)
  sc_nodes_walked : int;  (** Timed-phase ES-CFG nodes walked. *)
  sc_anomalies : int;  (** Should be 0: the streams are benign. *)
  sc_builds : int;
      (** Spec builds this run triggered; <= one per (device, version). *)
  sc_shared : bool;
      (** Every cell's arena is physically ([==]) its device's one. *)
  sc_create_s : float;  (** Wall seconds to create all cells (serial). *)
  sc_wall_s : float;  (** Timed-phase wall seconds. *)
  sc_throughput_ips : float;  (** Interactions/s across the fleet. *)
  sc_walk_ns_per_node : float;
      (** Busy nanoseconds per walked node (sum of tick latencies over
          nodes; includes interposer dispatch). *)
  sc_p50_tick_ns : float;
  sc_p99_tick_ns : float;
  sc_bytes_per_vm : float;
      (** Marginal major-heap bytes per cell (live-word delta around
          creation, after [Gc.full_major] on both sides). *)
  sc_minor_words_per_tick : float;
  sc_minor_words_per_walk : float;
      (** Steady-state minor words per checker walk; the allocation
          budget guard in the bench and test suite watches this. *)
}

val run : options -> result
(** Raises [Invalid_argument] on non-positive [vms]/[ticks] or an empty
    or unknown [devices] list. *)

val pp_result : Format.formatter -> result -> unit
