module Runner = Sedspec_util.Runner
module Json = Sedspec_util.Json

type options = {
  vms : int;
  ticks : int;
  seed : int64;
  jobs : int;
  devices : string list;
  vm_opts : string -> Vm.options;
}

let default_options () =
  {
    vms = 8;
    ticks = 32;
    seed = 1L;
    jobs = 1;
    devices = [ "fdc"; "ehci"; "pcnet"; "sdhci"; "scsi" ];
    vm_opts = (fun device -> Vm.default_options ~device);
  }

type report = {
  f_vms : Vm.report list;
  f_ticks : int;
  f_seed : int64;
  f_interactions : int;
  f_anomalies : int;
  f_internal_errors : int;
  f_deadline_overruns : int;
  f_crashes : int;
  f_rollbacks : int;
  f_heals : int;
  f_degrades : int;
  f_restores : int;
  f_failed_vms : int;
  f_spec_builds : int;
      (** Single-flight spec builds this run triggered (cache deltas). *)
  f_arenas_shared : bool;
      (** Every cache-built VM of a device walks the physically same
          compiled arena. *)
  f_shadow : (int * int * int) option;
      (** Fleet-wide (agree, stricter, looser) when any VM shadowed a
          candidate. *)
}

let validate opts =
  if opts.vms < 1 then invalid_arg "Supervisor.run: vms must be >= 1";
  if opts.ticks < 1 then invalid_arg "Supervisor.run: ticks must be >= 1";
  if opts.devices = [] then invalid_arg "Supervisor.run: devices is empty";
  List.iter
    (fun d ->
      if Workload.Samples.find_opt d = None then
        invalid_arg (Printf.sprintf "Supervisor.run: unknown device %s" d))
    opts.devices

(* Physical-sharing audit: group the cache-built arenas by device and
   require each group to be one identity class.  [==] is meaningful
   across Runner domains (one shared major heap). *)
let arenas_shared reports =
  let by_device : (string, Sedspec.Compile.t) Hashtbl.t = Hashtbl.create 8 in
  List.for_all
    (fun (r : Vm.report) ->
      match r.Vm.r_arena with
      | None -> true
      | Some a -> (
        match Hashtbl.find_opt by_device r.Vm.r_device with
        | None ->
          Hashtbl.add by_device r.Vm.r_device a;
          true
        | Some first -> first == a))
    reports

let run ?arm opts =
  validate opts;
  let builds0 = Metrics.Spec_cache.builds () in
  let devices = Array.of_list opts.devices in
  let run_vm ~seed index =
    let device = devices.(index mod Array.length devices) in
    let vm_opts = { (opts.vm_opts device) with Vm.device } in
    let vm = Vm.create ~index ~seed vm_opts in
    let disarm =
      match arm with
      | None -> None
      | Some f -> (
        match (Vm.machine vm, Vm.checker vm) with
        | Some machine, Some checker -> f ~vm:index machine checker
        | _ -> None)
    in
    for _ = 1 to opts.ticks do
      Vm.tick vm
    done;
    (match disarm with Some d -> d () | None -> ());
    Vm.report vm
  in
  let reports =
    Runner.map_seeded ~jobs:opts.jobs ~seed:opts.seed run_vm
      (List.init opts.vms Fun.id)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  {
    f_vms = reports;
    f_ticks = opts.ticks;
    f_seed = opts.seed;
    f_interactions = sum (fun r -> r.Vm.r_interactions);
    f_anomalies =
      sum (fun r ->
          r.Vm.r_anoms_param + r.Vm.r_anoms_indirect + r.Vm.r_anoms_cond
          + r.Vm.r_anoms_internal);
    f_internal_errors = sum (fun r -> r.Vm.r_internal_errors);
    f_deadline_overruns = sum (fun r -> r.Vm.r_deadline_overruns);
    f_crashes = sum (fun r -> r.Vm.r_crashes);
    f_rollbacks = sum (fun r -> r.Vm.r_rollbacks);
    f_heals = sum (fun r -> r.Vm.r_heals);
    f_degrades = sum (fun r -> r.Vm.r_degrades);
    f_restores = sum (fun r -> r.Vm.r_restores);
    f_failed_vms = sum (fun r -> if r.Vm.r_status = "ok" then 0 else 1);
    f_spec_builds = Metrics.Spec_cache.builds () - builds0;
    f_arenas_shared = arenas_shared reports;
    f_shadow =
      (if List.for_all (fun r -> r.Vm.r_shadow = None) reports then None
       else
         Some
           (List.fold_left
              (fun (a, s, l) r ->
                match r.Vm.r_shadow with
                | None -> (a, s, l)
                | Some sh ->
                  ( a + sh.Vm.sh_agree,
                    s + sh.Vm.sh_stricter,
                    l + sh.Vm.sh_looser ))
              (0, 0, 0) reports));
  }

let vm_to_json (r : Vm.report) =
  Json.Obj
    ([
      ("vm", Json.Int r.Vm.r_vm);
      ("device", Json.Str r.Vm.r_device);
      ("status", Json.Str r.Vm.r_status);
      ("mode", Json.Str (Governor.state_to_string r.Vm.r_state));
      ("degrades", Json.Int r.Vm.r_degrades);
      ("restores", Json.Int r.Vm.r_restores);
      ("burn_in_window", Json.Int r.Vm.r_burn);
      ("interactions", Json.Int r.Vm.r_interactions);
      ( "anomalies",
        Json.Obj
          [
            ("parameter", Json.Int r.Vm.r_anoms_param);
            ("indirect", Json.Int r.Vm.r_anoms_indirect);
            ("conditional", Json.Int r.Vm.r_anoms_cond);
            ("internal", Json.Int r.Vm.r_anoms_internal);
          ] );
      ("internal_errors", Json.Int r.Vm.r_internal_errors);
      ("deadline_overruns", Json.Int r.Vm.r_deadline_overruns);
      ("crashes", Json.Int r.Vm.r_crashes);
      ("halt_ticks", Json.Int r.Vm.r_halt_ticks);
      ("warns", Json.Int r.Vm.r_warns);
      ("rollbacks", Json.Int r.Vm.r_rollbacks);
      ("breaker_tripped", Json.Bool r.Vm.r_breaker_tripped);
      ("halted_final", Json.Bool r.Vm.r_halted_final);
      ("heals", Json.Int r.Vm.r_heals);
      ( "spec_build",
        Json.Obj
          [
            ("attempts", Json.Int r.Vm.r_build_attempts);
            ("fallback", Json.Bool r.Vm.r_build_fallback);
            ("backoff_delay", Json.Int r.Vm.r_backoff_delay);
            ("shared_arena", Json.Bool (r.Vm.r_arena <> None));
          ] );
      ( "coverage",
        Json.Obj
          [
            ("nodes", Json.Int r.Vm.r_cov_nodes);
            ("edges", Json.Int r.Vm.r_cov_edges);
          ] );
      ("stream", Json.List (List.map (fun l -> Json.Str l) r.Vm.r_stream));
    ]
    @
    (* Present only for guard-enabled VMs, so guard-less fleet JSON is
       byte-identical to what it was before the validator existed. *)
    (match r.Vm.r_guard with
    | None -> []
    | Some (anoms, internal) ->
      [
        ( "guard",
          Json.Obj
            [
              ("anomalies", Json.Int anoms);
              ("internal_errors", Json.Int internal);
            ] );
      ])
    @
    (* Likewise present only when this VM shadowed a candidate. *)
    (match r.Vm.r_shadow with
    | None -> []
    | Some sh ->
      [
        ( "shadow",
          Json.Obj
            [
              ("candidate_revision", Json.Int sh.Vm.sh_revision);
              ("candidate_provenance", Json.Str sh.Vm.sh_provenance);
              ("agree", Json.Int sh.Vm.sh_agree);
              ("stricter", Json.Int sh.Vm.sh_stricter);
              ("looser", Json.Int sh.Vm.sh_looser);
              ( "first_looser_tick",
                match sh.Vm.sh_first_looser_tick with
                | None -> Json.Int (-1)
                | Some t -> Json.Int t );
              ( "sites",
                Json.List
                  (List.map
                     (fun (site, (a, s, l)) ->
                       Json.Obj
                         [
                           ("site", Json.Str site);
                           ("agree", Json.Int a);
                           ("stricter", Json.Int s);
                           ("looser", Json.Int l);
                         ])
                     sh.Vm.sh_sites) );
            ] );
      ]))

let report_to_json r =
  Json.to_string
    (Json.Obj
       ([
         ("ticks", Json.Int r.f_ticks);
         ("seed", Json.Str (Int64.to_string r.f_seed));
         ("vms", Json.Int (List.length r.f_vms));
         ("failed_vms", Json.Int r.f_failed_vms);
         ("interactions", Json.Int r.f_interactions);
         ("anomalies", Json.Int r.f_anomalies);
         ("internal_errors", Json.Int r.f_internal_errors);
         ("deadline_overruns", Json.Int r.f_deadline_overruns);
         ("crashes", Json.Int r.f_crashes);
         ("rollbacks", Json.Int r.f_rollbacks);
         ("heals", Json.Int r.f_heals);
         ("degrades", Json.Int r.f_degrades);
         ("restores", Json.Int r.f_restores);
         ("spec_builds", Json.Int r.f_spec_builds);
         ("arenas_shared", Json.Bool r.f_arenas_shared);
       ]
       @ (match r.f_shadow with
         | None -> []
         | Some (a, s, l) ->
           [
             ( "shadow",
               Json.Obj
                 [
                   ("agree", Json.Int a);
                   ("stricter", Json.Int s);
                   ("looser", Json.Int l);
                 ] );
           ])
       @ [ ("fleet", Json.List (List.map vm_to_json r.f_vms)) ]))

let pp_report ppf r =
  Format.fprintf ppf "fleet: %d VMs x %d ticks (seed %Ld)@."
    (List.length r.f_vms) r.f_ticks r.f_seed;
  List.iter
    (fun (v : Vm.report) ->
      Format.fprintf ppf
        "  vm%-3d %-6s %-11s ia=%-6d anom=%d/%d/%d/%d over=%d crash=%d \
         rb=%d heal=%d cov=%d/%d %s@."
        v.Vm.r_vm v.Vm.r_device
        (Governor.state_to_string v.Vm.r_state)
        v.Vm.r_interactions v.Vm.r_anoms_param v.Vm.r_anoms_indirect
        v.Vm.r_anoms_cond v.Vm.r_anoms_internal v.Vm.r_deadline_overruns
        v.Vm.r_crashes v.Vm.r_rollbacks v.Vm.r_heals v.Vm.r_cov_nodes
        v.Vm.r_cov_edges v.Vm.r_status)
    r.f_vms;
  Format.fprintf ppf
    "  total: ia=%d anomalies=%d internal=%d overruns=%d crashes=%d \
     rollbacks=%d heals=%d degrades=%d restores=%d failed=%d builds=%d \
     shared=%b@."
    r.f_interactions r.f_anomalies r.f_internal_errors r.f_deadline_overruns
    r.f_crashes r.f_rollbacks r.f_heals r.f_degrades r.f_restores
    r.f_failed_vms r.f_spec_builds r.f_arenas_shared
