(** Fleet supervisor: run N protected VMs concurrently, each inside its
    own bulkhead ({!Vm}), over the {!Sedspec_util.Runner} domain pool.

    Each VM's entire lifecycle — spec acquisition with seeded backoff,
    serving ticks, degradation, healing — is one task, so there are no
    cross-VM barriers and nothing for a slow or faulty member to block.
    Per-VM seeds come from {!Sedspec_util.Runner.map_seeded}'s split
    stream: they depend only on the fleet seed and the VM index, so the
    whole report (including every per-tick stream line) is bit-identical
    for any [jobs] — the property the [--jobs 1] vs [--jobs 4] test and
    the fault-isolation oracle both rely on. *)

type options = {
  vms : int;  (** Fleet size (>= 1). *)
  ticks : int;  (** Supervision periods per VM. *)
  seed : int64;
  jobs : int;  (** Domain-pool width; never affects the report. *)
  devices : string list;
      (** Device types assigned round-robin: VM [i] serves
          [List.nth devices (i mod length)].  Must be non-empty and
          known to {!Workload.Samples.find}. *)
  vm_opts : string -> Vm.options;
      (** Per-device VM options ([device] field is overridden to the
          assigned device). *)
}

val default_options : unit -> options
(** 8 VMs, 32 ticks, seed 1, 1 job, all five paper devices,
    {!Vm.default_options}. *)

type report = {
  f_vms : Vm.report list;  (** In VM-index order. *)
  f_ticks : int;
  f_seed : int64;
  f_interactions : int;  (** Checker-inspected interactions, fleet-wide. *)
  f_anomalies : int;  (** All strategies, fleet-wide. *)
  f_internal_errors : int;
  f_deadline_overruns : int;
  f_crashes : int;
  f_rollbacks : int;
  f_heals : int;
  f_degrades : int;
  f_restores : int;
  f_failed_vms : int;  (** VMs whose spec never built (bulkheaded). *)
  f_spec_builds : int;
      (** Single-flight spec builds (and hence compiled-arena lowerings)
          this run triggered, as a {!Metrics.Spec_cache.builds} delta: at
          most one per (device, version) key regardless of fleet size or
          [jobs] (zero when a prior run already populated the cache). *)
  f_arenas_shared : bool;
      (** Physical-sharing audit: every cache-built VM of a given device
          reported the {e physically same} ([==]) compiled arena, across
          all Runner domains.  Fallback/persisted VMs are exempt (their
          arenas are private by design), as are canary VMs enforcing a
          candidate. *)
  f_shadow : (int * int * int) option;
      (** Fleet-wide shadow scoreboard — (agree, stricter, looser) summed
          over every shadowing VM; [None] when no VM shadowed a
          candidate, keeping shadow-less reports (and their JSON)
          byte-identical to pre-shadow output. *)
}

val run :
  ?arm:
    (vm:int -> Vmm.Machine.t -> Sedspec.Checker.t -> (unit -> unit) option) ->
  options ->
  report
(** Run the fleet.  [arm] is the fault-injection seam: it is called on
    the worker domain after VM [vm] is built and before its first tick,
    and may install faults ({!Sedspec.Checker.set_fault_hook}, guest RAM
    corruption, …) on that VM only; the returned closure is invoked
    after the VM's last tick (disarm/bookkeeping).  Raises
    [Invalid_argument] on an empty or unknown [devices] list or
    non-positive [vms]/[ticks]. *)

val report_to_json : report -> string
(** Deterministic health-snapshot JSON: fleet totals plus one object per
    VM (mode, budget burn, breaker state, heal spend, coverage, verdict
    stream).  Byte-identical across [jobs] settings. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable table: one line per VM plus fleet totals. *)
