module Checker = Sedspec.Checker
module Remedy = Sedspec.Remedy
module Backoff = Sedspec_util.Backoff
module Prng = Sedspec_util.Prng
module W = Workload.Samples

type spec_source = Trained | Persisted of (unit -> string)

type options = {
  device : string;
  ops_per_tick : int;
  rare_prob : float;
  deadline : int option;
  governor : Governor.config;
  breaker : (int * int) option;
  retry : Backoff.cfg;
  max_attempts : int;
  spec_source : spec_source;
  guard : bool;
}

let default_options ~device =
  {
    device;
    ops_per_tick = 12;
    rare_prob = 0.05;
    deadline = Some 50_000;
    governor = Governor.default_config;
    breaker = Some (2, 8);
    retry = Backoff.default;
    max_attempts = 3;
    spec_source = Trained;
    guard = false;
  }

type core = {
  workload : (module W.DEVICE_WORKLOAD);
  machine : Vmm.Machine.t;
  checker : Checker.t;
  remedy : Remedy.t;
  coverage : Checker.coverage;
  validator : Guard.Validator.t option;
  guard_drained : int ref;  (** Guard anomalies fed to the remedy. *)
}

type t = {
  index : int;
  opts : options;
  rng : Prng.t;  (** Workload stream; independent of the backoff stream. *)
  gov : Governor.t;
  core : core option;
  fail_reason : string;
  build_attempts : int;
  build_fallback : bool;
  backoff_delay : int;
  mutable ticks : int;
  mutable crashes : int;
  mutable halt_ticks : int;
  mutable warns : int;
  mutable anoms_param : int;
  mutable anoms_indirect : int;
  mutable anoms_cond : int;
  mutable anoms_internal : int;
  mutable stream_rev : string list;
}

(* Spec acquisition: retry the fallible source under seeded backoff, then
   fall back to a fresh (cache-bypassing) pipeline rebuild.  The serving
   machine is built first so a persisted spec parses against the exact
   program it will protect. *)
let acquire ~backoff_seed opts (machine : Vmm.Machine.t)
    (w : (module W.DEVICE_WORKLOAD)) =
  let module D = (val w) in
  let attempts = ref 0 in
  let step ~attempt:_ =
    incr attempts;
    match opts.spec_source with
    | Trained -> (
      try Ok (`Built (Metrics.Spec_cache.built w D.paper_version))
      with e -> Error (Printexc.to_string e))
    | Persisted fetch -> (
      try
        let program =
          Interp.program (Vmm.Machine.interp_of machine D.device_name)
        in
        match Sedspec.Persist.of_string ~program (fetch ()) with
        | Ok spec -> Ok (`Spec spec)
        | Error msg -> Error msg
      with e -> Error (Printexc.to_string e))
  in
  match
    Backoff.retry ~cfg:opts.retry ~seed:backoff_seed
      ~max_attempts:opts.max_attempts step
  with
  | Ok (got, spent) -> (got, !attempts, false, spent)
  | Error (f : string Backoff.failure) ->
    (* All retries burned: rebuild from scratch outside the cache so a
       poisoned source cannot wedge the VM.  A failure here propagates to
       [create]'s bulkhead and marks the VM failed. *)
    let scratch = D.make_machine D.paper_version in
    let built =
      Sedspec.Pipeline.build scratch ~device:D.device_name
        (D.trainer ~cases:!Metrics.Spec_cache.training_cases)
    in
    (`Built built, !attempts, true, f.Backoff.delay_total)

let create ~index ~seed opts =
  let root = Prng.create seed in
  let rng = Prng.split root in
  let backoff_seed = Prng.next root in
  let gov = Governor.create ~config:opts.governor () in
  let base_config =
    Governor.checker_config (Governor.state gov) ~base:Checker.default_config
  in
  match
    let w = W.find opts.device in
    let module D = (val w : W.DEVICE_WORKLOAD) in
    let machine = D.make_machine D.paper_version in
    let got, attempts, fallback, spent = acquire ~backoff_seed opts machine w in
    let checker =
      match got with
      | `Built built ->
        Sedspec.Pipeline.protect ~config:base_config machine
          ~device:D.device_name built
      | `Spec spec ->
        Checker.attach ~config:base_config machine ~spec D.device_name
    in
    Checker.set_deadline checker opts.deadline;
    let coverage = Checker.coverage_create () in
    Checker.set_coverage checker (Some coverage);
    (* The response-direction validator chains in front of the checker's
       interposer, so attach it after [protect]. *)
    let validator =
      if opts.guard then
        Some
          (Guard.Validator.attach machine ~device:D.device_name
             ~profile:(Metrics.Spec_cache.guard_profile w D.paper_version))
      else None
    in
    let guard_drained = ref 0 in
    let aux_drain =
      match validator with
      | None -> fun () -> []
      | Some v ->
        fun () ->
          let l = Guard.Validator.drain_as_checker_anomalies v in
          guard_drained := !guard_drained + List.length l;
          l
    in
    let remedy =
      Remedy.create ~aux_drain ?breaker:opts.breaker machine
        ~device:D.device_name checker
    in
    ({ workload = w; machine; checker; remedy; coverage; validator;
       guard_drained }, attempts, fallback, spent)
  with
  | core, attempts, fallback, spent ->
    {
      index;
      opts;
      rng;
      gov;
      core = Some core;
      fail_reason = "";
      build_attempts = attempts;
      build_fallback = fallback;
      backoff_delay = spent;
      ticks = 0;
      crashes = 0;
      halt_ticks = 0;
      warns = 0;
      anoms_param = 0;
      anoms_indirect = 0;
      anoms_cond = 0;
      anoms_internal = 0;
      stream_rev = [];
    }
  | exception e ->
    {
      index;
      opts;
      rng;
      gov;
      core = None;
      fail_reason = Printexc.to_string e;
      build_attempts = opts.max_attempts;
      build_fallback = true;
      backoff_delay = 0;
      ticks = 0;
      crashes = 0;
      halt_ticks = 0;
      warns = 0;
      anoms_param = 0;
      anoms_indirect = 0;
      anoms_cond = 0;
      anoms_internal = 0;
      stream_rev = [];
    }

let machine t = Option.map (fun c -> c.machine) t.core
let checker t = Option.map (fun c -> c.checker) t.core

let arena t =
  match t.core with
  | None -> None
  | Some c -> Checker.compiled_arena c.checker

let tick t =
  t.ticks <- t.ticks + 1;
  match t.core with
  | None -> ()
  | Some core ->
    let module D = (val core.workload : W.DEVICE_WORKLOAD) in
    let crash = ref 0 in
    (* Bulkhead: whatever the guest workload (or an injected fault the
       checker could not contain) throws stays inside this VM. *)
    (try
       D.soak_case ~mode:W.Sequential ~rng:t.rng ~rare_prob:t.opts.rare_prob
         ~ops:t.opts.ops_per_tick core.machine
     with _ ->
       incr crash;
       t.crashes <- t.crashes + 1);
    let warns = List.length (Vmm.Machine.warnings core.machine) in
    Vmm.Machine.clear_warnings core.machine;
    t.warns <- t.warns + warns;
    (* Classify this tick's anomalies before [Remedy.tick] adjudicates
       (and drains) them.  Deadline overruns already surface here as
       contained [Internal_error] anomalies, so burning them again via
       [deadline_overruns] would double-charge the budget. *)
    let p = ref 0 and i = ref 0 and c = ref 0 and x = ref 0 in
    List.iter
      (fun (a : Checker.anomaly) ->
        match a.Checker.strategy with
        | Checker.Parameter_check -> incr p
        | Checker.Indirect_jump_check -> incr i
        | Checker.Conditional_jump_check -> incr c
        | Checker.Internal_error -> incr x)
      (Checker.anomalies core.checker);
    t.anoms_param <- t.anoms_param + !p;
    t.anoms_indirect <- t.anoms_indirect + !i;
    t.anoms_cond <- t.anoms_cond + !c;
    t.anoms_internal <- t.anoms_internal + !x;
    (* Parameter-check hits are exploitation evidence, not budget noise:
       only the false-positive-prone strategies, contained internal
       errors and bulkhead catches burn the error budget.  Guard
       anomalies pending adjudication count like conditional hits: a
       hostile device must walk this VM down the governor's rungs. *)
    let gpend =
      match core.validator with
      | None -> 0
      | Some v -> List.length (Guard.Validator.anomalies v)
    in
    let burn = !i + !c + !x + !crash + gpend in
    (match Governor.observe t.gov ~burn with
    | Governor.Steady -> ()
    | Governor.Degraded (_, s) | Governor.Restored (_, s) ->
      Checker.set_config core.checker
        (Governor.checker_config s ~base:(Checker.config core.checker)));
    let _events = Remedy.tick core.remedy in
    let halted = Vmm.Machine.halted core.machine in
    if halted then t.halt_ticks <- t.halt_ticks + 1;
    let line =
      Printf.sprintf
        "t%04d %s burn=%d halted=%b warns=%d p=%d i=%d c=%d x=%d crash=%d \
         rb=%d cov=%d/%d"
        t.ticks
        (Governor.state_to_string (Governor.state t.gov))
        (Governor.burn_in_window t.gov)
        halted warns !p !i !c !x !crash
        (Remedy.rollbacks core.remedy)
        (Checker.coverage_node_count core.coverage)
        (Checker.coverage_edge_count core.coverage)
    in
    t.stream_rev <- line :: t.stream_rev

type report = {
  r_vm : int;
  r_device : string;
  r_status : string;
  r_state : Governor.state;
  r_degrades : int;
  r_restores : int;
  r_burn : int;
  r_interactions : int;
  r_anoms_param : int;
  r_anoms_indirect : int;
  r_anoms_cond : int;
  r_anoms_internal : int;
  r_internal_errors : int;
  r_deadline_overruns : int;
  r_crashes : int;
  r_halt_ticks : int;
  r_warns : int;
  r_rollbacks : int;
  r_breaker_tripped : bool;
  r_halted_final : bool;
  r_heals : int;
  r_build_attempts : int;
  r_build_fallback : bool;
  r_backoff_delay : int;
  r_cov_nodes : int;
  r_cov_edges : int;
  r_guard : (int * int) option;
      (** [(drained_anomalies, internal_errors)] when the guard ran. *)
  r_arena : Sedspec.Compile.t option;
  r_stream : string list;
}

let report t =
  let status =
    match t.core with
    | Some _ -> "ok"
    | None -> "failed: " ^ t.fail_reason
  in
  let interactions, internal_errors, overruns, rollbacks, tripped, halted,
      heals, cov_nodes, cov_edges =
    match t.core with
    | None -> (0, 0, 0, 0, false, false, 0, 0, 0)
    | Some core ->
      let stats = Checker.stats core.checker in
      let snap = Remedy.snapshot core.remedy in
      ( stats.Checker.interactions,
        Checker.internal_errors core.checker,
        Checker.deadline_overruns core.checker,
        snap.Remedy.s_rollbacks,
        snap.Remedy.s_breaker_tripped,
        snap.Remedy.s_halted,
        Checker.heals core.checker,
        Checker.coverage_node_count core.coverage,
        Checker.coverage_edge_count core.coverage )
  in
  {
    r_vm = t.index;
    r_device = t.opts.device;
    r_status = status;
    r_state = Governor.state t.gov;
    r_degrades = Governor.degrades t.gov;
    r_restores = Governor.restores t.gov;
    r_burn = Governor.burn_in_window t.gov;
    r_interactions = interactions;
    r_anoms_param = t.anoms_param;
    r_anoms_indirect = t.anoms_indirect;
    r_anoms_cond = t.anoms_cond;
    r_anoms_internal = t.anoms_internal;
    r_internal_errors = internal_errors;
    r_deadline_overruns = overruns;
    r_crashes = t.crashes;
    r_halt_ticks = t.halt_ticks;
    r_warns = t.warns;
    r_rollbacks = rollbacks;
    r_breaker_tripped = tripped;
    r_halted_final = halted;
    r_heals = heals;
    r_build_attempts = t.build_attempts;
    r_build_fallback = t.build_fallback;
    r_backoff_delay = t.backoff_delay;
    r_cov_nodes = cov_nodes;
    r_cov_edges = cov_edges;
    r_guard =
      (match t.core with
      | Some { validator = Some v; guard_drained; _ } ->
        Some (!guard_drained, Guard.Validator.internal_errors v)
      | _ -> None);
    r_arena =
      (* Only cache-built specs carry a shareable arena claim: fallback
         rebuilds and persisted loads own private arenas by design. *)
      (if t.build_fallback then None
       else
         match t.core with
         | Some core when t.opts.spec_source = Trained ->
           Checker.compiled_arena core.checker
         | _ -> None);
    r_stream = List.rev t.stream_rev;
  }
