module Checker = Sedspec.Checker
module Remedy = Sedspec.Remedy
module Backoff = Sedspec_util.Backoff
module Prng = Sedspec_util.Prng
module W = Workload.Samples

type spec_source =
  | Trained
  | Persisted of (unit -> string)
  | Candidate of (unit -> Sedspec.Pipeline.built)

type options = {
  device : string;
  ops_per_tick : int;
  rare_prob : float;
  deadline : int option;
  governor : Governor.config;
  breaker : (int * int) option;
  retry : Backoff.cfg;
  max_attempts : int;
  spec_source : spec_source;
  guard : bool;
  shadow : (unit -> Sedspec.Pipeline.built) option;
}

let default_options ~device =
  {
    device;
    ops_per_tick = 12;
    rare_prob = 0.05;
    deadline = Some 50_000;
    governor = Governor.default_config;
    breaker = Some (2, 8);
    retry = Backoff.default;
    max_attempts = 3;
    spec_source = Trained;
    guard = false;
    shadow = None;
  }

(* Shadow scoreboard: the candidate walks every interaction the enforced
   checker walks, but only its verdicts' {e comparison} is recorded — the
   enforced verdict always decides the interaction. *)
type shadow = {
  s_checker : Checker.t;
  s_revision : int;
  s_provenance : string;
  mutable s_agree : int;
  mutable s_stricter : int;  (** Candidate stricter than enforced. *)
  mutable s_looser : int;  (** Candidate looser — missed detections. *)
  s_sites : (string, int * int * int) Hashtbl.t;  (** Keyed by handler. *)
  mutable s_tick_agree : int;
  mutable s_tick_stricter : int;
  mutable s_tick_looser : int;
  mutable s_first_looser_tick : int option;
  mutable s_looser_rev : int list;  (** Per-tick looser counts, newest first. *)
}

type core = {
  workload : (module W.DEVICE_WORKLOAD);
  machine : Vmm.Machine.t;
  checker : Checker.t;
  remedy : Remedy.t;
  coverage : Checker.coverage;
  validator : Guard.Validator.t option;
  guard_drained : int ref;  (** Guard anomalies fed to the remedy. *)
  shadow : shadow option;
}

type t = {
  index : int;
  opts : options;
  rng : Prng.t;  (** Workload stream; independent of the backoff stream. *)
  gov : Governor.t;
  core : core option;
  fail_reason : string;
  build_attempts : int;
  build_fallback : bool;
  backoff_delay : int;
  mutable ticks : int;
  mutable crashes : int;
  mutable halt_ticks : int;
  mutable warns : int;
  mutable anoms_param : int;
  mutable anoms_indirect : int;
  mutable anoms_cond : int;
  mutable anoms_internal : int;
  mutable stream_rev : string list;
}

(* Spec acquisition: retry the fallible source under seeded backoff, then
   fall back to a fresh (cache-bypassing) pipeline rebuild.  The serving
   machine is built first so a persisted spec parses against the exact
   program it will protect. *)
let acquire ~backoff_seed opts (machine : Vmm.Machine.t)
    (w : (module W.DEVICE_WORKLOAD)) =
  let module D = (val w) in
  let attempts = ref 0 in
  let step ~attempt:_ =
    incr attempts;
    match opts.spec_source with
    | Trained -> (
      try Ok (`Built (Metrics.Spec_cache.built w D.paper_version))
      with e -> Error (Printexc.to_string e))
    | Persisted fetch -> (
      try
        let program =
          Interp.program (Vmm.Machine.interp_of machine D.device_name)
        in
        match Sedspec.Persist.of_string ~program (fetch ()) with
        | Ok spec -> Ok (`Spec spec)
        | Error msg -> Error msg
      with e -> Error (Printexc.to_string e))
    | Candidate fetch -> (
      (* Canary rung: this VM enforces the candidate.  A candidate that
         cannot be built falls through the same retry ladder to the
         scratch trained rebuild — the canary degrades to serving the
         known-good behaviour, never to serving nothing. *)
      try Ok (`Built (fetch ()))
      with e -> Error (Printexc.to_string e))
  in
  match
    Backoff.retry ~cfg:opts.retry ~seed:backoff_seed
      ~max_attempts:opts.max_attempts step
  with
  | Ok (got, spent) -> (got, !attempts, false, spent)
  | Error (f : string Backoff.failure) ->
    (* All retries burned: rebuild from scratch outside the cache so a
       poisoned source cannot wedge the VM.  A failure here propagates to
       [create]'s bulkhead and marks the VM failed. *)
    let scratch = D.make_machine D.paper_version in
    let built =
      Sedspec.Pipeline.build scratch ~device:D.device_name
        (D.trainer ~cases:!Metrics.Spec_cache.training_cases)
    in
    (`Built built, !attempts, true, f.Backoff.delay_total)

let create ~index ~seed opts =
  let root = Prng.create seed in
  let rng = Prng.split root in
  let backoff_seed = Prng.next root in
  let gov = Governor.create ~config:opts.governor () in
  let base_config =
    Governor.checker_config (Governor.state gov) ~base:Checker.default_config
  in
  match
    let w = W.find opts.device in
    let module D = (val w : W.DEVICE_WORKLOAD) in
    let machine = D.make_machine D.paper_version in
    let got, attempts, fallback, spent = acquire ~backoff_seed opts machine w in
    let checker =
      match got with
      | `Built built ->
        Sedspec.Pipeline.protect ~config:base_config machine
          ~device:D.device_name built
      | `Spec spec ->
        Checker.attach ~config:base_config machine ~spec D.device_name
    in
    Checker.set_deadline checker opts.deadline;
    let coverage = Checker.coverage_create () in
    Checker.set_coverage checker (Some coverage);
    (* Shadow walk: a second, non-enforcing checker over the candidate
       spec, walked in lockstep by wrapping the enforced interposer.  The
       candidate's verdict is scored against the enforced one and then
       discarded — shadow mode can never change what the VM does.  Wired
       before the validator so the guard chains in front of both. *)
    let shadow =
      match opts.shadow with
      | None -> None
      | Some fetch ->
        let cand = fetch () in
        let interp = Vmm.Machine.interp_of machine D.device_name in
        let s_checker =
          Checker.create
            ~config:(Checker.config checker)
            ~compiled:cand.Sedspec.Pipeline.arena
            ~spec:cand.Sedspec.Pipeline.spec
            ~device_arena:(Interp.arena interp)
            ~guest:(Vmm.Guest_mem.access (Vmm.Machine.ram machine))
            ()
        in
        Checker.set_deadline s_checker opts.deadline;
        let sh =
          {
            s_checker;
            s_revision = Sedspec.Es_cfg.revision cand.Sedspec.Pipeline.spec;
            s_provenance =
              Sedspec.Es_cfg.provenance_to_string
                (Sedspec.Es_cfg.provenance cand.Sedspec.Pipeline.spec);
            s_agree = 0;
            s_stricter = 0;
            s_looser = 0;
            s_sites = Hashtbl.create 8;
            s_tick_agree = 0;
            s_tick_stricter = 0;
            s_tick_looser = 0;
            s_first_looser_tick = None;
            s_looser_rev = [];
          }
        in
        (* Both specs need their sync instrumentation, but the interp has
           one sync slot: install the union of both sync-point sets and
           dispatch each report to the checkers that asked for that
           block, filtered to the locals each one declared. *)
        let base_spec =
          match got with
          | `Built b -> b.Sedspec.Pipeline.spec
          | `Spec s -> s
        in
        let to_tbl spec =
          let tbl = Hashtbl.create 16 in
          List.iter
            (fun (bref, locals) -> Hashtbl.replace tbl bref locals)
            (Sedspec.Es_cfg.sync_points spec);
          tbl
        in
        let base_sp = to_tbl base_spec
        and cand_sp = to_tbl cand.Sedspec.Pipeline.spec in
        let union =
          let tbl = Hashtbl.create 16 in
          let add (bref, locals) =
            let prev =
              Option.value (Hashtbl.find_opt tbl bref) ~default:[]
            in
            Hashtbl.replace tbl bref
              (List.sort_uniq compare (prev @ locals))
          in
          List.iter add (Sedspec.Es_cfg.sync_points base_spec);
          List.iter add (Sedspec.Es_cfg.sync_points cand.Sedspec.Pipeline.spec);
          List.sort compare (Hashtbl.fold (fun b l acc -> (b, l) :: acc) tbl [])
        in
        (* Pre-resolve each delivery against the union's locals: when a
           spec asked for every local the union carries at that block
           (the common case — base and candidate are near-identical),
           the event is forwarded without the per-event filter
           allocation. *)
        let plan tbl =
          let plans = Hashtbl.create 16 in
          List.iter
            (fun (bref, ulocals) ->
              match Hashtbl.find_opt tbl bref with
              | None -> ()
              | Some locals ->
                let locals = List.sort_uniq compare locals in
                Hashtbl.replace plans bref
                  (if locals = ulocals then `Full else `Subset locals))
            union;
          plans
        in
        let base_plan = plan base_sp and cand_plan = plan cand_sp in
        (* When a spec wants every union event in full (base and
           candidate sync sets usually coincide), skip the per-event
           plan lookup entirely. *)
        let all_full plans =
          List.for_all
            (fun (bref, _) -> Hashtbl.find_opt plans bref = Some `Full)
            union
        in
        let deliver plans target bref vals =
          match Hashtbl.find_opt plans bref with
          | None -> ()
          | Some `Full -> Checker.record_sync target bref vals
          | Some (`Subset locals) ->
            Checker.record_sync target bref
              (List.filter (fun (n, _) -> List.mem n locals) vals)
        in
        let deliver_base =
          if all_full base_plan then Checker.record_sync checker
          else deliver base_plan checker
        and deliver_cand =
          if all_full cand_plan then Checker.record_sync s_checker
          else deliver cand_plan s_checker
        in
        Interp.set_sync_points interp union ~on_sync:(fun bref vals ->
            deliver_base bref vals;
            deliver_cand bref vals);
        (* Lockstep wrapper: run the candidate first at both seams (its
           verdict cannot block, so ordering only affects bookkeeping),
           score, return the enforced verdict. *)
        let enforced =
          match Vmm.Machine.interposer_of machine D.device_name with
          | Some ip -> ip
          | None -> assert false (* [protect]/[attach] just installed it *)
        in
        let sip = Checker.interposer s_checker in
        let rank = function
          | Vmm.Machine.Allow -> 0
          | Vmm.Machine.Warn _ -> 1
          | Vmm.Machine.Halt _ -> 2
        in
        let score (req : Vmm.Machine.request) cand_v enf_v =
          let a, s, l =
            match compare (rank cand_v) (rank enf_v) with
            | 0 -> (1, 0, 0)
            | n when n > 0 -> (0, 1, 0)
            | _ -> (0, 0, 1)
          in
          sh.s_agree <- sh.s_agree + a;
          sh.s_stricter <- sh.s_stricter + s;
          sh.s_looser <- sh.s_looser + l;
          sh.s_tick_agree <- sh.s_tick_agree + a;
          sh.s_tick_stricter <- sh.s_tick_stricter + s;
          sh.s_tick_looser <- sh.s_tick_looser + l;
          let pa, ps, pl =
            Option.value
              (Hashtbl.find_opt sh.s_sites req.Vmm.Machine.handler)
              ~default:(0, 0, 0)
          in
          Hashtbl.replace sh.s_sites req.Vmm.Machine.handler
            (pa + a, ps + s, pl + l)
        in
        Vmm.Machine.set_interposer machine D.device_name
          {
            Vmm.Machine.before =
              (fun req ->
                let cand_v = sip.Vmm.Machine.before req in
                let enf_v = enforced.Vmm.Machine.before req in
                score req cand_v enf_v;
                enf_v);
            after =
              (fun req outcome ->
                let cand_v = sip.Vmm.Machine.after req outcome in
                let enf_v = enforced.Vmm.Machine.after req outcome in
                score req cand_v enf_v;
                enf_v);
          };
        Some sh
    in
    (* The response-direction validator chains in front of the checker's
       interposer, so attach it after [protect]. *)
    let validator =
      if opts.guard then
        Some
          (Guard.Validator.attach machine ~device:D.device_name
             ~profile:(Metrics.Spec_cache.guard_profile w D.paper_version))
      else None
    in
    let guard_drained = ref 0 in
    let aux_drain =
      match validator with
      | None -> fun () -> []
      | Some v ->
        fun () ->
          let l = Guard.Validator.drain_as_checker_anomalies v in
          guard_drained := !guard_drained + List.length l;
          l
    in
    let remedy =
      Remedy.create ~aux_drain ?breaker:opts.breaker machine
        ~device:D.device_name checker
    in
    ({ workload = w; machine; checker; remedy; coverage; validator;
       guard_drained; shadow }, attempts, fallback, spent)
  with
  | core, attempts, fallback, spent ->
    {
      index;
      opts;
      rng;
      gov;
      core = Some core;
      fail_reason = "";
      build_attempts = attempts;
      build_fallback = fallback;
      backoff_delay = spent;
      ticks = 0;
      crashes = 0;
      halt_ticks = 0;
      warns = 0;
      anoms_param = 0;
      anoms_indirect = 0;
      anoms_cond = 0;
      anoms_internal = 0;
      stream_rev = [];
    }
  | exception e ->
    {
      index;
      opts;
      rng;
      gov;
      core = None;
      fail_reason = Printexc.to_string e;
      build_attempts = opts.max_attempts;
      build_fallback = true;
      backoff_delay = 0;
      ticks = 0;
      crashes = 0;
      halt_ticks = 0;
      warns = 0;
      anoms_param = 0;
      anoms_indirect = 0;
      anoms_cond = 0;
      anoms_internal = 0;
      stream_rev = [];
    }

let machine t = Option.map (fun c -> c.machine) t.core
let checker t = Option.map (fun c -> c.checker) t.core

let arena t =
  match t.core with
  | None -> None
  | Some c -> Checker.compiled_arena c.checker

let tick t =
  t.ticks <- t.ticks + 1;
  match t.core with
  | None -> ()
  | Some core ->
    let module D = (val core.workload : W.DEVICE_WORKLOAD) in
    (match core.shadow with
    | Some sh ->
      sh.s_tick_agree <- 0;
      sh.s_tick_stricter <- 0;
      sh.s_tick_looser <- 0
    | None -> ());
    let crash = ref 0 in
    (* Bulkhead: whatever the guest workload (or an injected fault the
       checker could not contain) throws stays inside this VM. *)
    (try
       D.soak_case ~mode:W.Sequential ~rng:t.rng ~rare_prob:t.opts.rare_prob
         ~ops:t.opts.ops_per_tick core.machine
     with _ ->
       incr crash;
       t.crashes <- t.crashes + 1);
    let warns = List.length (Vmm.Machine.warnings core.machine) in
    Vmm.Machine.clear_warnings core.machine;
    t.warns <- t.warns + warns;
    (* Classify this tick's anomalies before [Remedy.tick] adjudicates
       (and drains) them.  Deadline overruns already surface here as
       contained [Internal_error] anomalies, so burning them again via
       [deadline_overruns] would double-charge the budget. *)
    let p = ref 0 and i = ref 0 and c = ref 0 and x = ref 0 in
    List.iter
      (fun (a : Checker.anomaly) ->
        match a.Checker.strategy with
        | Checker.Parameter_check -> incr p
        | Checker.Indirect_jump_check -> incr i
        | Checker.Conditional_jump_check -> incr c
        | Checker.Internal_error -> incr x)
      (Checker.anomalies core.checker);
    t.anoms_param <- t.anoms_param + !p;
    t.anoms_indirect <- t.anoms_indirect + !i;
    t.anoms_cond <- t.anoms_cond + !c;
    t.anoms_internal <- t.anoms_internal + !x;
    (* Parameter-check hits are exploitation evidence, not budget noise:
       only the false-positive-prone strategies, contained internal
       errors and bulkhead catches burn the error budget.  Guard
       anomalies pending adjudication count like conditional hits: a
       hostile device must walk this VM down the governor's rungs. *)
    let gpend =
      match core.validator with
      | None -> 0
      | Some v -> List.length (Guard.Validator.anomalies v)
    in
    let burn = !i + !c + !x + !crash + gpend in
    (match Governor.observe t.gov ~burn with
    | Governor.Steady -> ()
    | Governor.Degraded (_, s) | Governor.Restored (_, s) ->
      let cfg = Governor.checker_config s ~base:(Checker.config core.checker) in
      Checker.set_config core.checker cfg;
      (* The candidate must be judged under the rung the enforced checker
         runs at, or every degradation would show up as spurious
         stricter/looser skew. *)
      match core.shadow with
      | Some sh -> Checker.set_config sh.s_checker cfg
      | None -> ());
    let _events = Remedy.tick core.remedy in
    (match core.shadow with
    | Some sh ->
      (* Candidate anomalies are advisory: drain them (bounded memory)
         and record when the first looser verdict landed — the rollout's
         deterministic rollback-latency clock. *)
      ignore (Checker.drain_anomalies sh.s_checker : Checker.anomaly list);
      sh.s_looser_rev <- sh.s_tick_looser :: sh.s_looser_rev;
      if sh.s_tick_looser > 0 && sh.s_first_looser_tick = None then
        sh.s_first_looser_tick <- Some t.ticks
    | None -> ());
    let halted = Vmm.Machine.halted core.machine in
    if halted then t.halt_ticks <- t.halt_ticks + 1;
    let line =
      Printf.sprintf
        "t%04d %s burn=%d halted=%b warns=%d p=%d i=%d c=%d x=%d crash=%d \
         rb=%d cov=%d/%d"
        t.ticks
        (Governor.state_to_string (Governor.state t.gov))
        (Governor.burn_in_window t.gov)
        halted warns !p !i !c !x !crash
        (Remedy.rollbacks core.remedy)
        (Checker.coverage_node_count core.coverage)
        (Checker.coverage_edge_count core.coverage)
    in
    (* Shadow-less streams keep their exact historical bytes: the
       isolation oracle compares them across runs. *)
    let line =
      match core.shadow with
      | None -> line
      | Some sh ->
        Printf.sprintf "%s sh=%d/%d/%d" line sh.s_tick_agree
          sh.s_tick_stricter sh.s_tick_looser
    in
    t.stream_rev <- line :: t.stream_rev

type shadow_report = {
  sh_revision : int;
  sh_provenance : string;
  sh_agree : int;
  sh_stricter : int;
  sh_looser : int;
  sh_first_looser_tick : int option;
  sh_tick_looser : int list;  (** Per-tick looser counts, oldest first. *)
  sh_sites : (string * (int * int * int)) list;
}

type report = {
  r_vm : int;
  r_device : string;
  r_status : string;
  r_state : Governor.state;
  r_degrades : int;
  r_restores : int;
  r_burn : int;
  r_interactions : int;
  r_anoms_param : int;
  r_anoms_indirect : int;
  r_anoms_cond : int;
  r_anoms_internal : int;
  r_internal_errors : int;
  r_deadline_overruns : int;
  r_crashes : int;
  r_halt_ticks : int;
  r_warns : int;
  r_rollbacks : int;
  r_breaker_tripped : bool;
  r_halted_final : bool;
  r_heals : int;
  r_build_attempts : int;
  r_build_fallback : bool;
  r_backoff_delay : int;
  r_cov_nodes : int;
  r_cov_edges : int;
  r_guard : (int * int) option;
      (** [(drained_anomalies, internal_errors)] when the guard ran. *)
  r_shadow : shadow_report option;
  r_arena : Sedspec.Compile.t option;
  r_stream : string list;
}

let report t =
  let status =
    match t.core with
    | Some _ -> "ok"
    | None -> "failed: " ^ t.fail_reason
  in
  let interactions, internal_errors, overruns, rollbacks, tripped, halted,
      heals, cov_nodes, cov_edges =
    match t.core with
    | None -> (0, 0, 0, 0, false, false, 0, 0, 0)
    | Some core ->
      let stats = Checker.stats core.checker in
      let snap = Remedy.snapshot core.remedy in
      ( stats.Checker.interactions,
        Checker.internal_errors core.checker,
        Checker.deadline_overruns core.checker,
        snap.Remedy.s_rollbacks,
        snap.Remedy.s_breaker_tripped,
        snap.Remedy.s_halted,
        Checker.heals core.checker,
        Checker.coverage_node_count core.coverage,
        Checker.coverage_edge_count core.coverage )
  in
  {
    r_vm = t.index;
    r_device = t.opts.device;
    r_status = status;
    r_state = Governor.state t.gov;
    r_degrades = Governor.degrades t.gov;
    r_restores = Governor.restores t.gov;
    r_burn = Governor.burn_in_window t.gov;
    r_interactions = interactions;
    r_anoms_param = t.anoms_param;
    r_anoms_indirect = t.anoms_indirect;
    r_anoms_cond = t.anoms_cond;
    r_anoms_internal = t.anoms_internal;
    r_internal_errors = internal_errors;
    r_deadline_overruns = overruns;
    r_crashes = t.crashes;
    r_halt_ticks = t.halt_ticks;
    r_warns = t.warns;
    r_rollbacks = rollbacks;
    r_breaker_tripped = tripped;
    r_halted_final = halted;
    r_heals = heals;
    r_build_attempts = t.build_attempts;
    r_build_fallback = t.build_fallback;
    r_backoff_delay = t.backoff_delay;
    r_cov_nodes = cov_nodes;
    r_cov_edges = cov_edges;
    r_guard =
      (match t.core with
      | Some { validator = Some v; guard_drained; _ } ->
        Some (!guard_drained, Guard.Validator.internal_errors v)
      | _ -> None);
    r_shadow =
      (match t.core with
      | Some { shadow = Some sh; _ } ->
        Some
          {
            sh_revision = sh.s_revision;
            sh_provenance = sh.s_provenance;
            sh_agree = sh.s_agree;
            sh_stricter = sh.s_stricter;
            sh_looser = sh.s_looser;
            sh_first_looser_tick = sh.s_first_looser_tick;
            sh_tick_looser = List.rev sh.s_looser_rev;
            sh_sites =
              List.sort compare
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) sh.s_sites []);
          }
      | _ -> None);
    r_arena =
      (* Only cache-built specs carry a shareable arena claim: fallback
         rebuilds and persisted loads own private arenas by design. *)
      (if t.build_fallback then None
       else
         match t.core with
         | Some core when t.opts.spec_source = Trained ->
           Checker.compiled_arena core.checker
         | _ -> None);
    r_stream = List.rev t.stream_rev;
  }
