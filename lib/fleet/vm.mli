(** One protected machine inside its bulkhead.

    A [Vm.t] owns everything with mutable state — machine, checker,
    remedy supervisor, governor, PRNG, coverage accumulator — so fleet
    members share nothing but the read-only spec cache, and a whole VM
    lifecycle (build, serve, degrade, heal) can run on any domain.  The
    bulkhead guarantee is structural: {!create} and {!tick} never let an
    exception escape — a spec that cannot be built marks the VM failed,
    a workload crash is counted and contained — so one misbehaving guest
    can never halt or starve its siblings.

    Spec acquisition retries under {!Sedspec_util.Backoff} (seeded,
    deterministic): transient {!Metrics.Spec_cache} build failures and
    CRC-failing {!Sedspec.Persist} loads are retried, then fall back to
    a fresh pipeline rebuild outside the cache — a poisoned source never
    wedges the VM. *)

type spec_source =
  | Trained  (** Build (or fetch) via the single-flight spec cache. *)
  | Persisted of (unit -> string)
      (** Fetch serialised spec text (e.g. from distribution storage);
          called once per load attempt, so a transient corruption can
          clear on retry.  Parsed with [Persist.of_string] — CRC and
          structural failures count as attempts. *)
  | Candidate of (unit -> Sedspec.Pipeline.built)
      (** Enforce a candidate spec build — the rollout ladder's canary
          rung.  Fetch failures retry like the other sources and fall
          back to the scratch trained rebuild, so a broken candidate
          degrades the canary to known-good behaviour rather than
          failing the VM.  Candidate VMs never claim a shared arena
          (their arena legitimately differs from their device's base
          arena). *)

type options = {
  device : string;  (** fdc, ehci, pcnet, sdhci or scsi. *)
  ops_per_tick : int;  (** Logical soak operations per tick. *)
  rare_prob : float;  (** Rare-command probability (FP source, §VII-B1). *)
  deadline : int option;  (** Watchdog step budget ({!Sedspec.Checker.set_deadline}). *)
  governor : Governor.config;
  breaker : (int * int) option;  (** Remedy circuit breaker. *)
  retry : Sedspec_util.Backoff.cfg;
  max_attempts : int;  (** Spec-acquisition attempts before fallback. *)
  spec_source : spec_source;
  guard : bool;
      (** Attach the guest-side response validator (trained via
          {!Metrics.Spec_cache.guard_profile}) in front of the checker,
          feed its anomalies to the remedy supervisor and charge pending
          guard anomalies to the governor's burn. *)
  shadow : (unit -> Sedspec.Pipeline.built) option;
      (** Walk a candidate spec in lockstep with the enforced one: a
          second checker over the candidate sees every interaction
          (before and after seams — the walk must see the full request
          stream, since conditional checks couple requests through sync
          values), its verdict is compared with the
          enforced verdict and discarded — the enforced verdict always
          decides.  Agreement is scored per anomaly site (handler) into
          the report's [r_shadow] scoreboard; governor rung changes apply
          to both checkers so degradation cannot masquerade as
          disagreement.  Sync instrumentation installs the union of both
          specs' sync points, each checker receiving only the locals it
          declared.  Limitation: the inline indirect-call guard remains
          wired to the enforced checker only — candidate indirect-target
          deltas surface through the walk, not the inline seam.  A
          candidate build failure fails the VM's bulkhead (the rollout
          treats failed shadow VMs as a rejection signal).  The
          steady-state walk cost is bounded by the bench's
          shadow-overhead budget ([rollout.threshold.overhead_max],
          15%): sync events reach both checkers through a pre-resolved
          allocation-free dispatch, and per-VM setup (one extra checker
          over the already-lowered candidate arena) amortises across
          ticks. *)
}

val default_options : device:string -> options
(** 12 ops/tick, rare probability 0.05, deadline 50k steps, default
    governor, breaker (2, 8), default backoff with 3 attempts, trained
    spec, no guard, no shadow. *)

type t

val create : index:int -> seed:int64 -> options -> t
(** Build the VM.  Never raises (unknown devices excepted — validate
    upstream): a failed spec acquisition after retries {e and} fallback
    yields a VM whose report carries the failure and whose {!tick}s are
    no-ops. *)

val machine : t -> Vmm.Machine.t option
(** [None] when the VM failed to build.  Exposed (with {!checker}) so a
    fault-injection campaign can arm faults on specific fleet members. *)

val checker : t -> Sedspec.Checker.t option

val arena : t -> Sedspec.Compile.t option
(** The compiled arena this VM's checker walks.  For cache-acquired
    specs this is the one shared immutable arena of the (device,
    version) — physically equal ([==]) across every VM and Runner
    domain; for fallback/persisted sources it is private. *)

val tick : t -> unit
(** One supervision period: run the benign workload (bulkhead-wrapped),
    account warnings/anomalies/overruns, feed the burn to the governor
    (applying any rung change to the checker config), then run the
    remedy supervisor's tick.  Appends one line to the verdict stream. *)

type shadow_report = {
  sh_revision : int;  (** Candidate spec revision. *)
  sh_provenance : string;  (** Candidate provenance tag. *)
  sh_agree : int;  (** Verdict comparisons where both ranked equal. *)
  sh_stricter : int;  (** Candidate stricter (would have escalated). *)
  sh_looser : int;  (** Candidate looser (would have missed). *)
  sh_first_looser_tick : int option;
      (** Tick of the first looser verdict — the rollout's deterministic
          rollback-latency clock. *)
  sh_tick_looser : int list;
      (** Per-tick looser counts, oldest first — fed to the rollout's
          {!Governor.Budget} agreement window. *)
  sh_sites : (string * (int * int * int)) list;
      (** Per-handler (agree, stricter, looser), sorted by handler. *)
}

type report = {
  r_vm : int;
  r_device : string;
  r_status : string;  (** ["ok"] or ["failed: <reason>"]. *)
  r_state : Governor.state;  (** Final governor rung. *)
  r_degrades : int;
  r_restores : int;
  r_burn : int;  (** Final window burn. *)
  r_interactions : int;  (** Checker-inspected interactions. *)
  r_anoms_param : int;
  r_anoms_indirect : int;
  r_anoms_cond : int;
  r_anoms_internal : int;
  r_internal_errors : int;
  r_deadline_overruns : int;
  r_crashes : int;  (** Workload exceptions the bulkhead contained. *)
  r_halt_ticks : int;  (** Ticks that ended with the machine halted. *)
  r_warns : int;
  r_rollbacks : int;
  r_breaker_tripped : bool;
  r_halted_final : bool;
  r_heals : int;
  r_build_attempts : int;
  r_build_fallback : bool;  (** Spec came from the fresh-rebuild fallback. *)
  r_backoff_delay : int;  (** Logical backoff units spent acquiring the spec. *)
  r_cov_nodes : int;
  r_cov_edges : int;
  r_guard : (int * int) option;
      (** [(drained_anomalies, internal_errors)] of the response
          validator; [None] when the guard was not enabled — reports and
          their JSON are unchanged for guard-less fleets. *)
  r_shadow : shadow_report option;
      (** The shadow-walk scoreboard; [None] when no candidate was
          shadowed — shadow-less reports (including their per-tick
          stream lines) keep their exact historical bytes. *)
  r_arena : Sedspec.Compile.t option;
      (** The shared arena, when the spec came from the cache ([None]
          for fallback rebuilds and persisted sources).  Lets the
          supervisor assert physical sharing across the whole fleet. *)
  r_stream : string list;
      (** Per-tick verdict/coverage stream, oldest first: the bulkhead
          isolation oracle compares these byte-for-byte. *)
}

val report : t -> report
