(* Behaviour-delta reports (see .mli). *)

module P = Devir.Program
module Json = Sedspec_util.Json
module Table = Sedspec_util.Table

type witness = {
  w_profile : string;
  w_field : string;
  w_detail : string;
  w_original_len : int;
  w_input : Input.t;
  w_blocks : P.bref list;
  w_roots : P.bref list;
}

type cve_delta = {
  cd_cve : string;
  cd_device : string;
  cd_vulnerable : Devices.Qemu_version.t;
  cd_patched : Devices.Qemu_version.t;
  cd_static : Sedspec.Attrib.block_change list;
  cd_changed : P.bref list;
  cd_roots : P.bref list;
  cd_witnesses : witness list;
  cd_clusters : (P.bref list * int list) list;
  cd_executed : int;
  cd_divergent : int;
  cd_localized : bool;
}

type t = { seed : int64; budget : int; deltas : cve_delta list }

(* --- JSON ---------------------------------------------------------------- *)

let json_brefs bs = Json.List (List.map (fun b -> Json.Str (P.bref_to_string b)) bs)

let json_witness w =
  Json.Obj
    [
      ("profile", Json.Str w.w_profile);
      ("field", Json.Str w.w_field);
      ("detail", Json.Str w.w_detail);
      ("original_steps", Json.Int w.w_original_len);
      ("steps", Json.Int (Array.length w.w_input.Input.steps));
      ("origin", Json.Str (Input.origin_to_string w.w_input.Input.origin));
      ("blocks", json_brefs w.w_blocks);
      ("roots", json_brefs w.w_roots);
      ("input", Json.Str (Input.to_string w.w_input));
    ]

let json_delta d =
  Json.Obj
    [
      ("cve", Json.Str d.cd_cve);
      ("device", Json.Str d.cd_device);
      ("vulnerable", Json.Str (Devices.Qemu_version.to_string d.cd_vulnerable));
      ("patched", Json.Str (Devices.Qemu_version.to_string d.cd_patched));
      ( "static_diff",
        Json.List
          (List.map
             (fun (c : Sedspec.Attrib.block_change) ->
               Json.Obj
                 [
                   ("block", Json.Str (P.bref_to_string c.c_bref));
                   ( "kind",
                     Json.Str (Sedspec.Attrib.change_kind_to_string c.c_kind)
                   );
                 ])
             d.cd_static) );
      ("changed_blocks", json_brefs d.cd_changed);
      ("root_blocks", json_brefs d.cd_roots);
      ("localized", Json.Bool d.cd_localized);
      ("executed", Json.Int d.cd_executed);
      ("divergent_inputs", Json.Int d.cd_divergent);
      ("witnesses", Json.List (List.map json_witness d.cd_witnesses));
      ( "clusters",
        Json.List
          (List.map
             (fun (roots, idxs) ->
               Json.Obj
                 [
                   ("roots", json_brefs roots);
                   ("witnesses", Json.List (List.map (fun i -> Json.Int i) idxs));
                 ])
             d.cd_clusters) );
    ]

(* Deliberately excludes job count and wall-clock: byte-identical across
   [--jobs] values. *)
let to_json t =
  Json.Obj
    [
      ("tool", Json.Str "locate");
      ("seed", Json.Str (Int64.to_string t.seed));
      ("budget", Json.Int t.budget);
      ("deltas", Json.List (List.map json_delta t.deltas));
    ]

let to_string t = Json.to_string (to_json t)

(* --- Pretty table -------------------------------------------------------- *)

let brefs_to_string = function
  | [] -> "-"
  | bs -> String.concat " " (List.map P.bref_to_string bs)

let pp ppf t =
  Format.fprintf ppf "deviation locator: seed %Ld, budget %d/CVE@."
    t.seed t.budget;
  List.iter
    (fun d ->
      Format.fprintf ppf "@.%s  (%s %s -> %s)  %s@." d.cd_cve d.cd_device
        (Devices.Qemu_version.to_string d.cd_vulnerable)
        (Devices.Qemu_version.to_string d.cd_patched)
        (if d.cd_localized then "localized" else "NOT LOCALIZED");
      Format.fprintf ppf "  static diff : %s@."
        (match d.cd_static with
        | [] -> "-"
        | cs ->
            String.concat " "
              (List.map
                 (fun (c : Sedspec.Attrib.block_change) ->
                   Printf.sprintf "%s(%s)"
                     (P.bref_to_string c.c_bref)
                     (Sedspec.Attrib.change_kind_to_string c.c_kind))
                 cs));
      Format.fprintf ppf "  changed     : %s@." (brefs_to_string d.cd_changed);
      Format.fprintf ppf "  roots       : %s@." (brefs_to_string d.cd_roots);
      Format.fprintf ppf "  evaluations : %d (%d divergent)@." d.cd_executed
        d.cd_divergent;
      if d.cd_witnesses <> [] then begin
        let rows =
          List.map
            (fun w ->
              [
                w.w_profile;
                w.w_field;
                string_of_int w.w_original_len;
                string_of_int (Array.length w.w_input.Input.steps);
                Input.origin_to_string w.w_input.Input.origin;
                brefs_to_string w.w_roots;
              ])
            d.cd_witnesses
        in
        Format.fprintf ppf "%s"
          (Table.render
             ~align:Table.[ Left; Left; Right; Right; Left; Left ]
             ~header:[ "profile"; "field"; "orig"; "min"; "origin"; "roots" ]
             rows)
      end)
    t.deltas;
  (* Summary: one row per CVE, the report's headline table. *)
  Format.fprintf ppf "@.%s"
    (Table.render
       ~align:Table.[ Left; Left; Left; Right; Right; Right; Left ]
       ~header:
         [ "CVE"; "device"; "pair"; "witnesses"; "blocks"; "roots"; "localized" ]
       (List.map
          (fun d ->
            [
              d.cd_cve;
              d.cd_device;
              Devices.Qemu_version.to_string d.cd_vulnerable
              ^ "->"
              ^ Devices.Qemu_version.to_string d.cd_patched;
              string_of_int (List.length d.cd_witnesses);
              string_of_int (List.length d.cd_changed);
              string_of_int (List.length d.cd_roots);
              (if d.cd_localized then "yes" else "no");
            ])
          t.deltas))
