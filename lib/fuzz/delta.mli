(** Behaviour-delta reports: what the cross-version deviation locator
    found for each catalogued CVE.

    A report carries, per CVE, the static ground truth (label-level
    program diff of the version-gated models, {!Sedspec.Attrib}), the
    dynamically localized changed-block set, its dominator roots, the
    minimized witness sequences, and witness clusters keyed by root
    blocks — the auto-generated "what changed across this patch" table
    the attack catalogue grows from. *)

type witness = {
  w_profile : string;  (** Cross-version profile ([xver-*]) that diverged. *)
  w_field : string;  (** Diverging oracle field. *)
  w_detail : string;
  w_original_len : int;  (** Steps before ddmin. *)
  w_input : Input.t;  (** Minimized witness sequence. *)
  w_blocks : Devir.Program.bref list;
      (** Blocks this witness implicates (coverage/anomaly symmetric
          difference across the version pair), sorted. *)
  w_roots : Devir.Program.bref list;
      (** [w_blocks] collapsed to dominator roots in the patched
          program — the cluster key. *)
}

type cve_delta = {
  cd_cve : string;
  cd_device : string;
  cd_vulnerable : Devices.Qemu_version.t;
  cd_patched : Devices.Qemu_version.t;
  cd_static : Sedspec.Attrib.block_change list;
      (** Ground truth: blocks the version gate actually patches. *)
  cd_changed : Devir.Program.bref list;
      (** Union of witness block sets plus the full exploit stream's
          device-trace diff, sorted. *)
  cd_roots : Devir.Program.bref list;
      (** [cd_changed] collapsed to dominator roots. *)
  cd_witnesses : witness list;
  cd_clusters : (Devir.Program.bref list * int list) list;
      (** Witness indices grouped by identical root set. *)
  cd_executed : int;  (** Fuzz evaluations spent on this CVE. *)
  cd_divergent : int;  (** Inputs that diverged across the version pair. *)
  cd_localized : bool;
      (** Every statically patched block appears in [cd_changed]. *)
}

type t = { seed : int64; budget : int; deltas : cve_delta list }

val to_json : t -> Sedspec_util.Json.t
(** Deterministic; excludes job count and wall-clock, so output is
    byte-identical across [--jobs] values. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
(** Pretty per-CVE tables: version pair, static diff vs localized
    blocks, and one row per minimized witness. *)
