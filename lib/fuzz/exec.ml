(* Differential execution of fuzzer inputs.

   Every input replays under pairs of checker configurations (a
   [profile]); the production profiles pit the compiled walk engine
   against the interpreted reference in both working modes.  Everything
   observable about a replay is folded into an [obs] record of strings,
   and any field-wise difference between the two sides of a profile is a
   divergence — by construction the two engines are bit-for-bit
   equivalent, so a surviving divergence is a checker bug. *)

module C = Sedspec.Checker

type spec_source = Trained | Minimized

let source_key = function Trained -> "trained" | Minimized -> "min"

type profile = {
  pname : string;
  left : C.config;
  right : C.config;
  left_source : spec_source;
  right_source : spec_source;
  left_version : Devices.Qemu_version.t option;
      (** Replay the left side at this device version instead of the
          input's own — the cross-version (deviation-locator) seam. *)
  right_version : Devices.Qemu_version.t option;
  lenient : bool;
      (** Mask walk-internal observables (stats, node/edge coverage) that
          legitimately differ across spec sources; verdict-level fields
          are always compared. *)
}

let profile ~mode ~pname =
  {
    pname;
    left = { C.default_config with C.mode; engine = C.Compiled };
    right = { C.default_config with C.mode; engine = C.Interpreted };
    left_source = Trained;
    right_source = Trained;
    left_version = None;
    right_version = None;
    lenient = false;
  }

let default_profiles =
  [
    profile ~mode:C.Protection ~pname:"protection";
    profile ~mode:C.Enhancement ~pname:"enhancement";
  ]

(* Minimized-vs-trained oracles: same engine and mode on both sides, the
   minimized spec on the left.  A pruned node is crossed as a chain block
   by the walker, so everything verdict-level — I/O results, anomalies,
   warnings, halts, shadow state, crashes — must stay bit-identical;
   only node-walk statistics and coverage may differ (hence [lenient]). *)
let minimized_profiles =
  List.concat_map
    (fun (mode, mname) ->
      List.map
        (fun (engine, ename) ->
          {
            pname = Printf.sprintf "min-%s-%s" mname ename;
            left = { C.default_config with C.mode; engine };
            right = { C.default_config with C.mode; engine };
            left_source = Minimized;
            right_source = Trained;
            left_version = None;
            right_version = None;
            lenient = true;
          })
        [ (C.Compiled, "compiled"); (C.Interpreted, "interp") ])
    [ (C.Protection, "protection"); (C.Enhancement, "enhancement") ]

let all_profiles = default_profiles @ minimized_profiles

(* Cross-version oracles: the same engine, mode and spec source on both
   sides, but the device model (and the spec trained on it) at the CVE's
   vulnerable version on the left and its first patched version on the
   right.  A field difference here is not a checker bug — it is a
   behavioural deviation between adjacent device versions, the raw
   material of the deviation locator.  Lenient: walk statistics and
   coverage legitimately differ across versions (the specs are trained on
   different models); verdict-level fields — I/O results, anomalies,
   warnings, halts, shadow bytes, crashes — are always compared. *)
let cross_version_profiles ~vuln ~patched =
  List.map
    (fun (mode, mname) ->
      {
        pname = Printf.sprintf "xver-%s" mname;
        left = { C.default_config with C.mode; engine = C.Compiled };
        right = { C.default_config with C.mode; engine = C.Compiled };
        left_source = Trained;
        right_source = Trained;
        left_version = Some vuln;
        right_version = Some patched;
        lenient = true;
      })
    [ (C.Protection, "protection"); (C.Enhancement, "enhancement") ]

(* --- Machine factory --------------------------------------------------- *)

(* [W.make_machine] rebuilds the whole device program per call; at fuzzing
   throughput that dominates, so share one [Devices.Device.t] (immutable
   program) per (device, version) and mint only fresh arenas. *)

let device_ctor name : (Devices.Qemu_version.t -> Devices.Device.t) option =
  if name = Devices.Fdc.name then Some (fun version -> Devices.Fdc.device ~version)
  else if name = Devices.Sdhci.name then
    Some (fun version -> Devices.Sdhci.device ~version)
  else if name = Devices.Ehci.name then
    Some (fun version -> Devices.Ehci.device ~version)
  else if name = Devices.Pcnet.name then
    Some (fun version -> Devices.Pcnet.device ~version)
  else if name = Devices.Scsi.name then
    Some (fun version -> Devices.Scsi.device ~version)
  else if name = Devices.Virtio_ring.name then
    Some (fun version -> Devices.Virtio_ring.device ~version)
  else None

let device_cache : (string * string, Devices.Device.t) Hashtbl.t =
  Hashtbl.create 8

let device_lock = Mutex.create ()

let cached_device ~device ~version =
  let key = (device, Devices.Qemu_version.to_string version) in
  let finally () = Mutex.unlock device_lock in
  Mutex.lock device_lock;
  Fun.protect ~finally (fun () ->
      match Hashtbl.find_opt device_cache key with
      | Some d -> d
      | None ->
        let ctor =
          match device_ctor device with
          | Some c -> c
          | None -> invalid_arg ("Fuzz.Exec: unknown device " ^ device)
        in
        let d = ctor version in
        Hashtbl.replace device_cache key d;
        d)

(* Replay contexts (machine + attached checker) are pooled and recycled:
   checker creation re-derives copy spans and the pass-through map, and
   the compiled engine lowers the spec lazily per checker instance — at
   fuzzing throughput, minting all of that per replay dominated the run
   (and the allocation churn kept the major GC walking the multi-MB spec
   cache).  A recycled context is scrubbed back to boot state: device
   arena, RAM, IRQ lines, machine verdict state and checker. *)

type rctx = { rx_machine : Vmm.Machine.t; rx_checker : C.t }

let config_key (c : C.config) =
  Printf.sprintf "%s|%s|%d|%s"
    (String.concat "+" (List.map C.strategy_to_string c.C.strategies))
    (match c.C.mode with C.Protection -> "prot" | C.Enhancement -> "enh")
    c.C.walk_limit
    (match c.C.engine with C.Compiled -> "compiled" | C.Interpreted -> "interp")

let ctx_pool : (string, rctx list ref) Hashtbl.t = Hashtbl.create 16
let ctx_lock = Mutex.create ()

let make_rctx ~config ~source ~version (input : Input.t) =
  let w = Workload.Samples.find input.device in
  let b =
    match source with
    | Trained -> Metrics.Spec_cache.built w version
    | Minimized -> Metrics.Spec_cache.built_minimized w version
  in
  let dev = cached_device ~device:input.device ~version in
  (* 1 MiB of RAM, not the 16 MiB default: every guest address the
     workloads, attacks and mutator touch sits below 0xA0000. *)
  let m = Vmm.Machine.create ~ram_size:0x100000 ~vmexit_cost:0 () in
  Vmm.Machine.attach m (dev.Devices.Device.make_binding ());
  let checker = Sedspec.Pipeline.protect ~config m ~device:input.device b in
  { rx_machine = m; rx_checker = checker }

let scrub_rctx ~device rctx =
  let m = rctx.rx_machine in
  Vmm.Machine.resume m;
  Vmm.Machine.clear_warnings m;
  Vmm.Machine.clear_traps m;
  Vmm.Guest_mem.clear (Vmm.Machine.ram m);
  Devir.Arena.reset (Interp.arena (Vmm.Machine.interp_of m device));
  Vmm.Irq.lower_line (Vmm.Machine.irq m) device;
  Vmm.Irq.clear_counts (Vmm.Machine.irq m);
  Vmm.Guest_mem.set_read_fault (Vmm.Machine.ram m) None;
  Interp.set_response_fault (Vmm.Machine.interp_of m device) None;
  C.set_fault_hook rctx.rx_checker None;
  C.reset rctx.rx_checker

let with_rctx ~config ~source ~version (input : Input.t) f =
  let key =
    Printf.sprintf "%s|%s|%s|%s" input.device
      (Devices.Qemu_version.to_string version)
      (config_key config) (source_key source)
  in
  let acquire () =
    Mutex.lock ctx_lock;
    let r =
      match Hashtbl.find_opt ctx_pool key with
      | Some ({ contents = rctx :: rest } as slot) ->
        slot := rest;
        Some rctx
      | _ -> None
    in
    Mutex.unlock ctx_lock;
    match r with
    | Some rctx ->
      scrub_rctx ~device:input.device rctx;
      rctx
    | None -> make_rctx ~config ~source ~version input
  in
  let release rctx =
    Mutex.lock ctx_lock;
    (match Hashtbl.find_opt ctx_pool key with
    | Some slot -> slot := rctx :: !slot
    | None -> Hashtbl.replace ctx_pool key (ref [ rctx ]));
    Mutex.unlock ctx_lock
  in
  let rctx = acquire () in
  Fun.protect ~finally:(fun () -> release rctx) (fun () -> f rctx)

(* --- One replay -------------------------------------------------------- *)

type obs = {
  o_steps : string list;  (** Per-step I/O result summaries, in order. *)
  o_anomalies : string list;
  o_warnings : string list;
  o_halted_at : int option;  (** Step index at which the VM halted. *)
  o_halt_reason : string;
  o_stats : string;
  o_shadow : string;  (** Shadow-arena bytes, hex. *)
  o_nodes : string list;  (** Covered ES-CFG nodes, sorted. *)
  o_edges : string list;
  o_crash : string option;  (** Host-level exception out of a step. *)
}

let anomaly_repr (a : C.anomaly) =
  Printf.sprintf "%s|%s|%b|%s"
    (C.strategy_to_string a.strategy)
    (match a.at with
    | Some b -> Devir.Program.bref_to_string b
    | None -> "-")
    a.pre_execution a.detail

let stats_repr (s : C.stats) =
  Printf.sprintf "interactions=%d walks_ok=%d bails=%d deferred=%d nodes_walked=%d"
    s.interactions s.walks_ok s.bails s.deferred s.nodes_walked

let shadow_repr checker =
  let b = C.shadow_snapshot checker in
  let h = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string h (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents h

let io_result_repr : Vmm.Machine.io_result -> string = function
  | Vmm.Machine.Io_ok None -> "ok"
  | Io_ok (Some v) -> Printf.sprintf "ok:0x%Lx" v
  | Io_blocked reason -> "blocked:" ^ reason
  | Io_fault trap -> "fault:" ^ Interp.Event.trap_to_string trap
  | Io_no_device -> "no-device"
  | Io_vm_halted -> "vm-halted"

let edge_repr (a, b) =
  Devir.Program.bref_to_string a ^ "->" ^ Devir.Program.bref_to_string b

(* Response faults accumulate field-wise into one armed record on the
   input's device interp: each rf step replaces its own seam and "rf
   clear" disarms them all.  The pure manglers come from Faultinj.Inject,
   so corpus-scheduled response faults and the hostile campaign's replays
   explore one shape space.  Applied inside the interpreter, the mangled
   responses reach both walk engines identically — fault-bearing inputs
   still satisfy the differential oracle. *)
let apply_resp_fault interp resp = function
  | Input.F_resp_read mask ->
    resp :=
      { !resp with Interp.rf_read = Some (Faultinj.Inject.corrupt_value ~mask) };
    Interp.set_response_fault interp (Some !resp)
  | Input.F_resp_store mask ->
    resp :=
      { !resp with Interp.rf_store = Some (Faultinj.Inject.corrupt_value ~mask) };
    Interp.set_response_fault interp (Some !resp)
  | Input.F_resp_dma delta ->
    resp :=
      { !resp with Interp.rf_dma_len = Some (Faultinj.Inject.dma_len_delta ~delta) };
    Interp.set_response_fault interp (Some !resp)
  | Input.F_resp_irq burst ->
    resp := { !resp with Interp.rf_irq_burst = burst };
    Interp.set_response_fault interp (Some !resp)
  | Input.F_resp_clear ->
    resp := Interp.no_response_fault;
    Interp.set_response_fault interp None
  | _ -> ()

(* Replay [input] under one checker configuration.  Replay stops at the
   first interposer halt (subsequent dispatches would only observe the
   halted VM) and at the first host-level exception, which is recorded as
   a crash rather than propagated: a crashing replay is a finding, not a
   fuzzer failure. *)
let run ~config ?(source = Trained) ?version (input : Input.t) =
  let version = Option.value version ~default:input.version in
  with_rctx ~config ~source ~version input
  @@ fun { rx_machine = m; rx_checker = checker } ->
  let cov = C.coverage_create () in
  C.set_coverage checker (Some cov);
  let dev_interp = Vmm.Machine.interp_of m input.device in
  let resp = ref Interp.no_response_fault in
  let ram = Vmm.Machine.ram m in
  let steps_rev = ref [] in
  let halted_at = ref None in
  let crash = ref None in
  (try
     Array.iteri
       (fun i step ->
         match step with
         | Input.Guest_write { addr; data } ->
           Vmm.Guest_mem.blit_in ram addr (Bytes.of_string data)
         | Input.Fault f -> (
           (* Pure address-keyed guest faults and top-of-walk hooks fire
              identically under both engines, so a fault-bearing input
              still satisfies the differential oracle. *)
           match f with
           | Input.F_guest_xor mask ->
             Vmm.Guest_mem.set_read_fault ram
               (Some (Faultinj.Inject.corrupt_byte ~mask))
           | Input.F_guest_short limit ->
             Vmm.Guest_mem.set_read_fault ram
               (Some (Faultinj.Inject.short_byte ~limit))
           | Input.F_guest_clear -> Vmm.Guest_mem.set_read_fault ram None
           | Input.F_walk_raise ->
             let live = ref true in
             C.set_fault_hook checker
               (Some
                  (fun () ->
                    if !live then begin
                      live := false;
                      raise (Faultinj.Plan.Injected "fuzz fault step")
                    end))
           | Input.F_walk_delay spin ->
             let live = ref true in
             C.set_fault_hook checker
               (Some
                  (fun () ->
                    if !live then begin
                      live := false;
                      Faultinj.Inject.burn spin
                    end))
           | Input.F_resp_read _ | Input.F_resp_store _ | Input.F_resp_dma _
           | Input.F_resp_irq _ | Input.F_resp_clear ->
             apply_resp_fault dev_interp resp f)
         | Input.Req { handler; params } -> (
           (match Vmm.Machine.inject m ~device:input.device ~handler ~params with
           | r -> steps_rev := io_result_repr r :: !steps_rev
           | exception e ->
             crash := Some (Printexc.to_string e);
             raise Exit);
           if Vmm.Machine.halted m then begin
             halted_at := Some i;
             raise Exit
           end))
       input.steps
   with Exit -> ());
  C.set_coverage checker None;
  Vmm.Guest_mem.set_read_fault ram None;
  Interp.set_response_fault dev_interp None;
  C.set_fault_hook checker None;
  let obs =
    {
      o_steps = List.rev !steps_rev;
      o_anomalies = List.map anomaly_repr (C.anomalies checker);
      o_warnings = Vmm.Machine.warnings m;
      o_halted_at = !halted_at;
      o_halt_reason = Option.value ~default:"" (Vmm.Machine.halt_reason m);
      o_stats = stats_repr (C.stats checker);
      o_shadow = shadow_repr checker;
      o_nodes = List.map Devir.Program.bref_to_string (C.coverage_nodes cov);
      o_edges = List.map edge_repr (C.coverage_edges cov);
      o_crash = !crash;
    }
  in
  (obs, cov)

(* Device-level execution trace: replay the input on an *unprotected*
   machine and collect the devir IR blocks the device itself executes
   (every [on_block] firing, plus consecutive-pair edges across the whole
   replay).  The spec-walk coverage above can only ever name trained
   blocks — a patch that adds a rejection path off the benign corpus is
   invisible to it — so the deviation locator attributes divergences
   against this ground-level trace instead.  Walk faults are checker
   effects and are skipped; guest faults apply as in [run]. *)
let trace ?version (input : Input.t) =
  let version = Option.value version ~default:input.version in
  let dev = cached_device ~device:input.device ~version in
  let m = Vmm.Machine.create ~ram_size:0x100000 ~vmexit_cost:0 () in
  Vmm.Machine.attach m (dev.Devices.Device.make_binding ());
  let interp = Vmm.Machine.interp_of m input.device in
  let nodes : (Devir.Program.bref, int) Hashtbl.t = Hashtbl.create 64 in
  let edges = Hashtbl.create 64 in
  let last = ref None in
  let hooks = Interp.hooks interp in
  Interp.set_hooks interp
    {
      hooks with
      Interp.on_block =
        (fun bref kind ->
          Hashtbl.replace nodes bref
            (1 + Option.value ~default:0 (Hashtbl.find_opt nodes bref));
          (match !last with
          | Some prev -> Hashtbl.replace edges (prev, bref) ()
          | None -> ());
          last := Some bref;
          hooks.Interp.on_block bref kind);
    };
  let ram = Vmm.Machine.ram m in
  let resp = ref Interp.no_response_fault in
  (try
     Array.iter
       (fun step ->
         match step with
         | Input.Guest_write { addr; data } ->
           Vmm.Guest_mem.blit_in ram addr (Bytes.of_string data)
         | Input.Fault f -> (
           match f with
           | Input.F_guest_xor mask ->
             Vmm.Guest_mem.set_read_fault ram
               (Some (Faultinj.Inject.corrupt_byte ~mask))
           | Input.F_guest_short limit ->
             Vmm.Guest_mem.set_read_fault ram
               (Some (Faultinj.Inject.short_byte ~limit))
           | Input.F_guest_clear -> Vmm.Guest_mem.set_read_fault ram None
           | Input.F_walk_raise | Input.F_walk_delay _ -> ()
           | Input.F_resp_read _ | Input.F_resp_store _ | Input.F_resp_dma _
           | Input.F_resp_irq _ | Input.F_resp_clear ->
             (* Response faults are device-model effects: they belong in
                the ground-level trace exactly as in protected replays. *)
             apply_resp_fault interp resp f)
         | Input.Req { handler; params } -> (
           match Vmm.Machine.inject m ~device:input.device ~handler ~params with
           | _ -> if Vmm.Machine.halted m then raise Exit
           | exception _ -> raise Exit))
       input.steps
   with Exit -> ());
  ( List.sort
      (fun (a, _) (b, _) -> Devir.Program.bref_compare a b)
      (Hashtbl.fold (fun k n acc -> (k, n) :: acc) nodes []),
    List.sort
      (fun (a1, a2) (b1, b2) ->
        match Devir.Program.bref_compare a1 b1 with
        | 0 -> Devir.Program.bref_compare a2 b2
        | c -> c)
      (Hashtbl.fold (fun k () acc -> k :: acc) edges []) )

(* --- Comparison -------------------------------------------------------- *)

type divergence = { d_profile : string; d_field : string; d_detail : string }

let diff_list field l r =
  if l <> r then
    let describe l =
      Printf.sprintf "%d entries [%s]" (List.length l)
        (String.concat "; " (List.filteri (fun i _ -> i < 4) l))
    in
    Some (field, Printf.sprintf "left %s vs right %s" (describe l) (describe r))
  else None

let compare_obs ?(lenient = false) l r =
  List.filter_map Fun.id
    [
      diff_list "step-results" l.o_steps r.o_steps;
      diff_list "anomalies" l.o_anomalies r.o_anomalies;
      diff_list "warnings" l.o_warnings r.o_warnings;
      (if l.o_halted_at <> r.o_halted_at || l.o_halt_reason <> r.o_halt_reason
       then
         let h = function
           | None, _ -> "ran to completion"
           | Some i, reason -> Printf.sprintf "halted at step %d (%s)" i reason
         in
         Some
           ( "halt",
             Printf.sprintf "left %s vs right %s"
               (h (l.o_halted_at, l.o_halt_reason))
               (h (r.o_halted_at, r.o_halt_reason)) )
       else None);
      (if (not lenient) && l.o_stats <> r.o_stats then
         Some ("stats", Printf.sprintf "left %s vs right %s" l.o_stats r.o_stats)
       else None);
      (if l.o_shadow <> r.o_shadow then
         Some ("shadow", "shadow-arena bytes differ")
       else None);
      (if lenient then None else diff_list "coverage-nodes" l.o_nodes r.o_nodes);
      (if lenient then None else diff_list "coverage-edges" l.o_edges r.o_edges);
      (if l.o_crash <> r.o_crash then
         let c = function None -> "no crash" | Some e -> "crash " ^ e in
         Some
           ( "crash",
             Printf.sprintf "left %s vs right %s" (c l.o_crash) (c r.o_crash) )
       else None);
    ]

type outcome = {
  divergences : divergence list;
  crashed : string option;  (** First crash seen under any configuration. *)
  anomalous : bool;  (** The canonical run tripped the checker. *)
  coverage : C.coverage;
      (** Union over every profile run.  Enhancement-mode runs keep walking
          past warn-only anomalies, so they explore paths the protection
          run's halt cuts short — folding them in gives the mutator richer
          feedback at no extra replay cost. *)
}

let evaluate ?(profiles = default_profiles) (input : Input.t) =
  if profiles = [] then invalid_arg "Fuzz.Exec.evaluate: no profiles";
  let canonical = ref None in
  let crashed = ref None in
  let coverage = C.coverage_create () in
  let divergences =
    List.concat_map
      (fun p ->
        let l, lcov =
          run ~config:p.left ~source:p.left_source ?version:p.left_version input
        in
        let r, rcov =
          run ~config:p.right ~source:p.right_source ?version:p.right_version
            input
        in
        ignore (C.coverage_absorb ~into:coverage lcov);
        ignore (C.coverage_absorb ~into:coverage rcov);
        if !canonical = None then canonical := Some l;
        (match (l.o_crash, r.o_crash) with
        | Some e, _ | _, Some e -> if !crashed = None then crashed := Some e
        | None, None -> ());
        List.map
          (fun (field, detail) ->
            { d_profile = p.pname; d_field = field; d_detail = detail })
          (compare_obs ~lenient:p.lenient l r))
      profiles
  in
  let canon = Option.get !canonical in
  {
    divergences;
    crashed = !crashed;
    anomalous =
      canon.o_anomalies <> [] || canon.o_warnings <> []
      || canon.o_halted_at <> None;
    coverage;
  }
