(** Differential execution of fuzzer inputs.

    A {!profile} names a pair of checker configurations; replaying an
    input under both sides and comparing every observable (per-step I/O
    results, anomalies, warnings, halt point/reason, statistics,
    shadow-arena bytes, ES-CFG coverage, crashes) yields the fuzzer's
    oracle.  The production profiles compare the compiled walk engine
    against the interpreted reference in both working modes, where any
    difference is a checker bug. *)

module C := Sedspec.Checker

type spec_source = Trained | Minimized
(** Which spec a replay side walks: the trained spec from
    {!Metrics.Spec_cache.built} or its {!Sedspec.Minimize}d derivation. *)

type profile = {
  pname : string;
  left : C.config;
  right : C.config;
  left_source : spec_source;
  right_source : spec_source;
  left_version : Devices.Qemu_version.t option;
      (** Replay the left side at this device version (and the spec
          trained on it) instead of the input's own version — the
          cross-version seam the deviation locator uses.  [None] keeps
          the input's version. *)
  right_version : Devices.Qemu_version.t option;
  lenient : bool;
      (** Mask observables that legitimately differ across spec sources
          (walk statistics, node/edge coverage); verdict-level fields —
          I/O results, anomalies, warnings, halts, shadow bytes,
          crashes — are always compared. *)
}

val profile : mode:C.mode -> pname:string -> profile
(** Compiled-vs-interpreted over the trained spec (strict). *)

val default_profiles : profile list
(** Compiled vs Interpreted, in protection and enhancement modes. *)

val minimized_profiles : profile list
(** Minimized vs trained spec under the {e same} engine and mode, for
    all four engine × mode combinations; lenient.  The oracle that
    minimization preserves verdict bit-equivalence. *)

val all_profiles : profile list
(** {!default_profiles} followed by {!minimized_profiles}. *)

val cross_version_profiles :
  vuln:Devices.Qemu_version.t -> patched:Devices.Qemu_version.t -> profile list
(** Vulnerable-vs-patched device model under the {e same} engine and
    mode (protection and enhancement), each side checked by the spec
    trained at its own version; lenient.  A divergence is a behavioural
    deviation across the version boundary, not a checker bug — the raw
    signal {!Locate} minimizes and clusters. *)

val cached_device : device:string -> version:Devices.Qemu_version.t -> Devices.Device.t
(** Process-wide memoised device build (immutable program; callers mint
    fresh arenas via [make_binding]).  Raises [Invalid_argument] for an
    unknown device name. *)

type obs = {
  o_steps : string list;
  o_anomalies : string list;
  o_warnings : string list;
  o_halted_at : int option;
  o_halt_reason : string;
  o_stats : string;
  o_shadow : string;
  o_nodes : string list;
  o_edges : string list;
  o_crash : string option;
}

val run :
  config:C.config ->
  ?source:spec_source ->
  ?version:Devices.Qemu_version.t ->
  Input.t ->
  obs * C.coverage
(** Replay an input on a fresh protected machine under one configuration
    and spec source ([source] defaults to [Trained]; [version] overrides
    the input's device version, defaulting to the input's own).  Stops at
    the first halt verdict; host-level exceptions out of a step are
    recorded in [o_crash] rather than propagated. *)

val trace :
  ?version:Devices.Qemu_version.t ->
  Input.t ->
  (Devir.Program.bref * int) list
  * (Devir.Program.bref * Devir.Program.bref) list
(** Device-level execution trace: replay the input on an {e unprotected}
    machine and return the devir IR blocks the device executes with
    their execution counts (sorted by block), plus consecutive-pair
    edges across the whole replay.  Unlike the spec-walk coverage in
    {!obs} — which can only name trained blocks — this sees patched
    rejection paths the benign corpus never exercises, so the deviation
    locator attributes against it; the counts additionally expose
    deviations that visit the same block set a different number of times
    (a re-bounded loop).  Walk faults (checker effects) are skipped;
    guest faults apply. *)

type divergence = { d_profile : string; d_field : string; d_detail : string }

val compare_obs : ?lenient:bool -> obs -> obs -> (string * string) list
(** Field-wise differences as [(field, detail)] pairs; empty = identical.
    [lenient] (default [false]) skips stats and coverage fields. *)

type outcome = {
  divergences : divergence list;
  crashed : string option;
  anomalous : bool;
  coverage : C.coverage;
}

val evaluate : ?profiles:profile list -> Input.t -> outcome
(** Run an input under every profile (both sides) and fold the oracle
    verdicts.  [coverage] comes from the first profile's left run, making
    it a deterministic feedback signal.  Raises [Invalid_argument] when
    [profiles] is empty. *)
