(* A fuzzer input is the guest's half of a device conversation: the I/O
   requests a driver issues (already resolved to handler + parameters,
   the form the machine dispatches) interleaved with the guest-memory
   bytes it stages for the device to DMA.  Replaying the steps against a
   fresh machine reproduces the interaction without re-running any
   driver logic, which is what lets mutants explore sequences no driver
   would emit. *)

module Prng = Sedspec_util.Prng

(* Fault steps schedule deterministic faultinj effects inside a replay.
   Guest faults stay armed until replaced or cleared; walk faults are
   one-shot and fire at the top of the checker's next walk, before
   engine dispatch — so both engines observe the identical effect and
   the differential oracle survives. *)
type fault =
  | F_guest_xor of int64  (* corrupt reads: Inject.corrupt_byte mask *)
  | F_guest_short of int64  (* reads at/above the limit return 0 *)
  | F_guest_clear
  | F_walk_raise
  | F_walk_delay of int  (* Inject.burn iterations *)
  (* Response-direction (host->guest) faults, applied inside the devir
     interpreter so both walk engines observe identical effects.  Like
     guest faults they stay armed until replaced or cleared. *)
  | F_resp_read of int64  (* mangle read-return values: corrupt_value mask *)
  | F_resp_store of int64  (* mangle completion-store values *)
  | F_resp_dma of int  (* add delta to outbound DMA lengths *)
  | F_resp_irq of int  (* extra raise/lower edges per IRQ raise *)
  | F_resp_clear

type step =
  | Req of { handler : string; params : (string * int64) list }
  | Guest_write of { addr : int64; data : string }
  | Fault of fault

type origin = Benign | Attack of string | Mutant

type t = {
  device : string;
  version : Devices.Qemu_version.t;
  origin : origin;
  steps : step array;
}

let origin_to_string = function
  | Benign -> "benign"
  | Attack cve -> "attack:" ^ cve
  | Mutant -> "mutant"

let origin_of_string s =
  if s = "benign" then Benign
  else if s = "mutant" then Mutant
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "attack" ->
      Attack (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> invalid_arg ("Fuzz.Input: bad origin " ^ s)

(* --- Recording --------------------------------------------------------- *)

(* Drive [f] against [m] while capturing the named device's top-level
   requests (via a recording interposer) and the guest-memory writes the
   driver performs between them (via the RAM write hook; writes made
   while the device itself runs are its own DMA, a function of replay,
   and are skipped).  Consecutive-address byte writes coalesce into one
   [Guest_write]. *)
let record m ~device f =
  let steps = ref [] in
  let in_device = ref false in
  let pend_addr = ref 0L in
  let pend = Buffer.create 64 in
  let flush () =
    if Buffer.length pend > 0 then begin
      steps := Guest_write { addr = !pend_addr; data = Buffer.contents pend } :: !steps;
      Buffer.clear pend
    end
  in
  let ram = Vmm.Machine.ram m in
  Vmm.Guest_mem.set_write_hook ram
    (Some
       (fun addr byte ->
         if not !in_device then begin
           let next = Int64.add !pend_addr (Int64.of_int (Buffer.length pend)) in
           if Buffer.length pend > 0 && Int64.equal addr next
              && Buffer.length pend < 4096
           then Buffer.add_char pend (Char.chr byte)
           else begin
             flush ();
             pend_addr := addr;
             Buffer.add_char pend (Char.chr byte)
           end
         end));
  Vmm.Machine.set_interposer m device
    {
      Vmm.Machine.before =
        (fun req ->
          flush ();
          steps :=
            Req { handler = req.Vmm.Machine.handler; params = req.params }
            :: !steps;
          in_device := true;
          Vmm.Machine.Allow);
      after =
        (fun _ _ ->
          in_device := false;
          Vmm.Machine.Allow);
    };
  Fun.protect
    ~finally:(fun () ->
      Vmm.Guest_mem.set_write_hook ram None;
      Vmm.Machine.clear_interposer m device)
    f;
  flush ();
  Array.of_list (List.rev !steps)

(* --- Seed corpus ------------------------------------------------------- *)

let record_benign (module W : Workload.Samples.DEVICE_WORKLOAD) f =
  let m = W.make_machine ~vmexit_cost:0 W.paper_version in
  let steps = record m ~device:W.device_name (fun () -> f m) in
  { device = W.device_name; version = W.paper_version; origin = Benign; steps }

let seed_corpus ~device =
  let w = Workload.Samples.find device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let trainer = W.trainer ~cases:1 in
  (* Deliberately lean: the benign workloads are the very corpus the
     specification was trained from, so full transcripts would saturate
     spec coverage from the seeds alone and leave the mutator nothing to
     discover.  Short soak windows and a truncated training-case prefix
     seed the corpus with realistic command material while keeping
     coverage headroom — the growth the fuzzer reports is then real
     exploration, not seed replay. *)
  let truncate n (i : t) =
    if Array.length i.steps <= n then i else { i with steps = Array.sub i.steps 0 n }
  in
  let benign =
    truncate 600
      (record_benign (module W) (fun m -> trainer.Sedspec.Pipeline.run_case m 0))
    :: List.map
         (fun mode ->
           truncate 96
             (record_benign (module W) (fun m ->
                  let rng = Prng.create 0x5EED5L in
                  W.soak_case ~mode ~rng ~rare_prob:0.0 ~ops:2 m)))
         [ Workload.Samples.Sequential; Workload.Samples.Random ]
  in
  let attacks =
    List.filter_map
      (fun (a : Attacks.Attack.t) ->
        if a.device <> device then None
        else begin
          let m = W.make_machine ~vmexit_cost:0 a.qemu_version in
          let steps =
            record m ~device (fun () ->
                (* Exploits may bail out mid-stream (e.g. [Exit] once the
                   corruption landed); the prefix is still a useful seed. *)
                try
                  a.setup m;
                  a.run m
                with _ -> ())
          in
          Some
            (truncate 128
               { device; version = a.qemu_version; origin = Attack a.cve; steps })
        end)
      Attacks.Attack.all
  in
  benign @ attacks

(* --- Serialization ----------------------------------------------------- *)

(* Line-oriented text, one input per [input .. end] block:
     input <device> <version> <origin>
     g <addr> <hex-bytes>
     r <handler> <name>=<value>,<name>=<value>
     end
   Values are unsigned hex int64s, so the format round-trips the full
   64-bit range. *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then invalid_arg "Fuzz.Input: odd hex length";
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let step_to_line = function
  | Guest_write { addr; data } ->
    Printf.sprintf "g 0x%Lx %s" addr (hex_of_string data)
  | Req { handler; params } ->
    Printf.sprintf "r %s %s" handler
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=0x%Lx" k v) params))
  | Fault (F_guest_xor mask) -> Printf.sprintf "f xor 0x%Lx" mask
  | Fault (F_guest_short limit) -> Printf.sprintf "f short 0x%Lx" limit
  | Fault F_guest_clear -> "f clear"
  | Fault F_walk_raise -> "f raise"
  | Fault (F_walk_delay spin) -> Printf.sprintf "f delay %d" spin
  (* Response faults use the "rf" tag: "r" is the request line. *)
  | Fault (F_resp_read mask) -> Printf.sprintf "rf read 0x%Lx" mask
  | Fault (F_resp_store mask) -> Printf.sprintf "rf store 0x%Lx" mask
  | Fault (F_resp_dma delta) -> Printf.sprintf "rf dma %d" delta
  | Fault (F_resp_irq burst) -> Printf.sprintf "rf irq %d" burst
  | Fault F_resp_clear -> "rf clear"

let to_lines t =
  Printf.sprintf "input %s %s %s" t.device
    (Devices.Qemu_version.to_string t.version)
    (origin_to_string t.origin)
  :: (Array.to_list t.steps |> List.map step_to_line)
  @ [ "end" ]

let to_string t = String.concat "\n" (to_lines t) ^ "\n"

let corpus_to_string inputs = String.concat "" (List.map to_string inputs)

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let step_of_line line =
  match split_words line with
  | [ "g"; addr; hex ] ->
    Guest_write { addr = Int64.of_string addr; data = string_of_hex hex }
  | [ "g"; addr ] ->
    (* Empty payload prints as "g <addr> " — no hex word survives
       [split_words]. *)
    Guest_write { addr = Int64.of_string addr; data = "" }
  | [ "r"; handler ] -> Req { handler; params = [] }
  | [ "f"; "xor"; mask ] -> Fault (F_guest_xor (Int64.of_string mask))
  | [ "f"; "short"; limit ] -> Fault (F_guest_short (Int64.of_string limit))
  | [ "f"; "clear" ] -> Fault F_guest_clear
  | [ "f"; "raise" ] -> Fault F_walk_raise
  | [ "f"; "delay"; spin ] -> Fault (F_walk_delay (int_of_string spin))
  | [ "rf"; "read"; mask ] -> Fault (F_resp_read (Int64.of_string mask))
  | [ "rf"; "store"; mask ] -> Fault (F_resp_store (Int64.of_string mask))
  | [ "rf"; "dma"; delta ] -> Fault (F_resp_dma (int_of_string delta))
  | [ "rf"; "irq"; burst ] -> Fault (F_resp_irq (int_of_string burst))
  | [ "rf"; "clear" ] -> Fault F_resp_clear
  | [ "r"; handler; kvs ] ->
    let params =
      String.split_on_char ',' kvs
      |> List.filter (fun p -> p <> "")
      |> List.map (fun p ->
             match String.index_opt p '=' with
             | Some i ->
               ( String.sub p 0 i,
                 Int64.of_string (String.sub p (i + 1) (String.length p - i - 1))
               )
             | None -> invalid_arg ("Fuzz.Input: bad param " ^ p))
    in
    Req { handler; params }
  | _ -> invalid_arg ("Fuzz.Input: bad step line: " ^ line)

let corpus_of_string s =
  try
    let lines =
      String.split_on_char '\n' s
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let rec inputs acc = function
      | [] -> Ok (List.rev acc)
      | header :: rest -> (
        match split_words header with
        | [ "input"; device; version; origin ] ->
          let rec steps sacc = function
            | "end" :: rest -> (List.rev sacc, rest)
            | line :: rest -> steps (step_of_line line :: sacc) rest
            | [] -> invalid_arg "Fuzz.Input: missing end"
          in
          let ss, rest = steps [] rest in
          inputs
            ({
               device;
               version = Devices.Qemu_version.of_string version;
               origin = origin_of_string origin;
               steps = Array.of_list ss;
             }
            :: acc)
            rest
        | _ -> invalid_arg ("Fuzz.Input: bad header: " ^ header))
    in
    inputs [] lines
  with
  | Invalid_argument msg -> Error msg
  | Failure msg -> Error msg

let save_corpus file inputs =
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (corpus_to_string inputs));
  Sys.rename tmp file

let load_corpus file =
  let ic = open_in file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  corpus_of_string s
