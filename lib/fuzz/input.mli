(** Fuzzer inputs: recorded or synthesised I/O interaction sequences.

    An input is the guest's half of a device conversation — the requests a
    driver issues (handler + parameters, the form {!Vmm.Machine} dispatches)
    interleaved with the guest-memory bytes it stages for DMA.  Seeds are
    recorded from the benign workload library and the attack catalogue;
    mutants are derived from them. *)

(** Scheduled faultinj effects.  Guest faults stay armed until replaced
    or cleared; walk faults are one-shot and fire at the top of the
    checker's next walk, before engine dispatch, so both engines observe
    the identical effect and the differential oracle survives. *)
type fault =
  | F_guest_xor of int64  (** Corrupt reads ({!Faultinj.Inject.corrupt_byte} mask). *)
  | F_guest_short of int64  (** Reads at/above the limit return 0. *)
  | F_guest_clear
  | F_walk_raise
  | F_walk_delay of int  (** {!Faultinj.Inject.burn} iterations. *)
  | F_resp_read of int64
      (** Mangle register read-return values at the host->guest seam
          ({!Faultinj.Inject.corrupt_value} mask); stays armed until
          replaced or cleared, like guest faults. *)
  | F_resp_store of int64  (** Mangle completion-store values. *)
  | F_resp_dma of int
      (** Add the delta to outbound (device->guest) DMA lengths. *)
  | F_resp_irq of int  (** Extra raise/lower edges per IRQ raise. *)
  | F_resp_clear
      (** Response faults serialize under the ["rf"] line tag — the
          ["r"] tag already names request steps. *)

type step =
  | Req of { handler : string; params : (string * int64) list }
  | Guest_write of { addr : int64; data : string }
  | Fault of fault

type origin = Benign | Attack of string  (** CVE id. *) | Mutant

type t = {
  device : string;
  version : Devices.Qemu_version.t;
  origin : origin;
  steps : step array;
}

val origin_to_string : origin -> string

val record : Vmm.Machine.t -> device:string -> (unit -> unit) -> step array
(** [record m ~device f] runs [f] while capturing the device's top-level
    requests and the driver-side guest-memory writes between them.
    Installs (and removes) a recording interposer and the RAM write hook;
    the machine must not already carry an interposer on [device]. *)

val record_benign :
  (module Workload.Samples.DEVICE_WORKLOAD) -> (Vmm.Machine.t -> unit) -> t
(** Record one benign driver scenario against a fresh machine at the
    workload's paper version. *)

val seed_corpus : device:string -> t list
(** Deterministic seeds for one device: a training case, two short benign
    soaks, and every catalogued attack against the device (recorded at the
    attack's QEMU version).  Raises [Not_found] for an unknown device. *)

(** {2 Persistence} — a line-oriented text format that round-trips the
    full unsigned 64-bit range and is byte-stable across runs. *)

val to_string : t -> string
val corpus_to_string : t list -> string
val corpus_of_string : string -> (t list, string) result
val save_corpus : string -> t list -> unit
(** Atomic: writes a temp file, then renames. *)

val load_corpus : string -> (t list, string) result
