(* Cross-version deviation locator (see .mli). *)

module P = Devir.Program
module C = Sedspec.Checker

type options = {
  device : string option;
  cve : string option;
  budget : int;
  seed : int64;
  jobs : int;
  max_steps : int;
  shrink_evals : int;
}

let default_options =
  {
    device = None;
    cve = None;
    budget = 128;
    seed = 0L;
    jobs = 1;
    max_steps = 48;
    shrink_evals = 400;
  }

let targets (opts : options) =
  List.filter
    (fun (a : Attacks.Attack.t) ->
      (match opts.device with
      | None -> true
      | Some d -> a.Attacks.Attack.device = d)
      &&
      match opts.cve with None -> true | Some c -> a.Attacks.Attack.cve = c)
    Attacks.Attack.all

(* Each CVE's loop seed depends only on the master seed and the CVE id
   (FNV-1a mix), never on catalogue position, so [--cve] filtering does
   not perturb the remaining deltas. *)
let sub_seed ~seed cve =
  String.fold_left
    (fun acc c ->
      Int64.mul (Int64.logxor acc (Int64.of_int (Char.code c))) 0x100000001b3L)
    (Int64.logxor seed 0xcbf29ce484222325L)
    cve

(* Anomaly sites back out of their report form
   "strategy|handler/label|pre|detail" (see [Exec.anomaly_repr]); the
   detail is last, so the site field splits off safely. *)
let anomaly_sites (o : Exec.obs) =
  List.filter_map
    (fun s ->
      match String.split_on_char '|' s with
      | _ :: at :: _ when at <> "-" -> (
          match String.index_opt at '/' with
          | Some i ->
              Some
                {
                  P.handler = String.sub at 0 i;
                  label = String.sub at (i + 1) (String.length at - i - 1);
                }
          | None -> None)
      | _ -> None)
    o.Exec.o_anomalies

(* The generic seed corpus truncates attack recordings to a short prefix
   (coverage headroom for the cross-engine fuzzer), which routinely cuts
   an exploit off before its trigger — e.g. the sdhci PoC spends ~500
   steps in benign setup.  The locator wants the opposite: the full
   exploit stream is the one input guaranteed to straddle the version
   boundary, so record it uncut (bounded only by a generous cap) and
   hand it to the loop as an extra seed; ddmin shrinks whatever
   diverges. *)
let exploit_seed_cap = 1024

let exploit_seed (a : Attacks.Attack.t) =
  let w = Workload.Samples.find a.Attacks.Attack.device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m = W.make_machine ~vmexit_cost:0 a.Attacks.Attack.qemu_version in
  let steps =
    Input.record m ~device:a.Attacks.Attack.device (fun () ->
        try
          a.Attacks.Attack.setup m;
          a.Attacks.Attack.run m
        with _ -> ())
  in
  let steps =
    if Array.length steps > exploit_seed_cap then
      Array.sub steps 0 exploit_seed_cap
    else steps
  in
  {
    Input.device = a.Attacks.Attack.device;
    version = a.Attacks.Attack.qemu_version;
    origin = Input.Attack a.Attacks.Attack.cve;
    steps;
  }

(* Version-pair attribution context: both device programs and their
   dependence graphs, built once per CVE. *)
type ctx = {
  x_vuln : Devices.Qemu_version.t;
  x_patched : Devices.Qemu_version.t;
  x_prog_v : Devir.Program.t;
  x_prog_p : Devir.Program.t;
  x_graph_v : Sedspec.Depgraph.t;
  x_graph_p : Sedspec.Depgraph.t;
}

(* Device-trace attribution of one input across the version pair.  Three
   signals, unioned:

   - set view: block/edge symmetric difference of the two traces —
     rewired control flow;
   - count view: blocks executed a different number of times — a
     re-bounded loop runs the same block set, just not as often;
   - data view: a one-step DDG back-slice from each implicated block's
     branch variables to their executed definition sites, in both
     programs.  A value-only patch (same label, same successors, one
     constant changed — e.g. Venom's [data_len] initialiser) is
     invisible to both set and count views at the patched block itself;
     it only manifests downstream, at the branch the changed value
     steers, and the slice walks back from there. *)
let trace_attrib ctx (input : Input.t) =
  let counts_l, edges_l = Exec.trace ~version:ctx.x_vuln input
  and counts_r, edges_r = Exec.trace ~version:ctx.x_patched input in
  let nodes_l = List.map fst counts_l and nodes_r = List.map fst counts_r in
  let implicated =
    List.sort_uniq P.bref_compare
      (Sedspec.Attrib.divergence_blocks ~left_nodes:nodes_l ~left_edges:edges_l
         ~right_nodes:nodes_r ~right_edges:edges_r ()
      @ Sedspec.Attrib.count_diff counts_l counts_r)
  in
  let executed = List.sort_uniq P.bref_compare (nodes_l @ nodes_r) in
  let slice =
    Sedspec.Attrib.data_slice ctx.x_graph_v ctx.x_prog_v ~executed implicated
    @ Sedspec.Attrib.data_slice ctx.x_graph_p ctx.x_prog_p ~executed implicated
  in
  List.sort_uniq P.bref_compare (implicated @ slice)

(* Deterministic directed probes derived from a minimized witness: sweep
   each request parameter through a fixed value ladder and trace-diff
   every variant.  A patch frequently splits one vulnerable block into a
   guard plus two arms (clamp oversize / accept in-range); the exploit
   only ever exercises the clamp arm, so the accept arm — a block that
   exists only in the patched program — never shows up in any diverging
   replay.  Sweeping the witness's own parameters walks the same code
   path at other magnitudes and lights up the sibling arm. *)
let sweep_values =
  [
    0L;
    1L;
    2L;
    8L;
    255L;
    1024L;
    1536L;
    4096L;
    65535L;
    0xFFFFFFFFL;
    Int64.max_int;
  ]

let witness_probes (input : Input.t) =
  List.concat
    (List.mapi
       (fun i step ->
         match step with
         | Input.Req { handler; params } when params <> [] ->
           List.concat_map
             (fun (k, _) ->
               List.filter_map
                 (fun v ->
                   let params' =
                     List.map
                       (fun (k', v') -> if k' = k then (k', v) else (k', v'))
                       params
                   in
                   if params' = params then None
                   else
                     Some
                       {
                         input with
                         Input.steps =
                           Array.mapi
                             (fun j st ->
                               if j = i then
                                 Input.Req { handler; params = params' }
                               else st)
                             input.Input.steps;
                       })
                 sweep_values)
             params
         | _ -> [])
       (Array.to_list input.Input.steps))

(* Replay a minimized witness once per side of its profile and attribute
   the divergence to IR blocks.  Two views, unioned:

   - the spec-walk view (checker coverage symmetric difference plus
     one-side-only anomaly sites) — precise about *where the checker's
     verdict changed*, but blind to blocks outside the trained spec;
   - the device-trace view ({!trace_attrib}, no checker) — sees every
     block the device itself executes, including patched rejection
     paths the benign training corpus never reaches. *)
let attribute ~profiles ~ctx (f : Loop.finding) =
  let p =
    List.find
      (fun (p : Exec.profile) -> p.Exec.pname = f.Loop.f_profile)
      profiles
  in
  let obs_l, cov_l =
    Exec.run ~config:p.Exec.left ~source:p.Exec.left_source
      ?version:p.Exec.left_version f.Loop.f_input
  in
  let obs_r, cov_r =
    Exec.run ~config:p.Exec.right ~source:p.Exec.right_source
      ?version:p.Exec.right_version f.Loop.f_input
  in
  let spec_blocks =
    Sedspec.Attrib.divergence_blocks
      ~left_nodes:(C.coverage_nodes cov_l)
      ~left_edges:(C.coverage_edges cov_l)
      ~right_nodes:(C.coverage_nodes cov_r)
      ~right_edges:(C.coverage_edges cov_r)
      ~left_sites:(anomaly_sites obs_l) ~right_sites:(anomaly_sites obs_r) ()
  in
  let trace_blocks = trace_attrib ctx f.Loop.f_input in
  let blocks =
    List.sort_uniq P.bref_compare (spec_blocks @ trace_blocks)
  in
  {
    Delta.w_profile = f.Loop.f_profile;
    w_field = f.Loop.f_field;
    w_detail = f.Loop.f_detail;
    w_original_len = f.Loop.f_original_len;
    w_input = f.Loop.f_input;
    w_blocks = blocks;
    w_roots = Sedspec.Attrib.roots ctx.x_graph_p blocks;
  }

(* Group witness indices by identical root set, first-seen order. *)
let clusters witnesses =
  let acc = ref [] in
  List.iteri
    (fun i (w : Delta.witness) ->
      let key = w.Delta.w_roots in
      if List.mem_assoc key !acc then
        acc :=
          List.map
            (fun (k, v) -> if k = key then (k, v @ [ i ]) else (k, v))
            !acc
      else acc := !acc @ [ (key, [ i ]) ])
    witnesses;
  !acc

(* The loop keeps one finding per (profile, field) across the whole
   corpus, so a benign seed that diverges first can claim a key away
   from the exploit stream — and the exploit is the one input that
   provably straddles the patch.  Guarantee its witnesses: evaluate the
   exploit seed directly and ddmin every distinct (profile, field)
   divergence it shows, reusing the loop's shrink when the loop's
   finding already came from this very seed. *)
let exploit_findings ~(opts : options) ~profiles (a : Attacks.Attack.t) seed
    (loop_findings : Loop.finding list) =
  let o = Exec.evaluate ~profiles seed in
  let seed_len = Array.length seed.Input.steps in
  let from_exploit (f : Loop.finding) =
    f.Loop.f_original_len = seed_len
    && f.Loop.f_input.Input.origin = Input.Attack a.Attacks.Attack.cve
  in
  let seen = Hashtbl.create 8 in
  let findings =
    List.filter_map
      (fun (d : Exec.divergence) ->
        let key = (d.Exec.d_profile, d.Exec.d_field) in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          match
            List.find_opt
              (fun (f : Loop.finding) ->
                f.Loop.f_profile = d.Exec.d_profile
                && f.Loop.f_field = d.Exec.d_field
                && from_exploit f)
              loop_findings
          with
          | Some f -> Some f
          | None ->
            let p =
              List.find
                (fun (p : Exec.profile) -> p.Exec.pname = d.Exec.d_profile)
                profiles
            in
            let interesting steps =
              let o = Exec.evaluate ~profiles:[ p ] { seed with Input.steps } in
              List.exists
                (fun (d' : Exec.divergence) ->
                  d'.Exec.d_profile = d.Exec.d_profile
                  && d'.Exec.d_field = d.Exec.d_field)
                o.Exec.divergences
            in
            let steps =
              Loop.ddmin ~max_evals:opts.shrink_evals ~test:interesting
                seed.Input.steps
            in
            Some
              {
                Loop.f_profile = d.Exec.d_profile;
                f_field = d.Exec.d_field;
                f_detail = d.Exec.d_detail;
                f_original_len = seed_len;
                f_input = { seed with Input.steps };
              }
        end)
      o.Exec.divergences
  in
  (findings, from_exploit)

let locate_cve (opts : options) (a : Attacks.Attack.t) =
  let vuln, patched = Attacks.Attack.version_pair a in
  let profiles = Exec.cross_version_profiles ~vuln ~patched in
  let exploit = exploit_seed a in
  let loop_opts =
    {
      (Loop.default_options ~device:a.Attacks.Attack.device) with
      Loop.seed = sub_seed ~seed:opts.seed a.Attacks.Attack.cve;
      budget = opts.budget;
      jobs = opts.jobs;
      max_steps = opts.max_steps;
      shrink_evals = opts.shrink_evals;
      profiles;
      extra_seeds = [ exploit ];
    }
  in
  let r = Loop.run loop_opts in
  let dev_v =
    Exec.cached_device ~device:a.Attacks.Attack.device ~version:vuln
  and dev_p =
    Exec.cached_device ~device:a.Attacks.Attack.device ~version:patched
  in
  (* Roots are computed in the patched program: an added decision block
     exists only there, and attribution should name what the fix looks
     like now. *)
  let ctx =
    {
      x_vuln = vuln;
      x_patched = patched;
      x_prog_v = dev_v.Devices.Device.program;
      x_prog_p = dev_p.Devices.Device.program;
      x_graph_v = Sedspec.Depgraph.build dev_v.Devices.Device.program;
      x_graph_p = Sedspec.Depgraph.build dev_p.Devices.Device.program;
    }
  in
  let from_seed, from_exploit =
    exploit_findings ~opts ~profiles a exploit r.Loop.r_findings
  in
  (* Exploit witnesses first, then the loop's remaining findings —
     fuzzer-discovered candidates on other inputs.  A loop finding that
     is itself an exploit-seed finding is already in [from_seed]. *)
  let keyed fs (f : Loop.finding) =
    List.exists
      (fun (g : Loop.finding) ->
        g.Loop.f_profile = f.Loop.f_profile && g.Loop.f_field = f.Loop.f_field)
      fs
  in
  let findings =
    from_seed
    @ List.filter
        (fun f -> not (from_exploit f && keyed from_seed f))
        r.Loop.r_findings
  in
  let witnesses = List.map (attribute ~profiles ~ctx) findings in
  (* The changed set also folds in the *full* exploit stream's trace
     diff: ddmin keeps one (profile, field) signature per witness, so a
     secondary deviation path (e.g. the receive half of a tx/rx patch)
     can be minimized away from every witness while the uncut exploit
     still exercises it on both sides. *)
  let exploit_trace_diff = trace_attrib ctx exploit in
  (* Benign-corpus sweep: the generic seed corpus exercises code the
     exploit never touches (e.g. the receive half of a tx/rx patch), and
     a patched-only block on a benign path shows up as a trace diff even
     though no oracle field diverges.  Identical traces contribute
     nothing, so clean seeds add no noise. *)
  let corpus_diff =
    List.concat_map (trace_attrib ctx)
      (Input.seed_corpus ~device:a.Attacks.Attack.device)
  in
  (* Directed probes: parameter sweeps over each distinct minimized
     witness (see [witness_probes]). *)
  let probe_diff =
    let distinct =
      List.sort_uniq compare
        (List.map (fun (w : Delta.witness) -> w.Delta.w_input) witnesses)
    in
    List.concat_map
      (fun i -> List.concat_map (trace_attrib ctx) (witness_probes i))
      distinct
  in
  let changed =
    List.sort_uniq P.bref_compare
      (exploit_trace_diff @ corpus_diff @ probe_diff
      @ List.concat_map (fun (w : Delta.witness) -> w.Delta.w_blocks) witnesses
      )
  in
  let static =
    Sedspec.Attrib.program_diff dev_v.Devices.Device.program
      dev_p.Devices.Device.program
  in
  let localized =
    static <> []
    && List.for_all
         (fun (c : Sedspec.Attrib.block_change) ->
           List.exists (P.bref_equal c.Sedspec.Attrib.c_bref) changed)
         static
  in
  {
    Delta.cd_cve = a.Attacks.Attack.cve;
    cd_device = a.Attacks.Attack.device;
    cd_vulnerable = vuln;
    cd_patched = patched;
    cd_static = static;
    cd_changed = changed;
    cd_roots = Sedspec.Attrib.roots ctx.x_graph_p changed;
    cd_witnesses = witnesses;
    cd_clusters = clusters witnesses;
    cd_executed = r.Loop.r_executed;
    cd_divergent = r.Loop.r_divergent_inputs;
    cd_localized = localized;
  }

let run (opts : options) =
  if opts.budget < 0 then invalid_arg "Locate.run: negative budget";
  {
    Delta.seed = opts.seed;
    budget = opts.budget;
    deltas = List.map (locate_cve opts) (targets opts);
  }
