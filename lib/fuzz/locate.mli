(** Cross-version deviation locator (ROADMAP item 3).

    For each catalogued CVE, fuzz the device across its version pair —
    the {!Devices.Qemu_version}-gated vulnerable model on the left, the
    patched model on the right, each side checked by the spec trained at
    its own version ({!Exec.cross_version_profiles}) — and turn every
    divergence into a localized behaviour delta:

    + the differential loop ({!Loop.run}) finds diverging interaction
      sequences and ddmin-shrinks each to a minimized witness;
    + every witness is replayed once per side and its coverage/anomaly
      symmetric difference attributed to IR blocks
      ({!Sedspec.Attrib.divergence_blocks});
    + witnesses cluster by the dominator roots of their block sets
      ({!Sedspec.Attrib.roots} over {!Sedspec.Depgraph}), and the union
      is checked against the static program diff — the blocks the
      version gate actually patches.

    With a fixed seed the report is bit-identical for any job count: the
    loop derives candidates sequentially and evaluates them on
    {!Sedspec_util.Runner} domains, and each CVE's sub-seed depends only
    on the master seed and the CVE id. *)

type options = {
  device : string option;  (** Restrict to one device's CVEs. *)
  cve : string option;  (** Restrict to one CVE. *)
  budget : int;  (** Mutant evaluations per CVE. *)
  seed : int64;
  jobs : int;
  max_steps : int;  (** Mutant length cap. *)
  shrink_evals : int;  (** ddmin budget per witness. *)
}

val default_options : options
(** No filters, budget 128/CVE, seed 0, 1 job, 48-step mutants, 400
    shrink evaluations. *)

val targets : options -> Attacks.Attack.t list
(** The catalogued CVEs the filters select, in catalogue order. *)

val locate_cve : options -> Attacks.Attack.t -> Delta.cve_delta
(** Fuzz one CVE's version pair and attribute its divergences. *)

val run : options -> Delta.t
(** {!locate_cve} over {!targets}, sequentially (each CVE's loop is
    internally parallel). *)
