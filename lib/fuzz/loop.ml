(* The coverage-guided fuzzing loop.

   Determinism is the load-bearing property: with a fixed seed the whole
   run — corpus, coverage, report — must be bit-identical for any
   [--jobs] value, because the CI smoke compares runs across job counts
   and a reproducer is only useful if replaying it tomorrow shows the
   same thing.  The loop is therefore batch-generational: candidates are
   derived {e sequentially} from the master PRNG (mutation needs the
   corpus as of the batch start), evaluated {e in parallel} (evaluation
   is pure: fresh machine per replay, shared state limited to the
   domain-safe spec/device caches), and merged back {e sequentially} in
   batch order. *)

module Prng = Sedspec_util.Prng
module Runner = Sedspec_util.Runner
module Json = Sedspec_util.Json
module C = Sedspec.Checker

type options = {
  device : string;
  seed : int64;
  budget : int;  (** Mutant evaluations (seed evaluations are extra). *)
  jobs : int;
  batch : int;
  max_steps : int;
  profiles : Exec.profile list;
  extra_seeds : Input.t list;  (** Appended to the recorded seed corpus. *)
  shrink_evals : int;  (** Evaluation budget per reproducer shrink. *)
}

let default_options ~device =
  {
    device;
    seed = 0L;
    budget = 1000;
    jobs = 1;
    batch = 32;
    max_steps = 48;
    profiles = Exec.default_profiles;
    extra_seeds = [];
    shrink_evals = 400;
  }

type finding = {
  f_profile : string;
  f_field : string;
  f_detail : string;
  f_original_len : int;  (** Steps in the input the divergence was found on. *)
  f_input : Input.t;  (** Shrunk reproducer. *)
}

type report = {
  r_device : string;
  r_seed : int64;
  r_budget : int;
  r_executed : int;
  r_seed_corpus : int;
  r_corpus : Input.t list;  (** Seeds + coverage-novel mutants, in order. *)
  r_seed_nodes : int;
  r_seed_edges : int;
  r_nodes : int;
  r_edges : int;
  r_crashes : int;
  r_divergent_inputs : int;
  r_findings : finding list;
  r_fp_candidates : string list;
}

(* --- Delta debugging ---------------------------------------------------- *)

(* Classic ddmin over the step sequence: repeatedly try dropping chunks
   while [test] (= "still interesting") holds, refining granularity until
   single steps can't be removed.  [max_evals] bounds the number of
   [test] calls so a pathological reproducer can't stall the run. *)
let ddmin ?(max_evals = max_int) ~test steps =
  let evals = ref 0 in
  let check s =
    if !evals >= max_evals then false
    else begin
      incr evals;
      test s
    end
  in
  let drop_chunk arr ~start ~len =
    let n = Array.length arr in
    Array.init (n - len) (fun i -> if i < start then arr.(i) else arr.(i + len))
  in
  let rec go arr granularity =
    let n = Array.length arr in
    if n <= 1 || granularity > n then arr
    else begin
      let chunk = max 1 (n / granularity) in
      let rec try_chunks start =
        if start >= n then None
        else
          let len = min chunk (n - start) in
          let candidate = drop_chunk arr ~start ~len in
          if Array.length candidate < Array.length arr && check candidate then
            Some candidate
          else try_chunks (start + len)
      in
      match try_chunks 0 with
      | Some smaller -> go smaller (max 2 (granularity - 1))
      | None -> if chunk = 1 then arr else go arr (min n (granularity * 2))
    end
  in
  if Array.length steps = 0 then steps else go steps 2

let shrink_input ~opts (input : Input.t) ~interesting =
  let test steps = interesting { input with Input.steps } in
  let steps = ddmin ~max_evals:opts.shrink_evals ~test input.steps in
  { input with Input.steps = steps }

(* --- The loop ----------------------------------------------------------- *)

let run (opts : options) =
  if opts.budget < 0 then invalid_arg "Fuzz.run: negative budget";
  if opts.batch < 1 then invalid_arg "Fuzz.run: batch must be positive";
  let seeds = Input.seed_corpus ~device:opts.device @ opts.extra_seeds in
  let evaluate input = Exec.evaluate ~profiles:opts.profiles input in
  (* Global coverage and the corpus the mutator draws parents from. *)
  let global = C.coverage_create () in
  let corpus = ref [] (* newest first *) in
  let corpus_n = ref 0 in
  let keep input = corpus := input :: !corpus; incr corpus_n in
  let crashes = ref 0 in
  let divergent_inputs = ref 0 in
  let fp_candidates = ref [] in
  (* One shrink per distinct (profile, field) signature keeps the report
     small and the shrink cost bounded. *)
  let findings : (string * string, finding) Hashtbl.t = Hashtbl.create 8 in
  let absorb_outcome (input : Input.t) (o : Exec.outcome) =
    let fresh = C.coverage_absorb ~into:global o.Exec.coverage in
    (match o.Exec.crashed with Some _ -> incr crashes | None -> ());
    if o.Exec.divergences <> [] then incr divergent_inputs;
    List.iter
      (fun (d : Exec.divergence) ->
        let key = (d.d_profile, d.d_field) in
        if not (Hashtbl.mem findings key) then begin
          let interesting cand =
            let o = evaluate cand in
            List.exists
              (fun (d' : Exec.divergence) ->
                d'.d_profile = d.d_profile && d'.d_field = d.d_field)
              o.Exec.divergences
          in
          let shrunk = shrink_input ~opts input ~interesting in
          Hashtbl.replace findings key
            {
              f_profile = d.d_profile;
              f_field = d.d_field;
              f_detail = d.d_detail;
              f_original_len = Array.length input.Input.steps;
              f_input = shrunk;
            }
        end)
      o.Exec.divergences;
    (match (input.Input.origin, o.Exec.anomalous) with
    | Input.Benign, true ->
      fp_candidates :=
        Printf.sprintf "benign seed (%d steps) tripped the checker"
          (Array.length input.Input.steps)
        :: !fp_candidates
    | _ -> ());
    fresh
  in
  (* Seed phase: all seeds enter the corpus; their combined coverage is
     the baseline mutants must improve on. *)
  let seed_outcomes = Runner.map ~jobs:opts.jobs evaluate seeds in
  List.iter2
    (fun input o ->
      ignore (absorb_outcome input o);
      keep input)
    seeds seed_outcomes;
  let seed_nodes = C.coverage_node_count global in
  let seed_edges = C.coverage_edge_count global in
  (* Mutant generations. *)
  let master = Prng.create opts.seed in
  let executed = ref 0 in
  while !executed < opts.budget do
    let n = min opts.batch (opts.budget - !executed) in
    let pool = Array.of_list (List.rev !corpus) in
    let candidates =
      List.init n (fun _ ->
          let parent = pool.(Prng.int master (Array.length pool)) in
          let rng = Prng.split master in
          Mutate.mutate ~rng ~max_steps:opts.max_steps ~pool parent)
    in
    let outcomes = Runner.map ~jobs:opts.jobs evaluate candidates in
    List.iter2
      (fun input o ->
        incr executed;
        if absorb_outcome input o > 0 then keep input)
      candidates outcomes
  done;
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) findings []
    |> List.sort (fun a b ->
           compare (a.f_profile, a.f_field) (b.f_profile, b.f_field))
  in
  {
    r_device = opts.device;
    r_seed = opts.seed;
    r_budget = opts.budget;
    r_executed = !executed;
    r_seed_corpus = List.length seeds;
    r_corpus = List.rev !corpus;
    r_seed_nodes = seed_nodes;
    r_seed_edges = seed_edges;
    r_nodes = C.coverage_node_count global;
    r_edges = C.coverage_edge_count global;
    r_crashes = !crashes;
    r_divergent_inputs = !divergent_inputs;
    r_findings = findings;
    r_fp_candidates = List.rev !fp_candidates;
  }

(* --- Report ------------------------------------------------------------- *)

(* Deliberately excludes job count and wall-clock: the emitted JSON must
   be byte-identical across [--jobs] values. *)
let report_to_json r =
  Json.Obj
    [
      ("device", Json.Str r.r_device);
      ("seed", Json.Str (Printf.sprintf "0x%Lx" r.r_seed));
      ("budget", Json.Int r.r_budget);
      ("executed", Json.Int r.r_executed);
      ("seed_corpus", Json.Int r.r_seed_corpus);
      ("corpus_size", Json.Int (List.length r.r_corpus));
      ( "coverage",
        Json.Obj
          [
            ("seed_nodes", Json.Int r.r_seed_nodes);
            ("seed_edges", Json.Int r.r_seed_edges);
            ("nodes", Json.Int r.r_nodes);
            ("edges", Json.Int r.r_edges);
            ("new_nodes", Json.Int (r.r_nodes - r.r_seed_nodes));
            ("new_edges", Json.Int (r.r_edges - r.r_seed_edges));
          ] );
      ("crashes", Json.Int r.r_crashes);
      ("divergent_inputs", Json.Int r.r_divergent_inputs);
      ( "divergences",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("profile", Json.Str f.f_profile);
                   ("field", Json.Str f.f_field);
                   ("detail", Json.Str f.f_detail);
                   ("original_steps", Json.Int f.f_original_len);
                   ("steps", Json.Int (Array.length f.f_input.Input.steps));
                   ("reproducer", Json.Str (Input.to_string f.f_input));
                 ])
             r.r_findings) );
      ("fp_candidates", Json.List (List.map (fun s -> Json.Str s) r.r_fp_candidates));
    ]

let report_to_string r = Json.to_string (report_to_json r)
