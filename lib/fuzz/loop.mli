(** Coverage-guided differential fuzzing of the ES-Checker.

    Mutation-based exploration of I/O interaction sequences, fed back by
    the ES-CFG node/edge coverage of the checker's walk, with the
    compiled-vs-interpreted / protection-vs-enhancement differential
    oracle of {!Exec}.  With a fixed seed the corpus and report are
    bit-identical for any job count: candidates are derived sequentially
    from the master PRNG, evaluated in parallel on {!Sedspec_util.Runner}
    domains, and merged back in batch order. *)

type options = {
  device : string;
  seed : int64;
  budget : int;  (** Mutant evaluations (seed evaluations are extra). *)
  jobs : int;
  batch : int;  (** Candidates derived per generation. *)
  max_steps : int;  (** Mutant length cap. *)
  profiles : Exec.profile list;
  extra_seeds : Input.t list;  (** Appended to the recorded seed corpus. *)
  shrink_evals : int;  (** Evaluation budget per reproducer shrink. *)
}

val default_options : device:string -> options
(** Seed 0, budget 1000, 1 job, batch 32, max 48 steps, the default
    profiles, 400 shrink evaluations. *)

type finding = {
  f_profile : string;
  f_field : string;
  f_detail : string;
  f_original_len : int;  (** Steps in the input the divergence was found on. *)
  f_input : Input.t;  (** Shrunk reproducer. *)
}

type report = {
  r_device : string;
  r_seed : int64;
  r_budget : int;
  r_executed : int;
  r_seed_corpus : int;
  r_corpus : Input.t list;  (** Seeds + coverage-novel mutants, in order. *)
  r_seed_nodes : int;
  r_seed_edges : int;
  r_nodes : int;
  r_edges : int;
  r_crashes : int;
  r_divergent_inputs : int;
  r_findings : finding list;  (** One shrunk reproducer per (profile, field). *)
  r_fp_candidates : string list;  (** Benign seeds that tripped the checker. *)
}

val ddmin :
  ?max_evals:int -> test:('a array -> bool) -> 'a array -> 'a array
(** Classic delta debugging: a minimal-ish subsequence on which [test]
    (the "still interesting" predicate) holds.  [test] is never called on
    the input itself, which the caller already knows is interesting. *)

val run : options -> report

val report_to_json : report -> Sedspec_util.Json.t

val report_to_string : report -> string
(** Deterministic JSON; excludes job count and wall-clock so runs with
    different [--jobs] emit byte-identical reports. *)
