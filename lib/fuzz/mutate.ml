(* Mutation operators over interaction sequences.

   Mutants stay within the device's request surface: only handlers the
   program declares are injected, with every declared parameter bound, so
   device-side failures surface as traps/anomalies (findings) instead of
   malformed-dispatch noise.  Values are drawn from the classic
   boundary-value pool plus guest-memory addresses the DMA paths chase. *)

module Prng = Sedspec_util.Prng

(* The request surface of one device: its injectable handlers and the
   registered I/O ranges, so synthetic port/MMIO accesses carry coherent
   (addr, offset, size, data) tuples. *)
type io_point = { ip_handler : string; ip_base : int64; ip_len : int }

type surface = {
  sf_handlers : (string * string list) array;  (** (name, declared params). *)
  sf_io : io_point array;
  sf_io_handlers : (string, unit) Hashtbl.t;
  sf_dict : int64 array;
      (** Integer literals harvested from the device IR — switch cases
          (command opcodes), comparison constants, callback addresses.  The
          fuzzing-dictionary trick: magic values the device actually
          dispatches on, which uniform random bytes would almost never
          hit. *)
}

let rec expr_consts acc (e : Devir.Expr.t) =
  match e with
  | Devir.Expr.Const (v, _) -> v :: acc
  | Field _ | Buf_len _ | Param _ | Local _ -> acc
  | Buf_byte (_, e) | Not e -> expr_consts acc e
  | Binop (_, _, a, b) | Cmp (_, a, b) -> expr_consts (expr_consts acc a) b

let stmt_exprs (s : Devir.Stmt.t) =
  match s with
  | Devir.Stmt.Set_field (_, e) | Set_local (_, e) | Respond e -> [ e ]
  | Set_buf (_, a, b) -> [ a; b ]
  | Buf_fill (_, a, b, c) -> [ a; b; c ]
  | Copy_from_guest { buf_off; addr; len; _ }
  | Copy_to_guest { buf_off; addr; len; _ } ->
    [ buf_off; addr; len ]
  | Read_guest { addr; _ } -> [ addr ]
  | Write_guest { addr; value; _ } -> [ addr; value ]
  | Host_value _ | Note _ -> []

let harvest_dict program =
  let seen = Hashtbl.create 64 in
  let add v = Hashtbl.replace seen v () in
  Devir.Program.iter_blocks program (fun _ (b : Devir.Block.t) ->
      List.iter (fun s -> List.iter (fun e -> List.iter add (expr_consts [] e)) (stmt_exprs s)) b.stmts;
      (match b.term with
       | Devir.Term.Switch (_, cases, _) -> List.iter (fun (v, _) -> add v) cases
       | _ -> ());
      List.iter (fun e -> List.iter add (expr_consts [] e)) (Devir.Term.exprs b.term));
  List.iter (fun (addr, _) -> add addr) (Devir.Program.callbacks program);
  Hashtbl.fold (fun v () acc -> v :: acc) seen []
  |> List.sort Int64.compare |> Array.of_list

let surface_cache : (string * string, surface) Hashtbl.t = Hashtbl.create 8
let surface_lock = Mutex.create ()

let surface ~device ~version =
  let key = (device, Devices.Qemu_version.to_string version) in
  let finally () = Mutex.unlock surface_lock in
  Mutex.lock surface_lock;
  Fun.protect ~finally (fun () ->
      match Hashtbl.find_opt surface_cache key with
      | Some s -> s
      | None ->
        let dev = Exec.cached_device ~device ~version in
        let binding = dev.Devices.Device.make_binding () in
        let handlers =
          Devir.Program.handlers dev.Devices.Device.program
          |> List.map (fun (h : Devir.Program.handler) ->
                 (h.Devir.Program.hname, h.params))
          |> Array.of_list
        in
        let io_handlers = Hashtbl.create 8 in
        let points =
          List.concat_map
            (fun (handler, ranges) ->
              match handler with
              | None -> []
              | Some h ->
                Hashtbl.replace io_handlers h ();
                List.map
                  (fun (base, len) -> { ip_handler = h; ip_base = base; ip_len = len })
                  ranges)
            [
              (binding.Vmm.Machine.pmio_read, binding.pmio);
              (binding.pmio_write, binding.pmio);
              (binding.mmio_read, binding.mmio);
              (binding.mmio_write, binding.mmio);
            ]
          |> Array.of_list
        in
        let s =
          {
            sf_handlers = handlers;
            sf_io = points;
            sf_io_handlers = io_handlers;
            sf_dict = harvest_dict dev.Devices.Device.program;
          }
        in
        Hashtbl.replace surface_cache key s;
        s)

(* --- Value pools ------------------------------------------------------- *)

let interesting : int64 array =
  [|
    0L; 1L; 2L; 3L; 4L; 7L; 8L; 15L; 16L; 31L; 32L; 63L; 64L; 127L; 128L;
    255L; 256L; 511L; 512L; 1023L; 1024L; 4095L; 4096L; 0x7FFFL; 0x8000L;
    0xFFFFL; 0x10000L; 0x7FFFFFFFL; 0x80000000L; 0xFFFFFFFFL; 0x100000000L;
    0x7FFFFFFFFFFFFFFFL; 0x8000000000000000L; -1L (* 0xFFFF..FF *);
  |]

(* Guest addresses the workload drivers actually stage data at sit below
   1 MiB; mutants mostly stay there so DMA chases resolve, with the
   occasional wild pointer. *)
let guest_addr rng =
  if Prng.chance rng 0.9 then Int64.of_int (Prng.int rng 0xA0000 land lnot 3)
  else Prng.pick rng interesting

let contains name sub =
  let n = String.length name and m = String.length sub in
  let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
  go 0

let looks_like_addr name =
  List.exists (contains name) [ "addr"; "ptr"; "base"; "page" ]

let looks_like_count name =
  List.exists (contains name) [ "size"; "len"; "count"; "num"; "idx"; "off" ]

(* Boundary values, device-dictionary magic values, or raw noise. *)
let payload_value rng s =
  if Array.length s.sf_dict > 0 && Prng.chance rng 0.4 then
    Prng.pick rng s.sf_dict
  else if Prng.chance rng 0.65 then Prng.pick rng interesting
  else Prng.next rng

let value_for rng s name =
  if looks_like_addr name then guest_addr rng
  else if looks_like_count name then Int64.of_int (Prng.int rng 4096)
  else payload_value rng s

let sizes = [| 1L; 2L; 4L |]

(* A coherent port/MMIO access: the four parameters the machine's access
   path would itself derive from (addr, size, data). *)
let synth_io rng s (p : io_point) =
  let off = Prng.int rng p.ip_len in
  Input.Req
    {
      handler = p.ip_handler;
      params =
        [
          ("addr", Int64.add p.ip_base (Int64.of_int off));
          ("offset", Int64.of_int off);
          ("size", Prng.pick rng sizes);
          ("data", payload_value rng s);
        ];
    }

let synth_req rng s =
  if Array.length s.sf_io > 0 && Prng.chance rng 0.6 then
    synth_io rng s (Prng.pick rng s.sf_io)
  else begin
    let name, params = Prng.pick rng s.sf_handlers in
    if Hashtbl.mem s.sf_io_handlers name && Array.length s.sf_io > 0 then
      (* Route I/O handlers through the coherent path anyway. *)
      synth_io rng s
        (Prng.pick rng
           (Array.of_list
              (List.filter (fun p -> p.ip_handler = name)
                 (Array.to_list s.sf_io))))
    else
      Input.Req
        { handler = name; params = List.map (fun n -> (n, value_for rng s n)) params }
  end

let synth_guest_write rng =
  let len = 1 + Prng.int rng 64 in
  Input.Guest_write
    { addr = guest_addr rng; data = Bytes.to_string (Prng.bytes rng len) }

(* Fault steps reuse the campaign's plan constants ({!Faultinj.Plan}):
   the same XOR masks, short-read limits and delay spins the harness
   replays, so corpus faults and campaign faults explore one shape
   space.  Clears are over-weighted so guest faults don't pile up and
   drown the replay in corruption noise. *)
let synth_fault rng =
  Input.Fault
    (match Prng.int rng 11 with
    | 0 -> Input.F_guest_xor (Prng.pick rng Faultinj.Plan.masks)
    | 1 -> Input.F_guest_short (Prng.pick rng Faultinj.Plan.limits)
    | 2 -> Input.F_walk_raise
    | 3 -> Input.F_walk_delay (Prng.pick rng Faultinj.Plan.spins)
    | 4 -> Input.F_resp_read (Prng.pick rng Faultinj.Plan.masks)
    | 5 -> Input.F_resp_store (Prng.pick rng Faultinj.Plan.masks)
    | 6 -> Input.F_resp_dma (Prng.pick rng Faultinj.Plan.resp_deltas)
    | 7 -> Input.F_resp_irq (Prng.pick rng Faultinj.Plan.bursts)
    | 8 -> Input.F_resp_clear
    | _ -> Input.F_guest_clear)

(* --- Step/sequence mutations ------------------------------------------- *)

let mutate_value rng s v =
  match Prng.int rng 5 with
  | 0 -> Prng.pick rng interesting
  | 1 -> Int64.add v (Int64.of_int (Prng.int_in rng (-16) 16))
  | 2 -> Int64.logxor v (Int64.shift_left 1L (Prng.int rng 64))
  | 3 when Array.length s.sf_dict > 0 -> Prng.pick rng s.sf_dict
  | _ -> Prng.next rng

let mutate_step rng s step =
  match step with
  | Input.Req { handler; params } ->
    if params = [] then synth_req rng s
    else begin
      let i = Prng.int rng (List.length params) in
      Input.Req
        {
          handler;
          params =
            List.mapi
              (fun j (k, v) -> if j = i then (k, mutate_value rng s v) else (k, v))
              params;
        }
    end
  | Input.Guest_write { addr; data } -> (
    match Prng.int rng 4 with
    | 0 when String.length data > 0 ->
      (* Randomise one byte. *)
      let b = Bytes.of_string data in
      let i = Prng.int rng (Bytes.length b) in
      Bytes.set b i (Char.chr (Prng.int rng 256));
      Input.Guest_write { addr; data = Bytes.to_string b }
    | 1 -> Input.Guest_write { addr = mutate_value rng s addr; data }
    | 2 when String.length data > 1 ->
      (* Truncate. *)
      let keep = 1 + Prng.int rng (String.length data - 1) in
      Input.Guest_write { addr; data = String.sub data 0 keep }
    | _ ->
      let extra = Bytes.to_string (Prng.bytes rng (1 + Prng.int rng 16)) in
      Input.Guest_write { addr; data = data ^ extra })
  | Input.Fault f -> (
    match f with
    | Input.F_guest_xor mask when Prng.chance rng 0.5 ->
      Input.Fault (Input.F_guest_xor (mutate_value rng s mask))
    | Input.F_guest_short limit when Prng.chance rng 0.5 ->
      Input.Fault (Input.F_guest_short (mutate_value rng s limit))
    | Input.F_resp_read mask when Prng.chance rng 0.5 ->
      Input.Fault (Input.F_resp_read (mutate_value rng s mask))
    | Input.F_resp_store mask when Prng.chance rng 0.5 ->
      Input.Fault (Input.F_resp_store (mutate_value rng s mask))
    | Input.F_resp_dma delta when Prng.chance rng 0.5 ->
      Input.Fault (Input.F_resp_dma (delta + Prng.int_in rng (-64) 64))
    | _ -> synth_fault rng)

let splice a b ~at_a ~at_b =
  Array.append (Array.sub a 0 at_a) (Array.sub b at_b (Array.length b - at_b))

let one_mutation rng s ~pool steps =
  let n = Array.length steps in
  if n = 0 then [| synth_req rng s |]
  else
    match Prng.int rng 9 with
    | 0 when n > 1 ->
      (* Remove a step. *)
      let i = Prng.int rng n in
      Array.init (n - 1) (fun j -> if j < i then steps.(j) else steps.(j + 1))
    | 1 ->
      (* Duplicate a step in place. *)
      let i = Prng.int rng n in
      Array.init (n + 1) (fun j ->
          if j <= i then steps.(j) else steps.(j - 1))
    | 2 when n > 1 ->
      (* Swap two steps. *)
      let out = Array.copy steps in
      let i = Prng.int rng n and j = Prng.int rng n in
      let t = out.(i) in
      out.(i) <- out.(j);
      out.(j) <- t;
      out
    | 3 when n > 1 ->
      (* Truncate the tail. *)
      Array.sub steps 0 (1 + Prng.int rng (n - 1))
    | 4 | 5 ->
      (* Mutate one step's payload. *)
      let out = Array.copy steps in
      let i = Prng.int rng n in
      out.(i) <- mutate_step rng s out.(i);
      out
    | 6 ->
      (* Insert a synthetic request, guest write, or scheduled fault. *)
      let i = Prng.int rng (n + 1) in
      let fresh =
        if Prng.chance rng 0.15 then synth_fault rng
        else if Prng.chance rng 0.75 then synth_req rng s
        else synth_guest_write rng
      in
      Array.init (n + 1) (fun j ->
          if j < i then steps.(j) else if j = i then fresh else steps.(j - 1))
    | 7 when Array.length pool > 0 ->
      (* Crossover with another corpus member. *)
      let other = (Prng.pick rng pool : Input.t).steps in
      if Array.length other = 0 then steps
      else
        splice steps other
          ~at_a:(Prng.int rng (n + 1))
          ~at_b:(Prng.int rng (Array.length other))
    | _ ->
      let out = Array.copy steps in
      let i = Prng.int rng n in
      out.(i) <- mutate_step rng s out.(i);
      out

let mutate ~rng ~max_steps ~pool (parent : Input.t) =
  let s = surface ~device:parent.device ~version:parent.version in
  let steps = ref parent.steps in
  (* Oversized parents contribute a window, not the whole transcript. *)
  if Array.length !steps > max_steps then begin
    let start = Prng.int rng (Array.length !steps - max_steps + 1) in
    steps := Array.sub !steps start max_steps
  end;
  let rounds = 1 + Prng.int rng 4 in
  for _ = 1 to rounds do
    steps := one_mutation rng s ~pool !steps
  done;
  if Array.length !steps > max_steps then steps := Array.sub !steps 0 max_steps;
  { parent with origin = Input.Mutant; steps = !steps }
