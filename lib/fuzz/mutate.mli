(** Mutation operators over interaction sequences.

    Mutants stay within the device's declared request surface: only
    handlers the program defines are injected, with every declared
    parameter bound, so device-side failures surface as traps or checker
    anomalies (findings) rather than malformed-dispatch noise. *)

val mutate :
  rng:Sedspec_util.Prng.t ->
  max_steps:int ->
  pool:Input.t array ->
  Input.t ->
  Input.t
(** Derive a mutant from a parent: a stack of 1–4 structural (remove,
    duplicate, swap, truncate, insert, crossover with [pool]) and payload
    (parameter/byte) mutations, capped at [max_steps] steps.  All
    randomness comes from [rng]. *)
