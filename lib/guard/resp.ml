(* Response-direction execution profile: what the host->guest channel of a
   device looks like under benign traffic.  The trainer mirrors SEDSpec's
   request-direction collection, but over the [Interp] response seam —
   read-return values, outbound DMA, completion stores, IRQ edges. *)

type kind = K_read | K_dma | K_store | K_irq

let nkinds = 4
let kind_index = function K_read -> 0 | K_dma -> 1 | K_store -> 2 | K_irq -> 3

let kind_to_string = function
  | K_read -> "read-return"
  | K_dma -> "dma-out"
  | K_store -> "completion-store"
  | K_irq -> "irq-raise"

type profile = {
  device : string;
  starts : bool array;
  follows : bool array array;
  read_mask : int64;
  store_mask : int64;
  dma_len_max : int;
  irq_max : int;
  events_max : int;
  trained_interactions : int;
}

(* Smear the highest set bit downward: the envelope admits every value
   whose bits all sit at or below the highest bit observed in training. *)
let below_mask v =
  let v = Int64.logor v (Int64.shift_right_logical v 1) in
  let v = Int64.logor v (Int64.shift_right_logical v 2) in
  let v = Int64.logor v (Int64.shift_right_logical v 4) in
  let v = Int64.logor v (Int64.shift_right_logical v 8) in
  let v = Int64.logor v (Int64.shift_right_logical v 16) in
  Int64.logor v (Int64.shift_right_logical v 32)

type collector = {
  c_starts : bool array;
  c_follows : bool array array;
  mutable c_read_mask : int64;
  mutable c_store_mask : int64;
  mutable c_dma_max : int;
  mutable c_irq_max : int;
  mutable c_events_max : int;
  mutable c_prev : kind option;  (** Last kind in the open interaction. *)
  mutable c_events : int;  (** Events in the open interaction. *)
  mutable c_irqs : int;  (** Raises in the open interaction. *)
  mutable c_interactions : int;
}

let collector () =
  {
    c_starts = Array.make nkinds false;
    c_follows = Array.make_matrix nkinds nkinds false;
    c_read_mask = 0L;
    c_store_mask = 0L;
    c_dma_max = 0;
    c_irq_max = 0;
    c_events_max = 0;
    c_prev = None;
    c_events = 0;
    c_irqs = 0;
    c_interactions = 0;
  }

let record_kind c k =
  (match c.c_prev with
  | None -> c.c_starts.(kind_index k) <- true
  | Some p -> c.c_follows.(kind_index p).(kind_index k) <- true);
  c.c_prev <- Some k;
  c.c_events <- c.c_events + 1

let observe c (ev : Interp.Event.response_event) =
  match ev with
  | Interp.Event.R_read_return v ->
    c.c_read_mask <- Int64.logor c.c_read_mask (below_mask v);
    record_kind c K_read
  | Interp.Event.R_dma_out { len; _ } ->
    if len > c.c_dma_max then c.c_dma_max <- len;
    record_kind c K_dma
  | Interp.Event.R_store { value; _ } ->
    c.c_store_mask <- Int64.logor c.c_store_mask (below_mask value);
    record_kind c K_store
  | Interp.Event.R_irq true ->
    c.c_irqs <- c.c_irqs + 1;
    record_kind c K_irq
  | Interp.Event.R_irq false -> ()

(* Close the open interaction: fold its totals into the maxima. *)
let boundary c =
  if c.c_events > 0 || c.c_prev <> None then begin
    if c.c_events > c.c_events_max then c.c_events_max <- c.c_events;
    if c.c_irqs > c.c_irq_max then c.c_irq_max <- c.c_irqs;
    c.c_interactions <- c.c_interactions + 1
  end;
  c.c_prev <- None;
  c.c_events <- 0;
  c.c_irqs <- 0

let finalize c ~device =
  boundary c;
  {
    device;
    starts = Array.copy c.c_starts;
    follows = Array.map Array.copy c.c_follows;
    read_mask = c.c_read_mask;
    store_mask = c.c_store_mask;
    (* Envelope slack: benign traffic must never trip the validator, so
       lengths and event rates get headroom; masks already generalise by
       construction (every value below the observed magnitude passes). *)
    dma_len_max = (max 1 c.c_dma_max) * 2;
    irq_max = max 1 c.c_irq_max;
    events_max = (max 1 c.c_events_max) * 2;
    trained_interactions = c.c_interactions;
  }

(* The profile for a pair with no benign evidence at all: the empty
   start/follow matrices flag every response kind as an untrained opening
   (or sequence), the zero volume bounds flag any DMA byte, IRQ raise or
   second event.  Fail-closed by construction — a validator running this
   profile pends an anomaly on the very first host->guest event. *)
let fail_closed ~device =
  {
    device;
    starts = Array.make nkinds false;
    follows = Array.make_matrix nkinds nkinds false;
    read_mask = 0L;
    store_mask = 0L;
    dma_len_max = 0;
    irq_max = 0;
    events_max = 0;
    trained_interactions = 0;
  }

let is_fail_closed p =
  p.trained_interactions = 0
  && Array.for_all (fun b -> not b) p.starts

(* Train over a machine by splicing the collector into the device interp's
   response hook and delimiting interactions at the dispatch boundary,
   then restoring both seams. *)
let train ?(cases_seen = ref 0) machine ~device
    (trainer : Sedspec.Pipeline.trainer) =
  let interp = Vmm.Machine.interp_of machine device in
  let c = collector () in
  let prev_hooks = Interp.hooks interp in
  Interp.set_hooks interp
    {
      prev_hooks with
      Interp.on_response =
        (fun ev ->
          observe c ev;
          prev_hooks.Interp.on_response ev);
    };
  let prev_ip = Vmm.Machine.interposer_of machine device in
  Vmm.Machine.set_interposer machine device
    {
      Vmm.Machine.before =
        (fun req ->
          boundary c;
          match prev_ip with
          | Some ip -> ip.Vmm.Machine.before req
          | None -> Vmm.Machine.Allow);
      after =
        (fun req outcome ->
          match prev_ip with
          | Some ip -> ip.Vmm.Machine.after req outcome
          | None -> Vmm.Machine.Allow);
    };
  Fun.protect
    ~finally:(fun () ->
      Interp.set_hooks interp prev_hooks;
      (match prev_ip with
      | Some ip -> Vmm.Machine.set_interposer machine device ip
      | None -> Vmm.Machine.clear_interposer machine device))
    (fun () ->
      for case = 0 to trainer.Sedspec.Pipeline.cases - 1 do
        trainer.Sedspec.Pipeline.run_case machine case;
        incr cases_seen
      done;
      finalize c ~device)

let pp ppf p =
  let kinds = [ K_read; K_dma; K_store; K_irq ] in
  Format.fprintf ppf
    "response profile %s: %d interactions, read_mask=0x%Lx store_mask=0x%Lx \
     dma<=%d irq<=%d events<=%d@."
    p.device p.trained_interactions p.read_mask p.store_mask p.dma_len_max
    p.irq_max p.events_max;
  List.iter
    (fun k ->
      if p.starts.(kind_index k) then
        Format.fprintf ppf "  start: %s@." (kind_to_string k))
    kinds;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if p.follows.(kind_index a).(kind_index b) then
            Format.fprintf ppf "  %s -> %s@." (kind_to_string a)
              (kind_to_string b))
        kinds)
    kinds
