(** Response-direction execution profiles (the guest-side mirror of the
    ES-CFG).

    SEDSpec's checker trains over the guest->host direction: what requests
    a driver issues and how the device's state machine answers them.  A
    {e hostile device model} attacks the opposite channel — the values it
    returns, the completions it writes, the interrupts it raises.  This
    module trains a compact automaton over that host->guest stream (the
    {!Interp.Event.response_event} seam):

    - a {b kind bigram}: which response kinds may open an interaction and
      which may follow which (read-return, outbound DMA, completion
      store, IRQ raise — IRQ lowers are housekeeping and are ignored);
    - {b value envelopes}: for read-returns and completion stores, the
      all-bits-below-highest-observed-bit mask, so any value of a trained
      magnitude passes and a corrupted high bit or poisoned pattern does
      not;
    - {b volume bounds}: maximum outbound-DMA length (x2 slack), maximum
      IRQ raises and total response events per interaction.

    Like the request-direction trainer, profiles generalise by
    construction and never trip on the traffic that trained them. *)

type kind = K_read | K_dma | K_store | K_irq

val kind_index : kind -> int
val kind_to_string : kind -> string

type profile = {
  device : string;
  starts : bool array;  (** Kinds that may open an interaction. *)
  follows : bool array array;  (** [follows.(a).(b)]: b may follow a. *)
  read_mask : int64;  (** Envelope for {!Interp.Event.R_read_return}. *)
  store_mask : int64;  (** Envelope for {!Interp.Event.R_store}. *)
  dma_len_max : int;  (** Outbound-DMA length bound (trained max x2). *)
  irq_max : int;  (** IRQ raises per interaction. *)
  events_max : int;  (** Response events per interaction (trained max x2). *)
  trained_interactions : int;
}

val below_mask : int64 -> int64
(** Smear the highest set bit downward: the envelope contribution of one
    observed value. *)

type collector

val collector : unit -> collector
val observe : collector -> Interp.Event.response_event -> unit
val boundary : collector -> unit
(** Close the open interaction (fold its event/IRQ totals into the
    maxima).  Call at every dispatch boundary. *)

val finalize : collector -> device:string -> profile

val fail_closed : device:string -> profile
(** The profile for an untrained (device, version) pair: empty
    start/follow matrices and zero volume bounds, so a validator running
    it flags {e every} host→guest response event.  Canaried versions with
    no benign corpus get a safe guard instead of none. *)

val is_fail_closed : profile -> bool
(** True for profiles with no benign evidence (as built by
    {!fail_closed}): zero trained interactions and no admissible opening
    kind. *)

val train :
  ?cases_seen:int ref ->
  Vmm.Machine.t ->
  device:string ->
  Sedspec.Pipeline.trainer ->
  profile
(** Run the benign training corpus with the collector spliced into the
    device's response hook and the machine's dispatch boundary; both
    seams are restored afterwards (exception-safe). *)

val pp : Format.formatter -> profile -> unit
