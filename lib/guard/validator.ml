module Checker = Sedspec.Checker

type violation =
  | V_sequence
  | V_envelope
  | V_dma_len
  | V_irq_storm
  | V_event_storm
  | V_internal

let violation_index = function
  | V_sequence -> 0
  | V_envelope -> 1
  | V_dma_len -> 2
  | V_irq_storm -> 3
  | V_event_storm -> 4
  | V_internal -> 5

let violation_to_string = function
  | V_sequence -> "response-sequence"
  | V_envelope -> "value-envelope"
  | V_dma_len -> "dma-length"
  | V_irq_storm -> "irq-storm"
  | V_event_storm -> "response-storm"
  | V_internal -> "internal"

type anomaly = { violation : violation; detail : string }

type config = { containment : Checker.containment; heal_budget : int }

let default_config = { containment = Checker.Fail_closed; heal_budget = 8 }

type t = {
  machine : Vmm.Machine.t;
  device : string;
  profile : Resp.profile;
  mutable config : config;
  interp : Interp.t;
  prev_hooks : Interp.hooks;
  prev_interposer : Vmm.Machine.interposer option;
  (* In-flight interaction state. *)
  mutable prev_kind : Resp.kind option;
  mutable events : int;
  mutable irqs : int;
  flagged : bool array;  (** One anomaly per violation kind per interaction. *)
  mutable pending_rev : anomaly list;
  (* Accumulated. *)
  mutable anomalies_rev : anomaly list;
  mutable internal_errors : int;
  mutable interactions : int;
  mutable events_seen : int;
  mutable heals : int;
  mutable checks : int;
  mutable fault_hook : (unit -> unit) option;
}

let pend t violation detail =
  if not t.flagged.(violation_index violation) then begin
    t.flagged.(violation_index violation) <- true;
    t.pending_rev <- { violation; detail } :: t.pending_rev
  end

let record_internal t msg =
  t.internal_errors <- t.internal_errors + 1;
  t.anomalies_rev <-
    { violation = V_internal; detail = msg } :: t.anomalies_rev

let check_kind t (k : Resp.kind) =
  let p = t.profile in
  (match t.prev_kind with
  | None ->
    if not p.Resp.starts.(Resp.kind_index k) then
      pend t V_sequence
        (Printf.sprintf "untrained opening response: %s"
           (Resp.kind_to_string k))
  | Some pk ->
    if not p.Resp.follows.(Resp.kind_index pk).(Resp.kind_index k) then
      pend t V_sequence
        (Printf.sprintf "untrained response sequence: %s after %s"
           (Resp.kind_to_string k) (Resp.kind_to_string pk)));
  t.prev_kind <- Some k;
  t.events <- t.events + 1;
  t.events_seen <- t.events_seen + 1;
  if t.events > p.Resp.events_max then
    pend t V_event_storm
      (Printf.sprintf "response storm: %d events in one interaction (bound %d)"
         t.events p.Resp.events_max)

(* The hook runs inside device execution: it must be total.  Any internal
   failure is contained here and adjudicated at the interaction boundary. *)
let on_event t (ev : Interp.Event.response_event) =
  try
    let p = t.profile in
    match ev with
    | Interp.Event.R_read_return v ->
      check_kind t Resp.K_read;
      if Int64.logand v (Int64.lognot p.Resp.read_mask) <> 0L then
        pend t V_envelope
          (Printf.sprintf
             "read-return 0x%Lx outside trained envelope 0x%Lx" v
             p.Resp.read_mask)
    | Interp.Event.R_dma_out { len; _ } ->
      check_kind t Resp.K_dma;
      if len > p.Resp.dma_len_max then
        pend t V_dma_len
          (Printf.sprintf "outbound DMA length %d exceeds trained bound %d"
             len p.Resp.dma_len_max)
    | Interp.Event.R_store { value; _ } ->
      check_kind t Resp.K_store;
      if Int64.logand value (Int64.lognot p.Resp.store_mask) <> 0L then
        pend t V_envelope
          (Printf.sprintf
             "completion store 0x%Lx outside trained envelope 0x%Lx" value
             p.Resp.store_mask)
    | Interp.Event.R_irq true ->
      check_kind t Resp.K_irq;
      t.irqs <- t.irqs + 1;
      if t.irqs > p.Resp.irq_max then
        pend t V_irq_storm
          (Printf.sprintf "IRQ storm: %d raises in one interaction (bound %d)"
             t.irqs p.Resp.irq_max)
    | Interp.Event.R_irq false -> ()
  with e -> record_internal t ("response hook: " ^ Printexc.to_string e)

let reset_inflight t =
  t.prev_kind <- None;
  t.events <- 0;
  t.irqs <- 0;
  Array.fill t.flagged 0 (Array.length t.flagged) false

let strongest a b =
  match (a, b) with
  | (Vmm.Machine.Halt _ as h), _ | _, (Vmm.Machine.Halt _ as h) -> h
  | (Vmm.Machine.Warn _ as w), _ | _, (Vmm.Machine.Warn _ as w) -> w
  | Vmm.Machine.Allow, Vmm.Machine.Allow -> Vmm.Machine.Allow

let before t req =
  let chained =
    match t.prev_interposer with
    | Some ip -> ip.Vmm.Machine.before req
    | None -> Vmm.Machine.Allow
  in
  (* A left-over in-flight buffer means the previous interaction never
     reached [after] (e.g. a trap unwound dispatch): adjudicate what it
     gathered rather than leaking it into this interaction's sequence. *)
  if t.pending_rev <> [] then begin
    t.anomalies_rev <- t.pending_rev @ t.anomalies_rev;
    t.pending_rev <- []
  end;
  reset_inflight t;
  t.interactions <- t.interactions + 1;
  chained

let after t req outcome =
  let chained =
    match t.prev_interposer with
    | Some ip -> ip.Vmm.Machine.after req outcome
    | None -> Vmm.Machine.Allow
  in
  let own =
    try
      t.checks <- t.checks + 1;
      (match t.fault_hook with Some f -> f () | None -> ());
      match t.pending_rev with
      | [] -> Vmm.Machine.Allow
      | pending ->
        t.anomalies_rev <- pending @ t.anomalies_rev;
        t.pending_rev <- [];
        let first = List.nth pending (List.length pending - 1) in
        Vmm.Machine.Halt (Printf.sprintf "guard: %s" first.detail)
    with e ->
      record_internal t ("verdict: " ^ Printexc.to_string e);
      (match t.config.containment with
      | Checker.Fail_closed -> Vmm.Machine.Halt "guard: internal error (fail closed)"
      | Checker.Fail_open_warn -> Vmm.Machine.Warn "guard: internal error (fail open)")
  in
  strongest chained own

let attach ?(config = default_config) machine ~device ~profile =
  let interp = Vmm.Machine.interp_of machine device in
  let prev_hooks = Interp.hooks interp in
  let prev_interposer = Vmm.Machine.interposer_of machine device in
  let t =
    {
      machine;
      device;
      profile;
      config;
      interp;
      prev_hooks;
      prev_interposer;
      prev_kind = None;
      events = 0;
      irqs = 0;
      flagged = Array.make 6 false;
      pending_rev = [];
      anomalies_rev = [];
      internal_errors = 0;
      interactions = 0;
      events_seen = 0;
      heals = 0;
      checks = 0;
      fault_hook = None;
    }
  in
  Interp.set_hooks interp
    {
      prev_hooks with
      Interp.on_response =
        (fun ev ->
          on_event t ev;
          prev_hooks.Interp.on_response ev);
    };
  Vmm.Machine.set_interposer machine device
    { Vmm.Machine.before = before t; after = after t };
  t

let detach t =
  Interp.set_hooks t.interp t.prev_hooks;
  match t.prev_interposer with
  | Some ip -> Vmm.Machine.set_interposer t.machine t.device ip
  | None -> Vmm.Machine.clear_interposer t.machine t.device

let anomalies t = List.rev t.anomalies_rev

let drain t =
  let l = List.rev t.anomalies_rev in
  t.anomalies_rev <- [];
  l

let strategy_of = function
  | V_envelope | V_dma_len -> Checker.Parameter_check
  | V_sequence | V_irq_storm | V_event_storm -> Checker.Conditional_jump_check
  | V_internal -> Checker.Internal_error

let drain_as_checker_anomalies t =
  List.map
    (fun a ->
      {
        Checker.strategy = strategy_of a.violation;
        at = None;
        detail = "guard: " ^ a.detail;
        pre_execution = false;
      })
    (drain t)

(* Bounded self-healing, mirroring the checker's discipline: clear a
   stale in-flight buffer (an interaction that never closed), at most
   [heal_budget] times per validator lifetime. *)
let heal t =
  if t.prev_kind = None && t.pending_rev = [] then true
  else if t.heals >= t.config.heal_budget then false
  else begin
    t.heals <- t.heals + 1;
    if t.pending_rev <> [] then begin
      t.anomalies_rev <- t.pending_rev @ t.anomalies_rev;
      t.pending_rev <- []
    end;
    reset_inflight t;
    true
  end

let reset t =
  reset_inflight t;
  t.pending_rev <- [];
  t.anomalies_rev <- [];
  t.internal_errors <- 0;
  t.interactions <- 0;
  t.events_seen <- 0;
  t.heals <- 0;
  t.checks <- 0;
  t.fault_hook <- None

let set_fault_hook t h = t.fault_hook <- h
let internal_errors t = t.internal_errors
let interactions t = t.interactions
let events_seen t = t.events_seen
let heals t = t.heals
let config t = t.config
let set_config t c = t.config <- c
let profile t = t.profile
let device t = t.device

let pp_anomaly ppf a =
  Format.fprintf ppf "[guard:%s] %s" (violation_to_string a.violation) a.detail
