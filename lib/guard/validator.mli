(** The guest-side validator: enforcement over the host->guest channel.

    SEDSpec's checker assumes the device model is buggy but not actively
    hostile: it vets what the guest asks the device to do.  The validator
    closes the opposite seam — a compromised or adversarially patched
    device model feeding the guest corrupted read-returns, oversized
    completions or interrupt storms.  It walks the trained
    {!Resp.profile} over the response stream of one device and turns any
    departure into a fail-closed verdict, with the checker's containment
    discipline:

    - the response hook is total: an internal failure is contained and
      adjudicated at the interaction boundary under the configured
      {!Sedspec.Checker.containment} policy (fail-closed by default —
      protection degrades to unavailability, never to silence);
    - self-healing is bounded ([heal_budget]), so a fault that
      re-corrupts the in-flight state on every interaction degrades to an
      explicit refusal instead of masking itself forever;
    - {!attach} chains in front of whatever interposer is already
      installed (normally the ES-Checker's), so both directions are
      enforced and the {e strongest} verdict wins — and
      {!drain_as_checker_anomalies} feeds the remedy supervisor, so a
      hostile device trips the same rollback/circuit-breaker machinery as
      a request-direction exploit. *)

type violation =
  | V_sequence  (** Response kind outside the trained bigram. *)
  | V_envelope  (** Read-return/store value outside the trained mask. *)
  | V_dma_len  (** Outbound DMA longer than the trained bound. *)
  | V_irq_storm  (** More IRQ raises per interaction than trained. *)
  | V_event_storm  (** More response events per interaction than trained. *)
  | V_internal  (** Contained validator failure (diagnostic channel). *)

val violation_to_string : violation -> string

type anomaly = { violation : violation; detail : string }

type config = {
  containment : Sedspec.Checker.containment;
      (** Verdict policy for contained internal errors. *)
  heal_budget : int;
}

val default_config : config
(** Fail-closed, heal budget 8. *)

type t

val attach :
  ?config:config ->
  Vmm.Machine.t ->
  device:string ->
  profile:Resp.profile ->
  t
(** Splice the validator into the device's response hook and the
    machine's dispatch path, chaining in front of any installed
    interposer.  At most one validator per device at a time. *)

val detach : t -> unit
(** Restore the previous hooks and interposer. *)

val anomalies : t -> anomaly list
(** All anomalies so far, oldest first. *)

val drain : t -> anomaly list

val drain_as_checker_anomalies : t -> Sedspec.Checker.anomaly list
(** Drain, rendered as checker anomalies (envelope/DMA violations as
    parameter checks, sequence/storm violations as conditional-jump
    checks, internal as [Internal_error]; detail prefixed ["guard: "]) —
    the adapter the remedy supervisor's [aux_drain] consumes. *)

val heal : t -> bool
(** Clear a stale in-flight buffer (an interaction that never reached its
    boundary), at most [heal_budget] times; [false] once the budget is
    spent and state is still dirty. *)

val reset : t -> unit
(** Return to the just-attached state (clears anomalies, counters, heal
    budget spend and the fault hook). *)

val set_fault_hook : t -> (unit -> unit) option -> unit
(** Fault-injection seam: runs at the top of every boundary adjudication,
    inside the containment wrapper — an injected exception exercises the
    fail-closed/fail-open policies exactly like a real internal fault. *)

val internal_errors : t -> int
val interactions : t -> int
val events_seen : t -> int
val heals : t -> int
val config : t -> config
val set_config : t -> config -> unit
val profile : t -> Resp.profile
val device : t -> string
val pp_anomaly : Format.formatter -> anomaly -> unit
