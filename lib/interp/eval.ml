open Devir

type overflow = {
  ov_op : Expr.binop;
  ov_width : Width.t;
  ov_lhs : int64;
  ov_rhs : int64;
  ov_result : int64;
}

exception Div_by_zero
exception Undefined_local of string
exception Undefined_param of string

type ctx = {
  get_field : string -> int64;
  get_buf_byte : string -> int -> int;
  buf_len : string -> int;
  get_param : string -> int64;
  get_local : string -> int64;
  record_overflow : overflow -> unit;
}

let truthy v = v <> 0L

(* Unsigned wrap detection.  Operands arrive already truncated to [w], so
   for widths below 64 bits exact results of + and - fit in an int64 and a
   range check suffices; W64 uses the classic carry/borrow tests. *)
let binop ~record op w a b =
  let a = Width.truncate w a and b = Width.truncate w b in
  let wrapped exact =
    let r = Width.truncate w exact in
    if not (Width.fits_unsigned w exact) then
      record { ov_op = op; ov_width = w; ov_lhs = a; ov_rhs = b; ov_result = r };
    r
  in
  match op with
  | Expr.Add ->
    if w = Width.W64 then begin
      let r = Int64.add a b in
      if Int64.unsigned_compare r a < 0 then
        record { ov_op = op; ov_width = w; ov_lhs = a; ov_rhs = b; ov_result = r };
      r
    end
    else wrapped (Int64.add a b)
  | Expr.Sub ->
    let r = Width.truncate w (Int64.sub a b) in
    if Int64.unsigned_compare b a > 0 then
      record { ov_op = op; ov_width = w; ov_lhs = a; ov_rhs = b; ov_result = r };
    r
  | Expr.Mul ->
    (* Operands of width <= 32 give an exact product within unsigned 64
       bits, so the range check in [wrapped] is precise.  W64 multiplies
       wrap silently; the modelled devices never use them. *)
    if w = Width.W64 then Int64.mul a b else wrapped (Int64.mul a b)
  | Expr.Div ->
    if b = 0L then raise Div_by_zero else Int64.unsigned_div a b
  | Expr.Rem ->
    if b = 0L then raise Div_by_zero else Int64.unsigned_rem a b
  | Expr.And -> Int64.logand a b
  | Expr.Or -> Int64.logor a b
  | Expr.Xor -> Int64.logxor a b
  | Expr.Shl ->
    let shift = Int64.to_int (Int64.logand b 63L) in
    let exact = Int64.shift_left a shift in
    let r = Width.truncate w exact in
    (* Bits shifted out of the width are an overflow (UBSan-style). *)
    if w <> Width.W64 && not (Width.fits_unsigned w exact) then
      record { ov_op = op; ov_width = w; ov_lhs = a; ov_rhs = b; ov_result = r };
    r
  | Expr.Shr ->
    let shift = Int64.to_int (Int64.logand b 63L) in
    Int64.shift_right_logical a shift

let cmp op a b =
  let u = Int64.unsigned_compare a b and s = Int64.compare a b in
  let r =
    match op with
    | Expr.Eq -> a = b
    | Expr.Ne -> a <> b
    | Expr.Ltu -> u < 0
    | Expr.Leu -> u <= 0
    | Expr.Gtu -> u > 0
    | Expr.Geu -> u >= 0
    | Expr.Lts -> s < 0
    | Expr.Les -> s <= 0
    | Expr.Gts -> s > 0
    | Expr.Ges -> s >= 0
  in
  if r then 1L else 0L

let rec eval ctx (e : Expr.t) =
  match e with
  | Expr.Const (v, w) -> Width.truncate w v
  | Expr.Field n -> ctx.get_field n
  | Expr.Buf_byte (b, idx) ->
    Int64.of_int (ctx.get_buf_byte b (Int64.to_int (eval ctx idx)))
  | Expr.Buf_len b -> Int64.of_int (ctx.buf_len b)
  | Expr.Param n -> ctx.get_param n
  | Expr.Local n -> ctx.get_local n
  | Expr.Binop (op, w, a, b) ->
    binop ~record:ctx.record_overflow op w (eval ctx a) (eval ctx b)
  | Expr.Cmp (op, a, b) -> cmp op (eval ctx a) (eval ctx b)
  | Expr.Not a -> if truthy (eval ctx a) then 0L else 1L

let pp_overflow ppf o =
  Format.fprintf ppf "%Ld %s %Ld wrapped to %Ld at width %s" o.ov_lhs
    (Expr.binop_to_string o.ov_op)
    o.ov_rhs o.ov_result
    (Width.to_string o.ov_width)
