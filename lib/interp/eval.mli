(** Width-aware expression evaluation, shared by the device interpreter and
    the ES-Checker.

    Evaluation is parameterised over lookup functions so the interpreter can
    evaluate against the live control structure while the checker evaluates
    against its own shadow device state.  All arithmetic wraps at its
    declared width; wraps are reported through [record_overflow], which is
    the exact signal the parameter check strategy consumes (the paper uses
    the host flag register plus UBSan-style type metadata for the same
    purpose). *)

type overflow = {
  ov_op : Devir.Expr.binop;
  ov_width : Devir.Width.t;
  ov_lhs : int64;
  ov_rhs : int64;
  ov_result : int64;  (** The wrapped result actually produced. *)
}

exception Div_by_zero
exception Undefined_local of string
exception Undefined_param of string

type ctx = {
  get_field : string -> int64;
  get_buf_byte : string -> int -> int;
      (** May raise {!Devir.Arena.Out_of_arena}. *)
  buf_len : string -> int;
  get_param : string -> int64;  (** Raises {!Undefined_param}. *)
  get_local : string -> int64;  (** Raises {!Undefined_local}. *)
  record_overflow : overflow -> unit;
}

val eval : ctx -> Devir.Expr.t -> int64
(** Evaluate an expression.  Comparison results are 0/1.  May raise
    {!Div_by_zero}, {!Undefined_local}, {!Undefined_param} or
    {!Devir.Arena.Out_of_arena}. *)

val truthy : int64 -> bool
(** Branch semantics: nonzero is taken. *)

val binop :
  record:(overflow -> unit) ->
  Devir.Expr.binop ->
  Devir.Width.t ->
  int64 ->
  int64 ->
  int64
(** The arithmetic primitive behind {!eval}, exposed so compiled
    expression closures share the exact wrap-detection semantics.  May
    raise {!Div_by_zero}. *)

val cmp : Devir.Expr.cmpop -> int64 -> int64 -> int64
(** Comparison primitive; returns 0/1. *)

val pp_overflow : Format.formatter -> overflow -> unit
