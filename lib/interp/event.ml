type trace_event = Pge of int64 | Tnt of bool | Tip of int64 | Pgd

type obs_outcome =
  | O_goto of string
  | O_taken
  | O_not_taken
  | O_case of int64 * string
  | O_icall of int64
  | O_halt

type observe_entry = {
  block : Devir.Program.bref;
  kind : Devir.Block.kind;
  state : (string * int64) list;
  outcome : obs_outcome;
  cmd : int64 option;
  stmts : Devir.Stmt.t list;
  term : Devir.Term.t;
}

type oob_event = {
  oob_block : Devir.Program.bref;
  oob_buf : string;
  oob_index : int;
  oob_write : bool;
}

(* The host→guest channel, as the guest experiences it: every value the
   device hands back crosses exactly one of these four seams. *)
type response_event =
  | R_read_return of int64  (* [Respond] value returned for a read *)
  | R_dma_out of { addr : int64; len : int }  (* [Copy_to_guest] *)
  | R_store of { addr : int64; value : int64; width : Devir.Width.t }
      (* [Write_guest] — completion/status writes into guest memory *)
  | R_irq of bool  (* IRQ line raised/lowered through a callback *)

type trap =
  | Wild_jump of { block : Devir.Program.bref; target : int64 }
  | Icall_blocked of { block : Devir.Program.bref; target : int64 }
  | Div_by_zero of Devir.Program.bref
  | Out_of_arena of { block : Devir.Program.bref; field : string; index : int }
  | Undefined_param of { block : Devir.Program.bref; param : string }
  | Undefined_local of { block : Devir.Program.bref; local : string }
  | Step_limit
  | Depth_limit

type outcome = Done of { response : int64 option } | Trapped of trap

let pp_trace_event ppf = function
  | Pge a -> Format.fprintf ppf "PGE %Lx" a
  | Tnt b -> Format.fprintf ppf "TNT %c" (if b then 'T' else 'N')
  | Tip a -> Format.fprintf ppf "TIP %Lx" a
  | Pgd -> Format.fprintf ppf "PGD"

let pp_obs_outcome ppf = function
  | O_goto l -> Format.fprintf ppf "goto %s" l
  | O_taken -> Format.fprintf ppf "taken"
  | O_not_taken -> Format.fprintf ppf "not-taken"
  | O_case (v, l) -> Format.fprintf ppf "case %Ld -> %s" v l
  | O_icall v -> Format.fprintf ppf "icall %Lx" v
  | O_halt -> Format.fprintf ppf "halt"

let pp_observe_entry ppf (e : observe_entry) =
  Format.fprintf ppf "@[<h>%a [%s] %a {%s}%s@]" Devir.Program.pp_bref e.block
    (Devir.Block.kind_to_string e.kind)
    pp_obs_outcome e.outcome
    (String.concat ", "
       (List.map (fun (n, v) -> Printf.sprintf "%s=%Ld" n v) e.state))
    (match e.cmd with Some c -> Printf.sprintf " cmd=%Ld" c | None -> "")

let pp_response_event ppf = function
  | R_read_return v -> Format.fprintf ppf "read-return %Ld" v
  | R_dma_out { addr; len } -> Format.fprintf ppf "dma-out %Lx+%d" addr len
  | R_store { addr; value; width } ->
    Format.fprintf ppf "store %Lx <- %Ld (%s)" addr value
      (Devir.Width.to_string width)
  | R_irq up -> Format.fprintf ppf "irq %s" (if up then "raise" else "lower")

let pp_trap ppf = function
  | Wild_jump { block; target } ->
    Format.fprintf ppf "wild jump to %Lx at %a" target Devir.Program.pp_bref
      block
  | Icall_blocked { block; target } ->
    Format.fprintf ppf "indirect call to %Lx blocked by guard at %a" target
      Devir.Program.pp_bref block
  | Div_by_zero b ->
    Format.fprintf ppf "division by zero at %a" Devir.Program.pp_bref b
  | Out_of_arena { block; field; index } ->
    Format.fprintf ppf "access to %s[%d] escapes control structure at %a"
      field index Devir.Program.pp_bref block
  | Undefined_param { block; param } ->
    Format.fprintf ppf "undefined request parameter %s at %a" param
      Devir.Program.pp_bref block
  | Undefined_local { block; local } ->
    Format.fprintf ppf "undefined local %s at %a" local Devir.Program.pp_bref
      block
  | Step_limit -> Format.fprintf ppf "step limit exceeded (hang)"
  | Depth_limit -> Format.fprintf ppf "callback depth limit exceeded"

let pp_outcome ppf = function
  | Done { response = Some v } -> Format.fprintf ppf "done (response %Ld)" v
  | Done { response = None } -> Format.fprintf ppf "done"
  | Trapped t -> Format.fprintf ppf "trapped: %a" pp_trap t

let trap_to_string t = Format.asprintf "%a" pp_trap t
