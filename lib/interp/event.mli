(** Events and outcomes produced by executing a device program.

    Three consumers observe execution through these types:
    - the PT simulator subscribes to {!trace_event}s (the information Intel
      PT would capture in hardware);
    - SEDSpec's data-collection phase subscribes to {!observe_entry}s from
      the observation points it instrumented;
    - the experiments use {!oob_event}s and {!trap}s as *ground truth* for
      whether an exploit actually corrupted memory or hung the device. *)

type trace_event =
  | Pge of int64
      (** Trace enable at an address — handler entry (TIP.PGE analog). *)
  | Tnt of bool  (** One conditional-branch bit: taken / not taken. *)
  | Tip of int64
      (** Indirect transfer target: a switch destination's block address or
          a function-pointer value. *)
  | Pgd  (** Trace disable — the handler returned (TIP.PGD analog). *)

type obs_outcome =
  | O_goto of string
  | O_taken
  | O_not_taken
  | O_case of int64 * string  (** Switch scrutinee value and chosen label. *)
  | O_icall of int64          (** Function-pointer value called. *)
  | O_halt

type observe_entry = {
  block : Devir.Program.bref;
  kind : Devir.Block.kind;
  state : (string * int64) list;
      (** Observed device state parameter values after the block ran. *)
  outcome : obs_outcome;
  cmd : int64 option;
      (** For [Cmd_decision] blocks: the decoded command value. *)
  stmts : Devir.Stmt.t list;  (** Source statements of the block. *)
  term : Devir.Term.t;        (** Source terminator of the block. *)
}

type oob_event = {
  oob_block : Devir.Program.bref;
  oob_buf : string;
  oob_index : int;
  oob_write : bool;
}
(** A buffer access outside the buffer's declared bounds (but still inside
    the control structure) — silent corruption, like the C originals. *)

type response_event =
  | R_read_return of int64  (** [Respond] value handed back for a read. *)
  | R_dma_out of { addr : int64; len : int }  (** [Copy_to_guest]. *)
  | R_store of { addr : int64; value : int64; width : Devir.Width.t }
      (** [Write_guest] — completion/status writes into guest memory. *)
  | R_irq of bool  (** IRQ line raised/lowered through a callback. *)
(** One crossing of the host→guest channel, as the guest experiences it —
    the event stream the guest-side validator trains and enforces over. *)

type trap =
  | Wild_jump of { block : Devir.Program.bref; target : int64 }
      (** Indirect call through a value with no registered callback. *)
  | Icall_blocked of { block : Devir.Program.bref; target : int64 }
      (** Indirect call vetoed by an installed guard (SEDSpec's inline
          indirect jump enforcement). *)
  | Div_by_zero of Devir.Program.bref
  | Out_of_arena of { block : Devir.Program.bref; field : string; index : int }
      (** Buffer access escaped the whole control structure (host crash). *)
  | Undefined_param of { block : Devir.Program.bref; param : string }
  | Undefined_local of { block : Devir.Program.bref; local : string }
  | Step_limit
      (** The step budget ran out — the analog of an emulated-device
          infinite loop (e.g. CVE-2016-7909). *)
  | Depth_limit  (** Callback chaining recursed too deep. *)

type outcome =
  | Done of { response : int64 option }
  | Trapped of trap

val pp_trace_event : Format.formatter -> trace_event -> unit
val pp_obs_outcome : Format.formatter -> obs_outcome -> unit
val pp_observe_entry : Format.formatter -> observe_entry -> unit
val pp_response_event : Format.formatter -> response_event -> unit
val pp_trap : Format.formatter -> trap -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val trap_to_string : trap -> string
