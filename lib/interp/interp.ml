open Devir

type guest = {
  read_byte : int64 -> int;
  write_byte : int64 -> int -> unit;
}

type hooks = {
  on_trace : Event.trace_event -> unit;
  on_block : Program.bref -> Block.kind -> unit;
  on_observe : Event.observe_entry -> unit;
  on_oob : Event.oob_event -> unit;
  on_irq : bool -> unit;
  on_overflow : Eval.overflow -> unit;
  on_response : Event.response_event -> unit;
}

let silent_hooks =
  {
    on_trace = ignore;
    on_block = (fun _ _ -> ());
    on_observe = ignore;
    on_oob = ignore;
    on_irq = ignore;
    on_overflow = ignore;
    on_response = ignore;
  }

(* A seeded corruption of the host→guest channel.  Corruptors run inside
   the interpreter, after expression evaluation but before the value
   crosses to the guest, so both checker engines (which replay the same
   device trace) observe identical effects and the device's own shadowed
   state never diverges. *)
type response_fault = {
  rf_read : (int64 -> int64) option;  (* mangle [Respond] values *)
  rf_dma_len : (int -> int) option;  (* mangle [Copy_to_guest] lengths *)
  rf_store : (int64 -> int64) option;  (* mangle [Write_guest] values *)
  rf_irq_burst : int;  (* extra raise/lower toggles per IRQ raise *)
}

let no_response_fault =
  { rf_read = None; rf_dma_len = None; rf_store = None; rf_irq_burst = 0 }

type config = { step_limit : int; depth_limit : int }

let default_config = { step_limit = 100_000; depth_limit = 8 }

type observation = {
  points : (Program.bref, unit) Hashtbl.t;
  state_params : string list;
}

type t = {
  config : config;
  mutable hooks : hooks;
  program : Program.t;
  arena : Arena.t;
  guest : guest;
  mutable observation : observation option;
  sync_points : (Program.bref, string list) Hashtbl.t;
  mutable on_sync : Program.bref -> (string * int64) list -> unit;
  mutable host_value : string -> int64;
  mutable icall_guard : (Program.bref -> int64 -> bool) option;
  mutable response_fault : response_fault option;
}

let create ?(config = default_config) ?(hooks = silent_hooks) ~program ~arena
    ~guest () =
  {
    config;
    hooks;
    program;
    arena;
    guest;
    observation = None;
    sync_points = Hashtbl.create 4;
    on_sync = (fun _ _ -> ());
    host_value = (fun _ -> 0L);
    icall_guard = None;
    response_fault = None;
  }

let set_hooks t hooks = t.hooks <- hooks
let hooks t = t.hooks
let program t = t.program
let arena t = t.arena

let set_observation t ~points ~state_params =
  let table = Hashtbl.create (List.length points) in
  List.iter (fun p -> Hashtbl.replace table p ()) points;
  t.observation <- Some { points = table; state_params }

let clear_observation t = t.observation <- None

let set_host_values t f = t.host_value <- f

let set_icall_guard t g = t.icall_guard <- g
let clear_icall_guard t = t.icall_guard <- None

let set_response_fault t rf = t.response_fault <- rf
let response_fault t = t.response_fault

let set_sync_points t points ~on_sync =
  Hashtbl.reset t.sync_points;
  List.iter (fun (bref, locals) -> Hashtbl.replace t.sync_points bref locals) points;
  t.on_sync <- on_sync

exception Trap of Event.trap

(* Per-invocation mutable state threaded through block execution. *)
type frame = {
  locals : (string, int64) Hashtbl.t;
  params : (string * int64) list;
  mutable response : int64 option;
  mutable steps : int;
}

let eval_ctx t frame (block : Program.bref) =
  {
    Eval.get_field = Arena.get t.arena;
    get_buf_byte =
      (fun buf idx ->
        let size = Layout.buf_size (Arena.layout t.arena) buf in
        if idx < 0 || idx >= size then
          t.hooks.on_oob
            { Event.oob_block = block; oob_buf = buf; oob_index = idx; oob_write = false };
        Arena.get_buf_byte t.arena buf idx);
    buf_len = Layout.buf_size (Arena.layout t.arena);
    get_param =
      (fun name ->
        match List.assoc_opt name frame.params with
        | Some v -> v
        | None -> raise (Eval.Undefined_param name));
    get_local =
      (fun name ->
        match Hashtbl.find_opt frame.locals name with
        | Some v -> v
        | None -> raise (Eval.Undefined_local name));
    record_overflow = t.hooks.on_overflow;
  }

let set_buf_checked t block buf idx v =
  let size = Layout.buf_size (Arena.layout t.arena) buf in
  if idx < 0 || idx >= size then
    t.hooks.on_oob
      { Event.oob_block = block; oob_buf = buf; oob_index = idx; oob_write = true };
  Arena.set_buf_byte t.arena buf idx v

let exec_stmt t frame block ctx (stmt : Stmt.t) =
  let eval e = Eval.eval ctx e in
  let to_int e = Int64.to_int (eval e) in
  match stmt with
  | Stmt.Set_field (f, e) -> Arena.set t.arena f (eval e)
  | Stmt.Set_buf (b, idx, v) ->
    set_buf_checked t block b (to_int idx) (Int64.to_int (eval v) land 0xFF)
  | Stmt.Set_local (n, e) -> Hashtbl.replace frame.locals n (eval e)
  | Stmt.Buf_fill (b, off, len, v) ->
    let off = to_int off and len = to_int len in
    let v = Int64.to_int (eval v) land 0xFF in
    for i = off to off + len - 1 do
      set_buf_checked t block b i v
    done
  | Stmt.Copy_from_guest { buf; buf_off; addr; len } ->
    let buf_off = to_int buf_off and len = to_int len in
    let addr = eval addr in
    for i = 0 to len - 1 do
      let byte = t.guest.read_byte (Int64.add addr (Int64.of_int i)) in
      set_buf_checked t block buf (buf_off + i) byte
    done
  | Stmt.Copy_to_guest { buf; buf_off; addr; len } ->
    let buf_off = to_int buf_off and len = to_int len in
    let addr = eval addr in
    let len =
      match t.response_fault with
      | Some { rf_dma_len = Some f; _ } -> f len
      | _ -> len
    in
    (* Announced before the copy so the validator sees the length even
       when a mangled length traps mid-transfer. *)
    t.hooks.on_response (Event.R_dma_out { addr; len });
    let size = Layout.buf_size (Arena.layout t.arena) buf in
    for i = 0 to len - 1 do
      let idx = buf_off + i in
      if idx < 0 || idx >= size then
        t.hooks.on_oob
          { Event.oob_block = block; oob_buf = buf; oob_index = idx; oob_write = false };
      t.guest.write_byte
        (Int64.add addr (Int64.of_int i))
        (Arena.get_buf_byte t.arena buf idx)
    done
  | Stmt.Read_guest { local; addr; width } ->
    let addr = eval addr in
    let n = Width.bytes width in
    let rec go i acc =
      if i < 0 then acc
      else
        go (i - 1)
          (Int64.logor (Int64.shift_left acc 8)
             (Int64.of_int (t.guest.read_byte (Int64.add addr (Int64.of_int i)))))
    in
    Hashtbl.replace frame.locals local (go (n - 1) 0L)
  | Stmt.Write_guest { addr; value; width } ->
    let addr = eval addr in
    let v = eval value in
    let v =
      match t.response_fault with
      | Some { rf_store = Some f; _ } -> f v
      | _ -> v
    in
    t.hooks.on_response (Event.R_store { addr; value = v; width });
    for i = 0 to Width.bytes width - 1 do
      t.guest.write_byte
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
    done
  | Stmt.Respond e ->
    let v = eval e in
    let v =
      match t.response_fault with
      | Some { rf_read = Some f; _ } -> f v
      | _ -> v
    in
    t.hooks.on_response (Event.R_read_return v);
    frame.response <- Some v
  | Stmt.Note _ -> ()
  | Stmt.Host_value { local; key } ->
    Hashtbl.replace frame.locals local (t.host_value key)

let observe t (bref : Program.bref) (block : Block.t) outcome cmd =
  match t.observation with
  | None -> ()
  | Some obs ->
    if Hashtbl.mem obs.points bref then
      let state =
        List.map (fun p -> (p, Arena.get t.arena p)) obs.state_params
      in
      t.hooks.on_observe
        {
          Event.block = bref;
          kind = block.kind;
          state;
          outcome;
          cmd;
          stmts = block.stmts;
          term = block.term;
        }

(* Execute a handler to completion.  [depth] > 0 means we arrived through a
   callback chain; only the outermost invocation brackets the trace with
   PGE/PGD. *)
let rec run_handler t frame depth hname =
  if depth > t.config.depth_limit then raise (Trap Event.Depth_limit);
  let h =
    try Program.find_handler t.program hname
    with Not_found -> invalid_arg (Printf.sprintf "Interp.run: no handler %s" hname)
  in
  let entry =
    match h.blocks with
    | b :: _ -> b
    | [] -> invalid_arg (Printf.sprintf "Interp.run: handler %s is empty" hname)
  in
  let bref_of label : Program.bref = { handler = hname; label } in
  if depth = 0 then
    t.hooks.on_trace (Event.Pge (Program.address_of t.program (bref_of entry.Block.label)));
  let rec step (block : Block.t) =
    let bref = bref_of block.label in
    frame.steps <- frame.steps + 1;
    if frame.steps > t.config.step_limit then raise (Trap Event.Step_limit);
    t.hooks.on_block bref block.kind;
    let ctx = eval_ctx t frame bref in
    let reraise_arena f =
      try f () with
      | Arena.Out_of_arena { field; index } ->
        raise (Trap (Event.Out_of_arena { block = bref; field; index }))
      | Eval.Div_by_zero -> raise (Trap (Event.Div_by_zero bref))
      | Eval.Undefined_param param ->
        raise (Trap (Event.Undefined_param { block = bref; param }))
      | Eval.Undefined_local local ->
        raise (Trap (Event.Undefined_local { block = bref; local }))
    in
    reraise_arena (fun () -> List.iter (exec_stmt t frame bref ctx) block.stmts);
    (match Hashtbl.find_opt t.sync_points bref with
    | Some locals ->
      let values =
        List.filter_map
          (fun l ->
            Option.map (fun v -> (l, v)) (Hashtbl.find_opt frame.locals l))
          locals
      in
      t.on_sync bref values
    | None -> ());
    match block.term with
    | Term.Goto l ->
      observe t bref block (Event.O_goto l) None;
      step (Program.find_block t.program (bref_of l))
    | Term.Branch (cond, if_taken, if_not) ->
      let v = reraise_arena (fun () -> Eval.eval ctx cond) in
      let taken = Eval.truthy v in
      t.hooks.on_trace (Event.Tnt taken);
      observe t bref block
        (if taken then Event.O_taken else Event.O_not_taken)
        None;
      step (Program.find_block t.program (bref_of (if taken then if_taken else if_not)))
    | Term.Switch (scrutinee, cases, default) ->
      let v = reraise_arena (fun () -> Eval.eval ctx scrutinee) in
      let dest =
        match List.assoc_opt v cases with Some l -> l | None -> default
      in
      t.hooks.on_trace (Event.Tip (Program.address_of t.program (bref_of dest)));
      observe t bref block (Event.O_case (v, dest)) (Some v);
      step (Program.find_block t.program (bref_of dest))
    | Term.Icall (fnptr, next) ->
      let v = reraise_arena (fun () -> Eval.eval ctx fnptr) in
      t.hooks.on_trace (Event.Tip v);
      observe t bref block (Event.O_icall v) None;
      (match t.icall_guard with
      | Some guard when not (guard bref v) ->
        raise (Trap (Event.Icall_blocked { block = bref; target = v }))
      | _ -> ());
      (match Program.find_callback t.program v with
      | None -> raise (Trap (Event.Wild_jump { block = bref; target = v }))
      | Some cb -> (
        match cb.action with
        | Program.Raise_irq_line ->
          t.hooks.on_irq true;
          t.hooks.on_response (Event.R_irq true);
          (* An injected storm toggles the line so every extra raise is a
             real low→high edge the IRQ controller counts. *)
          (match t.response_fault with
          | Some { rf_irq_burst = n; _ } when n > 0 ->
            for _ = 1 to n do
              t.hooks.on_irq false;
              t.hooks.on_response (Event.R_irq false);
              t.hooks.on_irq true;
              t.hooks.on_response (Event.R_irq true)
            done
          | _ -> ())
        | Program.Lower_irq_line ->
          t.hooks.on_irq false;
          t.hooks.on_response (Event.R_irq false)
        | Program.Run_handler callee -> run_handler t frame (depth + 1) callee
        | Program.Noop -> ()));
      step (Program.find_block t.program (bref_of next))
    | Term.Halt ->
      observe t bref block Event.O_halt None;
      if depth = 0 then t.hooks.on_trace Event.Pgd
  in
  step entry

let run t ~handler ~params =
  let frame = { locals = Hashtbl.create 16; params; response = None; steps = 0 } in
  match run_handler t frame 0 handler with
  | () -> Event.Done { response = frame.response }
  | exception Trap trap -> Event.Trapped trap

let null_guest = { read_byte = (fun _ -> 0); write_byte = (fun _ _ -> ()) }

let bytes_guest mem =
  {
    read_byte =
      (fun addr ->
        let i = Int64.to_int addr in
        if i >= 0 && i < Bytes.length mem then Char.code (Bytes.get mem i) else 0);
    write_byte =
      (fun addr v ->
        let i = Int64.to_int addr in
        if i >= 0 && i < Bytes.length mem then Bytes.set mem i (Char.chr (v land 0xFF)));
  }

(* Re-export the library's sibling modules: [interp.ml] is the library's
   root module, which would otherwise hide them from the outside. *)
module Event = Event
module Eval = Eval
