(** The device-program interpreter.

    Executes one I/O interaction (one handler invocation, plus any handler
    chaining through function-pointer callbacks) against a live control
    structure and guest memory.  Execution streams {!Event.trace_event}s to
    the PT simulator, fires observation points for SEDSpec's data
    collection, and reports memory-corruption ground truth. *)

type guest = {
  read_byte : int64 -> int;
  write_byte : int64 -> int -> unit;
}
(** Guest physical memory access, supplied by the machine model.  DMA
    statements go through these. *)

type hooks = {
  on_trace : Event.trace_event -> unit;
  on_block : Devir.Program.bref -> Devir.Block.kind -> unit;
      (** Fires on entry to every block (used for coverage measurement). *)
  on_observe : Event.observe_entry -> unit;
      (** Fires for instrumented blocks only (observation points). *)
  on_oob : Event.oob_event -> unit;
  on_irq : bool -> unit;  (** IRQ line raised ([true]) or lowered. *)
  on_overflow : Eval.overflow -> unit;
      (** Every arithmetic wrap during device execution (ground truth). *)
  on_response : Event.response_event -> unit;
      (** Fires at every host→guest seam: read-return values, outbound DMA,
          completion writes into guest memory, IRQ line transitions.  The
          guest-side validator trains and enforces over this stream. *)
}

val silent_hooks : hooks
(** Hooks that drop every event. *)

type response_fault = {
  rf_read : (int64 -> int64) option;
  rf_dma_len : (int -> int) option;
  rf_store : (int64 -> int64) option;
  rf_irq_burst : int;
}
(** A corruption of the host→guest channel, applied inside the interpreter
    after expression evaluation but before the value reaches the guest —
    the device's own (shadowed) state never diverges, so both checker
    engines see identical effects.  [rf_read] mangles {!Devir.Stmt.Respond}
    values, [rf_dma_len] mangles {!Devir.Stmt.Copy_to_guest} lengths (a
    mangled length may trap as {!Event.Out_of_arena} — contained as an
    [Io_fault]), [rf_store] mangles {!Devir.Stmt.Write_guest} values, and
    [rf_irq_burst] injects that many extra raise/lower toggles per IRQ
    raise. *)

val no_response_fault : response_fault
(** All corruptors off — identity behaviour. *)

type config = {
  step_limit : int;   (** Blocks executed before declaring a hang. *)
  depth_limit : int;  (** Maximum handler-chaining depth. *)
}

val default_config : config
(** [step_limit = 100_000], [depth_limit = 8]. *)

type t

val create :
  ?config:config ->
  ?hooks:hooks ->
  program:Devir.Program.t ->
  arena:Devir.Arena.t ->
  guest:guest ->
  unit ->
  t

val set_hooks : t -> hooks -> unit
val hooks : t -> hooks
val program : t -> Devir.Program.t
val arena : t -> Devir.Arena.t

val set_observation :
  t -> points:Devir.Program.bref list -> state_params:string list -> unit
(** Install observation points: on leaving any block in [points], emit an
    {!Event.observe_entry} carrying the current values of [state_params]
    (scalar fields only — buffers are tracked through their index/length
    parameters, per the paper's data-volume rule). *)

val clear_observation : t -> unit

val set_icall_guard : t -> (Devir.Program.bref -> int64 -> bool) option -> unit
(** Install an inline guard consulted at every indirect call, {e after} the
    target value is computed but {e before} the callback runs.  Returning
    [false] aborts the interaction with {!Event.Icall_blocked} — this is
    where SEDSpec's indirect jump check enforces at runtime. *)

val clear_icall_guard : t -> unit

val set_response_fault : t -> response_fault option -> unit
(** Arm (or with [None] clear) a host→guest corruption on this device. *)

val response_fault : t -> response_fault option

val set_host_values : t -> (string -> int64) -> unit
(** Provide host-side values for {!Devir.Stmt.Host_value} statements
    (default: every key reads 0). *)

val set_sync_points :
  t ->
  (Devir.Program.bref * string list) list ->
  on_sync:(Devir.Program.bref -> (string * int64) list -> unit) ->
  unit
(** Install sync points: after the statements of a listed block run, the
    current values of the listed handler locals are reported to [on_sync].
    This is the paper's data-dependency fallback — when a branch variable
    cannot be recomputed from device state, the ES-Checker synchronises it
    from the real device execution. *)

val run :
  t -> handler:string -> params:(string * int64) list -> Event.outcome
(** Execute one I/O interaction. *)

val null_guest : guest
(** Guest memory that reads zero and ignores writes (for unit tests). *)

val bytes_guest : bytes -> guest
(** Guest memory backed by a byte buffer; out-of-range accesses read zero /
    are dropped. *)

(** {1 Re-exports} *)

module Event : module type of Event
module Eval : module type of Eval
