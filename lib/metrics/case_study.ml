type strategy_outcome = {
  strategy : Sedspec.Checker.strategy;
  detected : bool;
  blocked : bool;
  anomalies : Sedspec.Checker.anomaly list;
  effects : Attacks.Attack.effects;
}

type result = {
  attack : Attacks.Attack.t;
  setup_clean : bool;
  unprotected : Attacks.Attack.effects;
  per_strategy : strategy_outcome list;
}

let strategies =
  [
    Sedspec.Checker.Parameter_check;
    Sedspec.Checker.Indirect_jump_check;
    Sedspec.Checker.Conditional_jump_check;
  ]

let run_stream m (attack : Attacks.Attack.t) =
  (* Exploit streams bail out with [Exit] when an access is vetoed. *)
  try attack.run m with Exit -> ()

let ground_truth (attack : Attacks.Attack.t) =
  let w = Workload.Samples.find attack.device in
  let m = Spec_cache.fresh_machine w attack.qemu_version in
  attack.setup m;
  Attacks.Attack.observe_effects m ~device:attack.device
    (fun () -> run_stream m attack)
    attack

let with_strategy (attack : Attacks.Attack.t) strategy =
  let w = Workload.Samples.find attack.device in
  let config =
    {
      Sedspec.Checker.default_config with
      Sedspec.Checker.strategies = [ strategy ];
    }
  in
  let m, checker =
    Spec_cache.fresh_protected_machine ~config w attack.qemu_version
  in
  attack.setup m;
  let setup_anoms = Sedspec.Checker.drain_anomalies checker in
  let effects =
    Attacks.Attack.observe_effects m ~device:attack.device
      (fun () -> run_stream m attack)
      attack
  in
  let anomalies = Sedspec.Checker.drain_anomalies checker in
  ( setup_anoms = [],
    {
      strategy;
      detected = anomalies <> [];
      blocked = Vmm.Machine.halted m;
      anomalies;
      effects;
    } )

let run attack =
  let unprotected = ground_truth attack in
  let outcomes = List.map (with_strategy attack) strategies in
  {
    attack;
    setup_clean = List.for_all fst outcomes;
    unprotected;
    per_strategy = List.map snd outcomes;
  }

(* Each case study is independent (fresh machines, a shared read-only
   spec from the single-flight cache), so the catalogue fans out across
   domains; results come back in catalogue order either way. *)
let run_all ?(jobs = 1) () = Sedspec_util.Runner.map ~jobs run Attacks.Attack.all

let matches_expectation r =
  let detected_set =
    List.filter_map
      (fun o -> if o.detected then Some o.strategy else None)
      r.per_strategy
  in
  let expected = r.attack.expected in
  let same_set =
    List.sort compare detected_set = List.sort compare expected
  in
  let concrete =
    if r.attack.detectable then Attacks.Attack.succeeded r.unprotected
    else Attacks.Attack.succeeded r.unprotected && detected_set = []
  in
  r.setup_clean && same_set && concrete

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%s (%s, QEMU %s)%s@," r.attack.cve r.attack.device
    (Devices.Qemu_version.to_string r.attack.qemu_version)
    (if r.setup_clean then "" else "  [SETUP NOT CLEAN]");
  Format.fprintf ppf "  unprotected: %a@," Attacks.Attack.pp_effects r.unprotected;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-24s detected=%b blocked=%b (%d anomalies)@,"
        (Sedspec.Checker.strategy_to_string o.strategy)
        o.detected o.blocked
        (List.length o.anomalies))
    r.per_strategy;
  Format.fprintf ppf "@]"
