(** Table III case studies: per-strategy detection of the CVE exploits.

    Following the paper, each experiment activates exactly one check
    strategy, runs the exploit's I/O stream in protection mode against a
    freshly protected device, and records whether the strategy flagged an
    anomaly, whether the stream was blocked before completing, and the
    exploit's concrete ground-truth effects. *)

type strategy_outcome = {
  strategy : Sedspec.Checker.strategy;
  detected : bool;
  blocked : bool;  (** Some access of the exploit stream was vetoed. *)
  anomalies : Sedspec.Checker.anomaly list;
  effects : Attacks.Attack.effects;
}

type result = {
  attack : Attacks.Attack.t;
  setup_clean : bool;  (** The benign setup raised no anomaly. *)
  unprotected : Attacks.Attack.effects;
      (** Ground truth with no checker at all. *)
  per_strategy : strategy_outcome list;
}

val run : Attacks.Attack.t -> result

val run_all : ?jobs:int -> unit -> result list
(** All catalogue attacks, in Table III order.  [jobs] > 1 fans the
    independent case studies out across that many domains; the result
    order (and every result) is identical to a serial run. *)

val matches_expectation : result -> bool
(** Detected-strategy set equals the paper's matrix and the exploit has a
    concrete effect when unprotected (or, for the 1568 miss, is detected
    by no strategy). *)

val pp_result : Format.formatter -> result -> unit
