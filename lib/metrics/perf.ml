type storage_point = {
  block_bytes : int;
  base_s : float;
  protected_s : float;
  norm_throughput : float;
  norm_latency : float;
}

let storage_devices = [ "fdc"; "ehci"; "sdhci"; "scsi" ]

let storage_blocks = function
  | "fdc" ->
    (* Capped by the 2.88 MB medium and by PIO cost. *)
    [ 512; 4096; 65536 ]
  | "ehci" -> [ 512; 4096; 65536; 524288 ]
  | _ -> [ 512; 4096; 65536; 524288; 1048576 ]

let now () = Unix.gettimeofday ()

(* One "record" transfer of [block] bytes on each device's natural bulk
   path.  Sector/LBA addresses advance so caching effects cannot differ
   between runs. *)
let storage_op m device ~write ~block ~cursor =
  match device with
  | "fdc" ->
    let d = Workload.Fdc_driver.create m in
    let sectors = max 1 (block / 512) in
    for s = 0 to sectors - 1 do
      let abs_sector = !cursor + s in
      let track = abs_sector / 36 mod 80
      and head = abs_sector / 18 mod 2
      and sect = 1 + (abs_sector mod 18) in
      if write then
        ignore
          (Workload.Fdc_driver.write_sector d ~drive:0 ~head ~track ~sect
             (Bytes.make 512 'w'))
      else ignore (Workload.Fdc_driver.read_sector d ~drive:0 ~head ~track ~sect)
    done;
    cursor := !cursor + sectors
  | "sdhci" ->
    let d = Workload.Sdhci_driver.create m in
    let blkcnt = max 1 (block / 512) in
    if write then
      ignore
        (Workload.Sdhci_driver.write_multi d ~lba:!cursor ~blksize:512 ~blkcnt
           ~dma_addr:0xA0000L)
    else
      ignore
        (Workload.Sdhci_driver.read_multi d ~lba:!cursor ~blksize:512 ~blkcnt
           ~dma_addr:0xA0000L);
    cursor := !cursor + blkcnt
  | "scsi" ->
    let d = Workload.Scsi_driver.create m in
    let blocks = max 1 (block / 512) in
    if write then ignore (Workload.Scsi_driver.write10 d ~lba:!cursor ~blocks)
    else ignore (Workload.Scsi_driver.read10 d ~lba:!cursor ~blocks);
    cursor := !cursor + blocks
  | "ehci" ->
    (* USB mass-storage surrogate: 4 KiB control transfers. *)
    let d = Workload.Ehci_driver.create m in
    let chunk = min block 4096 in
    let chunks = max 1 (block / chunk) in
    for _ = 1 to chunks do
      if write then ignore (Workload.Ehci_driver.control_out d (Bytes.make chunk 'u'))
      else ignore (Workload.Ehci_driver.get_descriptor d ~dtype:2 ~length:chunk)
    done
  | other -> invalid_arg ("Perf.storage_op: " ^ other)

let storage_setup m device =
  match device with
  | "fdc" ->
    let d = Workload.Fdc_driver.create m in
    ignore (Workload.Fdc_driver.reset d);
    ignore (Workload.Fdc_driver.recalibrate d ~drive:0);
    ignore (Workload.Fdc_driver.sense_interrupt d)
  | "sdhci" ->
    ignore (Workload.Sdhci_driver.init_card (Workload.Sdhci_driver.create m))
  | "scsi" ->
    let d = Workload.Scsi_driver.create m in
    ignore (Workload.Scsi_driver.reset d);
    ignore (Workload.Scsi_driver.test_unit_ready d)
  | "ehci" ->
    let d = Workload.Ehci_driver.create m in
    ignore (Workload.Ehci_driver.reset_port d);
    ignore (Workload.Ehci_driver.set_address d 1)
  | _ -> ()

(* EHCI's descriptor reads are capped by the model at small sizes; pull the
   effective volume down so runs stay comparable. *)
let time_volume m device ~write ~block ~total =
  let cursor = ref 0 in
  storage_setup m device;
  (* Warm up caches and lazy structures before timing. *)
  for _ = 1 to 2 do
    storage_op m device ~write ~block:512 ~cursor
  done;
  let ops = max 1 (total / max block 1) in
  let t0 = now () in
  for _ = 1 to ops do
    storage_op m device ~write ~block ~cursor
  done;
  (now () -. t0, ops)

(* Checker configuration for the protected side: default except for the
   walk engine, which the benches can ablate. *)
let engine_config engine =
  { Sedspec.Checker.default_config with Sedspec.Checker.engine }

let storage_sweep ?(total_bytes = 524288) ?(vmexit_cost = 60000)
    ?(engine = Sedspec.Checker.Compiled) ~device ~write () =
  let w = Workload.Samples.find device in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let total_bytes =
    (* FDC is pure PIO (two orders of magnitude more exits per byte), and
       its medium caps at 2.88 MB; keep its volume small. *)
    if device = "fdc" then min total_bytes 65536 else total_bytes
  in
  List.map
    (fun block ->
      let m_base = W.make_machine ~vmexit_cost W.paper_version in
      let base_s, _ = time_volume m_base device ~write ~block ~total:total_bytes in
      let m_prot, _checker =
        Spec_cache.fresh_protected_machine ~config:(engine_config engine)
          ~vmexit_cost (module W) W.paper_version
      in
      let protected_s, _ =
        time_volume m_prot device ~write ~block ~total:total_bytes
      in
      {
        block_bytes = block;
        base_s;
        protected_s;
        norm_throughput = (if protected_s > 0.0 then base_s /. protected_s else 1.0);
        norm_latency = (if base_s > 0.0 then protected_s /. base_s else 1.0);
      })
    (storage_blocks device)

type net_kind = Tcp_up | Tcp_down | Udp_up | Udp_down

let net_kind_to_string = function
  | Tcp_up -> "TCP up"
  | Tcp_down -> "TCP down"
  | Udp_up -> "UDP up"
  | Udp_down -> "UDP down"

type net_point = {
  kind : net_kind;
  base_mbps : float;
  protected_mbps : float;
  overhead_pct : float;
}

let mtu_payload = 1460

let net_run m kind ~total_bytes =
  let d = Workload.Pcnet_driver.create m in
  ignore (Workload.Pcnet_driver.reset d);
  ignore (Workload.Pcnet_driver.init d ~mode:0 ());
  ignore (Workload.Pcnet_driver.start d);
  let frames = max 1 (total_bytes / mtu_payload) in
  let payload = Bytes.make mtu_payload 'p' in
  let ack = Bytes.make 64 'a' in
  (* Warm up both directions before timing. *)
  for _ = 1 to 32 do
    ignore (Workload.Pcnet_driver.transmit d [ payload ]);
    ignore (Workload.Pcnet_driver.receive d ack);
    ignore (Workload.Pcnet_driver.rx_frame d)
  done;
  let t0 = now () in
  (match kind with
  | Tcp_up ->
    for i = 1 to frames do
      ignore (Workload.Pcnet_driver.transmit d [ payload ]);
      if i mod 8 = 0 then begin
        ignore (Workload.Pcnet_driver.receive d ack);
        ignore (Workload.Pcnet_driver.rx_frame d)
      end
    done
  | Tcp_down ->
    for i = 1 to frames do
      ignore (Workload.Pcnet_driver.receive d payload);
      ignore (Workload.Pcnet_driver.rx_frame d);
      if i mod 8 = 0 then ignore (Workload.Pcnet_driver.transmit d [ ack ])
    done
  | Udp_up ->
    for _ = 1 to frames do
      ignore (Workload.Pcnet_driver.transmit d [ payload ])
    done
  | Udp_down ->
    for _ = 1 to frames do
      ignore (Workload.Pcnet_driver.receive d payload);
      ignore (Workload.Pcnet_driver.rx_frame d)
    done);
  let dt = now () -. t0 in
  float_of_int (frames * mtu_payload) /. dt /. 1.0e6

let pcnet_bandwidth ?(total_bytes = 2 * 1024 * 1024) ?(vmexit_cost = 60000)
    ?(engine = Sedspec.Checker.Compiled) kind =
  let w = Workload.Samples.find "pcnet" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m_base = W.make_machine ~vmexit_cost W.paper_version in
  let base_mbps = net_run m_base kind ~total_bytes in
  let m_prot, _ =
    Spec_cache.fresh_protected_machine ~config:(engine_config engine)
      ~vmexit_cost (module W) W.paper_version
  in
  let protected_mbps = net_run m_prot kind ~total_bytes in
  {
    kind;
    base_mbps;
    protected_mbps;
    overhead_pct = 100.0 *. (1.0 -. (protected_mbps /. base_mbps));
  }

let ping_once d =
  ignore (Workload.Pcnet_driver.transmit d [ Bytes.make 64 'q' ]);
  ignore (Workload.Pcnet_driver.receive d (Bytes.make 64 'r'));
  ignore (Workload.Pcnet_driver.rx_frame d)

let ping_run m ~count =
  let d = Workload.Pcnet_driver.create m in
  ignore (Workload.Pcnet_driver.reset d);
  ignore (Workload.Pcnet_driver.init d ~mode:0 ());
  ignore (Workload.Pcnet_driver.start d);
  for _ = 1 to 32 do
    ping_once d
  done;
  let t0 = now () in
  for _ = 1 to count do
    ping_once d
  done;
  (now () -. t0) /. float_of_int count *. 1000.0

let pcnet_ping ?(count = 400) ?(vmexit_cost = 60000)
    ?(engine = Sedspec.Checker.Compiled) () =
  let w = Workload.Samples.find "pcnet" in
  let module W = (val w : Workload.Samples.DEVICE_WORKLOAD) in
  let m_base = W.make_machine ~vmexit_cost W.paper_version in
  let base = ping_run m_base ~count in
  let m_prot, _ =
    Spec_cache.fresh_protected_machine ~config:(engine_config engine)
      ~vmexit_cost (module W) W.paper_version
  in
  let prot = ping_run m_prot ~count in
  (base, prot, (prot -. base) /. base)
