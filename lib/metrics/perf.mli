(** Performance experiments (paper Figures 3, 4 and 5).

    Storage: an iozone-like sweep — read and write a fixed volume using a
    given record (block) size, with and without SEDSpec protection;
    normalized throughput is [t_base / t_protected] and normalized latency
    is [t_protected / t_base] per operation.  FDC's sweep is capped by its
    2.88 MB medium.

    Network: iperf-like streams over PCNet (TCP-like with reverse-path
    acks, UDP-like one-way; upstream = guest transmits, downstream = host
    injects) and ping round-trips.

    The machines run with the default simulated VM-exit cost — the
    dominant per-access cost on real hosts, without which no overhead
    percentage is meaningful (the benches ablate it). *)

type storage_point = {
  block_bytes : int;
  base_s : float;       (** Unprotected wall time. *)
  protected_s : float;
  norm_throughput : float;  (** base / protected (<= 1 is paper's plot). *)
  norm_latency : float;     (** protected / base. *)
}

val storage_devices : string list
(** fdc, ehci, sdhci, scsi — the paper's Figure 3/4 devices. *)

val storage_blocks : string -> int list
(** Block-size sweep per device (FDC capped at its medium). *)

val storage_sweep :
  ?total_bytes:int -> ?vmexit_cost:int -> ?engine:Sedspec.Checker.engine ->
  device:string -> write:bool -> unit -> storage_point list
(** Time moving [total_bytes] (default 256 KiB; FDC smaller) at each block
    size, protected vs. unprotected.  [engine] selects the checker walk
    engine for the protected side (default [Compiled]). *)

type net_kind = Tcp_up | Tcp_down | Udp_up | Udp_down

val net_kind_to_string : net_kind -> string

type net_point = {
  kind : net_kind;
  base_mbps : float;
  protected_mbps : float;
  overhead_pct : float;
}

val pcnet_bandwidth :
  ?total_bytes:int -> ?vmexit_cost:int -> ?engine:Sedspec.Checker.engine ->
  net_kind -> net_point

val pcnet_ping :
  ?count:int -> ?vmexit_cost:int -> ?engine:Sedspec.Checker.engine ->
  unit -> float * float * float
(** (base ms, protected ms, overhead fraction) averaged over [count]
    round trips (default 100, like the paper). *)
