(* Memoised spec builds, shared by every harness.

   The cache is domain-safe: lookups and inserts are mutex-guarded, and
   builds are single-flight — the first caller for a (device, version)
   key inserts a [Building] marker and builds outside the lock; any
   concurrent caller for the same key blocks on the condition variable
   until the build lands, so a spec is never built twice.  A build that
   raises clears its marker and wakes the waiters, one of which retries
   the build. *)

let training_cases = ref 24

type slot = Building | Ready of Sedspec.Pipeline.built

let cache : (string * string, slot) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()
let landed = Condition.create ()

(* Build-fault seam: runs at the top of every single-flight build with
   the device name and may raise, simulating a transient build failure.
   The failing build's [Building] marker is evicted before the exception
   reaches the caller, so waiters (and retrying callers, e.g. the fleet's
   seeded backoff) observe either [Ready] or an empty slot — never a
   stuck marker.  An atomic so a test arming it from the main domain is
   seen by pool domains without racing the cache mutex. *)
let build_fault : (string -> unit) option Atomic.t = Atomic.make None
let set_build_fault hook = Atomic.set build_fault hook

(* Successful single-flight builds since process start.  With the
   arena/cursor split this counts compiled-arena constructions too (one
   per build): the fleet asserts its delta stays at one per
   (device, version) key no matter how many VMs or domains ask. *)
let build_count = Atomic.make 0
let builds () = Atomic.get build_count

let single_flight key build =
  let claim () =
    let rec wait () =
      match Hashtbl.find_opt cache key with
      | Some (Ready b) -> `Hit b
      | Some Building ->
        Condition.wait landed lock;
        wait ()
      | None ->
        Hashtbl.replace cache key Building;
        `Build
    in
    Mutex.lock lock;
    let r = wait () in
    Mutex.unlock lock;
    r
  in
  match claim () with
  | `Hit b -> b
  | `Build -> (
    match build () with
    | b ->
      Atomic.incr build_count;
      Mutex.lock lock;
      Hashtbl.replace cache key (Ready b);
      Condition.broadcast landed;
      Mutex.unlock lock;
      b
    | exception e ->
      Mutex.lock lock;
      Hashtbl.remove cache key;
      Condition.broadcast landed;
      Mutex.unlock lock;
      raise e)

let built (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let key = (W.device_name, Devices.Qemu_version.to_string version) in
  single_flight key (fun () ->
      (match Atomic.get build_fault with
      | Some f -> f W.device_name
      | None -> ());
      let m = W.make_machine version in
      Sedspec.Pipeline.build m ~device:W.device_name
        (W.trainer ~cases:!training_cases))

(* Derived key: the minimized spec is computed from the trained one, so
   the inner [built] call may itself trigger (or wait on) the base
   build.  Neither single-flight holds the lock while building, so the
   nesting cannot deadlock. *)
let built_minimized (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let key =
    (W.device_name, Devices.Qemu_version.to_string version ^ "+min")
  in
  single_flight key (fun () ->
      Sedspec.Pipeline.minimize_built (built (module W) version))

let fresh_machine ?vmexit_cost (module W : Workload.Samples.DEVICE_WORKLOAD)
    version =
  W.make_machine ?vmexit_cost version

let fresh_protected_machine ?config ?vmexit_cost
    (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let b = built (module W) version in
  let m = W.make_machine ?vmexit_cost version in
  let checker = Sedspec.Pipeline.protect ?config m ~device:W.device_name b in
  (m, checker)

(* Response-direction profiles for the guest-side validator, under the
   same single-flight discipline but in their own table and counter: the
   fleet asserts exactly one {!builds} delta per (device, version) spec
   key, and a guard profile is not a spec build. *)
type gslot = G_building | G_ready of Guard.Resp.profile

let gcache : (string * string, gslot) Hashtbl.t = Hashtbl.create 8
let guard_build_count = Atomic.make 0
let guard_builds () = Atomic.get guard_build_count

let guard_profile (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let key = (W.device_name, Devices.Qemu_version.to_string version) in
  let claim () =
    let rec wait () =
      match Hashtbl.find_opt gcache key with
      | Some (G_ready p) -> `Hit p
      | Some G_building ->
        Condition.wait landed lock;
        wait ()
      | None ->
        Hashtbl.replace gcache key G_building;
        `Build
    in
    Mutex.lock lock;
    let r = wait () in
    Mutex.unlock lock;
    r
  in
  match claim () with
  | `Hit p -> p
  | `Build -> (
    match
      let m = W.make_machine version in
      Guard.Resp.train m ~device:W.device_name
        (W.trainer ~cases:!training_cases)
    with
    | p ->
      Atomic.incr guard_build_count;
      Mutex.lock lock;
      Hashtbl.replace gcache key (G_ready p);
      Condition.broadcast landed;
      Mutex.unlock lock;
      p
    | exception e ->
      Mutex.lock lock;
      Hashtbl.remove gcache key;
      Condition.broadcast landed;
      Mutex.unlock lock;
      raise e)
