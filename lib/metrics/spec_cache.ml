(* Memoised spec builds, shared by every harness.

   The cache is domain-safe: lookups and inserts are mutex-guarded, and
   builds are single-flight — the first caller for a (device, version)
   key inserts a [Building] marker and builds outside the lock; any
   concurrent caller for the same key blocks on the condition variable
   until the build lands, so a spec is never built twice.  A build that
   raises clears its marker and wakes the waiters, one of which retries
   the build. *)

let training_cases = ref 24

type slot = Building | Ready of Sedspec.Pipeline.built

let cache : (string * string, slot) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()
let landed = Condition.create ()

(* Build-fault seam: runs at the top of every single-flight build with
   the device name and may raise, simulating a transient build failure.
   The failing build's [Building] marker is evicted before the exception
   reaches the caller, so waiters (and retrying callers, e.g. the fleet's
   seeded backoff) observe either [Ready] or an empty slot — never a
   stuck marker.  An atomic so a test arming it from the main domain is
   seen by pool domains without racing the cache mutex. *)
let build_fault : (string -> unit) option Atomic.t = Atomic.make None
let set_build_fault hook = Atomic.set build_fault hook

(* Successful single-flight builds since process start.  With the
   arena/cursor split this counts compiled-arena constructions too (one
   per build): the fleet asserts its delta stays at one per
   (device, version) key no matter how many VMs or domains ask. *)
let build_count = Atomic.make 0
let builds () = Atomic.get build_count

let single_flight key build =
  let claim () =
    let rec wait () =
      match Hashtbl.find_opt cache key with
      | Some (Ready b) -> `Hit b
      | Some Building ->
        Condition.wait landed lock;
        wait ()
      | None ->
        Hashtbl.replace cache key Building;
        `Build
    in
    Mutex.lock lock;
    let r = wait () in
    Mutex.unlock lock;
    r
  in
  match claim () with
  | `Hit b -> b
  | `Build -> (
    match build () with
    | b ->
      Atomic.incr build_count;
      Mutex.lock lock;
      Hashtbl.replace cache key (Ready b);
      Condition.broadcast landed;
      Mutex.unlock lock;
      b
    | exception e ->
      Mutex.lock lock;
      Hashtbl.remove cache key;
      Condition.broadcast landed;
      Mutex.unlock lock;
      raise e)

let built (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let key = (W.device_name, Devices.Qemu_version.to_string version) in
  single_flight key (fun () ->
      (match Atomic.get build_fault with
      | Some f -> f W.device_name
      | None -> ());
      let m = W.make_machine version in
      Sedspec.Pipeline.build m ~device:W.device_name
        (W.trainer ~cases:!training_cases))

(* Derived key: the minimized spec is computed from the trained one, so
   the inner [built] call may itself trigger (or wait on) the base
   build.  Neither single-flight holds the lock while building, so the
   nesting cannot deadlock. *)
let built_minimized (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let key =
    (W.device_name, Devices.Qemu_version.to_string version ^ "+min")
  in
  single_flight key (fun () ->
      Sedspec.Pipeline.minimize_built (built (module W) version))

(* Candidate key: a fresh training pass at a different corpus size — the
   evolution ladder's retrained-on-recent-traffic candidate.  The spec is
   stamped one revision past the cached base so the rollout can order and
   pin generations. *)
let built_retrained (module W : Workload.Samples.DEVICE_WORKLOAD) version
    ~cases =
  if cases < 1 then invalid_arg "Spec_cache.built_retrained: cases must be >= 1";
  let key =
    ( W.device_name,
      Printf.sprintf "%s+retrain:%d" (Devices.Qemu_version.to_string version)
        cases )
  in
  single_flight key (fun () ->
      (match Atomic.get build_fault with
      | Some f -> f W.device_name
      | None -> ());
      let base = built (module W) version in
      let m = W.make_machine version in
      let b =
        Sedspec.Pipeline.build m ~device:W.device_name (W.trainer ~cases)
      in
      Sedspec.Es_cfg.set_version b.Sedspec.Pipeline.spec
        ~revision:(Sedspec.Es_cfg.revision base.Sedspec.Pipeline.spec + 1)
        ~provenance:(Sedspec.Es_cfg.Retrained cases);
      b)

let fresh_machine ?vmexit_cost (module W : Workload.Samples.DEVICE_WORKLOAD)
    version =
  W.make_machine ?vmexit_cost version

let fresh_protected_machine ?config ?vmexit_cost
    (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let b = built (module W) version in
  let m = W.make_machine ?vmexit_cost version in
  let checker = Sedspec.Pipeline.protect ?config m ~device:W.device_name b in
  (m, checker)

(* Response-direction profiles for the guest-side validator, under the
   same single-flight discipline but in their own table and counter: the
   fleet asserts exactly one {!builds} delta per (device, version) spec
   key, and a guard profile is not a spec build. *)
type gslot = G_building | G_ready of Guard.Resp.profile

let gcache : (string * string, gslot) Hashtbl.t = Hashtbl.create 8
let guard_build_count = Atomic.make 0
let guard_builds () = Atomic.get guard_build_count

(* Fail-closed substitutions: a (device, version) pair whose guard
   training raised gets {!Guard.Resp.fail_closed} instead of no guard at
   all — counted separately so harnesses can assert the substitution
   happened (or didn't). *)
let guard_fail_closed_count = Atomic.make 0
let guard_fail_closed () = Atomic.get guard_fail_closed_count

let guard_profile (module W : Workload.Samples.DEVICE_WORKLOAD) version =
  let key = (W.device_name, Devices.Qemu_version.to_string version) in
  let claim () =
    let rec wait () =
      match Hashtbl.find_opt gcache key with
      | Some (G_ready p) -> `Hit p
      | Some G_building ->
        Condition.wait landed lock;
        wait ()
      | None ->
        Hashtbl.replace gcache key G_building;
        `Build
    in
    Mutex.lock lock;
    let r = wait () in
    Mutex.unlock lock;
    r
  in
  match claim () with
  | `Hit p -> p
  | `Build ->
    (* Fail closed, not open: if the benign corpus cannot be trained for
       this pair, cache the all-deny profile rather than propagating and
       leaving the response channel unguarded.  The substitution is
       cached like a real profile (it is the profile for an untrained
       pair), so waiters observe it too. *)
    let p =
      match
        let m = W.make_machine version in
        Guard.Resp.train m ~device:W.device_name
          (W.trainer ~cases:!training_cases)
      with
      | p ->
        Atomic.incr guard_build_count;
        p
      | exception _ ->
        Atomic.incr guard_fail_closed_count;
        Guard.Resp.fail_closed ~device:W.device_name
    in
    Mutex.lock lock;
    Hashtbl.replace gcache key (G_ready p);
    Condition.broadcast landed;
    Mutex.unlock lock;
    p

(* Eviction must take the derived entries ("+min", "+retrain:N", …) with
   the base: a stale derived spec would otherwise keep serving content
   computed from an evicted — possibly superseded — base build.  Derived
   keys all extend the base version string with a '+' suffix, so one
   prefix scan finds them.  In-flight [Building]/[G_building] markers are
   left alone: the builder holds no stale content and lands (or evicts)
   its own marker. *)
let derived_of ~version candidate =
  let pl = String.length version in
  String.length candidate > pl
  && String.sub candidate 0 pl = version
  && candidate.[pl] = '+'

let evict ~device ~version =
  let doomed_keys table ready acc0 =
    Hashtbl.fold
      (fun ((d, v) as key) slot acc ->
        if d = device && (v = version || derived_of ~version v) && ready slot
        then key :: acc
        else acc)
      table acc0
  in
  Mutex.lock lock;
  let doomed =
    doomed_keys cache (function Ready _ -> true | Building -> false) []
  in
  List.iter (Hashtbl.remove cache) doomed;
  let gdoomed =
    doomed_keys gcache (function G_ready _ -> true | G_building -> false) []
  in
  List.iter (Hashtbl.remove gcache) gdoomed;
  Mutex.unlock lock;
  List.length doomed + List.length gdoomed
