(** Execution-specification cache.

    Experiments need one trained specification per (device, QEMU version)
    pair; building one costs two training passes, so they are memoised for
    the lifetime of the process.

    The cache is domain-safe: lookups are mutex-guarded and builds are
    single-flight, so concurrent experiments (see {!Sedspec_util.Runner})
    never build the same specification twice — late callers block until
    the first build lands and share its result. *)

val training_cases : int ref
(** Training corpus size per device (default 24). *)

val built :
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Sedspec.Pipeline.built
(** Train (or fetch) the specification for a device at a version.

    Failure discipline: a build that raises evicts its single-flight
    marker (under the cache lock, before the exception propagates) and
    wakes all waiters — one of them claims the slot and retries the
    build, the rest keep waiting; a later call after a transient failure
    starts a fresh build instead of observing a poisoned entry.  Only
    the caller whose own build raised sees the exception. *)

val built_minimized :
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Sedspec.Pipeline.built
(** The {!Sedspec.Minimize}d derivation of {!built}, memoised under its
    own single-flight key ([version ^ "+min"]).  The first call may
    trigger (or wait on) the base build; each successful derivation also
    increments {!builds} — a run using minimized specs touches two keys
    per (device, version). *)

val built_retrained :
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  cases:int ->
  Sedspec.Pipeline.built
(** A candidate specification: a fresh training pass at corpus size
    [cases] (the evolution ladder's retrained-on-recent-traffic
    candidate), memoised under its own single-flight key
    ([version ^ "+retrain:<cases>"]).  The spec is stamped one revision
    past the cached base with [Retrained cases] provenance, so rollout
    can order and pin generations.  Raises [Invalid_argument] when
    [cases < 1]. *)

val builds : unit -> int
(** Successful single-flight builds since process start (each one also
    lowered exactly one shared compiled arena).  Monotone; harnesses
    assert deltas across a run — one per (device, version) key touched,
    independent of VM count and [jobs]. *)

val set_build_fault : (string -> unit) option -> unit
(** Test/fault-injection seam: the hook runs with the device name at the
    top of every single-flight build and may raise to simulate a
    transient build failure (exercised by the fleet's retry-with-backoff
    and the spec-cache eviction test).  [None] removes it. *)

val fresh_protected_machine :
  ?config:Sedspec.Checker.config ->
  ?vmexit_cost:int ->
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Vmm.Machine.t * Sedspec.Checker.t
(** A fresh machine with the device attached and a checker built from the
    cached specification. *)

val fresh_machine :
  ?vmexit_cost:int ->
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Vmm.Machine.t

val guard_profile :
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Guard.Resp.profile
(** Train (or fetch) the response-direction profile the guest-side
    validator enforces, over the same benign corpus ({!training_cases})
    as the spec build.  Memoised single-flight like {!built}, in its own
    table — guard profiles do not count toward {!builds}.

    Fail-closed discipline: unlike {!built}, a training failure does not
    propagate — the pair gets {!Guard.Resp.fail_closed} (every response
    event flags) cached as its profile, so an untrainable pair is guarded
    strictly rather than not at all.  Each substitution increments
    {!guard_fail_closed}. *)

val guard_builds : unit -> int
(** Successful guard-profile builds since process start (monotone). *)

val guard_fail_closed : unit -> int
(** Fail-closed profile substitutions since process start (monotone):
    guard trainings that raised and were replaced by
    {!Guard.Resp.fail_closed}. *)

val evict : device:string -> version:string -> int
(** Drop the cached spec build {e and} every derived entry (["+min"],
    ["+retrain:N"], …) plus the guard profile for [(device, version)],
    returning how many entries were removed.  Derived entries go with
    the base so a stale derivation can never outlive (and silently
    shadow) a superseded base build.  In-flight single-flight markers
    are left untouched — the active builder lands or evicts its own
    marker. *)
