(** Execution-specification cache.

    Experiments need one trained specification per (device, QEMU version)
    pair; building one costs two training passes, so they are memoised for
    the lifetime of the process.

    The cache is domain-safe: lookups are mutex-guarded and builds are
    single-flight, so concurrent experiments (see {!Sedspec_util.Runner})
    never build the same specification twice — late callers block until
    the first build lands and share its result. *)

val training_cases : int ref
(** Training corpus size per device (default 24). *)

val built :
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Sedspec.Pipeline.built
(** Train (or fetch) the specification for a device at a version. *)

val fresh_protected_machine :
  ?config:Sedspec.Checker.config ->
  ?vmexit_cost:int ->
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Vmm.Machine.t * Sedspec.Checker.t
(** A fresh machine with the device attached and a checker built from the
    cached specification. *)

val fresh_machine :
  ?vmexit_cost:int ->
  (module Workload.Samples.DEVICE_WORKLOAD) ->
  Devices.Qemu_version.t ->
  Vmm.Machine.t
