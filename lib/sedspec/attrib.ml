(* Block attribution for cross-version behaviour deltas (see .mli). *)

module P = Devir.Program

type change_kind = Added | Removed | Changed
type block_change = { c_bref : P.bref; c_kind : change_kind }

let change_kind_to_string = function
  | Added -> "added"
  | Removed -> "removed"
  | Changed -> "changed"

module Bset = Set.Make (struct
  type t = P.bref

  let compare = P.bref_compare
end)

let index p =
  let tbl = Hashtbl.create 64 in
  P.iter_blocks p (fun bref b -> Hashtbl.replace tbl bref b);
  tbl

let program_diff vulnerable patched =
  let lt = index vulnerable and rt = index patched in
  let changes = ref [] in
  Hashtbl.iter
    (fun bref (lb : Devir.Block.t) ->
      match Hashtbl.find_opt rt bref with
      | None -> changes := { c_bref = bref; c_kind = Removed } :: !changes
      | Some (rb : Devir.Block.t) ->
          (* Blocks are pure structural data; label equality is already
             given by the shared bref key. *)
          if lb.stmts <> rb.stmts || lb.term <> rb.term || lb.kind <> rb.kind
          then changes := { c_bref = bref; c_kind = Changed } :: !changes)
    lt;
  Hashtbl.iter
    (fun bref _ ->
      if not (Hashtbl.mem lt bref) then
        changes := { c_bref = bref; c_kind = Added } :: !changes)
    rt;
  List.sort (fun a b -> P.bref_compare a.c_bref b.c_bref) !changes

module Eset = Set.Make (struct
  type t = P.bref * P.bref

  let compare (a1, a2) (b1, b2) =
    match P.bref_compare a1 b1 with 0 -> P.bref_compare a2 b2 | c -> c
end)

let divergence_blocks ~left_nodes ~left_edges ~right_nodes ~right_edges
    ?(left_sites = []) ?(right_sites = []) () =
  let set = Bset.of_list in
  let sym a b = Bset.union (Bset.diff a b) (Bset.diff b a) in
  let nodes = sym (set left_nodes) (set right_nodes) in
  (* Both endpoints of a one-side-only edge are implicated: the source's
     terminator was rewired, and the destination's incoming control
     changed — a block whose body was patched but whose label and
     successors survived (e.g. a guard inserted *before* it) shows up
     only as an edge destination.  The over-blamed rejoin block after a
     diverging branch is collapsed away by [roots]. *)
  let le = Eset.of_list left_edges and re = Eset.of_list right_edges in
  let only = Eset.union (Eset.diff le re) (Eset.diff re le) in
  let edge_ends =
    Eset.fold
      (fun (src, dst) acc -> Bset.add src (Bset.add dst acc))
      only Bset.empty
  in
  let sites = sym (set left_sites) (set right_sites) in
  Bset.elements (Bset.union nodes (Bset.union edge_ends sites))

let count_diff left right =
  let index side =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (b, n) -> Hashtbl.replace tbl b n) side;
    tbl
  in
  let lt = index left and rt = index right in
  let count tbl b = Option.value ~default:0 (Hashtbl.find_opt tbl b) in
  let all =
    Bset.union
      (Bset.of_list (List.map fst left))
      (Bset.of_list (List.map fst right))
  in
  Bset.elements (Bset.filter (fun b -> count lt b <> count rt b) all)

let term_vars (blk : Devir.Block.t) =
  List.concat_map
    (fun e ->
      List.map (fun f -> Depgraph.Vfield f) (Devir.Expr.fields e)
      @ List.map (fun l -> Depgraph.Vlocal l) (Devir.Expr.locals e))
    (Devir.Term.exprs blk.Devir.Block.term)

let data_slice graph program ~executed blocks =
  let exec = Bset.of_list executed in
  (* Program-wide field writers, for the cross-invocation fallback:
     persistent device state set during one handler invocation steers a
     branch in a later one (the def block exits straight to the handler
     epilogue, so no intra-invocation path links them), which
     per-invocation reaching-defs cannot see. *)
  let field_writers = lazy begin
    let tbl = Hashtbl.create 64 in
    P.iter_blocks program (fun bref (b : Devir.Block.t) ->
        List.iter
          (fun st ->
            List.iter
              (fun f ->
                let cur =
                  Option.value ~default:Bset.empty (Hashtbl.find_opt tbl f)
                in
                Hashtbl.replace tbl f (Bset.add bref cur))
              (Devir.Stmt.fields_written st))
          b.Devir.Block.stmts);
    tbl
  end in
  let defs =
    List.concat_map
      (fun (b : P.bref) ->
        match P.find_block program b with
        | exception Not_found -> []
        | blk ->
          List.concat_map
            (fun var ->
              let intra =
                List.filter_map
                  (fun (d : Depgraph.def_site) ->
                    let site =
                      { P.handler = b.P.handler; P.label = d.Depgraph.d_label }
                    in
                    if Bset.mem site exec then Some site else None)
                  (Depgraph.reaching_defs graph ~handler:b.P.handler
                     ~label:b.P.label var)
              in
              match var with
              | Depgraph.Vfield f when intra = [] ->
                (* No executed def reaches within this invocation: the
                   value flowed through device state from an earlier
                   request.  Over-approximate with every executed writer
                   of the field, program-wide. *)
                let writers =
                  Option.value ~default:Bset.empty
                    (Hashtbl.find_opt (Lazy.force field_writers) f)
                in
                Bset.elements (Bset.inter writers exec)
              | _ -> intra)
            (term_vars blk))
      blocks
  in
  List.sort_uniq P.bref_compare defs

let roots graph brefs =
  let strictly_dominated (b : P.bref) =
    List.exists
      (fun (a : P.bref) ->
        a.P.handler = b.P.handler
        && a.P.label <> b.P.label
        && Depgraph.dominates graph ~handler:a.P.handler a.P.label b.P.label)
      brefs
  in
  List.filter (fun b -> not (strictly_dominated b)) brefs
