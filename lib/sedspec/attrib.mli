(** Block attribution for cross-version behaviour deltas.

    The deviation locator replays one input against adjacent device
    versions and must answer "{e which} IR blocks changed behaviour?".
    Two independent views feed that answer:

    - {b static}: a label-level structural diff of the two device
      programs ({!program_diff}) — ground truth for the version-gated
      models, where a patch adds, removes or rewrites whole blocks;
    - {b dynamic}: the symmetric difference of a diverging replay's
      ES-CFG coverage plus one-side-only anomaly sites
      ({!divergence_blocks}) — what a witness actually exercised
      differently.

    {!roots} then collapses a dynamic set to its dominator roots via
    {!Depgraph}, so a patch that rewires one branch is reported as that
    branch's decision block rather than every block downstream of it. *)

type change_kind =
  | Added  (** Block exists only in the right (patched) program. *)
  | Removed  (** Block exists only in the left (vulnerable) program. *)
  | Changed  (** Same label on both sides, different body or terminator. *)

type block_change = { c_bref : Devir.Program.bref; c_kind : change_kind }

val change_kind_to_string : change_kind -> string

val program_diff :
  Devir.Program.t -> Devir.Program.t -> block_change list
(** [program_diff vulnerable patched]: label-level structural diff,
    sorted by bref.  Blocks are pure data, so bodies compare with
    structural equality; layout/addresses are ignored (the gated models
    keep label identity across versions, which is what makes this the
    locator's ground truth). *)

val divergence_blocks :
  left_nodes:Devir.Program.bref list ->
  left_edges:(Devir.Program.bref * Devir.Program.bref) list ->
  right_nodes:Devir.Program.bref list ->
  right_edges:(Devir.Program.bref * Devir.Program.bref) list ->
  ?left_sites:Devir.Program.bref list ->
  ?right_sites:Devir.Program.bref list ->
  unit ->
  Devir.Program.bref list
(** Blocks implicated by one diverging replay: the coverage-node
    symmetric difference, {e both endpoints} of one-side-only coverage
    edges (the source's terminator was rewired; the destination's
    incoming control changed — a patched block whose label and
    successors survived shows up only as an edge destination), and
    one-side-only anomaly sites ([?_sites], default empty).  Sorted and
    deduplicated. *)

val count_diff :
  (Devir.Program.bref * int) list ->
  (Devir.Program.bref * int) list ->
  Devir.Program.bref list
(** Blocks whose execution count differs between two replays (absent =
    0), sorted.  Catches deviations the set view cannot: a loop bounded
    by a patched constant, or a callback path invoked a different number
    of times, executes the {e same} blocks on both sides — just not as
    often. *)

val data_slice :
  Depgraph.t ->
  Devir.Program.t ->
  executed:Devir.Program.bref list ->
  Devir.Program.bref list ->
  Devir.Program.bref list
(** One step of DDG reachability: for each implicated block, the
    definition sites (same handler, per {!Depgraph.reaching_defs})
    of the variables its terminator branches on, kept only if they were
    [executed] in the diverging replay.  When a {e field} variable has no
    executed intra-invocation def, the value flowed through persistent
    device state from an earlier request, so the slice falls back to
    every executed program-wide writer of that field.  This names
    value-only patches — a block whose label, successors and execution
    count all survived, but which now feeds a different value into the
    branch that visibly diverged (e.g. Venom's [data_len] initialiser).
    An over-approximation: sibling definition sites are included;
    sorted.  Blocks absent from [program] are skipped. *)

val roots :
  Depgraph.t -> Devir.Program.bref list -> Devir.Program.bref list
(** Drop every member strictly dominated by another member of the same
    handler: if the set contains both a decision block and blocks it
    dominates, only the decision block survives.  Brefs from handlers or
    labels unknown to the graph are kept as-is.  Order preserved. *)
