open Devir

type strategy =
  | Parameter_check
  | Indirect_jump_check
  | Conditional_jump_check
  | Internal_error

type mode = Protection | Enhancement

type anomaly = {
  strategy : strategy;
  at : Program.bref option;
  detail : string;
  pre_execution : bool;
}

type engine = Interpreted | Compiled

type containment = Fail_closed | Fail_open_warn

type config = {
  strategies : strategy list;
  mode : mode;
  walk_limit : int;
  engine : engine;
  on_internal_error : containment;
  heal_budget : int;
}

let default_config =
  {
    strategies = [ Parameter_check; Indirect_jump_check; Conditional_jump_check ];
    mode = Protection;
    walk_limit = 20_000;
    engine = Compiled;
    on_internal_error = Fail_closed;
    heal_budget = 8;
  }

type stats = {
  mutable interactions : int;
  mutable walks_ok : int;
  mutable bails : int;
  mutable deferred : int;
  mutable nodes_walked : int;
}

(* Command context over dense command ids (indices into [cmd_keys]):
   [-1] = no command, [-2] = unknown (the permissive state after a bail
   or resync).  An unboxed int instead of a variant keeps every walk's
   context save/restore allocation-free under both engines. *)
let cctx_none = -1
let cctx_unknown = -2

type pending = { p_handler : string; p_params : (string * int64) list }

(* ES-CFG coverage accumulator: the set of nodes entered by walks and the
   set of ordered node pairs traversed consecutively in walk order —
   including the seam between one walk's last node and the next walk's
   first, which is what makes novel command orderings visible as coverage.
   Feedback signal for the coverage-guided fuzzer; recording is identical
   under both engines, so coverage divergence is itself an oracle. *)
type coverage = {
  cov_nodes : (Program.bref, unit) Hashtbl.t;
  cov_edges : (Program.bref * Program.bref, unit) Hashtbl.t;
}

(* Pre-classified reduced (non-node) blocks, so the reference walk does not
   re-run [lift_dsod] on every pass-through of every walk. *)
type pass = P_goto of Program.bref | P_halt | P_off

(* Walk outcomes as int codes + result fields on [t] (below): the walk
   itself is on the per-interaction hot path and a [W_ok of ctx]-style
   variant would allocate per walk. *)
let res_ok = 0
let res_anomaly = 1
let res_bail = 2
let res_defer = 3

type t = {
  spec : Es_cfg.t;
  mutable config : config;
  device_arena : Arena.t;
  guest : Interp.guest;
  shadow : Arena.t;
  work : Arena.t;
  mutable ctx : int;  (** Committed command context ([cctx_*] or id). *)
  cmd_keys : Es_cfg.cmd_key array;
      (** Dense command id -> key; same [Es_cfg.commands] order as
          {!Compile.lower} uses, so ids agree between engines. *)
  cmd_ids : (Es_cfg.cmd_key, int) Hashtbl.t;
  mutable anomalies_rev : anomaly list;
  stats : stats;
  sync_values : (Program.bref * string, int64 Queue.t) Hashtbl.t;
  mutable pending : pending option;
  staged_buf : bytes;
  mutable staged : bool;  (** [staged_buf]/[staged_ctx] are valid. *)
  mutable staged_ctx : int;
  mutable dirty : bool;
  walk_locals : (string, int64 * bool) Hashtbl.t;
  mutable pass_map : (Program.bref, pass) Hashtbl.t option;
      (** Built on the first interpreted walk; the compiled engine never
          needs it, and fleet-scale VMs should not pay for it. *)
  mutable compiled : Compile.t option;
      (** Immutable compiled spec: either installed at creation (the
          fleet's shared arena) or lowered lazily on the first walk. *)
  mutable cursor : Compile.cursor option;
      (** This checker's private mutable walk state over [compiled]. *)
  tracked_buffers : (string, unit) Hashtbl.t;
  spans : (int * int) list;
      (** Byte extents of the tracked shadow state (scalars + relevant
          buffers), merged; everything else is bounds-checked but its
          bytes are not mirrored. *)
  mutable inline_halt : anomaly option;
      (** Set by the inline icall guard when it vetoes a call. *)
  mutable inline_warn : anomaly option;
  mutable cov : coverage option;
      (** When set, every walk records ES-CFG node/edge coverage here. *)
  mutable cov_prev : Program.bref;
      (** Previous node entered in the current walk (edge recording);
          only meaningful when [cov_has_prev]. *)
  mutable cov_has_prev : bool;
  (* Result fields for the int-coded walk: [w_ctx] is valid after
     [res_ok], [w_anomaly] after [res_anomaly]. *)
  mutable w_ctx : int;
  mutable w_anomaly : anomaly option;
  (* Strategy flags, kept in sync with [config] (hot-path lookups). *)
  mutable en_param : bool;
  mutable en_indirect : bool;
  mutable en_cond : bool;
  mutable fault_hook : (unit -> unit) option;
      (** Fault-injection seam: invoked at the top of every walk, under
          either engine, before any node is entered.  May raise. *)
  mutable internal_errors : int;
      (** Exceptions contained by the interposer wrapper (monotone;
          survives [drain_anomalies], cleared by [reset]). *)
  mutable heals : int;  (** Resyncs performed by [heal] since [reset]. *)
  mutable deadline : int;
      (** Watchdog step budget per walk; [max_int] = off.  Checked by the
          same per-step counter as [walk_limit] under both engines, so an
          overrun is deterministic and engine-independent. *)
  mutable deadline_overruns : int;
      (** Walks aborted by the watchdog (monotone; cleared by [reset]). *)
}

exception Deadline_exceeded of int

let () =
  Printexc.register_printer (function
    | Deadline_exceeded budget ->
      Some (Printf.sprintf "walk deadline exceeded (watchdog step budget %d)" budget)
    | _ -> None)

let strategy_to_string = function
  | Parameter_check -> "parameter-check"
  | Indirect_jump_check -> "indirect-jump-check"
  | Conditional_jump_check -> "conditional-jump-check"
  | Internal_error -> "internal-error"

let pp_anomaly ppf a =
  Format.fprintf ppf "[%s]%s %s%s"
    (strategy_to_string a.strategy)
    (if a.pre_execution then "" else " (post-sync)")
    (match a.at with
    | Some b -> Program.bref_to_string b ^ ": "
    | None -> "")
    a.detail

let dummy_bref : Program.bref = { handler = ""; label = "" }

(* Wire a private cursor over [c] (shared or private) into this checker.
   The compiled spec itself is immutable: everything per-VM lives in the
   cursor, whose scratch shadow is the checker's own [work] arena. *)
let install_compiled t (c : Compile.t) =
  if not (c.Compile.spec == t.spec) then
    invalid_arg "Checker.install_compiled: arena lowered from a different spec";
  let cur = Compile.make_cursor ~work:t.work c in
  cur.Compile.guest_read <- t.guest.Interp.read_byte;
  cur.Compile.sync_pop <-
    (fun bref local ->
      match Hashtbl.find_opt t.sync_values (bref, local) with
      | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
      | _ -> None);
  t.compiled <- Some c;
  t.cursor <- Some cur

let create ?(config = default_config) ?compiled ~spec ~device_arena ~guest () =
  let layout = Program.layout (Es_cfg.program spec) in
  let shadow = Arena.create layout in
  Arena.copy_into ~src:device_arena ~dst:shadow;
  let tracked_buffers = Hashtbl.create 8 in
  List.iter
    (fun b -> Hashtbl.replace tracked_buffers b ())
    (Es_cfg.selection spec).Selection.tracked_buffers;
  (* Merge adjacent tracked extents into copy spans. *)
  let spans =
    let raw =
      List.filter_map
        (fun (f : Layout.field) ->
          let keep =
            match f.kind with
            | Layout.Reg _ | Layout.Fn_ptr -> true
            | Layout.Buf _ -> Hashtbl.mem tracked_buffers f.name
          in
          if keep then
            Some (Layout.offset layout f.name, Layout.field_size f)
          else None)
        (Layout.fields layout)
    in
    let rec merge = function
      | (o1, l1) :: (o2, l2) :: rest when o1 + l1 = o2 ->
        merge ((o1, l1 + l2) :: rest)
      | span :: rest -> span :: merge rest
      | [] -> []
    in
    merge raw
  in
  let cmd_keys = Array.of_list (Es_cfg.commands spec) in
  let cmd_ids = Hashtbl.create (max (Array.length cmd_keys * 2) 8) in
  Array.iteri (fun i key -> Hashtbl.replace cmd_ids key i) cmd_keys;
  let t =
    {
      spec;
      config;
      device_arena;
      guest;
      shadow;
      work = Arena.create layout;
      ctx = cctx_none;
      cmd_keys;
      cmd_ids;
      anomalies_rev = [];
      stats =
        { interactions = 0; walks_ok = 0; bails = 0; deferred = 0; nodes_walked = 0 };
      sync_values = Hashtbl.create 8;
      staged_buf = Bytes.create (Layout.size layout);
      pending = None;
      staged = false;
      staged_ctx = cctx_none;
      dirty = false;
      walk_locals = Hashtbl.create 32;
      pass_map = None;
      compiled = None;
      cursor = None;
      tracked_buffers;
      spans;
      inline_halt = None;
      inline_warn = None;
      cov = None;
      cov_prev = dummy_bref;
      cov_has_prev = false;
      w_ctx = cctx_none;
      w_anomaly = None;
      en_param = List.mem Parameter_check config.strategies;
      en_indirect = List.mem Indirect_jump_check config.strategies;
      en_cond = List.mem Conditional_jump_check config.strategies;
      fault_hook = None;
      internal_errors = 0;
      heals = 0;
      deadline = max_int;
      deadline_overruns = 0;
    }
  in
  (match compiled with Some c -> install_compiled t c | None -> ());
  t

let compiled_arena t = t.compiled

let config t = t.config

let set_config t config =
  t.config <- config;
  t.en_param <- List.mem Parameter_check config.strategies;
  t.en_indirect <- List.mem Indirect_jump_check config.strategies;
  t.en_cond <- List.mem Conditional_jump_check config.strategies
let stats t = t.stats
let anomalies t = List.rev t.anomalies_rev

let drain_anomalies t =
  let out = List.rev t.anomalies_rev in
  t.anomalies_rev <- [];
  out

let resync t =
  Arena.copy_into ~src:t.device_arena ~dst:t.shadow;
  t.ctx <- cctx_unknown

(* Return the checker to its just-attached state against the (already
   reset) live control structure.  Keeps the compiled spec and its
   cursor: recycling machine+checker pairs across replays is what makes
   fuzzing throughput viable, the compiled spec is immutable, and every
   walk re-initialises the cursor. *)
let reset t =
  Arena.copy_into ~src:t.device_arena ~dst:t.shadow;
  t.ctx <- cctx_none;
  t.anomalies_rev <- [];
  t.stats.interactions <- 0;
  t.stats.walks_ok <- 0;
  t.stats.bails <- 0;
  t.stats.deferred <- 0;
  t.stats.nodes_walked <- 0;
  Hashtbl.reset t.sync_values;
  t.pending <- None;
  t.staged <- false;
  t.staged_ctx <- cctx_none;
  t.dirty <- false;
  t.inline_halt <- None;
  t.inline_warn <- None;
  t.cov <- None;
  t.cov_prev <- dummy_bref;
  t.cov_has_prev <- false;
  t.w_ctx <- cctx_none;
  t.w_anomaly <- None;
  t.fault_hook <- None;
  t.internal_errors <- 0;
  t.heals <- 0;
  t.deadline <- max_int;
  t.deadline_overruns <- 0

(* Only decision-relevant parameters are guaranteed to match: fields pulled
   in purely as dependencies may be computed from untracked buffer content
   (which never reaches a decision, by the relevance closure). *)
let shadow_matches_device t =
  let sel = Es_cfg.selection t.spec in
  let decision_relevant name =
    match List.assoc_opt name sel.Selection.rationale with
    | Some rules ->
      List.exists
        (fun r ->
          r = Selection.Branch_influencer || r = Selection.Rule2_index
          || r = Selection.Rule2_fn_ptr)
        rules
    | None -> false
  in
  List.filter_map
    (fun name ->
      if not (decision_relevant name) then None
      else
        let s = Arena.get t.shadow name and d = Arena.get t.device_arena name in
        if s <> d then Some (name, s, d) else None)
    sel.Selection.scalars

let record_sync t bref values =
  List.iter
    (fun (local, v) ->
      let key = (bref, local) in
      let q =
        match Hashtbl.find_opt t.sync_values key with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add t.sync_values key q;
          q
      in
      Queue.push v q)
    values

(* --- Coverage ---------------------------------------------------------- *)

let coverage_create () =
  { cov_nodes = Hashtbl.create 128; cov_edges = Hashtbl.create 256 }

let coverage_node_count c = Hashtbl.length c.cov_nodes
let coverage_edge_count c = Hashtbl.length c.cov_edges

let coverage_nodes c =
  List.sort Program.bref_compare
    (Hashtbl.fold (fun b () acc -> b :: acc) c.cov_nodes [])

let edge_compare (a1, a2) (b1, b2) =
  match Program.bref_compare a1 b1 with
  | 0 -> Program.bref_compare a2 b2
  | n -> n

let coverage_edges c =
  List.sort edge_compare (Hashtbl.fold (fun e () acc -> e :: acc) c.cov_edges [])

let coverage_absorb ~into c =
  let fresh = ref 0 in
  let merge src dst =
    Hashtbl.iter
      (fun k () ->
        if not (Hashtbl.mem dst k) then begin
          Hashtbl.replace dst k ();
          incr fresh
        end)
      src
  in
  merge c.cov_nodes into.cov_nodes;
  merge c.cov_edges into.cov_edges;
  !fresh

let set_coverage t cov =
  t.cov <- cov;
  t.cov_prev <- dummy_bref;
  t.cov_has_prev <- false

(* Entering an ES-CFG node during a walk (either engine).  With coverage
   off (the steady state) this is one immediate match: no allocation. *)
let cov_enter t bref =
  match t.cov with
  | None -> ()
  | Some c ->
    if not (Hashtbl.mem c.cov_nodes bref) then Hashtbl.replace c.cov_nodes bref ();
    if t.cov_has_prev then begin
      let e = (t.cov_prev, bref) in
      if not (Hashtbl.mem c.cov_edges e) then Hashtbl.replace c.cov_edges e ()
    end;
    t.cov_prev <- bref;
    t.cov_has_prev <- true

let enabled t = function
  | Parameter_check -> t.en_param
  | Indirect_jump_check -> t.en_indirect
  | Conditional_jump_check -> t.en_cond
  | Internal_error -> true (* diagnostic channel, not a strategy toggle *)

(* Walk-control exceptions. *)
exception Anomaly_found of anomaly
exception Bail of string
exception Defer

let anomaly strategy at detail =
  raise (Anomaly_found { strategy; at; detail; pre_execution = true })

(* Linkage: is this expression's value traceable to device state or I/O
   request data?  Guest-memory and host-value temporaries are not — the
   parameter check's blind spot. *)
let rec linked locals (e : Expr.t) =
  match e with
  | Expr.Const _ -> false
  | Expr.Field _ | Expr.Buf_len _ | Expr.Buf_byte _ -> true
  | Expr.Param _ -> true
  | Expr.Local n -> (
    match Hashtbl.find_opt locals n with Some (_, l) -> l | None -> false)
  | Expr.Binop (_, _, a, b) | Expr.Cmp (_, a, b) ->
    linked locals a || linked locals b
  | Expr.Not a -> linked locals a

let force_pass_map t =
  match t.pass_map with
  | Some pm -> pm
  | None ->
    let pm = Hashtbl.create 64 in
    Program.iter_blocks (Es_cfg.program t.spec) (fun bref block ->
        if Option.is_none (Es_cfg.node t.spec bref) then begin
          let p =
            match (Es_cfg.lift_dsod block.Block.stmts, block.Block.term) with
            | [], Term.Goto l ->
              P_goto { Program.handler = bref.handler; label = l }
            | [], Term.Halt -> P_halt
            | _ -> P_off
          in
          Hashtbl.add pm bref p
        end);
    t.pass_map <- Some pm;
    pm

(* The reference (interpreted) walk: tree-walking evaluation straight off
   the ES-CFG.  Kept as the semantic baseline the compiled walk is
   differentially tested against. *)
let walk_interpreted t ~sync ~handler ~params =
  let program = Es_cfg.program t.spec in
  let layout = Program.layout program in
  let selection = Es_cfg.selection t.spec in
  let pass_map = force_pass_map t in
  Arena.copy_spans ~spans:t.spans ~src:t.shadow ~dst:t.work;
  (* Refresh function-pointer parameters from the live control structure:
     they are never legitimately rewritten between interactions, so this
     lets the indirect jump check see corruption before the hijack runs. *)
  List.iter
    (fun f -> Arena.set t.work f (Arena.get t.device_arena f))
    selection.Selection.fn_ptrs;
  let locals = t.walk_locals in
  Hashtbl.reset locals;
  let ctx = ref t.ctx in
  let steps = ref 0 in
  let overflow : Interp.Eval.overflow option ref = ref None in
  let eval_ctx =
    {
      Interp.Eval.get_field = Arena.get t.work;
      get_buf_byte = Arena.get_buf_byte t.work;
      buf_len = Layout.buf_size layout;
      get_param =
        (fun name ->
          match List.assoc_opt name params with
          | Some v -> v
          | None -> raise (Interp.Eval.Undefined_param name));
      get_local =
        (fun name ->
          match Hashtbl.find_opt locals name with
          | Some (v, _) -> v
          | None -> raise (Interp.Eval.Undefined_local name));
      record_overflow = (fun o -> if !overflow = None then overflow := Some o);
    }
  in
  let eval e =
    overflow := None;
    Interp.Eval.eval eval_ctx e
  in
  let buf_check at buf ~off ~len ~lnk =
    if enabled t Parameter_check && lnk then begin
      let size = Layout.buf_size layout buf in
      if off < 0 || off + len > size then
        anomaly Parameter_check (Some at)
          (Printf.sprintf "buffer overflow: %s[%d..%d) exceeds size %d" buf off
             (off + len) size)
    end
  in
  let read_guest_scalar addr width =
    let n = Width.bytes width in
    let rec go i acc =
      if i < 0 then acc
      else
        go (i - 1)
          (Int64.logor (Int64.shift_left acc 8)
             (Int64.of_int (t.guest.Interp.read_byte (Int64.add addr (Int64.of_int i)))))
    in
    go (n - 1) 0L
  in
  let exec_stmt at (stmt : Stmt.t) =
    match stmt with
    | Stmt.Set_field (f, e) ->
      let v = eval e in
      (match !overflow with
      | Some o when enabled t Parameter_check ->
        anomaly Parameter_check (Some at)
          (Format.asprintf "integer overflow computing %s: %a" f Interp.Eval.pp_overflow o)
      | _ -> ());
      Arena.set t.work f v
    | Stmt.Set_local (n, e) ->
      let v = eval e in
      Hashtbl.replace locals n (v, linked locals e)
    | Stmt.Set_buf (b, idx, v) ->
      let iv = Int64.to_int (eval idx) in
      buf_check at b ~off:iv ~len:1 ~lnk:(linked locals idx);
      if Hashtbl.mem t.tracked_buffers b then begin
        let vv = Int64.to_int (eval v) land 0xFF in
        Arena.set_buf_byte t.work b iv vv
      end
    | Stmt.Buf_fill (b, off, len, v) ->
      let offv = Int64.to_int (eval off) in
      let lenv = Int64.to_int (eval len) in
      buf_check at b ~off:offv ~len:lenv
        ~lnk:(linked locals off || linked locals len);
      if Hashtbl.mem t.tracked_buffers b then begin
        let vv = Int64.to_int (eval v) land 0xFF in
        for i = offv to offv + lenv - 1 do
          Arena.set_buf_byte t.work b i vv
        done
      end
    | Stmt.Copy_from_guest { buf; buf_off; addr; len } ->
      let offv = Int64.to_int (eval buf_off) in
      let lenv = Int64.to_int (eval len) in
      buf_check at buf ~off:offv ~len:lenv
        ~lnk:(linked locals buf_off || linked locals len);
      if Hashtbl.mem t.tracked_buffers buf then begin
        let addrv = eval addr in
        for i = 0 to lenv - 1 do
          Arena.set_buf_byte t.work buf (offv + i)
            (t.guest.Interp.read_byte (Int64.add addrv (Int64.of_int i)))
        done
      end
    | Stmt.Copy_to_guest { buf; buf_off; len; _ } ->
      (* Guest memory is never written during simulation; only the device
         buffer bounds are validated. *)
      let offv = Int64.to_int (eval buf_off) in
      let lenv = Int64.to_int (eval len) in
      buf_check at buf ~off:offv ~len:lenv
        ~lnk:(linked locals buf_off || linked locals len)
    | Stmt.Read_guest { local; addr; width } ->
      let addrv = eval addr in
      Hashtbl.replace locals local (read_guest_scalar addrv width, false)
    | Stmt.Host_value { local; key = _ } ->
      if not sync then raise Defer
      else begin
        let key = (at, local) in
        match Hashtbl.find_opt t.sync_values key with
        | Some q when not (Queue.is_empty q) ->
          Hashtbl.replace locals local (Queue.pop q, false)
        | _ -> raise (Bail "missing sync value")
      end
    | Stmt.Respond _ | Stmt.Write_guest _ | Stmt.Note _ -> ()
  in
  let check_access (bref : Program.bref) =
    let cx = !ctx in
    let ok =
      if cx = cctx_unknown then true
      else if cx = cctx_none then Es_cfg.no_cmd_allows t.spec bref
      else
        Es_cfg.cmd_allows t.spec t.cmd_keys.(cx) bref
        || Es_cfg.no_cmd_allows t.spec bref
    in
    if not ok then
      if enabled t Conditional_jump_check then
        anomaly Conditional_jump_check (Some bref)
          "block not accessible under the current device command"
  in
  let off_graph bref reason =
    if enabled t Conditional_jump_check then
      anomaly Conditional_jump_check (Some bref) reason
    else raise (Bail reason)
  in
  let rec walk_block (bref : Program.bref) stack =
    incr steps;
    if !steps > t.deadline then begin
      t.deadline_overruns <- t.deadline_overruns + 1;
      raise (Deadline_exceeded t.deadline)
    end;
    if !steps > t.config.walk_limit then
      if enabled t Conditional_jump_check then
        anomaly Conditional_jump_check (Some bref)
          "walk limit exceeded (irregular device operation / possible infinite loop)"
      else raise (Bail "walk limit exceeded");
    let sibling label : Program.bref = { handler = bref.handler; label } in
    match Es_cfg.node t.spec bref with
    | None -> (
      (* Blocks with no device-state operations and an unconditional
         transfer are exactly what control-flow reduction removes: pass
         through.  Anything else off-graph is an untrained path. *)
      match Hashtbl.find_opt pass_map bref with
      | Some (P_goto next) -> walk_block next stack
      | Some P_halt -> (
        match stack with
        | cont :: rest -> walk_block cont rest
        | [] -> ())
      | Some P_off | None -> off_graph bref "block never observed in training")
    | Some n -> (
      t.stats.nodes_walked <- t.stats.nodes_walked + 1;
      cov_enter t bref;
      check_access bref;
      List.iter (exec_stmt bref) n.dsod;
      let clear_if_cmd_end () = if n.kind = Block.Cmd_end then ctx := cctx_none in
      match n.term with
      | Term.Goto l ->
        clear_if_cmd_end ();
        walk_block (sibling l) stack
      | Term.Halt -> (
        clear_if_cmd_end ();
        match stack with
        | cont :: rest -> walk_block cont rest
        | [] -> ())
      | Term.Branch (cond, if_taken, if_not) ->
        let taken = Interp.Eval.truthy (eval cond) in
        if enabled t Conditional_jump_check then
          if (taken && n.taken = 0) || ((not taken) && n.not_taken = 0) then
            anomaly Conditional_jump_check (Some bref)
              (Printf.sprintf "untraversed branch direction (%s)"
                 (if taken then "taken" else "not taken"));
        clear_if_cmd_end ();
        walk_block (sibling (if taken then if_taken else if_not)) stack
      | Term.Switch (scrutinee, cases, default) ->
        let v = eval scrutinee in
        let dest =
          match List.assoc_opt v cases with Some l -> l | None -> default
        in
        (if n.kind = Block.Cmd_decision then
           let key = (bref, v) in
           if Es_cfg.cmd_known t.spec key then
             ctx :=
               (match Hashtbl.find_opt t.cmd_ids key with
               | Some i -> i
               | None -> cctx_unknown)
           else if enabled t Conditional_jump_check then
             anomaly Conditional_jump_check (Some bref)
               (Printf.sprintf "unknown device command %Ld" v)
           else ctx := cctx_unknown);
        if
          enabled t Conditional_jump_check && not (List.mem (v, dest) n.cases)
        then
          anomaly Conditional_jump_check (Some bref)
            (Printf.sprintf "untraversed switch case %Ld" v);
        clear_if_cmd_end ();
        walk_block (sibling dest) stack
      | Term.Icall (fnptr, next) -> (
        let v = eval fnptr in
        if enabled t Indirect_jump_check && not (List.mem v n.itargets) then
          anomaly Indirect_jump_check (Some bref)
            (Printf.sprintf "indirect call to illegitimate target 0x%Lx" v);
        clear_if_cmd_end ();
        let continue_at = sibling next in
        match Program.find_callback program v with
        | Some { Program.action = Program.Run_handler callee; _ } ->
          let callee_entry : Program.bref =
            match (Program.find_handler program callee).blocks with
            | b :: _ -> { handler = callee; label = b.Block.label }
            | [] -> raise (Bail "empty chained handler")
          in
          walk_block callee_entry (continue_at :: stack)
        | Some _ -> walk_block continue_at stack
        | None -> raise (Bail "indirect call to unknown callback")))
  in
  let entry = Es_cfg.entry_of t.spec handler in
  match walk_block entry [] with
  | () ->
    t.w_ctx <- !ctx;
    res_ok
  | exception Anomaly_found a ->
    t.w_anomaly <- Some a;
    res_anomaly
  | exception Bail _ -> res_bail
  | exception Defer -> res_defer
  | exception Arena.Out_of_arena _ -> res_bail
  | exception Interp.Eval.Div_by_zero -> res_bail
  | exception Interp.Eval.Undefined_local _ -> res_bail
  | exception Interp.Eval.Undefined_param _ -> res_bail

(* --- Compiled walk --------------------------------------------------- *)

let anomaly_of_fault (f : Compile.fault) =
  match f with
  | Compile.Overflow { at; field; ov } ->
    {
      strategy = Parameter_check;
      at = Some at;
      detail =
        Format.asprintf "integer overflow computing %s: %a" field
          Interp.Eval.pp_overflow ov;
      pre_execution = true;
    }
  | Compile.Buf_bounds { at; buf; off; len; size } ->
    {
      strategy = Parameter_check;
      at = Some at;
      detail =
        Printf.sprintf "buffer overflow: %s[%d..%d) exceeds size %d" buf off
          (off + len) size;
      pre_execution = true;
    }

(* The compiled walk driver, as top-level mutually-recursive functions
   over (checker, shared compiled spec, private cursor): no local
   closures, so the steady-state walk allocates nothing in the driver
   itself.  (Residual per-walk allocation comes from int64 boxing inside
   compiled expression closures — see DESIGN.md §4g.) *)
let rec cbump t (cur : Compile.cursor) (bref : Program.bref) =
  cur.Compile.steps <- cur.Compile.steps + 1;
  if cur.Compile.steps > cur.Compile.deadline then begin
    t.deadline_overruns <- t.deadline_overruns + 1;
    raise (Deadline_exceeded cur.Compile.deadline)
  end;
  if cur.Compile.steps > cur.Compile.limit then
    if t.en_cond then
      anomaly Conditional_jump_check (Some bref)
        "walk limit exceeded (irregular device operation / possible infinite loop)"
    else raise (Compile.Bail "walk limit exceeded")

and cgoto t (c : Compile.t) cur (d : Compile.dest) =
  let chain = d.Compile.chain in
  for i = 0 to Array.length chain - 1 do
    cbump t cur chain.(i)
  done;
  match d.Compile.target with
  | Compile.T_node id -> center t c cur c.Compile.nodes.(id)
  | Compile.T_pop -> cpop t c cur
  | Compile.T_off bref ->
    if t.en_cond then
      anomaly Conditional_jump_check (Some bref)
        "block never observed in training"
    else raise (Compile.Bail "block never observed in training")
  | Compile.T_spin cycle ->
    (* Burns steps until the walk limit trips. *)
    let len = Array.length cycle in
    let i = ref 0 in
    while true do
      cbump t cur cycle.(!i);
      i := if !i + 1 = len then 0 else !i + 1
    done

and cpop t c (cur : Compile.cursor) =
  if cur.Compile.depth > 0 then begin
    cur.Compile.depth <- cur.Compile.depth - 1;
    cgoto t c cur cur.Compile.stack.(cur.Compile.depth)
  end

and center t (c : Compile.t) (cur : Compile.cursor) (n : Compile.cnode) =
  cbump t cur n.Compile.bref;
  cur.Compile.walked <- cur.Compile.walked + 1;
  cov_enter t n.Compile.bref;
  (let cx = cur.Compile.cctx in
   let ok =
     if cx = cctx_unknown then true
     else if cx = cctx_none then Compile.bit c.Compile.no_cmd_bits n.Compile.id
     else
       Compile.bit c.Compile.cmd_bits.(cx) n.Compile.id
       || Compile.bit c.Compile.no_cmd_bits n.Compile.id
   in
   if not ok then
     if t.en_cond then
       anomaly Conditional_jump_check (Some n.Compile.bref)
         "block not accessible under the current device command");
  let stmts = n.Compile.stmts in
  for i = 0 to Array.length stmts - 1 do
    stmts.(i) cur
  done;
  match n.Compile.term with
  | Compile.C_goto d ->
    if n.Compile.is_cmd_end then cur.Compile.cctx <- cctx_none;
    cgoto t c cur d
  | Compile.C_halt ->
    if n.Compile.is_cmd_end then cur.Compile.cctx <- cctx_none;
    cpop t c cur
  | Compile.C_branch { cond; taken0; not_taken0; if_taken; if_not } ->
    cur.Compile.overflow <- None;
    let taken = Interp.Eval.truthy (cond cur) in
    if t.en_cond then
      if (taken && taken0) || ((not taken) && not_taken0) then
        anomaly Conditional_jump_check (Some n.Compile.bref)
          (Printf.sprintf "untraversed branch direction (%s)"
             (if taken then "taken" else "not taken"));
    if n.Compile.is_cmd_end then cur.Compile.cctx <- cctx_none;
    cgoto t c cur (if taken then if_taken else if_not)
  | Compile.C_switch sw ->
    cur.Compile.overflow <- None;
    let v = sw.Compile.scrutinee cur in
    let idx = Compile.find_case_idx sw v in
    (match sw.Compile.cmd_of with
    | Some tbl -> (
      match Hashtbl.find tbl v with
      | id -> cur.Compile.cctx <- id
      | exception Not_found ->
        if t.en_cond then
          anomaly Conditional_jump_check (Some n.Compile.bref)
            (Printf.sprintf "unknown device command %Ld" v)
        else cur.Compile.cctx <- cctx_unknown)
    | None -> ());
    (if t.en_cond then
       let dlabel =
         if idx < 0 then sw.Compile.default_label
         else sw.Compile.case_labels.(idx)
       in
       if not (Compile.case_observed sw v dlabel) then
         anomaly Conditional_jump_check (Some n.Compile.bref)
           (Printf.sprintf "untraversed switch case %Ld" v));
    if n.Compile.is_cmd_end then cur.Compile.cctx <- cctx_none;
    cgoto t c cur
      (if idx < 0 then sw.Compile.default else sw.Compile.case_dests.(idx))
  | Compile.C_icall ic -> (
    cur.Compile.overflow <- None;
    let v = ic.Compile.fnptr cur in
    if t.en_indirect && not (ic.Compile.legit v) then
      anomaly Indirect_jump_check (Some n.Compile.bref)
        (Printf.sprintf "indirect call to illegitimate target 0x%Lx" v);
    if n.Compile.is_cmd_end then cur.Compile.cctx <- cctx_none;
    match Hashtbl.find ic.Compile.actions v with
    | Compile.A_chain entry ->
      Compile.push_dest cur ic.Compile.next;
      cgoto t c cur entry
    | Compile.A_plain -> cgoto t c cur ic.Compile.next
    | Compile.A_empty -> raise (Compile.Bail "empty chained handler")
    | exception Not_found ->
      raise (Compile.Bail "indirect call to unknown callback"))

let walk_compiled t ~sync ~handler ~params =
  (match t.cursor with
  | Some _ -> ()
  | None -> (
    (* Lazy private lowering: only checkers created without a shared
       arena (e.g. from persisted specs) ever take this path. *)
    match t.compiled with
    | Some c -> install_compiled t c
    | None -> install_compiled t (Compile.lower t.spec)));
  let c = match t.compiled with Some c -> c | None -> assert false in
  let cur = match t.cursor with Some cur -> cur | None -> assert false in
  Arena.copy_spans ~spans:t.spans ~src:t.shadow ~dst:t.work;
  (* Function-pointer refresh from the live control structure, as byte
     spans instead of name lookups (see the interpreted walk for why). *)
  Arena.copy_spans ~spans:c.Compile.fn_ptr_spans ~src:t.device_arena
    ~dst:t.work;
  Compile.cursor_start cur ~sync ~en_param:t.en_param
    ~limit:t.config.walk_limit ~deadline:t.deadline;
  Compile.bind_params c cur params;
  cur.Compile.cctx <- t.ctx;
  let res =
    match
      match Hashtbl.find c.Compile.entries handler with
      | d -> cgoto t c cur d
      | exception Not_found ->
        (* Unknown or empty handler: surface the exact exception the
           reference's [Es_cfg.entry_of] would raise. *)
        ignore (Es_cfg.entry_of t.spec handler : Program.bref);
        raise Not_found
    with
    | () ->
      t.w_ctx <- cur.Compile.cctx;
      res_ok
    | exception Anomaly_found a ->
      t.w_anomaly <- Some a;
      res_anomaly
    | exception Compile.Fault f ->
      t.w_anomaly <- Some (anomaly_of_fault f);
      res_anomaly
    | exception Compile.Bail _ -> res_bail
    | exception Compile.Defer -> res_defer
    | exception Arena.Out_of_arena _ -> res_bail
    | exception Interp.Eval.Div_by_zero -> res_bail
    | exception Interp.Eval.Undefined_local _ -> res_bail
    | exception Interp.Eval.Undefined_param _ -> res_bail
  in
  t.stats.nodes_walked <- t.stats.nodes_walked + cur.Compile.walked;
  res

let set_fault_hook t hook = t.fault_hook <- hook

let set_deadline t = function
  | None -> t.deadline <- max_int
  | Some budget ->
    if budget < 1 then invalid_arg "Checker.set_deadline: budget must be >= 1";
    t.deadline <- budget

let deadline t = if t.deadline = max_int then None else Some t.deadline
let deadline_overruns t = t.deadline_overruns

let walk t ~sync ~handler ~params =
  (* The fault seam fires before either engine touches a node, so an
     injected exception or delay is observed identically by the compiled
     and interpreted walks (same anomaly, same stats) — a requirement of
     the differential fuzzing oracle. *)
  (match t.fault_hook with None -> () | Some f -> f ());
  match t.config.engine with
  | Compiled -> walk_compiled t ~sync ~handler ~params
  | Interpreted -> walk_interpreted t ~sync ~handler ~params

let record_anomaly t a = t.anomalies_rev <- a :: t.anomalies_rev

let verdict t (a : anomaly) : Vmm.Machine.verdict =
  let msg = Format.asprintf "%a" pp_anomaly a in
  match a.strategy with
  | Internal_error -> (
    (* Policy-driven, independent of the working mode: a checker defect
       says nothing about the guest, so the mode's halt/warn split does
       not apply. *)
    match t.config.on_internal_error with
    | Fail_closed -> Vmm.Machine.Halt msg
    | Fail_open_warn -> Vmm.Machine.Warn msg)
  | _ -> (
    match t.config.mode with
    | Protection -> Vmm.Machine.Halt msg
    | Enhancement -> (
      match a.strategy with
      | Parameter_check -> Vmm.Machine.Halt msg
      | Indirect_jump_check | Conditional_jump_check | Internal_error ->
        Vmm.Machine.Warn msg))

let taken_anomaly t =
  match t.w_anomaly with Some a -> a | None -> assert false

let before t (request : Vmm.Machine.request) : Vmm.Machine.verdict =
  t.stats.interactions <- t.stats.interactions + 1;
  t.pending <- None;
  t.staged <- false;
  t.dirty <- false;
  t.inline_halt <- None;
  t.inline_warn <- None;
  (* [clear], not [reset]: [reset] reallocates the bucket array on every
     interaction. *)
  Hashtbl.clear t.sync_values;
  let r = walk t ~sync:false ~handler:request.handler ~params:request.params in
  if r = res_ok then begin
    t.stats.walks_ok <- t.stats.walks_ok + 1;
    Arena.save_spans ~spans:t.spans t.work t.staged_buf;
    t.staged <- true;
    t.staged_ctx <- t.w_ctx;
    Vmm.Machine.Allow
  end
  else if r = res_defer then begin
    t.stats.deferred <- t.stats.deferred + 1;
    t.pending <- Some { p_handler = request.handler; p_params = request.params };
    Vmm.Machine.Allow
  end
  else if r = res_bail then begin
    t.stats.bails <- t.stats.bails + 1;
    t.dirty <- true;
    Vmm.Machine.Allow
  end
  else begin
    let a = taken_anomaly t in
    record_anomaly t a;
    t.dirty <- true;
    verdict t a
  end

let after t (_request : Vmm.Machine.request) (outcome : Interp.Event.outcome) :
    Vmm.Machine.verdict =
  match outcome with
  | Interp.Event.Trapped _ -> (
    resync t;
    t.staged <- false;
    t.pending <- None;
    match t.inline_halt with
    | Some a -> verdict t a
    | None -> Vmm.Machine.Allow)
  | Interp.Event.Done _ -> (
    match t.pending with
    | Some p ->
      t.pending <- None;
      let r = walk t ~sync:true ~handler:p.p_handler ~params:p.p_params in
      if r = res_ok then begin
        Arena.copy_spans ~spans:t.spans ~src:t.work ~dst:t.shadow;
        t.ctx <- t.w_ctx;
        t.stats.walks_ok <- t.stats.walks_ok + 1;
        Vmm.Machine.Allow
      end
      else if r = res_anomaly then begin
        let a = taken_anomaly t in
        record_anomaly t { a with pre_execution = false };
        resync t;
        verdict t a
      end
      else begin
        t.stats.bails <- t.stats.bails + 1;
        resync t;
        Vmm.Machine.Allow
      end
    | None ->
      if t.staged then begin
        Arena.restore_spans ~spans:t.spans t.shadow t.staged_buf;
        t.ctx <- t.staged_ctx;
        t.staged <- false;
        Vmm.Machine.Allow
      end
      else begin
        if t.dirty then resync t;
        match t.inline_warn with
        | Some a -> verdict t a
        | None -> Vmm.Machine.Allow
      end)

(* Inline enforcement of the indirect jump check: consulted by the
   interpreter at the actual call site, with the just-computed target. *)
let icall_guard t (bref : Program.bref) target =
  if not (enabled t Indirect_jump_check) then true
  else
    match Es_cfg.node t.spec bref with
    | Some n when not (List.mem target n.itargets) ->
      let a =
        {
          strategy = Indirect_jump_check;
          at = Some bref;
          detail =
            Printf.sprintf "runtime indirect call to illegitimate target 0x%Lx"
              target;
          pre_execution = true;
        }
      in
      record_anomaly t a;
      (match t.config.mode with
      | Protection ->
        t.inline_halt <- Some a;
        false
      | Enhancement ->
        t.inline_warn <- Some a;
        true)
    | Some _ | None -> true

(* --- Containment ------------------------------------------------------ *)

(* No exception may escape the interposer into [Machine] dispatch.  The
   walk-control set is already folded into result codes by the engines;
   anything else reaching here — an injected fault, a checker defect, a
   corrupted internal structure — is an internal error: record a
   diagnostic anomaly, put the shadow back on a sound footing (the failed
   walk may have left staged/pending state inconsistent), and fail per
   policy: [Fail_closed] blocks the interaction, [Fail_open_warn] lets
   the device run with a recorded warning. *)
let contain t ~pre exn =
  t.internal_errors <- t.internal_errors + 1;
  let a =
    {
      strategy = Internal_error;
      at = None;
      detail = "checker internal error: " ^ Printexc.to_string exn;
      pre_execution = pre;
    }
  in
  record_anomaly t a;
  resync t;
  t.pending <- None;
  t.staged <- false;
  t.dirty <- false;
  verdict t a

let interposer_exn t : Vmm.Machine.interposer =
  { before = before t; after = after t }

let interposer t : Vmm.Machine.interposer =
  {
    before = (fun req -> try before t req with e -> contain t ~pre:true e);
    after =
      (fun req outcome -> try after t req outcome with e -> contain t ~pre:false e);
  }

let internal_errors t = t.internal_errors

(* --- Bounded self-healing --------------------------------------------- *)

type heal_result = Heal_clean | Heal_resynced of int | Heal_exhausted of int

let heals t = t.heals

let heal t =
  match shadow_matches_device t with
  | [] -> Heal_clean
  | divergent ->
    let n = List.length divergent in
    if t.heals >= t.config.heal_budget then Heal_exhausted n
    else begin
      t.heals <- t.heals + 1;
      resync t;
      Heal_resynced n
    end

(* A single pre-execution walk with no verdict bookkeeping and no shadow
   commit: the walk-throughput micro-benchmark's unit of work. *)
let bench_walk t ~handler ~params =
  ignore (walk t ~sync:false ~handler ~params : int)

let shadow_snapshot t = Arena.snapshot t.shadow

let attach ?config ?compiled machine ~spec device =
  let interp = Vmm.Machine.interp_of machine device in
  let t =
    create ?config ?compiled ~spec
      ~device_arena:(Interp.arena interp)
      ~guest:(Vmm.Guest_mem.access (Vmm.Machine.ram machine))
      ()
  in
  Vmm.Machine.set_interposer machine device (interposer t);
  Interp.set_sync_points interp (Es_cfg.sync_points spec) ~on_sync:(record_sync t);
  Interp.set_icall_guard interp (Some (icall_guard t));
  t
