(** ES-Checker: runtime protection by execution-specification enforcement
    (paper §VI).

    For every I/O interaction the checker simulates the device's execution
    over the ES-CFG {e before} the device runs: it replays each node's
    DSOD against its own shadow device state (reading guest memory where
    the device would) and resolves each NBTD, applying the three check
    strategies:

    - {b parameter check}: integer overflow on any device-state
      assignment, and buffer-bound violations for buffer operations whose
      index/offset/length is linked to device state or I/O request data
      (values reaching the device only through guest memory temporaries
      are this strategy's documented blind spot, as in the paper);
    - {b indirect jump check}: a function-pointer call whose target — with
      function-pointer parameters refreshed from the live control
      structure — is not one of the targets observed in training;
    - {b conditional jump check}: a branch direction, switch case or
      command never observed in training, a block outside the current
      command's access set, or a walk exceeding its cycle budget (the
      infinite-loop signature).

    Interactions whose path crosses a sync point cannot be fully simulated
    in advance; the checker defers them, lets the device run with sync
    instrumentation, and completes the checks with the synchronised
    values.

    Working modes: in [Protection] any anomaly halts the VM; in
    [Enhancement] only parameter-check anomalies halt, the others warn.

    Containment: the interposer returned by {!interposer} (and installed
    by {!attach}) never lets an exception escape into [Vmm.Machine]
    dispatch — any exception raised inside the checker is converted into
    an [Internal_error] diagnostic anomaly and a verdict chosen by the
    [on_internal_error] policy. *)

type strategy =
  | Parameter_check
  | Indirect_jump_check
  | Conditional_jump_check
  | Internal_error
      (** Diagnostic channel for exceptions contained inside the checker
          itself (never a configured strategy; ignored in
          [config.strategies]). *)

type mode = Protection | Enhancement

type anomaly = {
  strategy : strategy;
  at : Devir.Program.bref option;
  detail : string;
  pre_execution : bool;
      (** [true] when raised before the device ran (prevention). *)
}

(** Walk engine.  [Compiled] (the default) lowers the frozen spec once
    through {!Compile.lower} into an array-indexed, closure-compiled form;
    [Interpreted] is the reference tree-walking implementation.  The two
    are verdict-for-verdict identical (enforced by the differential test);
    only throughput differs. *)
type engine = Interpreted | Compiled

(** What a contained internal checker error does to the interaction:
    [Fail_closed] blocks it (verdict [Halt] — protection degrades to
    unavailability, never to silence); [Fail_open_warn] lets the device
    run but records a [Warn] verdict.  Independent of the working mode. *)
type containment = Fail_closed | Fail_open_warn

type config = {
  strategies : strategy list;
  mode : mode;
  walk_limit : int;  (** ES-CFG nodes visited per interaction. *)
  engine : engine;
  on_internal_error : containment;
  heal_budget : int;  (** Resyncs {!heal} may perform before giving up. *)
}

val default_config : config
(** All three strategies, protection mode, walk limit 20000, compiled
    engine, fail-closed containment, heal budget 8. *)

type stats = {
  mutable interactions : int;
  mutable walks_ok : int;
  mutable bails : int;  (** Off-graph with the conditional check disabled. *)
  mutable deferred : int;  (** Sync-point interactions checked post-run. *)
  mutable nodes_walked : int;
}

type t

val create :
  ?config:config ->
  ?compiled:Compile.t ->
  spec:Es_cfg.t ->
  device_arena:Devir.Arena.t ->
  guest:Interp.guest ->
  unit ->
  t
(** [?compiled] installs an already-lowered immutable arena (it must have
    been lowered from the {e physically same} [spec] — enforced with
    [invalid_arg]).  The checker only ever allocates its private
    {!Compile.cursor} over it, so any number of checkers across any
    number of domains can share one arena.  Without it, the checker
    lowers its own private arena lazily on the first compiled walk. *)

val compiled_arena : t -> Compile.t option
(** The compiled arena this checker walks: the shared arena passed at
    creation, or the private lazily-lowered one ([None] until the first
    compiled walk in that case). *)

val attach :
  ?config:config -> ?compiled:Compile.t -> Vmm.Machine.t -> spec:Es_cfg.t -> string -> t
(** [attach machine ~spec device] wires a checker in front of the named
    device: installs the machine interposer, initialises the shadow state
    from the live control structure and plants sync instrumentation.
    [?compiled] is passed through to {!create}. *)

val interposer : t -> Vmm.Machine.interposer
(** The containment-wrapped interposer: no exception escapes; internal
    errors become [Internal_error] anomalies with a policy verdict, and
    the shadow is resynced (the failed walk may have left it
    inconsistent).  This is what {!attach} installs. *)

val interposer_exn : t -> Vmm.Machine.interposer
(** The raw interposer with no containment wrapper: exceptions raised
    inside the checker propagate to the dispatch caller.  Exists so the
    benchmark can price the wrapper (and for debugging — a backtrace at
    the fault site beats a diagnostic anomaly when developing the checker
    itself).  Production paths use {!interposer}. *)

val internal_errors : t -> int
(** Exceptions contained so far (monotone; survives {!drain_anomalies},
    cleared by {!reset}). *)

val set_fault_hook : t -> (unit -> unit) option -> unit
(** Fault-injection seam: the hook runs at the top of every walk, under
    either engine, before any ES-CFG node is entered — so an injected
    exception or delay fires identically in the compiled and interpreted
    walks.  [None] removes it ({!reset} also clears it). *)

exception Deadline_exceeded of int
(** Raised mid-walk by the deadline watchdog; carries the step budget.
    Through {!interposer} it is contained like any other internal
    exception — an [Internal_error] anomaly plus the [on_internal_error]
    policy verdict — so an overrunning walk degrades to a per-interaction
    containment event, never a hang.  Only {!interposer_exn} and
    {!bench_walk} let it propagate. *)

val set_deadline : t -> int option -> unit
(** Arm (or disarm, with [None]) the watchdog: a walk visiting more than
    the given number of steps — the same deterministic per-step counter
    [walk_limit] uses, identical under both engines — aborts with
    {!Deadline_exceeded}.  Unlike [walk_limit] (a trained-behaviour bound
    whose trip is a conditional-jump anomaly about the {e guest}), the
    deadline is an availability bound about the {e checker}: the fleet
    supervisor uses it so one hostile or degenerate interaction cannot
    stall a bulkhead.  Budgets must be >= 1; [None] (the default) costs
    one integer compare per step.  {!reset} disarms it. *)

val deadline : t -> int option

val deadline_overruns : t -> int
(** Walks aborted by the watchdog (monotone; survives
    {!drain_anomalies}, cleared by {!reset}). *)

val config : t -> config
val set_config : t -> config -> unit
val stats : t -> stats
val anomalies : t -> anomaly list
(** All anomalies so far, oldest first. *)

val drain_anomalies : t -> anomaly list
val resync : t -> unit
(** Re-initialise the shadow state from the live control structure. *)

(** Outcome of one {!heal} pass: shadow already matched; resynced after
    observing [n] divergent decision-relevant parameters; or divergence
    persists but the [heal_budget] is spent. *)
type heal_result = Heal_clean | Heal_resynced of int | Heal_exhausted of int

val heal : t -> heal_result
(** Bounded self-healing: if {!shadow_matches_device} reports divergence,
    {!resync} — but at most [config.heal_budget] times per checker
    lifetime (until {!reset}), so a fault that re-corrupts the shadow on
    every interaction degrades to an explicit [Heal_exhausted] instead of
    masking itself forever.  Intended to run off the hot path (the remedy
    supervisor calls it once per clean tick). *)

val heals : t -> int
(** Resyncs performed by {!heal} since creation/{!reset}. *)

val reset : t -> unit
(** Return the checker to its just-attached state against the (already
    reset) live control structure: clears anomalies, statistics, command
    context, deferred/staged state and coverage wiring, and re-copies the
    shadow from the device arena.  The lazily-compiled walk form is kept.
    Lets the fuzzer recycle machine+checker pairs across replays. *)

val record_sync : t -> Devir.Program.bref -> (string * int64) list -> unit
(** Feed sync-point values captured from the device run (installed
    automatically by {!attach}). *)

val shadow_matches_device : t -> (string * int64 * int64) list
(** Diagnostic invariant: compare every {e decision-relevant} scalar
    parameter (branch influencers, index/counting parameters, function
    pointers) of the shadow device state against the live control
    structure.  Returns the mismatching (name, shadow, device) triples —
    empty after any benign interaction sequence.  Dependency-only fields
    may legitimately diverge: they can be computed from buffer content the
    volume rule deliberately leaves untracked. *)

val bench_walk : t -> handler:string -> params:(string * int64) list -> unit
(** Run one pre-execution walk (under the configured engine) and discard
    the result: no anomaly recording, no shadow commit, no interaction
    bookkeeping beyond [stats.nodes_walked].  For micro-benchmarks. *)

val shadow_snapshot : t -> bytes
(** Raw bytes of the shadow control structure (for differential tests). *)

(** {2 ES-CFG coverage}

    An accumulator of the ES-CFG nodes entered by walks and the ordered
    node pairs traversed consecutively in walk order.  Pairs span walk
    boundaries: the seam from one walk's last node to the next walk's
    first records, so an unseen {e ordering} of commands counts as new
    coverage even when every command path is individually known.  Both
    engines record identically, so the coverage-guided fuzzer can use it
    as feedback {e and} as part of its differential oracle. *)

type coverage

val coverage_create : unit -> coverage
val coverage_node_count : coverage -> int
val coverage_edge_count : coverage -> int

val coverage_nodes : coverage -> Devir.Program.bref list
(** Covered nodes, sorted (deterministic regardless of walk order). *)

val coverage_edges : coverage -> (Devir.Program.bref * Devir.Program.bref) list
(** Covered edges (consecutive pairs in walk order, seams included),
    sorted. *)

val coverage_absorb : into:coverage -> coverage -> int
(** [coverage_absorb ~into c] merges [c] into [into]; returns the number
    of nodes plus edges that were new to [into]. *)

val set_coverage : t -> coverage option -> unit
(** Install (or remove) the accumulator every subsequent walk records
    into.  Resets the edge seam state. *)

val strategy_to_string : strategy -> string
val pp_anomaly : Format.formatter -> anomaly -> unit
