open Devir

type fault =
  | Overflow of {
      at : Program.bref;
      field : string;
      ov : Interp.Eval.overflow;
    }
  | Buf_bounds of {
      at : Program.bref;
      buf : string;
      off : int;
      len : int;
      size : int;
    }

exception Fault of fault
exception Defer
exception Bail of string

type target =
  | T_node of int
  | T_pop
  | T_off of Program.bref
  | T_spin of Program.bref array

type dest = { chain : Program.bref array; target : target }

(* All mutable walk state.  The compiled spec itself ([t], below) is
   immutable after [lower] and physically shared by every VM protecting
   the same (device, version); each checker owns exactly one cursor. *)
type cursor = {
  mutable work : Arena.t;
  locals : int64 array;
  ldef : bool array;
  llink : bool array;
  params : int64 array;
  pdef : bool array;
  mutable overflow : Interp.Eval.overflow option;
  mutable record_overflow : Interp.Eval.overflow -> unit;
  mutable guest_read : int64 -> int;
  mutable sync : bool;
  mutable en_param : bool;
  mutable sync_pop : Program.bref -> string -> int64 option;
  (* Per-walk driver bookkeeping (owned by the checker's walk loop). *)
  mutable steps : int;
  mutable walked : int;
  mutable cctx : int;
  mutable depth : int;
  mutable stack : dest array;
  mutable limit : int;
  mutable deadline : int;
}

type switch = {
  scrutinee : cursor -> int64;
  case_vals : int64 array;
  case_dests : dest array;
  case_labels : string array;
  default : dest;
  default_label : string;
  observed : (int64, string list) Hashtbl.t;
  cmd_of : (int64, int) Hashtbl.t option;
}

type icall_action = A_chain of dest | A_plain | A_empty

type icall = {
  fnptr : cursor -> int64;
  legit : int64 -> bool;
  actions : (int64, icall_action) Hashtbl.t;
  next : dest;
}

type cterm =
  | C_goto of dest
  | C_halt
  | C_branch of {
      cond : cursor -> int64;
      taken0 : bool;
      not_taken0 : bool;
      if_taken : dest;
      if_not : dest;
    }
  | C_switch of switch
  | C_icall of icall

type cnode = {
  id : int;
  bref : Program.bref;
  is_cmd_end : bool;
  stmts : (cursor -> unit) array;
  term : cterm;
}

type t = {
  spec : Es_cfg.t;
  layout : Layout.t;
  nodes : cnode array;
  entries : (string, dest) Hashtbl.t;
  param_slots : (string, int) Hashtbl.t;
  n_locals : int;
  n_params : int;
  no_cmd_bits : Bytes.t;
  cmd_bits : Bytes.t array;
  cmd_keys : Es_cfg.cmd_key array;
  cmd_ids : (Es_cfg.cmd_key, int) Hashtbl.t;
  fn_ptr_spans : (int * int) list;
}

let bit b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit b i =
  Bytes.set b (i lsr 3)
    (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

(* Binary search over the static cases; [-1] means "take the default".
   Returning an index (not a tuple) keeps the hot switch dispatch
   allocation-free. *)
let find_case_idx sw v =
  let vals = sw.case_vals in
  let lo = ref 0 and hi = ref (Array.length vals - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Int64.compare vals.(mid) v in
    if c = 0 then begin
      found := mid;
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let find_case sw v =
  match find_case_idx sw v with
  | -1 -> (sw.default, sw.default_label)
  | i -> (sw.case_dests.(i), sw.case_labels.(i))

let case_observed sw v label =
  (* [Hashtbl.find] + [Not_found] instead of [find_opt]: no [Some] box on
     the per-switch hot path. *)
  match Hashtbl.find sw.observed v with
  | labels -> List.mem label labels
  | exception Not_found -> false

(* Name -> dense slot allocation, shared across the whole spec: locals
   persist across chained handlers within one walk and are keyed purely by
   name, exactly like the reference's single hashtable. *)
type slots = { tbl : (string, int) Hashtbl.t; mutable next : int }

let fresh_slots () = { tbl = Hashtbl.create 16; next = 0 }

let slot_of s name =
  match Hashtbl.find_opt s.tbl name with
  | Some i -> i
  | None ->
    let i = s.next in
    s.next <- i + 1;
    Hashtbl.add s.tbl name i;
    i

type cctx = {
  spec : Es_cfg.t;
  program : Program.t;
  layout : Layout.t;
  asize : int;
  locals : slots;
  cparams : slots;
  tracked : (string, unit) Hashtbl.t;
  ids : (Program.bref, int) Hashtbl.t;
}

(* --- Expressions ----------------------------------------------------- *)

(* Subexpression evaluation order must match the reference interpreter:
   OCaml evaluates [binop ~record op w (eval a) (eval b)] right-to-left,
   so [b] runs first — overflow recording and exception ordering depend
   on it. *)
let rec compile_expr c (e : Expr.t) : cursor -> int64 =
  match e with
  | Expr.Const (v, w) ->
    let k = Width.truncate w v in
    fun _ -> k
  | Expr.Field n -> (
    let off = Layout.offset c.layout n in
    match (Layout.find c.layout n).Layout.kind with
    | Layout.Reg Width.W8 -> fun env -> Arena.read_u8 env.work off
    | Layout.Reg Width.W16 -> fun env -> Arena.read_u16 env.work off
    | Layout.Reg Width.W32 -> fun env -> Arena.read_u32 env.work off
    | Layout.Reg Width.W64 | Layout.Fn_ptr ->
      fun env -> Arena.read_u64 env.work off
    | Layout.Buf _ ->
      invalid_arg (Printf.sprintf "Arena.get: %s is a buffer" n))
  | Expr.Buf_byte (b, idx) ->
    let base = Layout.offset c.layout b in
    let fidx = compile_expr c idx in
    let asize = c.asize in
    fun env ->
      let i = Int64.to_int (fidx env) in
      let abs = base + i in
      if abs < 0 || abs >= asize then
        raise (Arena.Out_of_arena { field = b; index = i });
      Int64.of_int (Arena.get_byte_at env.work abs)
  | Expr.Buf_len b ->
    let k = Int64.of_int (Layout.buf_size c.layout b) in
    fun _ -> k
  | Expr.Param n ->
    let s = slot_of c.cparams n in
    fun env ->
      if env.pdef.(s) then env.params.(s)
      else raise (Interp.Eval.Undefined_param n)
  | Expr.Local n ->
    let s = slot_of c.locals n in
    fun env ->
      if env.ldef.(s) then env.locals.(s)
      else raise (Interp.Eval.Undefined_local n)
  | Expr.Binop (op, w, a, b) ->
    let fa = compile_expr c a and fb = compile_expr c b in
    fun env ->
      let vb = fb env in
      let va = fa env in
      Interp.Eval.binop ~record:env.record_overflow op w va vb
  | Expr.Cmp (op, a, b) ->
    let fa = compile_expr c a and fb = compile_expr c b in
    fun env ->
      let vb = fb env in
      let va = fa env in
      Interp.Eval.cmp op va vb
  | Expr.Not a ->
    let fa = compile_expr c a in
    fun env -> if Interp.Eval.truthy (fa env) then 0L else 1L

(* Linkage (taint toward device/request state), constant-folded: only
   [Local] leaves are dynamic, everything else is statically linked or
   statically not. *)
type lnk = Lconst of bool | Ldyn of (cursor -> bool)

let lnk_or a b =
  match (a, b) with
  | Lconst true, _ | _, Lconst true -> Lconst true
  | Lconst false, x | x, Lconst false -> x
  | Ldyn fa, Ldyn fb -> Ldyn (fun env -> fa env || fb env)

let rec compile_linked c (e : Expr.t) : lnk =
  match e with
  | Expr.Const _ -> Lconst false
  | Expr.Field _ | Expr.Buf_len _ | Expr.Buf_byte _ -> Lconst true
  | Expr.Param _ -> Lconst true
  | Expr.Local n ->
    let s = slot_of c.locals n in
    Ldyn (fun env -> env.llink.(s))
  | Expr.Binop (_, _, a, b) | Expr.Cmp (_, a, b) ->
    lnk_or (compile_linked c a) (compile_linked c b)
  | Expr.Not a -> compile_linked c a

(* --- Statements ------------------------------------------------------ *)

(* Bounds guard over a buffer operation whose extent is linked: a no-op
   closure when linkage is statically false. *)
let compile_buf_check ~at ~buf ~bsize l : cursor -> int -> int -> unit =
  match l with
  | Lconst false -> fun _ _ _ -> ()
  | Lconst true ->
    fun env off len ->
      if env.en_param && (off < 0 || off + len > bsize) then
        raise (Fault (Buf_bounds { at; buf; off; len; size = bsize }))
  | Ldyn fl ->
    fun env off len ->
      if env.en_param && fl env && (off < 0 || off + len > bsize) then
        raise (Fault (Buf_bounds { at; buf; off; len; size = bsize }))

let compile_stmt c ~(at : Program.bref) (stmt : Stmt.t) : cursor -> unit =
  let asize = c.asize in
  match stmt with
  | Stmt.Set_field (f, e) -> (
    let fe = compile_expr c e in
    let off = Layout.offset c.layout f in
    let check_overflow env =
      match env.overflow with
      | Some ov when env.en_param -> raise (Fault (Overflow { at; field = f; ov }))
      | _ -> ()
    in
    match (Layout.find c.layout f).Layout.kind with
    | Layout.Reg Width.W8 ->
      fun env ->
        env.overflow <- None;
        let v = fe env in
        check_overflow env;
        Arena.write_u8 env.work off v
    | Layout.Reg Width.W16 ->
      fun env ->
        env.overflow <- None;
        let v = fe env in
        check_overflow env;
        Arena.write_u16 env.work off v
    | Layout.Reg Width.W32 ->
      fun env ->
        env.overflow <- None;
        let v = fe env in
        check_overflow env;
        Arena.write_u32 env.work off v
    | Layout.Reg Width.W64 | Layout.Fn_ptr ->
      fun env ->
        env.overflow <- None;
        let v = fe env in
        check_overflow env;
        Arena.write_u64 env.work off v
    | Layout.Buf _ ->
      invalid_arg (Printf.sprintf "Arena.set: %s is a buffer" f))
  | Stmt.Set_local (n, e) -> (
    let fe = compile_expr c e in
    let s = slot_of c.locals n in
    match compile_linked c e with
    | Lconst l ->
      fun env ->
        env.overflow <- None;
        let v = fe env in
        env.locals.(s) <- v;
        env.ldef.(s) <- true;
        env.llink.(s) <- l
    | Ldyn fl ->
      fun env ->
        env.overflow <- None;
        let v = fe env in
        let l = fl env in
        env.locals.(s) <- v;
        env.ldef.(s) <- true;
        env.llink.(s) <- l)
  | Stmt.Set_buf (b, idx, v) ->
    let base = Layout.offset c.layout b in
    let bsize = Layout.buf_size c.layout b in
    let fidx = compile_expr c idx in
    let check = compile_buf_check ~at ~buf:b ~bsize (compile_linked c idx) in
    let fv = compile_expr c v in
    if Hashtbl.mem c.tracked b then
      fun env ->
        env.overflow <- None;
        let iv = Int64.to_int (fidx env) in
        check env iv 1;
        env.overflow <- None;
        let vv = Int64.to_int (fv env) land 0xFF in
        let abs = base + iv in
        if abs < 0 || abs >= asize then
          raise (Arena.Out_of_arena { field = b; index = iv });
        Arena.set_byte_at env.work abs vv
    else
      fun env ->
        env.overflow <- None;
        let iv = Int64.to_int (fidx env) in
        check env iv 1
  | Stmt.Buf_fill (b, off, len, v) ->
    let base = Layout.offset c.layout b in
    let bsize = Layout.buf_size c.layout b in
    let foff = compile_expr c off and flen = compile_expr c len in
    let check =
      compile_buf_check ~at ~buf:b ~bsize
        (lnk_or (compile_linked c off) (compile_linked c len))
    in
    let fv = compile_expr c v in
    if Hashtbl.mem c.tracked b then
      fun env ->
        env.overflow <- None;
        let offv = Int64.to_int (foff env) in
        env.overflow <- None;
        let lenv = Int64.to_int (flen env) in
        check env offv lenv;
        env.overflow <- None;
        let vv = Int64.to_int (fv env) land 0xFF in
        for i = offv to offv + lenv - 1 do
          let abs = base + i in
          if abs < 0 || abs >= asize then
            raise (Arena.Out_of_arena { field = b; index = i });
          Arena.set_byte_at env.work abs vv
        done
    else
      fun env ->
        env.overflow <- None;
        let offv = Int64.to_int (foff env) in
        env.overflow <- None;
        let lenv = Int64.to_int (flen env) in
        check env offv lenv
  | Stmt.Copy_from_guest { buf; buf_off; addr; len } ->
    let base = Layout.offset c.layout buf in
    let bsize = Layout.buf_size c.layout buf in
    let foff = compile_expr c buf_off and flen = compile_expr c len in
    let check =
      compile_buf_check ~at ~buf ~bsize
        (lnk_or (compile_linked c buf_off) (compile_linked c len))
    in
    let faddr = compile_expr c addr in
    if Hashtbl.mem c.tracked buf then
      fun env ->
        env.overflow <- None;
        let offv = Int64.to_int (foff env) in
        env.overflow <- None;
        let lenv = Int64.to_int (flen env) in
        check env offv lenv;
        env.overflow <- None;
        let addrv = faddr env in
        for i = 0 to lenv - 1 do
          let byte = env.guest_read (Int64.add addrv (Int64.of_int i)) in
          let idx = offv + i in
          let abs = base + idx in
          if abs < 0 || abs >= asize then
            raise (Arena.Out_of_arena { field = buf; index = idx });
          Arena.set_byte_at env.work abs byte
        done
    else
      fun env ->
        env.overflow <- None;
        let offv = Int64.to_int (foff env) in
        env.overflow <- None;
        let lenv = Int64.to_int (flen env) in
        check env offv lenv
  | Stmt.Copy_to_guest { buf; buf_off; len; _ } ->
    (* Guest memory is never written during simulation; only the device
       buffer bounds are validated. *)
    let bsize = Layout.buf_size c.layout buf in
    let foff = compile_expr c buf_off and flen = compile_expr c len in
    let check =
      compile_buf_check ~at ~buf ~bsize
        (lnk_or (compile_linked c buf_off) (compile_linked c len))
    in
    fun env ->
      env.overflow <- None;
      let offv = Int64.to_int (foff env) in
      env.overflow <- None;
      let lenv = Int64.to_int (flen env) in
      check env offv lenv
  | Stmt.Read_guest { local; addr; width } ->
    let faddr = compile_expr c addr in
    let s = slot_of c.locals local in
    let n = Width.bytes width in
    fun env ->
      env.overflow <- None;
      let addrv = faddr env in
      let rec go i acc =
        if i < 0 then acc
        else
          go (i - 1)
            (Int64.logor (Int64.shift_left acc 8)
               (Int64.of_int (env.guest_read (Int64.add addrv (Int64.of_int i)))))
      in
      let v = go (n - 1) 0L in
      env.locals.(s) <- v;
      env.ldef.(s) <- true;
      env.llink.(s) <- false
  | Stmt.Host_value { local; key = _ } ->
    let s = slot_of c.locals local in
    fun env ->
      if not env.sync then raise Defer
      else begin
        match env.sync_pop at local with
        | Some v ->
          env.locals.(s) <- v;
          env.ldef.(s) <- true;
          env.llink.(s) <- false
        | None -> raise (Bail "missing sync value")
      end
  | Stmt.Respond _ | Stmt.Write_guest _ | Stmt.Note _ -> fun _ -> ()

(* --- Edge resolution ------------------------------------------------- *)

(* Chase the pass-through blocks (no DSOD, unconditional transfer — what
   control-flow reduction removed) from [start] to the next real node.
   Every traversed block is kept in the chain: the walk charges a step
   for each, so walk-limit anomalies land on the same bref as in the
   reference. *)
let resolve c (start : Program.bref) : dest =
  let rec go (bref : Program.bref) path =
    match Hashtbl.find_opt c.ids bref with
    | Some id -> { chain = Array.of_list (List.rev path); target = T_node id }
    | None ->
      if List.exists (Program.bref_equal bref) path then begin
        (* Goto cycle among non-node blocks: split into prefix + cycle. *)
        let rec split acc = function
          | [] -> assert false
          | x :: rest when Program.bref_equal x bref -> (List.rev acc, x :: rest)
          | x :: rest -> split (x :: acc) rest
        in
        let prefix, cycle = split [] (List.rev path) in
        { chain = Array.of_list prefix; target = T_spin (Array.of_list cycle) }
      end
      else
        let block = Program.find_block c.program bref in
        let path = bref :: path in
        match (Es_cfg.lift_dsod block.Block.stmts, block.Block.term) with
        | [], Term.Goto l ->
          go { Program.handler = bref.handler; label = l } path
        | [], Term.Halt ->
          { chain = Array.of_list (List.rev path); target = T_pop }
        | _ -> { chain = Array.of_list (List.rev path); target = T_off bref }
  in
  go start []

let resolve_label c (bref : Program.bref) label =
  resolve c { Program.handler = bref.handler; label }

(* --- Terminators ----------------------------------------------------- *)

let compile_term c (n : Es_cfg.node) cmd_keys : cterm =
  match n.Es_cfg.term with
  | Term.Goto l -> C_goto (resolve_label c n.bref l)
  | Term.Halt -> C_halt
  | Term.Branch (cond, if_taken, if_not) ->
    C_branch
      {
        cond = compile_expr c cond;
        taken0 = n.taken = 0;
        not_taken0 = n.not_taken = 0;
        if_taken = resolve_label c n.bref if_taken;
        if_not = resolve_label c n.bref if_not;
      }
  | Term.Switch (scrutinee, cases, default) ->
    let fscrut = compile_expr c scrutinee in
    (* Dedup keeping the first binding ([List.assoc] semantics), then
       sort for binary search. *)
    let seen = Hashtbl.create 16 in
    let uniq =
      List.filter
        (fun (v, _) ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.add seen v ();
            true
          end)
        cases
    in
    let sorted =
      List.sort (fun (a, _) (b, _) -> Int64.compare a b) uniq
    in
    let case_vals = Array.of_list (List.map fst sorted) in
    let case_labels = Array.of_list (List.map snd sorted) in
    let case_dests =
      Array.map (fun l -> resolve_label c n.bref l) case_labels
    in
    let observed = Hashtbl.create 16 in
    List.iter
      (fun (v, d) ->
        let cur =
          match Hashtbl.find_opt observed v with Some ls -> ls | None -> []
        in
        if not (List.mem d cur) then Hashtbl.replace observed v (d :: cur))
      n.cases;
    let cmd_of =
      if n.kind = Block.Cmd_decision then begin
        let tbl = Hashtbl.create 16 in
        Array.iteri
          (fun id (kbref, v) ->
            if Program.bref_equal kbref n.bref then Hashtbl.replace tbl v id)
          cmd_keys;
        Some tbl
      end
      else None
    in
    C_switch
      {
        scrutinee = fscrut;
        case_vals;
        case_dests;
        case_labels;
        default = resolve_label c n.bref default;
        default_label = default;
        observed;
        cmd_of;
      }
  | Term.Icall (fnptr, next) ->
    let f = compile_expr c fnptr in
    let targets = Array.of_list n.itargets in
    let legit =
      match Array.length targets with
      | 0 -> fun _ -> false
      | 1 ->
        let x = targets.(0) in
        fun v -> Int64.equal v x
      | len when len <= 8 ->
        fun v ->
          let rec scan i = i < len && (Int64.equal targets.(i) v || scan (i + 1)) in
          scan 0
      | _ ->
        let tbl = Hashtbl.create 32 in
        Array.iter (fun v -> Hashtbl.replace tbl v ()) targets;
        fun v -> Hashtbl.mem tbl v
    in
    let actions = Hashtbl.create 16 in
    List.iter
      (fun (v, (cb : Program.callback)) ->
        (* First binding wins, as in [List.assoc]. *)
        if not (Hashtbl.mem actions v) then
          let act =
            match cb.Program.action with
            | Program.Run_handler callee -> (
              match (Program.find_handler c.program callee).Program.blocks with
              | b :: _ ->
                A_chain (resolve c { Program.handler = callee; label = b.Block.label })
              | [] -> A_empty)
            | Program.Raise_irq_line | Program.Lower_irq_line | Program.Noop ->
              A_plain
          in
          Hashtbl.add actions v act)
      (Program.callbacks c.program);
    C_icall { fnptr = f; legit; actions; next = resolve_label c n.bref next }

(* --- Lowering -------------------------------------------------------- *)

let lower spec : t =
  let program = Es_cfg.program spec in
  let layout = Program.layout program in
  let selection = Es_cfg.selection spec in
  let tracked = Hashtbl.create 8 in
  List.iter
    (fun b -> Hashtbl.replace tracked b ())
    selection.Selection.tracked_buffers;
  let node_list = Es_cfg.nodes spec in
  let ids = Hashtbl.create (List.length node_list * 2) in
  List.iteri (fun i (n : Es_cfg.node) -> Hashtbl.add ids n.bref i) node_list;
  let c =
    {
      spec;
      program;
      layout;
      asize = Layout.size layout;
      locals = fresh_slots ();
      cparams = fresh_slots ();
      tracked;
      ids;
    }
  in
  let cmd_keys = Array.of_list (Es_cfg.commands spec) in
  let cmd_ids = Hashtbl.create (Array.length cmd_keys * 2) in
  Array.iteri (fun i key -> Hashtbl.replace cmd_ids key i) cmd_keys;
  let nodes =
    Array.of_list
      (List.mapi
         (fun id (n : Es_cfg.node) ->
           {
             id;
             bref = n.bref;
             is_cmd_end = n.kind = Block.Cmd_end;
             stmts =
               Array.of_list
                 (List.map (compile_stmt c ~at:n.bref) n.dsod);
             term = compile_term c n cmd_keys;
           })
         node_list)
  in
  (* Per-command access sets as bitsets over dense node ids. *)
  let nbits = (Array.length nodes + 7) / 8 in
  let nbits = if nbits = 0 then 1 else nbits in
  let no_cmd_bits = Bytes.make nbits '\000' in
  Array.iter
    (fun cn ->
      if Es_cfg.no_cmd_allows spec cn.bref then set_bit no_cmd_bits cn.id)
    nodes;
  let cmd_bits =
    Array.map
      (fun key ->
        let b = Bytes.make nbits '\000' in
        Array.iter
          (fun cn -> if Es_cfg.cmd_allows spec key cn.bref then set_bit b cn.id)
          nodes;
        b)
      cmd_keys
  in
  let entries = Hashtbl.create 16 in
  List.iter
    (fun (h : Program.handler) ->
      match h.Program.blocks with
      | b :: _ ->
        Hashtbl.replace entries h.Program.hname
          (resolve c { Program.handler = h.Program.hname; label = b.Block.label })
      | [] -> ())
    (Program.handlers program);
  let fn_ptr_spans =
    List.map
      (fun f ->
        (Layout.offset layout f, Layout.field_size (Layout.find layout f)))
      selection.Selection.fn_ptrs
  in
  {
    spec;
    layout;
    nodes;
    entries;
    param_slots = c.cparams.tbl;
    n_locals = c.locals.next;
    n_params = c.cparams.next;
    no_cmd_bits;
    cmd_bits;
    cmd_keys;
    cmd_ids;
    fn_ptr_spans;
  }

(* --- Cursors ---------------------------------------------------------- *)

let dummy_dest = { chain = [||]; target = T_pop }

let make_cursor ?work (t : t) =
  let cur =
    {
      work = (match work with Some w -> w | None -> Arena.create t.layout);
      locals = Array.make (max t.n_locals 1) 0L;
      ldef = Array.make (max t.n_locals 1) false;
      llink = Array.make (max t.n_locals 1) false;
      params = Array.make (max t.n_params 1) 0L;
      pdef = Array.make (max t.n_params 1) false;
      overflow = None;
      record_overflow = ignore;
      guest_read = (fun _ -> 0);
      sync = false;
      en_param = true;
      sync_pop = (fun _ _ -> None);
      steps = 0;
      walked = 0;
      cctx = -1;
      depth = 0;
      stack = Array.make 8 dummy_dest;
      limit = max_int;
      deadline = max_int;
    }
  in
  cur.record_overflow <-
    (fun o -> if cur.overflow = None then cur.overflow <- Some o);
  cur

(* Reset the per-walk portions of a cursor.  Everything here is a field
   write or an [Array.fill] over preallocated storage: no allocation. *)
let cursor_start cur ~sync ~en_param ~limit ~deadline =
  Array.fill cur.ldef 0 (Array.length cur.ldef) false;
  Array.fill cur.llink 0 (Array.length cur.llink) false;
  Array.fill cur.pdef 0 (Array.length cur.pdef) false;
  cur.overflow <- None;
  cur.sync <- sync;
  cur.en_param <- en_param;
  cur.steps <- 0;
  cur.walked <- 0;
  cur.depth <- 0;
  cur.limit <- limit;
  cur.deadline <- deadline

let push_dest cur d =
  let n = Array.length cur.stack in
  if cur.depth = n then begin
    let grown = Array.make (2 * n) dummy_dest in
    Array.blit cur.stack 0 grown 0 n;
    cur.stack <- grown
  end;
  cur.stack.(cur.depth) <- d;
  cur.depth <- cur.depth + 1

let rec bind_params (t : t) cur = function
  | [] -> ()
  | (name, v) :: rest ->
    (match Hashtbl.find t.param_slots name with
    | s ->
      if not cur.pdef.(s) then begin
        cur.params.(s) <- v;
        cur.pdef.(s) <- true
      end
    | exception Not_found -> ());
    bind_params t cur rest
