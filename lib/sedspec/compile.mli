(** One-time lowering of a frozen {!Es_cfg.t} into a form the checker can
    walk without any per-step name resolution (the compiled ES-Checker).

    The interpreted walk pays for its flexibility on every single step:
    block lookups hash a [Program.bref], field accesses hash a name
    through the {!Devir.Layout}, every expression re-walks its
    {!Devir.Expr} tree, request parameters are [List.assoc]'d by name and
    access sets are nested hashtable probes.  None of that can change
    after training: the spec handed to {!Checker.attach} is frozen.  So
    this pass resolves everything once:

    - ES-CFG nodes are renumbered to dense integer ids and stored in a
      flat array; inter-node edges become {!dest} values whose
      pass-through chains (reduced blocks the reference walk traverses
      via [lift_dsod]) are pre-resolved, including goto cycles among
      non-node blocks ({!T_spin}) so walk-limit accounting stays exact.
    - DSOD statements and terminator expressions become OCaml closures
      over a {!cursor} of pre-resolved arena byte offsets, widths and
      local/parameter array slots.
    - Switch cases become sorted arrays (binary search replaces
      [List.assoc]), observed-transition sets and indirect-call target
      sets become int64 hashtables, and per-command access sets become
      [Bytes]-backed bitsets indexed by block id.

    The result {!t} is {b immutable after [lower]}: it holds no mutable
    walk state whatsoever, so one value can be physically shared by every
    VM protecting the same (device, version) — across Runner domains
    too, since the OCaml 5 major heap is shared.  All mutable walk state
    lives in a per-VM {!cursor} ({!make_cursor}); compiled closures
    receive the cursor as an argument.

    Lowering never changes verdicts: the compiled walk must be
    bit-for-bit equivalent to the reference walk — same anomalies at the
    same blocks with the same detail strings, same statistics, same
    shadow-arena bytes (see the differential test). *)

open Devir

type fault =
  | Overflow of {
      at : Program.bref;
      field : string;
      ov : Interp.Eval.overflow;
    }
  | Buf_bounds of {
      at : Program.bref;
      buf : string;
      off : int;
      len : int;
      size : int;
    }

exception Fault of fault
(** Parameter-check violations detected inside compiled statements; the
    checker translates these into its anomaly representation. *)

exception Defer
(** A sync point was reached with [cursor.sync = false]. *)

exception Bail of string
(** Walk cannot continue (missing sync value, unknown callback, ...). *)

(** Where a pre-resolved edge lands after its pass-through chain. *)
type target =
  | T_node of int  (** Dense id of the destination node. *)
  | T_pop  (** Chain ended in an empty [Halt] block: return to stack. *)
  | T_off of Program.bref
      (** Chain reached an off-graph block (never observed in training);
          the bref is the anomaly location. *)
  | T_spin of Program.bref array
      (** Chain entered a goto cycle among non-node blocks; the walk
          spins through the cycle burning steps until the walk limit
          trips, exactly as the reference does. *)

type dest = {
  chain : Program.bref array;
      (** Every non-node block traversed before the target, in order:
          each one costs a walk step and is a potential walk-limit
          anomaly site. *)
  target : target;
}

(** All mutable walk state: per-VM, single-owner, allocated once by
    {!make_cursor}.  The compiled spec {!t} never refers to a cursor;
    closures receive it as an argument, so any number of cursors can
    walk one shared spec concurrently (from different domains) without
    interference. *)
type cursor = {
  mutable work : Arena.t;  (** Scratch shadow the walk mutates. *)
  locals : int64 array;
  ldef : bool array;  (** Local slot is defined this walk. *)
  llink : bool array;
      (** Local slot is linked to device/request state (the parameter
          check's taint bit). *)
  params : int64 array;
  pdef : bool array;
  mutable overflow : Interp.Eval.overflow option;
      (** First overflow recorded since the last top-level reset. *)
  mutable record_overflow : Interp.Eval.overflow -> unit;
  mutable guest_read : int64 -> int;
  mutable sync : bool;  (** Sync values available (post-run walk). *)
  mutable en_param : bool;  (** Parameter check enabled. *)
  mutable sync_pop : Program.bref -> string -> int64 option;
  mutable steps : int;  (** Walk steps charged so far. *)
  mutable walked : int;  (** Nodes visited this walk. *)
  mutable cctx : int;
      (** Current command context: [-1] none, [-2] unknown, else a dense
          command id (index into {!t.cmd_bits}). *)
  mutable depth : int;  (** Live entries in [stack]. *)
  mutable stack : dest array;  (** Continuations for chained handlers. *)
  mutable limit : int;  (** Walk step limit for this walk. *)
  mutable deadline : int;  (** Walk deadline budget for this walk. *)
}

type switch = {
  scrutinee : cursor -> int64;
  case_vals : int64 array;  (** Static case values, sorted, deduped. *)
  case_dests : dest array;  (** Parallel to [case_vals]. *)
  case_labels : string array;  (** Parallel to [case_vals]. *)
  default : dest;
  default_label : string;
  observed : (int64, string list) Hashtbl.t;
      (** Observed transitions: scrutinee value -> destination labels. *)
  cmd_of : (int64, int) Hashtbl.t option;
      (** For [Cmd_decision] nodes: decoded value -> command id. *)
}

type icall_action =
  | A_chain of dest  (** Chained handler: push continuation, enter. *)
  | A_plain  (** IRQ line / noop callback: continue past the call. *)
  | A_empty  (** Chained handler with no blocks (bail). *)

type icall = {
  fnptr : cursor -> int64;
  legit : int64 -> bool;  (** Observed-target membership. *)
  actions : (int64, icall_action) Hashtbl.t;
  next : dest;
}

type cterm =
  | C_goto of dest
  | C_halt
  | C_branch of {
      cond : cursor -> int64;
      taken0 : bool;  (** Taken direction never observed in training. *)
      not_taken0 : bool;
      if_taken : dest;
      if_not : dest;
    }
  | C_switch of switch
  | C_icall of icall

type cnode = {
  id : int;
  bref : Program.bref;
  is_cmd_end : bool;
  stmts : (cursor -> unit) array;  (** Compiled DSOD, in order. *)
  term : cterm;
}

(** The immutable shared arena: everything here is read-only after
    {!lower} returns. *)
type t = {
  spec : Es_cfg.t;  (** The frozen spec this was lowered from. *)
  layout : Layout.t;
  nodes : cnode array;  (** Indexed by dense id. *)
  entries : (string, dest) Hashtbl.t;  (** Handler name -> entry edge. *)
  param_slots : (string, int) Hashtbl.t;
      (** Request parameter name -> slot in [cursor.params]; global
          across handlers because chained handlers share the caller's
          request. *)
  n_locals : int;  (** Local slots a cursor must provide. *)
  n_params : int;  (** Parameter slots a cursor must provide. *)
  no_cmd_bits : Bytes.t;  (** Bitset over node ids: no-command access. *)
  cmd_bits : Bytes.t array;  (** Per-command-id bitsets over node ids. *)
  cmd_keys : Es_cfg.cmd_key array;  (** Command id -> key. *)
  cmd_ids : (Es_cfg.cmd_key, int) Hashtbl.t;  (** Key -> command id. *)
  fn_ptr_spans : (int * int) list;
      (** (offset, length) spans of the selection's function-pointer
          parameters, for refreshing from the live control structure. *)
}

val lower : Es_cfg.t -> t
(** Lower a frozen spec into an immutable, shareable compiled form. *)

val dummy_dest : dest
(** Placeholder dest used to fill cursor stack slots. *)

val make_cursor : ?work:Arena.t -> t -> cursor
(** Allocate the per-VM mutable walk state for [t].  [work] defaults to
    a fresh arena for [t]'s layout; pass the checker's scratch shadow to
    share it.  [guest_read] and [sync_pop] are placeholders the caller
    must set before walking. *)

val cursor_start :
  cursor -> sync:bool -> en_param:bool -> limit:int -> deadline:int -> unit
(** Reset per-walk cursor state in place (no allocation). *)

val push_dest : cursor -> dest -> unit
(** Push a continuation on the cursor's chained-handler stack (amortised
    allocation-free: the stack array doubles on overflow and is reused
    across walks). *)

val bind_params : t -> cursor -> (string * int64) list -> unit
(** Bind request parameters into cursor slots; first binding per name
    wins, names without a slot are ignored (never referenced by any
    handler). *)

val bit : Bytes.t -> int -> bool
(** Bitset probe ([i]th bit, little-endian within bytes). *)

val find_case_idx : switch -> int64 -> int
(** Binary search over the static cases; [-1] means the default. *)

val find_case : switch -> int64 -> dest * string
(** Binary search over the static cases; falls back to the default. *)

val case_observed : switch -> int64 -> string -> bool
(** Was (value -> label) observed in training? *)
