type t = Compile.cursor

let create = Compile.make_cursor
