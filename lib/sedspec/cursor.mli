(** Per-VM mutable walk state over a shared immutable {!Compile.t}.

    The arena/cursor split is the fleet's scaling mechanism: one compiled
    spec per (device, version) — built once, physically shared by every
    VM and every Runner domain — and one small cursor per VM holding
    everything a walk mutates (current position, step counter, local and
    parameter slots, continuation stack, deadline budget).  This module
    just names that concept; the representation lives in {!Compile} and
    the walk driver in {!Checker}. *)

type t = Compile.cursor

val create : ?work:Devir.Arena.t -> Compile.t -> t
(** Allocate a cursor for an arena (see {!Compile.make_cursor}). *)
