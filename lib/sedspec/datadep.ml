open Devir

type classification = Substituted | Guest_replay | Sync_point

type report = {
  per_site : (Program.bref * classification) list;
  substituted : int;
  guest_replay : int;
  sync_points : int;
}

(* Severity join: a host dependence anywhere makes the site a sync point;
   otherwise a guest dependence anywhere makes it guest-replay. *)
let join a b =
  match (a, b) with
  | Sync_point, _ | _, Sync_point -> Sync_point
  | Guest_replay, _ | _, Guest_replay -> Guest_replay
  | Substituted, Substituted -> Substituted

(* The pre-DDG classifier, kept as the comparison baseline for the
   minimization report (and the regression tests): chase a decision
   local's definitions across the whole handler, ignoring whether a
   definition can actually reach the decision. *)
let classify_site_flow_insensitive program (bref : Program.bref) expr =
  let handler = Program.find_handler program bref.handler in
  let deps = Hashtbl.create 8 in
  let uses_host = ref false and uses_guest = ref false in
  let rec chase local =
    if not (Hashtbl.mem deps local) then begin
      Hashtbl.add deps local ();
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (stmt : Stmt.t) ->
              match stmt with
              | Stmt.Set_local (n, e) when n = local ->
                List.iter chase (Expr.locals e)
              | Stmt.Read_guest { local = n; _ } when n = local ->
                uses_guest := true
              | Stmt.Host_value { local = n; _ } when n = local ->
                uses_host := true
              | _ -> ())
            b.stmts)
        handler.blocks
    end
  in
  List.iter chase (Expr.locals expr);
  if !uses_host then Sync_point
  else if !uses_guest then Guest_replay
  else Substituted

(* DDG-backed classification: chase only the definitions that reach the
   decision point (flow-sensitive).  A host-value load that cannot reach
   the branch no longer forces a sync point. *)
let classify_site ?graph program (bref : Program.bref) expr =
  let graph = match graph with Some g -> g | None -> Depgraph.build program in
  let uses_host = ref false and uses_guest = ref false in
  let seen = Hashtbl.create 16 in
  let rec chase ~label ~before local =
    let key = (label, before, local) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      List.iter
        (fun (d : Depgraph.def_site) ->
          match d.Depgraph.d_stmt with
          | Stmt.Set_local (_, e) ->
            List.iter
              (chase ~label:d.d_label ~before:(Some d.d_index))
              (Expr.locals e)
          | Stmt.Read_guest _ -> uses_guest := true
          | Stmt.Host_value _ -> uses_host := true
          | _ -> ())
        (Depgraph.reaching_defs graph ~handler:bref.handler ~label ?before
           (Depgraph.Vlocal local))
    end
  in
  List.iter (chase ~label:bref.label ~before:None) (Expr.locals expr);
  if !uses_host then Sync_point
  else if !uses_guest then Guest_replay
  else Substituted

(* Join over *all* of a terminator's expressions.  The first cut of
   [analyze] classified [e :: _] only, so a site whose later expression
   was host-derived could be reported [Substituted] — hiding a sync
   point from every consumer of the report. *)
let classify_exprs ?graph program bref exprs =
  match exprs with
  | [] -> None
  | es ->
    Some
      (List.fold_left
         (fun acc e -> join acc (classify_site ?graph program bref e))
         Substituted es)

let analyze spec =
  let program = Es_cfg.program spec in
  let graph = Depgraph.build program in
  let per_site =
    List.filter_map
      (fun (n : Es_cfg.node) ->
        match classify_exprs ~graph program n.bref (Term.exprs n.term) with
        | None -> None
        | Some c -> Some (n.bref, c))
      (Es_cfg.nodes spec)
  in
  let count c = List.length (List.filter (fun (_, x) -> x = c) per_site) in
  {
    per_site;
    substituted = count Substituted;
    guest_replay = count Guest_replay;
    sync_points = count Sync_point;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "data dependencies: %d substituted, %d guest-replay, %d sync points"
    r.substituted r.guest_replay r.sync_points
