(** Data dependency recovery (paper §V-D).

    Control-flow transitions can depend on variables other than the device
    state parameters.  For each NBTD of the specification this module
    classifies how the ES-Checker obtains the decision's inputs:

    - [Substituted] — the decision is computable from device state and
      request parameters alone (the paper rewrites the NBTD with the
      recovered expression; our checker replays the lifted definitions,
      which is the same computation);
    - [Guest_replay] — the decision additionally needs guest-memory values;
      the checker re-reads guest memory (part of the I/O data);
    - [Sync_point] — the decision depends on host-side values the checker
      cannot see; a sync point is inserted and the check for that
      interaction runs after the device, with the synchronised values. *)

type classification = Substituted | Guest_replay | Sync_point

type report = {
  per_site : (Devir.Program.bref * classification) list;
  substituted : int;
  guest_replay : int;
  sync_points : int;
}

val analyze : Es_cfg.t -> report
(** Classify every decision site of the specification.  The
    classification joins over {e all} of the terminator's expressions
    (any host dependence ⇒ [Sync_point]; else any guest dependence ⇒
    [Guest_replay]) and chases definitions flow-sensitively through the
    {!Depgraph} DDG — only definitions that can actually reach the
    decision count. *)

val classify_site :
  ?graph:Depgraph.t ->
  Devir.Program.t ->
  Devir.Program.bref ->
  Devir.Expr.t ->
  classification
(** Classify one decision expression at a site, chasing only reaching
    definitions.  [graph] avoids rebuilding the dependence graphs when
    classifying many sites of one program. *)

val classify_exprs :
  ?graph:Depgraph.t ->
  Devir.Program.t ->
  Devir.Program.bref ->
  Devir.Expr.t list ->
  classification option
(** Join of {!classify_site} over an expression list ([None] for [[]]).
    This is the fix for the first-expression-only bug: a site is a sync
    point as soon as {e any} of its expressions is host-derived, not just
    the head. *)

val classify_site_flow_insensitive :
  Devir.Program.t -> Devir.Program.bref -> Devir.Expr.t -> classification
(** The pre-DDG classifier (whole-handler, flow-insensitive chase).
    Kept as the baseline the minimization report compares against. *)

val pp_report : Format.formatter -> report -> unit
