open Devir

(* Per-handler control- and data-dependence graphs over the device IR.

   Handlers are small (tens of blocks), so every analysis here is the
   simple iterative set-based formulation on dense bool matrices: the
   whole build is microseconds per handler and runs once per spec
   construction, never on the walk hot path.

   - Dominators / post-dominators: classic forward/backward intersection
     fixpoint.  Post-dominance uses a virtual exit node (id [n]) that
     every [Halt] block (and every successor-less block) feeds, so
     handlers with several exits still have a single sink.
   - CDG: Ferrante–Ottenstein–Warren — for each CFG edge [a -> s] where
     [a]'s immediate post-dominator does not cover [s], the blocks on the
     post-dominator chain from [s] up to (excluding) [ipdom a] are
     control-dependent on [a].
   - DDG: reaching definitions at per-statement granularity.  Locals and
     scalar fields define strongly (a new definition kills previous
     ones); buffer writes define weakly (byte-granular stores never kill
     a whole-buffer definition), which is also the sound reading of the
     IR's C-struct escape hatch where an out-of-range [Set_buf] spills
     into adjacent fields. *)

type var = Vlocal of string | Vfield of string

type def_site = { d_label : string; d_index : int; d_stmt : Stmt.t }

type hgraph = {
  labels : string array;
  index : (string, int) Hashtbl.t;
  blocks : Block.t array;
  succ : int list array;
  pred : int list array;
  dom : bool array array;  (** [dom.(b).(a)]: [a] dominates [b]. *)
  pdom : bool array array;
      (** [pdom.(b).(a)]: [a] post-dominates [b]; index [n] is the
          virtual exit. *)
  ipdom : int array;  (** Immediate post-dominator ([n] = exit, [-1] = none). *)
  cdg : int list array;  (** [cdg.(a)]: blocks control-dependent on [a]. *)
  reach : bool array array;  (** [reach.(a).(b)]: [b] reachable from [a]. *)
  defs : def_site array;
  def_var : var array;
  def_strong : bool array;
  din : bool array array;  (** Reaching definitions at block entry. *)
}

type t = (string, hgraph) Hashtbl.t

let stmt_defs (stmt : Stmt.t) : (var * bool) list =
  match stmt with
  | Stmt.Set_local (n, _) -> [ (Vlocal n, true) ]
  | Stmt.Read_guest { local; _ } | Stmt.Host_value { local; _ } ->
    [ (Vlocal local, true) ]
  | Stmt.Set_field (f, _) -> [ (Vfield f, true) ]
  | Stmt.Set_buf (b, _, _)
  | Stmt.Buf_fill (b, _, _, _)
  | Stmt.Copy_from_guest { buf = b; _ } ->
    [ (Vfield b, false) ]
  | Stmt.Copy_to_guest _ | Stmt.Write_guest _ | Stmt.Respond _ | Stmt.Note _ ->
    []

let intersect_into dst src =
  Array.iteri (fun i v -> if not v then dst.(i) <- false) src

let build_handler (h : Program.handler) =
  let blocks = Array.of_list h.blocks in
  let n = Array.length blocks in
  let labels = Array.map (fun (b : Block.t) -> b.Block.label) blocks in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let succ =
    Array.map
      (fun (b : Block.t) ->
        List.filter_map
          (fun l -> Hashtbl.find_opt index l)
          (Term.successors b.Block.term))
      blocks
  in
  let pred = Array.make n [] in
  Array.iteri (fun a ss -> List.iter (fun s -> pred.(s) <- a :: pred.(s)) ss) succ;
  Array.iteri (fun s ps -> pred.(s) <- List.rev ps) pred;
  (* Dominators. *)
  let dom = Array.init n (fun b -> Array.make n (b <> 0 || n = 1)) in
  if n > 0 then begin
    Array.fill dom.(0) 0 n false;
    dom.(0).(0) <- true;
    let changed = ref true in
    while !changed do
      changed := false;
      for b = 1 to n - 1 do
        if pred.(b) <> [] then begin
          let acc = Array.make n true in
          List.iter (fun p -> intersect_into acc dom.(p)) pred.(b);
          acc.(b) <- true;
          if acc <> dom.(b) then begin
            dom.(b) <- acc;
            changed := true
          end
        end
      done
    done
  end;
  (* Post-dominators over n+1 ids; id n is the virtual exit. *)
  let psucc =
    Array.init n (fun b -> match succ.(b) with [] -> [ n ] | ss -> ss)
  in
  let pdom = Array.init (n + 1) (fun b -> Array.make (n + 1) (b <> n)) in
  pdom.(n).(n) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let acc = Array.make (n + 1) true in
      List.iter (fun s -> intersect_into acc pdom.(s)) psucc.(b);
      acc.(b) <- true;
      if acc <> pdom.(b) then begin
        pdom.(b) <- acc;
        changed := true
      end
    done
  done;
  let card a = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 a in
  let ipdom =
    Array.init (n + 1) (fun b ->
        if b = n then -1
        else begin
          (* Closest strict post-dominator = the one with the largest
             post-dominator set (it sits deepest on the chain to exit). *)
          let best = ref (-1) and best_card = ref (-1) in
          for c = 0 to n do
            if c <> b && pdom.(b).(c) then begin
              let k = card pdom.(c) in
              if k > !best_card then begin
                best := c;
                best_card := k
              end
            end
          done;
          !best
        end)
  in
  (* CDG via the post-dominator chain walk per edge. *)
  let cdg_sets = Array.make n [] in
  for a = 0 to n - 1 do
    List.iter
      (fun s ->
        let stop = ipdom.(a) in
        let t = ref s and fuel = ref (n + 2) in
        while !t <> stop && !t <> n && !t >= 0 && !fuel > 0 do
          decr fuel;
          if not (List.mem !t cdg_sets.(a)) then
            cdg_sets.(a) <- !t :: cdg_sets.(a);
          t := ipdom.(!t)
        done)
      psucc.(a)
  done;
  let cdg = Array.map (fun l -> List.sort compare l) cdg_sets in
  (* Reflexive-transitive reachability. *)
  let reach = Array.init n (fun a -> Array.init n (fun b -> a = b)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if reach.(a).(b) then
          List.iter
            (fun s ->
              if not reach.(a).(s) then begin
                reach.(a).(s) <- true;
                changed := true
              end)
            succ.(b)
      done
    done
  done;
  (* Reaching definitions. *)
  let defs = ref [] and ndefs = ref 0 in
  Array.iteri
    (fun bi (b : Block.t) ->
      List.iteri
        (fun si stmt ->
          List.iter
            (fun (v, strong) ->
              defs :=
                ({ d_label = labels.(bi); d_index = si; d_stmt = stmt }, v, strong)
                :: !defs;
              incr ndefs)
            (stmt_defs stmt))
        b.Block.stmts)
    blocks;
  let all = Array.of_list (List.rev !defs) in
  let defs = Array.map (fun (d, _, _) -> d) all in
  let def_var = Array.map (fun (_, v, _) -> v) all in
  let def_strong = Array.map (fun (_, _, s) -> s) all in
  let nd = Array.length defs in
  let def_ids_at = Hashtbl.create (2 * nd) in
  Array.iteri
    (fun i (d : def_site) -> Hashtbl.replace def_ids_at (d.d_label, d.d_index) i)
    defs;
  (* Transfer one statement over a live-def set. *)
  let apply_stmt set bi si stmt =
    List.iter
      (fun (v, strong) ->
        if strong then
          for d = 0 to nd - 1 do
            if set.(d) && def_var.(d) = v then set.(d) <- false
          done;
        match Hashtbl.find_opt def_ids_at (labels.(bi), si) with
        | Some id -> set.(id) <- true
        | None -> ())
      (stmt_defs stmt)
  in
  let transfer set bi =
    List.iteri (fun si stmt -> apply_stmt set bi si stmt) blocks.(bi).Block.stmts
  in
  let din = Array.init n (fun _ -> Array.make nd false) in
  let dout = Array.init n (fun _ -> Array.make nd false) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      let inset = Array.make nd false in
      List.iter
        (fun p ->
          Array.iteri (fun d v -> if v then inset.(d) <- true) dout.(p))
        pred.(b);
      if inset <> din.(b) then din.(b) <- inset;
      let out = Array.copy inset in
      transfer out b;
      if out <> dout.(b) then begin
        dout.(b) <- out;
        changed := true
      end
    done
  done;
  {
    labels;
    index;
    blocks;
    succ;
    pred;
    dom;
    pdom;
    ipdom;
    cdg;
    reach;
    defs;
    def_var;
    def_strong;
    din;
  }

let build program =
  let t = Hashtbl.create 8 in
  List.iter
    (fun (h : Program.handler) -> Hashtbl.replace t h.hname (build_handler h))
    (Program.handlers program);
  t

let with_ids t ~handler a b f =
  match Hashtbl.find_opt t handler with
  | None -> None
  | Some g -> (
    match (Hashtbl.find_opt g.index a, Hashtbl.find_opt g.index b) with
    | Some ia, Some ib -> Some (f g ia ib)
    | _ -> None)

let dominates t ~handler a b =
  match with_ids t ~handler a b (fun g ia ib -> g.dom.(ib).(ia)) with
  | Some v -> v
  | None -> false

let post_dominates t ~handler a b =
  match with_ids t ~handler a b (fun g ia ib -> g.pdom.(ib).(ia)) with
  | Some v -> v
  | None -> false

let control_deps t ~handler label =
  match Hashtbl.find_opt t handler with
  | None -> []
  | Some g -> (
    match Hashtbl.find_opt g.index label with
    | None -> []
    | Some i -> List.map (fun b -> g.labels.(b)) g.cdg.(i))

let between t ~handler a b =
  match Hashtbl.find_opt t handler with
  | None -> []
  | Some g -> (
    match (Hashtbl.find_opt g.index a, Hashtbl.find_opt g.index b) with
    | Some ia, Some ib ->
      (* Blocks on some a -> ... -> b walk, measured from a's successors
         so [a] itself appears exactly when it sits on a cycle (its own
         statements then re-execute between two evaluations at [a]). *)
      let out = ref [] in
      for x = Array.length g.labels - 1 downto 0 do
        if
          x <> ib
          && List.exists (fun s -> g.reach.(s).(x)) g.succ.(ia)
          && g.reach.(x).(ib)
        then out := g.labels.(x) :: !out
      done;
      !out
    | _ -> [])

let reaching_defs t ~handler ~label ?before var =
  match Hashtbl.find_opt t handler with
  | None -> []
  | Some g -> (
    match Hashtbl.find_opt g.index label with
    | None -> []
    | Some bi ->
      let nd = Array.length g.defs in
      let set = Array.copy g.din.(bi) in
      let upto =
        match before with
        | Some k -> k
        | None -> List.length g.blocks.(bi).Block.stmts
      in
      (* Re-run the block transfer up to the query point; [def_ids_at]
         was local to the build, so rediscover ids by (label, index). *)
      List.iteri
        (fun si stmt ->
          if si < upto then
            List.iter
              (fun (v, strong) ->
                if strong then
                  for d = 0 to nd - 1 do
                    if set.(d) && g.def_var.(d) = v then set.(d) <- false
                  done;
                ignore v;
                for d = 0 to nd - 1 do
                  if
                    g.defs.(d).d_label = label
                    && g.defs.(d).d_index = si
                  then set.(d) <- true
                done)
              (stmt_defs stmt))
        g.blocks.(bi).Block.stmts;
      let out = ref [] in
      for d = nd - 1 downto 0 do
        if set.(d) && g.def_var.(d) = var then out := g.defs.(d) :: !out
      done;
      !out)

let def_count t ~handler =
  match Hashtbl.find_opt t handler with
  | None -> 0
  | Some g -> Array.length g.defs

let pp_stats ppf t =
  let handlers =
    List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) t [])
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun h ->
      let g = Hashtbl.find t h in
      let cdg_edges = Array.fold_left (fun acc l -> acc + List.length l) 0 g.cdg in
      Format.fprintf ppf "%s: %d blocks, %d defs, %d cdg edges@," h
        (Array.length g.labels) (Array.length g.defs) cdg_edges)
    handlers;
  Format.fprintf ppf "@]"
