(** Per-handler control- and data-dependence graphs over the device IR
    (ROADMAP item 2, after BAP's [depgraphs.ml]).

    Built once per specification from the device program — never on the
    walk hot path — and queried by {!Datadep} (flow-sensitive sync-point
    classification) and {!Minimize} (dominated-check pruning and
    chain merging):

    - {b dominators / post-dominators} per handler CFG, the latter over a
      virtual exit that all [Halt] blocks feed;
    - {b CDG}: control dependence via the Ferrante–Ottenstein–Warren
      post-dominator chain walk — [b] is control-dependent on [a] iff [a]
      decides whether [b] executes;
    - {b DDG}: flow-sensitive reaching definitions at per-statement
      granularity.  Locals and scalar fields define strongly; buffer
      writes define weakly (byte stores never kill a whole-buffer
      definition, which also soundly covers the IR's C-struct semantics
      where an out-of-range buffer store spills into adjacent fields). *)

type var = Vlocal of string | Vfield of string

type def_site = {
  d_label : string;  (** Block label of the defining statement. *)
  d_index : int;  (** Statement index within the block. *)
  d_stmt : Devir.Stmt.t;
}

type t

val build : Devir.Program.t -> t

val dominates : t -> handler:string -> string -> string -> bool
(** [dominates t ~handler a b]: every handler-entry-to-[b] path passes
    through [a] (reflexive).  [false] when either label is unknown. *)

val post_dominates : t -> handler:string -> string -> string -> bool
(** [post_dominates t ~handler a b]: every [b]-to-exit path passes
    through [a] (reflexive). *)

val control_deps : t -> handler:string -> string -> string list
(** Labels of the blocks control-dependent on the given block, in block
    order. *)

val between : t -> handler:string -> string -> string -> string list
(** [between t ~handler a b]: labels that can execute strictly between an
    evaluation at [a]'s terminator and one at [b]'s — every block on some
    [a] → … → [b] walk, measured from [a]'s successors (so [a] itself is
    included exactly when it lies on a cycle) and excluding [b].  An
    over-approximation: paths through blocks the walker would reject are
    included, which only makes safety checks built on it conservative. *)

val reaching_defs :
  t -> handler:string -> label:string -> ?before:int -> var -> def_site list
(** Definitions of [var] that reach the given program point: just before
    statement [before] of the block, or the block's terminator when
    [before] is omitted.  Definition sites are returned in program
    order. *)

val def_count : t -> handler:string -> int
(** Number of definition sites the DDG tracks for a handler. *)

val pp_stats : Format.formatter -> t -> unit
